// Package cache models the prototype's L1 caches for cycle accounting.
//
// The paper's system (Table II) has 32 KiB 8-way L1 instruction and
// data caches in front of a DDR3 SO-DIMM. The performance evaluation
// only needs hit/miss behaviour — the CPU charges a miss penalty per
// refill — so the model tracks tags with true LRU and no data array.
package cache

import (
	"fmt"

	"roload/internal/obs"
)

// Config describes one cache.
type Config struct {
	SizeBytes int // total capacity
	Ways      int // associativity
	LineBytes int // line size
}

// DefaultL1 mirrors Table II: 32 KiB, 8-way, 64-byte lines.
func DefaultL1() Config {
	return Config{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64}
}

// Stats aggregates accesses.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// MissRate returns misses / accesses, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Misses) / float64(total)
}

type line struct {
	tag   uint64
	valid bool
	lru   uint64 // larger = more recently used
}

// Cache is a set-associative tag store with true LRU replacement.
type Cache struct {
	cfg      Config
	sets     [][]line
	setMask  uint64
	setBits  uint
	lineBits uint
	tick     uint64
	stats    Stats

	// lastAddr/lastLine short-circuit the way scan for the common case
	// of consecutive accesses to one line. The pointed-to slot may be
	// reallocated by an intervening miss, so the fast path re-verifies
	// validity and tag before trusting it; the accounting it performs
	// (tick, LRU stamp, hit count, probe event) is exactly the scan's.
	lastAddr uint64 // line address, valid only when lastLine != nil
	lastLine *line

	// probe, when non-nil, observes every access. side tags the events
	// (I- or D-cache); cycles supplies the timestamp counter.
	probe  obs.Probe
	side   obs.Side
	cycles *uint64
}

// New builds a cache. The configuration must describe a power-of-two
// geometry; New panics otherwise, since configurations are
// compile-time constants in this codebase.
func New(cfg Config) *Cache {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 || cfg.LineBytes <= 0 {
		panic("cache: non-positive geometry")
	}
	numLines := cfg.SizeBytes / cfg.LineBytes
	numSets := numLines / cfg.Ways
	if numSets == 0 || numSets&(numSets-1) != 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic("cache: geometry must be a power of two")
	}
	sets := make([][]line, numSets)
	backing := make([]line, numLines)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	lineBits := uint(0)
	for 1<<lineBits < cfg.LineBytes {
		lineBits++
	}
	setBits := uint(0)
	for 1<<setBits < numSets {
		setBits++
	}
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		setMask:  uint64(numSets - 1),
		setBits:  setBits,
		lineBits: lineBits,
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears statistics without flushing contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// SetProbe attaches (or with p == nil detaches) an event probe. side
// tags emitted events; cycles, when non-nil, supplies the timestamp
// counter (the owning CPU's cycle register).
func (c *Cache) SetProbe(p obs.Probe, side obs.Side, cycles *uint64) {
	c.probe = p
	c.side = side
	c.cycles = cycles
}

// Access touches the line containing physical address pa and reports
// whether it hit. A miss installs the line.
func (c *Cache) Access(pa uint64) bool {
	c.tick++
	lineAddr := pa >> c.lineBits
	tag := lineAddr >> c.setBits
	// Fast path: repeat access to the last-touched line.
	if ll := c.lastLine; ll != nil && c.lastAddr == lineAddr && ll.valid && ll.tag == tag {
		ll.lru = c.tick
		c.stats.Hits++
		if c.probe != nil {
			c.emit(pa, true)
		}
		return true
	}
	set := c.sets[lineAddr&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.tick
			c.stats.Hits++
			c.lastAddr, c.lastLine = lineAddr, &set[i]
			if c.probe != nil {
				c.emit(pa, true)
			}
			return true
		}
	}
	c.stats.Misses++
	if c.probe != nil {
		c.emit(pa, false)
	}
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = line{tag: tag, valid: true, lru: c.tick}
	c.lastAddr, c.lastLine = lineAddr, &set[victim]
	return false
}

// Flush invalidates the whole cache.
func (c *Cache) Flush() {
	for _, set := range c.sets {
		for i := range set {
			set[i].valid = false
		}
	}
	c.lastLine = nil
}

// DropLine invalidates the line covering physical address pa, if
// present, and reports whether one was dropped — the fault-injection
// hook for dirty-line loss. The model is a tag store over a
// write-through memory (stores always reach internal/mem), so a
// dropped line costs a deterministic refill on the next access; the
// data-loss half of a lost dirty line is modelled separately by the
// engine's store-drop fault.
func (c *Cache) DropLine(pa uint64) bool {
	lineAddr := pa >> c.lineBits
	tag := lineAddr >> c.setBits
	set := c.sets[lineAddr&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].valid = false
			if c.lastLine == &set[i] {
				c.lastLine = nil
			}
			return true
		}
	}
	return false
}

// LineState is one checkpointed cache line in set-major, way-minor
// order.
type LineState struct {
	Tag   uint64 `json:"tag"`
	Valid bool   `json:"valid"`
	LRU   uint64 `json:"lru"`
}

// State is the checkpointable cache state: tick, statistics, and every
// line's tag/valid/LRU. The last-line shortcut is host-only state and
// is rebuilt lazily.
type State struct {
	Tick  uint64      `json:"tick"`
	Stats Stats       `json:"stats"`
	Lines []LineState `json:"lines"`
}

// State captures the cache for a checkpoint.
func (c *Cache) State() State {
	lines := make([]LineState, 0, len(c.sets)*c.cfg.Ways)
	for _, set := range c.sets {
		for i := range set {
			lines = append(lines, LineState{Tag: set[i].tag, Valid: set[i].valid, LRU: set[i].lru})
		}
	}
	return State{Tick: c.tick, Stats: c.stats, Lines: lines}
}

// SetState restores a checkpointed cache state; the geometry must
// match the cache it is restored into.
func (c *Cache) SetState(s State) error {
	if len(s.Lines) != len(c.sets)*c.cfg.Ways {
		return fmt.Errorf("cache: restoring %d lines into a %d-line cache", len(s.Lines), len(c.sets)*c.cfg.Ways)
	}
	k := 0
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{tag: s.Lines[k].Tag, valid: s.Lines[k].Valid, lru: s.Lines[k].LRU}
			k++
		}
	}
	c.tick = s.Tick
	c.stats = s.Stats
	c.lastLine = nil
	return nil
}

// emit is the cold half of the probe path, kept out of Access so the
// nil-probe fast path stays small enough to inline around.
func (c *Cache) emit(pa uint64, hit bool) {
	var now uint64
	if c.cycles != nil {
		now = *c.cycles
	}
	c.probe.Event(obs.Event{Kind: obs.KindCache, Side: c.side, Hit: hit, VA: pa, Cycle: now})
}

func popcount(v uint64) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}
