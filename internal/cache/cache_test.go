package cache

import (
	"testing"
	"testing/quick"
)

func TestFirstAccessMisses(t *testing.T) {
	c := New(DefaultL1())
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("second access missed")
	}
	if !c.Access(0x1038) { // same 64-byte line
		t.Error("same-line access missed")
	}
	if c.Access(0x1040) { // next line
		t.Error("next-line cold access hit")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.MissRate() != 0.5 {
		t.Errorf("miss rate = %v", st.MissRate())
	}
}

func TestLRUEviction(t *testing.T) {
	// 2 sets x 2 ways x 16-byte lines = 64 bytes total.
	c := New(Config{SizeBytes: 64, Ways: 2, LineBytes: 16})
	// Three lines mapping to set 0: line addresses 0, 2, 4 (stride 32).
	c.Access(0)  // miss, installs A
	c.Access(32) // miss, installs B
	c.Access(0)  // hit, A is now MRU
	c.Access(64) // miss, evicts B (LRU)
	if !c.Access(0) {
		t.Error("A evicted despite being MRU")
	}
	if c.Access(32) {
		t.Error("B survived despite being LRU victim")
	}
}

func TestFlush(t *testing.T) {
	c := New(DefaultL1())
	c.Access(0x2000)
	c.Flush()
	if c.Access(0x2000) {
		t.Error("hit after flush")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cases := []Config{
		{SizeBytes: 0, Ways: 1, LineBytes: 16},
		{SizeBytes: 96, Ways: 2, LineBytes: 16}, // 3 sets: not a power of two
		{SizeBytes: 64, Ways: 2, LineBytes: 24}, // line not a power of two
		{SizeBytes: -1, Ways: 1, LineBytes: 16},
	}
	for _, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

// Property: accessing the same address twice in a row always hits the
// second time, for any address.
func TestQuickTemporalLocality(t *testing.T) {
	c := New(DefaultL1())
	f := func(pa uint64) bool {
		c.Access(pa)
		return c.Access(pa)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a working set no larger than one set's associativity never
// conflicts.
func TestQuickNoConflictWithinWays(t *testing.T) {
	cfg := Config{SizeBytes: 1024, Ways: 4, LineBytes: 64}
	f := func(base uint32) bool {
		c := New(cfg)
		numSets := uint64(cfg.SizeBytes / cfg.Ways / cfg.LineBytes)
		stride := numSets * uint64(cfg.LineBytes)
		addrs := make([]uint64, cfg.Ways)
		for i := range addrs {
			addrs[i] = uint64(base) + uint64(i)*stride
		}
		for _, a := range addrs {
			c.Access(a)
		}
		for _, a := range addrs {
			if !c.Access(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAccessHit(b *testing.B) {
	c := New(DefaultL1())
	c.Access(0x1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(0x1000)
	}
}
