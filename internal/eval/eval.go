// Package eval contains the experiment drivers that regenerate every
// table and figure of the paper's evaluation (Section V):
//
//	Table I   — lines of code of each component (this repository's
//	            analogous components, counted from source).
//	Table II  — prototype system configuration.
//	Table III — hardware resource cost (internal/hw model).
//	§V-B      — system-level overhead of the (unused) ROLoad support.
//	Figure 3  — VCall vs VTint runtime & memory overheads (3 C++ SPEC-like).
//	Figure 4  — ICall vs CFI runtime overheads (all 11 SPEC-like).
//	Figure 5  — ICall vs CFI memory overheads (all 11 SPEC-like).
//
// All runs are fully deterministic: the simulator has no randomness,
// so a single run per (workload, scheme, system) cell suffices.
package eval

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"roload/internal/core"
	"roload/internal/spec"
)

// Scale selects workload sizes.
type Scale int

const (
	// ScaleTest runs small inputs (unit tests, smoke runs).
	ScaleTest Scale = iota
	// ScaleRef runs the reference inputs (the benchmark harness).
	ScaleRef
)

func src(w spec.Workload, s Scale) string {
	if s == ScaleRef {
		return w.RefSource()
	}
	return w.TestSource()
}

const maxSteps = 2_000_000_000

// OverheadPoint is one bar of Figures 3-5.
type OverheadPoint struct {
	Benchmark  string
	Scheme     core.Hardening
	RuntimePct float64
	MemPct     float64
	BaseCycles uint64
	Cycles     uint64
	BaseMemKiB uint64
	MemKiB     uint64
}

// Fig3 measures VCall and VTint on the three C++-style workloads
// using a fresh GOMAXPROCS-wide Runner.
func Fig3(s Scale) ([]OverheadPoint, error) {
	return NewRunner(0).Fig3(context.Background(), s)
}

// Fig4And5 measures ICall and CFI on all eleven workloads. Figure 4
// reads the runtime column; Figure 5 the memory column.
func Fig4And5(s Scale) ([]OverheadPoint, error) {
	return NewRunner(0).Fig4And5(context.Background(), s)
}

// ExtensionRetGuard measures the backward-edge extension on every
// workload (not a paper figure; the paper sketches the application in
// Section IV-C and this quantifies it).
func ExtensionRetGuard(s Scale) ([]OverheadPoint, error) {
	return NewRunner(0).ExtensionRetGuard(context.Background(), s)
}

// Average returns the mean runtime and memory overhead for one scheme.
func Average(points []OverheadPoint, h core.Hardening) (rt, mem float64, n int) {
	for _, p := range points {
		if p.Scheme == h {
			rt += p.RuntimePct
			mem += p.MemPct
			n++
		}
	}
	if n > 0 {
		rt /= float64(n)
		mem /= float64(n)
	}
	return
}

// SysOverheadRow is one benchmark's row of the Section V-B experiment.
type SysOverheadRow struct {
	Benchmark string
	// Cycles per system kind, and memory. Unhardened binaries must
	// behave identically: the ROLoad logic is inert when unused.
	BaseCycles, ProcCycles, FullCycles uint64
	BaseMemKiB, ProcMemKiB, FullMemKiB uint64
}

// ProcPct returns the processor-modified system's runtime overhead.
func (r SysOverheadRow) ProcPct() float64 {
	return 100 * (float64(r.ProcCycles) - float64(r.BaseCycles)) / float64(r.BaseCycles)
}

// FullPct returns the fully modified system's runtime overhead.
func (r SysOverheadRow) FullPct() float64 {
	return 100 * (float64(r.FullCycles) - float64(r.BaseCycles)) / float64(r.BaseCycles)
}

// SystemOverhead reproduces Section V-B: every unhardened workload on
// the baseline, processor-modified and processor+kernel-modified
// systems, using a fresh GOMAXPROCS-wide Runner.
func SystemOverhead(s Scale) ([]SysOverheadRow, error) {
	return NewRunner(0).SystemOverhead(context.Background(), s)
}

// LoCRow is one row of the Table I reproduction: the size of each
// component of this reproduction that corresponds to a paper
// component.
type LoCRow struct {
	Component string
	Language  string
	Dirs      []string
	Lines     int
}

// TableI counts the source lines of the components analogous to the
// paper's Table I (processor, kernel, compiler back-end). root is the
// repository root.
func TableI(root string) ([]LoCRow, error) {
	rows := []LoCRow{
		{Component: "RISC-V processor (ISA+core+MMU+caches)", Language: "Go",
			Dirs: []string{"internal/isa", "internal/cpu", "internal/mmu", "internal/cache", "internal/mem"}},
		{Component: "Kernel", Language: "Go", Dirs: []string{"internal/kernel"}},
		{Component: "Compiler back-end (cc+harden+asm)", Language: "Go",
			Dirs: []string{"internal/cc", "internal/cc/harden", "internal/asm"}},
	}
	for i := range rows {
		n := 0
		for _, d := range rows[i].Dirs {
			entries, err := os.ReadDir(filepath.Join(root, d))
			if err != nil {
				return nil, err
			}
			for _, e := range entries {
				name := e.Name()
				if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
					continue
				}
				b, err := os.ReadFile(filepath.Join(root, d, name))
				if err != nil {
					return nil, err
				}
				n += strings.Count(string(b), "\n")
			}
		}
		rows[i].Lines = n
	}
	return rows, nil
}

// TableII returns the prototype configuration strings (Table II).
func TableII() []string {
	return []string{
		"ISA:          RV64IM + ROLoad extension (ld.ro family, c.ld.ro), M/S/U-equivalent modes",
		"Caches:       32 KiB 8-way L1 I$, 32 KiB 8-way L1 D$ (64 B lines, true LRU)",
		"TLBs:         32-entry I-TLB, 32-entry D-TLB (keys in D-TLB entries)",
		"Memory:       256 MiB simulated DDR3 (4 KiB pages, lazy backing)",
		"Cost model:   1 IPC base; taken branch +2; mul +3; div +32; L1 miss +30; walk +12/access; trap +120",
		"Target clock: 125 MHz (timing model in internal/hw)",
	}
}

// RenderOverheads renders points as a two-series text figure, sorted
// by benchmark, with per-scheme averages — the textual equivalent of
// Figures 3-5.
func RenderOverheads(title string, points []OverheadPoint, runtime bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	byBench := map[string][]OverheadPoint{}
	var names []string
	for _, p := range points {
		if _, ok := byBench[p.Benchmark]; !ok {
			names = append(names, p.Benchmark)
		}
		byBench[p.Benchmark] = append(byBench[p.Benchmark], p)
	}
	sort.Strings(names)
	schemes := map[core.Hardening]bool{}
	for _, p := range points {
		schemes[p.Scheme] = true
	}
	for _, n := range names {
		fmt.Fprintf(&b, "  %-16s", n)
		ps := byBench[n]
		sort.Slice(ps, func(i, j int) bool { return ps[i].Scheme < ps[j].Scheme })
		for _, p := range ps {
			v := p.RuntimePct
			if !runtime {
				v = p.MemPct
			}
			fmt.Fprintf(&b, "  %v=%+.3f%%", p.Scheme, v)
		}
		b.WriteString("\n")
	}
	var hs []core.Hardening
	for h := range schemes {
		hs = append(hs, h)
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	for _, h := range hs {
		rt, mem, _ := Average(points, h)
		v := rt
		if !runtime {
			v = mem
		}
		fmt.Fprintf(&b, "  average %v = %+.3f%%\n", h, v)
	}
	return b.String()
}
