package eval

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"roload/internal/spec"
)

func TestHostBenchDocument(t *testing.T) {
	if testing.Short() {
		t.Skip("times every workload on all three engines")
	}
	doc, err := MeasureHostBench(context.Background(), ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != HostBenchSchema {
		t.Errorf("schema = %q, want %q", doc.Schema, HostBenchSchema)
	}
	if doc.Scale != "test" {
		t.Errorf("scale = %q", doc.Scale)
	}
	if len(doc.Entries) != len(spec.Workloads()) {
		t.Errorf("entries = %d, want %d", len(doc.Entries), len(spec.Workloads()))
	}
	var instSum uint64
	for _, e := range doc.Entries {
		if e.Instructions == 0 || e.InterpNS <= 0 || e.FastNS <= 0 || e.BlocksNS <= 0 {
			t.Errorf("degenerate entry %+v", e)
		}
		if e.InterpMIPS <= 0 || e.FastMIPS <= 0 || e.BlocksMIPS <= 0 {
			t.Errorf("entry %s missing MIPS: %+v", e.Benchmark, e)
		}
		if e.BlocksSpeedup <= 0 {
			t.Errorf("entry %s missing blocks speedup: %+v", e.Benchmark, e)
		}
		instSum += e.Instructions
	}
	if doc.Total.Benchmark != "total" || doc.Total.Instructions != instSum {
		t.Errorf("total row %+v inconsistent with entries (inst sum %d)", doc.Total, instSum)
	}
	if doc.Total.BlocksMIPS <= 0 || doc.Total.BlocksSpeedup <= 0 {
		t.Errorf("total row missing blocks measurement: %+v", doc.Total)
	}

	var buf bytes.Buffer
	if err := doc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("document is not valid JSON: %v", err)
	}
	if string(back["schema"]) != `"`+HostBenchSchema+`"` {
		t.Errorf("marshalled schema = %s", back["schema"])
	}
	for _, key := range []string{"scale", "go_max_procs", "entries", "total"} {
		if _, ok := back[key]; !ok {
			t.Errorf("document missing %q", key)
		}
	}
}
