package eval

import (
	"strings"
	"testing"

	"roload/internal/core"
)

// The defense-application shapes of Figures 3 and 4, at test scale:
// VCall must be cheaper than VTint, ICall cheaper than CFI, and the
// ROLoad-based schemes must stay near zero.
func TestFig3Shape(t *testing.T) {
	points, err := Fig3(ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3*2 {
		t.Fatalf("points = %d, want 6", len(points))
	}
	vcallRT, _, _ := Average(points, core.HardenVCall)
	vtintRT, _, _ := Average(points, core.HardenVTint)
	if vcallRT >= vtintRT {
		t.Errorf("VCall avg %.3f%% must beat VTint %.3f%%", vcallRT, vtintRT)
	}
	if vcallRT < 0 || vcallRT > 2.0 {
		t.Errorf("VCall avg %.3f%% out of the near-zero band", vcallRT)
	}
	for _, p := range points {
		if p.Scheme == core.HardenVTint && p.RuntimePct <= 0 {
			t.Errorf("%s: VTint overhead %.3f%% should be positive", p.Benchmark, p.RuntimePct)
		}
	}
}

func TestFig4And5Shape(t *testing.T) {
	points, err := Fig4And5(ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 11*2 {
		t.Fatalf("points = %d, want 22", len(points))
	}
	icallRT, icallMem, _ := Average(points, core.HardenICall)
	cfiRT, cfiMem, _ := Average(points, core.HardenCFI)
	if icallRT >= cfiRT {
		t.Errorf("ICall avg %.3f%% must beat CFI %.3f%%", icallRT, cfiRT)
	}
	if icallRT > 2.0 {
		t.Errorf("ICall avg %.3f%% not near zero", icallRT)
	}
	// Figure 5's ordering: ICall stores extra pointers in keyed pages,
	// so its memory overhead exceeds CFI's.
	if icallMem <= cfiMem {
		t.Errorf("ICall mem avg %.3f%% should exceed CFI %.3f%% (GFPT pages)", icallMem, cfiMem)
	}
}

// Section V-B: unhardened binaries run with ~0% overhead on the
// modified systems — in this deterministic model, exactly 0%.
func TestSystemOverheadZero(t *testing.T) {
	rows, err := SystemOverhead(ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ProcPct() != 0 || r.FullPct() != 0 {
			t.Errorf("%s: overheads %.4f%% / %.4f%%, want 0", r.Benchmark, r.ProcPct(), r.FullPct())
		}
		if r.BaseMemKiB != r.ProcMemKiB || r.BaseMemKiB != r.FullMemKiB {
			t.Errorf("%s: memory differs across systems", r.Benchmark)
		}
	}
}

func TestTableI(t *testing.T) {
	rows, err := TableI("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Lines < 100 {
			t.Errorf("%s: %d lines — component missing?", r.Component, r.Lines)
		}
	}
}

func TestTableII(t *testing.T) {
	lines := TableII()
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"32 KiB", "32-entry", "125 MHz", "ld.ro"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
}

func TestRenderOverheads(t *testing.T) {
	points := []OverheadPoint{
		{Benchmark: "x", Scheme: core.HardenVCall, RuntimePct: 0.3, MemPct: 0.1},
		{Benchmark: "x", Scheme: core.HardenVTint, RuntimePct: 2.7, MemPct: 0.2},
	}
	out := RenderOverheads("Fig 3", points, true)
	if !strings.Contains(out, "VCall=+0.300%") || !strings.Contains(out, "average") {
		t.Errorf("render:\n%s", out)
	}
	out = RenderOverheads("Fig 5", points, false)
	if !strings.Contains(out, "VTint=+0.200%") {
		t.Errorf("render mem:\n%s", out)
	}
}
