package eval

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"reflect"
	"testing"

	"roload/internal/core"
	"roload/internal/kernel"
	"roload/internal/mem"
	"roload/internal/spec"
)

// capture is everything observable about one simulated run: the full
// run result (cycles, instret, CPU/MMU/cache counters, stdout, audit),
// the roload-metrics/v1 snapshot document, and a digest of all
// physical memory contents at exit.
type capture struct {
	res      kernel.RunResult
	snapJSON string
	memSum   uint64
}

func runCell(t *testing.T, source string, h core.Hardening, sys core.SystemKind, eng core.Engine) capture {
	t.Helper()
	img, _, err := core.Build(source, h)
	if err != nil {
		t.Fatalf("build %v: %v", h, err)
	}
	cfg := sys.Config()
	cfg.MaxSteps = maxSteps
	eo := eng.Options(core.RunOptions{})
	cfg.CPU.NoFastPath = eo.NoFastPath
	cfg.CPU.NoBlocks = eo.NoBlocks
	machine := kernel.NewSystem(cfg)
	p, err := machine.Spawn(img)
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	res, err := machine.Run(p)
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	snap := res.Snapshot(sys.String())
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	sum := fnv.New64a()
	page := make([]byte, mem.PageSize)
	phys := machine.Phys()
	for _, pn := range phys.PageNumbers() {
		binary.Write(sum, binary.LittleEndian, pn)
		if err := phys.Read(pn<<mem.PageShift, page); err != nil {
			t.Fatalf("reading page %#x: %v", pn, err)
		}
		sum.Write(page)
	}
	return capture{res: res, snapJSON: buf.String(), memSum: sum.Sum64()}
}

// TestFastPathEquivalence proves the execution engines' hard
// invariant: interpreter, per-instruction fast path and block engine
// produce, for every test-scale workload under every hardening
// scheme, bit-identical cycles, statistics, MMU and cache counters,
// metrics snapshot, program output, and final physical memory
// contents. Runs that die with a signal (hardened binaries on the
// wrong system) must match too.
func TestFastPathEquivalence(t *testing.T) {
	type cell struct {
		name string
		src  string
		h    core.Hardening
		sys  core.SystemKind
	}
	// The full cross product: every workload × hardening × system cell
	// runs on all three engines, including the trap paths of hardened
	// binaries on systems that lack ld.ro support (SIGILL / SIGSEGV
	// deaths) — exactly the matrix the differential race check in
	// tools_test.go replays under the race detector.
	systems := []core.SystemKind{core.SysBaseline, core.SysProcessorOnly, core.SysFull}
	var cells []cell
	for _, w := range spec.Workloads() {
		for _, h := range []core.Hardening{core.HardenNone, core.HardenICall, core.HardenCFI, core.HardenRetGuard} {
			for _, sys := range systems {
				cells = append(cells, cell{
					name: fmt.Sprintf("%s/%v/%v", w.Name, h, sys),
					src:  w.TestSource(), h: h, sys: sys,
				})
			}
		}
	}
	for _, w := range spec.CXX() {
		for _, h := range []core.Hardening{core.HardenVCall, core.HardenVTint, core.HardenFull} {
			for _, sys := range systems {
				cells = append(cells, cell{
					name: fmt.Sprintf("%s/%v/%v", w.Name, h, sys),
					src:  w.TestSource(), h: h, sys: sys,
				})
			}
		}
	}
	if testing.Short() {
		// One workload's full hardening × system slab keeps every
		// engine code path (clean exits, SIGILL, SIGSEGV) in play.
		cells = cells[:12]
	}

	for _, c := range cells {
		c := c
		t.Run(c.name, func(t *testing.T) {
			interp := runCell(t, c.src, c.h, c.sys, core.EngineInterp)
			for _, eng := range []core.Engine{core.EngineFast, core.EngineBlocks} {
				got := runCell(t, c.src, c.h, c.sys, eng)
				if got.res.Cycles != interp.res.Cycles {
					t.Errorf("cycles: %v %d, interp %d", eng, got.res.Cycles, interp.res.Cycles)
				}
				if got.res.Instret != interp.res.Instret {
					t.Errorf("instret: %v %d, interp %d", eng, got.res.Instret, interp.res.Instret)
				}
				if !reflect.DeepEqual(got.res, interp.res) {
					t.Errorf("run results differ:\n%v:     %+v\ninterp: %+v", eng, got.res, interp.res)
				}
				if got.snapJSON != interp.snapJSON {
					t.Errorf("metrics snapshots differ:\n%v:     %s\ninterp: %s", eng, got.snapJSON, interp.snapJSON)
				}
				if got.memSum != interp.memSum {
					t.Errorf("final memory contents differ (%v digest %#x, interp %#x)", eng, got.memSum, interp.memSum)
				}
			}
		})
	}
}
