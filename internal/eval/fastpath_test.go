package eval

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"reflect"
	"testing"

	"roload/internal/core"
	"roload/internal/kernel"
	"roload/internal/mem"
	"roload/internal/spec"
)

// capture is everything observable about one simulated run: the full
// run result (cycles, instret, CPU/MMU/cache counters, stdout, audit),
// the roload-metrics/v1 snapshot document, and a digest of all
// physical memory contents at exit.
type capture struct {
	res      kernel.RunResult
	snapJSON string
	memSum   uint64
}

func runCell(t *testing.T, source string, h core.Hardening, sys core.SystemKind, noFast bool) capture {
	t.Helper()
	img, _, err := core.Build(source, h)
	if err != nil {
		t.Fatalf("build %v: %v", h, err)
	}
	cfg := sys.Config()
	cfg.MaxSteps = maxSteps
	cfg.CPU.NoFastPath = noFast
	machine := kernel.NewSystem(cfg)
	p, err := machine.Spawn(img)
	if err != nil {
		t.Fatalf("spawn: %v", err)
	}
	res, err := machine.Run(p)
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	snap := res.Snapshot(sys.String())
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	sum := fnv.New64a()
	page := make([]byte, mem.PageSize)
	phys := machine.Phys()
	for _, pn := range phys.PageNumbers() {
		binary.Write(sum, binary.LittleEndian, pn)
		if err := phys.Read(pn<<mem.PageShift, page); err != nil {
			t.Fatalf("reading page %#x: %v", pn, err)
		}
		sum.Write(page)
	}
	return capture{res: res, snapJSON: buf.String(), memSum: sum.Sum64()}
}

// TestFastPathEquivalence proves the fast-path engine's hard
// invariant: with fast paths on vs off, every test-scale workload
// under every hardening scheme produces bit-identical cycles,
// statistics, MMU and cache counters, metrics snapshot, program
// output, and final physical memory contents. Runs that die with a
// signal (hardened binaries on the wrong system) must match too.
func TestFastPathEquivalence(t *testing.T) {
	type cell struct {
		name string
		src  string
		h    core.Hardening
		sys  core.SystemKind
	}
	var cells []cell
	for _, w := range spec.Workloads() {
		for _, h := range []core.Hardening{core.HardenNone, core.HardenICall, core.HardenCFI, core.HardenRetGuard} {
			cells = append(cells, cell{
				name: fmt.Sprintf("%s/%v", w.Name, h),
				src:  w.TestSource(), h: h, sys: core.SysFull,
			})
		}
	}
	for _, w := range spec.CXX() {
		for _, h := range []core.Hardening{core.HardenVCall, core.HardenVTint, core.HardenFull} {
			cells = append(cells, cell{
				name: fmt.Sprintf("%s/%v", w.Name, h),
				src:  w.TestSource(), h: h, sys: core.SysFull,
			})
		}
	}
	// System sweep, including the trap paths of hardened binaries on
	// systems that lack ld.ro support (SIGILL / SIGSEGV deaths).
	w0 := spec.Workloads()[0]
	for _, sys := range []core.SystemKind{core.SysBaseline, core.SysProcessorOnly, core.SysFull} {
		cells = append(cells, cell{
			name: fmt.Sprintf("%s/none/%v", w0.Name, sys),
			src:  w0.TestSource(), h: core.HardenNone, sys: sys,
		})
		cells = append(cells, cell{
			name: fmt.Sprintf("%s/ICall/%v", w0.Name, sys),
			src:  w0.TestSource(), h: core.HardenICall, sys: sys,
		})
	}
	if testing.Short() {
		cells = cells[:4]
	}

	for _, c := range cells {
		c := c
		t.Run(c.name, func(t *testing.T) {
			fast := runCell(t, c.src, c.h, c.sys, false)
			slow := runCell(t, c.src, c.h, c.sys, true)
			if fast.res.Cycles != slow.res.Cycles {
				t.Errorf("cycles: fast %d, interp %d", fast.res.Cycles, slow.res.Cycles)
			}
			if fast.res.Instret != slow.res.Instret {
				t.Errorf("instret: fast %d, interp %d", fast.res.Instret, slow.res.Instret)
			}
			if !reflect.DeepEqual(fast.res, slow.res) {
				t.Errorf("run results differ:\nfast:   %+v\ninterp: %+v", fast.res, slow.res)
			}
			if fast.snapJSON != slow.snapJSON {
				t.Errorf("metrics snapshots differ:\nfast:   %s\ninterp: %s", fast.snapJSON, slow.snapJSON)
			}
			if fast.memSum != slow.memSum {
				t.Errorf("final memory contents differ (digest %#x vs %#x)", fast.memSum, slow.memSum)
			}
		})
	}
}
