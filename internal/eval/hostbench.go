// Host-side throughput measurement: how fast the *host* simulates,
// reported as simulated instructions per host second (MIPS), for the
// plain interpreter, the per-instruction fast path, and the
// block-compiling engine. This measures wall clock on the machine
// running the harness — it says nothing about the simulated results,
// which are bit-identical on every engine (the measurement asserts
// that as it goes). The document types live in internal/schema.
package eval

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"roload/internal/core"
	"roload/internal/schema"
	"roload/internal/spec"
)

// HostBenchSchema identifies the BENCH_host.json document format.
const HostBenchSchema = schema.HostBenchV1

type (
	// HostBenchEntry is one workload's per-engine timing.
	HostBenchEntry = schema.HostBenchEntry
	// HostBench is the whole document.
	HostBench = schema.HostBench
)

func mips(instructions uint64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(instructions) / 1e6 / d.Seconds()
}

// MeasureHostBench times every workload at the given scale, unhardened
// on the fully modified system, once per engine (interpreter,
// per-instruction fast path, block engine). It fails if any two
// engines disagree on cycles or retired instructions — the wall-clock
// comparison is only meaningful under the bit-identical invariant.
// Cancellation aborts mid-workload with the kernel's cancel error.
func MeasureHostBench(ctx context.Context, s Scale) (*HostBench, error) {
	doc := &HostBench{
		Schema:     HostBenchSchema,
		Scale:      scaleName(s),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, w := range spec.Workloads() {
		img, _, err := core.Build(src(w, s), core.HardenNone)
		if err != nil {
			return nil, fmt.Errorf("eval: hostbench %s: %w", w.Name, err)
		}
		var timings [3]time.Duration
		var results [3]core.Measurement
		for i, eng := range []core.Engine{core.EngineInterp, core.EngineFast, core.EngineBlocks} {
			t0 := time.Now()
			m, err := core.MeasureImage(ctx, img, core.HardenNone, core.SysFull,
				eng.Options(core.RunOptions{MaxSteps: maxSteps}))
			timings[i] = time.Since(t0)
			if err != nil {
				return nil, fmt.Errorf("eval: hostbench %s (%v): %w", w.Name, eng, err)
			}
			results[i] = m
			if i > 0 && (results[0].Result.Cycles != m.Result.Cycles || results[0].Result.Instret != m.Result.Instret) {
				return nil, fmt.Errorf("eval: hostbench %s: engines disagree (interp %d cycles / %d inst, %v %d cycles / %d inst)",
					w.Name, results[0].Result.Cycles, results[0].Result.Instret,
					eng, m.Result.Cycles, m.Result.Instret)
			}
		}
		interpNS, fastNS, blocksNS := timings[0], timings[1], timings[2]
		instret := results[0].Result.Instret
		e := HostBenchEntry{
			Benchmark:    w.Name,
			Instructions: instret,
			InterpNS:     interpNS.Nanoseconds(),
			FastNS:       fastNS.Nanoseconds(),
			BlocksNS:     blocksNS.Nanoseconds(),
			InterpMIPS:   mips(instret, interpNS),
			FastMIPS:     mips(instret, fastNS),
			BlocksMIPS:   mips(instret, blocksNS),
		}
		if fastNS > 0 {
			e.Speedup = float64(interpNS) / float64(fastNS)
		}
		if blocksNS > 0 {
			e.BlocksSpeedup = float64(fastNS) / float64(blocksNS)
		}
		doc.Entries = append(doc.Entries, e)
		doc.Total.Instructions += e.Instructions
		doc.Total.InterpNS += e.InterpNS
		doc.Total.FastNS += e.FastNS
		doc.Total.BlocksNS += e.BlocksNS
	}
	doc.Total.Benchmark = "total"
	doc.Total.InterpMIPS = mips(doc.Total.Instructions, time.Duration(doc.Total.InterpNS))
	doc.Total.FastMIPS = mips(doc.Total.Instructions, time.Duration(doc.Total.FastNS))
	doc.Total.BlocksMIPS = mips(doc.Total.Instructions, time.Duration(doc.Total.BlocksNS))
	if doc.Total.FastNS > 0 {
		doc.Total.Speedup = float64(doc.Total.InterpNS) / float64(doc.Total.FastNS)
	}
	if doc.Total.BlocksNS > 0 {
		doc.Total.BlocksSpeedup = float64(doc.Total.FastNS) / float64(doc.Total.BlocksNS)
	}
	return doc, nil
}
