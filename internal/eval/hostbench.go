// Host-side throughput measurement: how fast the *host* simulates,
// reported as simulated instructions per host second (MIPS), for the
// plain interpreter versus the fast-path engine. This measures wall
// clock on the machine running the harness — it says nothing about
// the simulated results, which are bit-identical on both engines (the
// measurement asserts that as it goes). The document types live in
// internal/schema.
package eval

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"roload/internal/core"
	"roload/internal/schema"
	"roload/internal/spec"
)

// HostBenchSchema identifies the BENCH_host.json document format.
const HostBenchSchema = schema.HostBenchV1

type (
	// HostBenchEntry is one workload's interpreter-vs-fast-path timing.
	HostBenchEntry = schema.HostBenchEntry
	// HostBench is the whole document.
	HostBench = schema.HostBench
)

func mips(instructions uint64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(instructions) / 1e6 / d.Seconds()
}

// MeasureHostBench times every workload at the given scale, unhardened
// on the fully modified system, once per engine. It fails if the two
// engines disagree on cycles or retired instructions — the wall-clock
// comparison is only meaningful under the bit-identical invariant.
// Cancellation aborts mid-workload with the kernel's cancel error.
func MeasureHostBench(ctx context.Context, s Scale) (*HostBench, error) {
	doc := &HostBench{
		Schema:     HostBenchSchema,
		Scale:      scaleName(s),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, w := range spec.Workloads() {
		img, _, err := core.Build(src(w, s), core.HardenNone)
		if err != nil {
			return nil, fmt.Errorf("eval: hostbench %s: %w", w.Name, err)
		}
		t0 := time.Now()
		slow, err := core.MeasureImage(ctx, img, core.HardenNone, core.SysFull,
			core.RunOptions{MaxSteps: maxSteps, NoFastPath: true})
		interpNS := time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("eval: hostbench %s (interp): %w", w.Name, err)
		}
		t0 = time.Now()
		fast, err := core.MeasureImage(ctx, img, core.HardenNone, core.SysFull,
			core.RunOptions{MaxSteps: maxSteps})
		fastNS := time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("eval: hostbench %s (fast): %w", w.Name, err)
		}
		if slow.Result.Cycles != fast.Result.Cycles || slow.Result.Instret != fast.Result.Instret {
			return nil, fmt.Errorf("eval: hostbench %s: engines disagree (interp %d cycles / %d inst, fast %d cycles / %d inst)",
				w.Name, slow.Result.Cycles, slow.Result.Instret, fast.Result.Cycles, fast.Result.Instret)
		}
		e := HostBenchEntry{
			Benchmark:    w.Name,
			Instructions: fast.Result.Instret,
			InterpNS:     interpNS.Nanoseconds(),
			FastNS:       fastNS.Nanoseconds(),
			InterpMIPS:   mips(fast.Result.Instret, interpNS),
			FastMIPS:     mips(fast.Result.Instret, fastNS),
		}
		if fastNS > 0 {
			e.Speedup = float64(interpNS) / float64(fastNS)
		}
		doc.Entries = append(doc.Entries, e)
		doc.Total.Instructions += e.Instructions
		doc.Total.InterpNS += e.InterpNS
		doc.Total.FastNS += e.FastNS
	}
	doc.Total.Benchmark = "total"
	doc.Total.InterpMIPS = mips(doc.Total.Instructions, time.Duration(doc.Total.InterpNS))
	doc.Total.FastMIPS = mips(doc.Total.Instructions, time.Duration(doc.Total.FastNS))
	if doc.Total.FastNS > 0 {
		doc.Total.Speedup = float64(doc.Total.InterpNS) / float64(doc.Total.FastNS)
	}
	return doc, nil
}
