package eval

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"roload/internal/core"
	"roload/internal/spec"
)

// TestRunnerParallelMatchesSerial proves result determinism: a wide
// worker pool must produce exactly the points a serial run produces,
// regardless of completion order.
func TestRunnerParallelMatchesSerial(t *testing.T) {
	serial, err := NewRunner(1).Fig3(context.Background(), ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewRunner(8).Fig3(context.Background(), ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel run diverged from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestRunnerNoFastPathMatches proves the runner's NoFastPath toggle
// changes nothing observable in the measurements.
func TestRunnerNoFastPathMatches(t *testing.T) {
	fast, err := NewRunner(4).Fig3(context.Background(), ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	slowRunner := NewRunner(4)
	slowRunner.NoFastPath = true
	slow, err := slowRunner.Fig3(context.Background(), ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fast, slow) {
		t.Errorf("fast-path run diverged from interpreter run:\nfast:   %+v\ninterp: %+v", fast, slow)
	}
}

// TestRunnerImageCache proves compile-once: every Measure of the same
// (source, hardening) shares one image, concurrently and across
// systems.
func TestRunnerImageCache(t *testing.T) {
	r := NewRunner(8)
	source := spec.Workloads()[0].TestSource()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Image(source, core.HardenICall); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	img1, err := r.Image(source, core.HardenICall)
	if err != nil {
		t.Fatal(err)
	}
	img2, err := r.Image(source, core.HardenICall)
	if err != nil {
		t.Fatal(err)
	}
	if img1 != img2 {
		t.Error("repeated Image calls returned distinct images")
	}
	if len(r.images) != 1 {
		t.Errorf("image cache holds %d entries, want 1", len(r.images))
	}

	m1, err := r.Measure(context.Background(), source, core.HardenICall, core.SysFull)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := r.Measure(context.Background(), source, core.HardenICall, core.SysFull)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Error("memoized Measure returned different measurements")
	}
	if len(r.meas) != 1 {
		t.Errorf("measurement memo holds %d entries, want 1", len(r.meas))
	}
}

// TestRunnerForEachLowestError proves the pool surfaces the error a
// serial run would have hit first, whatever the completion order, and
// still visits every index.
func TestRunnerForEachLowestError(t *testing.T) {
	r := NewRunner(8)
	var mu sync.Mutex
	visited := make(map[int]bool)
	err := r.forEach(64, func(i int) error {
		mu.Lock()
		visited[i] = true
		mu.Unlock()
		if i >= 7 && i%3 == 1 {
			return fmt.Errorf("fail %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "fail 7" {
		t.Errorf("forEach error = %v, want fail 7", err)
	}
	if len(visited) != 64 {
		t.Errorf("forEach visited %d indices, want 64", len(visited))
	}

	if err := NewRunner(1).forEach(3, func(int) error { return nil }); err != nil {
		t.Errorf("serial forEach: %v", err)
	}
}

// TestRunnerCancelEvictsMemo proves a cancelled Measure does not
// poison the memo: the failed leader's entry is evicted, and a later
// caller with a live context gets a real measurement, identical to an
// uncontended one.
func TestRunnerCancelEvictsMemo(t *testing.T) {
	source := spec.Workloads()[0].TestSource()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already dead: the leader must fail with a ctx error
	r := NewRunner(4)
	if _, err := r.Measure(ctx, source, core.HardenNone, core.SysFull); err == nil {
		t.Fatal("Measure with a cancelled context succeeded")
	}
	r.mu.Lock()
	stale := len(r.meas)
	r.mu.Unlock()
	if stale != 0 {
		t.Fatalf("cancelled Measure left %d memo entries", stale)
	}

	got, err := r.Measure(context.Background(), source, core.HardenNone, core.SysFull)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewRunner(1).Measure(context.Background(), source, core.HardenNone, core.SysFull)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-eviction measurement diverged: %+v vs %+v", got, want)
	}

	// Concurrent waiters racing a cancelled leader must also converge:
	// each uses its own context, so live callers retry and succeed.
	var wg sync.WaitGroup
	r2 := NewRunner(4)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		live := i%2 == 0
		go func() {
			defer wg.Done()
			c := context.Background()
			if !live {
				var cancel2 context.CancelFunc
				c, cancel2 = context.WithCancel(c)
				cancel2()
			}
			m, err := r2.Measure(c, source, core.HardenNone, core.SysFull)
			if live {
				if err != nil {
					t.Errorf("live waiter failed: %v", err)
				} else if !reflect.DeepEqual(m, want) {
					t.Error("live waiter got a divergent measurement")
				}
			}
		}()
	}
	wg.Wait()
}
