package eval

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestBuildReport runs the whole harness at test scale and checks the
// machine-readable document against its schema: every DESIGN.md §4
// experiment id present with data, round-trippable JSON, and sane
// cross-field invariants.
func TestBuildReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment; skipped in -short mode")
	}
	r, err := BuildReport(ScaleTest, "../..")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	for _, id := range ExperimentIDs {
		if _, ok := doc[id]; !ok {
			t.Errorf("JSON document missing experiment id %q", id)
		}
	}
	if string(doc["schema"]) != `"`+ReportSchema+`"` {
		t.Errorf("schema = %s", doc["schema"])
	}

	// Round-trip: a consumer re-decoding the document must see a
	// report that still validates.
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Errorf("round-tripped report invalid: %v", err)
	}

	// Spot checks on content.
	if len(r.Fig3) == 0 || r.Fig3[0].Scheme == "" {
		t.Error("fig3 entries must carry scheme names")
	}
	for _, e := range r.SysOverhead {
		if e.BaseCycles == 0 {
			t.Errorf("sysoverhead %s: zero baseline cycles", e.Benchmark)
		}
	}
	for _, e := range r.Security {
		if e.Hijacked && e.Covered {
			t.Errorf("security: %s under %s hijacked despite coverage", e.Scenario, e.Scheme)
		}
	}
}

func TestReportValidateRejectsBadDocs(t *testing.T) {
	r := &Report{Schema: "wrong", Scale: "test"}
	if err := r.Validate(); err == nil {
		t.Error("wrong schema accepted")
	}
	r = &Report{Schema: ReportSchema, Scale: "huge"}
	if err := r.Validate(); err == nil {
		t.Error("unknown scale accepted")
	}
	r = &Report{Schema: ReportSchema, Scale: "test"}
	if err := r.Validate(); err == nil {
		t.Error("empty report accepted")
	}
}
