// Machine-readable benchmark report: a single JSON document covering
// every experiment of the evaluation (DESIGN.md §4), produced by
// `roload-bench -json`. The schema is versioned so downstream tooling
// can detect incompatible changes.
package eval

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"roload/internal/attack"
	"roload/internal/core"
	"roload/internal/hw"
)

// ReportSchema identifies the report document format.
const ReportSchema = "roload-bench/v1"

// ExperimentIDs lists every experiment id of DESIGN.md §4, in paper
// order. A valid report carries data for each of them.
var ExperimentIDs = []string{
	"table1", "table2", "table3", "sysoverhead",
	"fig3", "fig4", "fig5", "retguard", "security",
}

// OverheadEntry is the JSON form of one OverheadPoint. Scheme is the
// scheme's display name so the document is self-describing.
type OverheadEntry struct {
	Benchmark  string  `json:"benchmark"`
	Scheme     string  `json:"scheme"`
	RuntimePct float64 `json:"runtime_pct"`
	MemPct     float64 `json:"mem_pct"`
	BaseCycles uint64  `json:"base_cycles"`
	Cycles     uint64  `json:"cycles"`
	BaseMemKiB uint64  `json:"base_mem_kib"`
	MemKiB     uint64  `json:"mem_kib"`
}

func overheadEntries(points []OverheadPoint) []OverheadEntry {
	out := make([]OverheadEntry, len(points))
	for i, p := range points {
		out[i] = OverheadEntry{
			Benchmark:  p.Benchmark,
			Scheme:     p.Scheme.String(),
			RuntimePct: p.RuntimePct,
			MemPct:     p.MemPct,
			BaseCycles: p.BaseCycles,
			Cycles:     p.Cycles,
			BaseMemKiB: p.BaseMemKiB,
			MemKiB:     p.MemKiB,
		}
	}
	return out
}

// LoCEntry is one Table I row.
type LoCEntry struct {
	Component string `json:"component"`
	Language  string `json:"language"`
	Lines     int    `json:"lines"`
}

// HWEntry summarizes the Table III synthesis model.
type HWEntry struct {
	CoreBaseLUT   int     `json:"core_base_lut"`
	CoreBaseFF    int     `json:"core_base_ff"`
	CoreDeltaLUT  int     `json:"core_delta_lut"`
	CoreDeltaFF   int     `json:"core_delta_ff"`
	CorePctLUT    float64 `json:"core_pct_lut"`
	CorePctFF     float64 `json:"core_pct_ff"`
	FmaxBaseMHz   float64 `json:"fmax_base_mhz"`
	FmaxROLoadMHz float64 `json:"fmax_roload_mhz"`
}

// SysOverheadEntry is one Section V-B row.
type SysOverheadEntry struct {
	Benchmark  string  `json:"benchmark"`
	BaseCycles uint64  `json:"base_cycles"`
	ProcCycles uint64  `json:"proc_cycles"`
	FullCycles uint64  `json:"full_cycles"`
	ProcPct    float64 `json:"proc_pct"`
	FullPct    float64 `json:"full_pct"`
}

// AttackEntry is one cell of the Section V-C2 security matrix.
// Covered records whether the scheme's protection scope includes the
// scenario: hijacked && covered is a defense failure, while a hijack
// under an uncovered scheme is the expected negative control.
type AttackEntry struct {
	Scenario string `json:"scenario"`
	Scheme   string `json:"scheme"`
	Outcome  string `json:"outcome"`
	Hijacked bool   `json:"hijacked"`
	Covered  bool   `json:"covered"`
}

// Report is the complete machine-readable evaluation document. Every
// DESIGN.md §4 experiment id appears as a field whose JSON key equals
// the id.
type Report struct {
	Schema      string             `json:"schema"`
	Scale       string             `json:"scale"`
	Table1      []LoCEntry         `json:"table1"`
	Table2      []string           `json:"table2"`
	Table3      HWEntry            `json:"table3"`
	SysOverhead []SysOverheadEntry `json:"sysoverhead"`
	Fig3        []OverheadEntry    `json:"fig3"`
	Fig4        []OverheadEntry    `json:"fig4"`
	Fig5        []OverheadEntry    `json:"fig5"`
	RetGuard    []OverheadEntry    `json:"retguard"`
	Security    []AttackEntry      `json:"security"`
}

func scaleName(s Scale) string {
	if s == ScaleRef {
		return "ref"
	}
	return "test"
}

// BuildReport runs every experiment at the given scale and assembles
// the report, using a fresh GOMAXPROCS-wide Runner. root is the
// repository root (Table I line counting).
func BuildReport(s Scale, root string) (*Report, error) {
	return NewRunner(0).BuildReport(s, root)
}

// BuildReport runs every experiment at the given scale on this Runner
// and assembles the report. Measurements shared between experiments
// (the unhardened full-system runs appear in sysoverhead and as every
// figure's baseline) are measured once thanks to the Runner's memo.
func (run *Runner) BuildReport(s Scale, root string) (*Report, error) {
	r := &Report{Schema: ReportSchema, Scale: scaleName(s)}

	locRows, err := TableI(root)
	if err != nil {
		return nil, fmt.Errorf("eval: table1: %w", err)
	}
	for _, row := range locRows {
		r.Table1 = append(r.Table1, LoCEntry{
			Component: row.Component, Language: row.Language, Lines: row.Lines,
		})
	}

	r.Table2 = TableII()

	syn := hw.Synthesize(hw.DefaultConfig())
	delta := syn.CoreROLoad
	delta.LUT -= syn.CoreBase.LUT
	delta.FF -= syn.CoreBase.FF
	r.Table3 = HWEntry{
		CoreBaseLUT:   syn.CoreBase.LUT,
		CoreBaseFF:    syn.CoreBase.FF,
		CoreDeltaLUT:  delta.LUT,
		CoreDeltaFF:   delta.FF,
		CorePctLUT:    syn.PctLUT(),
		CorePctFF:     syn.PctFF(),
		FmaxBaseMHz:   syn.TimingBase.FmaxMHz,
		FmaxROLoadMHz: syn.TimingROLoad.FmaxMHz,
	}

	sysRows, err := run.SystemOverhead(s)
	if err != nil {
		return nil, fmt.Errorf("eval: sysoverhead: %w", err)
	}
	for _, row := range sysRows {
		r.SysOverhead = append(r.SysOverhead, SysOverheadEntry{
			Benchmark:  row.Benchmark,
			BaseCycles: row.BaseCycles,
			ProcCycles: row.ProcCycles,
			FullCycles: row.FullCycles,
			ProcPct:    row.ProcPct(),
			FullPct:    row.FullPct(),
		})
	}

	fig3, err := run.Fig3(s)
	if err != nil {
		return nil, fmt.Errorf("eval: fig3: %w", err)
	}
	r.Fig3 = overheadEntries(fig3)

	// Figures 4 and 5 read the runtime and memory columns of the same
	// measurement; both ids carry the full rows so either axis can be
	// reconstructed from either field.
	fig45, err := run.Fig4And5(s)
	if err != nil {
		return nil, fmt.Errorf("eval: fig4/fig5: %w", err)
	}
	r.Fig4 = overheadEntries(fig45)
	r.Fig5 = overheadEntries(fig45)

	rg, err := run.ExtensionRetGuard(s)
	if err != nil {
		return nil, fmt.Errorf("eval: retguard: %w", err)
	}
	r.RetGuard = overheadEntries(rg)

	results, err := attack.Matrix()
	if err != nil {
		return nil, fmt.Errorf("eval: security: %w", err)
	}
	scenarios := map[string]*attack.Scenario{}
	for _, sc := range attack.AllScenarios() {
		scenarios[sc.Name] = sc
	}
	for _, res := range results {
		scheme := "none"
		if res.Hardening != core.HardenNone {
			scheme = res.Hardening.String()
		}
		covered := false
		if sc := scenarios[res.Scenario]; sc != nil {
			covered = sc.Covers(res.Hardening)
		}
		r.Security = append(r.Security, AttackEntry{
			Scenario: res.Scenario,
			Scheme:   scheme,
			Outcome:  res.Outcome.String(),
			Hijacked: res.Outcome == attack.Hijacked,
			Covered:  covered,
		})
	}

	return r, nil
}

// Validate checks the report against the schema contract: correct
// schema string, a known scale, and non-empty data under every
// experiment id of DESIGN.md §4.
func (r *Report) Validate() error {
	if r.Schema != ReportSchema {
		return fmt.Errorf("eval: report schema %q, want %q", r.Schema, ReportSchema)
	}
	if r.Scale != "ref" && r.Scale != "test" {
		return fmt.Errorf("eval: unknown scale %q", r.Scale)
	}
	// Marshal and check the ids generically so the list in
	// ExperimentIDs stays the single source of truth.
	raw, err := json.Marshal(r)
	if err != nil {
		return err
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		return err
	}
	missing := []string{}
	for _, id := range ExperimentIDs {
		v, ok := doc[id]
		if !ok || string(v) == "null" || string(v) == "[]" || string(v) == "{}" {
			missing = append(missing, id)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("eval: report missing experiments: %v", missing)
	}
	if len(r.Fig4) != len(r.Fig5) {
		return fmt.Errorf("eval: fig4 (%d rows) and fig5 (%d rows) must cover the same measurement",
			len(r.Fig4), len(r.Fig5))
	}
	for _, e := range r.Security {
		if e.Scenario == "" || e.Scheme == "" || e.Outcome == "" {
			return fmt.Errorf("eval: incomplete security entry %+v", e)
		}
	}
	return nil
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
