// Machine-readable benchmark report: a single JSON document covering
// every experiment of the evaluation (DESIGN.md §4), produced by
// `roload-bench -json`. The document types and schema identifier live
// in internal/schema (shared with the HTTP service); this file is the
// assembly logic — per-experiment dispatch plus the whole-report
// driver.
package eval

import (
	"context"
	"fmt"
	"strings"

	"roload/internal/attack"
	"roload/internal/hw"
	"roload/internal/schema"
)

// ReportSchema identifies the report document format.
const ReportSchema = schema.BenchV1

// ExperimentIDs lists every experiment id of DESIGN.md §4, in paper
// order. A valid report carries data for each of them.
var ExperimentIDs = schema.ExperimentIDs

// Aliases for the document types, which moved to internal/schema so
// consumers can decode reports without importing the harness. Existing
// eval-based callers keep compiling unchanged.
type (
	// Report is the complete machine-readable evaluation document.
	Report = schema.BenchReport
	// OverheadEntry is the JSON form of one OverheadPoint.
	OverheadEntry = schema.OverheadEntry
	// LoCEntry is one Table I row.
	LoCEntry = schema.LoCEntry
	// HWEntry summarizes the Table III synthesis model.
	HWEntry = schema.HWEntry
	// SysOverheadEntry is one Section V-B row.
	SysOverheadEntry = schema.SysOverheadEntry
	// AttackEntry is one cell of the Section V-C2 security matrix.
	AttackEntry = schema.AttackEntry
)

func overheadEntries(points []OverheadPoint) []OverheadEntry {
	out := make([]OverheadEntry, len(points))
	for i, p := range points {
		out[i] = OverheadEntry{
			Benchmark:  p.Benchmark,
			Scheme:     p.Scheme.String(),
			RuntimePct: p.RuntimePct,
			MemPct:     p.MemPct,
			BaseCycles: p.BaseCycles,
			Cycles:     p.Cycles,
			BaseMemKiB: p.BaseMemKiB,
			MemKiB:     p.MemKiB,
		}
	}
	return out
}

func scaleName(s Scale) string {
	if s == ScaleRef {
		return "ref"
	}
	return "test"
}

// ParseScale maps a scale name to its Scale (the inverse of
// scaleName); internal/cli exposes it to every tool's -scale flag.
func ParseScale(name string) (Scale, error) {
	switch name {
	case "ref":
		return ScaleRef, nil
	case "test":
		return ScaleTest, nil
	}
	return 0, fmt.Errorf("unknown scale %q (known: ref, test)", name)
}

// Experiment computes one DESIGN.md §4 experiment and returns exactly
// the value the roload-bench/v1 report stores under that id. The
// dispatch is shared by BuildReport and the HTTP service's
// POST /v1/experiments/{id}; cells shared across ids (every figure's
// unhardened baseline, the sysoverhead full-system column, the single
// measurement behind fig4 and fig5) are computed once per Runner
// thanks to the measurement memo. root is the repository root (only
// table1 reads it).
func (run *Runner) Experiment(ctx context.Context, id string, s Scale, root string) (any, error) {
	switch id {
	case "table1":
		locRows, err := TableI(root)
		if err != nil {
			return nil, err
		}
		out := make([]LoCEntry, 0, len(locRows))
		for _, row := range locRows {
			out = append(out, LoCEntry{
				Component: row.Component, Language: row.Language, Lines: row.Lines,
			})
		}
		return out, nil

	case "table2":
		return TableII(), nil

	case "table3":
		syn := hw.Synthesize(hw.DefaultConfig())
		delta := syn.CoreROLoad
		delta.LUT -= syn.CoreBase.LUT
		delta.FF -= syn.CoreBase.FF
		return HWEntry{
			CoreBaseLUT:   syn.CoreBase.LUT,
			CoreBaseFF:    syn.CoreBase.FF,
			CoreDeltaLUT:  delta.LUT,
			CoreDeltaFF:   delta.FF,
			CorePctLUT:    syn.PctLUT(),
			CorePctFF:     syn.PctFF(),
			FmaxBaseMHz:   syn.TimingBase.FmaxMHz,
			FmaxROLoadMHz: syn.TimingROLoad.FmaxMHz,
		}, nil

	case "sysoverhead":
		sysRows, err := run.SystemOverhead(ctx, s)
		if err != nil {
			return nil, err
		}
		out := make([]SysOverheadEntry, 0, len(sysRows))
		for _, row := range sysRows {
			out = append(out, SysOverheadEntry{
				Benchmark:  row.Benchmark,
				BaseCycles: row.BaseCycles,
				ProcCycles: row.ProcCycles,
				FullCycles: row.FullCycles,
				ProcPct:    row.ProcPct(),
				FullPct:    row.FullPct(),
			})
		}
		return out, nil

	case "fig3":
		points, err := run.Fig3(ctx, s)
		if err != nil {
			return nil, err
		}
		return overheadEntries(points), nil

	case "fig4", "fig5":
		// Figures 4 and 5 read the runtime and memory columns of the
		// same measurement; both ids carry the full rows so either axis
		// can be reconstructed from either field.
		points, err := run.Fig4And5(ctx, s)
		if err != nil {
			return nil, err
		}
		return overheadEntries(points), nil

	case "retguard":
		points, err := run.ExtensionRetGuard(ctx, s)
		if err != nil {
			return nil, err
		}
		return overheadEntries(points), nil

	case "security":
		results, err := attack.MatrixContext(ctx)
		if err != nil {
			return nil, err
		}
		return attack.Entries(results, false), nil
	}
	return nil, fmt.Errorf("eval: unknown experiment %q (known: %s)",
		id, strings.Join(ExperimentIDs, ", "))
}

// BuildReport runs every experiment at the given scale and assembles
// the report, using a fresh GOMAXPROCS-wide Runner. root is the
// repository root (Table I line counting).
func BuildReport(s Scale, root string) (*Report, error) {
	return NewRunner(0).BuildReport(context.Background(), s, root)
}

// BuildReport runs every experiment at the given scale on this Runner
// and assembles the report. Measurements shared between experiments
// (the unhardened full-system runs appear in sysoverhead and as every
// figure's baseline) are measured once thanks to the Runner's memo.
func (run *Runner) BuildReport(ctx context.Context, s Scale, root string) (*Report, error) {
	r := &Report{Schema: ReportSchema, Scale: scaleName(s)}
	for _, id := range ExperimentIDs {
		data, err := run.Experiment(ctx, id, s, root)
		if err != nil {
			return nil, fmt.Errorf("eval: %s: %w", id, err)
		}
		switch id {
		case "table1":
			r.Table1 = data.([]LoCEntry)
		case "table2":
			r.Table2 = data.([]string)
		case "table3":
			r.Table3 = data.(HWEntry)
		case "sysoverhead":
			r.SysOverhead = data.([]SysOverheadEntry)
		case "fig3":
			r.Fig3 = data.([]OverheadEntry)
		case "fig4":
			r.Fig4 = data.([]OverheadEntry)
		case "fig5":
			r.Fig5 = data.([]OverheadEntry)
		case "retguard":
			r.RetGuard = data.([]OverheadEntry)
		case "security":
			r.Security = data.([]AttackEntry)
		}
	}
	return r, nil
}
