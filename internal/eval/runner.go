// Runner: the concurrent measurement engine behind the experiment
// drivers and the HTTP service. Every (source, hardening, system) cell
// the evaluation needs is measured exactly once — images are compiled
// once per (source, hardening) and shared read-only across systems,
// and cells shared between experiments (the unhardened full-system
// runs are the baseline of every figure *and* a column of the Section
// V-B table) are deduplicated by memoization. Cells are warmed by a
// bounded worker pool; the assembly of tables and figures stays
// serial, so results, orderings and error messages are identical to a
// serial run regardless of completion order.
//
// Measurement is context-aware: a cell whose leader is cancelled
// mid-run is evicted from the memo (a dead tenant must not poison the
// cache for live ones), and waiters whose own context is still live
// simply re-run the cell.
package eval

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"roload/internal/asm"
	"roload/internal/core"
	"roload/internal/spec"
)

type imageKey struct {
	src string
	h   core.Hardening
}

type imageEntry struct {
	once sync.Once
	img  *asm.Image
	err  error
}

type measureKey struct {
	src string
	h   core.Hardening
	sys core.SystemKind
}

type measureEntry struct {
	done chan struct{}
	m    core.Measurement
	err  error
}

// Runner measures experiment cells with a bounded worker pool and
// memoizes both compiled images and measurements. The zero value is
// not usable; call NewRunner. A Runner is safe for concurrent use —
// including by concurrent HTTP requests sharing one server-wide
// instance.
type Runner struct {
	// NoFastPath forwards to every simulator instance (see
	// cpu.Config.NoFastPath). Set before the first measurement.
	NoFastPath bool

	parallel int

	mu     sync.Mutex
	images map[imageKey]*imageEntry
	meas   map[measureKey]*measureEntry

	imageHits   atomic.Uint64
	imageMisses atomic.Uint64
}

// NewRunner returns a Runner running up to parallel cells at once;
// parallel <= 0 selects GOMAXPROCS.
func NewRunner(parallel int) *Runner {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		parallel: parallel,
		images:   make(map[imageKey]*imageEntry),
		meas:     make(map[measureKey]*measureEntry),
	}
}

// RunnerStats describes the Runner's caches (service /metrics).
type RunnerStats struct {
	Images       int
	Measurements int
	ImageHits    uint64
	ImageMisses  uint64
}

// Stats returns a point-in-time view of the caches.
func (r *Runner) Stats() RunnerStats {
	r.mu.Lock()
	images, meas := len(r.images), len(r.meas)
	r.mu.Unlock()
	return RunnerStats{
		Images:       images,
		Measurements: meas,
		ImageHits:    r.imageHits.Load(),
		ImageMisses:  r.imageMisses.Load(),
	}
}

// Image compiles src under h, once per (src, h); concurrent callers
// share the result. Images are immutable after assembly, so sharing
// them across simulator instances is safe. Compilation is quick and
// deterministic, so it deliberately takes no context: once started it
// always completes and the cache entry is always reusable.
func (r *Runner) Image(src string, h core.Hardening) (*asm.Image, error) {
	img, _, err := r.CachedImage(src, h)
	return img, err
}

// CachedImage is Image plus the cache verdict: hit reports whether the
// image was already compiled (true) or this call compiled it (false).
// The HTTP service's batch endpoint uses the verdict to prove its
// compile-exactly-once contract.
func (r *Runner) CachedImage(src string, h core.Hardening) (img *asm.Image, hit bool, err error) {
	r.mu.Lock()
	e, ok := r.images[imageKey{src, h}]
	if !ok {
		e = &imageEntry{}
		r.images[imageKey{src, h}] = e
	}
	r.mu.Unlock()
	if ok {
		r.imageHits.Add(1)
	} else {
		r.imageMisses.Add(1)
	}
	e.once.Do(func() {
		e.img, _, e.err = core.Build(src, h)
	})
	return e.img, ok, e.err
}

// ctxErr reports whether err stems from context cancellation or an
// expired deadline (including kernel.CanceledError wrappers).
func ctxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Measure builds (via the image cache) and runs one cell, once per
// (src, h, sys); concurrent and repeated callers share the result.
// A cell cancelled mid-run is evicted so a later caller with a live
// context measures it afresh; waiters bail out on their own context
// without disturbing the leader.
func (r *Runner) Measure(ctx context.Context, src string, h core.Hardening, sys core.SystemKind) (core.Measurement, error) {
	k := measureKey{src, h, sys}
	for {
		r.mu.Lock()
		e, ok := r.meas[k]
		if !ok {
			e = &measureEntry{done: make(chan struct{})}
			r.meas[k] = e
			r.mu.Unlock()
			e.m, e.err = r.measureCell(ctx, src, h, sys)
			if ctxErr(e.err) {
				r.mu.Lock()
				if r.meas[k] == e {
					delete(r.meas, k)
				}
				r.mu.Unlock()
			}
			close(e.done)
			return e.m, e.err
		}
		r.mu.Unlock()
		select {
		case <-e.done:
			if ctxErr(e.err) {
				// The leader was cancelled; this waiter's context may
				// still be live — retry against a fresh entry (or fail
				// fast if our own context is also done).
				if err := ctx.Err(); err != nil {
					return core.Measurement{}, err
				}
				continue
			}
			return e.m, e.err
		case <-ctx.Done():
			return core.Measurement{}, ctx.Err()
		}
	}
}

func (r *Runner) measureCell(ctx context.Context, src string, h core.Hardening, sys core.SystemKind) (core.Measurement, error) {
	img, err := r.Image(src, h)
	if err != nil {
		return core.Measurement{}, err
	}
	return core.MeasureImage(ctx, img, h, sys, core.RunOptions{
		MaxSteps:   maxSteps,
		NoFastPath: r.NoFastPath,
	})
}

// forEach runs fn(0..n-1) on the worker pool. All indices run even if
// some fail; the returned error is the lowest-index failure — the one
// serial execution would have surfaced first — so the outcome is
// deterministic regardless of completion order.
func (r *Runner) forEach(n int, fn func(int) error) error {
	return ForEach(r.parallel, n, fn)
}

// ForEach runs fn(0..n-1) across at most workers goroutines. All
// indices run even if some fail; the returned error is the lowest-index
// failure — the one serial execution would have surfaced first — so the
// outcome is deterministic regardless of completion order. It is the
// worker pool behind Runner and the replica driver of the redundant
// supervisor.
func ForEach(workers, n int, fn func(int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// warm concurrently populates the measurement memo for a set of cells.
// Errors are deliberately swallowed: they are memoized, and the serial
// assembly that follows re-reads the memo and reports the same error a
// serial run would, in the same order and wording. (Cancellation is
// the exception — cancelled cells are evicted, and the serial re-read
// surfaces the caller's own context error.)
func (r *Runner) warm(ctx context.Context, cells []measureKey) {
	r.forEach(len(cells), func(i int) error {
		r.Measure(ctx, cells[i].src, cells[i].h, cells[i].sys)
		return nil
	})
}

// measureOverheads is the Runner-backed engine of Figures 3-5 and the
// RetGuard extension: each workload unhardened and under each scheme
// on the fully modified system.
func (r *Runner) measureOverheads(ctx context.Context, ws []spec.Workload, schemes []core.Hardening, s Scale) ([]OverheadPoint, error) {
	var cells []measureKey
	for _, w := range ws {
		source := src(w, s)
		cells = append(cells, measureKey{source, core.HardenNone, core.SysFull})
		for _, h := range schemes {
			cells = append(cells, measureKey{source, h, core.SysFull})
		}
	}
	r.warm(ctx, cells)

	var out []OverheadPoint
	for _, w := range ws {
		source := src(w, s)
		base, err := r.Measure(ctx, source, core.HardenNone, core.SysFull)
		if err != nil {
			return nil, fmt.Errorf("eval: %s baseline: %w", w.Name, err)
		}
		if !base.Result.Exited {
			return nil, fmt.Errorf("eval: %s baseline killed by %v", w.Name, base.Result.Signal)
		}
		for _, h := range schemes {
			m, err := r.Measure(ctx, source, h, core.SysFull)
			if err != nil {
				return nil, fmt.Errorf("eval: %s under %v: %w", w.Name, h, err)
			}
			if !m.Result.Exited {
				return nil, fmt.Errorf("eval: %s under %v killed by %v", w.Name, h, m.Result.Signal)
			}
			if string(m.Result.Stdout) != string(base.Result.Stdout) {
				return nil, fmt.Errorf("eval: %s under %v produced different output", w.Name, h)
			}
			rt, mem := core.Overhead(base, m)
			out = append(out, OverheadPoint{
				Benchmark:  w.Name,
				Scheme:     h,
				RuntimePct: rt,
				MemPct:     mem,
				BaseCycles: base.Result.Cycles,
				Cycles:     m.Result.Cycles,
				BaseMemKiB: base.Result.MemPeakKiB,
				MemKiB:     m.Result.MemPeakKiB,
			})
		}
	}
	return out, nil
}

// Fig3 measures VCall and VTint on the three C++-style workloads.
func (r *Runner) Fig3(ctx context.Context, s Scale) ([]OverheadPoint, error) {
	return r.measureOverheads(ctx, spec.CXX(), []core.Hardening{core.HardenVCall, core.HardenVTint}, s)
}

// Fig4And5 measures ICall and CFI on all eleven workloads.
func (r *Runner) Fig4And5(ctx context.Context, s Scale) ([]OverheadPoint, error) {
	return r.measureOverheads(ctx, spec.Workloads(), []core.Hardening{core.HardenICall, core.HardenCFI}, s)
}

// ExtensionRetGuard measures the backward-edge extension on every
// workload.
func (r *Runner) ExtensionRetGuard(ctx context.Context, s Scale) ([]OverheadPoint, error) {
	return r.measureOverheads(ctx, spec.Workloads(), []core.Hardening{core.HardenRetGuard}, s)
}

// SystemOverhead reproduces Section V-B: every unhardened workload on
// the baseline, processor-modified and processor+kernel-modified
// systems.
func (r *Runner) SystemOverhead(ctx context.Context, s Scale) ([]SysOverheadRow, error) {
	systems := []core.SystemKind{core.SysBaseline, core.SysProcessorOnly, core.SysFull}
	var cells []measureKey
	for _, w := range spec.Workloads() {
		source := src(w, s)
		for _, sys := range systems {
			cells = append(cells, measureKey{source, core.HardenNone, sys})
		}
	}
	r.warm(ctx, cells)

	var out []SysOverheadRow
	for _, w := range spec.Workloads() {
		source := src(w, s)
		row := SysOverheadRow{Benchmark: w.Name}
		var ref []byte
		for i, sys := range systems {
			m, err := r.Measure(ctx, source, core.HardenNone, sys)
			if err != nil {
				return nil, fmt.Errorf("eval: %s on %v: %w", w.Name, sys, err)
			}
			if !m.Result.Exited {
				return nil, fmt.Errorf("eval: %s on %v killed by %v", w.Name, sys, m.Result.Signal)
			}
			switch i {
			case 0:
				row.BaseCycles, row.BaseMemKiB = m.Result.Cycles, m.Result.MemPeakKiB
				ref = m.Result.Stdout
			case 1:
				row.ProcCycles, row.ProcMemKiB = m.Result.Cycles, m.Result.MemPeakKiB
			case 2:
				row.FullCycles, row.FullMemKiB = m.Result.Cycles, m.Result.MemPeakKiB
			}
			if i > 0 && string(m.Result.Stdout) != string(ref) {
				return nil, fmt.Errorf("eval: %s output differs across systems", w.Name)
			}
		}
		out = append(out, row)
	}
	return out, nil
}
