package eval

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"roload/internal/schema"
)

func historyDoc() *HostBench {
	return &HostBench{
		Schema:     HostBenchSchema,
		Scale:      "test",
		GoMaxProcs: 1,
		Entries: []HostBenchEntry{{
			Benchmark: "401.bzip2", Instructions: 1000,
			InterpNS: 2000, FastNS: 1000,
			InterpMIPS: 0.5, FastMIPS: 1.0, Speedup: 2.0,
		}},
		Total: HostBenchEntry{
			Benchmark: "total", Instructions: 1000,
			InterpNS: 2000, FastNS: 1000,
			InterpMIPS: 0.5, FastMIPS: 1.0, Speedup: 2.0,
		},
	}
}

// TestHostBenchHistoryAppend: a missing file bootstraps an empty
// history, and successive appends grow it one stamped entry at a time.
func TestHostBenchHistoryAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.json")
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

	h, err := AppendHostBenchHistory(path, historyDoc(), "abc1234", t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(h.Entries))
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	h, err = AppendHostBenchHistory(path, historyDoc(), "def5678", t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Entries) != 2 {
		t.Fatalf("after second append: entries = %d, want 2", len(h.Entries))
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.Schema != schema.HostBenchHistoryV1 {
		t.Errorf("schema = %q", h.Schema)
	}
	if h.Entries[0].Revision != "abc1234" || h.Entries[1].Revision != "def5678" {
		t.Errorf("revisions = %q, %q", h.Entries[0].Revision, h.Entries[1].Revision)
	}
	if h.Entries[0].Time != "2026-08-08T12:00:00Z" {
		t.Errorf("timestamp = %q", h.Entries[0].Time)
	}
	if h.Entries[1].Total.Instructions != 1000 {
		t.Errorf("entry total = %+v", h.Entries[1].Total)
	}
}

// TestHostBenchHistoryRejectsCorrupt: an undecodable or mis-tagged
// history file is an error, not a silent restart of the trajectory.
func TestHostBenchHistoryRejectsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadHostBenchHistory(path); err == nil {
		t.Error("corrupt history loaded without error")
	}
	if err := os.WriteFile(path, []byte(`{"schema":"wrong/v1","entries":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadHostBenchHistory(path); err == nil {
		t.Error("mis-tagged history loaded without error")
	}
}
