// The hostbench performance trajectory: an append-only history of
// `roload-bench -hostbench` measurements (roload-hostbench-history/v1)
// so simulator throughput changes are visible commit-over-commit in
// review, instead of each run silently overwriting the previous
// BENCH_host.json snapshot.
package eval

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"os/exec"
	"strings"
	"time"

	"roload/internal/schema"
)

// LoadHostBenchHistory reads the history document at path. A missing
// file is not an error: it returns a fresh, empty history, which is
// what lets the first -history run bootstrap the file.
func LoadHostBenchHistory(path string) (*schema.HostBenchHistory, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return &schema.HostBenchHistory{Schema: schema.HostBenchHistoryV1}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("eval: reading hostbench history: %w", err)
	}
	var h schema.HostBenchHistory
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, fmt.Errorf("eval: decoding hostbench history %s: %w", path, err)
	}
	if err := h.Validate(); err != nil {
		return nil, fmt.Errorf("eval: %s: %w", path, err)
	}
	return &h, nil
}

// AppendHostBenchHistory loads the history at path, appends one entry
// recording doc at (revision, now), and returns the grown history —
// the caller decides where to write it. The entry embeds the full
// per-benchmark measurement, so the trajectory of any one workload can
// be recovered from the history alone.
func AppendHostBenchHistory(path string, doc *HostBench, revision string, now time.Time) (*schema.HostBenchHistory, error) {
	h, err := LoadHostBenchHistory(path)
	if err != nil {
		return nil, err
	}
	h.Entries = append(h.Entries, schema.HostBenchHistoryEntry{
		Revision:   revision,
		Time:       now.UTC().Format(time.RFC3339),
		Scale:      doc.Scale,
		GoMaxProcs: doc.GoMaxProcs,
		Entries:    doc.Entries,
		Total:      doc.Total,
	})
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return h, nil
}

// RegressionError reports that a measurement fell more than the
// tolerance below the recorded trajectory.
type RegressionError struct {
	// Engine is the regressed engine's flag spelling ("fast" or
	// "blocks"); Benchmark is always "total" — the gate compares whole
	// suites, not individual workloads, which jitter more.
	Engine   string
	LastMIPS float64
	NowMIPS  float64
	// DropPct is the observed drop, TolerancePct the allowed one.
	DropPct      float64
	TolerancePct float64
}

func (e *RegressionError) Error() string {
	return fmt.Sprintf("eval: %s engine regressed %.1f%% (total %.2f MIPS, history %.2f, tolerance %.0f%%)",
		e.Engine, e.DropPct, e.NowMIPS, e.LastMIPS, e.TolerancePct)
}

// CheckHostBenchRegression compares doc's total throughput against the
// most recent same-scale history entry, engine by engine, and returns
// a *RegressionError for the worst engine whose total MIPS dropped
// more than tolerancePct. An empty history, no same-scale entry, or an
// entry predating an engine (zero MIPS) passes: the gate only ever
// compares measurements of the same thing. Host timing jitters, hence
// the tolerance — the gate catches structural slowdowns, not noise.
func CheckHostBenchRegression(h *schema.HostBenchHistory, doc *HostBench, tolerancePct float64) error {
	var last *schema.HostBenchHistoryEntry
	for i := len(h.Entries) - 1; i >= 0; i-- {
		if h.Entries[i].Scale == doc.Scale {
			last = &h.Entries[i]
			break
		}
	}
	if last == nil {
		return nil
	}
	var worst *RegressionError
	for _, eng := range []struct {
		name    string
		was, is float64
	}{
		{"fast", last.Total.FastMIPS, doc.Total.FastMIPS},
		{"blocks", last.Total.BlocksMIPS, doc.Total.BlocksMIPS},
	} {
		if eng.was <= 0 {
			continue
		}
		drop := 100 * (eng.was - eng.is) / eng.was
		if drop <= tolerancePct {
			continue
		}
		if worst == nil || drop > worst.DropPct {
			worst = &RegressionError{Engine: eng.name, LastMIPS: eng.was,
				NowMIPS: eng.is, DropPct: drop, TolerancePct: tolerancePct}
		}
	}
	if worst != nil {
		return worst
	}
	return nil
}

// GitRevision reports the repository revision of root, best-effort: a
// tree without git metadata (or without the git binary) yields "",
// which the history schema records as an entry with no revision.
func GitRevision(root string) string {
	cmd := exec.Command("git", "rev-parse", "--short", "HEAD")
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
