package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"roload/internal/schema"
)

func body(i int) []byte {
	return []byte(fmt.Sprintf(`{"schema":"roload-heal/v1","replicas":%d}`, i))
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	added, err := s.Put(schema.HealV1, "d1", body(3))
	if err != nil || !added {
		t.Fatalf("first put: added=%v err=%v", added, err)
	}
	// Idempotent: same key writes nothing, first body wins.
	added, err = s.Put(schema.HealV1, "d1", body(99))
	if err != nil || added {
		t.Fatalf("duplicate put: added=%v err=%v", added, err)
	}
	got, err := s.Get(schema.HealV1, "d1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body(3)) {
		t.Fatalf("get returned %s, want %s", got, body(3))
	}
	// Same digest under a different kind is a distinct artifact.
	if s.Has(schema.CheckpointV1, "d1") {
		t.Fatal("digest leaked across kinds")
	}
	if _, err := s.Get(schema.HealV1, "missing"); err == nil {
		t.Fatal("get of a missing digest succeeded")
	}
	if _, err := s.Put("", "d", body(0)); err == nil {
		t.Fatal("put without a kind succeeded")
	}
	if _, err := s.Put(schema.HealV1, "d2", []byte("not json")); err == nil {
		t.Fatal("put of non-JSON succeeded")
	}
}

func TestReopenReplaysEverything(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := s.Put(schema.HealV1, fmt.Sprintf("d%d", i), body(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Pin("d7"); err != nil {
		t.Fatal(err)
	}
	if err := s.Pin("d7"); err != nil {
		t.Fatal(err)
	}
	if err := s.Unpin("d7"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 20 {
		t.Fatalf("reopen holds %d artifacts, want 20", s2.Len())
	}
	for i := 0; i < 20; i++ {
		got, err := s2.Get(schema.HealV1, fmt.Sprintf("d%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, body(i)) {
			t.Fatalf("artifact %d changed across reopen: %s", i, got)
		}
	}
	if n := s2.Pins("d7"); n != 1 {
		t.Fatalf("pin refcount %d after reopen, want 1 (2 pins - 1 unpin)", n)
	}
}

// TestCrashConsistency is the satellite: kill mid-append at a random
// offset, reopen, and verify the scan recovers everything before the
// torn frame and drops only the torn tail. Every truncation point in
// the file — mid-header, mid-payload, frame boundary — is a valid
// crash, so we sweep random offsets with a fixed seed.
func TestCrashConsistency(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	var bounds []int64 // log size after each acknowledged put
	for i := 0; i < n; i++ {
		if _, err := s.Put(schema.HealV1, fmt.Sprintf("d%d", i), body(i)); err != nil {
			t.Fatal(err)
		}
		s.mu.Lock()
		bounds = append(bounds, s.size)
		s.mu.Unlock()
	}
	s.Close()
	full, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != bounds[n-1] {
		t.Fatalf("log is %d bytes, bookkeeping says %d", len(full), bounds[n-1])
	}

	// acknowledged(cut) = how many puts completed (fsync returned)
	// strictly before a crash that left cut bytes on disk.
	acknowledged := func(cut int64) int {
		k := 0
		for k < n && bounds[k] <= cut {
			k++
		}
		return k
	}

	rng := rand.New(rand.NewSource(8)) // fixed seed: reproducible sweep
	for trial := 0; trial < 64; trial++ {
		cut := int64(rng.Intn(len(full) + 1))
		crashDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(crashDir, logName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(crashDir)
		if err != nil {
			t.Fatalf("cut=%d: reopen failed: %v", cut, err)
		}
		want := acknowledged(cut)
		if re.Len() != want {
			t.Fatalf("cut=%d: recovered %d artifacts, want %d", cut, re.Len(), want)
		}
		// Everything acknowledged before the crash survives intact.
		for i := 0; i < want; i++ {
			got, err := re.Get(schema.HealV1, fmt.Sprintf("d%d", i))
			if err != nil {
				t.Fatalf("cut=%d: artifact %d lost: %v", cut, i, err)
			}
			if !bytes.Equal(got, body(i)) {
				t.Fatalf("cut=%d: artifact %d corrupted: %s", cut, i, got)
			}
		}
		// The truncation is durable and exact: the log now ends at the
		// last complete frame.
		info, err := os.Stat(filepath.Join(crashDir, logName))
		if err != nil {
			t.Fatal(err)
		}
		wantSize := int64(0)
		if want > 0 {
			wantSize = bounds[want-1]
		}
		if info.Size() != wantSize {
			t.Fatalf("cut=%d: log is %d bytes after recovery, want %d", cut, info.Size(), wantSize)
		}
		// The store keeps working after recovery.
		if _, err := re.Put(schema.HealV1, "post-crash", body(1000)); err != nil {
			t.Fatalf("cut=%d: post-recovery put failed: %v", cut, err)
		}
		re.Close()
	}
}

// TestGCNeverCollectsPinned is the other half of the satellite: GC
// drops exactly the unpinned artifacts, never a pinned one, and the
// compacted log replays identically after reopen.
func TestGCNeverCollectsPinned(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := 0; i < n; i++ {
		if _, err := s.Put(schema.CheckpointV1, fmt.Sprintf("d%d", i), body(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Pin the even digests; d0 twice (a second reference).
	for i := 0; i < n; i += 2 {
		if err := s.Pin(fmt.Sprintf("d%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Pin("d0"); err != nil {
		t.Fatal(err)
	}

	removed, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if removed != n/2 {
		t.Fatalf("gc removed %d artifacts, want %d", removed, n/2)
	}
	for i := 0; i < n; i++ {
		digest := fmt.Sprintf("d%d", i)
		if i%2 == 0 {
			got, err := s.Get(schema.CheckpointV1, digest)
			if err != nil {
				t.Fatalf("gc collected pinned %s: %v", digest, err)
			}
			if !bytes.Equal(got, body(i)) {
				t.Fatalf("gc corrupted pinned %s: %s", digest, got)
			}
		} else if s.Has(schema.CheckpointV1, digest) {
			t.Fatalf("gc kept unpinned %s", digest)
		}
	}
	if n := s.Pins("d0"); n != 2 {
		t.Fatalf("d0 refcount %d after gc, want 2", n)
	}

	// Unpinning down to zero makes it collectable; one reference left
	// still protects it.
	if err := s.Unpin("d0"); err != nil {
		t.Fatal(err)
	}
	if removed, err := s.GC(); err != nil || removed != 0 {
		t.Fatalf("gc with one d0 reference left: removed=%d err=%v", removed, err)
	}
	if !s.Has(schema.CheckpointV1, "d0") {
		t.Fatal("gc collected d0 while one pin remained")
	}
	if err := s.Unpin("d0"); err != nil {
		t.Fatal(err)
	}
	if removed, err := s.GC(); err != nil || removed != 1 {
		t.Fatalf("gc after final unpin: removed=%d err=%v", removed, err)
	}

	// The compacted log replays to the same state.
	s.Close()
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i := 2; i < n; i += 2 {
		if _, err := re.Get(schema.CheckpointV1, fmt.Sprintf("d%d", i)); err != nil {
			t.Fatalf("pinned d%d lost across gc+reopen: %v", i, err)
		}
	}
	if re.Len() != n/2-1 {
		t.Fatalf("reopen after gc holds %d artifacts, want %d", re.Len(), n/2-1)
	}
	m := re.Metrics()
	if m.Entries[schema.CheckpointV1] != n/2-1 || m.Pinned != n/2-1 {
		t.Fatalf("metrics after gc+reopen: %+v", m)
	}
}

// TestConcurrentPutsAndGets exercises the store under the race
// detector: concurrent puts, gets, pins and one GC.
func TestConcurrentPutsAndGets(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				digest := fmt.Sprintf("g%dd%d", g, i)
				if _, err := s.Put(schema.HealV1, digest, body(i)); err != nil {
					t.Error(err)
					return
				}
				if err := s.Pin(digest); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get(schema.HealV1, digest); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if removed, err := s.GC(); err != nil || removed != 0 {
		t.Fatalf("gc over fully pinned store: removed=%d err=%v", removed, err)
	}
	if s.Len() != 8*16 {
		t.Fatalf("store holds %d artifacts, want %d", s.Len(), 8*16)
	}
}

func TestDigest(t *testing.T) {
	d := Digest([]byte("roload"))
	if len(d) != 64 {
		t.Fatalf("Digest returned %q, want 64 hex chars", d)
	}
	if d == Digest([]byte("roload2")) {
		t.Fatal("distinct inputs collided")
	}
}
