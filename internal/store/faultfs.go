// FaultFS: the injectable failing filesystem behind the store's
// disk-fault tests. Every fault a real disk throws at an append log
// can be armed programmatically — a short write that persists only a
// prefix of the frame, an fsync that reports failure after the page
// cache accepted the bytes, a full disk (ENOSPC), a crash between a
// GC rewrite and its rename (armed rename failure) — and the tests
// then prove the store detects or recovers, never serving corrupt or
// half-written state. Bit rot is simulated directly on the underlying
// file with FlipBit; the store's per-frame CRC catches it on Get.
package store

import (
	"errors"
	"io"
	"os"
	"sync"
	"syscall"
)

// Injected fault sentinels.
var (
	// ErrInjectedSync is returned by an armed fsync failure.
	ErrInjectedSync = errors.New("faultfs: injected fsync failure")
	// ErrInjectedRename is returned by an armed rename failure — the
	// "crash between compaction rewrite and rename" point.
	ErrInjectedRename = errors.New("faultfs: injected rename failure")
)

// FaultFS wraps a real FS with armable faults. The zero value is not
// usable; construct with NewFaultFS. All methods are safe for
// concurrent use.
type FaultFS struct {
	inner FS

	mu sync.Mutex
	// quota, when >= 0, is the number of payload bytes still writable
	// before writes fail with ENOSPC.
	quota int64
	// shortWrites, when armed, makes every WriteAt persist only half
	// its buffer and return io.ErrShortWrite — the torn-append case.
	shortWrites bool
	failSync    bool
	failRename  bool
}

// NewFaultFS builds a fault-injecting wrapper over the real
// filesystem with no faults armed.
func NewFaultFS() *FaultFS {
	return &FaultFS{inner: OS(), quota: -1}
}

// SetQuota arms ENOSPC after n more written bytes (n < 0 disarms).
func (f *FaultFS) SetQuota(n int64) { f.mu.Lock(); f.quota = n; f.mu.Unlock() }

// FailWrites arms short writes: each WriteAt persists half its buffer
// then reports io.ErrShortWrite.
func (f *FaultFS) FailWrites(on bool) { f.mu.Lock(); f.shortWrites = on; f.mu.Unlock() }

// FailSync makes every Sync (file or directory) fail.
func (f *FaultFS) FailSync(on bool) { f.mu.Lock(); f.failSync = on; f.mu.Unlock() }

// FailRename makes every Rename fail — the disk state is then exactly
// a crash between the compaction rewrite and its atomic install.
func (f *FaultFS) FailRename(on bool) { f.mu.Lock(); f.failRename = on; f.mu.Unlock() }

func (f *FaultFS) MkdirAll(dir string, perm os.FileMode) error {
	return f.inner.MkdirAll(dir, perm)
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	fail := f.failRename
	f.mu.Unlock()
	if fail {
		return ErrInjectedRename
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error { return f.inner.Remove(name) }

func (f *FaultFS) SyncDir(dir string) error {
	f.mu.Lock()
	fail := f.failSync
	f.mu.Unlock()
	if fail {
		return ErrInjectedSync
	}
	return f.inner.SyncDir(dir)
}

// admitWrite charges n bytes against the quota and reports how many
// may be written (full n, a short prefix, or an ENOSPC error).
func (f *FaultFS) admitWrite(n int) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.shortWrites {
		return n / 2, io.ErrShortWrite
	}
	if f.quota < 0 {
		return n, nil
	}
	if int64(n) > f.quota {
		allowed := int(f.quota)
		f.quota = 0
		return allowed, syscall.ENOSPC
	}
	f.quota -= int64(n)
	return n, nil
}

// faultFile applies the parent's armed faults to one open file.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) { return f.inner.ReadAt(p, off) }

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	allowed, ferr := f.fs.admitWrite(len(p))
	if ferr != nil {
		// Persist the admitted prefix first: a torn write leaves real
		// bytes behind, which is exactly what reopen must cope with.
		if allowed > 0 {
			f.inner.WriteAt(p[:allowed], off) //nolint:errcheck // the injected error wins
		}
		return allowed, ferr
	}
	return f.inner.WriteAt(p, off)
}

func (f *faultFile) Write(p []byte) (int, error) {
	allowed, ferr := f.fs.admitWrite(len(p))
	if ferr != nil {
		if allowed > 0 {
			f.inner.Write(p[:allowed]) //nolint:errcheck // the injected error wins
		}
		return allowed, ferr
	}
	return f.inner.Write(p)
}

func (f *faultFile) Truncate(size int64) error { return f.inner.Truncate(size) }

func (f *faultFile) Sync() error {
	f.fs.mu.Lock()
	fail := f.fs.failSync
	f.fs.mu.Unlock()
	if fail {
		return ErrInjectedSync
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error { return f.inner.Close() }

func (f *faultFile) Stat() (os.FileInfo, error) { return f.inner.Stat() }

// FlipBit flips the lowest bit of the byte at off in the named file —
// simulated bit rot for the CRC-detection tests.
func FlipBit(path string, off int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= 0x01
	_, err = f.WriteAt(b[:], off)
	return err
}
