package store

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"roload/internal/schema"
)

// FuzzStoreDecode throws arbitrary bytes at the log-recovery path —
// the exact scan a reopen after a crash performs. Properties: Open
// never panics whatever is on disk, recovery is idempotent (a second
// open over the recovered log truncates nothing further and sees the
// same artifacts), and the recovered store accepts new writes.
func FuzzStoreDecode(f *testing.F) {
	frame := func(payload []byte) []byte {
		out := make([]byte, headerSize+len(payload))
		binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
		copy(out[headerSize:], payload)
		return out
	}
	good := frame([]byte(`{"op":"put","kind":"roload-heal/v1","digest":"d1","body":{"replicas":3}}`))
	pin := frame([]byte(`{"op":"pin","digest":"d1"}`))
	seeds := [][]byte{
		nil,
		good,
		append(append([]byte{}, good...), pin...),
		good[:len(good)-3],                                // torn payload
		good[:5],                                          // torn header
		frame([]byte(`not json`)),                         // checksum ok, body not
		frame([]byte(`{"op":"frobnicate","digest":"x"}`)), // unknown op
		{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0},              // absurd length
		make([]byte, 64),                                  // zero length frames
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir)
		if err != nil {
			return // I/O-level failures must error, not panic
		}
		recovered := s.Len()
		size := func() int64 {
			info, err := os.Stat(filepath.Join(dir, logName))
			if err != nil {
				t.Fatal(err)
			}
			return info.Size()
		}
		sizeAfterFirst := size()
		if sizeAfterFirst > int64(len(data)) {
			t.Fatalf("recovery grew the log: %d > %d", sizeAfterFirst, len(data))
		}
		s.Close()

		// Idempotent: reopening the recovered log truncates nothing and
		// replays the same artifact count.
		s2, err := Open(dir)
		if err != nil {
			t.Fatalf("recovered log does not reopen: %v", err)
		}
		if s2.Len() != recovered {
			t.Fatalf("second open sees %d artifacts, first saw %d", s2.Len(), recovered)
		}
		if size() != sizeAfterFirst {
			t.Fatalf("second open changed the log size: %d != %d", size(), sizeAfterFirst)
		}
		if m := s2.Metrics(); m.Recovered != 0 {
			t.Fatalf("second open truncated %d more bytes", m.Recovered)
		}

		// The recovered store accepts new writes and reads them back.
		// (The fuzzed log may legitimately already hold this key — then
		// first-write-wins applies and only readability is asserted.)
		added, err := s2.Put(schema.HealV1, "post-recovery", []byte(`{"ok":true}`))
		if err != nil {
			t.Fatalf("put after recovery failed: %v", err)
		}
		got, err := s2.Get(schema.HealV1, "post-recovery")
		if err != nil {
			t.Fatalf("get after recovery: %v", err)
		}
		if added && string(got) != `{"ok":true}` {
			t.Fatalf("get after recovery returned %s", got)
		}
		s2.Close()
	})
}
