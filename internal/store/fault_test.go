package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"roload/internal/schema"
)

// snapshotState captures everything observable about a store: every
// (kind, digest) -> body plus the pin map. Used to prove crash points
// land on exactly one of two legal states, never a mix.
func snapshotState(t *testing.T, s *Store) (map[string][]byte, map[string]int) {
	t.Helper()
	docs := make(map[string][]byte)
	s.mu.Lock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	pins := make(map[string]int, len(s.pins))
	for d, c := range s.pins {
		pins[d] = c
	}
	s.mu.Unlock()
	for _, k := range keys {
		kind, digest, _ := cutKey(k)
		b, err := s.Get(kind, digest)
		if err != nil {
			t.Fatalf("snapshot get %s %s: %v", kind, digest, err)
		}
		docs[k] = b
	}
	return docs, pins
}

func cutKey(k string) (kind, digest string, ok bool) {
	for i := 0; i < len(k); i++ {
		if k[i] == 0 {
			return k[:i], k[i+1:], true
		}
	}
	return "", "", false
}

func sameState(aDocs map[string][]byte, aPins map[string]int, bDocs map[string][]byte, bPins map[string]int) bool {
	if len(aDocs) != len(bDocs) || len(aPins) != len(bPins) {
		return false
	}
	for k, v := range aDocs {
		if !bytes.Equal(bDocs[k], v) {
			return false
		}
	}
	for d, c := range aPins {
		if bPins[d] != c {
			return false
		}
	}
	return true
}

// TestFaultShortWrite arms a short write mid-stream: the torn append
// must fail loudly, leave the in-memory store consistent (the old
// contents still served), and a reopen must truncate the torn tail
// without losing any acknowledged record.
func TestFaultShortWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS()
	s, err := OpenFS(dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(schema.HealV1, "d1", body(1)); err != nil {
		t.Fatal(err)
	}

	ffs.FailWrites(true)
	if _, err := s.Put(schema.HealV1, "d2", body(2)); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("torn put error = %v, want io.ErrShortWrite", err)
	}
	if s.Err() == nil {
		t.Fatal("store health did not latch the append failure")
	}
	// The acknowledged record still serves, the torn one does not.
	if got, err := s.Get(schema.HealV1, "d1"); err != nil || !bytes.Equal(got, body(1)) {
		t.Fatalf("d1 after torn append: %s, %v", got, err)
	}
	if s.Has(schema.HealV1, "d2") {
		t.Fatal("torn put is visible")
	}
	s.Close()

	// Reopen on the real filesystem: the half-written frame is a torn
	// tail, truncated away.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, err := s2.Get(schema.HealV1, "d1"); err != nil || !bytes.Equal(got, body(1)) {
		t.Fatalf("d1 after reopen: %s, %v", got, err)
	}
	if s2.Has(schema.HealV1, "d2") {
		t.Fatal("torn put survived reopen")
	}
	if s2.Metrics().Recovered == 0 {
		t.Fatal("reopen did not report the truncated torn tail")
	}
}

// TestFaultSyncError proves an fsync failure fails the put and latches
// the store's health signal — the /healthz "error: ..." state a fleet
// front tier routes around.
func TestFaultSyncError(t *testing.T) {
	ffs := NewFaultFS()
	s, err := OpenFS(t.TempDir(), ffs)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ffs.FailSync(true)
	if _, err := s.Put(schema.HealV1, "d1", body(1)); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("put under failed fsync: %v, want ErrInjectedSync", err)
	}
	if err := s.Err(); err == nil || !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("health signal = %v, want the injected fsync failure", err)
	}
	// The health signal is sticky: even after the disk recovers, the
	// store keeps reporting that it once failed to persist.
	ffs.FailSync(false)
	if _, err := s.Put(schema.HealV1, "d2", body(2)); err != nil {
		t.Fatal(err)
	}
	if s.Err() == nil {
		t.Fatal("health signal reset after recovery")
	}
}

// TestFaultENOSPC fills the disk: the put errors with ENOSPC, and the
// partial frame the full disk absorbed is truncated at reopen.
func TestFaultENOSPC(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS()
	s, err := OpenFS(dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(schema.HealV1, "d1", body(1)); err != nil {
		t.Fatal(err)
	}
	ffs.SetQuota(10)
	if _, err := s.Put(schema.HealV1, "d2", body(2)); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("put on a full disk: %v, want ENOSPC", err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.Has(schema.HealV1, "d1") || s2.Has(schema.HealV1, "d2") {
		t.Fatalf("reopen after ENOSPC: d1=%v d2=%v, want true/false",
			s2.Has(schema.HealV1, "d1"), s2.Has(schema.HealV1, "d2"))
	}
}

// TestBitFlipCaughtOnGet flips one bit of a stored record's payload on
// disk: Get must answer ErrCorrupt, never the corrupt bytes — the
// content re-verification half of the durability story.
func TestBitFlipCaughtOnGet(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Put(schema.HealV1, "d1", body(1)); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	e := s.index[key(schema.HealV1, "d1")]
	s.mu.Unlock()
	// Flip a bit in the middle of the payload.
	if err := FlipBit(filepath.Join(dir, logName), e.off+int64(e.n)/2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(schema.HealV1, "d1"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("get of a bit-flipped record: %v, want ErrCorrupt", err)
	}
}

// TestCrashDuringGC kills the compaction between the survivor rewrite
// and the rename (armed rename failure — the new log is fully written
// aside, the install never happens). Reopening must land on exactly
// the pre-GC state; completing the rename by hand must land on exactly
// the post-GC state. Never a mix.
func TestCrashDuringGC(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS()
	s, err := OpenFS(dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		d := fmt.Sprintf("d%d", i)
		if _, err := s.Put(schema.HealV1, d, body(i)); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := s.Pin(d); err != nil {
				t.Fatal(err)
			}
		}
	}
	preDocs, prePins := snapshotState(t, s)

	ffs.FailRename(true)
	if _, err := s.GC(); !errors.Is(err, ErrInjectedRename) {
		t.Fatalf("gc with failed rename: %v, want ErrInjectedRename", err)
	}
	s.Close()

	// The compaction log was fully written and fsync'd but never
	// installed — the on-disk picture of a crash at that exact point.
	tmpPath := filepath.Join(dir, logName+".gc")
	if _, err := os.Stat(tmpPath); err != nil {
		t.Fatalf("no compaction log on disk after the crash point: %v", err)
	}

	// Crash before rename: reopen must see exactly the pre-GC state
	// (and clean up the stray compaction log).
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	docs, pins := snapshotState(t, s2)
	if !sameState(docs, pins, preDocs, prePins) {
		t.Fatalf("reopen before rename: state is neither pre-GC nor post-GC\n got docs=%d pins=%v\nwant docs=%d pins=%v",
			len(docs), pins, len(preDocs), prePins)
	}
	if _, err := os.Stat(tmpPath); !os.IsNotExist(err) {
		t.Fatalf("stray compaction log survived reopen: %v", err)
	}
	// GC completes cleanly now: the post-GC state drops the unpinned
	// half and nothing else.
	removed, err := s2.GC()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 4 {
		t.Fatalf("gc removed %d, want 4", removed)
	}
	postDocs, postPins := snapshotState(t, s2)
	s2.Close()

	// Re-create the crash, then complete the rename by hand: crash
	// after rename. Reopen must see exactly the post-GC state.
	s3, err := OpenFS(dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		d := fmt.Sprintf("d%d", i)
		if _, err := s3.Put(schema.HealV1, d, body(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s3.GC(); !errors.Is(err, ErrInjectedRename) {
		t.Fatalf("second armed gc: %v", err)
	}
	s3.Close()
	if err := os.Rename(tmpPath, filepath.Join(dir, logName)); err != nil {
		t.Fatal(err)
	}
	s4, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s4.Close()
	docs4, pins4 := snapshotState(t, s4)
	if !sameState(docs4, pins4, postDocs, postPins) {
		t.Fatalf("reopen after completed rename: not the post-GC state\n got docs=%d pins=%v\nwant docs=%d pins=%v",
			len(docs4), pins4, len(postDocs), postPins)
	}
}

// TestConcurrentPutGetGC races puts, gets, pins and compactions. Run
// under -race this is the regression test for the Get-vs-GC file swap:
// Get must read under the store lock, because GC closes the old log
// file after installing the compacted one.
func TestConcurrentPutGetGC(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const writers, readers, rounds = 4, 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				d := fmt.Sprintf("w%d-%d", w, i)
				// Pin before put, so a concurrent GC can never collect
				// the artifact in the gap between the two appends.
				if i%2 == 0 {
					if err := s.Pin(d); err != nil {
						t.Errorf("pin %s: %v", d, err)
						return
					}
				}
				if _, err := s.Put(schema.HealV1, d, body(i)); err != nil {
					t.Errorf("put %s: %v", d, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				d := fmt.Sprintf("w%d-%d", r%writers, i)
				got, err := s.Get(schema.HealV1, d)
				if err != nil {
					if errors.Is(err, ErrNotFound) {
						continue // not written yet, or collected
					}
					t.Errorf("get %s: %v", d, err)
					return
				}
				if !bytes.Equal(got, body(i)) {
					t.Errorf("get %s returned %s, want %s", d, got, body(i))
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := s.GC(); err != nil {
				t.Errorf("gc: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// Every pinned artifact must still be readable.
	if _, err := s.GC(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < rounds; i += 2 {
			d := fmt.Sprintf("w%d-%d", w, i)
			if got, err := s.Get(schema.HealV1, d); err != nil || !bytes.Equal(got, body(i)) {
				t.Fatalf("pinned %s after final gc: %s, %v", d, got, err)
			}
		}
	}
}

// TestEnforcePolicy exercises the GC policy daemon's primitive: age
// unpinning drops pins older than the cutoff, size unpinning drops the
// oldest pins until the log fits, and the gc metrics section reports
// the work.
func TestEnforcePolicy(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	clock := time.Unix(1_000_000, 0)
	s.now = func() time.Time { return clock }

	for i := 0; i < 6; i++ {
		d := fmt.Sprintf("d%d", i)
		if _, err := s.Put(schema.HealV1, d, body(i)); err != nil {
			t.Fatal(err)
		}
		if err := s.Pin(d); err != nil {
			t.Fatal(err)
		}
		clock = clock.Add(time.Hour)
	}

	// Age policy: everything pinned more than 3h ago (d0..d2) ages out.
	unpinned, removed, err := s.EnforcePolicy(3*time.Hour+time.Minute, 0)
	if err != nil {
		t.Fatal(err)
	}
	if unpinned != 3 || removed != 3 {
		t.Fatalf("age policy unpinned=%d removed=%d, want 3/3", unpinned, removed)
	}
	for i := 0; i < 3; i++ {
		if s.Has(schema.HealV1, fmt.Sprintf("d%d", i)) {
			t.Fatalf("aged-out d%d survived", i)
		}
	}
	for i := 3; i < 6; i++ {
		if !s.Has(schema.HealV1, fmt.Sprintf("d%d", i)) {
			t.Fatalf("fresh d%d was collected", i)
		}
	}

	// Size policy: squeeze until at most one artifact's worth of log
	// remains; the oldest pins go first.
	unpinned, _, err = s.EnforcePolicy(0, 200)
	if err != nil {
		t.Fatal(err)
	}
	if unpinned == 0 {
		t.Fatal("size policy unpinned nothing")
	}
	if s.Has(schema.HealV1, "d3") {
		t.Fatal("size policy kept the oldest pin while over budget")
	}

	m := s.Metrics()
	if m.GC == nil || m.GC.Runs != 2 || m.GC.Unpinned == 0 {
		t.Fatalf("gc metrics = %+v, want 2 runs with unpins", m.GC)
	}
}
