// Package store is the digest-keyed, append-only, crash-consistent
// artifact store behind `roload-serve -store` and `roload-run -store`:
// compiled images (roload-image/v1), checkpoints
// (roload-checkpoint/v1), heal/batch reports and per-run batch results
// survive the process that produced them, so a batch can execute a
// precompiled image without recompiling and a crashed fleet can resume
// and heal from its last stored state.
//
// The on-disk format is a single append-only log (store.log) of framed
// records. Each frame is an 8-byte header — payload length and
// CRC32-IEEE of the payload, both little-endian uint32 — followed by
// the JSON payload. Every append is fsync'd before it is acknowledged,
// so an acknowledged Put survives a crash; a crash mid-append leaves a
// torn tail that the reopen scan detects (short header, absurd length,
// checksum or JSON mismatch), truncates away, and fsyncs — dropping
// only the unacknowledged suffix, never an acknowledged record. Get
// re-reads the frame from disk and re-verifies its CRC, so bit rot is
// detected rather than served.
//
// Records are keyed by (kind, digest) and idempotent: re-putting an
// existing key writes nothing. Digests carry reference counts via pin
// and unpin records; GC compacts the log, dropping every record whose
// digest has a zero refcount. Pinned digests are never collected;
// EnforcePolicy is the age/size policy layer that unpins cold digests
// before compacting.
//
// All disk I/O goes through the FS seam (fs.go); FaultFS (faultfs.go)
// is the test-side implementation that injects short writes, fsync
// errors, ENOSPC and crash-at-rename.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"roload/internal/schema"
)

// logName is the append log's file name inside the store directory.
const logName = "store.log"

// headerSize is the frame header: uint32 LE payload length + uint32 LE
// CRC32-IEEE of the payload.
const headerSize = 8

// maxPayload bounds a single record (a defense against a corrupt
// length field mapping the whole file into one bogus frame).
const maxPayload = 1 << 30

// ErrNotFound reports a (kind, digest) the store does not hold.
var ErrNotFound = errors.New("store: not found")

// ErrCorrupt reports a stored frame whose on-disk bytes no longer
// match the CRC recorded when it was appended — bit rot, a misdirected
// write, or silent media failure. The store never serves such bytes.
var ErrCorrupt = errors.New("store: corrupt record")

// record is the JSON payload of one log frame.
type record struct {
	// Op is "put" (a new artifact), "pin" or "unpin" (refcount
	// deltas).
	Op string `json:"op"`
	// Kind is the artifact's schema id ("roload-image/v1", ...); put
	// records only.
	Kind string `json:"kind,omitempty"`
	// Digest keys the artifact (puts) or the refcount (pins).
	Digest string `json:"digest"`
	// Body is the artifact document; put records only.
	Body json.RawMessage `json:"body,omitempty"`
	// Count is the refcount delta of a pin/unpin record (compaction
	// writes one net pin per digest).
	Count int `json:"count,omitempty"`
	// T stamps pin records (unix seconds) so the GC policy can unpin
	// by age. Older logs without the field decode to 0 — always
	// eligible.
	T int64 `json:"t,omitempty"`
}

// entry locates one live record in the log: the payload's offset,
// length, and the CRC its frame was written with. Bodies are not held
// in memory — Get re-reads the frame and re-verifies the CRC.
type entry struct {
	off int64
	n   int
	sum uint32
}

// Store is an open artifact store. All methods are safe for concurrent
// use.
type Store struct {
	dir string
	fs  FS

	mu      sync.Mutex
	f       File
	size    int64
	index   map[string]entry // (kind \x00 digest) -> payload location
	pins    map[string]int   // digest -> refcount
	pinT    map[string]int64 // digest -> latest pin time (unix seconds)
	closed  bool
	recover int64 // torn-tail bytes truncated by the last open

	// now is the policy clock (pin stamps, age cutoffs); a test seam.
	now func() time.Time

	// GC policy counters, guarded by mu.
	polRuns     uint64
	polUnpinned uint64
	polRemoved  uint64
	polLastUnix int64
	polLastErr  string

	puts atomic.Uint64
	gets atomic.Uint64

	// lastErr retains the most recent append/sync failure (an *error),
	// the store's health signal: a store that cannot persist is
	// attached-but-broken, which /healthz surfaces so a fleet front
	// tier can route around the backend.
	lastErr atomic.Value
}

// key builds the index key of a (kind, digest) pair.
func key(kind, digest string) string { return kind + "\x00" + digest }

// Open opens (creating if needed) the store rooted at dir on the real
// filesystem and replays the log, truncating any torn tail left by a
// crash mid-append.
func Open(dir string) (*Store, error) { return OpenFS(dir, OS()) }

// OpenFS is Open on an explicit filesystem — the fault-injection seam.
func OpenFS(dir string, fsys FS) (*Store, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	// A stray compaction log is a GC that crashed before its rename —
	// the install never happened, so the bytes are garbage.
	fsys.Remove(filepath.Join(dir, logName+".gc")) //nolint:errcheck // best effort
	f, err := fsys.OpenFile(filepath.Join(dir, logName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening log: %w", err)
	}
	s := &Store{
		dir:   dir,
		fs:    fsys,
		f:     f,
		index: make(map[string]entry),
		pins:  make(map[string]int),
		pinT:  make(map[string]int64),
		now:   time.Now,
	}
	if err := s.scan(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// scan replays the log into the in-memory index and truncates the
// first torn frame (and everything after it).
func (s *Store) scan() error {
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: stat log: %w", err)
	}
	size := info.Size()
	var off int64
	for off < size {
		rec, n, sum, ok := s.readFrame(off, size)
		if !ok {
			// Torn tail: everything from off on is an unacknowledged
			// partial append. Drop it.
			if err := s.f.Truncate(off); err != nil {
				return fmt.Errorf("store: truncating torn tail: %w", err)
			}
			if err := s.f.Sync(); err != nil {
				return fmt.Errorf("store: syncing truncated log: %w", err)
			}
			s.recover = size - off
			size = off
			break
		}
		s.apply(rec, off+headerSize, n, sum)
		off += headerSize + int64(n)
	}
	s.size = size
	return nil
}

// readFrame reads and validates one frame at off. ok=false means the
// frame is torn or corrupt (the caller truncates there).
func (s *Store) readFrame(off, size int64) (record, int, uint32, bool) {
	if size-off < headerSize {
		return record{}, 0, 0, false
	}
	var hdr [headerSize]byte
	if _, err := s.f.ReadAt(hdr[:], off); err != nil {
		return record{}, 0, 0, false
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if n == 0 || n > maxPayload || int64(n) > size-off-headerSize {
		return record{}, 0, 0, false
	}
	payload := make([]byte, n)
	if _, err := s.f.ReadAt(payload, off+headerSize); err != nil {
		return record{}, 0, 0, false
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return record{}, 0, 0, false
	}
	var rec record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return record{}, 0, 0, false
	}
	return rec, int(n), sum, true
}

// apply folds one valid record into the index.
func (s *Store) apply(rec record, payloadOff int64, n int, sum uint32) {
	switch rec.Op {
	case "put":
		if rec.Kind == "" || rec.Digest == "" {
			return
		}
		k := key(rec.Kind, rec.Digest)
		if _, dup := s.index[k]; dup {
			return // first write wins; content is digest-addressed
		}
		s.index[k] = entry{off: payloadOff, n: n, sum: sum}
	case "pin":
		c := rec.Count
		if c == 0 {
			c = 1
		}
		s.pins[rec.Digest] += c
		if rec.T > s.pinT[rec.Digest] {
			s.pinT[rec.Digest] = rec.T
		}
	case "unpin":
		c := rec.Count
		if c == 0 {
			c = 1
		}
		if s.pins[rec.Digest] -= c; s.pins[rec.Digest] <= 0 {
			delete(s.pins, rec.Digest)
			delete(s.pinT, rec.Digest)
		}
	}
}

// append frames, writes and fsyncs one record. Caller holds mu.
func (s *Store) append(rec record) error {
	if s.closed {
		return errors.New("store: closed")
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding record: %w", err)
	}
	frame := make([]byte, headerSize+len(payload))
	sum := crc32.ChecksumIEEE(payload)
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], sum)
	copy(frame[headerSize:], payload)
	if _, err := s.f.WriteAt(frame, s.size); err != nil {
		err = fmt.Errorf("store: appending record: %w", err)
		s.lastErr.Store(&err)
		return err
	}
	if err := s.f.Sync(); err != nil {
		err = fmt.Errorf("store: syncing log: %w", err)
		s.lastErr.Store(&err)
		return err
	}
	s.apply(rec, s.size+headerSize, len(payload), sum)
	s.size += int64(len(frame))
	return nil
}

// Err reports the most recent append/sync failure, or nil for a
// healthy store. It never resets: a store that has failed to persist
// once cannot promise durability for what it acknowledged since.
func (s *Store) Err() error {
	if e, ok := s.lastErr.Load().(*error); ok {
		return *e
	}
	return nil
}

// Put stores body under (kind, digest). It is idempotent: if the key
// already exists nothing is written and added is false. body must be
// valid JSON (the store holds documents, not blobs).
func (s *Store) Put(kind, digest string, body []byte) (added bool, err error) {
	if kind == "" || digest == "" || strings.ContainsRune(kind, 0) {
		return false, fmt.Errorf("store: put needs a kind and a digest")
	}
	if !json.Valid(body) {
		return false, fmt.Errorf("store: put body for %s %s is not JSON", kind, digest)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[key(kind, digest)]; ok {
		return false, nil
	}
	if err := s.append(record{Op: "put", Kind: kind, Digest: digest, Body: body}); err != nil {
		return false, err
	}
	s.puts.Add(1)
	return true, nil
}

// Get returns the stored body of (kind, digest), or ErrNotFound. The
// frame is re-read from disk and its CRC re-verified, so a record hit
// by bit rot surfaces as ErrCorrupt instead of corrupt bytes. The read
// happens under the store lock: GC swaps and closes the log file, and
// a lock-free read could race the close.
func (s *Store) Get(kind, digest string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[key(kind, digest)]
	if !ok {
		return nil, fmt.Errorf("store: %s %s: %w", kind, digest, ErrNotFound)
	}
	payload := make([]byte, e.n)
	if _, err := s.f.ReadAt(payload, e.off); err != nil {
		return nil, fmt.Errorf("store: reading %s %s: %w", kind, digest, err)
	}
	if crc32.ChecksumIEEE(payload) != e.sum {
		return nil, fmt.Errorf("store: %s %s: %w", kind, digest, ErrCorrupt)
	}
	var rec record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, fmt.Errorf("store: decoding %s %s: %w", kind, digest, err)
	}
	if rec.Kind != kind || rec.Digest != digest {
		return nil, fmt.Errorf("store: %s %s: frame holds %s %s: %w",
			kind, digest, rec.Kind, rec.Digest, ErrCorrupt)
	}
	s.gets.Add(1)
	return rec.Body, nil
}

// Has reports whether (kind, digest) is stored.
func (s *Store) Has(kind, digest string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key(kind, digest)]
	return ok
}

// Pin increments digest's refcount. Pinned digests survive GC.
func (s *Store) Pin(digest string) error {
	if digest == "" {
		return fmt.Errorf("store: pin needs a digest")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.append(record{Op: "pin", Digest: digest, T: s.now().Unix()})
}

// Unpin decrements digest's refcount (floored at zero).
func (s *Store) Unpin(digest string) error {
	if digest == "" {
		return fmt.Errorf("store: unpin needs a digest")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.append(record{Op: "unpin", Digest: digest})
}

// Pins returns digest's current refcount.
func (s *Store) Pins(digest string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pins[digest]
}

// GC compacts the log, dropping every record whose digest has a zero
// refcount, and returns how many artifacts it removed. The compaction
// is crash-consistent: the new log is written aside, fsync'd, and
// renamed over the old one (directory fsync'd), so a crash at any
// point leaves either the old complete log or the new one.
func (s *Store) GC() (removed int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gcLocked()
}

func (s *Store) gcLocked() (removed int, err error) {
	if s.closed {
		return 0, errors.New("store: closed")
	}

	// Collect the survivors in deterministic (sorted key) order.
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	tmpPath := filepath.Join(s.dir, logName+".gc")
	tmp, err := s.fs.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("store: creating compaction log: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			s.fs.Remove(tmpPath) //nolint:errcheck // best effort
		}
	}()

	writeFrame := func(rec record) error {
		payload, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		var hdr [headerSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		if _, err := tmp.Write(hdr[:]); err != nil {
			return err
		}
		_, err = tmp.Write(payload)
		return err
	}

	for _, k := range keys {
		kind, digest, _ := strings.Cut(k, "\x00")
		if s.pins[digest] <= 0 {
			removed++
			continue
		}
		e := s.index[k]
		payload := make([]byte, e.n)
		if _, err := s.f.ReadAt(payload, e.off); err != nil {
			return 0, fmt.Errorf("store: reading %s %s during gc: %w", kind, digest, err)
		}
		if crc32.ChecksumIEEE(payload) != e.sum {
			return 0, fmt.Errorf("store: %s %s during gc: %w", kind, digest, ErrCorrupt)
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return 0, fmt.Errorf("store: decoding %s %s during gc: %w", kind, digest, err)
		}
		if err := writeFrame(rec); err != nil {
			return 0, fmt.Errorf("store: writing compaction log: %w", err)
		}
	}
	digests := make([]string, 0, len(s.pins))
	for d := range s.pins {
		digests = append(digests, d)
	}
	sort.Strings(digests)
	for _, d := range digests {
		if err := writeFrame(record{Op: "pin", Digest: d, Count: s.pins[d], T: s.pinT[d]}); err != nil {
			return 0, fmt.Errorf("store: writing compaction pins: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		return 0, fmt.Errorf("store: syncing compaction log: %w", err)
	}
	if err := tmp.Close(); err != nil {
		tmp = nil
		return 0, fmt.Errorf("store: closing compaction log: %w", err)
	}
	tmp = nil
	if err := s.fs.Rename(tmpPath, filepath.Join(s.dir, logName)); err != nil {
		return 0, fmt.Errorf("store: installing compacted log: %w", err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return 0, err
	}

	// Swap to the compacted log and rebuild the index offsets.
	old := s.f
	f, err := s.fs.OpenFile(filepath.Join(s.dir, logName), os.O_RDWR, 0o644)
	if err != nil {
		return 0, fmt.Errorf("store: reopening compacted log: %w", err)
	}
	old.Close()
	s.f = f
	s.index = make(map[string]entry)
	s.pins = make(map[string]int)
	s.pinT = make(map[string]int64)
	s.recover = 0
	if err := s.scan(); err != nil {
		return 0, err
	}
	return removed, nil
}

// EnforcePolicy is the GC policy pass behind `roload-serve
// -store-gc-interval`: unpin what the policy has aged or sized out,
// then compact. When maxAge > 0, every digest whose latest pin is
// older than the cutoff is fully unpinned. When maxBytes > 0 and the
// compacted log still exceeds it, the oldest-pinned digests are
// unpinned one at a time (recompacting after each) until the log fits
// or nothing pinned remains. Currently pinned digests are otherwise
// never collected — the policy only ever widens eligibility by
// unpinning first, so a plain GC() remains as conservative as ever.
func (s *Store) EnforcePolicy(maxAge time.Duration, maxBytes int64) (unpinned, removed int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer func() {
		s.polRuns++
		s.polUnpinned += uint64(unpinned)
		s.polRemoved += uint64(removed)
		s.polLastUnix = s.now().Unix()
		if err != nil {
			s.polLastErr = err.Error()
		} else {
			s.polLastErr = ""
		}
	}()

	if maxAge > 0 {
		cutoff := s.now().Add(-maxAge).Unix()
		for _, d := range s.oldestPinnedLocked() {
			if s.pinT[d] > cutoff {
				continue
			}
			if err = s.append(record{Op: "unpin", Digest: d, Count: s.pins[d]}); err != nil {
				return unpinned, removed, err
			}
			unpinned++
		}
	}
	n, err := s.gcLocked()
	if err != nil {
		return unpinned, removed, err
	}
	removed += n

	for maxBytes > 0 && s.size > maxBytes && len(s.pins) > 0 {
		victims := s.oldestPinnedLocked()
		d := victims[0]
		if err = s.append(record{Op: "unpin", Digest: d, Count: s.pins[d]}); err != nil {
			return unpinned, removed, err
		}
		unpinned++
		n, err := s.gcLocked()
		if err != nil {
			return unpinned, removed, err
		}
		removed += n
	}
	return unpinned, removed, nil
}

// oldestPinnedLocked returns the pinned digests ordered oldest pin
// first (digest order breaking ties, for determinism).
func (s *Store) oldestPinnedLocked() []string {
	out := make([]string, 0, len(s.pins))
	for d := range s.pins {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if s.pinT[out[i]] != s.pinT[out[j]] {
			return s.pinT[out[i]] < s.pinT[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// Metrics snapshots the store for /metrics.
func (s *Store) Metrics() schema.StoreMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := schema.StoreMetrics{
		Pinned:    len(s.pins),
		Puts:      s.puts.Load(),
		Gets:      s.gets.Load(),
		Recovered: s.recover,
		LogBytes:  s.size,
	}
	if len(s.index) > 0 {
		m.Entries = make(map[string]int)
		for k := range s.index {
			kind, _, _ := strings.Cut(k, "\x00")
			m.Entries[kind]++
		}
	}
	if s.polRuns > 0 {
		m.GC = &schema.StoreGCMetrics{
			Runs:      s.polRuns,
			Unpinned:  s.polUnpinned,
			Removed:   s.polRemoved,
			LastUnix:  s.polLastUnix,
			LastError: s.polLastErr,
		}
	}
	return m
}

// Len returns the number of stored artifacts.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Close releases the log file. Further operations error.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.f.Close()
}

// Digest fingerprints arbitrary bytes as lowercase hex SHA-256 — the
// key for content-addressed artifacts that have no externally defined
// digest (heal and batch reports).
func Digest(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
