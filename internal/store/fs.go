// The filesystem seam. The store performs every disk operation
// through the FS interface so tests can inject the failures real
// disks produce — short writes, fsync errors, ENOSPC, crashes between
// a compaction rewrite and its rename — without root, loop devices,
// or flaky timing. Production uses OS(), a trivial passthrough to the
// os package.
package store

import (
	"fmt"
	"io"
	"os"
)

// File is the subset of *os.File the store needs.
type File interface {
	io.ReaderAt
	io.WriterAt
	io.Writer
	Truncate(size int64) error
	Sync() error
	Close() error
	Stat() (os.FileInfo, error)
}

// FS is the filesystem surface the store runs on.
type FS interface {
	MkdirAll(dir string, perm os.FileMode) error
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// SyncDir fsyncs a directory so a rename within it is durable.
	SyncDir(dir string) error
}

// osFS is the passthrough FS used outside tests.
type osFS struct{}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

func (osFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: opening %s for sync: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: syncing %s: %w", dir, err)
	}
	return nil
}
