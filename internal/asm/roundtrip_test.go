package asm

import (
	"testing"

	"roload/internal/isa"
)

// Assemble → disassemble roundtrip: the decoded instruction stream of
// a linked program must match the mnemonics that went in (after pseudo
// expansion). This pins down encoding, layout and symbol resolution
// simultaneously.
func TestAssembleDisassembleRoundTrip(t *testing.T) {
	src := `
_start:
	li a0, 42
	la a1, table
	ld.ro a2, (a1), 77
	mul a3, a2, a0
	beq a3, zero, done
	addi a3, a3, -1
	j _start
done:
	sd a3, 0(sp)
	ecall
	.section .rodata.key.77
table: .quad _start
`
	img, err := Assemble(src, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	text, _ := img.FindSection(".text")
	lines := isa.Disassemble(text.Data, text.VA)
	var ops []isa.Op
	for _, l := range lines {
		ops = append(ops, l.Inst.Op)
	}
	want := []isa.Op{
		isa.ADDI,           // li
		isa.LUI, isa.ADDIW, // la
		isa.LDRO,
		isa.MUL,
		isa.BEQ,
		isa.ADDI,
		isa.JAL, // j
		isa.SD,
		isa.ECALL,
	}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("inst %d = %v, want %v", i, ops[i], want[i])
		}
	}
	// The la must resolve to the table's address.
	luiVal := uint64(lines[1].Inst.Imm) + uint64(lines[2].Inst.Imm)
	if luiVal != img.Symbols["table"] {
		t.Errorf("la resolves to %#x, want %#x", luiVal, img.Symbols["table"])
	}
	// The backward j must land exactly on _start.
	jal := lines[7]
	if jal.Addr+uint64(jal.Inst.Imm) != img.Symbols["_start"] {
		t.Errorf("j lands at %#x", jal.Addr+uint64(jal.Inst.Imm))
	}
}

// Relaxed branches must decode as the inverted-branch + jal pair and
// land on the right target.
func TestRelaxedBranchRoundTrip(t *testing.T) {
	src := "_start:\n\tbeq a0, a1, far\n"
	// Pad ~2000 instructions (8000 bytes, beyond the ±4 KiB range).
	for i := 0; i < 2000; i++ {
		src += "\tnop\n"
	}
	src += "far:\n\tecall\n"
	img, err := Assemble(src, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	text, _ := img.FindSection(".text")
	lines := isa.Disassemble(text.Data, text.VA)
	if lines[0].Inst.Op != isa.BNE || lines[0].Inst.Imm != 8 {
		t.Errorf("relaxed head = %v", lines[0].Inst)
	}
	if lines[1].Inst.Op != isa.JAL || lines[1].Inst.Rd != isa.Zero {
		t.Errorf("relaxed tail = %v", lines[1].Inst)
	}
	if lines[1].Addr+uint64(lines[1].Inst.Imm) != img.Symbols["far"] {
		t.Errorf("relaxed branch lands at %#x, want %#x",
			lines[1].Addr+uint64(lines[1].Inst.Imm), img.Symbols["far"])
	}
	// Non-taken path: the inverted branch skips the jal.
	if lines[2].Inst.Op != isa.ADDI {
		t.Errorf("fall-through = %v", lines[2].Inst)
	}
}

// Forward AND backward relaxation in one function.
func TestRelaxationBothDirections(t *testing.T) {
	src := "top:\n\tnop\n"
	for i := 0; i < 1500; i++ {
		src += "\tnop\n"
	}
	src += "_start:\n\tbeq a0, a1, top\n\tbne a0, a1, bottom\n"
	for i := 0; i < 1500; i++ {
		src += "\tnop\n"
	}
	src += "bottom:\n\tecall\n"
	img, err := Assemble(src, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Execute nothing; just verify layout invariants hold.
	if err := img.Validate(); err != nil {
		t.Fatal(err)
	}
	if img.Symbols["bottom"] <= img.Symbols["_start"] {
		t.Error("layout out of order")
	}
}

// Short branches must stay 4 bytes (no gratuitous relaxation).
func TestNearBranchNotRelaxed(t *testing.T) {
	img, err := Assemble("_start:\n\tbeq a0, a1, next\nnext:\n\tecall\n", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	text, _ := img.FindSection(".text")
	if len(text.Data) != 8 {
		t.Errorf("text = %d bytes, want 8", len(text.Data))
	}
}
