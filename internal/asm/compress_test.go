package asm

import (
	"testing"

	"roload/internal/isa"
)

const compressibleSrc = `
_start:
	li a0, 5
	mv a1, a0
	addi a1, a1, 3
	add a0, a0, a1
	sd a0, 0(sp)
	ld a2, 0(sp)
	ld.ro a3, (a0), 21
	slli a2, a2, 4
	li a7, 93
	ecall
`

func TestCompressShrinksText(t *testing.T) {
	plain, err := Assemble(compressibleSrc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Compress = true
	small, err := Assemble(compressibleSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if small.CodeSize() >= plain.CodeSize() {
		t.Fatalf("compressed %d >= plain %d", small.CodeSize(), plain.CodeSize())
	}
	// ld.ro with key 21 and C registers must be among the compressed.
	sec, _ := small.FindSection(".text")
	found := false
	for off := 0; off < len(sec.Data); {
		raw := uint32(sec.Data[off])
		if off+1 < len(sec.Data) {
			raw |= uint32(sec.Data[off+1]) << 8
		}
		if raw&3 == 3 && off+3 < len(sec.Data) {
			raw |= uint32(sec.Data[off+2])<<16 | uint32(sec.Data[off+3])<<24
		}
		in := isa.Decode(raw)
		if in.Op == isa.LDRO && in.Size == 2 {
			found = true
			if in.Key != 21 {
				t.Errorf("c.ld.ro key = %d", in.Key)
			}
		}
		off += int(in.Size)
	}
	if !found {
		t.Error("no c.ld.ro emitted")
	}
}

// Compression must never change semantics: decode both streams and
// compare the executed effect via a simple symbolic walk of the text.
func TestCompressPreservesInstructionSequence(t *testing.T) {
	plain, err := Assemble(compressibleSrc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Compress = true
	small, err := Assemble(compressibleSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	dp := decodeAll(t, plain)
	ds := decodeAll(t, small)
	if len(dp) != len(ds) {
		t.Fatalf("instruction counts differ: %d vs %d", len(dp), len(ds))
	}
	for i := range dp {
		a, b := dp[i], ds[i]
		a.Size, b.Size, a.Raw, b.Raw = 0, 0, 0, 0
		// c.mv decodes as add rd, zero, rs2 while the plain stream has
		// addi rd, rs, 0; compare semantics loosely for that pair.
		if a.Op == isa.ADDI && b.Op == isa.ADD && a.Imm == 0 &&
			b.Rs1 == isa.Zero && a.Rs1 == b.Rs2 && a.Rd == b.Rd {
			continue
		}
		if a != b {
			t.Errorf("inst %d: %v vs %v", i, a, b)
		}
	}
}

func decodeAll(t *testing.T, img *Image) []isa.Inst {
	t.Helper()
	sec, ok := img.FindSection(".text")
	if !ok {
		t.Fatal("no text")
	}
	var out []isa.Inst
	for off := 0; off < len(sec.Data); {
		raw := uint32(sec.Data[off])
		if off+1 < len(sec.Data) {
			raw |= uint32(sec.Data[off+1]) << 8
		}
		if raw&3 == 3 {
			if off+3 < len(sec.Data) {
				raw |= uint32(sec.Data[off+2])<<16 | uint32(sec.Data[off+3])<<24
			}
		}
		in := isa.Decode(raw)
		out = append(out, in)
		off += int(in.Size)
	}
	return out
}

// Branches across compressed code must still resolve (relaxation and
// layout interact with 2-byte statements).
func TestCompressWithBranches(t *testing.T) {
	src := `
_start:
	li a0, 0
	li a1, 10
loop:
	addi a0, a0, 1
	blt a0, a1, loop
	li a7, 93
	ecall
`
	opts := DefaultOptions()
	opts.Compress = true
	img, err := Assemble(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The blt target must land exactly on the addi (which compressed
	// to 2 bytes). Verify by decoding from the branch and walking back.
	sec, _ := img.FindSection(".text")
	loop := img.Symbols["loop"] - sec.VA
	raw := uint32(sec.Data[loop]) | uint32(sec.Data[loop+1])<<8
	in := isa.Decode(raw)
	if in.Op != isa.ADDI || in.Size != 2 {
		t.Errorf("loop head = %v size %d", in, in.Size)
	}
}

func TestLiteralInstRejectsSymbolic(t *testing.T) {
	cases := [][2]string{
		{"ld", "a0, sym(a1)"},
		{"li", "a0, sym"},
		{"addi", "a0, a1, sym"},
		{"ld.ro", "a0, (a1), sym"},
	}
	for _, c := range cases {
		if _, ok := literalInst(c[0], splitOperands(c[1])); ok {
			t.Errorf("literalInst(%s %s) accepted symbolic operand", c[0], c[1])
		}
	}
	if _, ok := literalInst("mul", splitOperands("a0, a1, a2")); ok {
		t.Error("literalInst accepted unsupported mnemonic")
	}
}
