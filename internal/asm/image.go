// Package asm implements the assembler and static linker of the ROLoad
// toolchain. It accepts RISC-V assembly extended with the ld.ro-family
// instructions and with keyed read-only sections (.rodata.key.N), and
// produces loadable images in which each section carries its page
// permissions and ROLoad key.
//
// The section naming convention matches Listing 3 of the paper:
//
//	.section .rodata.key.111
//	gfpt_foo: .quad foo
//
// The assembler honours the "-z separate-code" discipline the paper
// requires of its linker: code and read-only data never share a page,
// otherwise read-only data would land in executable pages and violate
// the read-only requirement of ROLoad-family instructions.
package asm

import (
	"fmt"
	"sort"
)

// Perm is a section permission bit set.
type Perm uint8

const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Section is one loadable region of an image.
type Section struct {
	Name string
	VA   uint64
	Data []byte // initialized contents; len(Data) <= Size
	Size uint64 // total size including zero fill (.bss)
	Perm Perm
	Key  uint16 // ROLoad page key (0 = untyped)
}

// Image is a linked program ready for the kernel loader.
type Image struct {
	Sections []Section
	Entry    uint64
	Symbols  map[string]uint64
}

// Symbol returns the address of a defined symbol.
func (img *Image) Symbol(name string) (uint64, bool) {
	v, ok := img.Symbols[name]
	return v, ok
}

// FindSection returns the section with the given name.
func (img *Image) FindSection(name string) (*Section, bool) {
	for i := range img.Sections {
		if img.Sections[i].Name == name {
			return &img.Sections[i], true
		}
	}
	return nil, false
}

// TotalSize returns the loadable byte count (including BSS zero fill),
// the basis of the evaluation's memory-usage accounting.
func (img *Image) TotalSize() uint64 {
	var n uint64
	for _, s := range img.Sections {
		n += s.Size
	}
	return n
}

// CodeSize returns the byte count of executable sections.
func (img *Image) CodeSize() uint64 {
	var n uint64
	for _, s := range img.Sections {
		if s.Perm&PermExec != 0 {
			n += s.Size
		}
	}
	return n
}

// Validate checks the structural invariants the loader relies on:
// page-aligned sections, no overlap, no writable+executable section,
// and keys only on read-only sections.
func (img *Image) Validate() error {
	secs := make([]Section, len(img.Sections))
	copy(secs, img.Sections)
	sort.Slice(secs, func(i, j int) bool { return secs[i].VA < secs[j].VA })
	for i, s := range secs {
		if s.VA%4096 != 0 {
			return fmt.Errorf("asm: section %s at unaligned address %#x", s.Name, s.VA)
		}
		if uint64(len(s.Data)) > s.Size {
			return fmt.Errorf("asm: section %s data exceeds size", s.Name)
		}
		if s.Perm&PermWrite != 0 && s.Perm&PermExec != 0 {
			return fmt.Errorf("asm: section %s is writable and executable (DEP violation)", s.Name)
		}
		if s.Key != 0 && (s.Perm&PermWrite != 0 || s.Perm&PermRead == 0) {
			return fmt.Errorf("asm: keyed section %s must be read-only", s.Name)
		}
		if i > 0 {
			prev := secs[i-1]
			prevEnd := prev.VA + pageRound(prev.Size)
			if s.VA < prevEnd {
				return fmt.Errorf("asm: sections %s and %s overlap", prev.Name, s.Name)
			}
		}
	}
	return nil
}

func pageRound(n uint64) uint64 {
	const page = 4096
	if n%page == 0 {
		return n
	}
	return n + page - n%page
}
