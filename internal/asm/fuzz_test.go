package asm

import (
	"testing"

	"roload/internal/isa"
)

// FuzzAssembleRoundTrip feeds arbitrary source text to the assembler.
// The property under test: Assemble never panics, and every program it
// accepts yields a structurally valid image whose executable sections
// disassemble cleanly — the same round-trip the deterministic
// TestAssembleDisassembleRoundTrip pins for known-good programs,
// extended to the hostile input space.
func FuzzAssembleRoundTrip(f *testing.F) {
	seeds := []string{
		"_start:\n\tli a0, 42\n\tecall\n",
		"_start:\n\tla a1, table\n\tld.ro a2, (a1), 77\n\tjalr ra, a2, 0\n\t.section .rodata.key.77\ntable: .quad _start\n",
		"_start:\n\tj _start\n",
		"_start:\n\taddi sp, sp, -16\n\tsd ra, 8(sp)\n\tld ra, 8(sp)\n\tret\n",
		".section .data\nval: .quad 7\n.section .text\n_start:\n\tla a0, val\n\tld a1, 0(a0)\n\tecall\n",
		"_start:\n\tbeq a0, a1, _start\n\tmul a2, a3, a4\n",
		"; comment only\n",
		".section .rodata.key.1023\nk: .quad 0\n",
		"_start: .quad _missing\n",
		"\x00\xff garbage",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		img, err := Assemble(src, DefaultOptions())
		if err != nil {
			return // rejecting bad input is fine; panicking is not
		}
		if err := img.Validate(); err != nil {
			t.Fatalf("accepted program produced invalid image: %v\nsource:\n%s", err, src)
		}
		for _, sec := range img.Sections {
			if sec.Perm&PermExec == 0 {
				continue
			}
			lines := isa.Disassemble(sec.Data, sec.VA)
			for _, l := range lines {
				_ = l.Inst.Op.String()
			}
		}
		var sum uint64
		for _, sec := range img.Sections {
			sum += sec.Size
		}
		if got := img.TotalSize(); got != sum {
			t.Fatalf("TotalSize() = %d, sections sum to %d", got, sum)
		}
	})
}
