package asm

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"roload/internal/isa"
)

func assembleOK(t *testing.T, src string) *Image {
	t.Helper()
	img, err := Assemble(src, DefaultOptions())
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return img
}

func textWords(t *testing.T, img *Image) []uint32 {
	t.Helper()
	sec, ok := img.FindSection(".text")
	if !ok {
		t.Fatal("no .text")
	}
	words := make([]uint32, len(sec.Data)/4)
	for i := range words {
		words[i] = binary.LittleEndian.Uint32(sec.Data[i*4:])
	}
	return words
}

func TestBasicProgram(t *testing.T) {
	img := assembleOK(t, `
	.text
	.globl _start
_start:
	li a0, 42
	ecall
`)
	words := textWords(t, img)
	if len(words) != 2 {
		t.Fatalf("words = %d", len(words))
	}
	in := isa.Decode(words[0])
	if in.Op != isa.ADDI || in.Rd != isa.A0 || in.Imm != 42 {
		t.Errorf("inst0 = %v", in)
	}
	if isa.Decode(words[1]).Op != isa.ECALL {
		t.Errorf("inst1 = %v", isa.Decode(words[1]))
	}
	if img.Entry != img.Symbols["_start"] {
		t.Errorf("entry = %#x", img.Entry)
	}
}

func TestROLoadSyntax(t *testing.T) {
	img := assembleOK(t, `
_start:
	ld.ro a0, (a1), 111
	lw.ro a2, (a3), 0
	ecall
`)
	words := textWords(t, img)
	in := isa.Decode(words[0])
	if in.Op != isa.LDRO || in.Rd != isa.A0 || in.Rs1 != isa.A1 || in.Key != 111 {
		t.Errorf("ld.ro = %+v", in)
	}
	in = isa.Decode(words[1])
	if in.Op != isa.LWRO || in.Key != 0 {
		t.Errorf("lw.ro = %+v", in)
	}
}

func TestKeyedSection(t *testing.T) {
	img := assembleOK(t, `
	.text
_start:
	la a0, gfpt_foo
	ld.ro a0, (a0), 111
	ecall
	.section .rodata.key.111
gfpt_foo:
	.quad _start
`)
	sec, ok := img.FindSection(".rodata.key.111")
	if !ok {
		t.Fatal("keyed section missing")
	}
	if sec.Key != 111 {
		t.Errorf("key = %d", sec.Key)
	}
	if sec.Perm != PermRead {
		t.Errorf("perm = %v", sec.Perm)
	}
	// The .quad must hold the address of _start.
	got := binary.LittleEndian.Uint64(sec.Data)
	if got != img.Symbols["_start"] {
		t.Errorf("gfpt_foo = %#x, want %#x", got, img.Symbols["_start"])
	}
}

func TestListing3Shape(t *testing.T) {
	// The exact hardening shape from Listing 2+3 of the paper.
	img := assembleOK(t, `
	.text
_start:
	la a0, gfpt_foo
	sd a0, -1608(gp)   # func1 = &gfpt entry
	ld a0, -1608(gp)   # func1
	ld.ro a0, (a0), 111
	jalr a0
	ecall
foo:
	ret
	.section .rodata.key.111
gfpt_foo: .quad foo
`)
	words := textWords(t, img)
	var ops []isa.Op
	for _, w := range words {
		ops = append(ops, isa.Decode(w).Op)
	}
	want := []isa.Op{isa.LUI, isa.ADDIW, isa.SD, isa.LD, isa.LDRO, isa.JALR, isa.ECALL, isa.JALR}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op[%d] = %v, want %v", i, ops[i], want[i])
		}
	}
}

func TestBranchesAndLabels(t *testing.T) {
	img := assembleOK(t, `
_start:
	li a0, 0
	li a1, 10
loop:
	addi a0, a0, 1
	blt a0, a1, loop
	beqz a0, _start
	bnez a0, done
	nop
done:
	ecall
`)
	words := textWords(t, img)
	// blt is the 4th word (index 3): target = loop (index 2), offset -4.
	in := isa.Decode(words[3])
	if in.Op != isa.BLT || in.Imm != -4 {
		t.Errorf("blt = %+v", in)
	}
	in = isa.Decode(words[4]) // beqz a0, _start -> offset -16
	if in.Op != isa.BEQ || in.Rs2 != isa.Zero || in.Imm != -16 {
		t.Errorf("beqz = %+v", in)
	}
	in = isa.Decode(words[5]) // bnez a0, done -> offset +8
	if in.Op != isa.BNE || in.Imm != 8 {
		t.Errorf("bnez = %+v", in)
	}
}

func TestCallRetJump(t *testing.T) {
	img := assembleOK(t, `
_start:
	call fn
	j end
fn:
	ret
end:
	ecall
`)
	words := textWords(t, img)
	in := isa.Decode(words[0])
	if in.Op != isa.JAL || in.Rd != isa.RA || in.Imm != 8 {
		t.Errorf("call = %+v", in)
	}
	in = isa.Decode(words[1])
	if in.Op != isa.JAL || in.Rd != isa.Zero || in.Imm != 8 {
		t.Errorf("j = %+v", in)
	}
	in = isa.Decode(words[2])
	if in.Op != isa.JALR || in.Rd != isa.Zero || in.Rs1 != isa.RA {
		t.Errorf("ret = %+v", in)
	}
}

func TestDataDirectives(t *testing.T) {
	img := assembleOK(t, `
_start:
	ecall
	.data
vals:
	.byte 1, 2, 3
	.half 0x1234
	.word -1
	.quad 0x123456789abcdef0
msg:
	.asciz "hi"
	.align 3
aligned:
	.quad vals
	.bss
buf:
	.space 128
`)
	data, _ := img.FindSection(".data")
	if data.Data[0] != 1 || data.Data[1] != 2 || data.Data[2] != 3 {
		t.Errorf("bytes = %v", data.Data[:3])
	}
	if binary.LittleEndian.Uint16(data.Data[3:]) != 0x1234 {
		t.Error("half wrong")
	}
	if binary.LittleEndian.Uint32(data.Data[5:]) != 0xffffffff {
		t.Error("word wrong")
	}
	if binary.LittleEndian.Uint64(data.Data[9:]) != 0x123456789abcdef0 {
		t.Error("quad wrong")
	}
	msgOff := img.Symbols["msg"] - data.VA
	if string(data.Data[msgOff:msgOff+3]) != "hi\x00" {
		t.Error("asciz wrong")
	}
	alignedOff := img.Symbols["aligned"] - data.VA
	if alignedOff%8 != 0 {
		t.Errorf("aligned at %d", alignedOff)
	}
	if binary.LittleEndian.Uint64(data.Data[alignedOff:]) != img.Symbols["vals"] {
		t.Error("quad symbol wrong")
	}
	bss, ok := img.FindSection(".bss")
	if !ok || bss.Size != 128 || bss.Data != nil {
		t.Errorf("bss = %+v", bss)
	}
}

func TestSeparateCodeLayout(t *testing.T) {
	// Code and read-only data must never share a page (-z separate-code).
	img := assembleOK(t, `
_start:
	ecall
	.rodata
c1: .quad 1
	.section .rodata.key.5
c2: .quad 2
	.section .rodata.key.6
c3: .quad 3
`)
	if err := img.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]string{}
	for _, s := range img.Sections {
		page := s.VA >> 12
		if other, dup := seen[page]; dup {
			t.Errorf("sections %s and %s share page %#x", other, s.Name, page)
		}
		seen[page] = s.Name
	}
	// Two keyed sections must have different keys on different pages.
	s5, _ := img.FindSection(".rodata.key.5")
	s6, _ := img.FindSection(".rodata.key.6")
	if s5.Key != 5 || s6.Key != 6 {
		t.Errorf("keys = %d, %d", s5.Key, s6.Key)
	}
}

func TestLiWidths(t *testing.T) {
	img := assembleOK(t, `
_start:
	li a0, 2047
	li a1, -2048
	li a2, 2048
	li a3, 0x7fffffff
	ecall
`)
	words := textWords(t, img)
	// 2047 and -2048: 1 inst each. 2048 and 0x7fffffff: 2 each. Plus ecall.
	if len(words) != 1+1+2+2+1 {
		t.Fatalf("words = %d", len(words))
	}
	if in := isa.Decode(words[0]); in.Op != isa.ADDI || in.Imm != 2047 {
		t.Errorf("li 2047 = %v", in)
	}
	in := isa.Decode(words[2])
	if in.Op != isa.LUI {
		t.Errorf("li 2048 starts with %v", in.Op)
	}
}

func TestPseudoExpansions(t *testing.T) {
	img := assembleOK(t, `
_start:
	mv a0, a1
	not a2, a3
	neg a4, a5
	seqz a6, a7
	snez s2, s3
	sext.w s4, s5
	jr ra
	bgt a0, a1, _start
	ble a0, a1, _start
	ecall
`)
	words := textWords(t, img)
	checks := []struct {
		i  int
		op isa.Op
	}{
		{0, isa.ADDI}, {1, isa.XORI}, {2, isa.SUB}, {3, isa.SLTIU},
		{4, isa.SLTU}, {5, isa.ADDIW}, {6, isa.JALR}, {7, isa.BLT}, {8, isa.BGE},
	}
	for _, c := range checks {
		if in := isa.Decode(words[c.i]); in.Op != c.op {
			t.Errorf("word %d = %v, want %v", c.i, in.Op, c.op)
		}
	}
	// bgt swaps operands.
	in := isa.Decode(words[7])
	if in.Rs1 != isa.A1 || in.Rs2 != isa.A0 {
		t.Errorf("bgt operands = %v, %v", in.Rs1, in.Rs2)
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown inst", "_start:\n\tfoo a0, a1\n"},
		{"bad register", "_start:\n\tadd a0, a1, q9\n"},
		{"undefined symbol", "_start:\n\tla a0, missing\n"},
		{"redefined label", "a:\na:\n\tecall\n"},
		{"bad key", "_start:\n\tld.ro a0, (a1), 9999\n"},
		{"bad key section", ".section .rodata.key.99999\nx: .quad 1\n"},
		{"unknown directive", ".bogus 12\n"},
		{"wrong operand count", "_start:\n\tadd a0, a1\n"},
		{"roload with offset", "_start:\n\tld.ro a0, 8(a1), 3\n"},
		{"branch out of range", "_start:\n\tbeq a0, a1, 100000\n"},
		{"ld.ro missing parens", "_start:\n\tld.ro a0, a1, 3\n"},
		{"bad string", "_start:\n\tecall\n.data\n.asciz bogus\n"},
		{"writable keyed section would fail validate", ".section .rodata.key.banana\n"},
		{"no entry", "foo:\n\tecall\n"},
	}
	for _, c := range cases {
		if _, err := Assemble(c.src, DefaultOptions()); err == nil {
			t.Errorf("%s: assembled without error", c.name)
		}
	}
}

func TestCommentsAndFormatting(t *testing.T) {
	img := assembleOK(t, `
# full-line comment
_start:	li a0, 1  # trailing comment
	ecall // C++-style
`)
	if len(textWords(t, img)) != 2 {
		t.Error("comment handling changed instruction count")
	}
}

func TestHiLoRelocation(t *testing.T) {
	img := assembleOK(t, `
_start:
	lui a0, %hi(value)
	addi a0, a0, %lo(value)
	ld a1, 0(a0)
	ecall
	.data
value: .quad 7
`)
	words := textWords(t, img)
	lui := isa.Decode(words[0])
	addi := isa.Decode(words[1])
	addr := uint64(lui.Imm) + uint64(addi.Imm)
	if addr != img.Symbols["value"] {
		t.Errorf("hi/lo resolves to %#x, want %#x", addr, img.Symbols["value"])
	}
}

func TestEntryFallbackToMain(t *testing.T) {
	img := assembleOK(t, "main:\n\tecall\n")
	if img.Entry != img.Symbols["main"] {
		t.Error("entry fallback failed")
	}
}

func TestImageValidate(t *testing.T) {
	bad := &Image{Sections: []Section{
		{Name: ".text", VA: 0x10001, Size: 4, Perm: PermRead | PermExec},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("unaligned section accepted")
	}
	bad = &Image{Sections: []Section{
		{Name: ".text", VA: 0x10000, Size: 4, Perm: PermRead | PermWrite | PermExec},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("W+X section accepted")
	}
	bad = &Image{Sections: []Section{
		{Name: ".k", VA: 0x10000, Size: 4, Perm: PermRead | PermWrite, Key: 3},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("writable keyed section accepted")
	}
	bad = &Image{Sections: []Section{
		{Name: "a", VA: 0x10000, Size: 8192, Perm: PermRead},
		{Name: "b", VA: 0x11000, Size: 4, Perm: PermRead},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("overlapping sections accepted")
	}
}

func TestTotalAndCodeSize(t *testing.T) {
	img := assembleOK(t, `
_start:
	ecall
	.data
x: .quad 1
`)
	if img.CodeSize() != 4 {
		t.Errorf("code size = %d", img.CodeSize())
	}
	if img.TotalSize() != 12 {
		t.Errorf("total size = %d", img.TotalSize())
	}
}

// Property: assembling "li a0, v" then decoding computes exactly v for
// any 32-bit value (the materialization correctness property).
func TestQuickLiMaterialization(t *testing.T) {
	f := func(v int32) bool {
		img, err := Assemble("_start:\n\tli a0, "+itoa(int64(v))+"\n\tecall\n", DefaultOptions())
		if err != nil {
			return false
		}
		sec, ok := img.FindSection(".text")
		if !ok {
			return false
		}
		words := make([]uint32, len(sec.Data)/4)
		for i := range words {
			words[i] = binary.LittleEndian.Uint32(sec.Data[i*4:])
		}
		var a0 int64
		for _, w := range words {
			in := isa.Decode(w)
			switch in.Op {
			case isa.ADDI:
				a0 += in.Imm
			case isa.LUI:
				a0 = in.Imm
			case isa.ADDIW:
				a0 = int64(int32(a0 + in.Imm))
			case isa.ECALL:
			}
		}
		return a0 == int64(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	var b [24]byte
	i := len(b)
	u := uint64(v)
	if neg {
		u = uint64(-v)
	}
	for u > 0 {
		i--
		b[i] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

func TestSplitOperands(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"a0, a1, a2", []string{"a0", "a1", "a2"}},
		{"a0, 8(sp)", []string{"a0", "8(sp)"}},
		{"a0, (a1), 111", []string{"a0", "(a1)", "111"}},
		{`"a, b"`, []string{`"a, b"`}},
		{"", nil},
	}
	for _, c := range cases {
		got := splitOperands(c.in)
		if len(got) != len(c.want) {
			t.Errorf("splitOperands(%q) = %v", c.in, got)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("splitOperands(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func BenchmarkAssembleSmall(b *testing.B) {
	src := `
_start:
	li a0, 42
	la a1, table
	ld.ro a2, (a1), 7
	ecall
	.section .rodata.key.7
table: .quad _start
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Assemble(src, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
