package asm

import (
	"fmt"
	"strconv"
	"strings"

	"roload/internal/isa"
)

// SyntaxError reports a problem in the assembly source.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg)
}

// expr is a symbol-relative constant: Sym == "" means a plain integer.
type expr struct {
	Sym string
	Off int64
	Hi  bool // %hi(sym)
	Lo  bool // %lo(sym)
}

// stmt is one sized unit within a section: an instruction (possibly a
// pseudo expansion) or a data directive.
type stmt struct {
	line int
	size uint64

	// instruction statements
	inst   *instStmt
	branch *branchStmt
	c16    uint16 // compressed (RVC) encoding; valid when size == 2
	isC16  bool
	// data statements
	data  []dataItem
	align uint64 // alignment request in bytes (power of two)
	space uint64 // zero fill
}

type instStmt struct {
	op       string // mnemonic as written (pseudo or real)
	operands []string
}

// branchStmt is a canonicalized conditional branch, kept separate so
// the linker can relax out-of-range branches into an inverted branch
// over a jal (size 4 -> 8). Branch pseudos (beqz, bgt, ...) lower to
// this form at parse time.
type branchStmt struct {
	op       isa.Op
	rs1, rs2 isa.Reg
	target   expr
	long     bool // relaxed to inverted-branch + jal
}

type dataItem struct {
	width int // 1,2,4,8
	val   expr
	str   []byte // for .asciz, width 0
}

type section struct {
	name  string
	perm  Perm
	key   uint16
	stmts []stmt
}

// symbol points at a statement; its byte offset is computed during
// layout (which may iterate while branches relax).
type symbol struct {
	section string
	stmtIdx int
}

// parser accumulates sections and symbols during pass 1.
type parser struct {
	sections map[string]*section
	order    []string
	symbols  map[string]symbol
	globals  map[string]bool
	cur      *section
	line     int
	compress bool // attempt RVC encodings for literal instructions
}

func newParser() *parser {
	return &parser{
		sections: make(map[string]*section),
		symbols:  make(map[string]symbol),
		globals:  make(map[string]bool),
	}
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &SyntaxError{Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) enterSection(name string) error {
	if s, ok := p.sections[name]; ok {
		p.cur = s
		return nil
	}
	s := &section{name: name}
	switch {
	case name == ".text":
		s.perm = PermRead | PermExec
	case name == ".data" || name == ".bss":
		s.perm = PermRead | PermWrite
	case name == ".rodata":
		s.perm = PermRead
	case strings.HasPrefix(name, ".rodata.key."):
		s.perm = PermRead
		keyStr := strings.TrimPrefix(name, ".rodata.key.")
		key, err := strconv.ParseUint(keyStr, 10, 16)
		if err != nil || key > isa.MaxKey {
			return p.errf("invalid section key %q", keyStr)
		}
		s.key = uint16(key)
	case strings.HasPrefix(name, ".rodata."):
		s.perm = PermRead
	default:
		return p.errf("unknown section %q", name)
	}
	p.sections[name] = s
	p.order = append(p.order, name)
	p.cur = s
	return nil
}

// splitOperands splits on top-level commas, respecting parentheses and
// quoted strings.
func splitOperands(s string) []string {
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '(':
			if !inStr {
				depth++
			}
		case ')':
			if !inStr {
				depth--
			}
		case ',':
			if depth == 0 && !inStr {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	last := strings.TrimSpace(s[start:])
	if last != "" || len(out) > 0 {
		out = append(out, last)
	}
	return out
}

func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inStr = !inStr
		case '#':
			if !inStr {
				return line[:i]
			}
		case '/':
			if !inStr && i+1 < len(line) && line[i+1] == '/' {
				return line[:i]
			}
		}
	}
	return line
}

func (p *parser) parse(src string) error {
	p.line = 0
	for _, raw := range strings.Split(src, "\n") {
		p.line++
		line := strings.TrimSpace(stripComment(raw))
		if line == "" {
			continue
		}
		// Labels (possibly several on one line).
		for {
			idx := strings.Index(line, ":")
			if idx < 0 {
				break
			}
			head := strings.TrimSpace(line[:idx])
			if !isIdent(head) {
				break
			}
			if err := p.defineLabel(head); err != nil {
				return err
			}
			line = strings.TrimSpace(line[idx+1:])
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			if err := p.directive(line); err != nil {
				return err
			}
			continue
		}
		if err := p.instruction(line); err != nil {
			return err
		}
	}
	return nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == '.' || r == '$' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func (p *parser) defineLabel(name string) error {
	if p.cur == nil {
		if err := p.enterSection(".text"); err != nil {
			return err
		}
	}
	if _, dup := p.symbols[name]; dup {
		return p.errf("symbol %q redefined", name)
	}
	p.symbols[name] = symbol{section: p.cur.name, stmtIdx: len(p.cur.stmts)}
	return nil
}

func (p *parser) directive(line string) error {
	fields := strings.SplitN(line, " ", 2)
	name := fields[0]
	rest := ""
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	switch name {
	case ".text", ".data", ".bss", ".rodata":
		return p.enterSection(name)
	case ".section":
		return p.enterSection(strings.TrimSpace(rest))
	case ".globl", ".global":
		p.globals[rest] = true
		return nil
	case ".align", ".p2align":
		n, err := strconv.ParseUint(rest, 0, 8)
		if err != nil || n > 12 {
			return p.errf("bad alignment %q", rest)
		}
		return p.addStmt(stmt{line: p.line, align: 1 << n})
	case ".space", ".zero", ".skip":
		n, err := strconv.ParseUint(rest, 0, 32)
		if err != nil {
			return p.errf("bad size %q", rest)
		}
		return p.addStmt(stmt{line: p.line, size: n, space: n})
	case ".byte", ".half", ".word", ".quad", ".dword":
		width := map[string]int{".byte": 1, ".half": 2, ".word": 4, ".quad": 8, ".dword": 8}[name]
		var items []dataItem
		for _, op := range splitOperands(rest) {
			e, err := p.parseExpr(op)
			if err != nil {
				return err
			}
			items = append(items, dataItem{width: width, val: e})
		}
		if len(items) == 0 {
			return p.errf("%s needs at least one value", name)
		}
		return p.addStmt(stmt{line: p.line, size: uint64(width * len(items)), data: items})
	case ".asciz", ".string":
		s, err := strconv.Unquote(rest)
		if err != nil {
			return p.errf("bad string %q", rest)
		}
		b := append([]byte(s), 0)
		return p.addStmt(stmt{line: p.line, size: uint64(len(b)),
			data: []dataItem{{str: b}}})
	case ".ascii":
		s, err := strconv.Unquote(rest)
		if err != nil {
			return p.errf("bad string %q", rest)
		}
		return p.addStmt(stmt{line: p.line, size: uint64(len(s)),
			data: []dataItem{{str: []byte(s)}}})
	default:
		return p.errf("unknown directive %q", name)
	}
}

func (p *parser) addStmt(s stmt) error {
	if p.cur == nil {
		if err := p.enterSection(".text"); err != nil {
			return err
		}
	}
	// .align padding is resolved during layout, which knows offsets.
	p.cur.stmts = append(p.cur.stmts, s)
	return nil
}

func (p *parser) instruction(line string) error {
	fields := strings.SplitN(line, " ", 2)
	op := strings.ToLower(fields[0])
	rest := ""
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	operands := splitOperands(rest)
	if b, ok, err := p.branchStmt(op, operands); err != nil {
		return err
	} else if ok {
		return p.addStmt(stmt{line: p.line, size: 4, branch: b})
	}
	if p.compress {
		if in, ok := literalInst(op, operands); ok {
			if raw, ok := isa.TryCompress(in); ok {
				return p.addStmt(stmt{line: p.line, size: 2, c16: raw, isC16: true})
			}
		}
	}
	size, err := p.instSize(op, operands)
	if err != nil {
		return err
	}
	return p.addStmt(stmt{
		line: p.line,
		size: size,
		inst: &instStmt{op: op, operands: operands},
	})
}

// literalInst builds an isa.Inst for a mnemonic whose operands are all
// registers or integer literals (no symbols), the precondition for
// attempting an RVC encoding at parse time. Only the forms the code
// generator emits frequently are recognized.
func literalInst(op string, operands []string) (isa.Inst, bool) {
	reg := func(s string) (isa.Reg, bool) { return isa.RegByName(strings.TrimSpace(s)) }
	lit := func(s string) (int64, bool) {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
		return v, err == nil
	}
	mem := func(s string) (int64, isa.Reg, bool) {
		s = strings.TrimSpace(s)
		open := strings.LastIndex(s, "(")
		if open < 0 || !strings.HasSuffix(s, ")") {
			return 0, 0, false
		}
		r, ok := reg(s[open+1 : len(s)-1])
		if !ok {
			return 0, 0, false
		}
		if open == 0 {
			return 0, r, true
		}
		off, ok := lit(s[:open])
		return off, r, ok
	}
	switch op {
	case "ld.ro":
		if len(operands) != 3 {
			return isa.Inst{}, false
		}
		rd, ok1 := reg(operands[0])
		off, rs1, ok2 := mem(operands[1])
		key, ok3 := lit(operands[2])
		if !ok1 || !ok2 || !ok3 || off != 0 || key < 0 || key > isa.MaxKey {
			return isa.Inst{}, false
		}
		return isa.Inst{Op: isa.LDRO, Rd: rd, Rs1: rs1, Key: uint16(key)}, true
	case "ld", "lw", "sd", "sw":
		if len(operands) != 2 {
			return isa.Inst{}, false
		}
		iop, _ := isa.OpByName(op)
		off, rs1, ok2 := mem(operands[1])
		r, ok1 := reg(operands[0])
		if !ok1 || !ok2 {
			return isa.Inst{}, false
		}
		if iop.IsStore() {
			return isa.Inst{Op: iop, Rs1: rs1, Rs2: r, Imm: off}, true
		}
		return isa.Inst{Op: iop, Rd: r, Rs1: rs1, Imm: off}, true
	case "addi", "addiw", "slli":
		if len(operands) != 3 {
			return isa.Inst{}, false
		}
		iop, _ := isa.OpByName(op)
		rd, ok1 := reg(operands[0])
		rs1, ok2 := reg(operands[1])
		imm, ok3 := lit(operands[2])
		if !ok1 || !ok2 || !ok3 {
			return isa.Inst{}, false
		}
		return isa.Inst{Op: iop, Rd: rd, Rs1: rs1, Imm: imm}, true
	case "add":
		if len(operands) != 3 {
			return isa.Inst{}, false
		}
		rd, ok1 := reg(operands[0])
		rs1, ok2 := reg(operands[1])
		rs2, ok3 := reg(operands[2])
		if !ok1 || !ok2 || !ok3 {
			return isa.Inst{}, false
		}
		return isa.Inst{Op: isa.ADD, Rd: rd, Rs1: rs1, Rs2: rs2}, true
	case "mv":
		if len(operands) != 2 {
			return isa.Inst{}, false
		}
		rd, ok1 := reg(operands[0])
		rs2, ok2 := reg(operands[1])
		if !ok1 || !ok2 {
			return isa.Inst{}, false
		}
		// c.mv encodes as add rd, x0, rs2.
		return isa.Inst{Op: isa.ADD, Rd: rd, Rs1: isa.Zero, Rs2: rs2}, true
	case "li":
		if len(operands) != 2 {
			return isa.Inst{}, false
		}
		rd, ok1 := reg(operands[0])
		imm, ok2 := lit(operands[1])
		if !ok1 || !ok2 {
			return isa.Inst{}, false
		}
		return isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: isa.Zero, Imm: imm}, true
	case "ret":
		if len(operands) != 0 {
			return isa.Inst{}, false
		}
		return isa.Inst{Op: isa.JALR, Rd: isa.Zero, Rs1: isa.RA}, true
	case "jr":
		if len(operands) != 1 {
			return isa.Inst{}, false
		}
		rs, ok := reg(operands[0])
		if !ok {
			return isa.Inst{}, false
		}
		return isa.Inst{Op: isa.JALR, Rd: isa.Zero, Rs1: rs}, true
	}
	return isa.Inst{}, false
}

// branchStmt canonicalizes conditional-branch mnemonics (real and
// pseudo) so the linker can relax out-of-range ones.
func (p *parser) branchStmt(op string, operands []string) (*branchStmt, bool, error) {
	reg := func(s string) (isa.Reg, error) {
		r, ok := isa.RegByName(strings.TrimSpace(s))
		if !ok {
			return 0, p.errf("bad register %q", s)
		}
		return r, nil
	}
	build := func(iop isa.Op, rs1, rs2 string, target string) (*branchStmt, bool, error) {
		r1, err := reg(rs1)
		if err != nil {
			return nil, false, err
		}
		r2, err := reg(rs2)
		if err != nil {
			return nil, false, err
		}
		tgt, err := p.parseExpr(target)
		if err != nil {
			return nil, false, err
		}
		return &branchStmt{op: iop, rs1: r1, rs2: r2, target: tgt}, true, nil
	}
	need := func(n int) error {
		if len(operands) != n {
			return p.errf("%s needs %d operands, got %d", op, n, len(operands))
		}
		return nil
	}
	switch op {
	case "beq", "bne", "blt", "bge", "bltu", "bgeu":
		if err := need(3); err != nil {
			return nil, false, err
		}
		iop, _ := isa.OpByName(op)
		return build(iop, operands[0], operands[1], operands[2])
	case "bgt", "ble", "bgtu", "bleu":
		if err := need(3); err != nil {
			return nil, false, err
		}
		swap := map[string]isa.Op{"bgt": isa.BLT, "ble": isa.BGE, "bgtu": isa.BLTU, "bleu": isa.BGEU}
		return build(swap[op], operands[1], operands[0], operands[2])
	case "beqz", "bnez", "blez", "bgez", "bltz", "bgtz":
		if err := need(2); err != nil {
			return nil, false, err
		}
		switch op {
		case "beqz":
			return build(isa.BEQ, operands[0], "zero", operands[1])
		case "bnez":
			return build(isa.BNE, operands[0], "zero", operands[1])
		case "blez":
			return build(isa.BGE, "zero", operands[0], operands[1])
		case "bgez":
			return build(isa.BGE, operands[0], "zero", operands[1])
		case "bltz":
			return build(isa.BLT, operands[0], "zero", operands[1])
		case "bgtz":
			return build(isa.BLT, "zero", operands[0], operands[1])
		}
	}
	return nil, false, nil
}

// instSize returns the encoded size of an instruction or pseudo. All
// real instructions are 4 bytes; pseudo-instructions expand to a fixed
// number of real ones determined here (pass 1 must know final sizes).
func (p *parser) instSize(op string, operands []string) (uint64, error) {
	switch op {
	case "li":
		if len(operands) != 2 {
			return 0, p.errf("li needs 2 operands")
		}
		e, err := p.parseExpr(operands[1])
		if err != nil {
			return 0, err
		}
		if e.Sym != "" {
			return 8, nil // lui+addi
		}
		return uint64(4 * len(materializeImm(0, e.Off, false))), nil
	case "la":
		return 8, nil // lui+addi
	case "call", "tail":
		return 4, nil // jal
	case "lw.at", "ld.at", "sb.at", "sh.at", "sw.at", "sd.at":
		return 12, nil // la + access
	default:
		return 4, nil
	}
}

// parseExpr parses an integer, symbol, symbol+int, symbol-int,
// %hi(expr) or %lo(expr).
func (p *parser) parseExpr(s string) (expr, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return expr{}, p.errf("empty expression")
	}
	if strings.HasPrefix(s, "%hi(") && strings.HasSuffix(s, ")") {
		e, err := p.parseExpr(s[4 : len(s)-1])
		if err != nil {
			return expr{}, err
		}
		e.Hi = true
		return e, nil
	}
	if strings.HasPrefix(s, "%lo(") && strings.HasSuffix(s, ")") {
		e, err := p.parseExpr(s[4 : len(s)-1])
		if err != nil {
			return expr{}, err
		}
		e.Lo = true
		return e, nil
	}
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		return expr{Off: v}, nil
	}
	// Unsigned hex like 0xffffffffffffffff.
	if v, err := strconv.ParseUint(s, 0, 64); err == nil {
		return expr{Off: int64(v)}, nil
	}
	if s[0] == '\'' { // character literal
		if uq, err := strconv.Unquote(s); err == nil && len(uq) == 1 {
			return expr{Off: int64(uq[0])}, nil
		}
	}
	// symbol [+|- offset]
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			sym := strings.TrimSpace(s[:i])
			if !isIdent(sym) {
				break
			}
			off, err := strconv.ParseInt(strings.TrimSpace(s[i+1:]), 0, 64)
			if err != nil {
				return expr{}, p.errf("bad offset in %q", s)
			}
			if s[i] == '-' {
				off = -off
			}
			return expr{Sym: sym, Off: off}, nil
		}
	}
	if isIdent(s) {
		return expr{Sym: s}, nil
	}
	return expr{}, p.errf("cannot parse expression %q", s)
}
