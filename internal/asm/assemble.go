package asm

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"roload/internal/isa"
)

// Options configures assembly.
type Options struct {
	// TextBase is the virtual address of .text. Remaining sections are
	// laid out after it, each page-aligned ("-z separate-code").
	TextBase uint64
	// Entry is the entry symbol; defaults to "_start", falling back to
	// "main".
	Entry string
	// Compress, when set, rewrites eligible instructions to their
	// compressed forms. Layout becomes a two-step fixpoint; only used
	// by the code-size ablation. Branch targets are re-resolved.
	Compress bool
}

// DefaultOptions returns the standard link layout.
func DefaultOptions() Options {
	return Options{TextBase: 0x10000, Entry: "_start"}
}

// Assemble parses and links one assembly source into an Image.
func Assemble(src string, opts Options) (*Image, error) {
	if opts.TextBase == 0 {
		opts.TextBase = 0x10000
	}
	p := newParser()
	p.compress = opts.Compress
	if err := p.parse(src); err != nil {
		return nil, err
	}
	return link(p, opts)
}

// MustAssemble is Assemble panicking on error, for compiler-generated
// sources validated upstream and for tests.
func MustAssemble(src string, opts Options) *Image {
	img, err := Assemble(src, opts)
	if err != nil {
		panic(err)
	}
	return img
}

// sectionRank orders sections in the image: text first, then plain
// rodata, then keyed rodata (each on its own pages), then data, bss.
func sectionRank(name string) int {
	switch {
	case name == ".text":
		return 0
	case name == ".rodata":
		return 1
	case strings.HasPrefix(name, ".rodata.key."):
		return 2
	case strings.HasPrefix(name, ".rodata."):
		return 1
	case name == ".data":
		return 3
	case name == ".bss":
		return 4
	}
	return 5
}

func link(p *parser, opts Options) (*Image, error) {
	names := make([]string, len(p.order))
	copy(names, p.order)
	sort.SliceStable(names, func(i, j int) bool {
		return sectionRank(names[i]) < sectionRank(names[j])
	})

	// Iterative layout with branch relaxation: compute every statement
	// start offset, resolve symbols, widen any conditional branch whose
	// target falls outside the ±4 KiB B-type range to the 8-byte
	// inverted-branch + jal form, and repeat until stable. Widening is
	// monotone, so the loop terminates.
	bases := make(map[string]uint64, len(names))
	addrs := make(map[string]uint64, len(p.symbols))
	starts := make(map[string][]uint64, len(names))
	for iter := 0; ; iter++ {
		if iter > 1+len(p.symbols) {
			return nil, fmt.Errorf("asm: branch relaxation did not converge")
		}
		base := opts.TextBase
		sizes := make(map[string]uint64, len(names))
		for _, n := range names {
			s := p.sections[n]
			bases[n] = base
			off := uint64(0)
			st := make([]uint64, len(s.stmts))
			for i := range s.stmts {
				stm := &s.stmts[i]
				if stm.align > 0 {
					pad := (stm.align - off%stm.align) % stm.align
					stm.size = pad
					stm.space = pad
				}
				st[i] = off
				off += stm.size
			}
			starts[n] = st
			sizes[n] = off
			base += pageRound(off)
			if off == 0 {
				base += 4096 // keep even empty sections distinct
			}
		}
		for name, sym := range p.symbols {
			off := sizes[sym.section]
			if sym.stmtIdx < len(starts[sym.section]) {
				off = starts[sym.section][sym.stmtIdx]
			}
			addrs[name] = bases[sym.section] + off
		}
		changed := false
		for _, n := range names {
			s := p.sections[n]
			for i := range s.stmts {
				b := s.stmts[i].branch
				if b == nil || b.long || b.target.Sym == "" {
					continue
				}
				taddr, ok := addrs[b.target.Sym]
				if !ok {
					continue // undefined symbol: reported at encode time
				}
				pc := bases[n] + starts[n][i]
				delta := int64(taddr) + b.target.Off - int64(pc)
				if delta < -4096 || delta > 4094 {
					b.long = true
					s.stmts[i].size = 8
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	enc := &encoder{symbols: addrs}

	img := &Image{Symbols: addrs}
	for _, n := range names {
		s := p.sections[n]
		data := make([]byte, 0, 256)
		va := bases[n]
		for _, st := range s.stmts {
			enc.line = st.line
			pc := va + uint64(len(data))
			switch {
			case st.isC16:
				data = append(data, byte(st.c16), byte(st.c16>>8))
			case st.branch != nil:
				words, err := enc.encodeBranch(st.branch, pc)
				if err != nil {
					return nil, err
				}
				for _, w := range words {
					var buf [4]byte
					binary.LittleEndian.PutUint32(buf[:], w)
					data = append(data, buf[:]...)
				}
			case st.inst != nil:
				words, err := enc.encodeInst(st.inst, pc)
				if err != nil {
					return nil, err
				}
				if uint64(len(words)*4) != st.size {
					return nil, fmt.Errorf("asm: line %d: internal size mismatch for %s (%d != %d)",
						st.line, st.inst.op, len(words)*4, st.size)
				}
				for _, w := range words {
					var buf [4]byte
					binary.LittleEndian.PutUint32(buf[:], w)
					data = append(data, buf[:]...)
				}
			case st.space > 0 || st.align > 0:
				data = append(data, make([]byte, st.size)...)
			case st.data != nil:
				for _, item := range st.data {
					if item.str != nil {
						data = append(data, item.str...)
						continue
					}
					v, err := enc.eval(item.val)
					if err != nil {
						return nil, err
					}
					var buf [8]byte
					binary.LittleEndian.PutUint64(buf[:], uint64(v))
					data = append(data, buf[:item.width]...)
				}
			}
		}
		isBSS := n == ".bss"
		sec := Section{
			Name: n,
			VA:   va,
			Size: uint64(len(data)),
			Perm: s.perm,
			Key:  s.key,
		}
		if !isBSS {
			sec.Data = data
		}
		img.Sections = append(img.Sections, sec)
	}

	entryName := opts.Entry
	if entryName == "" {
		entryName = "_start"
	}
	entry, ok := addrs[entryName]
	if !ok {
		entry, ok = addrs["main"]
		if !ok {
			return nil, fmt.Errorf("asm: entry symbol %q not defined", entryName)
		}
	}
	img.Entry = entry

	if err := img.Validate(); err != nil {
		return nil, err
	}
	return img, nil
}

// encoder is pass 2: turns parsed instructions into machine words.
type encoder struct {
	symbols map[string]uint64
	line    int
}

func (e *encoder) errf(format string, args ...interface{}) error {
	return &SyntaxError{Line: e.line, Msg: fmt.Sprintf(format, args...)}
}

func (e *encoder) eval(x expr) (int64, error) {
	v := x.Off
	if x.Sym != "" {
		addr, ok := e.symbols[x.Sym]
		if !ok {
			return 0, e.errf("undefined symbol %q", x.Sym)
		}
		v += int64(addr)
	}
	if x.Hi {
		return (v + 0x800) &^ 0xfff, nil
	}
	if x.Lo {
		upper := (v + 0x800) &^ 0xfff
		return v - upper, nil
	}
	return v, nil
}

func (e *encoder) reg(s string) (isa.Reg, error) {
	r, ok := isa.RegByName(strings.TrimSpace(s))
	if !ok {
		return 0, e.errf("bad register %q", s)
	}
	return r, nil
}

// parseMem parses "off(reg)" with an optionally symbolic offset.
func (e *encoder) parseMem(s string) (int64, isa.Reg, error) {
	s = strings.TrimSpace(s)
	open := strings.LastIndex(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, e.errf("bad memory operand %q", s)
	}
	r, err := e.reg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		return 0, r, nil
	}
	p := &parser{line: e.line}
	x, err := p.parseExpr(offStr)
	if err != nil {
		return 0, 0, err
	}
	off, err := e.eval(x)
	return off, r, err
}

func mustWord(in isa.Inst) (uint32, error) {
	return isa.Encode(in)
}

// encodeInst encodes one mnemonic (real or pseudo) into machine words.
func (e *encoder) encodeInst(st *instStmt, pc uint64) ([]uint32, error) {
	op := st.op
	ops := st.operands
	need := func(n int) error {
		if len(ops) != n {
			return e.errf("%s needs %d operands, got %d", op, n, len(ops))
		}
		return nil
	}
	one := func(in isa.Inst) ([]uint32, error) {
		w, err := isa.Encode(in)
		if err != nil {
			return nil, e.errf("%v", err)
		}
		return []uint32{w}, nil
	}

	// Pseudo-instructions first.
	switch op {
	case "nop":
		return one(isa.Inst{Op: isa.ADDI})
	case "li":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := e.reg(ops[0])
		if err != nil {
			return nil, err
		}
		p := &parser{line: e.line}
		x, err := p.parseExpr(ops[1])
		if err != nil {
			return nil, err
		}
		v, err := e.eval(x)
		if err != nil {
			return nil, err
		}
		return e.loadImm(rd, v, x.Sym != "")
	case "la":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := e.reg(ops[0])
		if err != nil {
			return nil, err
		}
		p := &parser{line: e.line}
		x, err := p.parseExpr(ops[1])
		if err != nil {
			return nil, err
		}
		v, err := e.eval(x)
		if err != nil {
			return nil, err
		}
		return e.loadImm(rd, v, true)
	case "mv":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err1 := e.reg(ops[0])
		rs, err2 := e.reg(ops[1])
		if err1 != nil || err2 != nil {
			return nil, firstErr(err1, err2)
		}
		return one(isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: rs})
	case "not":
		rd, err1 := e.reg(ops[0])
		rs, err2 := e.reg(ops[1])
		if err1 != nil || err2 != nil {
			return nil, firstErr(err1, err2)
		}
		return one(isa.Inst{Op: isa.XORI, Rd: rd, Rs1: rs, Imm: -1})
	case "neg":
		rd, err1 := e.reg(ops[0])
		rs, err2 := e.reg(ops[1])
		if err1 != nil || err2 != nil {
			return nil, firstErr(err1, err2)
		}
		return one(isa.Inst{Op: isa.SUB, Rd: rd, Rs1: isa.Zero, Rs2: rs})
	case "negw":
		rd, err1 := e.reg(ops[0])
		rs, err2 := e.reg(ops[1])
		if err1 != nil || err2 != nil {
			return nil, firstErr(err1, err2)
		}
		return one(isa.Inst{Op: isa.SUBW, Rd: rd, Rs1: isa.Zero, Rs2: rs})
	case "seqz":
		rd, err1 := e.reg(ops[0])
		rs, err2 := e.reg(ops[1])
		if err1 != nil || err2 != nil {
			return nil, firstErr(err1, err2)
		}
		return one(isa.Inst{Op: isa.SLTIU, Rd: rd, Rs1: rs, Imm: 1})
	case "snez":
		rd, err1 := e.reg(ops[0])
		rs, err2 := e.reg(ops[1])
		if err1 != nil || err2 != nil {
			return nil, firstErr(err1, err2)
		}
		return one(isa.Inst{Op: isa.SLTU, Rd: rd, Rs1: isa.Zero, Rs2: rs})
	case "sext.w":
		rd, err1 := e.reg(ops[0])
		rs, err2 := e.reg(ops[1])
		if err1 != nil || err2 != nil {
			return nil, firstErr(err1, err2)
		}
		return one(isa.Inst{Op: isa.ADDIW, Rd: rd, Rs1: rs})
	case "j":
		if err := need(1); err != nil {
			return nil, err
		}
		return e.jump(isa.Zero, ops[0], pc)
	case "jal":
		if len(ops) == 1 {
			return e.jump(isa.RA, ops[0], pc)
		}
	case "call":
		if err := need(1); err != nil {
			return nil, err
		}
		return e.jump(isa.RA, ops[0], pc)
	case "tail":
		if err := need(1); err != nil {
			return nil, err
		}
		return e.jump(isa.Zero, ops[0], pc)
	case "jr":
		if err := need(1); err != nil {
			return nil, err
		}
		rs, err := e.reg(ops[0])
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.JALR, Rd: isa.Zero, Rs1: rs})
	case "jalr":
		if len(ops) == 1 { // jalr rs
			rs, err := e.reg(ops[0])
			if err != nil {
				return nil, err
			}
			return one(isa.Inst{Op: isa.JALR, Rd: isa.RA, Rs1: rs})
		}
	case "ret":
		return one(isa.Inst{Op: isa.JALR, Rd: isa.Zero, Rs1: isa.RA})
	case "beqz", "bnez", "blez", "bgez", "bltz", "bgtz":
		if err := need(2); err != nil {
			return nil, err
		}
		rs, err := e.reg(ops[0])
		if err != nil {
			return nil, err
		}
		off, err := e.branchOff(ops[1], pc)
		if err != nil {
			return nil, err
		}
		switch op {
		case "beqz":
			return one(isa.Inst{Op: isa.BEQ, Rs1: rs, Rs2: isa.Zero, Imm: off})
		case "bnez":
			return one(isa.Inst{Op: isa.BNE, Rs1: rs, Rs2: isa.Zero, Imm: off})
		case "blez":
			return one(isa.Inst{Op: isa.BGE, Rs1: isa.Zero, Rs2: rs, Imm: off})
		case "bgez":
			return one(isa.Inst{Op: isa.BGE, Rs1: rs, Rs2: isa.Zero, Imm: off})
		case "bltz":
			return one(isa.Inst{Op: isa.BLT, Rs1: rs, Rs2: isa.Zero, Imm: off})
		case "bgtz":
			return one(isa.Inst{Op: isa.BLT, Rs1: isa.Zero, Rs2: rs, Imm: off})
		}
	case "bgt", "ble", "bgtu", "bleu":
		if err := need(3); err != nil {
			return nil, err
		}
		rs1, err1 := e.reg(ops[0])
		rs2, err2 := e.reg(ops[1])
		if err1 != nil || err2 != nil {
			return nil, firstErr(err1, err2)
		}
		off, err := e.branchOff(ops[2], pc)
		if err != nil {
			return nil, err
		}
		swap := map[string]isa.Op{"bgt": isa.BLT, "ble": isa.BGE, "bgtu": isa.BLTU, "bleu": isa.BGEU}
		return one(isa.Inst{Op: swap[op], Rs1: rs2, Rs2: rs1, Imm: off})
	}

	// Real instructions.
	iop, ok := isa.OpByName(op)
	if !ok {
		return nil, e.errf("unknown instruction %q", op)
	}
	switch {
	case iop.IsROLoad():
		// ld.ro rd, (rs1), key
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := e.reg(ops[0])
		if err != nil {
			return nil, err
		}
		addr := strings.TrimSpace(ops[1])
		if !strings.HasPrefix(addr, "(") || !strings.HasSuffix(addr, ")") {
			return nil, e.errf("%s address operand must be (reg), got %q", op, ops[1])
		}
		rs1, err := e.reg(addr[1 : len(addr)-1])
		if err != nil {
			return nil, err
		}
		key, err := strconv.ParseUint(strings.TrimSpace(ops[2]), 0, 16)
		if err != nil || key > isa.MaxKey {
			return nil, e.errf("bad key %q", ops[2])
		}
		return one(isa.Inst{Op: iop, Rd: rd, Rs1: rs1, Key: uint16(key)})

	case iop.IsLoad():
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := e.reg(ops[0])
		if err != nil {
			return nil, err
		}
		off, rs1, err := e.parseMem(ops[1])
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: iop, Rd: rd, Rs1: rs1, Imm: off})

	case iop.IsStore():
		if err := need(2); err != nil {
			return nil, err
		}
		rs2, err := e.reg(ops[0])
		if err != nil {
			return nil, err
		}
		off, rs1, err := e.parseMem(ops[1])
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: iop, Rs1: rs1, Rs2: rs2, Imm: off})

	case iop.IsBranch():
		if err := need(3); err != nil {
			return nil, err
		}
		rs1, err1 := e.reg(ops[0])
		rs2, err2 := e.reg(ops[1])
		if err1 != nil || err2 != nil {
			return nil, firstErr(err1, err2)
		}
		off, err := e.branchOff(ops[2], pc)
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: iop, Rs1: rs1, Rs2: rs2, Imm: off})

	case iop == isa.JAL:
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := e.reg(ops[0])
		if err != nil {
			return nil, err
		}
		return e.jump(rd, ops[1], pc)

	case iop == isa.JALR:
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := e.reg(ops[0])
		if err != nil {
			return nil, err
		}
		off, rs1, err := e.parseMem(ops[1])
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.JALR, Rd: rd, Rs1: rs1, Imm: off})

	case iop == isa.LUI || iop == isa.AUIPC:
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := e.reg(ops[0])
		if err != nil {
			return nil, err
		}
		p := &parser{line: e.line}
		x, err := p.parseExpr(ops[1])
		if err != nil {
			return nil, err
		}
		v, err := e.eval(x)
		if err != nil {
			return nil, err
		}
		// Accept both "lui rd, 0x11" (page number) and %hi() results.
		if !x.Hi && x.Sym == "" && v >= 0 && v < 1<<20 {
			v <<= 12
		}
		return one(isa.Inst{Op: iop, Rd: rd, Imm: v})

	case iop == isa.ECALL || iop == isa.EBREAK || iop == isa.FENCE:
		return one(isa.Inst{Op: iop})

	case iop == isa.CSRRW || iop == isa.CSRRS || iop == isa.CSRRC:
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := e.reg(ops[0])
		if err != nil {
			return nil, err
		}
		csr, err := strconv.ParseUint(strings.TrimSpace(ops[1]), 0, 12)
		if err != nil {
			return nil, e.errf("bad CSR %q", ops[1])
		}
		rs1, err := e.reg(ops[2])
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: iop, Rd: rd, Rs1: rs1, Imm: int64(csr)})

	default: // R-type and I-type ALU
		if len(ops) != 3 {
			return nil, e.errf("%s needs 3 operands", op)
		}
		rd, err := e.reg(ops[0])
		if err != nil {
			return nil, err
		}
		rs1, err := e.reg(ops[1])
		if err != nil {
			return nil, err
		}
		if r2, err2 := e.reg(ops[2]); err2 == nil {
			return one(isa.Inst{Op: iop, Rd: rd, Rs1: rs1, Rs2: r2})
		}
		p := &parser{line: e.line}
		x, err := p.parseExpr(ops[2])
		if err != nil {
			return nil, err
		}
		v, err := e.eval(x)
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: iop, Rd: rd, Rs1: rs1, Imm: v})
	}
}

// materializeImm builds the instruction sequence loading the 64-bit
// constant v into rd, following the GNU assembler's RV64 expansion:
// a 32-bit lui/addiw core for the top bits, then slli+addi steps for
// the remainder. force2 pins the two-instruction lui+addiw form used
// for (32-bit) symbol addresses so pass-1 sizes stay exact.
func materializeImm(rd isa.Reg, v int64, force2 bool) []isa.Inst {
	if !force2 && v >= -2048 && v < 2048 {
		return []isa.Inst{{Op: isa.ADDI, Rd: rd, Rs1: isa.Zero, Imm: v}}
	}
	if v >= -(1<<31) && v < 1<<31 {
		upper := (v + 0x800) &^ 0xfff
		low := v - upper
		// lui materializes a sign-extended 32-bit value; values near
		// the top of the positive range wrap (lui 0x80000 + addiw -1 =
		// 0x7fffffff).
		upper = int64(int32(upper))
		return []isa.Inst{
			{Op: isa.LUI, Rd: rd, Imm: upper},
			// addiw sign-extends the 32-bit result, matching GNU as.
			{Op: isa.ADDIW, Rd: rd, Rs1: rd, Imm: low},
		}
	}
	// 64-bit case: materialize the high part recursively, then shift
	// in 12-bit chunks.
	lo12 := v << 52 >> 52
	hi := (v - lo12) >> 12
	seq := materializeImm(rd, hi, false)
	seq = append(seq, isa.Inst{Op: isa.SLLI, Rd: rd, Rs1: rd, Imm: 12})
	if lo12 != 0 {
		seq = append(seq, isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: rd, Imm: lo12})
	}
	return seq
}

// loadImm emits the li/la sequence.
func (e *encoder) loadImm(rd isa.Reg, v int64, force2 bool) ([]uint32, error) {
	seq := materializeImm(rd, v, force2)
	words := make([]uint32, len(seq))
	for i, in := range seq {
		w, err := isa.Encode(in)
		if err != nil {
			return nil, e.errf("%v", err)
		}
		words[i] = w
	}
	return words, nil
}

// invertBranch returns the opposite condition.
func invertBranch(op isa.Op) isa.Op {
	switch op {
	case isa.BEQ:
		return isa.BNE
	case isa.BNE:
		return isa.BEQ
	case isa.BLT:
		return isa.BGE
	case isa.BGE:
		return isa.BLT
	case isa.BLTU:
		return isa.BGEU
	case isa.BGEU:
		return isa.BLTU
	}
	return op
}

// encodeBranch emits a conditional branch, using the relaxed
// inverted-branch + jal form when the linker marked it long.
func (e *encoder) encodeBranch(b *branchStmt, pc uint64) ([]uint32, error) {
	off, err := e.eval(b.target)
	if err != nil {
		return nil, err
	}
	if b.target.Sym != "" {
		off -= int64(pc)
	}
	if !b.long {
		w, err := isa.Encode(isa.Inst{Op: b.op, Rs1: b.rs1, Rs2: b.rs2, Imm: off})
		if err != nil {
			return nil, e.errf("branch target out of range: %v", err)
		}
		return []uint32{w}, nil
	}
	// Relaxed: "bcc rs1, rs2, target" becomes
	//   b!cc rs1, rs2, +8
	//   jal  zero, target
	w1, err := isa.Encode(isa.Inst{Op: invertBranch(b.op), Rs1: b.rs1, Rs2: b.rs2, Imm: 8})
	if err != nil {
		return nil, e.errf("%v", err)
	}
	w2, err := isa.Encode(isa.Inst{Op: isa.JAL, Rd: isa.Zero, Imm: off - 4})
	if err != nil {
		return nil, e.errf("relaxed branch target out of jal range: %v", err)
	}
	return []uint32{w1, w2}, nil
}

func (e *encoder) branchOff(target string, pc uint64) (int64, error) {
	p := &parser{line: e.line}
	x, err := p.parseExpr(target)
	if err != nil {
		return 0, err
	}
	v, err := e.eval(x)
	if err != nil {
		return 0, err
	}
	if x.Sym == "" {
		return v, nil // numeric: already an offset
	}
	return v - int64(pc), nil
}

func (e *encoder) jump(rd isa.Reg, target string, pc uint64) ([]uint32, error) {
	off, err := e.branchOff(target, pc)
	if err != nil {
		return nil, err
	}
	w, err := isa.Encode(isa.Inst{Op: isa.JAL, Rd: rd, Imm: off})
	if err != nil {
		return nil, e.errf("jump target out of range: %v", err)
	}
	return []uint32{w}, nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
