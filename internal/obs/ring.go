package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Ring is a bounded trace recorder: a circular buffer of the most
// recent events. Recording is allocation-free after construction, so
// the ring can stay attached for whole benchmark runs and still hold
// the window leading up to a fault — the forensic use case of the
// ROLoad audit.
type Ring struct {
	buf     []Event
	next    int
	wrapped bool
	dropped uint64
}

// DefaultRingSize holds roughly the last 64k events (~a few hundred
// thousand simulated cycles), enough for a Perfetto-loadable window
// around any point of interest.
const DefaultRingSize = 1 << 16

// NewRing builds a recorder holding the last n events (n <= 0 selects
// DefaultRingSize).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = DefaultRingSize
	}
	return &Ring{buf: make([]Event, n)}
}

// Event implements Probe.
func (r *Ring) Event(e Event) {
	if r.wrapped {
		r.dropped++
	}
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
}

// Dropped returns how many events were overwritten by newer ones.
func (r *Ring) Dropped() uint64 { return r.dropped }

// Events returns the recorded events, oldest first.
func (r *Ring) Events() []Event {
	if !r.wrapped {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Reset discards all recorded events.
func (r *Ring) Reset() {
	r.next = 0
	r.wrapped = false
	r.dropped = 0
}

// chromeEvent is one entry of the Chrome trace-event format ("JSON
// Array Format" with the traceEvents envelope), loadable by Perfetto
// and chrome://tracing. Timestamps are microseconds by convention; we
// map one simulated cycle to one microsecond, so the UI's time axis
// reads directly in cycles.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    uint64         `json:"ts"`
	Dur   *uint64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData"`
}

// Trace-event thread ids: functions (call-stack spans), instructions,
// and machine events each get their own track.
const (
	tidFunctions    = 0
	tidInstructions = 1
	tidMachine      = 2
)

// WriteChromeTrace exports the recorded events as Chrome trace-event
// JSON. Retired instructions become complete ("X") slices whose
// duration is the cycle cost; call/return transitions in the retire
// stream are reconstructed into function begin/end ("B"/"E") spans,
// symbolized against syms; traps, faults, ROLoad checks and syscalls
// become instant ("i") events. syms may be nil (raw addresses).
func (r *Ring) WriteChromeTrace(w io.Writer, syms *SymTable) error {
	events := r.Events()
	trace := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(events)+64),
		DisplayTimeUnit: "ms",
		OtherData: map[string]string{
			"tool":      "roload-run",
			"time_unit": "1 ts = 1 simulated cycle",
		},
	}
	var stack []string // open function spans, for B/E balance
	push := func(name string, ts uint64) {
		stack = append(stack, name)
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: name, Cat: "function", Phase: "B", TS: ts,
			PID: 0, TID: tidFunctions,
		})
	}
	pop := func(ts uint64) {
		if len(stack) == 0 {
			return
		}
		name := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: name, Cat: "function", Phase: "E", TS: ts,
			PID: 0, TID: tidFunctions,
		})
	}
	instant := func(name, cat string, ts uint64, args map[string]any) {
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: name, Cat: cat, Phase: "i", TS: ts,
			PID: 0, TID: tidMachine, Scope: "t", Args: args,
		})
	}

	var pendingCall bool
	for _, e := range events {
		switch e.Kind {
		case KindRetire:
			ts := e.Cycle - e.Cost // slice starts when issue began
			fn := syms.Name(e.PC)
			if len(stack) == 0 {
				push(fn, ts)
			} else if pendingCall {
				push(fn, ts)
			} else if stack[len(stack)-1] != fn {
				// Tail call or fall-through into another function:
				// replace the leaf span.
				pop(ts)
				push(fn, ts)
			}
			pendingCall = e.IsCall()
			if e.IsRet() {
				pop(e.Cycle)
			}
			dur := e.Cost
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: e.Op.String(), Cat: "retire", Phase: "X",
				TS: ts, Dur: &dur, PID: 0, TID: tidInstructions,
				Args: map[string]any{"pc": hex64(e.PC)},
			})
		case KindTrap:
			instant("trap", "trap", e.Cycle, map[string]any{
				"pc": hex64(e.PC), "kind": e.Num,
			})
		case KindROLoadCheck:
			name := "roload-check-pass"
			if !e.Hit {
				name = "roload-check-fail"
			}
			instant(name, "roload", e.Cycle, map[string]any{
				"va": hex64(e.VA), "want_key": e.WantKey, "got_key": e.GotKey,
			})
		case KindSyscall:
			instant(fmt.Sprintf("syscall(%d)", e.Num), "kernel", e.Cycle,
				map[string]any{"pc": hex64(e.PC)})
		case KindPageFault:
			instant("page-fault", "kernel", e.Cycle, map[string]any{
				"pc": hex64(e.PC), "va": hex64(e.VA),
			})
		case KindSignal:
			instant(fmt.Sprintf("signal(%d)", e.Num), "kernel", e.Cycle, nil)
		case KindTLB, KindCache:
			// Hit/miss events are summarized by the metrics snapshot;
			// exporting each one would dwarf the interesting tracks.
			if !e.Hit {
				cat := "tlb-miss"
				if e.Kind == KindCache {
					cat = "cache-miss"
				}
				instant(e.Side.String()+"-"+cat, "mem", e.Cycle, nil)
			}
		case KindWalk:
			instant("page-walk", "mem", e.Cycle,
				map[string]any{"va": hex64(e.VA), "mem_ops": e.Num})
		}
	}
	// Close any still-open function spans at the last timestamp so the
	// JSON is well-formed for strict importers.
	var lastTS uint64
	if n := len(events); n > 0 {
		lastTS = events[n-1].Cycle
	}
	for len(stack) > 0 {
		pop(lastTS)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&trace)
}
