package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Profiler attributes cycles and retires to program counters and, via
// call-stack reconstruction, to symbolized functions. It produces a
// pprof-style flat/cumulative "top" report and folded-stack output
// consumable by flamegraph tooling (e.g. inferno or flamegraph.pl).
type Profiler struct {
	syms *SymTable

	pcCycles  map[uint64]uint64
	pcRetires map[uint64]uint64

	// folded maps "frame0;frame1;...;leaf" to the cycles spent with
	// exactly that stack live.
	folded map[string]uint64

	stack       []string
	stackKey    string
	pendingCall bool

	totalCycles  uint64
	totalRetires uint64
}

// NewProfiler builds a profiler symbolizing against syms (which may be
// nil; attribution then falls back to raw addresses).
func NewProfiler(syms *SymTable) *Profiler {
	return &Profiler{
		syms:      syms,
		pcCycles:  make(map[uint64]uint64),
		pcRetires: make(map[uint64]uint64),
		folded:    make(map[string]uint64),
	}
}

// Event implements Probe. Only retire events matter; everything else
// is ignored so a Profiler can share a Multi with other probes.
func (p *Profiler) Event(e Event) {
	if e.Kind != KindRetire {
		return
	}
	p.pcCycles[e.PC] += e.Cost
	p.pcRetires[e.PC]++
	p.totalCycles += e.Cost
	p.totalRetires++

	fn := p.syms.Name(e.PC)
	switch {
	case len(p.stack) == 0 || p.pendingCall:
		p.push(fn)
	case p.stack[len(p.stack)-1] != fn:
		// Tail call / fall-through: the leaf frame changed without a
		// linking jump; swap it rather than growing the stack.
		p.stack = p.stack[:len(p.stack)-1]
		p.push(fn)
	}
	p.pendingCall = e.IsCall()
	p.folded[p.stackKey] += e.Cost
	if e.IsRet() && len(p.stack) > 1 {
		p.stack = p.stack[:len(p.stack)-1]
		p.rekey()
	}
}

func (p *Profiler) push(fn string) {
	p.stack = append(p.stack, fn)
	p.rekey()
}

func (p *Profiler) rekey() {
	p.stackKey = strings.Join(p.stack, ";")
}

// TotalCycles returns the cycles attributed so far.
func (p *Profiler) TotalCycles() uint64 { return p.totalCycles }

// FuncStat is one row of the top report.
type FuncStat struct {
	Name string
	// Flat is the cycles spent with this function as the innermost
	// frame; Cum additionally counts cycles of its callees.
	Flat, Cum uint64
	// Retires is the instruction count attributed to the function.
	Retires uint64
}

// TopFuncs aggregates the profile by function, sorted by flat cycles
// (descending), resolving cumulative cycles from the folded stacks.
func (p *Profiler) TopFuncs() []FuncStat {
	flat := make(map[string]uint64)
	cum := make(map[string]uint64)
	retires := make(map[string]uint64)
	for pc, cyc := range p.pcCycles {
		fn := p.syms.Name(pc)
		flat[fn] += cyc
		retires[fn] += p.pcRetires[pc]
	}
	for key, cyc := range p.folded {
		seen := map[string]bool{} // count recursive frames once
		for _, frame := range strings.Split(key, ";") {
			if !seen[frame] {
				seen[frame] = true
				cum[frame] += cyc
			}
		}
	}
	out := make([]FuncStat, 0, len(flat))
	for fn, f := range flat {
		out = append(out, FuncStat{Name: fn, Flat: f, Cum: cum[fn], Retires: retires[fn]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flat != out[j].Flat {
			return out[i].Flat > out[j].Flat
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// WriteTop renders the flat/cumulative report, pprof top style. n
// limits the row count (n <= 0 prints everything).
func (p *Profiler) WriteTop(w io.Writer, n int) error {
	rows := p.TopFuncs()
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	total := p.totalCycles
	if total == 0 {
		total = 1 // avoid 0/0 in an empty profile
	}
	if _, err := fmt.Fprintf(w, "cycles profile: %d cycles, %d retired instructions\n",
		p.totalCycles, p.totalRetires); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%12s %7s %12s %7s  %-8s %s\n",
		"flat", "flat%", "cum", "cum%", "retires", "function"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%12d %6.2f%% %12d %6.2f%%  %-8d %s\n",
			r.Flat, 100*float64(r.Flat)/float64(total),
			r.Cum, 100*float64(r.Cum)/float64(total),
			r.Retires, r.Name); err != nil {
			return err
		}
	}
	return nil
}

// WriteFolded emits the folded-stack lines ("a;b;c 123"), the input
// format of flamegraph generators. Lines are sorted for determinism.
func (p *Profiler) WriteFolded(w io.Writer) error {
	keys := make([]string, 0, len(p.folded))
	for k := range p.folded {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, p.folded[k]); err != nil {
			return err
		}
	}
	return nil
}

// PCStat is one program counter's attribution, for instruction-level
// drill-down.
type PCStat struct {
	PC      uint64
	Cycles  uint64
	Retires uint64
	Func    string
	Off     uint64
}

// HottestPCs returns up to n program counters by attributed cycles.
func (p *Profiler) HottestPCs(n int) []PCStat {
	out := make([]PCStat, 0, len(p.pcCycles))
	for pc, cyc := range p.pcCycles {
		st := PCStat{PC: pc, Cycles: cyc, Retires: p.pcRetires[pc]}
		if name, off, ok := p.syms.Locate(pc); ok {
			st.Func, st.Off = name, off
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].PC < out[j].PC
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
