package obs

import "roload/internal/schema"

// The metrics registry moved to internal/schema in the API redesign so
// every versioned JSON document lives in one package; the historical
// obs names remain as aliases because the producers (cpu, mmu, cache,
// kernel) were written against them. New code should prefer the
// schema package directly.

// CPUCounters mirrors cpu.Stats.
type CPUCounters = schema.CPUCounters

// MMUCounters mirrors mmu.Stats.
type MMUCounters = schema.MMUCounters

// CacheCounters mirrors cache.Stats plus the derived miss rate.
type CacheCounters = schema.CacheCounters

// Snapshot is the unified machine-readable result of one execution.
// See schema.Snapshot.
type Snapshot = schema.Snapshot

// SnapshotSchema identifies the snapshot document format.
const SnapshotSchema = schema.MetricsV1
