package obs

import (
	"encoding/json"
	"io"
)

// The metrics registry: one snapshot type unifying the counters that
// internal/cpu, internal/mmu, internal/cache and internal/kernel each
// keep separately, serialized to a single stable JSON document. The
// structs mirror the source Stats types field-for-field but live here
// (dependency-free) so every layer can produce or consume them without
// import cycles.

// CPUCounters mirrors cpu.Stats.
type CPUCounters struct {
	Instructions uint64 `json:"instructions"`
	Loads        uint64 `json:"loads"`
	Stores       uint64 `json:"stores"`
	ROLoads      uint64 `json:"roloads"`
	Branches     uint64 `json:"branches"`
	TakenBranch  uint64 `json:"taken_branches"`
	Jumps        uint64 `json:"jumps"`
	MulDiv       uint64 `json:"muldiv"`
	Traps        uint64 `json:"traps"`
}

// MMUCounters mirrors mmu.Stats.
type MMUCounters struct {
	TLBHits    uint64 `json:"tlb_hits"`
	TLBMisses  uint64 `json:"tlb_misses"`
	PageWalks  uint64 `json:"page_walks"`
	WalkMemOps uint64 `json:"walk_mem_ops"`
	Faults     uint64 `json:"faults"`
}

// CacheCounters mirrors cache.Stats plus the derived miss rate.
type CacheCounters struct {
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	MissRate float64 `json:"miss_rate"`
}

// Snapshot is the unified machine-readable result of one execution:
// outcome, cycle/instruction totals, and per-component counters.
// Serialized by roload-run -metrics and embedded per-experiment by
// roload-bench -json.
type Snapshot struct {
	Schema string `json:"schema"` // SnapshotSchema
	System string `json:"system"` // which of the paper's three systems

	Exited          bool   `json:"exited"`
	ExitCode        int    `json:"exit_code"`
	Signal          string `json:"signal,omitempty"`
	ROLoadViolation bool   `json:"roload_violation"`
	FaultPC         uint64 `json:"fault_pc,omitempty"`
	FaultVA         uint64 `json:"fault_va,omitempty"`

	Cycles     uint64 `json:"cycles"`
	Instret    uint64 `json:"instret"`
	MemPeakKiB uint64 `json:"mem_peak_kib"`
	Syscalls   uint64 `json:"syscalls"`

	CPU    CPUCounters   `json:"cpu"`
	ITLB   MMUCounters   `json:"itlb"`
	DTLB   MMUCounters   `json:"dtlb"`
	ICache CacheCounters `json:"icache"`
	DCache CacheCounters `json:"dcache"`

	Audit []AuditRecord `json:"roload_audit,omitempty"`
}

// SnapshotSchema identifies the snapshot document format.
const SnapshotSchema = "roload-metrics/v1"

// WriteJSON serializes the snapshot, indented for humans, stable for
// machines.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	s.Schema = SnapshotSchema
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
