// Package obs is the execution-observability layer of the ROLoad
// prototype: typed event probes, a cycle profiler, a bounded trace
// recorder with a Chrome trace-event exporter, a ROLoad fault audit
// log, and a unified machine-readable metrics snapshot.
//
// The layer is strictly zero-cost when disabled: every emission site
// in internal/cpu, internal/mmu, internal/cache and internal/kernel is
// guarded by a nil-probe check, events are plain value structs, and no
// probe ever influences the simulated cycle model. Attaching a probe
// observes the machine; it never perturbs it (see the cycle-parity
// test in internal/cpu).
//
// The design follows the paper's evaluation needs: Tables I-III and
// Figures 3-5 attribute cycles, faults and hardware events to specific
// instrumentation sequences, so the probes carry exactly those
// quantities — per-instruction cycle costs, TLB/cache hit/miss events,
// page-table walks, and the pass/fail result of every ROLoad key
// check.
package obs

import "roload/internal/isa"

// Kind enumerates the typed events emitted by the simulated machine.
type Kind uint8

const (
	// KindRetire is one retired instruction. PC/Op/Size identify it;
	// Cost is the cycles charged for it (base + memory penalties);
	// Cycle is the core cycle counter after retirement.
	KindRetire Kind = iota
	// KindTrap is a suspension of user execution (page fault, ecall,
	// illegal instruction, ...). Num holds the cpu.TrapKind value.
	KindTrap
	// KindTLB is one TLB lookup. Side says which TLB; Hit its result.
	KindTLB
	// KindWalk is one page-table walk. Num is the number of physical
	// memory accesses the walker performed; Hit is true when the walk
	// found a valid leaf.
	KindWalk
	// KindCache is one L1 access. Side says which cache; Hit its result.
	KindCache
	// KindROLoadCheck is the MMU's parallel key check on a ROLoadRead
	// access. Hit is the pass/fail outcome; WantKey/GotKey the operands.
	KindROLoadCheck
	// KindSyscall is a kernel syscall dispatch. Num is the syscall
	// number, PC the ecall site.
	KindSyscall
	// KindPageFault is the kernel-visible page fault. VA is the fault
	// address, PC the faulting instruction.
	KindPageFault
	// KindSignal is a fatal signal delivery. Num is the signal number.
	KindSignal
)

func (k Kind) String() string {
	switch k {
	case KindRetire:
		return "retire"
	case KindTrap:
		return "trap"
	case KindTLB:
		return "tlb"
	case KindWalk:
		return "walk"
	case KindCache:
		return "cache"
	case KindROLoadCheck:
		return "roload-check"
	case KindSyscall:
		return "syscall"
	case KindPageFault:
		return "page-fault"
	case KindSignal:
		return "signal"
	}
	return "event"
}

// Side distinguishes the instruction- and data-side halves of the
// memory hierarchy in KindTLB and KindCache events.
type Side uint8

const (
	SideI Side = iota
	SideD
)

func (s Side) String() string {
	if s == SideI {
		return "I"
	}
	return "D"
}

// Flag bits carried by KindRetire events. The emitter classifies
// control transfers so stack-reconstructing probes (profiler, trace
// exporter) need no ISA knowledge of their own.
const (
	// FlagCall marks a linking jump (jal/jalr with rd=ra): the next
	// retired instruction begins a callee frame.
	FlagCall uint8 = 1 << iota
	// FlagRet marks a function return (jalr zero, 0(ra)).
	FlagRet
)

// Event is one observation. It is a plain value: emitting an event
// never allocates, so a probe can be attached to the hottest paths of
// the core. Field meaning depends on Kind (see the Kind constants).
type Event struct {
	Kind    Kind
	Side    Side
	Hit     bool
	Size    uint8
	Flags   uint8
	Op      isa.Op
	Cycle   uint64 // core cycle counter at emission
	PC      uint64
	VA      uint64
	Cost    uint64 // KindRetire: cycles charged to this instruction
	Num     uint64 // trap kind / syscall number / signal / walk mem ops
	WantKey uint16
	GotKey  uint16
}

// IsCall reports whether this retire event is a linking jump.
func (e Event) IsCall() bool { return e.Flags&FlagCall != 0 }

// IsRet reports whether this retire event is a function return.
func (e Event) IsRet() bool { return e.Flags&FlagRet != 0 }

// Probe receives events. Implementations must not retain pointers into
// the machine; the event value carries everything they may keep.
//
// A nil Probe means observability is off; emission sites guard with a
// nil check so the disabled cost is one predictable branch.
type Probe interface {
	Event(e Event)
}

// Multi fans one event stream out to several probes.
type Multi []Probe

// Event implements Probe.
func (m Multi) Event(e Event) {
	for _, p := range m {
		if p != nil {
			p.Event(e)
		}
	}
}

// Combine returns the simplest probe equivalent to attaching every
// non-nil argument: nil for none, the probe itself for one, a Multi
// otherwise.
func Combine(probes ...Probe) Probe {
	var live Multi
	for _, p := range probes {
		if p != nil {
			live = append(live, p)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

// Counters is a trivial probe counting events by kind; tests and the
// metrics snapshot use it to cross-check emission sites.
type Counters struct {
	ByKind [KindSignal + 1]uint64
}

// Event implements Probe.
func (c *Counters) Event(e Event) {
	if int(e.Kind) < len(c.ByKind) {
		c.ByKind[e.Kind]++
	}
}

// Total returns the number of observed events.
func (c *Counters) Total() uint64 {
	var n uint64
	for _, v := range c.ByKind {
		n += v
	}
	return n
}
