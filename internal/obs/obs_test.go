package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"roload/internal/isa"
)

func TestSymTableLocate(t *testing.T) {
	syms := map[string]uint64{
		"main":   0x1000,
		"helper": 0x1040,
		"leaf":   0x10a0,
		"rodata": 0x5000, // outside the code range; must be excluded
	}
	st := NewSymTable(syms, 0x1000, 0x2000)
	if st.Len() != 3 {
		t.Fatalf("Len = %d, want 3", st.Len())
	}
	cases := []struct {
		pc   uint64
		name string
		off  uint64
		ok   bool
	}{
		{0x1000, "main", 0, true},
		{0x103c, "main", 0x3c, true},
		{0x1040, "helper", 0, true},
		{0x10fc, "leaf", 0x5c, true},
		{0x5000, "leaf", 0x3f60, true}, // rodata excluded; nearest code sym
		{0x0fff, "", 0, false},
	}
	for _, c := range cases {
		name, off, ok := st.Locate(c.pc)
		if name != c.name || off != c.off || ok != c.ok {
			t.Errorf("Locate(%#x) = %q,%#x,%v; want %q,%#x,%v",
				c.pc, name, off, ok, c.name, c.off, c.ok)
		}
	}
	if got := st.Name(0x0f00); got != "0xf00" {
		t.Errorf("Name(unsymbolized) = %q", got)
	}
	var nilTable *SymTable
	if _, _, ok := nilTable.Locate(0x1000); ok {
		t.Error("nil table located a symbol")
	}
	if got := nilTable.Name(0x10); got != "0x10" {
		t.Errorf("nil table Name = %q", got)
	}
}

func TestRingWrap(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 7; i++ {
		r.Event(Event{Kind: KindRetire, PC: uint64(i)})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(3 + i); e.PC != want {
			t.Errorf("event %d: pc = %d, want %d", i, e.PC, want)
		}
	}
	if r.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", r.Dropped())
	}
	r.Reset()
	if len(r.Events()) != 0 || r.Dropped() != 0 {
		t.Error("reset did not clear the ring")
	}
}

func TestCombine(t *testing.T) {
	var a, b Counters
	if Combine(nil, nil) != nil {
		t.Error("Combine(nil, nil) != nil")
	}
	if Combine(&a) != &a {
		t.Error("Combine of one probe should return it unchanged")
	}
	p := Combine(&a, nil, &b)
	p.Event(Event{Kind: KindTrap})
	if a.ByKind[KindTrap] != 1 || b.ByKind[KindTrap] != 1 {
		t.Error("Multi did not fan out")
	}
	if a.Total() != 1 {
		t.Errorf("Total = %d", a.Total())
	}
}

// retire builds a retire event n cycles long at pc.
func retire(pc, cycle, cost uint64, flags uint8) Event {
	return Event{Kind: KindRetire, PC: pc, Op: isa.ADDI, Size: 4,
		Flags: flags, Cycle: cycle, Cost: cost}
}

func TestProfilerFoldedAndTop(t *testing.T) {
	st := NewSymTable(map[string]uint64{"main": 0x100, "callee": 0x200}, 0, ^uint64(0))
	p := NewProfiler(st)
	// main: 2 instructions, the second a call; callee: 2 instructions,
	// the second a return; then 1 more in main.
	p.Event(retire(0x100, 1, 1, 0))
	p.Event(retire(0x104, 4, 3, FlagCall))
	p.Event(retire(0x200, 5, 1, 0))
	p.Event(retire(0x204, 7, 2, FlagRet))
	p.Event(retire(0x108, 8, 1, 0))

	if p.TotalCycles() != 8 {
		t.Errorf("TotalCycles = %d, want 8", p.TotalCycles())
	}
	var folded bytes.Buffer
	if err := p.WriteFolded(&folded); err != nil {
		t.Fatal(err)
	}
	want := "main 5\nmain;callee 3\n"
	if folded.String() != want {
		t.Errorf("folded:\n%s\nwant:\n%s", folded.String(), want)
	}

	rows := p.TopFuncs()
	if len(rows) != 2 {
		t.Fatalf("TopFuncs rows = %d, want 2", len(rows))
	}
	if rows[0].Name != "main" || rows[0].Flat != 5 || rows[0].Cum != 8 {
		t.Errorf("main row = %+v", rows[0])
	}
	if rows[1].Name != "callee" || rows[1].Flat != 3 || rows[1].Cum != 3 {
		t.Errorf("callee row = %+v", rows[1])
	}

	var top bytes.Buffer
	if err := p.WriteTop(&top, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(top.String(), "main") || !strings.Contains(top.String(), "callee") {
		t.Errorf("top report:\n%s", top.String())
	}

	pcs := p.HottestPCs(1)
	if len(pcs) != 1 || pcs[0].PC != 0x104 || pcs[0].Cycles != 3 {
		t.Errorf("HottestPCs = %+v", pcs)
	}
}

func TestProfilerTailCallSwapsLeaf(t *testing.T) {
	st := NewSymTable(map[string]uint64{"a": 0x100, "b": 0x200}, 0, ^uint64(0))
	p := NewProfiler(st)
	p.Event(retire(0x100, 1, 1, 0)) // in a
	p.Event(retire(0x200, 2, 1, 0)) // jumped (not called) into b
	var folded bytes.Buffer
	if err := p.WriteFolded(&folded); err != nil {
		t.Fatal(err)
	}
	if want := "a 1\nb 1\n"; folded.String() != want {
		t.Errorf("folded = %q, want %q", folded.String(), want)
	}
}

// TestChromeTraceSchema checks the exporter against the trace-event
// format contract: a traceEvents array whose entries all carry name,
// ph, ts, pid and tid, with phases limited to the ones we emit and
// B/E spans balanced per tid.
func TestChromeTraceSchema(t *testing.T) {
	st := NewSymTable(map[string]uint64{"main": 0x100, "f": 0x200}, 0, ^uint64(0))
	r := NewRing(64)
	r.Event(retire(0x100, 1, 1, 0))
	r.Event(Event{Kind: KindTLB, Side: SideD, Hit: false, VA: 0x8000, Cycle: 1})
	r.Event(Event{Kind: KindWalk, Side: SideD, Hit: true, VA: 0x8000, Num: 3, Cycle: 1})
	r.Event(Event{Kind: KindCache, Side: SideD, Hit: false, VA: 0x8000, Cycle: 1})
	r.Event(retire(0x104, 38, 37, FlagCall))
	r.Event(Event{Kind: KindROLoadCheck, Hit: true, VA: 0x9000, WantKey: 7, GotKey: 7, Cycle: 39})
	r.Event(retire(0x200, 40, 2, FlagRet))
	r.Event(Event{Kind: KindSyscall, PC: 0x108, Num: 93, Cycle: 45})
	r.Event(Event{Kind: KindSignal, Num: 11, Cycle: 50})

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf, st); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		DisplayUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	open := map[any][]string{}
	for i, ev := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing %q: %v", i, key, ev)
			}
		}
		ph := ev["ph"].(string)
		switch ph {
		case "X":
			if _, ok := ev["dur"]; !ok {
				t.Errorf("X event without dur: %v", ev)
			}
		case "B":
			open[ev["tid"]] = append(open[ev["tid"]], ev["name"].(string))
		case "E":
			stack := open[ev["tid"]]
			if len(stack) == 0 {
				t.Fatalf("E without matching B: %v", ev)
			}
			if stack[len(stack)-1] != ev["name"].(string) {
				t.Errorf("unbalanced span: close %q, open %q",
					ev["name"], stack[len(stack)-1])
			}
			open[ev["tid"]] = stack[:len(stack)-1]
		case "i":
			// instant events need a scope
			if ev["s"] != "t" {
				t.Errorf("instant event without thread scope: %v", ev)
			}
		default:
			t.Errorf("unexpected phase %q", ph)
		}
	}
	for tid, stack := range open {
		if len(stack) != 0 {
			t.Errorf("tid %v left %d spans open", tid, len(stack))
		}
	}
	// The function track must symbolize both frames.
	s := buf.String()
	for _, name := range []string{"main", "f", "roload-check-pass", "syscall(93)", "signal(11)"} {
		if !strings.Contains(s, name) {
			t.Errorf("trace missing %q", name)
		}
	}
}

func TestAuditText(t *testing.T) {
	var a Audit
	a.Record(AuditRecord{
		Cycle: 123, Instret: 45, PC: 0x10428, Func: "victim",
		VA: 0x20000, WantKey: 111, GotKey: 0, NotReadOnly: false,
		Signal: "SIGSEGV",
	})
	var buf bytes.Buffer
	if err := a.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	for _, frag := range []string{
		"ROLOAD-AUDIT", "pc=0x10428", "(victim)", "fault va=0x20000",
		"want key=111", "got key=0", "SIGSEGV",
	} {
		if !strings.Contains(line, frag) {
			t.Errorf("audit line missing %q:\n%s", frag, line)
		}
	}
	if a.Len() != 1 {
		t.Errorf("Len = %d", a.Len())
	}
	var empty *Audit
	if empty.Len() != 0 || empty.Records() != nil {
		t.Error("nil audit must be empty")
	}
}

func TestSnapshotJSON(t *testing.T) {
	s := &Snapshot{
		System: "processor+kernel-modified",
		Exited: true, Cycles: 1000, Instret: 800,
		CPU:    CPUCounters{Instructions: 800, ROLoads: 5},
		DCache: CacheCounters{Hits: 90, Misses: 10, MissRate: 0.1},
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if back["schema"] != SnapshotSchema {
		t.Errorf("schema = %v", back["schema"])
	}
	for _, key := range []string{"system", "cycles", "instret", "cpu", "itlb", "dtlb", "icache", "dcache"} {
		if _, ok := back[key]; !ok {
			t.Errorf("snapshot missing %q", key)
		}
	}
	if back["cpu"].(map[string]any)["roloads"] != float64(5) {
		t.Error("cpu.roloads not serialized")
	}
}

func TestKindAndSideStrings(t *testing.T) {
	kinds := []Kind{KindRetire, KindTrap, KindTLB, KindWalk, KindCache,
		KindROLoadCheck, KindSyscall, KindPageFault, KindSignal}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || s == "event" || seen[s] {
			t.Errorf("kind %d has bad or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if SideI.String() != "I" || SideD.String() != "D" {
		t.Error("side names")
	}
}
