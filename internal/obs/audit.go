package obs

import (
	"fmt"
	"io"

	"roload/internal/schema"
)

// AuditRecord is the forensic record of one ROLoad key-check
// violation, captured by the kernel's fault path (paper Section III-B:
// the kernel distinguishes ROLoad faults from benign page faults).
// The type itself lives in internal/schema (it is part of the
// roload-metrics/v1 document); the alias keeps the producers' spelling.
type AuditRecord = schema.AuditRecord

// Audit collects ROLoad violations. The kernel appends one record per
// detected violation; tools dump the log when a process dies with
// SIGSEGV so blocked attacks leave a machine-checkable trail rather
// than a bare exit status.
type Audit struct {
	recs []AuditRecord
	sink func(AuditRecord)
}

// Record appends one violation and forwards it to the sink, if any.
func (a *Audit) Record(r AuditRecord) {
	a.recs = append(a.recs, r)
	if a.sink != nil {
		a.sink(r)
	}
}

// SetSink registers a callback invoked on every Record — the live-audit
// tap for streamed telemetry. Records are delivered in append order
// from the recording goroutine; the sink must not block. Pass nil to
// detach; a log with no sink behaves exactly as before.
func (a *Audit) SetSink(fn func(AuditRecord)) { a.sink = fn }

// Records returns the violations recorded so far.
func (a *Audit) Records() []AuditRecord {
	if a == nil {
		return nil
	}
	return a.recs
}

// Len returns the number of recorded violations.
func (a *Audit) Len() int {
	if a == nil {
		return 0
	}
	return len(a.recs)
}

// WriteText dumps the log, one line per record.
func (a *Audit) WriteText(w io.Writer) error {
	for _, r := range a.Records() {
		if _, err := fmt.Fprintln(w, r.String()); err != nil {
			return err
		}
	}
	return nil
}
