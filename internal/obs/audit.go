package obs

import (
	"fmt"
	"io"
)

// AuditRecord is the forensic record of one ROLoad key-check
// violation, captured by the kernel's fault path (paper Section III-B:
// the kernel distinguishes ROLoad faults from benign page faults).
// It turns an attack's SIGSEGV into evidence: which instruction, which
// address, which key it demanded and which key the page carried.
type AuditRecord struct {
	Cycle   uint64 `json:"cycle"`
	Instret uint64 `json:"instret"`
	PC      uint64 `json:"pc"`
	Func    string `json:"func,omitempty"` // symbolized function at PC
	VA      uint64 `json:"fault_va"`
	WantKey uint16 `json:"want_key"`
	GotKey  uint16 `json:"got_key"`
	// NotReadOnly: the page failed the read-only half of the check
	// (writable or unreadable); Unmapped: no valid leaf PTE at VA.
	NotReadOnly bool   `json:"not_read_only"`
	Unmapped    bool   `json:"unmapped"`
	Signal      string `json:"signal,omitempty"` // delivered signal
}

// String renders one audit line.
func (r AuditRecord) String() string {
	where := fmt.Sprintf("pc=%#x", r.PC)
	if r.Func != "" {
		where = fmt.Sprintf("pc=%#x (%s)", r.PC, r.Func)
	}
	detail := fmt.Sprintf("want key=%d got key=%d", r.WantKey, r.GotKey)
	switch {
	case r.Unmapped:
		detail += ", page unmapped"
	case r.NotReadOnly:
		detail += ", page not read-only"
	}
	sig := ""
	if r.Signal != "" {
		sig = " -> " + r.Signal
	}
	return fmt.Sprintf("ROLOAD-AUDIT %s fault va=%#x %s [cycle=%d instret=%d]%s",
		where, r.VA, detail, r.Cycle, r.Instret, sig)
}

// Audit collects ROLoad violations. The kernel appends one record per
// detected violation; tools dump the log when a process dies with
// SIGSEGV so blocked attacks leave a machine-checkable trail rather
// than a bare exit status.
type Audit struct {
	recs []AuditRecord
}

// Record appends one violation.
func (a *Audit) Record(r AuditRecord) { a.recs = append(a.recs, r) }

// Records returns the violations recorded so far.
func (a *Audit) Records() []AuditRecord {
	if a == nil {
		return nil
	}
	return a.recs
}

// Len returns the number of recorded violations.
func (a *Audit) Len() int {
	if a == nil {
		return 0
	}
	return len(a.recs)
}

// WriteText dumps the log, one line per record.
func (a *Audit) WriteText(w io.Writer) error {
	for _, r := range a.Records() {
		if _, err := fmt.Fprintln(w, r.String()); err != nil {
			return err
		}
	}
	return nil
}
