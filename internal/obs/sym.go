package obs

import "sort"

// SymTable maps program counters back to the symbols of a loaded
// image. It answers "which function contains this PC" by
// nearest-preceding-symbol lookup, the same convention binutils'
// addr2line uses for stripped-down symbol tables.
type SymTable struct {
	addrs []uint64
	names []string
}

// NewSymTable builds a table from a symbol map (asm.Image.Symbols has
// this shape). Only symbols inside [lo, hi) are kept, which lets the
// caller restrict attribution to executable sections so data labels
// never shadow function names; pass lo=0, hi=^uint64(0) to keep all.
func NewSymTable(syms map[string]uint64, lo, hi uint64) *SymTable {
	type entry struct {
		addr uint64
		name string
	}
	entries := make([]entry, 0, len(syms))
	for name, addr := range syms {
		if addr < lo || addr >= hi {
			continue
		}
		entries = append(entries, entry{addr, name})
	}
	// Sort by address; break ties by name so lookups are deterministic.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].addr != entries[j].addr {
			return entries[i].addr < entries[j].addr
		}
		return entries[i].name < entries[j].name
	})
	t := &SymTable{
		addrs: make([]uint64, len(entries)),
		names: make([]string, len(entries)),
	}
	for i, e := range entries {
		t.addrs[i] = e.addr
		t.names[i] = e.name
	}
	return t
}

// Len returns the number of symbols in the table.
func (t *SymTable) Len() int {
	if t == nil {
		return 0
	}
	return len(t.addrs)
}

// Locate returns the name of the nearest symbol at or before pc and
// the offset of pc from it. ok is false when no symbol precedes pc
// (or the table is nil/empty).
func (t *SymTable) Locate(pc uint64) (name string, off uint64, ok bool) {
	if t == nil || len(t.addrs) == 0 {
		return "", 0, false
	}
	// First index with addr > pc; the symbol before it contains pc.
	i := sort.Search(len(t.addrs), func(i int) bool { return t.addrs[i] > pc })
	if i == 0 {
		return "", 0, false
	}
	return t.names[i-1], pc - t.addrs[i-1], true
}

// Name returns Locate's symbol name, or a hex rendering of pc when
// symbolization fails — always usable as a display label.
func (t *SymTable) Name(pc uint64) string {
	if name, _, ok := t.Locate(pc); ok {
		return name
	}
	return hex64(pc)
}

func hex64(v uint64) string {
	const digits = "0123456789abcdef"
	buf := [18]byte{'0', 'x'}
	n := 2
	started := false
	for shift := 60; shift >= 0; shift -= 4 {
		d := v >> uint(shift) & 0xf
		if d != 0 || started || shift == 0 {
			buf[n] = digits[d]
			n++
			started = true
		}
	}
	return string(buf[:n])
}
