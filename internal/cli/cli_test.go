package cli

import (
	"flag"
	"io"
	"strings"
	"testing"

	"roload/internal/core"
	"roload/internal/eval"
)

func TestParseSystem(t *testing.T) {
	cases := map[string]core.SystemKind{
		"baseline": core.SysBaseline,
		"proc":     core.SysProcessorOnly,
		"full":     core.SysFull,
	}
	for name, want := range cases {
		got, err := ParseSystem(name)
		if err != nil || got != want {
			t.Errorf("ParseSystem(%q) = %v, %v", name, got, err)
		}
		if SystemName(want) != name {
			t.Errorf("SystemName(%v) = %q", want, SystemName(want))
		}
	}
	_, err := ParseSystem("mainframe")
	if err == nil || !strings.Contains(err.Error(), "known: baseline, proc, full") {
		t.Errorf("unknown system error = %v", err)
	}
}

func TestParseHardening(t *testing.T) {
	cases := map[string]core.Hardening{
		"none": core.HardenNone, "vcall": core.HardenVCall, "vtint": core.HardenVTint,
		"icall": core.HardenICall, "cfi": core.HardenCFI,
		"retguard": core.HardenRetGuard, "full": core.HardenFull,
	}
	for name, want := range cases {
		got, err := ParseHardening(name)
		if err != nil || got != want {
			t.Errorf("ParseHardening(%q) = %v, %v", name, got, err)
		}
		if HardeningName(want) != name {
			t.Errorf("HardeningName(%v) = %q", want, HardeningName(want))
		}
	}
	_, err := ParseHardening("aslr")
	if err == nil || !strings.Contains(err.Error(), "known: none, vcall, vtint, icall, cfi, retguard, full") {
		t.Errorf("unknown hardening error = %v", err)
	}
}

func TestParseScale(t *testing.T) {
	for name, want := range map[string]eval.Scale{"ref": eval.ScaleRef, "test": eval.ScaleTest} {
		got, err := ParseScale(name)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", name, got, err)
		}
		if ScaleName(want) != name {
			t.Errorf("ScaleName(%v) = %q", want, ScaleName(want))
		}
	}
	_, err := ParseScale("huge")
	if err == nil || !strings.Contains(err.Error(), "known: ref, test") {
		t.Errorf("unknown scale error = %v", err)
	}
}

// TestFlagValues drives the flag.Value wrappers through a FlagSet the
// way the tools register them: good values parse, defaults render, and
// bad values fail with the known-value message that flag reports
// before exiting 2 under ExitOnError.
func TestFlagValues(t *testing.T) {
	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	sys := SystemFlag{Kind: core.SysFull}
	fs.Var(&sys, "system", "")
	fs.Var(&sys, "sys", "alias")
	h := HardenFlag{Scheme: core.HardenNone}
	fs.Var(&h, "harden", "")
	sc := ScaleFlag{Scale: eval.ScaleRef}
	fs.Var(&sc, "scale", "")

	if err := fs.Parse([]string{"-sys", "proc", "-harden", "retguard", "-scale", "test"}); err != nil {
		t.Fatal(err)
	}
	if sys.Kind != core.SysProcessorOnly || h.Scheme != core.HardenRetGuard || sc.Scale != eval.ScaleTest {
		t.Errorf("parsed %v %v %v", sys.Kind, h.Scheme, sc.Scale)
	}
	if sys.String() != "proc" || h.String() != "retguard" || sc.String() != "test" {
		t.Errorf("String() = %q %q %q", sys.String(), h.String(), sc.String())
	}

	for _, args := range [][]string{
		{"-system", "mainframe"},
		{"-sys", "mainframe"},
		{"-harden", "aslr"},
		{"-scale", "huge"},
	} {
		fs2 := flag.NewFlagSet("tool", flag.ContinueOnError)
		fs2.SetOutput(io.Discard)
		var s2 SystemFlag
		var h2 HardenFlag
		var c2 ScaleFlag
		fs2.Var(&s2, "system", "")
		fs2.Var(&s2, "sys", "")
		fs2.Var(&h2, "harden", "")
		fs2.Var(&c2, "scale", "")
		err := fs2.Parse(args)
		if err == nil || !strings.Contains(err.Error(), "known:") {
			t.Errorf("%v: err = %v, want known-value list", args, err)
		}
	}
}
