// Package cli is the shared flag vocabulary of the roload command-line
// tools: every tool parses -system/-sys, -harden and -scale through the
// same parsers and flag.Value implementations, so an unknown value
// produces the identical error everywhere — naming the known values —
// and the same exit status (2, via flag.ExitOnError).
package cli

import (
	"fmt"

	"roload/internal/core"
	"roload/internal/eval"
)

// ParseSystem maps a -system/-sys flag value to its SystemKind.
func ParseSystem(name string) (core.SystemKind, error) {
	switch name {
	case "baseline":
		return core.SysBaseline, nil
	case "proc":
		return core.SysProcessorOnly, nil
	case "full":
		return core.SysFull, nil
	}
	return 0, fmt.Errorf("unknown system %q (known: baseline, proc, full)", name)
}

// SystemName is the flag spelling of a system kind (the inverse of
// ParseSystem; SystemKind.String is the long display form).
func SystemName(k core.SystemKind) string {
	switch k {
	case core.SysBaseline:
		return "baseline"
	case core.SysProcessorOnly:
		return "proc"
	default:
		return "full"
	}
}

// ParseHardening maps a -harden flag value to its Hardening scheme.
func ParseHardening(name string) (core.Hardening, error) {
	switch name {
	case "none":
		return core.HardenNone, nil
	case "vcall":
		return core.HardenVCall, nil
	case "vtint":
		return core.HardenVTint, nil
	case "icall":
		return core.HardenICall, nil
	case "cfi":
		return core.HardenCFI, nil
	case "retguard":
		return core.HardenRetGuard, nil
	case "full":
		return core.HardenFull, nil
	}
	return 0, fmt.Errorf("unknown hardening scheme %q (known: none, vcall, vtint, icall, cfi, retguard, full)", name)
}

// HardeningName is the flag spelling of a hardening scheme (the
// inverse of ParseHardening).
func HardeningName(h core.Hardening) string {
	switch h {
	case core.HardenVCall:
		return "vcall"
	case core.HardenVTint:
		return "vtint"
	case core.HardenICall:
		return "icall"
	case core.HardenCFI:
		return "cfi"
	case core.HardenRetGuard:
		return "retguard"
	case core.HardenFull:
		return "full"
	default:
		return "none"
	}
}

// ParseEngine maps an -engine flag value to its execution Engine.
func ParseEngine(name string) (core.Engine, error) {
	switch name {
	case "blocks":
		return core.EngineBlocks, nil
	case "fast":
		return core.EngineFast, nil
	case "interp":
		return core.EngineInterp, nil
	}
	return 0, fmt.Errorf("unknown engine %q (known: blocks, fast, interp)", name)
}

// EngineName is the flag spelling of an execution engine (the inverse
// of ParseEngine).
func EngineName(e core.Engine) string {
	switch e {
	case core.EngineFast:
		return "fast"
	case core.EngineInterp:
		return "interp"
	default:
		return "blocks"
	}
}

// ParseScale maps a -scale flag value to its workload Scale.
func ParseScale(name string) (eval.Scale, error) {
	return eval.ParseScale(name)
}

// ScaleName is the flag spelling of a workload scale.
func ScaleName(s eval.Scale) string {
	if s == eval.ScaleRef {
		return "ref"
	}
	return "test"
}

// SystemFlag is a flag.Value selecting a simulated system. Registered
// on a flag.ExitOnError set, an unknown value exits 2 with the known
// values in the message.
type SystemFlag struct{ Kind core.SystemKind }

func (f *SystemFlag) String() string { return SystemName(f.Kind) }

func (f *SystemFlag) Set(s string) error {
	k, err := ParseSystem(s)
	if err != nil {
		return err
	}
	f.Kind = k
	return nil
}

// HardenFlag is a flag.Value selecting a hardening scheme.
type HardenFlag struct{ Scheme core.Hardening }

func (f *HardenFlag) String() string { return HardeningName(f.Scheme) }

func (f *HardenFlag) Set(s string) error {
	h, err := ParseHardening(s)
	if err != nil {
		return err
	}
	f.Scheme = h
	return nil
}

// EngineFlag is a flag.Value selecting an execution engine.
type EngineFlag struct{ Engine core.Engine }

func (f *EngineFlag) String() string { return EngineName(f.Engine) }

func (f *EngineFlag) Set(s string) error {
	e, err := ParseEngine(s)
	if err != nil {
		return err
	}
	f.Engine = e
	return nil
}

// ScaleFlag is a flag.Value selecting a workload scale.
type ScaleFlag struct{ Scale eval.Scale }

func (f *ScaleFlag) String() string { return ScaleName(f.Scale) }

func (f *ScaleFlag) Set(s string) error {
	sc, err := ParseScale(s)
	if err != nil {
		return err
	}
	f.Scale = sc
	return nil
}
