package cc

import (
	"fmt"
	"sort"
)

// ClassInfo is the checker's view of one class: its layout and vtable.
type ClassInfo struct {
	Decl    *ClassDecl
	Base    *ClassInfo
	Size    int64            // object size in bytes (including vptr)
	Fields  map[string]int64 // field name -> byte offset
	FieldT  map[string]*Type
	VTable  []*FuncDecl // slot -> implementing method
	SlotOf  map[string]int
	Derived []*ClassInfo
	ID      int // dense class index (used for per-class vtable keys)
}

// StructInfo is the layout of a plain struct.
type StructInfo struct {
	Decl   *StructDecl
	Size   int64
	Fields map[string]int64
	FieldT map[string]*Type
}

// Checked is a type-checked program plus the symbol information the
// code generator and hardening passes need.
type Checked struct {
	Prog    *Program
	Classes map[string]*ClassInfo
	Structs map[string]*StructInfo
	Globals map[string]*VarDecl
	Funcs   map[string]*FuncDecl

	// AddressTaken lists functions whose address is taken somewhere
	// (the candidate set for ICall GFPTs), keyed by mangled name.
	AddressTaken map[string]*FuncDecl
	// SigOf maps a mangled function name to its canonical signature.
	SigOf map[string]string
	// ClassOrder is the deterministic listing of classes.
	ClassOrder []string
}

type checker struct {
	out    *Checked
	fn     *FuncDecl // current function
	locals []map[string]*localVar
	frame  int64 // next frame offset (positive; codegen flips sign)
	maxFrm int64
	loops  int
}

type localVar struct {
	decl   *VarDecl
	offset int64
	param  bool
}

// Check resolves and type-checks a parsed program.
func Check(prog *Program) (*Checked, error) {
	c := &checker{out: &Checked{
		Prog:         prog,
		Classes:      make(map[string]*ClassInfo),
		Structs:      make(map[string]*StructInfo),
		Globals:      make(map[string]*VarDecl),
		Funcs:        make(map[string]*FuncDecl),
		AddressTaken: make(map[string]*FuncDecl),
		SigOf:        make(map[string]string),
	}}
	if err := c.collect(); err != nil {
		return nil, err
	}
	for _, f := range c.allFuncs() {
		if err := c.checkFunc(f); err != nil {
			return nil, err
		}
	}
	if _, ok := c.out.Funcs["main"]; !ok {
		return nil, errf(1, "no main function")
	}
	return c.out, nil
}

func (c *checker) allFuncs() []*FuncDecl {
	var out []*FuncDecl
	out = append(out, c.out.Prog.Funcs...)
	for _, cd := range c.out.Prog.Classes {
		out = append(out, cd.Methods...)
	}
	return out
}

// collect builds struct/class layouts, vtables and global tables.
func (c *checker) collect() error {
	prog := c.out.Prog
	for _, sd := range prog.Structs {
		if _, dup := c.out.Structs[sd.Name]; dup {
			return errf(sd.Line, "struct %s redefined", sd.Name)
		}
		c.out.Structs[sd.Name] = &StructInfo{Decl: sd}
	}
	for _, cd := range prog.Classes {
		if _, dup := c.out.Classes[cd.Name]; dup {
			return errf(cd.Line, "class %s redefined", cd.Name)
		}
		if _, clash := c.out.Structs[cd.Name]; clash {
			return errf(cd.Line, "%s defined as both struct and class", cd.Name)
		}
		c.out.Classes[cd.Name] = &ClassInfo{Decl: cd}
		c.out.ClassOrder = append(c.out.ClassOrder, cd.Name)
	}

	// Struct layouts (structs may nest arrays/structs by value).
	for _, sd := range prog.Structs {
		info := c.out.Structs[sd.Name]
		info.Fields = make(map[string]int64)
		info.FieldT = make(map[string]*Type)
		var off int64
		for _, f := range sd.Fields {
			if err := c.resolveType(f.Type, sd.Line); err != nil {
				return err
			}
			if _, dup := info.Fields[f.Name]; dup {
				return errf(sd.Line, "field %s.%s redefined", sd.Name, f.Name)
			}
			info.Fields[f.Name] = off
			info.FieldT[f.Name] = f.Type
			off += c.sizeOf(f.Type)
		}
		info.Size = off
		if info.Size == 0 {
			info.Size = 8
		}
	}

	// Class hierarchies: resolve bases, then layouts in topological
	// order (parents first).
	for _, name := range c.out.ClassOrder {
		info := c.out.Classes[name]
		if b := info.Decl.Base; b != "" {
			base, ok := c.out.Classes[b]
			if !ok {
				return errf(info.Decl.Line, "class %s extends unknown class %s", name, b)
			}
			info.Base = base
			base.Derived = append(base.Derived, info)
		}
	}
	done := make(map[string]bool)
	var layout func(info *ClassInfo) error
	layout = func(info *ClassInfo) error {
		if done[info.Decl.Name] {
			return nil
		}
		if info.Base != nil {
			if info.Base == info {
				return errf(info.Decl.Line, "class %s extends itself", info.Decl.Name)
			}
			if err := layout(info.Base); err != nil {
				return err
			}
		}
		info.Fields = make(map[string]int64)
		info.FieldT = make(map[string]*Type)
		info.SlotOf = make(map[string]int)
		var off int64 = 8 // slot 0: vptr
		if info.Base != nil {
			for k, v := range info.Base.Fields {
				info.Fields[k] = v
				info.FieldT[k] = info.Base.FieldT[k]
			}
			info.VTable = append(info.VTable, info.Base.VTable...)
			for k, v := range info.Base.SlotOf {
				info.SlotOf[k] = v
			}
			off = info.Base.Size
		}
		for _, f := range info.Decl.Fields {
			if err := c.resolveType(f.Type, info.Decl.Line); err != nil {
				return err
			}
			if _, dup := info.Fields[f.Name]; dup {
				return errf(info.Decl.Line, "field %s.%s shadows an inherited field", info.Decl.Name, f.Name)
			}
			info.Fields[f.Name] = off
			info.FieldT[f.Name] = f.Type
			off += c.sizeOf(f.Type)
		}
		info.Size = off
		for _, m := range info.Decl.Methods {
			m.Mangled = info.Decl.Name + "$" + m.Name
			for _, p := range m.Params {
				if err := c.resolveType(p.Type, m.Line); err != nil {
					return err
				}
			}
			if m.Ret != nil {
				if err := c.resolveType(m.Ret, m.Line); err != nil {
					return err
				}
			}
			if slot, override := info.SlotOf[m.Name]; override {
				// Override must match the base signature.
				base := info.VTable[slot]
				if base.Sig() != m.Sig() {
					return errf(m.Line, "method %s.%s overrides %s.%s with a different signature",
						info.Decl.Name, m.Name, base.Class, base.Name)
				}
				m.Slot = slot
				info.VTable[slot] = m
			} else {
				m.Slot = len(info.VTable)
				info.SlotOf[m.Name] = m.Slot
				info.VTable = append(info.VTable, m)
			}
			// Virtual methods are address-taken by construction: their
			// addresses live in vtables.
			c.out.AddressTaken[m.Mangled] = m
			c.out.SigOf[m.Mangled] = m.Sig()
		}
		done[info.Decl.Name] = true
		return nil
	}
	ordered := make([]string, len(c.out.ClassOrder))
	copy(ordered, c.out.ClassOrder)
	sort.Strings(ordered)
	for i, name := range c.out.ClassOrder {
		c.out.Classes[name].ID = i + 1
	}
	for _, name := range c.out.ClassOrder {
		if err := layout(c.out.Classes[name]); err != nil {
			return err
		}
	}

	for _, f := range prog.Funcs {
		if _, dup := c.out.Funcs[f.Name]; dup {
			return errf(f.Line, "function %s redefined", f.Name)
		}
		if builtinFuncs[f.Name] != "" {
			return errf(f.Line, "function %s shadows a builtin", f.Name)
		}
		f.Mangled = f.Name
		for _, p := range f.Params {
			if err := c.resolveType(p.Type, f.Line); err != nil {
				return err
			}
		}
		if f.Ret != nil {
			if err := c.resolveType(f.Ret, f.Line); err != nil {
				return err
			}
		}
		c.out.Funcs[f.Name] = f
		c.out.SigOf[f.Mangled] = f.Sig()
	}
	for _, g := range prog.Globals {
		if _, dup := c.out.Globals[g.Name]; dup {
			return errf(g.Line, "global %s redefined", g.Name)
		}
		if err := c.resolveType(g.Type, g.Line); err != nil {
			return err
		}
		if g.Init != nil {
			if _, ok := constInt(g.Init); !ok {
				if _, isNull := g.Init.(*NullLit); !isNull {
					return errf(g.Line, "global %s: initializer must be a constant", g.Name)
				}
			}
		}
		c.out.Globals[g.Name] = g
	}
	return nil
}

// Sig returns the canonical function type signature (receiver erased,
// following the paper's type-based CFI policy which groups functions by
// parameter/return types).
func (f *FuncDecl) Sig() string {
	t := &Type{Kind: TypeFunc, Ret: f.Ret}
	for _, p := range f.Params {
		t.Params = append(t.Params, p.Type)
	}
	return t.Sig()
}

// FuncType returns the function type of a declaration.
func (f *FuncDecl) FuncType() *Type {
	t := &Type{Kind: TypeFunc, Ret: f.Ret}
	for _, p := range f.Params {
		t.Params = append(t.Params, p.Type)
	}
	return t
}

// resolveType patches named types to struct or class kind and validates
// nested types.
func (c *checker) resolveType(t *Type, line int) error {
	switch t.Kind {
	case TypePointer, TypeArray:
		return c.resolveType(t.Elem, line)
	case TypeFunc:
		for _, pt := range t.Params {
			if err := c.resolveType(pt, line); err != nil {
				return err
			}
		}
		if t.Ret != nil {
			return c.resolveType(t.Ret, line)
		}
		return nil
	case TypeStruct, TypeClass:
		if _, ok := c.out.Structs[t.Name]; ok {
			t.Kind = TypeStruct
			return nil
		}
		if _, ok := c.out.Classes[t.Name]; ok {
			t.Kind = TypeClass
			return nil
		}
		return errf(line, "unknown type %q", t.Name)
	}
	return nil
}

// sizeOf computes storage size with struct/class layout awareness.
func (c *checker) sizeOf(t *Type) int64 {
	switch t.Kind {
	case TypeArray:
		return t.Len * c.sizeOf(t.Elem)
	case TypeStruct:
		if info, ok := c.out.Structs[t.Name]; ok {
			return info.Size
		}
		return 8
	case TypeClass:
		if info, ok := c.out.Classes[t.Name]; ok {
			return info.Size
		}
		return 8
	case TypeVoid:
		return 0
	default:
		return 8
	}
}

var builtinFuncs = map[string]string{
	"print_int": "func(int)",
	"print_str": "func(*int)",
	"exit":      "func(int)",
	// attack_point is a test intrinsic: it raises the kernel's attack
	// hook syscall, giving a harness the chance to corrupt memory at a
	// deterministic execution point (simulating the memory-corruption
	// vulnerability of the threat model).
	"attack_point": "func()",
}

func (c *checker) pushScope() { c.locals = append(c.locals, make(map[string]*localVar)) }
func (c *checker) popScope()  { c.locals = c.locals[:len(c.locals)-1] }

func (c *checker) define(d *VarDecl, param bool) (*localVar, error) {
	top := c.locals[len(c.locals)-1]
	if _, dup := top[d.Name]; dup {
		return nil, errf(d.Line, "variable %s redefined in this scope", d.Name)
	}
	size := c.sizeOf(d.Type)
	if size%8 != 0 {
		size += 8 - size%8
	}
	c.frame += size
	lv := &localVar{decl: d, offset: c.frame, param: param}
	top[d.Name] = lv
	if c.frame > c.maxFrm {
		c.maxFrm = c.frame
	}
	return lv, nil
}

func (c *checker) lookup(name string) *localVar {
	for i := len(c.locals) - 1; i >= 0; i-- {
		if lv, ok := c.locals[i][name]; ok {
			return lv
		}
	}
	return nil
}

// FrameSizes records each function's local-frame size for codegen.
var _ = fmt.Sprintf // placate unused import during refactors

func (c *checker) checkFunc(f *FuncDecl) error {
	c.fn = f
	c.frame = 0
	c.maxFrm = 0
	c.locals = nil
	c.pushScope()
	defer c.popScope()

	if f.Class != "" {
		this := &VarDecl{Name: "this", Line: f.Line,
			Type: &Type{Kind: TypePointer, Elem: &Type{Kind: TypeClass, Name: f.Class}}}
		if _, err := c.define(this, true); err != nil {
			return err
		}
	}
	if isAggregate(f.Ret) {
		return errf(f.Line, "function %s: aggregates return by pointer in MiniC", f.Name)
	}
	maxParams := 7
	if f.Class != "" {
		maxParams = 6 // a0 carries the receiver
	}
	if len(f.Params) > maxParams {
		return errf(f.Line, "function %s has more than %d parameters", f.Name, maxParams)
	}
	for i := range f.Params {
		pt := f.Params[i].Type
		if pt.Kind == TypeStruct || pt.Kind == TypeClass || pt.Kind == TypeArray {
			return errf(f.Line, "parameter %s: aggregates pass by pointer in MiniC", f.Params[i].Name)
		}
		pd := &VarDecl{Name: f.Params[i].Name, Type: pt, Line: f.Line}
		if _, err := c.define(pd, true); err != nil {
			return err
		}
	}
	if err := c.checkBlock(f.Body); err != nil {
		return err
	}
	f.frameSize = c.maxFrm
	return nil
}

func (c *checker) checkBlock(b *BlockStmt) error {
	c.pushScope()
	defer c.popScope()
	saved := c.frame
	defer func() { c.frame = saved }()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch s := s.(type) {
	case *BlockStmt:
		return c.checkBlock(s)
	case *DeclStmt:
		d := s.Decl
		if err := c.resolveType(d.Type, d.Line); err != nil {
			return err
		}
		if d.Init != nil {
			t, err := c.checkExpr(d.Init)
			if err != nil {
				return err
			}
			if isAggregate(d.Type) {
				return errf(d.Line, "cannot initialize aggregate %s by value", d.Name)
			}
			if !assignable(d.Type, t) {
				return errf(d.Line, "cannot initialize %s (%s) with %s", d.Name, d.Type, t)
			}
		}
		lv, err := c.define(d, false)
		if err != nil {
			return err
		}
		d.frameOffset = lv.offset
		return nil
	case *ExprStmt:
		_, err := c.checkExpr(s.X)
		return err
	case *AssignStmt:
		lt, err := c.checkExpr(s.LHS)
		if err != nil {
			return err
		}
		if !isLValue(s.LHS) {
			return errf(s.Line, "left side of assignment is not assignable")
		}
		if isAggregate(lt) {
			return errf(s.Line, "cannot assign %s by value; copy fields or use pointers", lt)
		}
		rt, err := c.checkExpr(s.RHS)
		if err != nil {
			return err
		}
		if s.Op == "=" {
			if !assignable(lt, rt) {
				return errf(s.Line, "cannot assign %s to %s", rt, lt)
			}
			return nil
		}
		if lt.Kind != TypeInt || rt.Kind != TypeInt {
			return errf(s.Line, "compound assignment needs int operands, got %s and %s", lt, rt)
		}
		return nil
	case *IfStmt:
		if _, err := c.checkExpr(s.Cond); err != nil {
			return err
		}
		if err := c.checkBlock(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.checkStmt(s.Else)
		}
		return nil
	case *WhileStmt:
		if _, err := c.checkExpr(s.Cond); err != nil {
			return err
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.checkBlock(s.Body)
	case *ForStmt:
		c.pushScope()
		defer c.popScope()
		savedFrame := c.frame
		defer func() { c.frame = savedFrame }()
		if s.Init != nil {
			if err := c.checkStmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if _, err := c.checkExpr(s.Cond); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := c.checkStmt(s.Post); err != nil {
				return err
			}
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.checkBlock(s.Body)
	case *ReturnStmt:
		if s.X == nil {
			if c.fn.Ret != nil && c.fn.Ret.Kind != TypeVoid {
				return errf(s.Line, "function %s must return %s", c.fn.Name, c.fn.Ret)
			}
			return nil
		}
		t, err := c.checkExpr(s.X)
		if err != nil {
			return err
		}
		if c.fn.Ret == nil || c.fn.Ret.Kind == TypeVoid {
			return errf(s.Line, "function %s returns no value", c.fn.Name)
		}
		if !assignable(c.fn.Ret, t) {
			return errf(s.Line, "cannot return %s from function returning %s", t, c.fn.Ret)
		}
		return nil
	case *BreakStmt:
		if c.loops == 0 {
			return errf(s.Line, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if c.loops == 0 {
			return errf(s.Line, "continue outside loop")
		}
		return nil
	}
	return fmt.Errorf("cc: unknown statement %T", s)
}

// constInt folds the constant integer expressions permitted in global
// initializers: literals and unary minus/complement of them.
func constInt(e Expr) (int64, bool) {
	switch e := e.(type) {
	case *IntLit:
		return e.Val, true
	case *Unary:
		v, ok := constInt(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case "-":
			return -v, true
		case "~":
			return ^v, true
		}
	}
	return 0, false
}

func isAggregate(t *Type) bool {
	return t != nil && (t.Kind == TypeStruct || t.Kind == TypeClass || t.Kind == TypeArray)
}

func isLValue(e Expr) bool {
	switch e := e.(type) {
	case *Ident:
		return e.Kind != IdentFunc
	case *Index, *Member:
		return true
	case *Unary:
		return e.Op == "*"
	}
	return false
}

// assignable implements MiniC's assignment compatibility: exact type
// match, int<->int, null to any pointer, any pointer to *int (the
// catch-all "void*"-style pointer), *Derived to *Base.
func assignable(dst, src *Type) bool {
	if dst == nil || src == nil {
		return false
	}
	if typeEq(dst, src) {
		return true
	}
	if dst.Kind == TypePointer && src.Kind == TypePointer {
		if dst.Elem.Kind == TypeInt {
			return true // *int acts as void*
		}
		if src.Elem.Kind == TypeInt {
			return true
		}
		// upcast Derived -> Base
		if dst.Elem.Kind == TypeClass && src.Elem.Kind == TypeClass {
			return true // runtime layout guarantees prefix compatibility
		}
	}
	if dst.Kind == TypePointer && src.Kind == TypeInt {
		return false
	}
	return false
}

func typeEq(a, b *Type) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case TypeInt, TypeVoid:
		return true
	case TypePointer:
		return typeEq(a.Elem, b.Elem)
	case TypeArray:
		return a.Len == b.Len && typeEq(a.Elem, b.Elem)
	case TypeStruct, TypeClass:
		return a.Name == b.Name
	case TypeFunc:
		if len(a.Params) != len(b.Params) {
			return false
		}
		for i := range a.Params {
			if !typeEq(a.Params[i], b.Params[i]) {
				return false
			}
		}
		ar, br := a.Ret, b.Ret
		if ar == nil {
			ar = voidType
		}
		if br == nil {
			br = voidType
		}
		return typeEq(ar, br)
	}
	return false
}
