// Package cc implements MiniC, the small systems language used to
// write the evaluation workloads, and its compiler targeting the
// prototype's RV64 ISA.
//
// MiniC deliberately covers exactly the C/C++ feature set the paper's
// defenses care about: function pointers (indirect calls), classes
// with virtual methods (vtable dispatch), structs, arrays, pointers,
// and global/heap/stack data. The compiler plays the role of the
// paper's modified LLVM: its code generator attaches ROLoad-md-style
// metadata to sensitive loads and call sites, and the passes in
// cc/harden rewrite those sites into ld.ro-protected (or
// baseline-instrumented) sequences.
package cc

import "fmt"

// TokKind classifies tokens.
type TokKind int

const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokString
	TokPunct // operators and delimiters
	TokKeyword
)

var keywords = map[string]bool{
	"func": true, "var": true, "return": true, "if": true, "else": true,
	"while": true, "for": true, "break": true, "continue": true,
	"struct": true, "class": true, "virtual": true, "new": true,
	"int": true, "null": true, "sizeof": true, "extends": true,
}

// Token is one lexical unit.
type Token struct {
	Kind TokKind
	Text string
	Val  int64 // for TokInt
	Line int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of file"
	case TokInt:
		return fmt.Sprintf("%d", t.Val)
	case TokString:
		return fmt.Sprintf("%q", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// Error is a compile error with a source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("cc: line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...interface{}) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}
