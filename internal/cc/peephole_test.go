package cc

import (
	"testing"

	"roload/internal/asm"
	"roload/internal/kernel"
)

const peepProg = `
func fib(n int) int {
	if (n < 2) { return n; }
	return fib(n-1) + fib(n-2);
}
class A { v int; virtual get() int { return this.v; } }
func main() int {
	var a *A = new A;
	a.v = fib(12);
	print_int(a.get());
	return a.get() % 251; // 144
}
`

func instCount(u *Unit) int {
	n := 0
	for _, f := range u.Funcs {
		for _, l := range f.Lines {
			if l.Op != "" {
				n++
			}
		}
	}
	return n
}

func TestOptimizeShrinksAndPreserves(t *testing.T) {
	plain, err := Compile(peepProg)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Compile(peepProg)
	if err != nil {
		t.Fatal(err)
	}
	Optimize(opt)
	if instCount(opt) >= instCount(plain) {
		t.Fatalf("optimizer did not shrink: %d vs %d", instCount(opt), instCount(plain))
	}

	run := func(u *Unit) kernel.RunResult {
		t.Helper()
		img, err := asm.Assemble(u.Assembly(), asm.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		cfg := kernel.FullSystem()
		cfg.MaxSteps = 50_000_000
		sys := kernel.NewSystem(cfg)
		p, err := sys.Spawn(img)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rp := run(plain)
	ro := run(opt)
	if !rp.Exited || !ro.Exited || rp.Code != ro.Code || string(rp.Stdout) != string(ro.Stdout) {
		t.Fatalf("behaviour changed: plain %+v vs opt %+v", rp, ro)
	}
	if ro.Cycles >= rp.Cycles {
		t.Errorf("optimized cycles %d >= plain %d", ro.Cycles, rp.Cycles)
	}
	if ro.Code != 144 {
		t.Errorf("exit = %d", ro.Code)
	}
}

// The optimizer must not touch metadata-tagged lines: the hardening
// passes still find their rewrite points afterwards.
func TestOptimizePreservesMetadata(t *testing.T) {
	u, err := Compile(peepProg)
	if err != nil {
		t.Fatal(err)
	}
	beforeVT := u.CountMeta(MetaVTableLoad)
	beforeVJ := u.CountMeta(MetaVCallJump)
	Optimize(u)
	if u.CountMeta(MetaVTableLoad) != beforeVT || u.CountMeta(MetaVCallJump) != beforeVJ {
		t.Error("optimizer dropped metadata")
	}
}

// Labels survive (branch targets stay valid even when the preceding
// window matched).
func TestOptimizeKeepsLabels(t *testing.T) {
	u := &Unit{Funcs: []*MFunc{{
		Name: "f",
		Lines: []Line{
			I("addi", "sp", "sp", "-8"),
			I("sd", "t0", "0(sp)"),
			L(".Lx"), // label inside the window: must block the rewrite
			I("ld", "a0", "0(sp)"),
			I("addi", "sp", "sp", "8"),
			I("ret"),
		},
	}}}
	Optimize(u)
	found := false
	for _, l := range u.Funcs[0].Lines {
		if l.Label == ".Lx" {
			found = true
		}
	}
	if !found {
		t.Fatal("label removed")
	}
	if len(u.Funcs[0].Lines) != 6 {
		t.Errorf("window across a label was rewritten: %v", u.Funcs[0].Lines)
	}
}

func TestOptimizedHardenedStillProtected(t *testing.T) {
	// Build optimized + hardened and ensure the ld.ro path still works.
	u, err := Compile(peepProg)
	if err != nil {
		t.Fatal(err)
	}
	Optimize(u)
	// Re-use the harden package indirectly via metadata rewrite being
	// intact: here we just verify the tagged lines still exist, the
	// harden tests cover the rest.
	if u.CountMeta(MetaVTableLoad) == 0 {
		t.Fatal("no vtable loads to protect after optimization")
	}
}
