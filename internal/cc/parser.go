package cc

// parser is a recursive-descent parser for MiniC.
//
// Grammar sketch:
//
//	program   = { structDecl | classDecl | varDecl | funcDecl }
//	structDecl= "struct" IDENT "{" { field ";" } "}"
//	classDecl = "class" IDENT [ "extends" IDENT ] "{" { field ";" | method } "}"
//	method    = "virtual" IDENT "(" params ")" [ type ] block
//	funcDecl  = "func" IDENT "(" params ")" [ type ] block
//	varDecl   = "var" IDENT type [ "=" expr ] ";"
//	type      = "int" | "*" type | "[" INT "]" type
//	          | "func" "(" [type {"," type}] ")" [ type ] | IDENT
//	block     = "{" { stmt } "}"
//	stmt      = varDecl | "if" ... | "while" ... | "for" ... | "return"
//	          | "break" ";" | "continue" ";" | block
//	          | expr [assignOp expr] ";"
//
// Expressions use standard C precedence; assignment is a statement,
// not an expression (no chained assignment).
type parser struct {
	toks []Token
	pos  int
}

// Parse builds the AST for one translation unit.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(TokEOF, "") {
		switch {
		case p.at(TokKeyword, "struct"):
			d, err := p.structDecl()
			if err != nil {
				return nil, err
			}
			prog.Structs = append(prog.Structs, d)
		case p.at(TokKeyword, "class"):
			d, err := p.classDecl()
			if err != nil {
				return nil, err
			}
			prog.Classes = append(prog.Classes, d)
		case p.at(TokKeyword, "var"):
			d, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, d)
		case p.at(TokKeyword, "func"):
			d, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, d)
		default:
			return nil, errf(p.cur().Line, "expected declaration, got %s", p.cur())
		}
	}
	return prog, nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = map[TokKind]string{TokIdent: "identifier", TokInt: "integer"}[kind]
	}
	return Token{}, errf(p.cur().Line, "expected %q, got %s", want, p.cur())
}

func (p *parser) ident() (string, int, error) {
	t, err := p.expect(TokIdent, "")
	if err != nil {
		return "", 0, err
	}
	return t.Text, t.Line, nil
}

// parseType parses a type.
func (p *parser) parseType() (*Type, error) {
	t := p.cur()
	switch {
	case p.accept(TokKeyword, "int"):
		return intType, nil
	case p.accept(TokPunct, "*"):
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		return &Type{Kind: TypePointer, Elem: elem}, nil
	case p.accept(TokPunct, "["):
		n, err := p.expect(TokInt, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, "]"); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if n.Val <= 0 {
			return nil, errf(n.Line, "array length must be positive")
		}
		return &Type{Kind: TypeArray, Len: n.Val, Elem: elem}, nil
	case p.accept(TokKeyword, "func"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		ft := &Type{Kind: TypeFunc}
		for !p.at(TokPunct, ")") {
			pt, err := p.parseType()
			if err != nil {
				return nil, err
			}
			ft.Params = append(ft.Params, pt)
			if !p.accept(TokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		if p.typeAhead() {
			ret, err := p.parseType()
			if err != nil {
				return nil, err
			}
			ft.Ret = ret
		}
		return ft, nil
	case t.Kind == TokIdent:
		p.next()
		// Resolved to struct or class by the checker.
		return &Type{Kind: TypeStruct, Name: t.Text}, nil
	}
	return nil, errf(t.Line, "expected type, got %s", t)
}

// typeAhead reports whether the next token can start a type.
func (p *parser) typeAhead() bool {
	t := p.cur()
	switch {
	case t.Kind == TokKeyword && (t.Text == "int" || t.Text == "func"):
		return true
	case t.Kind == TokPunct && (t.Text == "*" || t.Text == "["):
		return true
	case t.Kind == TokIdent:
		return true
	}
	return false
}

func (p *parser) structDecl() (*StructDecl, error) {
	start := p.next() // struct
	name, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	d := &StructDecl{Name: name, Line: start.Line}
	for !p.accept(TokPunct, "}") {
		fname, _, err := p.ident()
		if err != nil {
			return nil, err
		}
		ftype, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		d.Fields = append(d.Fields, Field{Name: fname, Type: ftype})
	}
	return d, nil
}

func (p *parser) classDecl() (*ClassDecl, error) {
	start := p.next() // class
	name, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &ClassDecl{Name: name, Line: start.Line}
	if p.accept(TokKeyword, "extends") {
		base, _, err := p.ident()
		if err != nil {
			return nil, err
		}
		d.Base = base
	}
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	for !p.accept(TokPunct, "}") {
		if p.at(TokKeyword, "virtual") {
			vt := p.next()
			mname, _, err := p.ident()
			if err != nil {
				return nil, err
			}
			m := &FuncDecl{Name: mname, Class: name, Virtual: true, Line: vt.Line}
			if err := p.funcSignature(m); err != nil {
				return nil, err
			}
			body, err := p.block()
			if err != nil {
				return nil, err
			}
			m.Body = body
			d.Methods = append(d.Methods, m)
			continue
		}
		fname, _, err := p.ident()
		if err != nil {
			return nil, err
		}
		ftype, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		d.Fields = append(d.Fields, Field{Name: fname, Type: ftype})
	}
	return d, nil
}

func (p *parser) funcSignature(f *FuncDecl) error {
	if _, err := p.expect(TokPunct, "("); err != nil {
		return err
	}
	for !p.at(TokPunct, ")") {
		pname, _, err := p.ident()
		if err != nil {
			return err
		}
		ptype, err := p.parseType()
		if err != nil {
			return err
		}
		f.Params = append(f.Params, Param{Name: pname, Type: ptype})
		if !p.accept(TokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return err
	}
	if p.typeAhead() && !p.at(TokPunct, "{") {
		ret, err := p.parseType()
		if err != nil {
			return err
		}
		f.Ret = ret
	}
	return nil
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	start := p.next() // func
	name, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	f := &FuncDecl{Name: name, Line: start.Line}
	if err := p.funcSignature(f); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *parser) varDecl() (*VarDecl, error) {
	start := p.next() // var
	name, _, err := p.ident()
	if err != nil {
		return nil, err
	}
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	d := &VarDecl{Name: name, Type: typ, Line: start.Line}
	if p.accept(TokPunct, "=") {
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) block() (*BlockStmt, error) {
	open, err := p.expect(TokPunct, "{")
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Line: open.Line}
	for !p.accept(TokPunct, "}") {
		if p.at(TokEOF, "") {
			return nil, errf(open.Line, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true,
	"%=": true, "&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.at(TokKeyword, "var"):
		d, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		return &DeclStmt{Decl: d}, nil

	case p.accept(TokKeyword, "if"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		s := &IfStmt{Cond: cond, Then: then, Line: t.Line}
		if p.accept(TokKeyword, "else") {
			if p.at(TokKeyword, "if") {
				els, err := p.stmt()
				if err != nil {
					return nil, err
				}
				s.Else = els
			} else {
				els, err := p.block()
				if err != nil {
					return nil, err
				}
				s.Else = els
			}
		}
		return s, nil

	case p.accept(TokKeyword, "while"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: t.Line}, nil

	case p.accept(TokKeyword, "for"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		s := &ForStmt{Line: t.Line}
		switch {
		case p.at(TokKeyword, "var"):
			d, err := p.varDecl() // consumes the ';'
			if err != nil {
				return nil, err
			}
			s.Init = &DeclStmt{Decl: d}
		case !p.at(TokPunct, ";"):
			init, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			s.Init = init
			if _, err := p.expect(TokPunct, ";"); err != nil {
				return nil, err
			}
		default:
			p.next() // empty init
		}
		if !p.at(TokPunct, ";") {
			cond, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Cond = cond
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		if !p.at(TokPunct, ")") {
			post, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			s.Post = post
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		s.Body = body
		return s, nil

	case p.accept(TokKeyword, "return"):
		s := &ReturnStmt{Line: t.Line}
		if !p.at(TokPunct, ";") {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.X = x
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return s, nil

	case p.accept(TokKeyword, "break"):
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: t.Line}, nil

	case p.accept(TokKeyword, "continue"):
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: t.Line}, nil

	case p.at(TokPunct, "{"):
		return p.block()
	}

	s, err := p.simpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	return s, nil
}

// simpleStmt is an expression statement, assignment, or ++/--.
func (p *parser) simpleStmt() (Stmt, error) {
	line := p.cur().Line
	lhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokPunct && assignOps[t.Text] {
		p.next()
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{LHS: lhs, Op: t.Text, RHS: rhs, Line: line}, nil
	}
	if t.Kind == TokPunct && (t.Text == "++" || t.Text == "--") {
		p.next()
		op := "+="
		if t.Text == "--" {
			op = "-="
		}
		one := &IntLit{Val: 1}
		one.Line = line
		return &AssignStmt{LHS: lhs, Op: op, RHS: one, Line: line}, nil
	}
	return &ExprStmt{X: lhs, Line: line}, nil
}

// --- expressions, standard precedence climbing ---

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) expr() (Expr, error) { return p.binary(1) }

func (p *parser) binary(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		prec, ok := binPrec[t.Text]
		if t.Kind != TokPunct || !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		b := &Binary{Op: t.Text, X: lhs, Y: rhs}
		b.Line = t.Line
		lhs = b
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "-", "!", "~", "*", "&":
			p.next()
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			u := &Unary{Op: t.Text, X: x}
			u.Line = t.Line
			return u, nil
		}
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case p.accept(TokPunct, "("):
			call := &Call{Fun: x}
			call.Line = t.Line
			for !p.at(TokPunct, ")") {
				arg, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if !p.accept(TokPunct, ",") {
					break
				}
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			x = call
		case p.accept(TokPunct, "["):
			i, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return nil, err
			}
			ix := &Index{X: x, I: i}
			ix.Line = t.Line
			x = ix
		case p.accept(TokPunct, "."), p.accept(TokPunct, "->"):
			name, line, err := p.ident()
			if err != nil {
				return nil, err
			}
			m := &Member{X: x, Name: name}
			m.Line = line
			x = m
		default:
			return x, nil
		}
	}
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokInt:
		p.next()
		e := &IntLit{Val: t.Val}
		e.Line = t.Line
		return e, nil
	case t.Kind == TokString:
		p.next()
		e := &StrLit{Val: t.Text}
		e.Line = t.Line
		return e, nil
	case p.accept(TokKeyword, "null"):
		e := &NullLit{}
		e.Line = t.Line
		return e, nil
	case p.accept(TokKeyword, "sizeof"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		e := &SizeofExpr{Arg: typ}
		e.Line = t.Line
		return e, nil
	case p.accept(TokKeyword, "new"):
		var name string
		var line int
		if p.at(TokKeyword, "int") {
			tk := p.next()
			name, line = "int", tk.Line
		} else {
			var err error
			name, line, err = p.ident()
			if err != nil {
				return nil, err
			}
		}
		e := &New{TypeName: name}
		e.Line = line
		if p.accept(TokPunct, "[") {
			count, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return nil, err
			}
			e.Count = count
			e.IsArray = true
		}
		return e, nil
	case t.Kind == TokIdent:
		p.next()
		e := &Ident{Name: t.Text}
		e.Line = t.Line
		return e, nil
	case p.accept(TokPunct, "("):
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, errf(t.Line, "expected expression, got %s", t)
}
