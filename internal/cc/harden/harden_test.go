package harden

import (
	"strings"
	"testing"

	"roload/internal/asm"
	"roload/internal/cc"
	"roload/internal/kernel"
)

// vcallProg exercises virtual dispatch across a hierarchy.
const vcallProg = `
class Shape {
	w int; h int;
	virtual area() int { return 0; }
}
class Rect extends Shape {
	virtual area() int { return this.w * this.h; }
}
class Circle extends Shape {
	virtual area() int { return 3 * this.w * this.w; }
}
func total(shapes **Shape, n int) int {
	var sum int = 0;
	for (var i int = 0; i < n; i++) {
		var s *Shape = shapes[i];
		sum += s.area();
	}
	return sum;
}
func main() int {
	var arr *int = new int[3];
	var ss **Shape = arr;
	var r *Rect = new Rect; r.w = 3; r.h = 4;
	var c *Circle = new Circle; c.w = 2;
	var s *Shape = new Shape;
	ss[0] = r; ss[1] = c; ss[2] = s;
	return total(ss, 3); // 12 + 12 + 0 = 24
}
`

// icallProg exercises function pointers of two signatures.
const icallProg = `
func inc(x int) int { return x + 1; }
func dbl(x int) int { return x * 2; }
func sum2(a int, b int) int { return a + b; }
var unary [2]func(int) int;
var binary func(int, int) int;
func main() int {
	unary[0] = inc;
	unary[1] = dbl;
	binary = sum2;
	var n int = 0;
	for (var i int = 0; i < 2; i++) { n += unary[i](10); }
	return n + binary(n, 9); // 11+20=31; 31+31+9 = 71
}
`

func buildHardened(t *testing.T, src string, passes ...Pass) *asm.Image {
	t.Helper()
	unit, err := cc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(unit, passes...); err != nil {
		t.Fatal(err)
	}
	img, err := asm.Assemble(unit.Assembly(), asm.DefaultOptions())
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return img
}

func runImage(t *testing.T, cfg kernel.Config, img *asm.Image) kernel.RunResult {
	t.Helper()
	cfg.MaxSteps = 50_000_000
	sys := kernel.NewSystem(cfg)
	p, err := sys.Spawn(img)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Every pass must preserve program semantics on the full system.
func TestPassesPreserveSemantics(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		want   int
		passes []Pass
	}{
		{"vcall/none", vcallProg, 24, nil},
		{"vcall/VCall", vcallProg, 24, []Pass{VCall()}},
		{"vcall/VTint", vcallProg, 24, []Pass{VTint()}},
		{"vcall/ICall", vcallProg, 24, []Pass{ICall()}},
		{"vcall/CFI", vcallProg, 24, []Pass{ClassicCFI()}},
		{"icall/none", icallProg, 71, nil},
		{"icall/ICall", icallProg, 71, []Pass{ICall()}},
		{"icall/CFI", icallProg, 71, []Pass{ClassicCFI()}},
		{"icall/VCall", icallProg, 71, []Pass{VCall()}},
		{"icall/VTint", icallProg, 71, []Pass{VTint()}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			img := buildHardened(t, c.src, c.passes...)
			res := runImage(t, kernel.FullSystem(), img)
			if !res.Exited {
				t.Fatalf("killed: %v (roload=%v va=%#x want=%d got=%d)",
					res.Signal, res.ROLoadViolation, res.FaultVA, res.FaultWantKey, res.FaultGotKey)
			}
			if res.Code != c.want {
				t.Fatalf("exit = %d, want %d", res.Code, c.want)
			}
		})
	}
}

func TestVCallMovesVTablesToKeyedSections(t *testing.T) {
	unit, err := cc.Compile(vcallProg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(unit, VCall()); err != nil {
		t.Fatal(err)
	}
	// All three classes share one hierarchy -> one key.
	var keys []uint16
	for _, vt := range unit.VTables {
		if vt.Key == 0 {
			t.Errorf("vtable %s not moved to a keyed section", vt.Symbol)
		}
		keys = append(keys, vt.Key)
	}
	for _, k := range keys {
		if k != keys[0] {
			t.Errorf("hierarchy keys differ: %v", keys)
		}
	}
	asmText := unit.Assembly()
	if !strings.Contains(asmText, "ld.ro") {
		t.Error("no ld.ro emitted")
	}
	if !strings.Contains(asmText, ".section .rodata.key.") {
		t.Error("no keyed section emitted")
	}
}

func TestVCallSeparateHierarchiesGetSeparateKeys(t *testing.T) {
	src := `
class A { virtual m() int { return 1; } }
class B { virtual m() int { return 2; } }
func main() int {
	var a *A = new A;
	var b *B = new B;
	return a.m() + b.m();
}
`
	unit, err := cc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(unit, VCall()); err != nil {
		t.Fatal(err)
	}
	if len(unit.VTables) != 2 || unit.VTables[0].Key == unit.VTables[1].Key {
		t.Errorf("vtables = %+v", unit.VTables)
	}
	img, err := asm.Assemble(unit.Assembly(), asm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res := runImage(t, kernel.FullSystem(), img)
	if !res.Exited || res.Code != 3 {
		t.Fatalf("res = %+v", res)
	}
}

func TestICallBuildsGFPTs(t *testing.T) {
	unit, err := cc.Compile(icallProg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(unit, ICall()); err != nil {
		t.Fatal(err)
	}
	// inc and dbl share a signature; sum2 has its own.
	keys := SigKeys(unit)
	if len(keys) != 2 {
		t.Fatalf("signature keys = %v", keys)
	}
	if len(unit.GFPTs) != 3 {
		t.Fatalf("gfpt entries = %+v", unit.GFPTs)
	}
	byTarget := map[string]cc.GFPTEntry{}
	for _, g := range unit.GFPTs {
		byTarget[g.Target] = g
	}
	if byTarget["inc"].Key != byTarget["dbl"].Key {
		t.Error("inc and dbl must share a type key")
	}
	if byTarget["inc"].Key == byTarget["sum2"].Key {
		t.Error("sum2 must have a different type key")
	}
}

func TestICallRedirectsMaterializations(t *testing.T) {
	unit, err := cc.Compile(icallProg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(unit, ICall()); err != nil {
		t.Fatal(err)
	}
	asmText := unit.Assembly()
	if !strings.Contains(asmText, "__gfpt_inc") {
		t.Error("fptr materialization not redirected to GFPT")
	}
	// Original direct materializations of address-taken functions must
	// be gone from instruction operands ("la tX, inc").
	for _, f := range unit.Funcs {
		for _, l := range f.Lines {
			if l.Op == "la" && len(l.Args) == 2 && l.Args[1] == "inc" {
				t.Error("raw la of address-taken function survived the pass")
			}
		}
	}
}

func TestVTintInsertsRangeChecks(t *testing.T) {
	base, err := cc.Compile(vcallProg)
	if err != nil {
		t.Fatal(err)
	}
	baseLines := countInsts(base)

	hardened, err := cc.Compile(vcallProg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(hardened, VTint()); err != nil {
		t.Fatal(err)
	}
	gotLines := countInsts(hardened)
	vcalls := base.CountMeta(cc.MetaVTableLoad)
	if vcalls == 0 {
		t.Fatal("no vcalls in test program")
	}
	// 4 extra lines (la, bltu, la, bgeu) per vcall + 1 fail handler.
	want := baseLines + 4*vcalls + 1
	if gotLines != want {
		t.Errorf("instrumented lines = %d, want %d", gotLines, want)
	}
	if _, ok := hardened.FindFunc("__vtint_fail"); !ok {
		t.Error("fail handler missing")
	}
}

func TestClassicCFIInstrumentsCalls(t *testing.T) {
	unit, err := cc.Compile(icallProg)
	if err != nil {
		t.Fatal(err)
	}
	nFuncs := len(unit.Funcs)
	icalls := unit.CountMeta(cc.MetaICallJump)
	vcalls := unit.CountMeta(cc.MetaVCallJump)
	baseLines := countInsts(unit)
	if err := Apply(unit, ClassicCFI()); err != nil {
		t.Fatal(err)
	}
	// ID per function + 3 lines per indirect transfer + fail handler.
	want := baseLines + nFuncs + 3*(icalls+vcalls) + 1
	if got := countInsts(unit); got != want {
		t.Errorf("lines = %d, want %d", got, want)
	}
}

func countInsts(u *cc.Unit) int {
	n := 0
	for _, f := range u.Funcs {
		for _, l := range f.Lines {
			if l.Op != "" {
				n++
			}
		}
	}
	return n
}

// Hardened binaries must fail on systems without full ROLoad support,
// in the documented ways.
func TestHardenedBinarySystemMatrix(t *testing.T) {
	img := buildHardened(t, vcallProg, VCall())

	res := runImage(t, kernel.BaselineSystem(), img)
	if res.Signal != kernel.SIGILL {
		t.Errorf("baseline system: %+v, want SIGILL", res)
	}

	res = runImage(t, kernel.ProcessorOnlySystem(), img)
	if res.Signal != kernel.SIGSEGV {
		t.Errorf("processor-only system: %+v, want SIGSEGV", res)
	}

	res = runImage(t, kernel.FullSystem(), img)
	if !res.Exited || res.Code != 24 {
		t.Errorf("full system: %+v, want exit 24", res)
	}
}

// The instrumentation cost ordering that drives the paper's Figures 3
// and 4 must hold per call: ld.ro replaces the existing ld (±1 addi),
// while VTint adds 4 instructions and CFI adds 3 per transfer.
func TestInstrumentationCostOrdering(t *testing.T) {
	run := func(passes ...Pass) uint64 {
		img := buildHardened(t, vcallProg, passes...)
		return runImage(t, kernel.FullSystem(), img).Instret
	}
	base := run()
	vcall := run(VCall())
	vtint := run(VTint())
	if vcall >= vtint {
		t.Errorf("VCall instret %d must be < VTint %d", vcall, vtint)
	}
	if vcall < base {
		t.Errorf("VCall instret %d below baseline %d", vcall, base)
	}

	icallImg := buildHardened(t, icallProg, ICall())
	cfiImg := buildHardened(t, icallProg, ClassicCFI())
	icall := runImage(t, kernel.FullSystem(), icallImg).Instret
	cfi := runImage(t, kernel.FullSystem(), cfiImg).Instret
	if icall >= cfi {
		t.Errorf("ICall instret %d must be < CFI %d", icall, cfi)
	}
}

func TestApplyRecordsPassNames(t *testing.T) {
	unit, err := cc.Compile(icallProg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(unit, ICall(), ClassicCFI()); err != nil {
		t.Fatal(err)
	}
	if len(unit.HardenedBy) != 2 || unit.HardenedBy[0] != "ICall" || unit.HardenedBy[1] != "ClassicCFI" {
		t.Errorf("HardenedBy = %v", unit.HardenedBy)
	}
}

func TestGFPTSymbolMangling(t *testing.T) {
	if GFPTSymbol("A$m") != "__gfpt_A_m" {
		t.Errorf("GFPTSymbol(A$m) = %s", GFPTSymbol("A$m"))
	}
	if GFPTSymbol("plain") != "__gfpt_plain" {
		t.Errorf("GFPTSymbol(plain) = %s", GFPTSymbol("plain"))
	}
}

func BenchmarkVCallPass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		unit, err := cc.Compile(vcallProg)
		if err != nil {
			b.Fatal(err)
		}
		if err := Apply(unit, VCall()); err != nil {
			b.Fatal(err)
		}
	}
}
