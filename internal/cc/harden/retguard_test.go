package harden

import (
	"strings"
	"testing"

	"roload/internal/asm"
	"roload/internal/cc"
	"roload/internal/kernel"
)

const retProg = `
func fib(n int) int {
	if (n < 2) { return n; }
	return fib(n-1) + fib(n-2);
}
func helper(f func(int) int, x int) int { return f(x); }
func main() int {
	print_int(fib(10));
	return helper(fib, 9) + 21; // 34 + 21 = 55
}
`

func TestRetGuardPreservesSemantics(t *testing.T) {
	img := buildHardened(t, retProg, RetGuard())
	res := runImage(t, kernel.FullSystem(), img)
	if !res.Exited {
		t.Fatalf("killed: %v (roload=%v va=%#x)", res.Signal, res.ROLoadViolation, res.FaultVA)
	}
	if res.Code != 55 {
		t.Fatalf("exit = %d, want 55", res.Code)
	}
	if string(res.Stdout) != "55\n" {
		t.Fatalf("stdout = %q", res.Stdout)
	}
	// Returns now execute ld.ro: every call/return pair adds one.
	if res.CPUStats.ROLoads == 0 {
		t.Fatal("no keyed return loads executed")
	}
}

func TestRetGuardComposesWithICall(t *testing.T) {
	img := buildHardened(t, retProg, ICall(), RetGuard())
	res := runImage(t, kernel.FullSystem(), img)
	if !res.Exited || res.Code != 55 {
		t.Fatalf("res = %+v", res)
	}
}

func TestRetGuardComposesWithVCall(t *testing.T) {
	img := buildHardened(t, vcallProg, VCall(), RetGuard())
	res := runImage(t, kernel.FullSystem(), img)
	if !res.Exited || res.Code != 24 {
		t.Fatalf("res = %+v", res)
	}
}

func TestRetGuardEmitsKeyedSites(t *testing.T) {
	unit, err := cc.Compile(retProg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(unit, RetGuard()); err != nil {
		t.Fatal(err)
	}
	if unit.RetGuard == nil || unit.RetGuard.Key != RetKey {
		t.Fatal("RetGuard info missing")
	}
	if unit.RetGuard.NumSite == 0 {
		t.Fatal("no return sites recorded")
	}
	text := unit.Assembly()
	if !strings.Contains(text, ".section .rodata.key.900") {
		t.Error("keyed return-site section missing")
	}
	if !strings.Contains(text, "ld.ro t6, (ra), 900") {
		t.Error("keyed return sequence missing")
	}
	// No raw "call" or "ret" may survive in user functions.
	for _, f := range unit.Funcs {
		for _, l := range f.Lines {
			if l.Op == "call" || l.Op == "ret" {
				t.Errorf("%s: unconverted %s", f.Name, l.Op)
			}
		}
	}
}

// The security property: a stack smash that overwrites saved return
// slots is stopped by the keyed return load.
func TestRetGuardBlocksStackSmash(t *testing.T) {
	victim := `
func evil() int {
	print_str("PWNED");
	exit(66);
	return 0;
}
func vulnerable() int {
	attack_point();   // the "overflow" fires while this frame is live
	return 1;
}
func main() int {
	var r int = vulnerable();
	print_int(r);
	return 0;
}
`
	smash := func(p *kernel.Process) error {
		// Classic stack smash: sweep the stack and replace anything
		// that looks like a code or return-site pointer with evil().
		evil, _ := p.Sym("evil")
		top := uint64(0x7f000000)
		lo := top - 256<<10
		buf, err := p.PeekMem(lo, int(top-lo))
		if err != nil {
			return err
		}
		for off := 0; off+8 <= len(buf); off += 8 {
			var v uint64
			for i := 7; i >= 0; i-- {
				v = v<<8 | uint64(buf[off+i])
			}
			if v >= 0x10000 && v < 0x100000 { // text/rodata range
				if err := p.CorruptUint(lo+uint64(off), evil, 8); err != nil {
					return err
				}
			}
		}
		return nil
	}

	run := func(passes ...Pass) kernel.RunResult {
		t.Helper()
		unit, err := cc.Compile(victim)
		if err != nil {
			t.Fatal(err)
		}
		if err := Apply(unit, passes...); err != nil {
			t.Fatal(err)
		}
		img, err := asm.Assemble(unit.Assembly(), asm.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		cfg := kernel.FullSystem()
		cfg.MaxSteps = 10_000_000
		sys := kernel.NewSystem(cfg)
		p, err := sys.Spawn(img)
		if err != nil {
			t.Fatal(err)
		}
		sys.SetAttackHook(func(proc *kernel.Process) error { return smash(proc) })
		res, err := sys.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	plain := run()
	if !strings.Contains(string(plain.Stdout), "PWNED") {
		t.Fatalf("unprotected stack smash did not hijack: signal=%v stdout=%q", plain.Signal, plain.Stdout)
	}
	guarded := run(RetGuard())
	if !guarded.ROLoadViolation {
		t.Fatalf("RetGuard did not stop the smash: %+v stdout=%q", guarded, guarded.Stdout)
	}
	if guarded.FaultWantKey != RetKey {
		t.Errorf("fault key = %d, want %d", guarded.FaultWantKey, RetKey)
	}
}
