package harden

import (
	"fmt"

	"roload/internal/cc"
)

// RetGuard implements the backward-edge application sketched in the
// paper's Section IV-C: "it can be applied to backward control-flow
// transfers too, where the allowlists are sets of legitimate return
// sites".
//
// The transformation changes the return-address convention:
//
//   - every call site materializes ra as a pointer to a *return-site
//     table entry* in a read-only page keyed RetKey, instead of the raw
//     return address:
//
//     call f                 la   ra, __retsite_N
//     ->   j    f
//     __retret_N:
//
//     (and __retsite_N: .quad __retret_N lives in .rodata.key.<RetKey>)
//
//   - every return loads the real target through ld.ro, so a smashed
//     return slot can only ever name a legitimate return site:
//
//     ret             ->     ld.ro t6, (ra), RetKey
//     jr   t6
//
// The runtime's own call/return sites are converted too (the kernel
// loader runs the same binary), so the whole user-mode program obeys
// the convention. Like the forward-edge schemes, the residual surface
// is reuse of *other* entries in the same allowlist.
type retGuardPass struct{}

// RetGuard returns the backward-edge protection pass.
func RetGuard() Pass { return retGuardPass{} }

func (retGuardPass) Name() string { return "RetGuard" }

// RetKey is the page key of the return-site tables.
const RetKey = 900

func (retGuardPass) Apply(u *cc.Unit) error {
	siteN := 0
	var sites []cc.Line // keyed table entries

	convertCall := func(target string) []cc.Line {
		siteN++
		entry := fmt.Sprintf("__retsite_%d", siteN)
		back := fmt.Sprintf("__retret_%d", siteN)
		sites = append(sites, cc.L(entry), cc.I(".quad", back))
		return []cc.Line{
			cc.I("la", "ra", entry),
			cc.I("j", target),
			cc.L(back),
		}
	}
	convertIndirect := func(l cc.Line, reg string) []cc.Line {
		siteN++
		entry := fmt.Sprintf("__retsite_%d", siteN)
		back := fmt.Sprintf("__retret_%d", siteN)
		sites = append(sites, cc.L(entry), cc.I(".quad", back))
		jump := cc.I("jr", reg)
		jump.Meta = l.Meta
		return []cc.Line{
			cc.I("la", "ra", entry),
			jump,
			cc.L(back),
		}
	}
	retSeq := func() []cc.Line {
		ro := cc.I("ld.ro", "t6", "(ra)", fmt.Sprintf("%d", RetKey))
		ro.Comment = "return site via keyed table"
		return []cc.Line{ro, cc.I("jr", "t6")}
	}

	rewrite(u, func(l cc.Line) []cc.Line {
		switch {
		case l.Op == "call" && len(l.Args) == 1:
			return convertCall(l.Args[0])
		case l.Op == "ret":
			return retSeq()
		case l.Op == "jalr" && len(l.Args) == 1:
			// jalr rs (rd=ra implicitly): an indirect or virtual call.
			return convertIndirect(l, l.Args[0])
		}
		return []cc.Line{l}
	})

	u.RetGuard = &cc.RetGuardInfo{
		Key:     RetKey,
		Sites:   sites,
		NumSite: siteN,
	}
	return nil
}
