// Package harden implements the four program-hardening passes
// evaluated in the paper, operating on the compiler's machine-level
// Unit via the ROLoad-md-style metadata the code generator attaches:
//
//   - VCall  — the paper's virtual-call protection (Section IV-A):
//     vtables move into read-only pages keyed per class hierarchy, and
//     each vtable slot load becomes an ld.ro with the hierarchy key.
//   - ICall  — the paper's type-based forward-edge CFI (Section IV-B):
//     address-taken functions get GFPT entries in read-only pages keyed
//     by function type; function-pointer materializations are redirected
//     to GFPT entries; indirect calls load the real target with ld.ro.
//     VTables share one unified key (the TLB/cache-locality choice the
//     paper credits for ICall's ~0% overhead).
//   - VTint  — the software baseline for VCall: range checks that the
//     vtable pointer targets read-only memory before every vtable load.
//   - ClassicCFI — the software baseline for ICall: an ID word (a nop
//     at ISA level) at each function entry, and a load/compare/branch
//     check before every indirect transfer.
package harden

import (
	"fmt"
	"sort"

	"roload/internal/cc"
	"roload/internal/isa"
)

// Pass transforms a compiled Unit in place.
type Pass interface {
	Name() string
	Apply(u *cc.Unit) error
}

// Apply runs passes in order, recording them on the unit.
func Apply(u *cc.Unit, passes ...Pass) error {
	for _, p := range passes {
		if err := p.Apply(u); err != nil {
			return fmt.Errorf("harden: %s: %w", p.Name(), err)
		}
		u.HardenedBy = append(u.HardenedBy, p.Name())
	}
	return nil
}

// rewrite runs fn over every function's lines, replacing each line
// with the returned slice.
func rewrite(u *cc.Unit, fn func(l cc.Line) []cc.Line) {
	for _, f := range u.Funcs {
		out := make([]cc.Line, 0, len(f.Lines))
		for _, l := range f.Lines {
			out = append(out, fn(l)...)
		}
		f.Lines = out
	}
}

// hierarchyKey returns the ROLoad key for a class's vtable under the
// VCall policy: one key per class hierarchy. A call site whose static
// receiver is Base must accept any vtable in Base's hierarchy (the
// runtime object may be any derived class), so keying finer than the
// hierarchy would fault on legal dispatch.
func hierarchyKey(u *cc.Unit, class string) (uint16, error) {
	info, ok := u.Checked.Classes[class]
	if !ok {
		return 0, fmt.Errorf("unknown class %q", class)
	}
	root := info
	for root.Base != nil {
		root = root.Base
	}
	key := cc.VTableKeyBase + root.ID
	if key > isa.MaxKey {
		return 0, fmt.Errorf("class hierarchy key %d exceeds key space", key)
	}
	return uint16(key), nil
}

// --- VCall -----------------------------------------------------------

type vcallPass struct{}

// VCall returns the paper's virtual-call protection pass.
func VCall() Pass { return vcallPass{} }

func (vcallPass) Name() string { return "VCall" }

func (vcallPass) Apply(u *cc.Unit) error {
	// Move every vtable into the keyed section for its hierarchy.
	for i := range u.VTables {
		key, err := hierarchyKey(u, u.VTables[i].Class)
		if err != nil {
			return err
		}
		u.VTables[i].Key = key
	}
	// Rewrite tagged vtable loads: ld rd, off(rs) -> [addi rs, rs, off;]
	// ld.ro rd, (rs), key. The extra addi mirrors the paper's remark
	// that ld.ro carries no offset immediate.
	var err error
	rewrite(u, func(l cc.Line) []cc.Line {
		if l.Meta == nil || l.Meta.Kind != cc.MetaVTableLoad || err != nil {
			return []cc.Line{l}
		}
		key, kerr := hierarchyKey(u, l.Meta.Class)
		if kerr != nil {
			err = kerr
			return []cc.Line{l}
		}
		return roLoadSeq(l, key)
	})
	return err
}

// roLoadSeq rewrites a tagged "ld rd, off(rs)" line into the ld.ro
// form, preserving the metadata on the ld.ro itself.
func roLoadSeq(l cc.Line, key uint16) []cc.Line {
	rd := l.Args[0]
	rs := l.Meta.Reg
	var out []cc.Line
	if l.Meta.Off != 0 {
		out = append(out, cc.I("addi", rs, rs, fmt.Sprintf("%d", l.Meta.Off)))
	}
	ro := cc.I("ld.ro", rd, "("+rs+")", fmt.Sprintf("%d", key))
	ro.Meta = l.Meta
	ro.Comment = l.Comment
	out = append(out, ro)
	return out
}

// --- ICall -----------------------------------------------------------

type icallPass struct{}

// ICall returns the paper's type-based forward-edge CFI pass.
func ICall() Pass { return icallPass{} }

func (icallPass) Name() string { return "ICall" }

// SigKeys computes the deterministic signature->key assignment used by
// the ICall pass (exported for tests and the attack harness).
func SigKeys(u *cc.Unit) map[string]uint16 {
	sigs := make(map[string]bool)
	for name := range u.Checked.AddressTaken {
		sigs[u.Checked.SigOf[name]] = true
	}
	ordered := make([]string, 0, len(sigs))
	for s := range sigs {
		ordered = append(ordered, s)
	}
	sort.Strings(ordered)
	keys := make(map[string]uint16, len(ordered))
	for i, s := range ordered {
		keys[s] = uint16(cc.GFPTKeyBase + i)
	}
	return keys
}

// GFPTSymbol names the GFPT entry for a function (exported so attacks
// and tests can locate entries).
func GFPTSymbol(fn string) string {
	out := make([]byte, 0, len(fn)+8)
	for i := 0; i < len(fn); i++ {
		c := fn[i]
		if c == '$' {
			out = append(out, '_')
		} else {
			out = append(out, c)
		}
	}
	return "__gfpt_" + string(out)
}

func (icallPass) Apply(u *cc.Unit) error {
	keys := SigKeys(u)
	for _, k := range keys {
		if int(k) > isa.MaxKey {
			return fmt.Errorf("GFPT key %d exceeds key space", k)
		}
	}

	// Build GFPT entries for every address-taken function, grouped by
	// signature key (deterministic order).
	names := make([]string, 0, len(u.Checked.AddressTaken))
	for name := range u.Checked.AddressTaken {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sig := u.Checked.SigOf[name]
		u.GFPTs = append(u.GFPTs, cc.GFPTEntry{
			Symbol: GFPTSymbol(name),
			Target: name,
			Sig:    sig,
			Key:    keys[sig],
		})
	}

	// Unified key for every vtable (paper: "ICall uses a unified key
	// for all VTables", giving better TLB and cache locality).
	for i := range u.VTables {
		u.VTables[i].Key = cc.VTUnifiedKey
	}

	rewrite(u, func(l cc.Line) []cc.Line {
		if l.Meta == nil {
			return []cc.Line{l}
		}
		switch l.Meta.Kind {
		case cc.MetaVTableLoad:
			return roLoadSeq(l, cc.VTUnifiedKey)
		case cc.MetaFPtrMaterialize:
			// la rd, f  ->  la rd, __gfpt_f   (Listing 2 of the paper)
			nl := cc.I("la", l.Args[0], GFPTSymbol(l.Meta.Func))
			nl.Meta = l.Meta
			nl.Comment = "gfpt entry for " + l.Meta.Func
			return []cc.Line{nl}
		case cc.MetaICallJump:
			// Insert the protected load of the real target before the
			// jump (Listing 3, lines 2 and 5).
			key := keys[l.Meta.Sig]
			if key == 0 {
				// No address-taken function has this signature; the
				// call can never be valid. Trap deterministically.
				return []cc.Line{cc.I("ebreak"), l}
			}
			ro := cc.I("ld.ro", l.Meta.Reg, "("+l.Meta.Reg+")", fmt.Sprintf("%d", key))
			ro.Meta = &cc.Meta{Kind: cc.MetaICallJump, Sig: l.Meta.Sig, Reg: l.Meta.Reg}
			ro.Comment = "icall target via gfpt"
			return []cc.Line{ro, l}
		}
		return []cc.Line{l}
	})
	return nil
}

// --- VTint baseline ---------------------------------------------------

type vtintPass struct{}

// VTint returns the software range-check baseline from NDSS'15, ported
// exactly as the paper describes: "range-based checks before VTable
// loading to check whether VTables are loaded from read-only memory".
func VTint() Pass { return vtintPass{} }

func (vtintPass) Name() string { return "VTint" }

func (vtintPass) Apply(u *cc.Unit) error {
	used := false
	n := 0
	rewrite(u, func(l cc.Line) []cc.Line {
		if l.Meta == nil || l.Meta.Kind != cc.MetaVTableLoad {
			return []cc.Line{l}
		}
		used = true
		n++
		reg := l.Meta.Reg
		// la expands to 2 instructions; the whole check adds 6.
		return []cc.Line{
			cc.I("la", "t2", "__ro_start"),
			cc.I("bltu", reg, "t2", "__vtint_fail"),
			cc.I("la", "t2", "__ro_end"),
			cc.I("bgeu", reg, "t2", "__vtint_fail"),
			l,
		}
	})
	if used {
		fail := &cc.MFunc{Name: "__vtint_fail"}
		fail.Lines = []cc.Line{cc.I("ebreak")}
		u.Funcs = append(u.Funcs, fail)
	}
	return nil
}

// --- Classic label-based CFI baseline ----------------------------------

// CFIID is the label embedded at function entries by the ClassicCFI
// baseline. It is encoded inside a "lui zero, CFIID" instruction,
// which the ISA treats as a nop (writes to x0 are discarded) — exactly
// the "ID which is equivalent to nop at the ISA level" of Section V-C1.
const CFIID = 0x7c0de

type cfiPass struct{}

// ClassicCFI returns the label-based CFI baseline the paper ports to
// RISC-V: one shared ID for all indirect-call targets (coarse-grained,
// hence the weaker policy the paper contrasts ICall against).
func ClassicCFI() Pass { return cfiPass{} }

func (cfiPass) Name() string { return "ClassicCFI" }

// cfiIDWord is the raw encoding of "lui zero, CFIID".
func cfiIDWord() uint32 {
	return isa.MustEncode(isa.Inst{Op: isa.LUI, Rd: isa.Zero, Imm: int64(CFIID) << 12})
}

func (cfiPass) Apply(u *cc.Unit) error {
	idWord := cfiIDWord()
	used := false

	// Prepend the ID nop to every function that can be an indirect
	// target (every MiniC function: address-taken sets are a static
	// under-approximation the classic solutions did not rely on).
	for _, f := range u.Funcs {
		f.Lines = append([]cc.Line{func() cc.Line {
			l := cc.I("lui", "zero", fmt.Sprintf("%#x", CFIID))
			l.Comment = "CFI ID (nop)"
			return l
		}()}, f.Lines...)
	}

	rewrite(u, func(l cc.Line) []cc.Line {
		if l.Meta == nil {
			return []cc.Line{l}
		}
		if l.Meta.Kind != cc.MetaICallJump && l.Meta.Kind != cc.MetaVCallJump {
			return []cc.Line{l}
		}
		used = true
		reg := l.Meta.Reg
		// lw from the target (text pages are readable), compare with
		// the expected ID word, trap on mismatch.
		return []cc.Line{
			cc.I("lwu", "t2", "0("+reg+")"),
			cc.I("li", "t3", fmt.Sprintf("%#x", idWord)),
			cc.I("bne", "t2", "t3", "__cfi_fail"),
			l,
		}
	})
	if used {
		fail := &cc.MFunc{Name: "__cfi_fail"}
		fail.Lines = []cc.Line{cc.I("ebreak")}
		u.Funcs = append(u.Funcs, fail)
	}
	return nil
}
