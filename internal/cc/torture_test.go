package cc

import "testing"

// Torture tests: deeper language-feature combinations that exercise
// the checker's layout logic and the stack-machine code generator.

func TestNestedStructs(t *testing.T) {
	res := compileRun(t, `
struct Inner { x int; y int; }
struct Outer { a int; in Inner; b int; }
func main() int {
	var o Outer;
	o.a = 1;
	o.in.x = 10;
	o.in.y = 20;
	o.b = 2;
	var p *Outer = &o;
	p.in.y += 5;
	return o.a + o.in.x + o.in.y + o.b; // 1+10+25+2
}`)
	wantExit(t, res, 38)
}

func TestStructWithArrayField(t *testing.T) {
	res := compileRun(t, `
struct Buf { n int; data [8]int; tail int; }
func main() int {
	var b Buf;
	b.n = 3;
	for (var i int = 0; i < 8; i++) { b.data[i] = i * i; }
	b.tail = 99;
	return b.n + b.data[5] + b.tail; // 3 + 25 + 99
}`)
	wantExit(t, res, 127)
}

func TestArrayOfStructs(t *testing.T) {
	res := compileRun(t, `
struct P { x int; y int; }
var pts [4]P;
func main() int {
	for (var i int = 0; i < 4; i++) {
		pts[i].x = i;
		pts[i].y = i * 10;
	}
	var s int = 0;
	for (var i int = 0; i < 4; i++) { s += pts[i].x + pts[i].y; }
	return s; // (0+0)+(1+10)+(2+20)+(3+30) = 66
}`)
	wantExit(t, res, 66)
}

func TestStructWithFunctionPointerField(t *testing.T) {
	res := compileRun(t, `
struct Handler { id int; fn func(int) int; }
func twice(x int) int { return 2 * x; }
func thrice(x int) int { return 3 * x; }
func main() int {
	var h Handler;
	h.id = 1;
	h.fn = twice;
	var n int = h.fn(10);
	h.fn = thrice;
	n += h.fn(10);
	return n; // 50
}`)
	wantExit(t, res, 50)
}

func TestShadowing(t *testing.T) {
	res := compileRun(t, `
var x int = 100;
func main() int {
	var n int = x;     // global: 100
	{
		var x int = 5;
		n += x;          // local: 5
		{
			var x int = 7;
			n += x;        // inner: 7
		}
		n += x;          // back to 5
	}
	n += x;            // global again
	return n % 251;    // 100+5+7+5+100 = 217
}`)
	wantExit(t, res, 217)
}

func TestDeepExpression(t *testing.T) {
	res := compileRun(t, `
func main() int {
	return ((((1+2)*(3+4)) - ((5-6)*(7-8))) * (((9+10)%(11-4)) + ((12/3)&(14|1)))) % 251;
	// (21 - 1) * ((19%7=5) + (4 & 15 = 4)) = 20*9 = 180
}`)
	wantExit(t, res, 180)
}

func TestOperatorPrecedence(t *testing.T) {
	res := compileRun(t, `
func main() int {
	var n int = 0;
	if (2 + 3 * 4 == 14) { n += 1; }
	if ((2 + 3) * 4 == 20) { n += 2; }
	if (1 << 2 + 1 == 8) { n += 4; }      // shift binds looser than +
	if ((7 & 3 | 4) == 7) { n += 8; }     // & binds tighter than |
	if (10 - 4 - 3 == 3) { n += 16; }     // left assoc
	if (0 - 2 * 3 == 0 - 6) { n += 32; }
	return n;
}`)
	wantExit(t, res, 63)
}

func TestDeepRecursionStack(t *testing.T) {
	res := compileRun(t, `
func down(n int) int {
	var pad [16]int;
	pad[0] = n;
	if (n == 0) { return pad[0]; }
	return down(n - 1) + 1;
}
func main() int { return down(120); }`)
	wantExit(t, res, 120)
}

func TestMutualRecursion(t *testing.T) {
	res := compileRun(t, `
func isEven(n int) int {
	if (n == 0) { return 1; }
	return isOdd(n - 1);
}
func isOdd(n int) int {
	if (n == 0) { return 0; }
	return isEven(n - 1);
}
func main() int { return isEven(10) * 10 + isOdd(7); }`)
	wantExit(t, res, 11)
}

func TestWhileFalseAndEmptyBodies(t *testing.T) {
	res := compileRun(t, `
func nothing() { }
func main() int {
	while (0) { exit(1); }
	nothing();
	for (;0;) { exit(2); }
	return 3;
}`)
	wantExit(t, res, 3)
}

func TestForWithoutInitOrPost(t *testing.T) {
	res := compileRun(t, `
func main() int {
	var i int = 0;
	for (; i < 5;) { i++; }
	return i;
}`)
	wantExit(t, res, 5)
}

func TestNegativeLiteralsAndUnary(t *testing.T) {
	res := compileRun(t, `
func main() int {
	var a int = -5;
	var b int = - -3;
	var c int = ~0;        // -1
	var d int = !5;        // 0
	var e int = !0;        // 1
	print_int(a);
	return (b + c + d + e) - a; // (3-1+0+1) +5 = 8
}`)
	wantExit(t, res, 8)
	if string(res.Stdout) != "-5\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestPointerArithmetic(t *testing.T) {
	res := compileRun(t, `
struct Pair { a int; b int; }
func main() int {
	var xs *int = new int[10];
	for (var i int = 0; i < 10; i++) { xs[i] = i; }
	var p *int = xs + 3;
	var q *int = p + 4;
	var ps *Pair = new Pair[3];
	ps[2].a = 5;
	var pp *Pair = ps + 2;
	return *p + *q + pp.a; // 3 + 7 + 5
}`)
	wantExit(t, res, 15)
}

func TestCompoundAssignOnFields(t *testing.T) {
	res := compileRun(t, `
struct S { v int; }
var g S;
func main() int {
	g.v = 10;
	g.v += 5;
	g.v *= 2;
	g.v -= 3;
	g.v /= 2;      // 13
	g.v %= 8;      // 5
	g.v <<= 3;     // 40
	g.v >>= 1;     // 20
	g.v |= 1;      // 21
	g.v &= 0xFD;   // 21
	g.v ^= 2;      // 23
	return g.v;
}`)
	wantExit(t, res, 23)
}

func TestAggregateAssignRejected(t *testing.T) {
	cases := []string{
		`struct S { a int; } func main() int { var x S; var y S; x = y; return 0; }`,
		`struct S { a int; } func main() int { var x S = 0; return 0; }`,
		`struct S { a int; } func f() S { var x S; return x; }  func main() int { return 0; }`,
		`func main() int { var a [3]int; var b [3]int; a = b; return 0; }`,
	}
	for i, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("case %d compiled", i)
		}
	}
}

func TestClassFieldStruct(t *testing.T) {
	res := compileRun(t, `
struct Pos { x int; y int; }
class Unit {
	at Pos;
	hp int;
	virtual dist() int { return this.at.x + this.at.y; }
}
func main() int {
	var u *Unit = new Unit;
	u.at.x = 3;
	u.at.y = 4;
	u.hp = 10;
	return u.dist() + u.hp;
}`)
	wantExit(t, res, 17)
}

func TestManyLocals(t *testing.T) {
	res := compileRun(t, `
func main() int {
	var a int = 1; var b int = 2; var c int = 3; var d int = 4;
	var e int = 5; var f int = 6; var g int = 7; var h int = 8;
	var i int = 9; var j int = 10; var k int = 11; var l int = 12;
	var arr [32]int;
	for (var z int = 0; z < 32; z++) { arr[z] = z; }
	return a+b+c+d+e+f+g+h+i+j+k+l + arr[31]; // 78 + 31
}`)
	wantExit(t, res, 109)
}

func TestShortCircuitSideEffects(t *testing.T) {
	res := compileRun(t, `
var calls int = 0;
func bump() int { calls++; return 1; }
func main() int {
	var n int = 0;
	if (0 && bump()) { n += 100; }
	if (1 || bump()) { n += 1; }
	if (1 && bump()) { n += 2; }
	if (0 || bump()) { n += 4; }
	return n * 10 + calls; // 7*10 + 2
}`)
	wantExit(t, res, 72)
}

func TestSevenArgs(t *testing.T) {
	res := compileRun(t, `
func sum7(a int, b int, c int, d int, e int, f int, g int) int {
	return a + b + c + d + e + f + g;
}
func main() int { return sum7(1, 2, 3, 4, 5, 6, 7); }`)
	wantExit(t, res, 28)
}

func TestEightArgsRejected(t *testing.T) {
	if _, err := Compile(`
func f(a int, b int, c int, d int, e int, f int, g int, h int) int { return 0; }
func main() int { return 0; }`); err == nil {
		t.Error("8-arg function compiled")
	}
}

func TestCharLiterals(t *testing.T) {
	res := compileRun(t, `
func main() int {
	var c int = 'A';
	var n int = '\n';
	return c + n; // 65 + 10
}`)
	wantExit(t, res, 75)
}

func TestBlockComments(t *testing.T) {
	res := compileRun(t, `
/* leading
   block comment */
func main() int {
	/* inline */ return /* here */ 9; // trailing
}`)
	wantExit(t, res, 9)
}

func TestGlobalInitializers(t *testing.T) {
	res := compileRun(t, `
var a int = 42;
var b int = -7;
var c int;        // zero
var p *int;       // null
func main() int {
	if (p != null) { return 100; }
	return a + b + c; // 35
}`)
	wantExit(t, res, 35)
}

func TestVirtualCallOnBaseSlotAddedInDerived(t *testing.T) {
	res := compileRun(t, `
class A { virtual f() int { return 1; } }
class B extends A {
	virtual f() int { return 2; }
	virtual g() int { return 3; }
}
func main() int {
	var b *B = new B;
	var a *A = b;
	return a.f() * 10 + b.g(); // 2*10 + 3
}`)
	wantExit(t, res, 23)
}
