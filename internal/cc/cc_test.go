package cc

import (
	"strings"
	"testing"

	"roload/internal/asm"
	"roload/internal/kernel"
)

// compileRun compiles MiniC, assembles, and runs it on the fully
// modified system, returning the result.
func compileRun(t *testing.T, src string) kernel.RunResult {
	t.Helper()
	return compileRunOn(t, kernel.FullSystem(), src)
}

func compileRunOn(t *testing.T, cfg kernel.Config, src string) kernel.RunResult {
	t.Helper()
	unit, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	img, err := asm.Assemble(unit.Assembly(), asm.DefaultOptions())
	if err != nil {
		t.Fatalf("assemble: %v\n%s", err, unit.Assembly())
	}
	cfg.MaxSteps = 50_000_000
	sys := kernel.NewSystem(cfg)
	p, err := sys.Spawn(img)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(p)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func wantExit(t *testing.T, res kernel.RunResult, code int) {
	t.Helper()
	if !res.Exited {
		t.Fatalf("killed by %v at %#x (roload=%v)", res.Signal, res.FaultVA, res.ROLoadViolation)
	}
	if res.Code != code {
		t.Fatalf("exit code = %d, want %d (stdout=%q)", res.Code, code, res.Stdout)
	}
}

func TestReturnConstant(t *testing.T) {
	res := compileRun(t, `func main() int { return 42; }`)
	wantExit(t, res, 42)
}

func TestArithmetic(t *testing.T) {
	res := compileRun(t, `
func main() int {
	var a int = 7;
	var b int = 3;
	return a*b + a/b - a%b + (a<<1) - (a>>1) + (a&b) + (a|b) + (a^b);
	// 21 + 2 - 1 + 14 - 3 + 3 + 7 + 4 = 47
}`)
	wantExit(t, res, 47)
}

func TestComparisonsAndLogic(t *testing.T) {
	res := compileRun(t, `
func main() int {
	var n int = 0;
	if (1 < 2) { n = n + 1; }
	if (2 <= 2) { n = n + 1; }
	if (3 > 2) { n = n + 1; }
	if (2 >= 3) { n = n + 100; }
	if (1 == 1 && 2 != 3) { n = n + 1; }
	if (0 || 5) { n = n + 1; }
	if (!0) { n = n + 1; }
	return n;
}`)
	wantExit(t, res, 6)
}

func TestLoops(t *testing.T) {
	res := compileRun(t, `
func main() int {
	var sum int = 0;
	for (var i int = 1; i <= 10; i++) {
		sum += i;
	}
	var j int = 0;
	while (j < 5) {
		j++;
		if (j == 3) { continue; }
		if (j == 5) { break; }
		sum += j;
	}
	return sum; // 55 + 1+2+4 = 62
}`)
	wantExit(t, res, 62)
}

func TestFunctionsAndRecursion(t *testing.T) {
	res := compileRun(t, `
func fib(n int) int {
	if (n < 2) { return n; }
	return fib(n-1) + fib(n-2);
}
func main() int { return fib(10); }`)
	wantExit(t, res, 55)
}

func TestGlobalsAndArrays(t *testing.T) {
	res := compileRun(t, `
var counter int = 5;
var table [8]int;
func main() int {
	counter += 2;
	for (var i int = 0; i < 8; i++) {
		table[i] = i * i;
	}
	return counter + table[7]; // 7 + 49
}`)
	wantExit(t, res, 56)
}

func TestPointers(t *testing.T) {
	res := compileRun(t, `
func set(p *int, v int) { *p = v; }
func main() int {
	var x int = 1;
	set(&x, 30);
	var p *int = &x;
	*p = *p + 12;
	return x;
}`)
	wantExit(t, res, 42)
}

func TestStructs(t *testing.T) {
	res := compileRun(t, `
struct Point { x int; y int; }
func main() int {
	var p Point;
	p.x = 11;
	p.y = 31;
	var q *Point = &p;
	q.x += 1;
	return q.x + p.y;
}`)
	wantExit(t, res, 43)
}

func TestHeapAllocation(t *testing.T) {
	res := compileRun(t, `
struct Node { val int; next *Node; }
func main() int {
	var head *Node = null;
	for (var i int = 1; i <= 5; i++) {
		var n *Node = new Node;
		n.val = i;
		n.next = head;
		head = n;
	}
	var sum int = 0;
	while (head != null) {
		sum += head.val;
		head = head.next;
	}
	return sum;
}`)
	wantExit(t, res, 15)
}

func TestNewArray(t *testing.T) {
	res := compileRun(t, `
func main() int {
	var a *int = new int[100];
	for (var i int = 0; i < 100; i++) { a[i] = i; }
	var s int = 0;
	for (var i int = 0; i < 100; i++) { s += a[i]; }
	return s % 251; // 4950 % 251 = 181
}`)
	wantExit(t, res, 181)
}

func TestVirtualDispatch(t *testing.T) {
	res := compileRun(t, `
class Shape {
	w int;
	h int;
	virtual area() int { return 0; }
	virtual scale() int { return 1; }
}
class Rect extends Shape {
	virtual area() int { return this.w * this.h; }
}
class Tri extends Rect {
	virtual area() int { return this.w * this.h / 2; }
	virtual scale() int { return 2; }
}
func measure(s *Shape) int { return s.area() * s.scale(); }
func main() int {
	var r *Rect = new Rect;
	r.w = 6; r.h = 7;
	var t *Tri = new Tri;
	t.w = 6; t.h = 8;
	var s *Shape = new Shape;
	return measure(r) + measure(t) + measure(s); // 42 + 48 + 0
}`)
	wantExit(t, res, 90)
}

func TestFunctionPointers(t *testing.T) {
	res := compileRun(t, `
func inc(x int) int { return x + 1; }
func dbl(x int) int { return x * 2; }
func apply(f func(int) int, x int) int { return f(x); }
func main() int {
	var f func(int) int = inc;
	var g func(int) int = dbl;
	var n int = apply(f, 10) + apply(g, 10); // 11 + 20
	f = dbl;
	n += f(5); // 10
	return n;
}`)
	wantExit(t, res, 41)
}

func TestFunctionPointerTable(t *testing.T) {
	res := compileRun(t, `
func add(a int, b int) int { return a + b; }
func sub(a int, b int) int { return a - b; }
func mul(a int, b int) int { return a * b; }
var ops [3]func(int, int) int;
func main() int {
	ops[0] = add;
	ops[1] = sub;
	ops[2] = mul;
	var n int = 0;
	for (var i int = 0; i < 3; i++) {
		n += ops[i](10, 3);
	}
	return n; // 13 + 7 + 30
}`)
	wantExit(t, res, 50)
}

func TestPrintBuiltins(t *testing.T) {
	res := compileRun(t, `
func main() int {
	print_int(123);
	print_int(0-45);
	print_str("done");
	return 0;
}`)
	wantExit(t, res, 0)
	if got := string(res.Stdout); got != "123\n-45\ndone" {
		t.Errorf("stdout = %q", got)
	}
}

func TestExitBuiltin(t *testing.T) {
	res := compileRun(t, `func main() int { exit(9); return 1; }`)
	wantExit(t, res, 9)
}

func TestSizeof(t *testing.T) {
	res := compileRun(t, `
struct Pair { a int; b int; }
class C { x int; virtual m() int { return 0; } }
func main() int {
	return sizeof(int) + sizeof(*int) + sizeof(Pair) + sizeof(C);
	// 8 + 8 + 16 + 16 (vptr + x)
}`)
	wantExit(t, res, 48)
}

func TestStringEscapes(t *testing.T) {
	res := compileRun(t, `
func main() int {
	print_str("a\tb\n");
	return 0;
}`)
	if got := string(res.Stdout); got != "a\tb\n" {
		t.Errorf("stdout = %q", got)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no main", `func foo() int { return 1; }`},
		{"undefined var", `func main() int { return x; }`},
		{"undefined func", `func main() int { return foo(); }`},
		{"type mismatch assign", `func main() int { var p *int = 5; return 0; }`},
		{"wrong arg count", `func f(a int) int { return a; } func main() int { return f(1,2); }`},
		{"bad member", `struct S { a int; } func main() int { var s S; return s.b; }`},
		{"break outside loop", `func main() int { break; return 0; }`},
		{"call non-function", `func main() int { var x int; return x(); }`},
		{"redefine", `func f() int { return 1; } func f() int { return 2; } func main() int { return 0; }`},
		{"unknown type", `func main() int { var x Foo; return 0; }`},
		{"bad override", `class A { virtual m() int { return 1; } } class B extends A { virtual m(x int) int { return x; } } func main() int { return 0; }`},
		{"class extends unknown", `class B extends A { } func main() int { return 0; }`},
		{"deref int", `func main() int { var x int; return *x; }`},
		{"assign to rvalue", `func main() int { 5 = 6; return 0; }`},
		{"struct by value param", `struct S { a int; } func f(s S) int { return 0; } func main() int { return 0; }`},
		{"shadow builtin", `func print_int(x int) int { return x; } func main() int { return 0; }`},
		{"return value from void", `func f() { return 5; } func main() int { return 0; }`},
		{"missing return value", `func f() int { return; } func main() int { return 0; }`},
	}
	for _, c := range cases {
		if _, err := Compile(c.src); err == nil {
			t.Errorf("%s: compiled without error", c.name)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`func main() int { return 1 }`,                // missing ;
		`func main( int { return 1; }`,                // bad params
		`func main() int { if 1 {} }`,                 // missing parens
		`struct S { }`,                                // ok actually? empty struct allowed... keep
		`func main() int {`,                           // unterminated
		`var x = ;`,                                   // missing type
		`func main() int { var a [0]int; return 0; }`, // zero-size array
		`clazz X {}`,                                  // unknown decl
		`func main() int { return 1 ? 2 : 3; }`,       // no ternary
	}
	for i, src := range cases {
		if i == 3 {
			continue // empty struct is legal
		}
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d parsed without error: %s", i, src)
		}
	}
}

func TestLexer(t *testing.T) {
	toks, err := Lex(`foo 123 0x1f "s\n" 'a' + <<= // comment
/* block
comment */ bar`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tk := range toks {
		if tk.Kind == TokEOF {
			break
		}
		kinds = append(kinds, tk.String())
	}
	want := []string{`"foo"`, "123", "31", `"s\n"`, "97", `"+"`, `"<<="`, `"bar"`}
	if len(kinds) != len(want) {
		t.Fatalf("tokens = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, kinds[i], want[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{"\"unterminated", "'unterminated", "@", "'ab'"}
	for _, src := range cases {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded", src)
		}
	}
}

// Metadata plumbing: the compiler must tag the sensitive operations.
func TestSensitiveMetadata(t *testing.T) {
	unit, err := Compile(`
class A { virtual m() int { return 1; } }
func f(x int) int { return x; }
func main() int {
	var a *A = new A;
	var g func(int) int = f;
	return a.m() + g(2);
}`)
	if err != nil {
		t.Fatal(err)
	}
	if n := unit.CountMeta(MetaVTableLoad); n != 1 {
		t.Errorf("vtable loads tagged = %d, want 1", n)
	}
	if n := unit.CountMeta(MetaVCallJump); n != 1 {
		t.Errorf("vcall jumps tagged = %d, want 1", n)
	}
	if n := unit.CountMeta(MetaICallJump); n != 1 {
		t.Errorf("icall jumps tagged = %d, want 1", n)
	}
	if n := unit.CountMeta(MetaFPtrMaterialize); n != 1 {
		t.Errorf("fptr materializations tagged = %d, want 1", n)
	}
	// Address-taken set must include f and the virtual method.
	if _, ok := unit.Checked.AddressTaken["f"]; !ok {
		t.Error("f not marked address-taken")
	}
	if _, ok := unit.Checked.AddressTaken["A$m"]; !ok {
		t.Error("A$m not marked address-taken")
	}
}

// The unhardened binary must also run on the baseline system —
// backward compatibility before any instrumentation.
func TestUnhardenedRunsOnBaseline(t *testing.T) {
	src := `
class A { virtual m() int { return 21; } }
func main() int {
	var a *A = new A;
	return a.m() * 2;
}`
	res := compileRunOn(t, kernel.BaselineSystem(), src)
	wantExit(t, res, 42)
}

func TestVTableInRodataByDefault(t *testing.T) {
	unit, err := Compile(`
class A { virtual m() int { return 1; } }
func main() int { var a *A = new A; return a.m(); }`)
	if err != nil {
		t.Fatal(err)
	}
	asmText := unit.Assembly()
	if !strings.Contains(asmText, "__vt_A") {
		t.Fatal("vtable symbol missing")
	}
	// Must be in plain .rodata (between __ro_start and keyed sections).
	img, err := asm.Assemble(asmText, asm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	vt := img.Symbols["__vt_A"]
	ro, ok := img.FindSection(".rodata")
	if !ok || vt < ro.VA || vt >= ro.VA+ro.Size {
		t.Errorf("__vt_A at %#x not inside .rodata", vt)
	}
}

func TestMethodsCallingMethods(t *testing.T) {
	res := compileRun(t, `
class Counter {
	n int;
	virtual bump() int { this.n = this.n + 1; return this.n; }
	virtual bump2() int { return this.bump() + this.bump(); }
}
func main() int {
	var c *Counter = new Counter;
	return c.bump2(); // 1 + 2
}`)
	wantExit(t, res, 3)
}

func TestInheritedFields(t *testing.T) {
	res := compileRun(t, `
class Base { a int; virtual get() int { return this.a; } }
class Mid extends Base { b int; virtual get() int { return this.a + this.b; } }
class Leaf extends Mid { c int; virtual get() int { return this.a + this.b + this.c; } }
func main() int {
	var l *Leaf = new Leaf;
	l.a = 1; l.b = 2; l.c = 4;
	var b *Base = l;
	return b.get();
}`)
	wantExit(t, res, 7)
}

func BenchmarkCompileFib(b *testing.B) {
	src := `
func fib(n int) int {
	if (n < 2) { return n; }
	return fib(n-1) + fib(n-2);
}
func main() int { return fib(10); }`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}
