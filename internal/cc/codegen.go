package cc

import (
	"fmt"
	"strconv"
)

// codegen translates a checked program into a Unit. The generator is a
// simple stack machine: every expression leaves its value in t0, with
// intermediate values spilled to the hardware stack. This keeps the
// baseline, VCall, ICall, VTint and CFI variants structurally
// identical except for the instrumentation under study, which is what
// the paper's relative-overhead measurements require.
type codegen struct {
	chk    *Checked
	unit   *Unit
	fn     *MFunc
	decl   *FuncDecl
	labelN int
	brk    []string // break label stack
	cont   []string // continue label stack
	strs   map[string]string
}

// Compile parses, checks, and compiles MiniC source into a Unit.
func Compile(src string) (*Unit, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	chk, err := Check(prog)
	if err != nil {
		return nil, err
	}
	return Generate(chk)
}

// Generate lowers a checked program.
func Generate(chk *Checked) (*Unit, error) {
	g := &codegen{
		chk:  chk,
		unit: &Unit{Checked: chk},
		strs: make(map[string]string),
	}
	// vtables (deterministic class order; root computed for keying).
	for _, name := range chk.ClassOrder {
		info := chk.Classes[name]
		root := info
		for root.Base != nil {
			root = root.Base
		}
		def := VTableDef{
			Class:   name,
			Symbol:  "__vt_" + name,
			ClassID: info.ID,
			Root:    root.Decl.Name,
		}
		for _, m := range info.VTable {
			def.Slots = append(def.Slots, m.Mangled)
		}
		g.unit.VTables = append(g.unit.VTables, def)
	}
	// globals
	for _, gv := range chk.Prog.Globals {
		size := g.sizeOf(gv.Type)
		if gv.Init != nil {
			v, _ := constInt(gv.Init) // null initializer folds to 0
			g.unit.Data = append(g.unit.Data, L("g_"+gv.Name), I(".quad", itoa(v)))
		} else {
			g.unit.Bss = append(g.unit.Bss,
				L("g_"+gv.Name), I(".space", itoa(align8(size))))
		}
	}
	// functions (top-level then methods, stable order)
	var fns []*FuncDecl
	fns = append(fns, chk.Prog.Funcs...)
	for _, name := range chk.ClassOrder {
		fns = append(fns, chk.Classes[name].Decl.Methods...)
	}
	for _, f := range fns {
		if err := g.genFunc(f); err != nil {
			return nil, err
		}
	}
	return g.unit, nil
}

func (g *codegen) sizeOf(t *Type) int64 {
	c := &checker{out: g.chk}
	return c.sizeOf(t)
}

func align8(n int64) int64 {
	if n%8 == 0 {
		return n
	}
	return n + 8 - n%8
}

func align16(n int64) int64 {
	if n%16 == 0 {
		return n
	}
	return n + 16 - n%16
}

func (g *codegen) emit(op string, args ...string) *Line {
	g.fn.Lines = append(g.fn.Lines, I(op, args...))
	return &g.fn.Lines[len(g.fn.Lines)-1]
}

func (g *codegen) label(l string) {
	g.fn.Lines = append(g.fn.Lines, L(l))
}

func (g *codegen) newLabel(hint string) string {
	g.labelN++
	return fmt.Sprintf(".L%s_%s_%d", g.fn.Name, hint, g.labelN)
}

// push spills t0 to the stack.
func (g *codegen) push() {
	g.emit("addi", "sp", "sp", "-8")
	g.emit("sd", "t0", "0(sp)")
}

// pop restores the most recent spill into reg.
func (g *codegen) pop(reg string) {
	g.emit("ld", reg, "0(sp)")
	g.emit("addi", "sp", "sp", "8")
}

func (g *codegen) strLabel(s string) string {
	if l, ok := g.strs[s]; ok {
		return l
	}
	l := fmt.Sprintf("__str_%d", len(g.strs))
	g.strs[s] = l
	g.unit.RoData = append(g.unit.RoData, L(l), I(".asciz", strconv.Quote(s)))
	return l
}

func (g *codegen) genFunc(f *FuncDecl) error {
	g.fn = &MFunc{Name: f.Mangled, Sig: f.Sig()}
	g.decl = f
	g.unit.Funcs = append(g.unit.Funcs, g.fn)

	frame := align16(16 + f.frameSize)
	g.emit("addi", "sp", "sp", itoa(-frame))
	g.emit("sd", "ra", itoa(frame-8)+"(sp)")
	g.emit("sd", "s0", itoa(frame-16)+"(sp)")
	g.emit("addi", "s0", "sp", itoa(frame))

	// Spill incoming arguments into their frame slots. The checker
	// assigned offsets in declaration order ("this" first for methods),
	// one 8-byte slot per parameter (the checker rejects aggregates).
	argReg := 0
	cursor := int64(0)
	spillNext := func() {
		cursor += 8
		g.emit("sd", fmt.Sprintf("a%d", argReg), g.frameAddr(cursor))
		argReg++
	}
	if f.Class != "" {
		spillNext()
	}
	for range f.Params {
		spillNext()
	}

	if err := g.genBlock(f.Body); err != nil {
		return err
	}
	// Implicit return (void functions and fall-through).
	g.genEpilogue()
	return nil
}

// frameAddr renders the memory operand for a checker frame offset.
// The frame below s0 holds [ra][saved s0][locals...]: the first local
// (checker offset 8) lives at s0-24, below the two saved registers.
func (g *codegen) frameAddr(off int64) string {
	return itoa(-(off + 16)) + "(s0)"
}

func (g *codegen) genEpilogue() {
	frame := align16(16 + g.decl.frameSize)
	g.emit("ld", "ra", itoa(frame-8)+"(sp)")
	g.emit("ld", "s0", itoa(frame-16)+"(sp)")
	g.emit("addi", "sp", "sp", itoa(frame))
	g.emit("ret")
}

func (g *codegen) genBlock(b *BlockStmt) error {
	for _, s := range b.Stmts {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *codegen) genStmt(s Stmt) error {
	switch s := s.(type) {
	case *BlockStmt:
		return g.genBlock(s)

	case *DeclStmt:
		if s.Decl.Init == nil {
			// Zero-initialize scalar locals for determinism.
			if s.Decl.Type.Kind != TypeArray && s.Decl.Type.Kind != TypeStruct && s.Decl.Type.Kind != TypeClass {
				g.emit("sd", "zero", g.frameAddr(s.Decl.frameOffset))
			}
			return nil
		}
		if err := g.genExpr(s.Decl.Init); err != nil {
			return err
		}
		g.emit("sd", "t0", g.frameAddr(s.Decl.frameOffset))
		return nil

	case *ExprStmt:
		return g.genExpr(s.X)

	case *AssignStmt:
		return g.genAssign(s)

	case *ReturnStmt:
		if s.X != nil {
			if err := g.genExpr(s.X); err != nil {
				return err
			}
			g.emit("mv", "a0", "t0")
		}
		g.genEpilogue()
		return nil

	case *IfStmt:
		elseL := g.newLabel("else")
		endL := g.newLabel("endif")
		if err := g.genExpr(s.Cond); err != nil {
			return err
		}
		g.emit("beqz", "t0", elseL)
		if err := g.genBlock(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			g.emit("j", endL)
		}
		g.label(elseL)
		if s.Else != nil {
			if err := g.genStmt(s.Else); err != nil {
				return err
			}
			g.label(endL)
		}
		return nil

	case *WhileStmt:
		head := g.newLabel("while")
		end := g.newLabel("endwhile")
		g.brk = append(g.brk, end)
		g.cont = append(g.cont, head)
		g.label(head)
		if err := g.genExpr(s.Cond); err != nil {
			return err
		}
		g.emit("beqz", "t0", end)
		if err := g.genBlock(s.Body); err != nil {
			return err
		}
		g.emit("j", head)
		g.label(end)
		g.brk = g.brk[:len(g.brk)-1]
		g.cont = g.cont[:len(g.cont)-1]
		return nil

	case *ForStmt:
		head := g.newLabel("for")
		post := g.newLabel("forpost")
		end := g.newLabel("endfor")
		if s.Init != nil {
			if err := g.genStmt(s.Init); err != nil {
				return err
			}
		}
		g.brk = append(g.brk, end)
		g.cont = append(g.cont, post)
		g.label(head)
		if s.Cond != nil {
			if err := g.genExpr(s.Cond); err != nil {
				return err
			}
			g.emit("beqz", "t0", end)
		}
		if err := g.genBlock(s.Body); err != nil {
			return err
		}
		g.label(post)
		if s.Post != nil {
			if err := g.genStmt(s.Post); err != nil {
				return err
			}
		}
		g.emit("j", head)
		g.label(end)
		g.brk = g.brk[:len(g.brk)-1]
		g.cont = g.cont[:len(g.cont)-1]
		return nil

	case *BreakStmt:
		g.emit("j", g.brk[len(g.brk)-1])
		return nil

	case *ContinueStmt:
		g.emit("j", g.cont[len(g.cont)-1])
		return nil
	}
	return fmt.Errorf("cc: cannot generate statement %T", s)
}

func (g *codegen) genAssign(s *AssignStmt) error {
	// Compute the destination address, spill it, evaluate the value.
	if err := g.genAddr(s.LHS); err != nil {
		return err
	}
	g.push()
	if s.Op != "=" {
		// Compound: load current value first.
		g.emit("ld", "t0", "0(sp)") // address (keep spilled)
		g.emit("ld", "t0", "0(t0)")
		g.push() // current value
		if err := g.genExpr(s.RHS); err != nil {
			return err
		}
		g.emit("mv", "t1", "t0")
		g.pop("t0") // current value
		op := map[string]string{
			"+=": "add", "-=": "sub", "*=": "mul", "/=": "div", "%=": "rem",
			"&=": "and", "|=": "or", "^=": "xor", "<<=": "sll", ">>=": "sra",
		}[s.Op]
		g.emit(op, "t0", "t0", "t1")
	} else {
		if err := g.genExpr(s.RHS); err != nil {
			return err
		}
	}
	g.pop("t1") // destination address
	g.storeTo(s.LHS.TypeOf(), "t1")
	return nil
}

// storeTo writes t0 through the address in reg with the width of t.
func (g *codegen) storeTo(t *Type, reg string) {
	g.emit("sd", "t0", "0("+reg+")")
	_ = t // all MiniC scalars are 8 bytes
}

// genAddr leaves the address of an lvalue in t0.
func (g *codegen) genAddr(e Expr) error {
	switch e := e.(type) {
	case *Ident:
		switch e.Kind {
		case IdentLocal, IdentParam:
			g.emit("addi", "t0", "s0", itoa(-(e.Offset + 16)))
		case IdentGlobal:
			g.emit("la", "t0", "g_"+e.Name)
		default:
			return errf(e.Line, "cannot take address of function %s here", e.Name)
		}
		return nil

	case *Unary:
		if e.Op != "*" {
			return errf(e.Line, "not an lvalue")
		}
		return g.genExpr(e.X)

	case *Index:
		// base address/value
		xt := e.X.TypeOf()
		if xt.Kind == TypeArray {
			if err := g.genAddr(e.X); err != nil {
				return err
			}
		} else { // pointer: use its value
			if err := g.genExpr(e.X); err != nil {
				return err
			}
		}
		g.push()
		if err := g.genExpr(e.I); err != nil {
			return err
		}
		size := g.sizeOf(e.TypeOf())
		if xt.Kind == TypePointer && (xt.Elem.Kind == TypeStruct || xt.Elem.Kind == TypeClass) {
			size = g.sizeOf(xt.Elem)
		}
		g.scaleT0(size)
		g.pop("t1")
		g.emit("add", "t0", "t1", "t0")
		return nil

	case *Member:
		xt := e.X.TypeOf()
		if xt.Kind == TypePointer {
			if err := g.genExpr(e.X); err != nil {
				return err
			}
		} else {
			if err := g.genAddr(e.X); err != nil {
				return err
			}
		}
		if e.Off != 0 {
			g.emit("addi", "t0", "t0", itoa(e.Off))
		}
		return nil
	}
	return errf(e.Pos(), "expression is not addressable")
}

// scaleT0 multiplies t0 by size (shift when a power of two).
func (g *codegen) scaleT0(size int64) {
	switch size {
	case 1:
	case 8:
		g.emit("slli", "t0", "t0", "3")
	case 2:
		g.emit("slli", "t0", "t0", "1")
	case 4:
		g.emit("slli", "t0", "t0", "2")
	default:
		g.emit("li", "t1", itoa(size))
		g.emit("mul", "t0", "t0", "t1")
	}
}

// genExpr leaves the expression value in t0.
func (g *codegen) genExpr(e Expr) error {
	switch e := e.(type) {
	case *IntLit:
		g.emit("li", "t0", itoa(e.Val))
		return nil

	case *StrLit:
		g.emit("la", "t0", g.strLabel(e.Val))
		return nil

	case *NullLit:
		g.emit("li", "t0", "0")
		return nil

	case *SizeofExpr:
		g.emit("li", "t0", itoa(e.Size))
		return nil

	case *Ident:
		if e.Kind == IdentFunc {
			// Function address materialization — the sensitive pattern
			// the ICall pass rewrites (Listing 2 in the paper).
			ln := g.emit("la", "t0", e.Func.Mangled)
			ln.Meta = &Meta{
				Kind: MetaFPtrMaterialize,
				Func: e.Func.Mangled,
				Sig:  e.Func.Sig(),
				Reg:  "t0",
			}
			return nil
		}
		if e.TypeOf().Kind == TypeArray {
			return g.genAddr(e)
		}
		if err := g.genAddr(e); err != nil {
			return err
		}
		g.emit("ld", "t0", "0(t0)")
		return nil

	case *Unary:
		switch e.Op {
		case "&":
			if id, ok := e.X.(*Ident); ok && id.Kind == IdentFunc {
				ln := g.emit("la", "t0", id.Func.Mangled)
				ln.Meta = &Meta{Kind: MetaFPtrMaterialize, Func: id.Func.Mangled, Sig: id.Func.Sig(), Reg: "t0"}
				return nil
			}
			return g.genAddr(e.X)
		case "*":
			if err := g.genExpr(e.X); err != nil {
				return err
			}
			g.emit("ld", "t0", "0(t0)")
			return nil
		case "-":
			if err := g.genExpr(e.X); err != nil {
				return err
			}
			g.emit("neg", "t0", "t0")
			return nil
		case "~":
			if err := g.genExpr(e.X); err != nil {
				return err
			}
			g.emit("not", "t0", "t0")
			return nil
		case "!":
			if err := g.genExpr(e.X); err != nil {
				return err
			}
			g.emit("seqz", "t0", "t0")
			return nil
		}
		return errf(e.Line, "bad unary %s", e.Op)

	case *Binary:
		return g.genBinary(e)

	case *Index, *Member:
		if err := g.genAddr(e); err != nil {
			return err
		}
		// Aggregate-typed member/index expressions evaluate to their
		// address (like arrays); scalars load through it.
		t := e.(Expr).TypeOf()
		if t.Kind != TypeStruct && t.Kind != TypeClass && t.Kind != TypeArray {
			g.emit("ld", "t0", "0(t0)")
		}
		return nil

	case *New:
		if e.Count != nil {
			if err := g.genExpr(e.Count); err != nil {
				return err
			}
			g.scaleT0(e.AllocSize)
		} else {
			g.emit("li", "t0", itoa(e.AllocSize))
		}
		g.emit("mv", "a0", "t0")
		g.emit("call", "__malloc")
		if e.AllocType.Kind == TypeClass && !e.IsArray {
			// Install the vptr (object construction).
			g.emit("la", "t1", "__vt_"+e.TypeName)
			g.emit("sd", "t1", "0(a0)")
		}
		g.emit("mv", "t0", "a0")
		return nil

	case *Call:
		return g.genCall(e)
	}
	return errf(e.Pos(), "cannot generate expression")
}

func (g *codegen) genBinary(e *Binary) error {
	// Short-circuit logicals.
	if e.Op == "&&" || e.Op == "||" {
		done := g.newLabel("sc")
		if err := g.genExpr(e.X); err != nil {
			return err
		}
		g.emit("snez", "t0", "t0")
		if e.Op == "&&" {
			g.emit("beqz", "t0", done)
		} else {
			g.emit("bnez", "t0", done)
		}
		if err := g.genExpr(e.Y); err != nil {
			return err
		}
		g.emit("snez", "t0", "t0")
		g.label(done)
		return nil
	}

	if err := g.genExpr(e.X); err != nil {
		return err
	}
	g.push()
	if err := g.genExpr(e.Y); err != nil {
		return err
	}

	// Pointer arithmetic scaling.
	xt, yt := e.X.TypeOf(), e.Y.TypeOf()
	if (e.Op == "+" || e.Op == "-") && xt.Kind == TypePointer && yt.Kind == TypeInt {
		g.scaleT0(g.sizeOf(xt.Elem))
	}

	g.emit("mv", "t1", "t0")
	g.pop("t0")
	switch e.Op {
	case "+":
		g.emit("add", "t0", "t0", "t1")
	case "-":
		g.emit("sub", "t0", "t0", "t1")
	case "*":
		g.emit("mul", "t0", "t0", "t1")
	case "/":
		g.emit("div", "t0", "t0", "t1")
	case "%":
		g.emit("rem", "t0", "t0", "t1")
	case "&":
		g.emit("and", "t0", "t0", "t1")
	case "|":
		g.emit("or", "t0", "t0", "t1")
	case "^":
		g.emit("xor", "t0", "t0", "t1")
	case "<<":
		g.emit("sll", "t0", "t0", "t1")
	case ">>":
		g.emit("sra", "t0", "t0", "t1")
	case "==":
		g.emit("sub", "t0", "t0", "t1")
		g.emit("seqz", "t0", "t0")
	case "!=":
		g.emit("sub", "t0", "t0", "t1")
		g.emit("snez", "t0", "t0")
	case "<":
		g.emit("slt", "t0", "t0", "t1")
	case ">":
		g.emit("slt", "t0", "t1", "t0")
	case "<=":
		g.emit("slt", "t0", "t1", "t0")
		g.emit("xori", "t0", "t0", "1")
	case ">=":
		g.emit("slt", "t0", "t0", "t1")
		g.emit("xori", "t0", "t0", "1")
	default:
		return errf(e.Line, "bad binary operator %s", e.Op)
	}
	return nil
}

// genCall evaluates arguments onto the stack, moves them into a-regs,
// and emits the appropriate call form with metadata.
func (g *codegen) genCall(e *Call) error {
	if e.Builtin != "" {
		if len(e.Args) > 0 {
			if err := g.genExpr(e.Args[0]); err != nil {
				return err
			}
			g.emit("mv", "a0", "t0")
		}
		g.emit("call", map[string]string{
			"print_int":    "__print_int",
			"print_str":    "__print_str",
			"exit":         "__exit",
			"attack_point": "__attack_point",
		}[e.Builtin])
		g.emit("mv", "t0", "a0")
		return nil
	}

	// Virtual call: receiver, then args.
	if e.Virtual {
		m := e.Fun.(*Member)
		recv := m.X
		if recv.TypeOf().Kind == TypePointer {
			if err := g.genExpr(recv); err != nil {
				return err
			}
		} else {
			if err := g.genAddr(recv); err != nil {
				return err
			}
		}
		g.push() // receiver
		for _, a := range e.Args {
			if err := g.genExpr(a); err != nil {
				return err
			}
			g.push()
		}
		for i := len(e.Args) - 1; i >= 0; i-- {
			g.pop(fmt.Sprintf("a%d", i+1))
		}
		g.pop("a0") // this

		// Register choice: when the argument registers leave a4/a5 free
		// (receiver + up to 3 args), the vtable sequence uses them so
		// that a rewritten ld.ro is eligible for the compressed c.ld.ro
		// encoding (the RVC register set is x8..x15); otherwise fall
		// back to t0/t1.
		base, target := "t0", "t1"
		if len(e.Args) <= 3 {
			base, target = "a5", "a4"
		}
		// vptr load (the object is writable memory: a plain ld).
		g.emit("ld", base, "0(a0)").Comment = "vptr"
		// vtable slot load — the sensitive load (ROLoad-md metadata).
		ln := g.emit("ld", target, itoa(int64(e.Slot)*8)+"("+base+")")
		ln.Meta = &Meta{
			Kind:  MetaVTableLoad,
			Class: e.Class,
			Slot:  e.Slot,
			Reg:   base,
			Off:   int64(e.Slot) * 8,
			Sig:   e.FType.Sig(),
		}
		ln.Comment = "vtable slot " + itoa(int64(e.Slot))
		jump := g.emit("jalr", target)
		jump.Meta = &Meta{Kind: MetaVCallJump, Class: e.Class, Slot: e.Slot, Reg: target, Sig: e.FType.Sig()}
		g.emit("mv", "t0", "a0")
		return nil
	}

	// Direct call.
	if e.Direct != nil {
		for _, a := range e.Args {
			if err := g.genExpr(a); err != nil {
				return err
			}
			g.push()
		}
		for i := len(e.Args) - 1; i >= 0; i-- {
			g.pop(fmt.Sprintf("a%d", i))
		}
		g.emit("call", e.Direct.Mangled)
		g.emit("mv", "t0", "a0")
		return nil
	}

	// Indirect call through a function-pointer value.
	if err := g.genExpr(e.Fun); err != nil {
		return err
	}
	g.push() // target
	for _, a := range e.Args {
		if err := g.genExpr(a); err != nil {
			return err
		}
		g.push()
	}
	for i := len(e.Args) - 1; i >= 0; i-- {
		g.pop(fmt.Sprintf("a%d", i))
	}
	g.pop("t0")
	jump := g.emit("jalr", "t0")
	jump.Meta = &Meta{Kind: MetaICallJump, Reg: "t0", Sig: e.FType.Sig()}
	g.emit("mv", "t0", "a0")
	return nil
}
