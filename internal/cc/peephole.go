package cc

import "strconv"

// Optimize runs the peephole optimizer over every function. The
// stack-machine code generator is deliberately naive (uniform code
// shape keeps the hardening comparisons clean); this pass removes its
// most common redundancies without disturbing labels, metadata, or the
// instrumentation points the hardening passes rewrite:
//
//	push;pop   addi sp,sp,-8 ; sd t0,0(sp) ; ld R,0(sp) ; addi sp,sp,8
//	           -> mv R, t0   (the dominant argument-move pattern)
//	mv x,x     -> (removed)
//	addi x,x,0 -> (removed)
//
// Windows never cross labels (branch targets must stay stable) or
// lines carrying metadata.
func Optimize(u *Unit) {
	total := 0
	for _, f := range u.Funcs {
		f.Lines, total = peephole(f.Lines), total+1
	}
	_ = total
	u.HardenedBy = append(u.HardenedBy, "peephole")
}

func isOp(l Line, op string, args ...string) bool {
	if l.Label != "" || l.Op != op || len(l.Args) != len(args) {
		return false
	}
	for i, a := range args {
		if a != "*" && l.Args[i] != a {
			return false
		}
	}
	return l.Meta == nil
}

func peephole(lines []Line) []Line {
	out := make([]Line, 0, len(lines))
	for i := 0; i < len(lines); i++ {
		// Window: push t0 / pop R.
		if i+3 < len(lines) &&
			isOp(lines[i], "addi", "sp", "sp", "-8") &&
			isOp(lines[i+1], "sd", "t0", "0(sp)") &&
			isOp(lines[i+2], "ld", "*", "0(sp)") &&
			isOp(lines[i+3], "addi", "sp", "sp", "8") {
			dst := lines[i+2].Args[0]
			if dst != "t0" {
				out = append(out, I("mv", dst, "t0"))
			}
			i += 3
			continue
		}
		// mv x, x and addi x, x, 0 are no-ops.
		if isOp(lines[i], "mv", "*", "*") && lines[i].Args[0] == lines[i].Args[1] {
			continue
		}
		if lines[i].Label == "" && lines[i].Op == "addi" && lines[i].Meta == nil &&
			len(lines[i].Args) == 3 && lines[i].Args[0] == lines[i].Args[1] {
			if v, err := strconv.Atoi(lines[i].Args[2]); err == nil && v == 0 {
				continue
			}
		}
		out = append(out, lines[i])
	}
	return out
}
