package cc

// Type is a MiniC type. Everything is 8 bytes except arrays and
// struct/class bodies.
type Type struct {
	Kind   TypeKind
	Elem   *Type   // pointer element / array element
	Len    int64   // array length
	Name   string  // struct/class name
	Params []*Type // function params
	Ret    *Type   // function return (nil = none)
}

// TypeKind enumerates MiniC types.
type TypeKind int

const (
	TypeInt TypeKind = iota
	TypePointer
	TypeArray
	TypeFunc // function signature (only used behind a pointer or as decl)
	TypeStruct
	TypeClass
	TypeVoid
)

var intType = &Type{Kind: TypeInt}
var voidType = &Type{Kind: TypeVoid}

// Size returns the storage size in bytes.
func (t *Type) Size() int64 {
	switch t.Kind {
	case TypeArray:
		return t.Len * t.Elem.Size()
	case TypeVoid:
		return 0
	case TypeStruct, TypeClass:
		// resolved via the checker's layout table; placeholder here
		return 0
	default:
		return 8
	}
}

// String renders the type.
func (t *Type) String() string {
	switch t.Kind {
	case TypeInt:
		return "int"
	case TypeVoid:
		return "void"
	case TypePointer:
		return "*" + t.Elem.String()
	case TypeArray:
		return "[" + itoa(t.Len) + "]" + t.Elem.String()
	case TypeStruct:
		return "struct " + t.Name
	case TypeClass:
		return "class " + t.Name
	case TypeFunc:
		s := "func("
		for i, p := range t.Params {
			if i > 0 {
				s += ","
			}
			s += p.String()
		}
		s += ")"
		if t.Ret != nil && t.Ret.Kind != TypeVoid {
			s += t.Ret.String()
		}
		return s
	}
	return "?"
}

// Sig returns the canonical signature string used as a CFI "type key"
// (the paper's type-based policy groups functions by signature).
func (t *Type) Sig() string {
	if t.Kind != TypeFunc {
		return t.String()
	}
	return t.String()
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [24]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// --- Declarations ---

// Program is a parsed translation unit.
type Program struct {
	Structs []*StructDecl
	Classes []*ClassDecl
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// StructDecl declares a plain struct.
type StructDecl struct {
	Name   string
	Fields []Field
	Line   int
}

// Field is one struct/class field.
type Field struct {
	Name string
	Type *Type
}

// ClassDecl declares a class with virtual methods.
type ClassDecl struct {
	Name    string
	Base    string // "" for root classes
	Fields  []Field
	Methods []*FuncDecl
	Line    int
}

// VarDecl declares a variable (global or local).
type VarDecl struct {
	Name string
	Type *Type
	Init Expr // may be nil
	Line int

	// frameOffset is the local's distance below the frame pointer,
	// assigned by the checker (locals only).
	frameOffset int64
}

// Param is a function parameter.
type Param struct {
	Name string
	Type *Type
}

// FuncDecl declares a function or method.
type FuncDecl struct {
	Name    string
	Class   string // receiver class for methods, "" otherwise
	Virtual bool
	Params  []Param
	Ret     *Type // nil for void
	Body    *BlockStmt
	Line    int

	// Filled by the checker:
	Mangled   string // emitted symbol name
	Slot      int    // vtable slot for virtual methods
	frameSize int64  // bytes of locals+params spilled in the frame
}

// --- Statements ---

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// BlockStmt is { ... }.
type BlockStmt struct {
	Stmts []Stmt
	Line  int
}

// DeclStmt is a local variable declaration.
type DeclStmt struct {
	Decl *VarDecl
}

// ExprStmt evaluates an expression for its side effect.
type ExprStmt struct {
	X    Expr
	Line int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt or nil
	Line int
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body *BlockStmt
	Line int
}

// ForStmt is a C-style for loop.
type ForStmt struct {
	Init Stmt // may be nil
	Cond Expr // may be nil
	Post Stmt // may be nil
	Body *BlockStmt
	Line int
}

// ReturnStmt returns from a function.
type ReturnStmt struct {
	X    Expr // may be nil
	Line int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Line int }

// AssignStmt is lhs = rhs (or op=).
type AssignStmt struct {
	LHS  Expr
	Op   string // "=", "+=", ...
	RHS  Expr
	Line int
}

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*AssignStmt) stmtNode()   {}

// --- Expressions ---

// Expr is an expression node. The checker fills T on every node.
type Expr interface {
	exprNode()
	TypeOf() *Type
	Pos() int
}

type exprBase struct {
	T    *Type
	Line int
}

func (e *exprBase) TypeOf() *Type { return e.T }
func (e *exprBase) Pos() int      { return e.Line }

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Val int64
}

// StrLit is a string literal (typed *int pointing at bytes).
type StrLit struct {
	exprBase
	Val string
}

// NullLit is the null pointer.
type NullLit struct{ exprBase }

// Ident references a variable or function by name.
type Ident struct {
	exprBase
	Name string

	// Checker results:
	Kind   IdentKind
	Offset int64 // frame offset for locals/params
	Func   *FuncDecl
}

// IdentKind classifies resolved identifiers.
type IdentKind int

const (
	IdentLocal IdentKind = iota
	IdentParam
	IdentGlobal
	IdentFunc
)

// Unary is -x, !x, ~x, *x, &x.
type Unary struct {
	exprBase
	Op string
	X  Expr
}

// Binary is x op y.
type Binary struct {
	exprBase
	Op   string
	X, Y Expr
}

// Call is a function call: direct, indirect, virtual or builtin.
type Call struct {
	exprBase
	Fun  Expr // Ident (direct), expression of func-pointer type, or Member (method)
	Args []Expr

	// Checker results:
	Direct  *FuncDecl // non-nil for direct calls
	Builtin string    // print_int, print_str, exit, etc.
	Virtual bool      // vtable dispatch
	Slot    int       // vtable slot for virtual calls
	Class   string    // static class of the receiver
	FType   *Type     // function type of the callee
}

// Index is a[i].
type Index struct {
	exprBase
	X, I Expr
}

// Member is x.f or x->f (on structs and classes; auto-derefs).
type Member struct {
	exprBase
	X     Expr
	Name  string
	Off   int64 // field offset, filled by the checker
	Class string
}

// New allocates a class or struct instance: new T or new T[n].
type New struct {
	exprBase
	TypeName string
	Count    Expr // nil for single allocation
	IsArray  bool

	// Checker results:
	AllocType *Type
	AllocSize int64 // per-element size
}

// SizeofExpr is sizeof(T).
type SizeofExpr struct {
	exprBase
	Arg  *Type
	Size int64
}

// Cond is c ? a : b — not in the grammar; omitted.

func (*IntLit) exprNode()     {}
func (*StrLit) exprNode()     {}
func (*NullLit) exprNode()    {}
func (*Ident) exprNode()      {}
func (*Unary) exprNode()      {}
func (*Binary) exprNode()     {}
func (*Call) exprNode()       {}
func (*Index) exprNode()      {}
func (*Member) exprNode()     {}
func (*New) exprNode()        {}
func (*SizeofExpr) exprNode() {}
