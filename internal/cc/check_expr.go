package cc

// checkExpr type-checks one expression, annotating the node, and
// returns its type.
func (c *checker) checkExpr(e Expr) (*Type, error) {
	switch e := e.(type) {
	case *IntLit:
		e.T = intType
		return intType, nil

	case *StrLit:
		e.T = &Type{Kind: TypePointer, Elem: intType}
		return e.T, nil

	case *NullLit:
		e.T = &Type{Kind: TypePointer, Elem: intType}
		return e.T, nil

	case *SizeofExpr:
		if err := c.resolveType(e.Arg, e.Line); err != nil {
			return nil, err
		}
		e.Size = c.sizeOf(e.Arg)
		e.T = intType
		return intType, nil

	case *Ident:
		if lv := c.lookup(e.Name); lv != nil {
			e.Kind = IdentLocal
			if lv.param {
				e.Kind = IdentParam
			}
			e.Offset = lv.offset
			e.T = lv.decl.Type
			return e.T, nil
		}
		if g, ok := c.out.Globals[e.Name]; ok {
			e.Kind = IdentGlobal
			e.T = g.Type
			return e.T, nil
		}
		if f, ok := c.out.Funcs[e.Name]; ok {
			e.Kind = IdentFunc
			e.Func = f
			e.T = f.FuncType()
			// A function name used as a value is address-taken (the
			// candidate set for the ICall GFPTs). Direct-call callees
			// are resolved in checkCall without reaching this path.
			c.out.AddressTaken[f.Mangled] = f
			return e.T, nil
		}
		return nil, errf(e.Line, "undefined: %s", e.Name)

	case *Unary:
		xt, err := c.checkExpr(e.X)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "-", "~", "!":
			if xt.Kind != TypeInt {
				return nil, errf(e.Line, "operator %s needs int, got %s", e.Op, xt)
			}
			e.T = intType
		case "*":
			if xt.Kind != TypePointer {
				return nil, errf(e.Line, "cannot dereference %s", xt)
			}
			if xt.Elem.Kind == TypeStruct || xt.Elem.Kind == TypeClass {
				return nil, errf(e.Line, "cannot load %s by value; access a field", xt.Elem)
			}
			e.T = xt.Elem
		case "&":
			if !isLValue(e.X) {
				// &func is handled by Ident of func type directly.
				if id, ok := e.X.(*Ident); ok && id.Kind == IdentFunc {
					c.out.AddressTaken[id.Func.Mangled] = id.Func
					e.T = &Type{Kind: TypePointer, Elem: id.T}
					return e.T, nil
				}
				return nil, errf(e.Line, "cannot take address of this expression")
			}
			e.T = &Type{Kind: TypePointer, Elem: xt}
		default:
			return nil, errf(e.Line, "unknown unary operator %s", e.Op)
		}
		return e.T, nil

	case *Binary:
		xt, err := c.checkExpr(e.X)
		if err != nil {
			return nil, err
		}
		yt, err := c.checkExpr(e.Y)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "==", "!=":
			if !(typeEq(xt, yt) || assignable(xt, yt) || assignable(yt, xt)) {
				return nil, errf(e.Line, "cannot compare %s and %s", xt, yt)
			}
			e.T = intType
		case "+", "-":
			// pointer arithmetic: ptr ± int scales by element size.
			if xt.Kind == TypePointer && yt.Kind == TypeInt {
				e.T = xt
				return e.T, nil
			}
			if xt.Kind == TypeInt && yt.Kind == TypeInt {
				e.T = intType
				return e.T, nil
			}
			return nil, errf(e.Line, "operator %s on %s and %s", e.Op, xt, yt)
		default:
			if xt.Kind != TypeInt || yt.Kind != TypeInt {
				return nil, errf(e.Line, "operator %s needs int operands, got %s and %s", e.Op, xt, yt)
			}
			e.T = intType
		}
		return e.T, nil

	case *Index:
		xt, err := c.checkExpr(e.X)
		if err != nil {
			return nil, err
		}
		it, err := c.checkExpr(e.I)
		if err != nil {
			return nil, err
		}
		if it.Kind != TypeInt {
			return nil, errf(e.Line, "array index must be int, got %s", it)
		}
		switch xt.Kind {
		case TypeArray:
			e.T = xt.Elem
		case TypePointer:
			if xt.Elem.Kind == TypeStruct || xt.Elem.Kind == TypeClass {
				e.T = xt.Elem // p[i] on struct pointers yields the i-th object (rare)
			} else {
				e.T = xt.Elem
			}
		default:
			return nil, errf(e.Line, "cannot index %s", xt)
		}
		return e.T, nil

	case *Member:
		xt, err := c.checkExpr(e.X)
		if err != nil {
			return nil, err
		}
		// Auto-deref one pointer level (x.f and x->f both work).
		base := xt
		if base.Kind == TypePointer {
			base = base.Elem
		}
		switch base.Kind {
		case TypeStruct:
			info := c.out.Structs[base.Name]
			off, ok := info.Fields[e.Name]
			if !ok {
				return nil, errf(e.Line, "struct %s has no field %s", base.Name, e.Name)
			}
			e.Off = off
			e.T = info.FieldT[e.Name]
		case TypeClass:
			info := c.out.Classes[base.Name]
			if off, ok := info.Fields[e.Name]; ok {
				e.Off = off
				e.T = info.FieldT[e.Name]
				e.Class = base.Name
				break
			}
			if _, ok := info.SlotOf[e.Name]; ok {
				// Bare method reference: only valid as the callee of a
				// Call; give it the method's function type.
				e.Class = base.Name
				e.T = info.VTable[info.SlotOf[e.Name]].FuncType()
				break
			}
			return nil, errf(e.Line, "class %s has no field or method %s", base.Name, e.Name)
		default:
			return nil, errf(e.Line, "cannot select field %s of %s", e.Name, xt)
		}
		return e.T, nil

	case *New:
		if info, ok := c.out.Classes[e.TypeName]; ok {
			e.AllocType = &Type{Kind: TypeClass, Name: e.TypeName}
			e.AllocSize = info.Size
		} else if info, ok := c.out.Structs[e.TypeName]; ok {
			e.AllocType = &Type{Kind: TypeStruct, Name: e.TypeName}
			e.AllocSize = info.Size
		} else if e.TypeName == "int" {
			e.AllocType = intType
			e.AllocSize = 8
		} else {
			return nil, errf(e.Line, "cannot allocate unknown type %s", e.TypeName)
		}
		if e.Count != nil {
			ct, err := c.checkExpr(e.Count)
			if err != nil {
				return nil, err
			}
			if ct.Kind != TypeInt {
				return nil, errf(e.Line, "allocation count must be int")
			}
		}
		e.T = &Type{Kind: TypePointer, Elem: e.AllocType}
		return e.T, nil

	case *Call:
		return c.checkCall(e)
	}
	return nil, errf(0, "unknown expression")
}

// checkCall resolves direct calls, builtins, virtual dispatch, and
// indirect calls through function-pointer values.
func (c *checker) checkCall(e *Call) (*Type, error) {
	// Builtins.
	if id, ok := e.Fun.(*Ident); ok {
		if _, isBuiltin := builtinFuncs[id.Name]; isBuiltin && c.lookup(id.Name) == nil {
			if _, g := c.out.Globals[id.Name]; !g {
				return c.checkBuiltin(e, id.Name)
			}
		}
	}

	// Method call: expr.m(args).
	if m, ok := e.Fun.(*Member); ok {
		xt, err := c.checkExpr(m.X)
		if err != nil {
			return nil, err
		}
		base := xt
		if base.Kind == TypePointer {
			base = base.Elem
		}
		if base.Kind == TypeClass {
			info := c.out.Classes[base.Name]
			slot, ok := info.SlotOf[m.Name]
			if !ok {
				return nil, errf(e.Line, "class %s has no method %s", base.Name, m.Name)
			}
			target := info.VTable[slot]
			if err := c.checkArgs(e, target.FuncType()); err != nil {
				return nil, err
			}
			e.Virtual = true
			e.Slot = slot
			e.Class = base.Name
			e.FType = target.FuncType()
			m.Class = base.Name
			m.T = e.FType
			e.T = retOf(e.FType)
			return e.T, nil
		}
		// fall through: struct field of function-pointer type
	}

	// Direct call of a named function: resolve the identifier here so
	// callees of direct calls are NOT marked address-taken.
	if id, ok := e.Fun.(*Ident); ok && c.lookup(id.Name) == nil {
		if _, isGlobal := c.out.Globals[id.Name]; !isGlobal {
			if f, isFn := c.out.Funcs[id.Name]; isFn {
				id.Kind = IdentFunc
				id.Func = f
				id.T = f.FuncType()
				if err := c.checkArgs(e, id.T); err != nil {
					return nil, err
				}
				e.Direct = f
				e.FType = id.T
				e.T = retOf(id.T)
				return e.T, nil
			}
		}
	}

	ft, err := c.checkExpr(e.Fun)
	if err != nil {
		return nil, err
	}

	// Indirect call through a function-pointer value.
	callee := ft
	if callee.Kind == TypePointer && callee.Elem.Kind == TypeFunc {
		callee = callee.Elem
	}
	if callee.Kind != TypeFunc {
		return nil, errf(e.Line, "cannot call value of type %s", ft)
	}
	if err := c.checkArgs(e, callee); err != nil {
		return nil, err
	}
	e.FType = callee
	e.T = retOf(callee)
	return e.T, nil
}

func retOf(ft *Type) *Type {
	if ft.Ret == nil {
		return voidType
	}
	return ft.Ret
}

func (c *checker) checkArgs(e *Call, ft *Type) error {
	if len(e.Args) != len(ft.Params) {
		return errf(e.Line, "call needs %d arguments, got %d", len(ft.Params), len(e.Args))
	}
	if len(e.Args) > 7 {
		return errf(e.Line, "too many arguments (max 7)")
	}
	for i, a := range e.Args {
		at, err := c.checkExpr(a)
		if err != nil {
			return err
		}
		if !assignable(ft.Params[i], at) {
			return errf(e.Line, "argument %d: cannot use %s as %s", i+1, at, ft.Params[i])
		}
	}
	return nil
}

func (c *checker) checkBuiltin(e *Call, name string) (*Type, error) {
	e.Builtin = name
	switch name {
	case "attack_point":
		if len(e.Args) != 0 {
			return nil, errf(e.Line, "attack_point takes no arguments")
		}
	case "print_int", "exit":
		if len(e.Args) != 1 {
			return nil, errf(e.Line, "%s needs 1 argument", name)
		}
		at, err := c.checkExpr(e.Args[0])
		if err != nil {
			return nil, err
		}
		if at.Kind != TypeInt {
			return nil, errf(e.Line, "%s needs an int argument, got %s", name, at)
		}
	case "print_str":
		if len(e.Args) != 1 {
			return nil, errf(e.Line, "%s needs 1 argument", name)
		}
		at, err := c.checkExpr(e.Args[0])
		if err != nil {
			return nil, err
		}
		if at.Kind != TypePointer {
			return nil, errf(e.Line, "print_str needs a string argument, got %s", at)
		}
	default:
		return nil, errf(e.Line, "unknown builtin %s", name)
	}
	e.T = voidType
	return voidType, nil
}
