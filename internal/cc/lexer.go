package cc

import (
	"strconv"
	"strings"
)

// lexer turns MiniC source into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	toks []Token
}

var punctuation = []string{
	// longest first
	"<<=", ">>=", "&&", "||", "==", "!=", "<=", ">=", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
	"(", ")", "{", "}", "[", "]", ",", ";", ".", ":",
}

// Lex tokenizes src.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src, line: 1}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, Token{Kind: TokEOF, Line: l.line})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isLetter(c):
			start := l.pos
			for l.pos < len(l.src) && (isLetter(l.src[l.pos]) || isDigit(l.src[l.pos])) {
				l.pos++
			}
			word := l.src[start:l.pos]
			kind := TokIdent
			if keywords[word] {
				kind = TokKeyword
			}
			l.toks = append(l.toks, Token{Kind: kind, Text: word, Line: l.line})
		case isDigit(c):
			start := l.pos
			base := 10
			if c == '0' && l.pos+1 < len(l.src) && (l.src[l.pos+1] == 'x' || l.src[l.pos+1] == 'X') {
				base = 16
				l.pos += 2
			}
			for l.pos < len(l.src) && isNumChar(l.src[l.pos], base) {
				l.pos++
			}
			text := l.src[start:l.pos]
			v, err := strconv.ParseInt(text, 0, 64)
			if err != nil {
				// Allow values up to 2^64-1 written in hex.
				u, uerr := strconv.ParseUint(text, 0, 64)
				if uerr != nil {
					return nil, errf(l.line, "bad integer literal %q", text)
				}
				v = int64(u)
			}
			l.toks = append(l.toks, Token{Kind: TokInt, Text: text, Val: v, Line: l.line})
		case c == '"':
			end := l.pos + 1
			for end < len(l.src) && l.src[end] != '"' {
				if l.src[end] == '\\' {
					end++
				}
				end++
			}
			if end >= len(l.src) {
				return nil, errf(l.line, "unterminated string")
			}
			raw := l.src[l.pos : end+1]
			s, err := strconv.Unquote(raw)
			if err != nil {
				return nil, errf(l.line, "bad string literal %s", raw)
			}
			l.toks = append(l.toks, Token{Kind: TokString, Text: s, Line: l.line})
			l.pos = end + 1
		case c == '\'':
			end := l.pos + 1
			for end < len(l.src) && l.src[end] != '\'' {
				if l.src[end] == '\\' {
					end++
				}
				end++
			}
			if end >= len(l.src) {
				return nil, errf(l.line, "unterminated character literal")
			}
			raw := l.src[l.pos : end+1]
			s, err := strconv.Unquote(raw)
			if err != nil || len(s) != 1 {
				return nil, errf(l.line, "bad character literal %s", raw)
			}
			l.toks = append(l.toks, Token{Kind: TokInt, Text: raw, Val: int64(s[0]), Line: l.line})
			l.pos = end + 1
		default:
			matched := false
			for _, p := range punctuation {
				if strings.HasPrefix(l.src[l.pos:], p) {
					l.toks = append(l.toks, Token{Kind: TokPunct, Text: p, Line: l.line})
					l.pos += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return nil, errf(l.line, "unexpected character %q", string(c))
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			l.pos += 2
		default:
			return
		}
	}
}

func isLetter(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNumChar(c byte, base int) bool {
	if isDigit(c) {
		return true
	}
	if base == 16 {
		return (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
	}
	return false
}
