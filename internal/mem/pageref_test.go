package mem

import (
	"sort"
	"testing"
)

func TestPageRefInvalidation(t *testing.T) {
	p := NewPhysical(1 << 20)
	ref, err := p.Ref(0x3000)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Valid() {
		t.Fatal("fresh ref invalid")
	}

	// Writes to other pages do not invalidate.
	if err := p.WriteUint(0x5000, 1, 8); err != nil {
		t.Fatal(err)
	}
	if !ref.Valid() {
		t.Error("write to unrelated page invalidated ref")
	}

	// Any write inside the page does, through every write path.
	if err := p.WriteUint(0x3ff8, 1, 8); err != nil {
		t.Fatal(err)
	}
	if ref.Valid() {
		t.Error("WriteUint did not invalidate ref")
	}

	ref, _ = p.Ref(0x3000)
	if err := p.Write(0x3004, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if ref.Valid() {
		t.Error("Write did not invalidate ref")
	}

	// A straddling WriteUint invalidates both touched pages.
	refA, _ := p.Ref(0x3000)
	refB, _ := p.Ref(0x4000)
	if err := p.WriteUint(0x3ffc, 0x1122334455667788, 8); err != nil {
		t.Fatal(err)
	}
	if refA.Valid() || refB.Valid() {
		t.Errorf("straddling write: refA.Valid=%v refB.Valid=%v, want false/false",
			refA.Valid(), refB.Valid())
	}

	// ZeroPage invalidates even though the page struct is discarded.
	ref, _ = p.Ref(0x3000)
	if err := p.ZeroPage(0x3000); err != nil {
		t.Fatal(err)
	}
	if ref.Valid() {
		t.Error("ZeroPage did not invalidate ref")
	}

	// Reads never invalidate.
	ref, _ = p.Ref(0x3000)
	if _, err := p.ReadUint(0x3008, 8); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	if err := p.Read(0x3000, buf); err != nil {
		t.Fatal(err)
	}
	if !ref.Valid() {
		t.Error("read invalidated ref")
	}

	if (PageRef{}).Valid() {
		t.Error("zero PageRef reports valid")
	}

	if _, err := p.Ref(1 << 21); err == nil {
		t.Error("Ref beyond memory succeeded")
	}
}

func TestPageNumbersSorted(t *testing.T) {
	p := NewPhysical(1 << 20)
	for _, addr := range []uint64{0x9000, 0x1000, 0x5000, 0x1008} {
		if err := p.WriteUint(addr, 1, 8); err != nil {
			t.Fatal(err)
		}
	}
	pns := p.PageNumbers()
	want := []uint64{1, 5, 9}
	if len(pns) != len(want) {
		t.Fatalf("PageNumbers = %v, want %v", pns, want)
	}
	if !sort.SliceIsSorted(pns, func(i, j int) bool { return pns[i] < pns[j] }) {
		t.Errorf("PageNumbers not sorted: %v", pns)
	}
	for i := range want {
		if pns[i] != want[i] {
			t.Errorf("PageNumbers = %v, want %v", pns, want)
			break
		}
	}
}
