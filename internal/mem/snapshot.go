package mem

import "fmt"

// PageImage is the serializable contents of one allocated physical
// page, used by kernel checkpoints. Data is always PageSize bytes.
type PageImage struct {
	PN   uint64 `json:"pn"`
	Data []byte `json:"data"` // base64 on the wire via encoding/json
}

// SnapshotPages copies every allocated page (in deterministic,
// ascending page-number order) for checkpointing. All-zero pages that
// have been touched are included: the allocated-page set is itself
// observable (PageNumbers, AllocatedPages), so restores reproduce it
// exactly.
func (p *Physical) SnapshotPages() []PageImage {
	pns := p.PageNumbers()
	out := make([]PageImage, 0, len(pns))
	for _, pn := range pns {
		data := make([]byte, PageSize)
		copy(data, p.pages[pn].data)
		out = append(out, PageImage{PN: pn, Data: data})
	}
	return out
}

// RestorePages replaces the memory contents with the snapshot: every
// currently allocated page is dropped, then the snapshot's pages are
// installed. Write generations restart, which is invisible to
// simulated state (generations only gate host-side caches, and those
// revalidate).
func (p *Physical) RestorePages(pages []PageImage) error {
	for _, pi := range pages {
		if len(pi.Data) != PageSize {
			return fmt.Errorf("mem: snapshot page %#x has %d bytes, want %d", pi.PN, len(pi.Data), PageSize)
		}
		if pi.PN<<PageShift >= p.size {
			return fmt.Errorf("mem: snapshot page %#x outside %#x-byte memory", pi.PN, p.size)
		}
	}
	p.pages = make(map[uint64]*page, len(pages))
	p.last = nil
	for _, pi := range pages {
		data := make([]byte, PageSize)
		copy(data, pi.Data)
		p.pages[pi.PN] = &page{data: data}
	}
	return nil
}
