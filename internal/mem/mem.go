// Package mem provides the sparse physical memory model backing the
// prototype system, mirroring the 4 GiB DDR3 SO-DIMM of the paper's
// FPGA board (Table II) without allocating it eagerly.
package mem

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the 4 KiB page granularity shared by the physical
// allocator and the MMU.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Physical is a sparse byte-addressable physical memory. Pages are
// allocated lazily on first touch. It is not safe for concurrent use;
// the simulated system is single-core, as was the paper's prototype.
type Physical struct {
	size  uint64
	pages map[uint64][]byte
}

// NewPhysical returns a physical memory of the given size in bytes,
// rounded up to a whole number of pages.
func NewPhysical(size uint64) *Physical {
	if size%PageSize != 0 {
		size += PageSize - size%PageSize
	}
	return &Physical{size: size, pages: make(map[uint64][]byte)}
}

// Size returns the memory size in bytes.
func (p *Physical) Size() uint64 { return p.size }

// AllocatedPages returns the number of pages that have been touched.
// The mini-kernel uses this for resident-memory accounting (the paper
// reports memory usage in KiB).
func (p *Physical) AllocatedPages() int { return len(p.pages) }

// ErrOutOfRange reports a physical access beyond the installed memory.
type ErrOutOfRange struct {
	Addr uint64
	Size uint64
}

func (e *ErrOutOfRange) Error() string {
	return fmt.Sprintf("mem: physical address %#x outside %#x-byte memory", e.Addr, e.Size)
}

func (p *Physical) page(addr uint64) []byte {
	pn := addr >> PageShift
	pg, ok := p.pages[pn]
	if !ok {
		pg = make([]byte, PageSize)
		p.pages[pn] = pg
	}
	return pg
}

func (p *Physical) check(addr uint64, n int) error {
	if addr+uint64(n) > p.size || addr+uint64(n) < addr {
		return &ErrOutOfRange{Addr: addr, Size: p.size}
	}
	return nil
}

// Read copies len(b) bytes starting at physical address addr into b.
func (p *Physical) Read(addr uint64, b []byte) error {
	if err := p.check(addr, len(b)); err != nil {
		return err
	}
	for len(b) > 0 {
		off := addr & (PageSize - 1)
		n := copy(b, p.page(addr)[off:])
		b = b[n:]
		addr += uint64(n)
	}
	return nil
}

// Write copies b into physical memory starting at addr.
func (p *Physical) Write(addr uint64, b []byte) error {
	if err := p.check(addr, len(b)); err != nil {
		return err
	}
	for len(b) > 0 {
		off := addr & (PageSize - 1)
		n := copy(p.page(addr)[off:], b)
		b = b[n:]
		addr += uint64(n)
	}
	return nil
}

// ReadUint reads an n-byte little-endian unsigned integer (n in
// {1,2,4,8}). Accesses may straddle page boundaries.
func (p *Physical) ReadUint(addr uint64, n int) (uint64, error) {
	var buf [8]byte
	if err := p.Read(addr, buf[:n]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]) & (^uint64(0) >> (64 - 8*n)), nil
}

// WriteUint writes an n-byte little-endian unsigned integer.
func (p *Physical) WriteUint(addr uint64, v uint64, n int) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return p.Write(addr, buf[:n])
}

// ZeroPage clears the page containing addr.
func (p *Physical) ZeroPage(addr uint64) error {
	if err := p.check(addr&^uint64(PageSize-1), PageSize); err != nil {
		return err
	}
	delete(p.pages, addr>>PageShift)
	return nil
}
