// Package mem provides the sparse physical memory model backing the
// prototype system, mirroring the 4 GiB DDR3 SO-DIMM of the paper's
// FPGA board (Table II) without allocating it eagerly.
//
// Hot-path design: every simulated instruction performs one to three
// physical accesses (fetch, page-walk reads, load/store), so ReadUint
// and WriteUint carry a fast path for accesses that stay inside one
// page — they index the page slice directly instead of round-tripping
// through a staging buffer — and the last-touched page is cached to
// skip the map lookup. Both paths produce bit-identical contents; the
// fast path is purely a host-time optimization.
//
// Each page additionally carries a write generation counter, exposed
// through PageRef. Consumers that cache derived views of physical
// memory (the CPU's predecoded-instruction cache) snapshot the counter
// and revalidate with PageRef.Valid, which turns "was this page
// written since I looked?" into one pointer load instead of a
// write-notification protocol.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// PageSize is the 4 KiB page granularity shared by the physical
// allocator and the MMU.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// page is one lazily allocated physical frame plus its write
// generation, bumped on every mutation (including ZeroPage, which
// orphans the struct so stale PageRefs observe the bump).
type page struct {
	data []byte
	gen  uint64
}

// Physical is a sparse byte-addressable physical memory. Pages are
// allocated lazily on first touch. It is not safe for concurrent use;
// the simulated system is single-core, as was the paper's prototype.
type Physical struct {
	size  uint64
	pages map[uint64]*page

	// last caches the most recent page lookup (fetch, walk and data
	// accesses are all strongly page-local).
	lastPN uint64
	last   *page
}

// NewPhysical returns a physical memory of the given size in bytes,
// rounded up to a whole number of pages.
func NewPhysical(size uint64) *Physical {
	if size%PageSize != 0 {
		size += PageSize - size%PageSize
	}
	return &Physical{size: size, pages: make(map[uint64]*page)}
}

// Size returns the memory size in bytes.
func (p *Physical) Size() uint64 { return p.size }

// AllocatedPages returns the number of pages that have been touched.
// The mini-kernel uses this for resident-memory accounting (the paper
// reports memory usage in KiB).
func (p *Physical) AllocatedPages() int { return len(p.pages) }

// PageNumbers returns the sorted physical page numbers of every
// allocated page — the deterministic iteration order tests use to
// checksum memory contents.
func (p *Physical) PageNumbers() []uint64 {
	out := make([]uint64, 0, len(p.pages))
	for pn := range p.pages {
		out = append(out, pn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ErrOutOfRange reports a physical access beyond the installed memory.
type ErrOutOfRange struct {
	Addr uint64
	Size uint64
}

func (e *ErrOutOfRange) Error() string {
	return fmt.Sprintf("mem: physical address %#x outside %#x-byte memory", e.Addr, e.Size)
}

func (p *Physical) page(addr uint64) *page {
	pn := addr >> PageShift
	if p.last != nil && p.lastPN == pn {
		return p.last
	}
	pg, ok := p.pages[pn]
	if !ok {
		pg = &page{data: make([]byte, PageSize)}
		p.pages[pn] = pg
	}
	p.lastPN, p.last = pn, pg
	return pg
}

func (p *Physical) check(addr uint64, n int) error {
	if addr+uint64(n) > p.size || addr+uint64(n) < addr {
		return &ErrOutOfRange{Addr: addr, Size: p.size}
	}
	return nil
}

// Read copies len(b) bytes starting at physical address addr into b.
func (p *Physical) Read(addr uint64, b []byte) error {
	if err := p.check(addr, len(b)); err != nil {
		return err
	}
	for len(b) > 0 {
		off := addr & (PageSize - 1)
		n := copy(b, p.page(addr).data[off:])
		b = b[n:]
		addr += uint64(n)
	}
	return nil
}

// Write copies b into physical memory starting at addr.
func (p *Physical) Write(addr uint64, b []byte) error {
	if err := p.check(addr, len(b)); err != nil {
		return err
	}
	for len(b) > 0 {
		pg := p.page(addr)
		pg.gen++
		off := addr & (PageSize - 1)
		n := copy(pg.data[off:], b)
		b = b[n:]
		addr += uint64(n)
	}
	return nil
}

// ReadUint reads an n-byte little-endian unsigned integer (n in
// {1,2,4,8}). Accesses may straddle page boundaries.
func (p *Physical) ReadUint(addr uint64, n int) (uint64, error) {
	if off := addr & (PageSize - 1); off+uint64(n) <= PageSize {
		if err := p.check(addr, n); err != nil {
			return 0, err
		}
		b := p.page(addr).data[off:]
		switch n {
		case 8:
			return binary.LittleEndian.Uint64(b), nil
		case 4:
			return uint64(binary.LittleEndian.Uint32(b)), nil
		case 2:
			return uint64(binary.LittleEndian.Uint16(b)), nil
		case 1:
			return uint64(b[0]), nil
		}
	}
	var buf [8]byte
	if err := p.Read(addr, buf[:n]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]) & (^uint64(0) >> (64 - 8*n)), nil
}

// WriteUint writes an n-byte little-endian unsigned integer.
func (p *Physical) WriteUint(addr uint64, v uint64, n int) error {
	if off := addr & (PageSize - 1); off+uint64(n) <= PageSize {
		if err := p.check(addr, n); err != nil {
			return err
		}
		pg := p.page(addr)
		pg.gen++
		b := pg.data[off:]
		switch n {
		case 8:
			binary.LittleEndian.PutUint64(b, v)
			return nil
		case 4:
			binary.LittleEndian.PutUint32(b, uint32(v))
			return nil
		case 2:
			binary.LittleEndian.PutUint16(b, uint16(v))
			return nil
		case 1:
			b[0] = byte(v)
			return nil
		}
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return p.Write(addr, buf[:n])
}

// FlipBit inverts bit (0-7) of the physical byte at addr — the
// fault-injection hook for DRAM-style corruption. It goes through the
// normal write path, so the page's write generation bumps and cached
// derived views (predecode pages) revalidate exactly as they would for
// a store. It returns the byte values before and after the flip.
func (p *Physical) FlipBit(addr uint64, bit uint) (before, after byte, err error) {
	if err := p.check(addr, 1); err != nil {
		return 0, 0, err
	}
	v, err := p.ReadUint(addr, 1)
	if err != nil {
		return 0, 0, err
	}
	before = byte(v)
	after = before ^ 1<<(bit&7)
	if err := p.WriteUint(addr, uint64(after), 1); err != nil {
		return 0, 0, err
	}
	return before, after, nil
}

// ZeroPage clears the page containing addr.
func (p *Physical) ZeroPage(addr uint64) error {
	if err := p.check(addr&^uint64(PageSize-1), PageSize); err != nil {
		return err
	}
	pn := addr >> PageShift
	if pg, ok := p.pages[pn]; ok {
		// Orphan the struct with a final generation bump so outstanding
		// PageRefs see the invalidation.
		pg.gen++
		delete(p.pages, pn)
	}
	if p.last != nil && p.lastPN == pn {
		p.last = nil
	}
	return nil
}

// PageRef is a revalidatable handle on one physical page, for
// consumers that cache views derived from page contents. The handle
// stays usable across arbitrary writes — Valid simply starts
// reporting false once the page has been written (or zeroed) since
// Ref was taken.
type PageRef struct {
	pg   *page
	snap uint64
}

// Ref returns a handle on the page containing addr, allocating it if
// it has never been touched. addr must be in range.
func (p *Physical) Ref(addr uint64) (PageRef, error) {
	if err := p.check(addr&^uint64(PageSize-1), PageSize); err != nil {
		return PageRef{}, err
	}
	pg := p.page(addr)
	return PageRef{pg: pg, snap: pg.gen}, nil
}

// Valid reports whether the page is unmodified since Ref.
func (r PageRef) Valid() bool { return r.pg != nil && r.pg.gen == r.snap }
