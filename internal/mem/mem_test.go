package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSizeRounding(t *testing.T) {
	p := NewPhysical(PageSize + 1)
	if p.Size() != 2*PageSize {
		t.Errorf("Size() = %d, want %d", p.Size(), 2*PageSize)
	}
	p = NewPhysical(4 * PageSize)
	if p.Size() != 4*PageSize {
		t.Errorf("Size() = %d, want %d", p.Size(), 4*PageSize)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	p := NewPhysical(1 << 20)
	data := []byte("pointee integrity")
	if err := p.Write(0x1000, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := p.Read(0x1000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("read %q, want %q", got, data)
	}
}

func TestCrossPageAccess(t *testing.T) {
	p := NewPhysical(1 << 20)
	data := make([]byte, 3*PageSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	// Start mid-page so the write straddles three pages.
	addr := uint64(PageSize / 2)
	if err := p.Write(addr, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := p.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("cross-page roundtrip mismatch")
	}
}

func TestOutOfRange(t *testing.T) {
	p := NewPhysical(PageSize)
	if err := p.Write(PageSize-1, []byte{1, 2}); err == nil {
		t.Error("write past end accepted")
	}
	if err := p.Read(PageSize, make([]byte, 1)); err == nil {
		t.Error("read past end accepted")
	}
	if _, err := p.ReadUint(PageSize-4, 8); err == nil {
		t.Error("uint read past end accepted")
	}
	var oor *ErrOutOfRange
	err := p.Write(1<<40, []byte{1})
	if e, ok := err.(*ErrOutOfRange); !ok {
		t.Errorf("error type = %T, want %T", err, oor)
	} else if e.Addr != 1<<40 {
		t.Errorf("error addr = %#x", e.Addr)
	}
}

func TestUintWidths(t *testing.T) {
	p := NewPhysical(1 << 16)
	const v = 0x1122334455667788
	for _, n := range []int{1, 2, 4, 8} {
		if err := p.WriteUint(0x100, v, n); err != nil {
			t.Fatal(err)
		}
		got, err := p.ReadUint(0x100, n)
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(v) & (^uint64(0) >> (64 - 8*n))
		if got != want {
			t.Errorf("width %d: got %#x, want %#x", n, got, want)
		}
	}
}

func TestUintCrossPage(t *testing.T) {
	p := NewPhysical(1 << 16)
	addr := uint64(PageSize - 4)
	if err := p.WriteUint(addr, 0xcafebabe12345678, 8); err != nil {
		t.Fatal(err)
	}
	got, err := p.ReadUint(addr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xcafebabe12345678 {
		t.Errorf("got %#x", got)
	}
}

func TestZeroPage(t *testing.T) {
	p := NewPhysical(1 << 16)
	if err := p.WriteUint(0x2008, 0xff, 8); err != nil {
		t.Fatal(err)
	}
	if err := p.ZeroPage(0x2008); err != nil {
		t.Fatal(err)
	}
	got, _ := p.ReadUint(0x2008, 8)
	if got != 0 {
		t.Errorf("page not zeroed: %#x", got)
	}
	if err := p.ZeroPage(1 << 40); err == nil {
		t.Error("ZeroPage out of range accepted")
	}
}

func TestLazyAllocation(t *testing.T) {
	p := NewPhysical(1 << 30)
	if p.AllocatedPages() != 0 {
		t.Error("pages allocated before first touch")
	}
	// Reading untouched memory yields zeros but allocates (simplest
	// model; the kernel tracks residency itself).
	b := make([]byte, 8)
	if err := p.Read(0x5000, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, make([]byte, 8)) {
		t.Error("untouched memory not zero")
	}
}

// Property: a write followed by a read at any in-range address returns
// the written bytes.
func TestQuickWriteRead(t *testing.T) {
	p := NewPhysical(1 << 20)
	f := func(addr uint32, data []byte) bool {
		a := uint64(addr) % (1<<20 - 4096)
		if len(data) > 4096 {
			data = data[:4096]
		}
		if err := p.Write(a, data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := p.Read(a, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkRead64(b *testing.B) {
	p := NewPhysical(1 << 20)
	_ = p.WriteUint(0x1000, 42, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.ReadUint(0x1000, 8)
	}
}
