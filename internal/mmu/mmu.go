// Package mmu implements the Sv39-style memory management unit of the
// prototype, extended with ROLoad page keys.
//
// Following the paper (Section III-A), each 64-bit page table entry
// reuses its reserved top 10 bits to hold a page *key*. The MMU's
// permission logic gains one extra check that runs in parallel with the
// conventional permission check: a ROLoad memory operation succeeds only
// if the accessed leaf page is readable, NOT writable, and its key
// equals the key carried by the requesting instruction. The result of
// this extra logic is ANDed with the conventional permission output, so
// the check adds no serial delay (see internal/hw for the timing model).
package mmu

import (
	"fmt"

	"roload/internal/mem"
	"roload/internal/obs"
)

// PTE permission and status bits (Sv39 layout).
const (
	PTEValid  uint64 = 1 << 0
	PTERead   uint64 = 1 << 1
	PTEWrite  uint64 = 1 << 2
	PTEExec   uint64 = 1 << 3
	PTEUser   uint64 = 1 << 4
	PTEGlobal uint64 = 1 << 5
	PTEAcc    uint64 = 1 << 6
	PTEDirty  uint64 = 1 << 7

	pteKeyShift = 54 // reserved bits [63:54] hold the ROLoad key
	pteKeyMask  = 0x3ff
	ptePPNShift = 10
	ptePPNMask  = (1 << 44) - 1
)

// Access distinguishes the kinds of memory operation presented to the
// MMU. ROLoadRead is the new memory-op type issued by decoded
// ld.ro-family instructions (MemoryOpConstants in the paper's Rocket
// changes).
type Access int

const (
	Read Access = iota
	Write
	Exec
	ROLoadRead
)

func (a Access) String() string {
	switch a {
	case Read:
		return "read"
	case Write:
		return "write"
	case Exec:
		return "exec"
	case ROLoadRead:
		return "roload"
	}
	return fmt.Sprintf("access(%d)", int(a))
}

// FaultCause mirrors the RISC-V page-fault exception causes.
type FaultCause int

const (
	FaultNone FaultCause = iota
	FaultLoadPage
	FaultStorePage
	FaultInstPage
)

func (c FaultCause) String() string {
	switch c {
	case FaultNone:
		return "none"
	case FaultLoadPage:
		return "load page fault"
	case FaultStorePage:
		return "store page fault"
	case FaultInstPage:
		return "instruction page fault"
	}
	return fmt.Sprintf("cause(%d)", int(c))
}

// Fault describes a failed translation. Hardware raises a plain load
// page fault for a failed ROLoad check; the ROLoad, WantKey, GotKey and
// NotReadOnly fields model the auxiliary state the kernel reads to
// distinguish ROLoad faults from benign ones (paper Section III-B).
type Fault struct {
	Cause       FaultCause
	VA          uint64
	ROLoad      bool   // raised by a ROLoad-family instruction
	WantKey     uint16 // key demanded by the instruction
	GotKey      uint16 // key of the accessed page (valid pages only)
	NotReadOnly bool   // the page was writable or not readable
	Unmapped    bool   // no valid leaf PTE
}

func (f *Fault) Error() string {
	if f.ROLoad {
		return fmt.Sprintf("mmu: ROLoad fault at %#x (want key %d, got key %d, notRO=%v, unmapped=%v)",
			f.VA, f.WantKey, f.GotKey, f.NotReadOnly, f.Unmapped)
	}
	return fmt.Sprintf("mmu: %s at %#x", f.Cause, f.VA)
}

// Stats aggregates translation activity for the performance model.
type Stats struct {
	TLBHits    uint64
	TLBMisses  uint64
	PageWalks  uint64
	WalkMemOps uint64 // physical memory reads performed by the walker
	Faults     uint64
}

// Config parameterizes the MMU. The defaults mirror Table II of the
// paper: 32-entry TLBs.
type Config struct {
	TLBEntries int
	// ROLoadEnabled gates the ld.ro key check logic, so the same MMU
	// models both the unmodified baseline processor and the
	// ROLoad-capable one. When false, a ROLoadRead access behaves
	// exactly like Read (the encoding would be an illegal instruction
	// on stock hardware; the kernel layer models that).
	ROLoadEnabled bool
	// NoFastPath disables the L0 inline translation cache, forcing
	// every Translate through the full TLB machinery. Results (PAs,
	// faults, statistics, cycle accounting) are bit-identical either
	// way; the flag exists for host-performance A/B runs and for the
	// fast-path equivalence tests.
	NoFastPath bool
}

// DefaultConfig returns the Table II configuration.
func DefaultConfig() Config {
	return Config{TLBEntries: 32, ROLoadEnabled: true}
}

// l0Slots is the size of the direct-mapped L0 inline cache in front of
// the TLB. Small on purpose: it only needs to capture the handful of
// pages an instruction sequence touches back-to-back.
const l0Slots = 16

// l0Entry is one L0 slot. It mirrors an entry known to be present in
// the TLB right now; any TLB mutation clears the whole L0, so a slot
// hit proves a full Translate would have been a TLB hit too.
type l0Entry struct {
	vpn uint64
	e   TLBEntry // e.Valid doubles as the slot-valid bit
}

// MMU is a single translation unit (the prototype has separate I and D
// TLBs; instantiate one MMU per side sharing the same root).
type MMU struct {
	cfg   Config
	phys  *mem.Physical
	root  uint64 // physical address of the level-2 (top) page table
	tlb   *TLB
	stats Stats

	// l0 is the inline translation cache. Invariant: every valid slot
	// holds a translation currently present in the TLB, so serving it
	// is observably identical (PA, fault, hit statistics) to the full
	// lookup. Flush, FlushPage, SetRoot and every TLB insert clear it.
	l0    [l0Slots]l0Entry
	useL0 bool

	// probe, when non-nil, observes TLB lookups, page-table walks and
	// ROLoad key checks. side tags the events (I- or D-side); cycles,
	// when non-nil, timestamps them with the owning core's counter.
	probe  obs.Probe
	side   obs.Side
	cycles *uint64
}

// New constructs an MMU over the given physical memory.
func New(phys *mem.Physical, cfg Config) *MMU {
	if cfg.TLBEntries <= 0 {
		cfg.TLBEntries = 32
	}
	return &MMU{cfg: cfg, phys: phys, tlb: NewTLB(cfg.TLBEntries), useL0: !cfg.NoFastPath}
}

// clearL0 invalidates the inline cache; called on every operation that
// can change TLB contents, preserving the L0 mirror invariant.
func (m *MMU) clearL0() {
	for i := range m.l0 {
		m.l0[i].e.Valid = false
	}
}

// SetRoot installs the physical address of the root page table and
// flushes the TLB (the satp write + sfence.vma pair).
func (m *MMU) SetRoot(pa uint64) {
	m.root = pa
	m.tlb.Flush()
	m.clearL0()
}

// Root returns the current root page table address.
func (m *MMU) Root() uint64 { return m.root }

// Flush invalidates all TLB entries (sfence.vma).
func (m *MMU) Flush() {
	m.tlb.Flush()
	m.clearL0()
}

// FlushPage invalidates any TLB entry covering va.
func (m *MMU) FlushPage(va uint64) {
	m.tlb.FlushPage(va)
	m.clearL0()
}

// CorruptTLB applies fn to the live TLB entry covering va, if any, and
// reports whether one was found — the fault-injection hook for
// TLB-state corruption (a bit flip in the translation array, not the
// page tables). It preserves the PR 2 fast-path invariant by clearing
// the L0 mirror: every valid L0 slot must mirror a translation as the
// TLB currently holds it, so after an in-place TLB mutation the mirror
// is rebuilt lazily from the corrupted entry.
func (m *MMU) CorruptTLB(va uint64, fn func(*TLBEntry)) bool {
	hit := m.tlb.Update(va, fn)
	if hit {
		m.clearL0()
	}
	return hit
}

// State is the checkpointable translation state: the root, the
// statistics, and the exact TLB contents (entries plus round-robin
// cursor). The L0 mirror is deliberately absent — it is a host-side
// cache rebuilt lazily, bit-identical by the fast-path invariant.
type State struct {
	Root    uint64     `json:"root"`
	Stats   Stats      `json:"stats"`
	TLB     []TLBEntry `json:"tlb"`
	TLBNext int        `json:"tlb_next"`
}

// State captures the MMU for a checkpoint.
func (m *MMU) State() State {
	entries, next := m.tlb.Entries()
	return State{Root: m.root, Stats: m.stats, TLB: entries, TLBNext: next}
}

// SetState restores a checkpointed MMU state. Unlike SetRoot it does
// not flush: the TLB contents are restored exactly, so hit/miss
// sequences after a resume replay bit-identically.
func (m *MMU) SetState(s State) error {
	if err := m.tlb.SetEntries(s.TLB, s.TLBNext); err != nil {
		return err
	}
	m.root = s.Root
	m.stats = s.Stats
	m.clearL0()
	return nil
}

// Stats returns a copy of the accumulated statistics.
func (m *MMU) Stats() Stats { return m.stats }

// ResetStats clears the statistics counters.
func (m *MMU) ResetStats() { m.stats = Stats{} }

// Enabled reports whether ROLoad checks are implemented by this MMU.
func (m *MMU) Enabled() bool { return m.cfg.ROLoadEnabled }

// SetProbe attaches (or with p == nil detaches) an event probe. side
// tags emitted events; cycles, when non-nil, supplies the timestamp
// counter (the owning CPU's cycle register).
func (m *MMU) SetProbe(p obs.Probe, side obs.Side, cycles *uint64) {
	m.probe = p
	m.side = side
	m.cycles = cycles
}

func (m *MMU) now() uint64 {
	if m.cycles != nil {
		return *m.cycles
	}
	return 0
}

// Translate resolves va for the given access. key is only meaningful
// for ROLoadRead. It returns the physical address and whether the
// translation missed the TLB (the CPU charges a walk penalty on a
// miss).
func (m *MMU) Translate(va uint64, at Access, key uint16) (pa uint64, tlbMiss bool, fault *Fault) {
	// L0 fast path: a valid slot mirrors an entry currently in the TLB,
	// so this branch performs exactly the bookkeeping of a TLB hit. It
	// is bypassed with a probe attached (the slow path emits per-lookup
	// events) and when the fast paths are configured off.
	if m.useL0 && m.probe == nil {
		vpn := va >> mem.PageShift
		if s := &m.l0[vpn&(l0Slots-1)]; s.e.Valid && s.vpn == vpn {
			m.stats.TLBHits++
			if f := m.check(s.e, va, at, key); f != nil {
				m.stats.Faults++
				return 0, false, f
			}
			return s.e.PPN<<mem.PageShift | va&(mem.PageSize-1), false, nil
		}
	}
	e, hit := m.tlb.Lookup(va)
	if m.probe != nil {
		m.probe.Event(obs.Event{
			Kind: obs.KindTLB, Side: m.side, Hit: hit, VA: va, Cycle: m.now(),
		})
	}
	if hit {
		m.stats.TLBHits++
	} else {
		m.stats.TLBMisses++
		var f *Fault
		memOps0 := m.stats.WalkMemOps
		e, f = m.walk(va, at)
		if m.probe != nil {
			m.probe.Event(obs.Event{
				Kind: obs.KindWalk, Side: m.side, Hit: f == nil, VA: va,
				Num: m.stats.WalkMemOps - memOps0, Cycle: m.now(),
			})
		}
		if f != nil {
			m.stats.Faults++
			return 0, true, f
		}
		// The insert may evict any TLB entry (round-robin), so the L0
		// mirror must be rebuilt from scratch.
		m.tlb.Insert(e)
		m.clearL0()
	}
	if m.useL0 {
		vpn := va >> mem.PageShift
		m.l0[vpn&(l0Slots-1)] = l0Entry{vpn: vpn, e: e}
	}
	if f := m.check(e, va, at, key); f != nil {
		m.stats.Faults++
		return 0, !hit, f
	}
	return e.PPN<<mem.PageShift | va&(mem.PageSize-1), !hit, nil
}

// BumpTLBHits credits n TLB hits without performing lookups — the
// block engine's folded fetch accounting. A translated block never
// crosses a page, so after the block-entry Translate has hit or
// installed the entry, every remaining fetch in the block is a
// guaranteed TLB hit whose only simulated effect is this counter (the
// permission check cannot newly fail mid-block: nothing between two
// instructions of one block can change the page tables or the TLB).
// Calling it in any other situation would break the fast-path
// invariant.
func (m *MMU) BumpTLBHits(n uint64) { m.stats.TLBHits += n }

// check implements the permission control logic. The conventional
// check and the ROLoad check are evaluated independently and combined,
// matching the parallel AND structure described in Section II-E.
func (m *MMU) check(e TLBEntry, va uint64, at Access, key uint16) *Fault {
	// Conventional permission output.
	var convOK bool
	var cause FaultCause
	switch at {
	case Read, ROLoadRead:
		convOK = e.Perms&PTERead != 0
		cause = FaultLoadPage
	case Write:
		convOK = e.Perms&PTEWrite != 0
		cause = FaultStorePage
	case Exec:
		convOK = e.Perms&PTEExec != 0
		cause = FaultInstPage
	}

	// ROLoad output (parallel path). True for every non-ROLoad access.
	roOK := true
	if at == ROLoadRead && m.cfg.ROLoadEnabled {
		readOnly := e.Perms&PTERead != 0 && e.Perms&PTEWrite == 0
		roOK = readOnly && e.Key == key
		if m.probe != nil {
			m.probe.Event(obs.Event{
				Kind: obs.KindROLoadCheck, Side: m.side, Hit: roOK, VA: va,
				WantKey: key, GotKey: e.Key, Cycle: m.now(),
			})
		}
	}

	if convOK && roOK {
		return nil
	}
	f := &Fault{Cause: cause, VA: va}
	if at == ROLoadRead && m.cfg.ROLoadEnabled && !roOK {
		f.ROLoad = true
		f.WantKey = key
		f.GotKey = e.Key
		f.NotReadOnly = e.Perms&PTEWrite != 0 || e.Perms&PTERead == 0
	}
	return f
}

// walk performs the three-level Sv39 table walk.
func (m *MMU) walk(va uint64, at Access) (TLBEntry, *Fault) {
	m.stats.PageWalks++
	cause := FaultLoadPage
	switch at {
	case Write:
		cause = FaultStorePage
	case Exec:
		cause = FaultInstPage
	}
	unmapped := func() (TLBEntry, *Fault) {
		f := &Fault{Cause: cause, VA: va, Unmapped: true}
		if at == ROLoadRead && m.cfg.ROLoadEnabled {
			f.ROLoad = true
		}
		return TLBEntry{}, f
	}
	if m.root == 0 {
		return unmapped()
	}
	// Sv39: VA must be sign-extended from bit 38.
	if sv39Invalid(va) {
		return unmapped()
	}
	table := m.root
	for level := 2; level >= 0; level-- {
		vpn := va >> (mem.PageShift + 9*uint(level)) & 0x1ff
		pteAddr := table + vpn*8
		m.stats.WalkMemOps++
		pte, err := m.phys.ReadUint(pteAddr, 8)
		if err != nil {
			return unmapped()
		}
		if pte&PTEValid == 0 {
			return unmapped()
		}
		ppn := pte >> ptePPNShift & ptePPNMask
		if pte&(PTERead|PTEWrite|PTEExec) != 0 {
			// Leaf. Superpages must be aligned; we only use 4 KiB pages.
			if level != 0 {
				return unmapped()
			}
			return TLBEntry{
				VPN:   va >> mem.PageShift,
				PPN:   ppn,
				Perms: pte & 0xff,
				Key:   uint16(pte >> pteKeyShift & pteKeyMask),
				Valid: true,
			}, nil
		}
		table = ppn << mem.PageShift
	}
	return unmapped()
}

func sv39Invalid(va uint64) bool {
	top := va >> 38
	return top != 0 && top != (1<<26)-1
}

// MakePTE assembles a leaf PTE from a physical page number, permission
// bits, and a ROLoad key.
func MakePTE(ppn uint64, perms uint64, key uint16) uint64 {
	return uint64(key&pteKeyMask)<<pteKeyShift |
		(ppn&ptePPNMask)<<ptePPNShift |
		perms&0xff | PTEValid | PTEAcc | PTEDirty
}

// MakeNonLeafPTE assembles a pointer PTE to the next-level table.
func MakeNonLeafPTE(ppn uint64) uint64 {
	return (ppn&ptePPNMask)<<ptePPNShift | PTEValid
}

// PTEKey extracts the ROLoad key from a PTE.
func PTEKey(pte uint64) uint16 { return uint16(pte >> pteKeyShift & pteKeyMask) }

// PTEPPN extracts the physical page number from a PTE.
func PTEPPN(pte uint64) uint64 { return pte >> ptePPNShift & ptePPNMask }
