package mmu

import "fmt"

// TLBEntry caches one leaf translation. Following the paper's Rocket
// changes, each TLB entry carries the page key alongside the usual
// permission bits so that the ROLoad check needs no extra memory
// access on a TLB hit.
type TLBEntry struct {
	VPN   uint64
	PPN   uint64
	Perms uint64
	Key   uint16
	Valid bool
}

// TLB is a fully-associative translation lookaside buffer with
// round-robin replacement (matching the simple replacement policy of
// the Rocket core's L1 TLBs).
type TLB struct {
	entries []TLBEntry
	next    int
}

// NewTLB returns a TLB with n entries.
func NewTLB(n int) *TLB {
	return &TLB{entries: make([]TLBEntry, n)}
}

// Size returns the number of entries.
func (t *TLB) Size() int { return len(t.entries) }

// Lookup searches for a valid entry covering va.
func (t *TLB) Lookup(va uint64) (TLBEntry, bool) {
	vpn := va >> 12
	for i := range t.entries {
		if t.entries[i].Valid && t.entries[i].VPN == vpn {
			return t.entries[i], true
		}
	}
	return TLBEntry{}, false
}

// Insert stores e, evicting round-robin.
func (t *TLB) Insert(e TLBEntry) {
	// Replace an existing mapping for the same page if present, so a
	// remap after FlushPage+walk cannot leave duplicates.
	for i := range t.entries {
		if t.entries[i].Valid && t.entries[i].VPN == e.VPN {
			t.entries[i] = e
			return
		}
	}
	for i := range t.entries {
		if !t.entries[i].Valid {
			t.entries[i] = e
			return
		}
	}
	t.entries[t.next] = e
	t.next = (t.next + 1) % len(t.entries)
}

// Update applies fn to the valid entry covering va, if any, and
// reports whether one was found. It is the mutation hook the
// fault-injection layer uses to corrupt a cached translation in place;
// the owning MMU must clear its L0 mirror afterwards (see
// MMU.CorruptTLB).
func (t *TLB) Update(va uint64, fn func(*TLBEntry)) bool {
	vpn := va >> 12
	for i := range t.entries {
		if t.entries[i].Valid && t.entries[i].VPN == vpn {
			fn(&t.entries[i])
			return true
		}
	}
	return false
}

// Entries returns a copy of the entry array (valid and invalid slots,
// in slot order) together with the round-robin cursor — the exact
// replacement state a checkpoint must capture for bit-identical
// resumes.
func (t *TLB) Entries() ([]TLBEntry, int) {
	out := make([]TLBEntry, len(t.entries))
	copy(out, t.entries)
	return out, t.next
}

// SetEntries restores the entry array and round-robin cursor captured
// by Entries. The slice length must match the TLB size.
func (t *TLB) SetEntries(entries []TLBEntry, next int) error {
	if len(entries) != len(t.entries) {
		return fmt.Errorf("mmu: restoring %d TLB entries into a %d-entry TLB", len(entries), len(t.entries))
	}
	if next < 0 || next >= len(t.entries) {
		return fmt.Errorf("mmu: TLB cursor %d out of range", next)
	}
	copy(t.entries, entries)
	t.next = next
	return nil
}

// Flush invalidates every entry.
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i].Valid = false
	}
	t.next = 0
}

// FlushPage invalidates entries covering va.
func (t *TLB) FlushPage(va uint64) {
	vpn := va >> 12
	for i := range t.entries {
		if t.entries[i].VPN == vpn {
			t.entries[i].Valid = false
		}
	}
}
