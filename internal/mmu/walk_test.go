package mmu

import (
	"testing"

	"roload/internal/mem"
)

// Addresses spread across distinct Sv39 regions force the mapper to
// build separate level-1 and level-0 tables; the walker must navigate
// all three levels and charge exactly three memory reads per walk.
func TestMultiLevelWalk(t *testing.T) {
	phys, mapper, m := testSetup(t, DefaultConfig())

	// Three VAs differing in their VPN[2] (1 GiB regions) and VPN[1]
	// (2 MiB regions).
	vas := []uint64{
		0x0000_0000_1000,                // region 0
		0x0000_4020_3000,                // 1 GiB+ region: different VPN[2]
		0x0008_0000_0000 - mem.PageSize, // top of the 32 GiB space
	}
	for i, va := range vas {
		pa := uint64(0x200000 + i*0x1000)
		if err := mapper.Map(va, pa, PTERead|PTEWrite, uint16(i)); err != nil {
			t.Fatalf("map %#x: %v", va, err)
		}
	}
	for i, va := range vas {
		m.ResetStats()
		pa, miss, fault := m.Translate(va, Read, 0)
		if fault != nil {
			t.Fatalf("translate %#x: %v", va, fault)
		}
		if !miss {
			t.Errorf("va %#x: expected TLB miss", va)
		}
		if want := uint64(0x200000 + i*0x1000); pa != want {
			t.Errorf("va %#x -> %#x, want %#x", va, pa, want)
		}
		st := m.Stats()
		if st.WalkMemOps != 3 {
			t.Errorf("va %#x: walk read %d PTEs, want 3 (one per level)", va, st.WalkMemOps)
		}
	}
	// Neighbouring unmapped pages in the same regions still fault.
	for _, va := range vas {
		if _, _, fault := m.Translate(va+mem.PageSize, Read, 0); fault == nil {
			t.Errorf("unmapped neighbour of %#x translated", va)
		}
	}
	_ = phys
}

// Keys are per-page: two pages in the same 2 MiB region with different
// keys must be distinguished by the ROLoad check.
func TestPerPageKeys(t *testing.T) {
	_, mapper, m := testSetup(t, DefaultConfig())
	if err := mapper.Map(0x100000, 0x300000, PTERead, 10); err != nil {
		t.Fatal(err)
	}
	if err := mapper.Map(0x101000, 0x301000, PTERead, 20); err != nil {
		t.Fatal(err)
	}
	if _, _, fault := m.Translate(0x100000, ROLoadRead, 10); fault != nil {
		t.Errorf("page 1 key 10: %v", fault)
	}
	if _, _, fault := m.Translate(0x101000, ROLoadRead, 20); fault != nil {
		t.Errorf("page 2 key 20: %v", fault)
	}
	if _, _, fault := m.Translate(0x100000, ROLoadRead, 20); fault == nil {
		t.Error("page 1 accepted key 20")
	}
	if _, _, fault := m.Translate(0x101000, ROLoadRead, 10); fault == nil {
		t.Error("page 2 accepted key 10")
	}
}

// Non-canonical Sv39 addresses must fault on access and be rejected by
// the mapper.
func TestNonCanonicalAddresses(t *testing.T) {
	_, mapper, m := testSetup(t, DefaultConfig())
	bad := uint64(1) << 40
	if err := mapper.Map(bad, 0x300000, PTERead, 0); err == nil {
		t.Error("mapper accepted non-canonical va")
	}
	if _, _, fault := m.Translate(bad, Read, 0); fault == nil {
		t.Error("non-canonical va translated")
	}
}

// The TLB caches the key: after a Protect that changes only the key, a
// stale entry must be flushed for the new key to take effect — the
// reason the kernel's mprotect path flushes (mirrors real sfence.vma
// requirements).
func TestKeyChangeNeedsFlush(t *testing.T) {
	_, mapper, m := testSetup(t, DefaultConfig())
	if err := mapper.Map(0x100000, 0x300000, PTERead, 10); err != nil {
		t.Fatal(err)
	}
	if _, _, fault := m.Translate(0x100000, ROLoadRead, 10); fault != nil {
		t.Fatal(fault)
	}
	if err := mapper.Protect(0x100000, PTERead, 30); err != nil {
		t.Fatal(err)
	}
	// Stale TLB: the old key still wins until a flush.
	if _, _, fault := m.Translate(0x100000, ROLoadRead, 10); fault != nil {
		t.Error("stale TLB entry should still satisfy the old key")
	}
	m.FlushPage(0x100000)
	if _, _, fault := m.Translate(0x100000, ROLoadRead, 30); fault != nil {
		t.Errorf("after flush, new key rejected: %v", fault)
	}
	if _, _, fault := m.Translate(0x100000, ROLoadRead, 10); fault == nil {
		t.Error("after flush, old key still accepted")
	}
}
