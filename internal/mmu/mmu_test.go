package mmu

import (
	"testing"
	"testing/quick"

	"roload/internal/mem"
)

// bumpAlloc is a trivial frame allocator for tests.
type bumpAlloc struct {
	next uint64
	end  uint64
}

func (b *bumpAlloc) AllocFrame() (uint64, error) {
	pa := b.next
	b.next += mem.PageSize
	return pa, nil
}

func testSetup(t *testing.T, cfg Config) (*mem.Physical, *Mapper, *MMU) {
	t.Helper()
	phys := mem.NewPhysical(64 << 20)
	alloc := &bumpAlloc{next: 0x100000}
	mapper, err := NewMapper(phys, alloc)
	if err != nil {
		t.Fatal(err)
	}
	m := New(phys, cfg)
	m.SetRoot(mapper.Root())
	return phys, mapper, m
}

func TestMapAndTranslate(t *testing.T) {
	phys, mapper, m := testSetup(t, DefaultConfig())
	const va, pa = 0x400000, 0x200000
	if err := mapper.Map(va, pa, PTERead|PTEWrite|PTEUser, 0); err != nil {
		t.Fatal(err)
	}
	if err := phys.WriteUint(pa+8, 0xdeadbeef, 8); err != nil {
		t.Fatal(err)
	}
	got, miss, fault := m.Translate(va+8, Read, 0)
	if fault != nil {
		t.Fatalf("translate: %v", fault)
	}
	if !miss {
		t.Error("first access should miss the TLB")
	}
	if got != pa+8 {
		t.Errorf("pa = %#x, want %#x", got, pa+8)
	}
	// Second access hits.
	_, miss, fault = m.Translate(va+16, Read, 0)
	if fault != nil || miss {
		t.Errorf("second access: miss=%v fault=%v, want hit", miss, fault)
	}
	st := m.Stats()
	if st.TLBHits != 1 || st.TLBMisses != 1 || st.PageWalks != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestUnmappedFaults(t *testing.T) {
	_, _, m := testSetup(t, DefaultConfig())
	cases := []struct {
		at    Access
		cause FaultCause
	}{
		{Read, FaultLoadPage},
		{Write, FaultStorePage},
		{Exec, FaultInstPage},
		{ROLoadRead, FaultLoadPage},
	}
	for _, c := range cases {
		_, _, fault := m.Translate(0x999000, c.at, 1)
		if fault == nil {
			t.Fatalf("%v: no fault for unmapped page", c.at)
		}
		if fault.Cause != c.cause {
			t.Errorf("%v: cause = %v, want %v", c.at, fault.Cause, c.cause)
		}
		if !fault.Unmapped {
			t.Errorf("%v: Unmapped not set", c.at)
		}
		if (c.at == ROLoadRead) != fault.ROLoad {
			t.Errorf("%v: ROLoad flag = %v", c.at, fault.ROLoad)
		}
	}
}

func TestPermissionChecks(t *testing.T) {
	_, mapper, m := testSetup(t, DefaultConfig())
	mustMap := func(va uint64, perms uint64, key uint16) {
		t.Helper()
		if err := mapper.Map(va, va, perms, key); err != nil {
			t.Fatal(err)
		}
	}
	mustMap(0x10000, PTERead, 0)            // read-only, key 0
	mustMap(0x11000, PTERead|PTEWrite, 0)   // writable
	mustMap(0x12000, PTEExec|PTERead, 0)    // text
	mustMap(0x13000, PTERead, 111)          // read-only, key 111
	mustMap(0x14000, PTERead|PTEWrite, 111) // writable WITH key (still must fault for ld.ro)
	mustMap(0x15000, PTEWrite, 0)           // write-only

	type tc struct {
		name    string
		va      uint64
		at      Access
		key     uint16
		wantOK  bool
		roFault bool
	}
	cases := []tc{
		{"read from RO page", 0x10000, Read, 0, true, false},
		{"write to RO page", 0x10000, Write, 0, false, false},
		{"write to RW page", 0x11000, Write, 0, true, false},
		{"exec from text", 0x12000, Exec, 0, true, false},
		{"exec from data", 0x11000, Exec, 0, false, false},
		{"read from write-only page", 0x15000, Read, 0, false, false},

		// The ROLoad semantics (paper Section II-E).
		{"ld.ro matching key", 0x13000, ROLoadRead, 111, true, false},
		{"ld.ro wrong key", 0x13000, ROLoadRead, 222, false, true},
		{"ld.ro key 0 page with key 0", 0x10000, ROLoadRead, 0, true, false},
		{"ld.ro from writable page with matching key", 0x14000, ROLoadRead, 111, false, true},
		{"ld.ro from writable key-0 page", 0x11000, ROLoadRead, 0, false, true},
		{"regular read from keyed page", 0x13000, Read, 0, true, false},
		{"regular write to keyed RO page", 0x13000, Write, 0, false, false},
	}
	for _, c := range cases {
		_, _, fault := m.Translate(c.va, c.at, c.key)
		if (fault == nil) != c.wantOK {
			t.Errorf("%s: fault = %v, wantOK %v", c.name, fault, c.wantOK)
			continue
		}
		if fault != nil && fault.ROLoad != c.roFault {
			t.Errorf("%s: ROLoad flag = %v, want %v", c.name, fault.ROLoad, c.roFault)
		}
	}
}

func TestROLoadFaultDetails(t *testing.T) {
	_, mapper, m := testSetup(t, DefaultConfig())
	if err := mapper.Map(0x20000, 0x20000, PTERead, 42); err != nil {
		t.Fatal(err)
	}
	_, _, fault := m.Translate(0x20008, ROLoadRead, 7)
	if fault == nil {
		t.Fatal("expected fault")
	}
	if fault.WantKey != 7 || fault.GotKey != 42 {
		t.Errorf("keys = want %d got %d", fault.WantKey, fault.GotKey)
	}
	if fault.NotReadOnly {
		t.Error("page was read-only; NotReadOnly must be false")
	}
	if fault.Cause != FaultLoadPage {
		t.Errorf("cause = %v; hardware must raise a load page fault", fault.Cause)
	}
}

// The baseline (unmodified) MMU must treat ROLoadRead like a plain
// read: on stock hardware the encoding wouldn't even decode, but the
// MMU-level model needs to be inert when disabled so the
// processor-modified vs baseline system comparison isolates the check.
func TestROLoadDisabled(t *testing.T) {
	_, mapper, m := testSetup(t, Config{TLBEntries: 32, ROLoadEnabled: false})
	if err := mapper.Map(0x20000, 0x20000, PTERead|PTEWrite, 0); err != nil {
		t.Fatal(err)
	}
	_, _, fault := m.Translate(0x20000, ROLoadRead, 99)
	if fault != nil {
		t.Fatalf("disabled ROLoad check still faulted: %v", fault)
	}
}

func TestProtectChangesKeyAndPerms(t *testing.T) {
	_, mapper, m := testSetup(t, DefaultConfig())
	if err := mapper.Map(0x30000, 0x30000, PTERead|PTEWrite, 0); err != nil {
		t.Fatal(err)
	}
	// Writable: ld.ro must fault.
	if _, _, fault := m.Translate(0x30000, ROLoadRead, 5); fault == nil {
		t.Fatal("ld.ro from writable page must fault")
	}
	// mprotect to read-only with key 5 (the paper's deployment flow:
	// write the allowlist, then seal the page).
	if err := mapper.Protect(0x30000, PTERead, 5); err != nil {
		t.Fatal(err)
	}
	m.FlushPage(0x30000)
	if _, _, fault := m.Translate(0x30000, ROLoadRead, 5); fault != nil {
		t.Fatalf("ld.ro after sealing: %v", fault)
	}
	// Writes must now fault.
	m.FlushPage(0x30000)
	if _, _, fault := m.Translate(0x30000, Write, 0); fault == nil {
		t.Fatal("write to sealed page must fault")
	}
}

func TestUnmap(t *testing.T) {
	_, mapper, m := testSetup(t, DefaultConfig())
	if err := mapper.Map(0x40000, 0x40000, PTERead, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, fault := m.Translate(0x40000, Read, 0); fault != nil {
		t.Fatal(fault)
	}
	if err := mapper.Unmap(0x40000); err != nil {
		t.Fatal(err)
	}
	m.FlushPage(0x40000)
	if _, _, fault := m.Translate(0x40000, Read, 0); fault == nil {
		t.Fatal("read after unmap must fault")
	}
	if err := mapper.Unmap(0x40000); err == nil {
		t.Fatal("double unmap must error")
	}
}

func TestMapperErrors(t *testing.T) {
	_, mapper, _ := testSetup(t, DefaultConfig())
	if err := mapper.Map(0x1001, 0x2000, PTERead, 0); err == nil {
		t.Error("unaligned va accepted")
	}
	if err := mapper.Map(0x1000, 0x2001, PTERead, 0); err == nil {
		t.Error("unaligned pa accepted")
	}
	if err := mapper.Map(0x1000, 0x2000, PTERead, 1<<10); err == nil {
		t.Error("oversized key accepted")
	}
	if err := mapper.Map(1<<40, 0x2000, PTERead, 0); err == nil {
		t.Error("non-canonical va accepted")
	}
	if err := mapper.Protect(0xdead000, PTERead, 0); err == nil {
		t.Error("protect of unmapped page accepted")
	}
	if err := mapper.Protect(0x1000, PTERead, 1<<10); err == nil {
		t.Error("protect with oversized key accepted")
	}
}

func TestPTEHelpers(t *testing.T) {
	pte := MakePTE(0x12345, PTERead|PTEExec, 999)
	if PTEKey(pte) != 999 {
		t.Errorf("key = %d, want 999", PTEKey(pte))
	}
	if PTEPPN(pte) != 0x12345 {
		t.Errorf("ppn = %#x, want 0x12345", PTEPPN(pte))
	}
	if pte&PTEValid == 0 || pte&PTERead == 0 || pte&PTEExec == 0 || pte&PTEWrite != 0 {
		t.Errorf("perm bits wrong: %#x", pte)
	}
}

// Property: the PTE key field is fully reversible for any 10-bit key
// and never perturbs the PPN or permission bits.
func TestQuickPTEKeyRoundTrip(t *testing.T) {
	f := func(ppn uint64, key uint16, perms uint8) bool {
		ppn &= ptePPNMask
		key &= pteKeyMask
		p := uint64(perms) & (PTERead | PTEWrite | PTEExec | PTEUser)
		pte := MakePTE(ppn, p, key)
		return PTEKey(pte) == key && PTEPPN(pte) == ppn &&
			pte&(PTERead|PTEWrite|PTEExec|PTEUser) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: translation of a mapped page always returns the mapped
// frame with the page offset preserved.
func TestQuickTranslateOffsets(t *testing.T) {
	_, mapper, m := testSetup(t, DefaultConfig())
	if err := mapper.Map(0x50000, 0x80000, PTERead, 0); err != nil {
		t.Fatal(err)
	}
	f := func(off uint16) bool {
		o := uint64(off) % mem.PageSize
		pa, _, fault := m.Translate(0x50000+o, Read, 0)
		return fault == nil && pa == 0x80000+o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTLBEviction(t *testing.T) {
	_, mapper, m := testSetup(t, Config{TLBEntries: 4, ROLoadEnabled: true})
	for i := uint64(0); i < 8; i++ {
		if err := mapper.Map(0x60000+i*mem.PageSize, 0x60000+i*mem.PageSize, PTERead, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Touch 8 pages through a 4-entry TLB: every access misses first
	// time; re-touching the first pages must miss again after eviction.
	for i := uint64(0); i < 8; i++ {
		if _, _, fault := m.Translate(0x60000+i*mem.PageSize, Read, 0); fault != nil {
			t.Fatal(fault)
		}
	}
	m.ResetStats()
	if _, _, fault := m.Translate(0x60000, Read, 0); fault != nil {
		t.Fatal(fault)
	}
	if m.Stats().TLBMisses != 1 {
		t.Errorf("expected eviction-induced miss, stats = %+v", m.Stats())
	}
}

func TestTLBFlushPage(t *testing.T) {
	tlb := NewTLB(4)
	tlb.Insert(TLBEntry{VPN: 5, PPN: 10, Valid: true})
	tlb.Insert(TLBEntry{VPN: 6, PPN: 11, Valid: true})
	tlb.FlushPage(5 << 12)
	if _, ok := tlb.Lookup(5 << 12); ok {
		t.Error("entry survived FlushPage")
	}
	if _, ok := tlb.Lookup(6 << 12); !ok {
		t.Error("unrelated entry was flushed")
	}
}

func TestTLBInsertReplacesSameVPN(t *testing.T) {
	tlb := NewTLB(4)
	tlb.Insert(TLBEntry{VPN: 5, PPN: 10, Key: 1, Valid: true})
	tlb.Insert(TLBEntry{VPN: 5, PPN: 10, Key: 2, Valid: true})
	e, ok := tlb.Lookup(5 << 12)
	if !ok || e.Key != 2 {
		t.Errorf("lookup = %+v, %v; want key 2", e, ok)
	}
	n := 0
	for _, e := range tlb.entries {
		if e.Valid {
			n++
		}
	}
	if n != 1 {
		t.Errorf("duplicate entries after same-VPN insert: %d valid", n)
	}
}

func TestSetRootFlushes(t *testing.T) {
	_, mapper, m := testSetup(t, DefaultConfig())
	if err := mapper.Map(0x70000, 0x70000, PTERead, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, fault := m.Translate(0x70000, Read, 0); fault != nil {
		t.Fatal(fault)
	}
	m.SetRoot(mapper.Root())
	m.ResetStats()
	if _, _, fault := m.Translate(0x70000, Read, 0); fault != nil {
		t.Fatal(fault)
	}
	if m.Stats().TLBMisses != 1 {
		t.Error("SetRoot did not flush the TLB")
	}
}

func BenchmarkTranslateHit(b *testing.B) {
	phys := mem.NewPhysical(64 << 20)
	alloc := &bumpAlloc{next: 0x100000}
	mapper, _ := NewMapper(phys, alloc)
	m := New(phys, DefaultConfig())
	m.SetRoot(mapper.Root())
	_ = mapper.Map(0x50000, 0x80000, PTERead, 3)
	m.Translate(0x50000, Read, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Translate(0x50000, ROLoadRead, 3)
	}
}

func BenchmarkTranslateWalk(b *testing.B) {
	phys := mem.NewPhysical(64 << 20)
	alloc := &bumpAlloc{next: 0x100000}
	mapper, _ := NewMapper(phys, alloc)
	m := New(phys, DefaultConfig())
	m.SetRoot(mapper.Root())
	_ = mapper.Map(0x50000, 0x80000, PTERead, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Flush()
		m.Translate(0x50000, Read, 0)
	}
}
