package mmu

import (
	"fmt"

	"roload/internal/mem"
)

// FrameAllocator hands out physical page frames for page tables.
type FrameAllocator interface {
	// AllocFrame returns the physical address of a zeroed, page-aligned
	// frame.
	AllocFrame() (uint64, error)
}

// Mapper builds and edits the three-level page tables read by the MMU
// walker. The kernel uses it to implement mmap/mprotect with keys.
type Mapper struct {
	phys  *mem.Physical
	alloc FrameAllocator
	root  uint64
}

// NewMapper creates a Mapper with a fresh root table.
func NewMapper(phys *mem.Physical, alloc FrameAllocator) (*Mapper, error) {
	root, err := alloc.AllocFrame()
	if err != nil {
		return nil, fmt.Errorf("mmu: allocating root table: %w", err)
	}
	return &Mapper{phys: phys, alloc: alloc, root: root}, nil
}

// ResumeMapper rebuilds a Mapper over page tables that already exist
// in physical memory (a restored checkpoint): root is the physical
// address of the level-2 table captured by Mapper.Root.
func ResumeMapper(phys *mem.Physical, alloc FrameAllocator, root uint64) *Mapper {
	return &Mapper{phys: phys, alloc: alloc, root: root}
}

// Root returns the physical address of the root table, suitable for
// MMU.SetRoot.
func (m *Mapper) Root() uint64 { return m.root }

// Map installs a 4 KiB leaf mapping va -> pa with the given permission
// bits and ROLoad key, creating intermediate tables as needed.
func (m *Mapper) Map(va, pa uint64, perms uint64, key uint16) error {
	if va%mem.PageSize != 0 || pa%mem.PageSize != 0 {
		return fmt.Errorf("mmu: unaligned mapping %#x -> %#x", va, pa)
	}
	if sv39Invalid(va) {
		return fmt.Errorf("mmu: virtual address %#x not canonical for Sv39", va)
	}
	if key > pteKeyMask {
		return fmt.Errorf("mmu: key %d exceeds 10-bit PTE field", key)
	}
	table := m.root
	for level := 2; level >= 1; level-- {
		vpn := va >> (mem.PageShift + 9*uint(level)) & 0x1ff
		pteAddr := table + vpn*8
		pte, err := m.phys.ReadUint(pteAddr, 8)
		if err != nil {
			return err
		}
		if pte&PTEValid == 0 {
			frame, err := m.alloc.AllocFrame()
			if err != nil {
				return fmt.Errorf("mmu: allocating level-%d table: %w", level-1, err)
			}
			pte = MakeNonLeafPTE(frame >> mem.PageShift)
			if err := m.phys.WriteUint(pteAddr, pte, 8); err != nil {
				return err
			}
		} else if pte&(PTERead|PTEWrite|PTEExec) != 0 {
			return fmt.Errorf("mmu: %#x already covered by a superpage", va)
		}
		table = PTEPPN(pte) << mem.PageShift
	}
	vpn0 := va >> mem.PageShift & 0x1ff
	return m.phys.WriteUint(table+vpn0*8, MakePTE(pa>>mem.PageShift, perms, key), 8)
}

// Lookup returns the leaf PTE covering va, or ok=false if unmapped.
func (m *Mapper) Lookup(va uint64) (pte uint64, pteAddr uint64, ok bool) {
	if sv39Invalid(va) {
		return 0, 0, false
	}
	table := m.root
	for level := 2; level >= 1; level-- {
		vpn := va >> (mem.PageShift + 9*uint(level)) & 0x1ff
		entry, err := m.phys.ReadUint(table+vpn*8, 8)
		if err != nil || entry&PTEValid == 0 || entry&(PTERead|PTEWrite|PTEExec) != 0 {
			return 0, 0, false
		}
		table = PTEPPN(entry) << mem.PageShift
	}
	vpn0 := va >> mem.PageShift & 0x1ff
	addr := table + vpn0*8
	pte, err := m.phys.ReadUint(addr, 8)
	if err != nil || pte&PTEValid == 0 {
		return 0, 0, false
	}
	return pte, addr, true
}

// Protect rewrites the permissions and key of an existing mapping.
// This is the mechanism behind the kernel's mprotect-with-key API.
func (m *Mapper) Protect(va uint64, perms uint64, key uint16) error {
	if key > pteKeyMask {
		return fmt.Errorf("mmu: key %d exceeds 10-bit PTE field", key)
	}
	pte, pteAddr, ok := m.Lookup(va)
	if !ok {
		return fmt.Errorf("mmu: protect of unmapped address %#x", va)
	}
	npte := MakePTE(PTEPPN(pte), perms, key)
	return m.phys.WriteUint(pteAddr, npte, 8)
}

// Unmap removes the leaf mapping covering va.
func (m *Mapper) Unmap(va uint64) error {
	_, pteAddr, ok := m.Lookup(va)
	if !ok {
		return fmt.Errorf("mmu: unmap of unmapped address %#x", va)
	}
	return m.phys.WriteUint(pteAddr, 0, 8)
}
