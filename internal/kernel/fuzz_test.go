package kernel

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"roload/internal/asm"
	"roload/internal/cpu"
)

// fuzzBlockWords caps how much raw code one fuzz case plants: enough
// for several translated blocks (and a mid-page straddle), small
// enough to keep each execution fast.
const fuzzBlockWords = 64

// buildFuzzProgram embeds raw bytes as executable words between the
// entry point and a clean exit stub, via the real assembler. Arbitrary
// words are fine: undecodable ones trap (SIGILL), wild branches fault
// or spin into the step limit — every outcome is a legal observable,
// it just has to be the SAME observable on every engine.
func buildFuzzProgram(raw []byte) (*asm.Image, error) {
	n := len(raw) / 4
	if n == 0 {
		return nil, fmt.Errorf("no full words")
	}
	if n > fuzzBlockWords {
		n = fuzzBlockWords
	}
	var b strings.Builder
	b.WriteString("_start:\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "\t.word 0x%08x\n", binary.LittleEndian.Uint32(raw[4*i:]))
	}
	b.WriteString("\tli a0, 0\n\tli a7, 93\n\tecall\n")
	return asm.Assemble(b.String(), asm.DefaultOptions())
}

// FuzzBlockTranslate feeds raw instruction sequences through the
// assembler and runs them on all three execution engines: the block
// engine's observables (run result, architectural state, statistics,
// MMU and cache counters) must be bit-identical to the interpreter's,
// whatever garbage the decoder meets — illegal encodings, compressed
// parcels, branches into the middle of other instructions, stores over
// the block's own code, or runs that never terminate (step limit).
func FuzzBlockTranslate(f *testing.F) {
	word := func(ws ...uint32) []byte {
		out := make([]byte, 4*len(ws))
		for i, w := range ws {
			binary.LittleEndian.PutUint32(out[4*i:], w)
		}
		return out
	}
	f.Add(word(0x00B00513, 0x00008067))             // li a0, 11; ret
	f.Add(word(0xFFFFFFFF, 0x00000000))             // illegal then zero halves
	f.Add(word(0x00B00513, 0xFE000EE3))             // addi; branch back to start
	f.Add(word(0x02C5C533, 0x02C58533, 0x0000006F)) // div, mul, jal 0 (spin)
	f.Add(word(0x00A5A023, 0x0005A503))             // store then load
	f.Add([]byte{0x01, 0x00, 0x13, 0x05, 0xB0, 0x00, 0x82, 0x80})

	f.Fuzz(func(t *testing.T, raw []byte) {
		img, err := buildFuzzProgram(raw)
		if err != nil {
			t.Skip()
		}

		type outcome struct {
			res    RunResult
			errMsg string
			state  cpu.State
		}
		run := func(noFastPath, noBlocks bool) outcome {
			cfg := FullSystem()
			cfg.MaxSteps = 20_000
			cfg.CPU.NoFastPath = noFastPath
			cfg.CPU.NoBlocks = noBlocks
			sys := NewSystem(cfg)
			p, err := sys.Spawn(img)
			if err != nil {
				t.Skip() // image rejected identically regardless of engine
			}
			res, err := sys.Run(p)
			o := outcome{res: res, state: sys.CPU().State()}
			if err != nil {
				o.errMsg = err.Error()
			}
			return o
		}

		interp := run(true, true)
		for _, eng := range []struct {
			name                 string
			noFastPath, noBlocks bool
		}{
			{"blocks", false, false},
			{"fast", false, true},
		} {
			got := run(eng.noFastPath, eng.noBlocks)
			if got.errMsg != interp.errMsg {
				t.Fatalf("%s error %q, interp %q", eng.name, got.errMsg, interp.errMsg)
			}
			if !reflect.DeepEqual(got.res, interp.res) {
				t.Fatalf("%s result differs:\n%s: %+v\ninterp: %+v", eng.name, eng.name, got.res, interp.res)
			}
			if !reflect.DeepEqual(got.state, interp.state) {
				t.Fatalf("%s architectural state differs:\n%s: %+v\ninterp: %+v", eng.name, eng.name, got.state, interp.state)
			}
		}
	})
}
