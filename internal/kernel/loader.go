package kernel

import (
	"context"
	"fmt"

	"roload/internal/asm"
	"roload/internal/cpu"
	"roload/internal/isa"
	"roload/internal/mem"
	"roload/internal/mmu"
	"roload/internal/obs"
)

// Address-space layout constants.
const (
	stackTopVA   = 0x7f000000
	stackSize    = 256 << 10
	mmapBaseVA   = 0x40000000
	maxBrkGrowth = 64 << 20
)

func permBits(p asm.Perm) uint64 {
	var bits uint64 = mmu.PTEUser
	if p&asm.PermRead != 0 {
		bits |= mmu.PTERead
	}
	if p&asm.PermWrite != 0 {
		bits |= mmu.PTEWrite
	}
	if p&asm.PermExec != 0 {
		bits |= mmu.PTEExec
	}
	return bits
}

// Spawn loads an image into a fresh address space. Following the
// paper, the kernel installs the section keys during executable
// loading — but only when the kernel is ROLoad-aware; the unmodified
// kernel loads keyed sections as plain read-only data with key 0.
func (s *System) Spawn(img *asm.Image) (*Process, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	mapper, err := mmu.NewMapper(s.phys, s)
	if err != nil {
		return nil, err
	}
	p := &Process{
		sys:        s,
		mapper:     mapper,
		image:      img,
		mmapNext:   mmapBaseVA,
		auditStart: s.audit.Len(),
	}

	var maxVA uint64
	for _, sec := range img.Sections {
		key := sec.Key
		if !s.cfg.KernelROLoad {
			key = 0
		}
		bits := permBits(sec.Perm)
		pages := (sec.Size + mem.PageSize - 1) / mem.PageSize
		if sec.Size == 0 {
			continue
		}
		for i := uint64(0); i < pages; i++ {
			frame, err := s.AllocFrame()
			if err != nil {
				return nil, err
			}
			if err := mapper.Map(sec.VA+i*mem.PageSize, frame, bits, key); err != nil {
				return nil, fmt.Errorf("kernel: mapping %s: %w", sec.Name, err)
			}
		}
		p.notePages(pages)
		if len(sec.Data) > 0 {
			if err := p.PokeMem(sec.VA, sec.Data); err != nil {
				return nil, err
			}
		}
		if end := sec.VA + pageRoundUp(sec.Size); end > maxVA {
			maxVA = end
		}
	}

	// Heap starts one guard page above the highest section.
	p.brkStart = maxVA + mem.PageSize
	p.brk = p.brkStart

	// Stack.
	p.stackHigh = stackTopVA
	p.stackLow = stackTopVA - stackSize
	for va := p.stackLow; va < p.stackHigh; va += mem.PageSize {
		frame, err := s.AllocFrame()
		if err != nil {
			return nil, err
		}
		if err := mapper.Map(va, frame, mmu.PTERead|mmu.PTEWrite|mmu.PTEUser, 0); err != nil {
			return nil, err
		}
	}
	p.notePages(stackSize / mem.PageSize)

	// Architectural state.
	s.cpu.SetPageTableRoot(mapper.Root())
	for i := range s.cpu.Regs {
		s.cpu.Regs[i] = 0
	}
	s.cpu.PC = img.Entry
	s.cpu.Regs[isa.SP] = p.stackHigh - 64 // small red zone
	if gpBase, ok := img.Symbol("__global_pointer$"); ok {
		s.cpu.Regs[isa.GP] = gpBase
	}
	return p, nil
}

func pageRoundUp(n uint64) uint64 {
	if n%mem.PageSize == 0 {
		return n
	}
	return n + mem.PageSize - n%mem.PageSize
}

// Run executes the process until it exits or is killed by a signal.
// It is the context-free form of RunContext.
func (s *System) Run(p *Process) (RunResult, error) {
	return s.RunContext(context.Background(), p)
}

// RunContext executes the process until it exits, is killed by a
// signal, exhausts the instruction budget, or ctx is done. The context
// is polled every Config.CancelEvery retired instructions; polling
// never changes simulated observables — a run that completes under a
// cancellable context is bit-identical to one under
// context.Background().
//
// On budget exhaustion the error is a *StepLimitError; on cancellation
// it is a *CanceledError wrapping ctx.Err(). Both are returned
// alongside a partial RunResult snapshot (cycles, instructions, stdout
// and counters so far) so callers can report progress; the process is
// not marked finished and the machine remains resumable.
func (s *System) RunContext(ctx context.Context, p *Process) (RunResult, error) {
	max := s.cfg.MaxSteps
	if max == 0 {
		max = 1 << 40
	}
	return s.runTo(ctx, p, s.cpu.Instret+max, max)
}

// RunUntil executes the process until it exits, is killed, or the
// retire count reaches target (an absolute instret value — unlike
// Config.MaxSteps, which is relative to the current position). It is
// the sync-point primitive of the redundant-execution supervisor:
// driving K replicas to the same absolute retire count lines their
// machines up for a digest cross-check, and replaying a restored
// replica to the supervisor's current sync point is a single call
// whatever instret the rollback landed on. Reaching target returns a
// partial RunResult and a *StepLimitError; context semantics are
// RunContext's. A target at or below the current retire count returns
// immediately.
func (s *System) RunUntil(ctx context.Context, p *Process, target uint64) (RunResult, error) {
	if p.finished {
		return p.result, nil
	}
	if target <= s.cpu.Instret {
		return s.partial(p), &StepLimitError{Limit: 0, Instret: s.cpu.Instret}
	}
	return s.runTo(ctx, p, target, target-s.cpu.Instret)
}

// runTo is the shared body of RunContext and RunUntil: execute until
// the process terminates, ctx fires, or instret reaches deadline
// (limit is the budget reported by the StepLimitError).
func (s *System) runTo(ctx context.Context, p *Process, deadline, limit uint64) (RunResult, error) {
	if p.finished {
		return p.result, nil
	}
	max := limit
	stride := s.cfg.CancelEvery
	if stride == 0 {
		stride = DefaultCancelEvery
	}
	// A context that can never be cancelled (context.Background and
	// friends) and no progress hook need no polling at all: the core
	// runs full budget slices exactly like the pre-context kernel did.
	// The progress hook shares the cancellation poll so telemetry adds
	// no second stride mechanism to the core.
	var stop func() bool
	switch {
	case ctx.Done() != nil && s.cfg.Progress != nil:
		stop = func() bool {
			s.cfg.Progress(s.cpu.Instret, s.cpu.Cycles)
			return ctx.Err() != nil
		}
	case ctx.Done() != nil:
		stop = func() bool { return ctx.Err() != nil }
	case s.cfg.Progress != nil:
		stop = func() bool {
			s.cfg.Progress(s.cpu.Instret, s.cpu.Cycles)
			return false
		}
	}
	for s.cpu.Instret < deadline {
		trap := s.cpu.RunInterruptible(deadline-s.cpu.Instret, stride, stop)
		if trap == nil {
			if err := ctx.Err(); err != nil {
				return s.partial(p), &CanceledError{Cause: err}
			}
			break // budget exhausted
		}
		switch trap.Kind {
		case cpu.TrapECall:
			p.syscalls++
			if s.probe != nil {
				s.probe.Event(obs.Event{Kind: obs.KindSyscall, PC: trap.PC,
					Num: s.cpu.Regs[isa.A7], Cycle: s.cpu.Cycles})
			}
			done, res := s.syscall(p)
			if done {
				return s.finish(p, res), nil
			}
		case cpu.TrapSpurious:
			// An injected asynchronous trap: the kernel services and
			// dismisses it (the trap cost was charged by the core) and
			// execution resumes at the interrupted instruction.
		case cpu.TrapPageFault:
			if s.probe != nil {
				s.probe.Event(obs.Event{Kind: obs.KindPageFault, PC: trap.PC,
					VA: trap.Fault.VA, Cycle: s.cpu.Cycles})
			}
			res := RunResult{Signal: SIGSEGV, FaultPC: trap.PC, FaultVA: trap.Fault.VA}
			// The modified kernel distinguishes ROLoad faults from
			// benign load page faults (Section III-B) and reports the
			// violation; the stock kernel just sees a segfault.
			if s.cfg.KernelROLoad && trap.Fault.ROLoad {
				res.ROLoadViolation = true
				res.FaultWantKey = trap.Fault.WantKey
				res.FaultGotKey = trap.Fault.GotKey
				rec := obs.AuditRecord{
					Cycle:       s.cpu.Cycles,
					Instret:     s.cpu.Instret,
					PC:          trap.PC,
					Func:        codeSymTable(p.image).Name(trap.PC),
					VA:          trap.Fault.VA,
					WantKey:     trap.Fault.WantKey,
					GotKey:      trap.Fault.GotKey,
					NotReadOnly: trap.Fault.NotReadOnly,
					Unmapped:    trap.Fault.Unmapped,
					Signal:      SIGSEGV.String(),
				}
				s.audit.Record(rec)
			}
			return s.finish(p, res), nil
		case cpu.TrapIllegalInst:
			return s.finish(p, RunResult{Signal: SIGILL, FaultPC: trap.PC, FaultVA: trap.PC}), nil
		case cpu.TrapEBreak:
			return s.finish(p, RunResult{Signal: SIGTRAP, FaultPC: trap.PC, FaultVA: trap.PC}), nil
		case cpu.TrapMisaligned:
			return s.finish(p, RunResult{Signal: SIGSEGV, FaultPC: trap.PC, FaultVA: trap.PC}), nil
		default:
			return RunResult{}, fmt.Errorf("kernel: unexpected trap %v", trap)
		}
	}
	return s.partial(p), &StepLimitError{Limit: max, Instret: s.cpu.Instret}
}

// partial snapshots an unfinished run — the counters, output and audit
// records accumulated when a budget ran out or a context fired. Unlike
// finish it does not mark the process finished.
func (s *System) partial(p *Process) RunResult {
	var res RunResult
	res.SyscallCnt = p.syscalls
	res.Cycles = s.cpu.Cycles
	res.Instret = s.cpu.Instret
	res.MemPeakKiB = p.peakPages * mem.PageSize / 1024
	res.Stdout = p.stdout.Bytes()
	res.CPUStats = s.cpu.Stats()
	res.IMMU, res.DMMU = s.cpu.MMUStats()
	res.IC, res.DC = s.cpu.CacheStats()
	res.Audit = p.runAudit()
	return res
}

// runAudit returns a copy of the audit records logged since this
// process was spawned — injected faults and detected violations, in
// order.
func (p *Process) runAudit() []obs.AuditRecord {
	recs := p.sys.audit.Records()
	if p.auditStart >= len(recs) {
		return nil
	}
	return append([]obs.AuditRecord(nil), recs[p.auditStart:]...)
}

// codeSymTable symbolizes against the image's executable sections only
// (cold path: built on faults, not per instruction).
func codeSymTable(img *asm.Image) *obs.SymTable {
	lo, hi := ^uint64(0), uint64(0)
	for _, sec := range img.Sections {
		if sec.Perm&asm.PermExec == 0 {
			continue
		}
		if sec.VA < lo {
			lo = sec.VA
		}
		if end := sec.VA + sec.Size; end > hi {
			hi = end
		}
	}
	if lo >= hi { // no executable section: keep every symbol
		lo, hi = 0, ^uint64(0)
	}
	return obs.NewSymTable(img.Symbols, lo, hi)
}

func (s *System) finish(p *Process, res RunResult) RunResult {
	if s.probe != nil && res.Signal != SigNone {
		s.probe.Event(obs.Event{Kind: obs.KindSignal, PC: res.FaultPC,
			VA: res.FaultVA, Num: uint64(res.Signal), Cycle: s.cpu.Cycles})
	}
	res.SyscallCnt = p.syscalls
	res.Cycles = s.cpu.Cycles
	res.Instret = s.cpu.Instret
	res.MemPeakKiB = p.peakPages * mem.PageSize / 1024
	res.Stdout = p.stdout.Bytes()
	res.CPUStats = s.cpu.Stats()
	res.IMMU, res.DMMU = s.cpu.MMUStats()
	res.IC, res.DC = s.cpu.CacheStats()
	res.Audit = p.runAudit()
	p.finished = true
	p.result = res
	return res
}

// syscall dispatches the ecall at the current register state. It
// returns done=true when the process terminated.
func (s *System) syscall(p *Process) (bool, RunResult) {
	c := s.cpu
	nr := c.Regs[isa.A7]
	a0, a1, a2 := c.Regs[isa.A0], c.Regs[isa.A1], c.Regs[isa.A2]
	var ret uint64
	switch nr {
	case SysExit:
		return true, RunResult{Exited: true, Code: int(int64(a0))}

	case SysWrite:
		if a0 != 1 && a0 != 2 {
			ret = ^uint64(0) // -1: only stdout/stderr exist
			break
		}
		if a2 > 1<<20 {
			ret = ^uint64(0)
			break
		}
		data, err := p.PeekMem(a1, int(a2))
		if err != nil {
			ret = ^uint64(0)
			break
		}
		p.stdout.Write(data)
		ret = a2

	case SysBrk:
		if a0 == 0 || a0 < p.brkStart || a0 > p.brkStart+maxBrkGrowth {
			ret = p.brk
			break
		}
		newEnd := pageRoundUp(a0)
		for va := pageRoundUp(p.brk); va < newEnd; va += mem.PageSize {
			frame, err := s.AllocFrame()
			if err != nil {
				ret = p.brk
				break
			}
			if err := p.mapper.Map(va, frame, mmu.PTERead|mmu.PTEWrite|mmu.PTEUser, 0); err != nil {
				ret = p.brk
				break
			}
			p.notePages(1)
		}
		p.brk = a0
		ret = p.brk

	case SysMmap:
		length := pageRoundUp(a1)
		if length == 0 || length > 64<<20 {
			ret = ^uint64(0)
			break
		}
		prot := a2
		bits, key := s.decodeProt(prot)
		base := p.mmapNext
		ok := true
		for va := base; va < base+length; va += mem.PageSize {
			frame, err := s.AllocFrame()
			if err != nil {
				ok = false
				break
			}
			if err := p.mapper.Map(va, frame, bits, key); err != nil {
				ok = false
				break
			}
			p.notePages(1)
		}
		if !ok {
			ret = ^uint64(0)
			break
		}
		p.mmapNext = base + length + mem.PageSize // guard gap
		ret = base

	case SysMprotect:
		length := pageRoundUp(a1)
		prot := a2
		bits, key := s.decodeProt(prot)
		ok := true
		for va := a0 &^ uint64(mem.PageSize-1); va < a0+length; va += mem.PageSize {
			if err := p.mapper.Protect(va, bits, key); err != nil {
				ok = false
				break
			}
			c.FlushTLBPage(va)
		}
		if ok {
			ret = 0
		} else {
			ret = ^uint64(0)
		}

	case SysMunmap:
		length := pageRoundUp(a1)
		ok := true
		for va := a0 &^ uint64(mem.PageSize-1); va < a0+length; va += mem.PageSize {
			if err := p.mapper.Unmap(va); err != nil {
				ok = false
				break
			}
			c.FlushTLBPage(va)
			if p.mappedPages > 0 {
				p.mappedPages--
			}
		}
		if ok {
			ret = 0
		} else {
			ret = ^uint64(0)
		}

	case SysAttackHook:
		if s.attackHook != nil {
			if err := s.attackHook(p); err != nil {
				// The corruption primitive itself failed (e.g. the page
				// was not writable): the "vulnerability" cannot fire.
				ret = ^uint64(0)
				break
			}
		}
		ret = 0

	default:
		ret = ^uint64(0) // -ENOSYS
	}
	c.Regs[isa.A0] = ret
	return false, RunResult{}
}

// decodeProt splits a prot word into PTE bits and a key. The
// unmodified kernel ignores the key bits entirely — user programs on
// that system cannot create keyed pages.
func (s *System) decodeProt(prot uint64) (uint64, uint16) {
	var bits uint64 = mmu.PTEUser
	if prot&ProtRead != 0 {
		bits |= mmu.PTERead
	}
	if prot&ProtWrite != 0 {
		bits |= mmu.PTEWrite
	}
	if prot&ProtExec != 0 {
		bits |= mmu.PTEExec
	}
	key := uint16(prot >> ProtKeyShift & isa.MaxKey)
	if !s.cfg.KernelROLoad {
		key = 0
	}
	return bits, key
}
