package kernel

import (
	"strings"
	"testing"

	"roload/internal/asm"
)

func mustImage(t *testing.T, src string) *asm.Image {
	t.Helper()
	img, err := asm.Assemble(src, asm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func runSrc(t *testing.T, cfg Config, src string) RunResult {
	t.Helper()
	sys := NewSystem(cfg)
	p, err := sys.Spawn(mustImage(t, src))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

const exitSrc = `
_start:
	li a0, 7
	li a7, 93
	ecall
`

func TestExitSyscall(t *testing.T) {
	res := runSrc(t, FullSystem(), exitSrc)
	if !res.Exited || res.Code != 7 {
		t.Fatalf("res = %+v", res)
	}
	if res.Cycles == 0 || res.Instret == 0 {
		t.Error("no counters recorded")
	}
}

func TestWriteSyscall(t *testing.T) {
	res := runSrc(t, FullSystem(), `
_start:
	li a0, 1
	la a1, msg
	li a2, 5
	li a7, 64
	ecall
	li a0, 0
	li a7, 93
	ecall
	.rodata
msg: .asciz "hello"
`)
	if string(res.Stdout) != "hello" {
		t.Errorf("stdout = %q", res.Stdout)
	}
	if !res.Exited || res.Code != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestWriteBadFD(t *testing.T) {
	res := runSrc(t, FullSystem(), `
_start:
	li a0, 5
	la a1, msg
	li a2, 3
	li a7, 64
	ecall
	mv a1, a0   # save return
	li a7, 93
	li a0, 0
	bne a1, zero, fail
	li a0, 1    # write unexpectedly succeeded? a0=1 means test failure
fail:
	ecall
	.rodata
msg: .asciz "abc"
`)
	// write returned -1, so a1 != 0, so exit code 0... wait: bne jumps
	// to fail keeping a0=0. Exit code must be 0.
	if !res.Exited || res.Code != 0 {
		t.Errorf("res = %+v", res)
	}
	if len(res.Stdout) != 0 {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

// The central security behaviour: a hardened binary's ld.ro succeeds on
// the fully modified system and the kernel reports ROLoad violations
// on key mismatch.
const hardenedOK = `
_start:
	la a0, gfpt
	ld.ro a1, (a0), 111
	jalr a1          # call foo via protected pointer
	li a7, 93
	ecall            # exit(foo()) = exit(42)
foo:
	li a0, 42
	ret
	.section .rodata.key.111
gfpt: .quad foo
`

func TestHardenedBinaryOnFullSystem(t *testing.T) {
	res := runSrc(t, FullSystem(), hardenedOK)
	if !res.Exited || res.Code != 42 {
		t.Fatalf("res = %+v", res)
	}
}

const hardenedWrongKey = `
_start:
	la a0, gfpt
	ld.ro a1, (a0), 222   # wrong key: table is 111
	jalr a1
	li a7, 93
	ecall
foo:
	li a0, 42
	ret
	.section .rodata.key.111
gfpt: .quad foo
`

func TestROLoadViolationReported(t *testing.T) {
	res := runSrc(t, FullSystem(), hardenedWrongKey)
	if res.Exited {
		t.Fatal("process should have been killed")
	}
	if res.Signal != SIGSEGV {
		t.Fatalf("signal = %v", res.Signal)
	}
	if !res.ROLoadViolation {
		t.Fatal("kernel failed to distinguish the ROLoad fault")
	}
	if res.FaultWantKey != 222 || res.FaultGotKey != 111 {
		t.Errorf("fault keys = %d/%d", res.FaultWantKey, res.FaultGotKey)
	}
}

// On the processor-only system the kernel never installs keys, so the
// hardened binary's very first ld.ro faults (keyed section loaded with
// key 0). The stock kernel reports a plain SIGSEGV.
func TestHardenedBinaryOnProcessorOnlySystem(t *testing.T) {
	res := runSrc(t, ProcessorOnlySystem(), hardenedOK)
	if res.Exited {
		t.Fatal("expected kill")
	}
	if res.Signal != SIGSEGV {
		t.Fatalf("signal = %v", res.Signal)
	}
	if res.ROLoadViolation {
		t.Error("stock kernel cannot report ROLoad violations")
	}
}

// On the baseline system ld.ro is an illegal instruction.
func TestHardenedBinaryOnBaselineSystem(t *testing.T) {
	res := runSrc(t, BaselineSystem(), hardenedOK)
	if res.Signal != SIGILL {
		t.Fatalf("signal = %v, want SIGILL", res.Signal)
	}
}

// Unhardened binaries run identically on all three systems — the
// backward-compatibility claim of Section V-B.
func TestBackwardCompatibility(t *testing.T) {
	src := `
_start:
	li a0, 0
	li a1, 100
loop:
	add a0, a0, a1
	addi a1, a1, -1
	bnez a1, loop
	li a7, 93
	ecall
`
	var results []RunResult
	for _, cfg := range []Config{BaselineSystem(), ProcessorOnlySystem(), FullSystem()} {
		results = append(results, runSrc(t, cfg, src))
	}
	for i, res := range results {
		if !res.Exited || res.Code != 5050 {
			t.Fatalf("system %d: res = %+v", i, res)
		}
	}
	if results[0].Cycles != results[1].Cycles || results[1].Cycles != results[2].Cycles {
		t.Errorf("cycle counts differ across systems: %d %d %d",
			results[0].Cycles, results[1].Cycles, results[2].Cycles)
	}
	if results[0].Instret != results[2].Instret {
		t.Errorf("instret differs: %d vs %d", results[0].Instret, results[2].Instret)
	}
}

func TestBrk(t *testing.T) {
	res := runSrc(t, FullSystem(), `
_start:
	li a0, 0
	li a7, 214
	ecall            # a0 = current brk
	mv s0, a0
	li a1, 8192
	add a0, a0, a1
	li a7, 214
	ecall            # grow by 2 pages
	sd s0, 0(s0)     # touch new heap
	ld a1, 0(s0)
	bne a1, s0, bad
	li a0, 0
	li a7, 93
	ecall
bad:
	li a0, 1
	li a7, 93
	ecall
`)
	if !res.Exited || res.Code != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestMmapWithKeyAndROLoad(t *testing.T) {
	// Runtime allowlist construction: mmap RW, write a value, mprotect
	// to read-only with key 77, then ld.ro it — the full kernel API
	// path the paper describes (page key setting up via mmap/mprotect).
	src := `
_start:
	li a0, 0
	li a1, 4096
	li a2, 3        # PROT_READ|PROT_WRITE
	li a7, 222
	ecall           # mmap
	mv s0, a0
	li a1, 123
	sd a1, 0(s0)    # write allowlist entry
	mv a0, s0
	li a1, 4096
	li a2, 0x4D0001 # PROT_READ | key 77<<16
	li a7, 226
	ecall           # mprotect
	bnez a0, bad
	ld.ro a1, (s0), 77
	li a2, 123
	bne a1, a2, bad
	li a0, 0
	li a7, 93
	ecall
bad:
	li a0, 1
	li a7, 93
	ecall
`
	res := runSrc(t, FullSystem(), src)
	if !res.Exited || res.Code != 0 {
		t.Fatalf("res = %+v", res)
	}

	// Same binary on the processor-only system: mprotect silently
	// drops the key, so the ld.ro faults with key mismatch (0 != 77).
	res = runSrc(t, ProcessorOnlySystem(), src)
	if res.Signal != SIGSEGV {
		t.Fatalf("processor-only: res = %+v", res)
	}
}

func TestMprotectRevokesWrite(t *testing.T) {
	res := runSrc(t, FullSystem(), `
_start:
	li a0, 0
	li a1, 4096
	li a2, 3
	li a7, 222
	ecall
	mv s0, a0
	mv a0, s0
	li a1, 4096
	li a2, 1       # PROT_READ
	li a7, 226
	ecall
	sd zero, 0(s0) # must fault
	li a0, 9
	li a7, 93
	ecall
`)
	if res.Exited {
		t.Fatal("store to sealed page did not fault")
	}
	if res.Signal != SIGSEGV || res.ROLoadViolation {
		t.Fatalf("res = %+v", res)
	}
}

func TestMunmap(t *testing.T) {
	res := runSrc(t, FullSystem(), `
_start:
	li a0, 0
	li a1, 4096
	li a2, 3
	li a7, 222
	ecall
	mv s0, a0
	mv a0, s0
	li a1, 4096
	li a7, 215
	ecall          # munmap
	ld a1, 0(s0)   # must fault
	li a0, 0
	li a7, 93
	ecall
`)
	if res.Exited || res.Signal != SIGSEGV {
		t.Fatalf("res = %+v", res)
	}
}

func TestUnknownSyscallReturnsError(t *testing.T) {
	res := runSrc(t, FullSystem(), `
_start:
	li a7, 9999
	ecall
	li a7, 93
	# a0 is -1 from the failed syscall; exit code -1&0xff... just pass it
	li a0, 0
	ecall
`)
	if !res.Exited || res.Code != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestEbreakKills(t *testing.T) {
	res := runSrc(t, FullSystem(), "_start:\n\tebreak\n")
	if res.Signal != SIGTRAP {
		t.Fatalf("res = %+v", res)
	}
}

func TestStackWorks(t *testing.T) {
	res := runSrc(t, FullSystem(), `
_start:
	addi sp, sp, -16
	li a0, 99
	sd a0, 8(sp)
	ld a1, 8(sp)
	addi sp, sp, 16
	mv a0, a1
	li a7, 93
	ecall
`)
	if !res.Exited || res.Code != 99 {
		t.Fatalf("res = %+v", res)
	}
}

func TestMemoryAccounting(t *testing.T) {
	res := runSrc(t, FullSystem(), exitSrc)
	if res.MemPeakKiB == 0 {
		t.Fatal("no memory accounted")
	}
	// At least text + stack.
	if res.MemPeakKiB < stackSize/1024 {
		t.Errorf("mem = %d KiB", res.MemPeakKiB)
	}
}

func TestCorruptMemRespectsWritability(t *testing.T) {
	sys := NewSystem(FullSystem())
	p, err := sys.Spawn(mustImage(t, hardenedOK))
	if err != nil {
		t.Fatal(err)
	}
	gfpt, _ := p.Sym("gfpt")
	// The attacker cannot overwrite the read-only keyed GFPT...
	if err := p.CorruptUint(gfpt, 0xdeadbeef, 8); err == nil {
		t.Fatal("attacker wrote to a read-only keyed page")
	}
	// ...but can overwrite the stack.
	if err := p.CorruptUint(stackTopVA-128, 0xdeadbeef, 8); err != nil {
		t.Fatalf("stack corruption failed: %v", err)
	}
}

func TestPeekPoke(t *testing.T) {
	sys := NewSystem(FullSystem())
	p, err := sys.Spawn(mustImage(t, hardenedOK))
	if err != nil {
		t.Fatal(err)
	}
	gfpt, _ := p.Sym("gfpt")
	foo, _ := p.Sym("foo")
	v, err := p.PeekUint(gfpt, 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != foo {
		t.Errorf("gfpt = %#x, want %#x", v, foo)
	}
	// Kernel-privilege poke bypasses read-only permissions.
	if err := p.PokeMem(gfpt, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.PeekMem(0x9000000, 8); err == nil {
		t.Error("peek of unmapped memory succeeded")
	}
	if err := p.PokeMem(0x9000000, []byte{1}); err == nil {
		t.Error("poke of unmapped memory succeeded")
	}
}

func TestRunawayBudget(t *testing.T) {
	cfg := FullSystem()
	cfg.MaxSteps = 10000
	sys := NewSystem(cfg)
	p, err := sys.Spawn(mustImage(t, "_start:\n\tj _start\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(p); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v", err)
	}
}

func TestSpawnRejectsInvalidImage(t *testing.T) {
	sys := NewSystem(FullSystem())
	bad := &asm.Image{Sections: []asm.Section{{
		Name: "x", VA: 0x10001, Size: 4, Perm: asm.PermRead,
	}}}
	if _, err := sys.Spawn(bad); err == nil {
		t.Fatal("invalid image accepted")
	}
}

func TestProtWithKey(t *testing.T) {
	prot := ProtWithKey(ProtRead, 77)
	if prot != 0x4D0001 {
		t.Errorf("prot = %#x", prot)
	}
}
