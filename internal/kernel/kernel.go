// Package kernel implements the operating-system layer of the ROLoad
// prototype: program loading, virtual memory management with page keys,
// the syscall interface, and the page-fault handling that distinguishes
// ROLoad faults from benign ones (paper Section III-B).
//
// The paper's three evaluation systems map onto Config:
//
//	baseline:               ProcessorROLoad=false, KernelROLoad=false
//	processor-modified:     ProcessorROLoad=true,  KernelROLoad=false
//	processor+kernel-mod.:  ProcessorROLoad=true,  KernelROLoad=true
//
// Only the fully modified system can run hardened binaries: without
// kernel support, section keys are never installed in the page tables,
// so the very first ld.ro faults.
package kernel

import (
	"bytes"
	"fmt"

	"roload/internal/asm"
	"roload/internal/cache"
	"roload/internal/cpu"
	"roload/internal/mem"
	"roload/internal/mmu"
	"roload/internal/obs"
)

// Signal numbers delivered on fatal traps.
type Signal int

const (
	SigNone Signal = 0
	SIGILL  Signal = 4
	SIGTRAP Signal = 5
	SIGSEGV Signal = 11
)

func (s Signal) String() string {
	switch s {
	case SigNone:
		return "none"
	case SIGILL:
		return "SIGILL"
	case SIGTRAP:
		return "SIGTRAP"
	case SIGSEGV:
		return "SIGSEGV"
	}
	return fmt.Sprintf("signal(%d)", int(s))
}

// Config selects which of the paper's system variants to build.
type Config struct {
	// ProcessorROLoad enables ld.ro decode + the MMU key check.
	ProcessorROLoad bool
	// KernelROLoad enables key management (mmap/mprotect keys, keyed
	// section loading) and ROLoad-aware fault reporting.
	KernelROLoad bool
	// MemBytes is the physical memory size (default 256 MiB; the
	// FPGA board had 4 GiB but the workloads need far less).
	MemBytes uint64
	// CPU overrides the core configuration; zero value uses defaults
	// with ROLoadEnabled tracking ProcessorROLoad.
	CPU cpu.Config
	// MaxSteps bounds one Run invocation (0 = 2^40 instructions).
	MaxSteps uint64
	// CancelEvery is the cooperative-cancellation stride of RunContext:
	// the context is polled every CancelEvery retired instructions
	// (0 = DefaultCancelEvery). The stride changes host latency only —
	// simulated observables are bit-identical for any stride.
	CancelEvery uint64
	// Progress, when non-nil, is called with the current retire and
	// cycle counts at every CancelEvery stride boundary — the live
	// progress-tick source for streamed telemetry. It piggybacks on the
	// cancellation poll, so like the poll it changes host-side behaviour
	// only: simulated observables are bit-identical with or without it.
	// Called from the run-driving goroutine; must not block.
	Progress func(instret, cycles uint64)
}

// DefaultCancelEvery is the default RunContext cancellation stride. At
// the simulator's throughput (tens of simulated MIPS) it bounds
// cancellation latency to a few host milliseconds while keeping the
// poll cost unmeasurable.
const DefaultCancelEvery = 65536

// FullSystem returns the processor-and-kernel-modified configuration.
func FullSystem() Config {
	return Config{ProcessorROLoad: true, KernelROLoad: true}
}

// BaselineSystem returns the unmodified system configuration.
func BaselineSystem() Config {
	return Config{}
}

// ProcessorOnlySystem returns the processor-modified configuration.
func ProcessorOnlySystem() Config {
	return Config{ProcessorROLoad: true}
}

// System is one simulated machine: physical memory, a core, and this
// kernel.
type System struct {
	cfg  Config
	phys *mem.Physical
	cpu  *cpu.CPU

	frameNext uint64
	frameEnd  uint64

	attackHook func(*Process) error

	// probe, when non-nil, receives kernel-level events (syscalls,
	// page faults, signal deliveries) on top of whatever the core
	// emits; SetProbe wires both at once.
	probe obs.Probe
	// audit accumulates one record per detected ROLoad violation —
	// the fault path's forensic log (Section III-B), dumped by tools
	// when a process dies with SIGSEGV.
	audit obs.Audit
}

// SetProbe attaches p to the kernel and, transitively, to the core and
// its memory hierarchy. Pass nil to detach.
func (s *System) SetProbe(p obs.Probe) {
	s.probe = p
	s.cpu.SetProbe(p)
}

// Audit returns the ROLoad violation log for this machine.
func (s *System) Audit() *obs.Audit { return &s.audit }

// SetAttackHook registers the callback invoked on the SysAttackHook
// syscall. A hook error kills the process with SIGSEGV (the corruption
// primitive itself was blocked, e.g. by page permissions).
func (s *System) SetAttackHook(fn func(*Process) error) { s.attackHook = fn }

// NewSystem boots a machine.
func NewSystem(cfg Config) *System {
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 256 << 20
	}
	ccfg := cfg.CPU
	ccfg.ROLoadEnabled = cfg.ProcessorROLoad
	phys := mem.NewPhysical(cfg.MemBytes)
	return &System{
		cfg:       cfg,
		phys:      phys,
		cpu:       cpu.New(phys, ccfg),
		frameNext: 1 << 20, // leave the first MiB for "firmware"
		frameEnd:  cfg.MemBytes,
	}
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// CPU exposes the core (for statistics and tests).
func (s *System) CPU() *cpu.CPU { return s.cpu }

// Phys exposes physical memory (tests only).
func (s *System) Phys() *mem.Physical { return s.phys }

// AllocFrame implements mmu.FrameAllocator.
func (s *System) AllocFrame() (uint64, error) {
	if s.frameNext+mem.PageSize > s.frameEnd {
		return 0, fmt.Errorf("kernel: out of physical memory")
	}
	pa := s.frameNext
	s.frameNext += mem.PageSize
	if err := s.phys.ZeroPage(pa); err != nil {
		return 0, err
	}
	return pa, nil
}

// Prot bits for mmap/mprotect. The kernel extension packs the ROLoad
// key into bits [26:16] of prot, the approach the paper describes for
// letting user code set up page keys through the existing mmap and
// mprotect system calls.
const (
	ProtRead  = 1
	ProtWrite = 2
	ProtExec  = 4

	ProtKeyShift = 16
)

// ProtWithKey packs permissions and a ROLoad key into one prot word.
func ProtWithKey(prot uint64, key uint16) uint64 {
	return prot | uint64(key)<<ProtKeyShift
}

// RISC-V Linux syscall numbers implemented by the kernel.
const (
	SysWrite    = 64
	SysExit     = 93
	SysBrk      = 214
	SysMunmap   = 215
	SysMmap     = 222
	SysMprotect = 226

	// SysAttackHook is the test-harness hook syscall raised by the
	// compiler's attack_point() intrinsic: the registered callback runs
	// with the process paused, modelling the instant at which a real
	// memory-corruption vulnerability fires. A no-op when no hook is
	// registered.
	SysAttackHook = 9000
)

// RunResult describes a finished (or killed) execution.
type RunResult struct {
	Exited bool
	Code   int
	Signal Signal
	// ROLoadViolation is set when the fatal signal came from a ROLoad
	// check failure — the kernel-side differentiation of Section III-B.
	ROLoadViolation bool
	FaultPC         uint64 // faulting instruction (signal deliveries)
	FaultVA         uint64
	FaultWantKey    uint16
	FaultGotKey     uint16

	// Audit carries the audit records collected during this run: every
	// injected fault (kind schema.AuditInjected) and any detected
	// ROLoad violation, in order. Partial results (step limit,
	// cancellation) carry the records accumulated so far.
	Audit []obs.AuditRecord

	Cycles  uint64
	Instret uint64
	// MemPeakKiB is the peak resident set in KiB (mapped pages * 4).
	MemPeakKiB uint64
	Stdout     []byte

	CPUStats   cpu.Stats
	IMMU, DMMU mmu.Stats
	IC, DC     cache.Stats
	SyscallCnt uint64
}

// Process is one loaded address space.
type Process struct {
	sys    *System
	mapper *mmu.Mapper
	image  *asm.Image

	brk       uint64
	brkStart  uint64
	mmapNext  uint64
	stackLow  uint64
	stackHigh uint64

	mappedPages uint64
	peakPages   uint64

	stdout bytes.Buffer

	// syscalls counts ecalls serviced across every RunContext slice of
	// this process, so step-limited, cancelled and resumed runs report
	// a correct cumulative count.
	syscalls uint64
	// auditStart is the system audit-log length when this process was
	// spawned; records from index auditStart on belong to this run and
	// are carried in every RunResult (including partial snapshots).
	auditStart int

	finished bool
	result   RunResult
}

func (p *Process) notePages(n uint64) {
	p.mappedPages += n
	if p.mappedPages > p.peakPages {
		p.peakPages = p.mappedPages
	}
}

// Image returns the loaded image.
func (p *Process) Image() *asm.Image { return p.image }

// Mapper exposes the process page-table editor — kernel-privilege
// access for the fault-injection engine (PTE corruption) and tests.
func (p *Process) Mapper() *mmu.Mapper { return p.mapper }

// Sym resolves a symbol address in the loaded image.
func (p *Process) Sym(name string) (uint64, bool) { return p.image.Symbol(name) }

// translateNoCheck resolves va to a physical address using the page
// tables, ignoring permissions — a kernel-privilege access for test
// setup and result inspection.
func (p *Process) translateNoCheck(va uint64) (uint64, bool) {
	pte, _, ok := p.mapper.Lookup(va &^ uint64(mem.PageSize-1))
	if !ok {
		return 0, false
	}
	return mmu.PTEPPN(pte)<<mem.PageShift | va&(mem.PageSize-1), true
}

// PokeMem writes bytes at va with kernel privilege (ignores page
// permissions). Test and loader use.
func (p *Process) PokeMem(va uint64, b []byte) error {
	for len(b) > 0 {
		pa, ok := p.translateNoCheck(va)
		if !ok {
			return fmt.Errorf("kernel: poke to unmapped address %#x", va)
		}
		n := int(mem.PageSize - va%mem.PageSize)
		if n > len(b) {
			n = len(b)
		}
		if err := p.sys.phys.Write(pa, b[:n]); err != nil {
			return err
		}
		va += uint64(n)
		b = b[n:]
	}
	return nil
}

// PeekMem reads bytes at va with kernel privilege.
func (p *Process) PeekMem(va uint64, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for n > 0 {
		pa, ok := p.translateNoCheck(va)
		if !ok {
			return nil, fmt.Errorf("kernel: peek of unmapped address %#x", va)
		}
		c := int(mem.PageSize - va%mem.PageSize)
		if c > n {
			c = n
		}
		buf := make([]byte, c)
		if err := p.sys.phys.Read(pa, buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
		va += uint64(c)
		n -= c
	}
	return out, nil
}

// PeekUint reads an n-byte little-endian value at va.
func (p *Process) PeekUint(va uint64, n int) (uint64, error) {
	b, err := p.PeekMem(va, n)
	if err != nil {
		return 0, err
	}
	var v uint64
	for i := n - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v, nil
}

// CorruptMem models the attacker's arbitrary-write primitive from the
// threat model: it succeeds only on pages that are mapped writable,
// exactly like a store executed by the vulnerable program itself.
func (p *Process) CorruptMem(va uint64, b []byte) error {
	for i := range b {
		a := va + uint64(i)
		pte, _, ok := p.mapper.Lookup(a &^ uint64(mem.PageSize-1))
		if !ok {
			return fmt.Errorf("kernel: attacker write to unmapped address %#x", a)
		}
		if pte&mmu.PTEWrite == 0 {
			return fmt.Errorf("kernel: attacker write to read-only page at %#x blocked by MMU", a)
		}
	}
	return p.PokeMem(va, b)
}

// CorruptUint is CorruptMem for an n-byte little-endian value.
func (p *Process) CorruptUint(va uint64, v uint64, n int) error {
	b := make([]byte, n)
	for i := 0; i < n; i++ {
		b[i] = byte(v >> (8 * uint(i)))
	}
	return p.CorruptMem(va, b)
}

// Stdout returns output written so far.
func (p *Process) Stdout() []byte { return p.stdout.Bytes() }

// Snapshot converts the run result into the unified obs metrics
// document. system labels which of the paper's three configurations
// produced it (e.g. core.SystemKind.String()).
func (r RunResult) Snapshot(system string) obs.Snapshot {
	snap := obs.Snapshot{
		System:          system,
		Exited:          r.Exited,
		ExitCode:        r.Code,
		ROLoadViolation: r.ROLoadViolation,
		FaultPC:         r.FaultPC,
		FaultVA:         r.FaultVA,
		Cycles:          r.Cycles,
		Instret:         r.Instret,
		MemPeakKiB:      r.MemPeakKiB,
		Syscalls:        r.SyscallCnt,
		CPU: obs.CPUCounters{
			Instructions: r.CPUStats.Instructions,
			Loads:        r.CPUStats.Loads,
			Stores:       r.CPUStats.Stores,
			ROLoads:      r.CPUStats.ROLoads,
			Branches:     r.CPUStats.Branches,
			TakenBranch:  r.CPUStats.TakenBranch,
			Jumps:        r.CPUStats.Jumps,
			MulDiv:       r.CPUStats.MulDiv,
			Traps:        r.CPUStats.Traps,
		},
		ITLB:   mmuCounters(r.IMMU),
		DTLB:   mmuCounters(r.DMMU),
		ICache: cacheCounters(r.IC),
		DCache: cacheCounters(r.DC),
		Audit:  r.Audit,
	}
	if r.Signal != SigNone {
		snap.Signal = r.Signal.String()
	}
	return snap
}

func mmuCounters(s mmu.Stats) obs.MMUCounters {
	return obs.MMUCounters{
		TLBHits:    s.TLBHits,
		TLBMisses:  s.TLBMisses,
		PageWalks:  s.PageWalks,
		WalkMemOps: s.WalkMemOps,
		Faults:     s.Faults,
	}
}

func cacheCounters(s cache.Stats) obs.CacheCounters {
	return obs.CacheCounters{Hits: s.Hits, Misses: s.Misses, MissRate: s.MissRate()}
}
