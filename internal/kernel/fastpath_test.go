package kernel

import "testing"

// selfModifyProg exercises the predecode cache's invalidation on
// writes to executed pages: it maps an RWX page, writes a tiny
// function into it (li a0, 11; ret), calls it, patches the immediate
// to 22, calls again, and exits with the sum. A predecode cache that
// missed the patch would return 11+11=22 instead of 33.
const selfModifyProg = `
_start:
	li a0, 0
	li a1, 4096
	li a2, 7             # PROT_READ|WRITE|EXEC
	li a7, 222
	ecall
	li a1, -1
	beq a0, a1, bad
	mv s0, a0
	li t0, 0x00B00513    # addi a0, x0, 11
	sw t0, 0(s0)
	li t0, 0x00008067    # jalr x0, 0(ra)
	sw t0, 4(s0)
	jalr ra, 0(s0)
	mv s1, a0
	jalr ra, 0(s0)       # run it again from the (now warm) caches
	bne a0, s1, bad
	li t0, 0x01600513    # patch: addi a0, x0, 22
	sw t0, 0(s0)
	jalr ra, 0(s0)
	add a0, a0, s1       # 11 + 22
	li a7, 93
	ecall
bad:
	li a0, 99
	li a7, 93
	ecall
`

// TestSelfModifyingCodeInvalidatesPredecode proves stores to an
// executable page take effect on the very next fetch on all three
// engines, at identical cost. On the block engine the patching store
// executes from inside a translated block whose own source page it
// rewrites — the store closure must notice the write-generation bump
// and side-exit so the next call retranslates.
func TestSelfModifyingCodeInvalidatesPredecode(t *testing.T) {
	blocks := runSrc(t, FullSystem(), selfModifyProg)
	if !blocks.Exited || blocks.Code != 33 {
		t.Fatalf("block-engine run: %+v, want exit 33", blocks)
	}
	for _, eng := range []struct {
		name                 string
		noFastPath, noBlocks bool
	}{
		{"fast", false, true},
		{"interp", true, true},
	} {
		cfg := FullSystem()
		cfg.CPU.NoFastPath = eng.noFastPath
		cfg.CPU.NoBlocks = eng.noBlocks
		res := runSrc(t, cfg, selfModifyProg)
		if !res.Exited || res.Code != 33 {
			t.Fatalf("%s run: %+v, want exit 33", eng.name, res)
		}
		if blocks.Cycles != res.Cycles || blocks.Instret != res.Instret {
			t.Errorf("engines diverge: blocks %d cycles / %d inst, %s %d cycles / %d inst",
				blocks.Cycles, blocks.Instret, eng.name, res.Cycles, res.Instret)
		}
	}
}
