package kernel

import "testing"

// selfModifyProg exercises the predecode cache's invalidation on
// writes to executed pages: it maps an RWX page, writes a tiny
// function into it (li a0, 11; ret), calls it, patches the immediate
// to 22, calls again, and exits with the sum. A predecode cache that
// missed the patch would return 11+11=22 instead of 33.
const selfModifyProg = `
_start:
	li a0, 0
	li a1, 4096
	li a2, 7             # PROT_READ|WRITE|EXEC
	li a7, 222
	ecall
	li a1, -1
	beq a0, a1, bad
	mv s0, a0
	li t0, 0x00B00513    # addi a0, x0, 11
	sw t0, 0(s0)
	li t0, 0x00008067    # jalr x0, 0(ra)
	sw t0, 4(s0)
	jalr ra, 0(s0)
	mv s1, a0
	jalr ra, 0(s0)       # run it again from the (now warm) caches
	bne a0, s1, bad
	li t0, 0x01600513    # patch: addi a0, x0, 22
	sw t0, 0(s0)
	jalr ra, 0(s0)
	add a0, a0, s1       # 11 + 22
	li a7, 93
	ecall
bad:
	li a0, 99
	li a7, 93
	ecall
`

// TestSelfModifyingCodeInvalidatesPredecode proves stores to an
// executable page take effect on the very next fetch, with and
// without the fast-path engine, at identical cost.
func TestSelfModifyingCodeInvalidatesPredecode(t *testing.T) {
	fast := runSrc(t, FullSystem(), selfModifyProg)
	if !fast.Exited || fast.Code != 33 {
		t.Fatalf("fast-path run: %+v, want exit 33", fast)
	}
	cfg := FullSystem()
	cfg.CPU.NoFastPath = true
	interp := runSrc(t, cfg, selfModifyProg)
	if !interp.Exited || interp.Code != 33 {
		t.Fatalf("interpreter run: %+v, want exit 33", interp)
	}
	if fast.Cycles != interp.Cycles || fast.Instret != interp.Instret {
		t.Errorf("engines diverge: fast %d cycles / %d inst, interp %d cycles / %d inst",
			fast.Cycles, fast.Instret, interp.Cycles, interp.Instret)
	}
}
