package kernel

import (
	"strings"
	"testing"

	"roload/internal/asm"
)

// Failure injection: the kernel must degrade cleanly when resources
// run out or processes misbehave.

func TestSpawnOutOfPhysicalMemory(t *testing.T) {
	cfg := FullSystem()
	cfg.MemBytes = 64 << 10 // 16 pages: not enough for stack + tables
	sys := NewSystem(cfg)
	_, err := sys.Spawn(mustImage(t, exitSrc))
	if err == nil || !strings.Contains(err.Error(), "out of physical memory") {
		t.Fatalf("err = %v", err)
	}
}

func TestMmapExhaustionReturnsError(t *testing.T) {
	// Ask for more than physical memory: mmap must return -1 and the
	// process must be able to observe it and exit cleanly.
	res := runSrc(t, FullSystem(), `
_start:
	li a0, 0
	li a1, 0x3C00000   # 60 MiB > 64 MiB budget cap? below cap but big
	li a2, 3
	li a7, 222
	ecall
	li a1, -1
	beq a0, a1, failed
	li a0, 0
	li a7, 93
	ecall
failed:
	li a0, 7
	li a7, 93
	ecall
`)
	// Either outcome is acceptable on a 256 MiB system (the request is
	// satisfiable), so instead check the >64 MiB rejection path.
	if !res.Exited {
		t.Fatalf("res = %+v", res)
	}

	res = runSrc(t, FullSystem(), `
_start:
	li a0, 0
	li a1, 0x8000000   # 128 MiB: above the kernel's 64 MiB mmap cap
	li a2, 3
	li a7, 222
	ecall
	li a1, -1
	beq a0, a1, failed
	li a0, 0
	li a7, 93
	ecall
failed:
	li a0, 7
	li a7, 93
	ecall
`)
	if !res.Exited || res.Code != 7 {
		t.Fatalf("oversized mmap: res = %+v", res)
	}
}

func TestMmapZeroLengthFails(t *testing.T) {
	res := runSrc(t, FullSystem(), `
_start:
	li a0, 0
	li a1, 0
	li a2, 3
	li a7, 222
	ecall
	li a1, -1
	beq a0, a1, failed
	li a0, 0
	li a7, 93
	ecall
failed:
	li a0, 7
	li a7, 93
	ecall
`)
	if !res.Exited || res.Code != 7 {
		t.Fatalf("res = %+v", res)
	}
}

func TestStackGuardPage(t *testing.T) {
	// Touching below the mapped stack must fault, not silently map.
	res := runSrc(t, FullSystem(), `
_start:
	li a1, 0x7f000000
	li a2, 262144
	sub a1, a1, a2      # stack low bound
	ld a3, -8(a1)       # below the stack: unmapped
	li a0, 0
	li a7, 93
	ecall
`)
	if res.Exited || res.Signal != SIGSEGV {
		t.Fatalf("res = %+v", res)
	}
}

func TestBrkBeyondLimitIsRefused(t *testing.T) {
	res := runSrc(t, FullSystem(), `
_start:
	li a0, 0
	li a7, 214
	ecall            # current brk
	mv s0, a0
	li a1, 0x10000000  # +256 MiB: beyond maxBrkGrowth
	add a0, a0, a1
	li a7, 214
	ecall
	bne a0, s0, bad  # refused brk returns the old value
	li a0, 0
	li a7, 93
	ecall
bad:
	li a0, 1
	li a7, 93
	ecall
`)
	if !res.Exited || res.Code != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestWriteFromUnmappedBufferFails(t *testing.T) {
	res := runSrc(t, FullSystem(), `
_start:
	li a0, 1
	li a1, 0x9000000   # unmapped buffer
	li a2, 4
	li a7, 64
	ecall
	li a1, -1
	beq a0, a1, ok
	li a0, 1
	li a7, 93
	ecall
ok:
	li a0, 0
	li a7, 93
	ecall
`)
	if !res.Exited || res.Code != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestOversizeWriteRejected(t *testing.T) {
	res := runSrc(t, FullSystem(), `
_start:
	li a0, 1
	la a1, msg
	li a2, 0x200000    # 2 MiB length: above the 1 MiB cap
	li a7, 64
	ecall
	li a1, -1
	beq a0, a1, ok
	li a0, 1
	li a7, 93
	ecall
ok:
	li a0, 0
	li a7, 93
	ecall
	.rodata
msg: .asciz "x"
`)
	if !res.Exited || res.Code != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestMprotectUnmappedFails(t *testing.T) {
	res := runSrc(t, FullSystem(), `
_start:
	li a0, 0x9000000
	li a1, 4096
	li a2, 1
	li a7, 226
	ecall
	li a1, -1
	beq a0, a1, ok
	li a0, 1
	li a7, 93
	ecall
ok:
	li a0, 0
	li a7, 93
	ecall
`)
	if !res.Exited || res.Code != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestRunAfterFinishReturnsSameResult(t *testing.T) {
	sys := NewSystem(FullSystem())
	p, err := sys.Spawn(mustImage(t, exitSrc))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := sys.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sys.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Code != r2.Code || r1.Cycles != r2.Cycles {
		t.Errorf("results differ: %+v vs %+v", r1, r2)
	}
}

func TestSpawnEmptySectionsSkipped(t *testing.T) {
	img := &asm.Image{
		Sections: []asm.Section{
			{Name: ".text", VA: 0x10000, Size: 4,
				Data: []byte{0x73, 0, 0, 0}, Perm: asm.PermRead | asm.PermExec},
			{Name: ".empty", VA: 0x20000, Size: 0, Perm: asm.PermRead},
		},
		Entry:   0x10000,
		Symbols: map[string]uint64{"_start": 0x10000},
	}
	sys := NewSystem(FullSystem())
	p, err := sys.Spawn(img)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(p) // bare ecall with a7=0 -> unknown syscall, continues to unmapped
	_ = res
	_ = err // any clean outcome acceptable; the point is Spawn didn't choke
	_ = p
}
