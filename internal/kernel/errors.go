package kernel

import "fmt"

// StepLimitError reports that a run exhausted its instruction budget
// (Config.MaxSteps) without exiting or being killed. It is a typed
// error so callers — the CLI tools, the evaluation harness, the HTTP
// service — can map a runaway guest to their own status codes instead
// of string-matching; RunContext returns it alongside a partial
// RunResult snapshot of the work done so far.
type StepLimitError struct {
	// Limit is the effective instruction budget of the run.
	Limit uint64
	// Instret is the total instructions retired when the budget ran out.
	Instret uint64
}

func (e *StepLimitError) Error() string {
	return fmt.Sprintf("kernel: instruction budget exhausted after %d instructions (possible runaway program)", e.Limit)
}

// CanceledError reports that a run was stopped by its context — a
// request deadline, a client disconnect, or service drain. The guest
// did not exit; RunContext returns it alongside a partial RunResult
// snapshot (cycles, instructions, stdout and counters retired so far),
// and the machine remains resumable. Unwrap exposes the context error
// (context.Canceled or context.DeadlineExceeded) for errors.Is.
type CanceledError struct {
	Cause error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("kernel: run canceled: %v", e.Cause)
}

func (e *CanceledError) Unwrap() error { return e.Cause }
