package kernel

import "fmt"

// StepLimitError reports that a run exhausted its instruction budget
// (Config.MaxSteps) without exiting or being killed. It is a typed
// error so callers — the CLI tools, the evaluation harness, the HTTP
// service — can map a runaway guest to their own status codes instead
// of string-matching; RunContext returns it alongside a partial
// RunResult snapshot of the work done so far.
type StepLimitError struct {
	// Limit is the effective instruction budget of the run.
	Limit uint64
	// Instret is the total instructions retired when the budget ran out.
	Instret uint64
}

func (e *StepLimitError) Error() string {
	return fmt.Sprintf("kernel: instruction budget exhausted after %d instructions (possible runaway program)", e.Limit)
}

// CanceledError reports that a run was stopped by its context — a
// request deadline, a client disconnect, or service drain. The guest
// did not exit; RunContext returns it alongside a partial RunResult
// snapshot (cycles, instructions, stdout and counters retired so far),
// and the machine remains resumable. Unwrap exposes the context error
// (context.Canceled or context.DeadlineExceeded) for errors.Is.
type CanceledError struct {
	Cause error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("kernel: run canceled: %v", e.Cause)
}

func (e *CanceledError) Unwrap() error { return e.Cause }

// CheckpointMismatchError reports that Restore refused a checkpoint
// because its frame does not match what the caller supplied: the
// schema version, the system-variant flags, or the image digest. It is
// a typed error so roload-run -resume can exit 2 (a usage error — the
// caller named the wrong checkpoint or the wrong program) instead of 1,
// while still printing both sides of the disagreement.
type CheckpointMismatchError struct {
	// Field names what disagreed: "schema", "system" or "image".
	Field string
	// Got is the value derived from the caller's arguments; Want is the
	// value recorded in the checkpoint frame.
	Got, Want string
}

func (e *CheckpointMismatchError) Error() string {
	switch e.Field {
	case "schema":
		return fmt.Sprintf("kernel: unsupported checkpoint schema %s (this build reads %s)", e.Want, e.Got)
	case "image":
		return fmt.Sprintf("kernel: image digest %s does not match checkpoint digest %s", e.Got, e.Want)
	default:
		return fmt.Sprintf("kernel: checkpoint %s mismatch: have %s, checkpoint wants %s", e.Field, e.Got, e.Want)
	}
}
