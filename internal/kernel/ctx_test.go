package kernel

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRunContextCancel: cancelling the context stops an otherwise
// endless program within the poll stride and reports the typed
// cancel error with a partial result.
func TestRunContextCancel(t *testing.T) {
	cfg := FullSystem()
	cfg.CancelEvery = 4096
	sys := NewSystem(cfg)
	p, err := sys.Spawn(mustImage(t, "_start:\n\tj _start\n"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	res, err := sys.RunContext(ctx, p)
	var canceled *CanceledError
	if !errors.As(err, &canceled) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err %v does not unwrap to the context cause", err)
	}
	if res.Instret == 0 {
		t.Error("partial result shows no retired instructions")
	}
	if res.Exited {
		t.Error("cancelled run claims a clean exit")
	}
}

// TestRunContextNoCtxNoPolling: Run (background context) on a bounded
// program behaves exactly as before and the typed budget error carries
// the configured limit.
func TestRunContextBudgetTyped(t *testing.T) {
	cfg := FullSystem()
	cfg.MaxSteps = 5000
	sys := NewSystem(cfg)
	p, err := sys.Spawn(mustImage(t, "_start:\n\tj _start\n"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(p)
	var limit *StepLimitError
	if !errors.As(err, &limit) {
		t.Fatalf("err = %v, want *StepLimitError", err)
	}
	if limit.Limit != 5000 {
		t.Errorf("limit = %d, want 5000", limit.Limit)
	}
	if res.Instret == 0 {
		t.Error("partial result shows no retired instructions")
	}
}
