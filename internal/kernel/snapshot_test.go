package kernel

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"roload/internal/schema"
)

// checkpointSrc is a hardened workload with enough moving parts to make
// a sloppy checkpoint visible: keyed indirect calls (TLB key state),
// per-iteration stores (dirty data pages), per-iteration writes
// (stdout and syscall counters) and a data-dependent exit code.
const checkpointSrc = `
_start:
	li s0, 0          # i
	li s2, 0          # acc
loop:
	la a0, gfpt
	ld.ro a1, (a0), 77
	mv a0, s0
	jalr a1           # a0 = 2*i + 3 via protected pointer
	add s2, s2, a0
	la t1, counter
	ld t2, (t1)
	add t2, t2, a0
	sd t2, (t1)
	li a0, 1
	la a1, msg
	li a2, 1
	li a7, 64
	ecall
	addi s0, s0, 1
	li t0, 2000
	blt s0, t0, loop
	la t1, counter
	ld a0, (t1)
	add a0, a0, s2
	andi a0, a0, 127
	li a7, 93
	ecall
step:
	slli a0, a0, 1
	addi a0, a0, 3
	ret
	.rodata
msg: .asciz "x"
	.data
counter: .quad 0
	.section .rodata.key.77
gfpt: .quad step
`

// runChunked drives p in MaxSteps-sized slices until it finishes,
// calling hook after every step-limited slice. hook may replace the
// machine (crash + restore); it returns the system and process to
// continue with.
func runChunked(t *testing.T, sys *System, p *Process,
	hook func(chunk int, sys *System, p *Process) (*System, *Process)) RunResult {
	t.Helper()
	for chunk := 1; ; chunk++ {
		res, err := sys.RunContext(context.Background(), p)
		if err == nil {
			return res
		}
		var limit *StepLimitError
		if !errors.As(err, &limit) {
			t.Fatal(err)
		}
		if chunk > 1000 {
			t.Fatal("workload never finished")
		}
		sys, p = hook(chunk, sys, p)
	}
}

// TestCheckpointCrashConsistency is the crash-consistency property:
// checkpoint every N instructions, kill the machine at a seeded later
// point (losing the progress since the last checkpoint), restore, and
// finish. Every observable of the resumed run must be bit-identical to
// an uninterrupted run of the same workload.
func TestCheckpointCrashConsistency(t *testing.T) {
	img := mustImage(t, checkpointSrc)

	sysU := NewSystem(FullSystem())
	pU, err := sysU.Spawn(img)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sysU.Run(pU)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Exited {
		t.Fatalf("uninterrupted run did not exit: %+v", want)
	}

	rng := rand.New(rand.NewSource(4))
	ckAt := 2 + rng.Intn(6)          // chunk after which the last checkpoint lands
	killAt := ckAt + 1 + rng.Intn(3) // chunk after which the machine dies

	cfg := FullSystem()
	cfg.MaxSteps = 1500
	sys := NewSystem(cfg)
	p, err := sys.Spawn(img)
	if err != nil {
		t.Fatal(err)
	}
	var ckBytes []byte
	killed := false
	got := runChunked(t, sys, p, func(chunk int, sys *System, p *Process) (*System, *Process) {
		if chunk == ckAt {
			ck, err := Snapshot(sys, p)
			if err != nil {
				t.Fatal(err)
			}
			ckBytes, err = json.Marshal(ck)
			if err != nil {
				t.Fatal(err)
			}
		}
		if chunk == killAt {
			killed = true
			// The crash: the live machine is discarded along with
			// everything it did since the checkpoint.
			var ck schema.Checkpoint
			if err := json.Unmarshal(ckBytes, &ck); err != nil {
				t.Fatal(err)
			}
			nsys, np, err := Restore(cfg, img, ck)
			if err != nil {
				t.Fatal(err)
			}
			return nsys, np
		}
		return sys, p
	})
	if !killed {
		t.Fatalf("workload finished before the kill point (ckAt=%d killAt=%d)", ckAt, killAt)
	}

	if !reflect.DeepEqual(want, got) {
		t.Errorf("resumed run differs from uninterrupted run:\nwant %+v\ngot  %+v", want, got)
	}
	wj, err := json.Marshal(want.Snapshot("full"))
	if err != nil {
		t.Fatal(err)
	}
	gj, err := json.Marshal(got.Snapshot("full"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wj, gj) {
		t.Errorf("metrics documents differ:\nwant %s\ngot  %s", wj, gj)
	}
}

// TestRestoreResumesMidBlock: a checkpoint whose step limit lands in
// the middle of the hot loop body — mid-way through what the block
// engine translated as one superblock — must resume bit-identically.
// The restored machine starts with cold predecode and block caches
// (Restore → SetState drops both) and retranslates a block that
// begins at the mid-body PC, a block entry the original run never
// had; its accounting must still match the uninterrupted run exactly.
func TestRestoreResumesMidBlock(t *testing.T) {
	img := mustImage(t, checkpointSrc)

	sysU := NewSystem(FullSystem())
	pU, err := sysU.Spawn(img)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sysU.Run(pU)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Exited {
		t.Fatalf("uninterrupted run did not exit: %+v", want)
	}

	// A prime step budget: after the short prologue, every slice
	// boundary wanders through the loop body instead of landing on the
	// back edge, so the checkpoint PC sits inside the hot block.
	cfg := FullSystem()
	cfg.MaxSteps = 997
	sys := NewSystem(cfg)
	p, err := sys.Spawn(img)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Run(p)
	var limit *StepLimitError
	if !errors.As(err, &limit) {
		t.Fatalf("err = %v, want *StepLimitError", err)
	}
	ck, err := Snapshot(sys, p)
	if err != nil {
		t.Fatal(err)
	}

	rcfg := FullSystem()
	rcfg.MaxSteps = cfg.MaxSteps
	rsys, rp, err := Restore(rcfg, img, ck)
	if err != nil {
		t.Fatal(err)
	}
	got := runChunked(t, rsys, rp, func(chunk int, sys *System, p *Process) (*System, *Process) {
		return sys, p
	})
	if !reflect.DeepEqual(want, got) {
		t.Errorf("mid-block resume differs from uninterrupted run:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestCheckpointDeterministic: two machines running the same workload
// to the same instruction produce byte-identical checkpoint documents.
func TestCheckpointDeterministic(t *testing.T) {
	img := mustImage(t, checkpointSrc)
	snap := func() []byte {
		cfg := FullSystem()
		cfg.MaxSteps = 4096
		sys := NewSystem(cfg)
		p, err := sys.Spawn(img)
		if err != nil {
			t.Fatal(err)
		}
		_, err = sys.Run(p)
		var limit *StepLimitError
		if !errors.As(err, &limit) {
			t.Fatalf("err = %v, want *StepLimitError", err)
		}
		ck, err := Snapshot(sys, p)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(ck)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a, b := snap(), snap()
	if !bytes.Equal(a, b) {
		t.Error("identical runs produced different checkpoint bytes")
	}
}

// TestRestoreRejectsMismatch: a checkpoint only resumes against the
// binary and system variant it was taken from.
func TestRestoreRejectsMismatch(t *testing.T) {
	img := mustImage(t, checkpointSrc)
	cfg := FullSystem()
	cfg.MaxSteps = 2048
	sys := NewSystem(cfg)
	p, err := sys.Spawn(img)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(p); err == nil {
		t.Fatal("workload finished before a checkpoint could be taken")
	}
	ck, err := Snapshot(sys, p)
	if err != nil {
		t.Fatal(err)
	}

	other := mustImage(t, exitSrc)
	if _, _, err := Restore(cfg, other, ck); err == nil {
		t.Error("Restore accepted a different image")
	}
	if _, _, err := Restore(BaselineSystem(), img, ck); err == nil {
		t.Error("Restore accepted a mismatched system variant")
	}
	bad := ck
	bad.Schema = "roload-fault/v1"
	if _, _, err := Restore(cfg, img, bad); err == nil {
		t.Error("Restore accepted a wrong schema identifier")
	}
}
