package kernel

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"roload/internal/asm"
	"roload/internal/cpu"
	"roload/internal/mem"
	"roload/internal/mmu"
	"roload/internal/obs"
	"roload/internal/schema"
)

// machineState is the JSON body of a roload-checkpoint/v1 document: the
// complete simulated machine. Host-only acceleration state (predecode
// cache, MMU L0 mirror, last-page/last-line pointers) is deliberately
// absent — by the fast-path invariant it never changes simulated
// observables, so restored machines rebuild it lazily and still replay
// bit-identically.
type machineState struct {
	FrameNext uint64          `json:"frame_next"`
	Pages     []mem.PageImage `json:"pages"`
	CPU       cpu.State       `json:"cpu"`
	Proc      procState       `json:"proc"`
}

// procState is the kernel-side process bookkeeping.
type procState struct {
	Brk         uint64            `json:"brk"`
	BrkStart    uint64            `json:"brk_start"`
	MmapNext    uint64            `json:"mmap_next"`
	StackLow    uint64            `json:"stack_low"`
	StackHigh   uint64            `json:"stack_high"`
	MappedPages uint64            `json:"mapped_pages"`
	PeakPages   uint64            `json:"peak_pages"`
	Stdout      []byte            `json:"stdout,omitempty"`
	Syscalls    uint64            `json:"syscalls"`
	MapperRoot  uint64            `json:"mapper_root"`
	Audit       []obs.AuditRecord `json:"audit,omitempty"`
}

// ImageDigest fingerprints a loaded image so a checkpoint can only be
// resumed against the binary that produced it. The digest covers the
// sections in slice order (name, layout, permissions, key, contents),
// the entry point, and the symbol table in sorted order. It is also
// the key compiled images are stored under in the artifact store
// (roload-image/v1), so images, their checkpoints and resume requests
// all name the same artifact.
func ImageDigest(img *asm.Image) string {
	h := sha256.New()
	for _, sec := range img.Sections {
		fmt.Fprintf(h, "section %s va=%#x size=%#x perm=%d key=%d\n", sec.Name, sec.VA, sec.Size, sec.Perm, sec.Key)
		h.Write(sec.Data)
	}
	fmt.Fprintf(h, "entry %#x\n", img.Entry)
	names := make([]string, 0, len(img.Symbols))
	for name := range img.Symbols {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(h, "sym %s=%#x\n", name, img.Symbols[name])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Snapshot captures the complete simulated machine — physical memory,
// core (registers, counters, TLBs, caches) and process bookkeeping —
// as a versioned checkpoint document. A process restored from the
// checkpoint replays bit-identically to one that was never
// interrupted.
func Snapshot(s *System, p *Process) (schema.Checkpoint, error) {
	if p.finished {
		return schema.Checkpoint{}, fmt.Errorf("kernel: snapshot of a finished process")
	}
	ms := machineState{
		FrameNext: s.frameNext,
		Pages:     s.phys.SnapshotPages(),
		CPU:       s.cpu.State(),
		Proc: procState{
			Brk:         p.brk,
			BrkStart:    p.brkStart,
			MmapNext:    p.mmapNext,
			StackLow:    p.stackLow,
			StackHigh:   p.stackHigh,
			MappedPages: p.mappedPages,
			PeakPages:   p.peakPages,
			Stdout:      append([]byte(nil), p.stdout.Bytes()...),
			Syscalls:    p.syscalls,
			MapperRoot:  p.mapper.Root(),
			Audit:       p.runAudit(),
		},
	}
	raw, err := json.Marshal(ms)
	if err != nil {
		return schema.Checkpoint{}, fmt.Errorf("kernel: encoding checkpoint: %w", err)
	}
	return schema.Checkpoint{
		Schema:          schema.CheckpointV1,
		ProcessorROLoad: s.cfg.ProcessorROLoad,
		KernelROLoad:    s.cfg.KernelROLoad,
		MemBytes:        s.cfg.MemBytes,
		ImageSHA256:     ImageDigest(p.image),
		Instret:         s.cpu.Instret,
		State:           raw,
	}, nil
}

// Restore boots a fresh machine from a checkpoint taken by Snapshot.
// cfg supplies the run policy (MaxSteps, CancelEvery, CPU overrides);
// its system-variant flags must match the checkpointed machine, and img
// must be the exact image the checkpoint was taken from (verified by
// digest). The returned process continues from the captured instruction
// with bit-identical observables.
func Restore(cfg Config, img *asm.Image, ck schema.Checkpoint) (*System, *Process, error) {
	if ck.Schema != schema.CheckpointV1 {
		return nil, nil, &CheckpointMismatchError{Field: "schema", Got: schema.CheckpointV1, Want: ck.Schema}
	}
	if cfg.ProcessorROLoad != ck.ProcessorROLoad || cfg.KernelROLoad != ck.KernelROLoad {
		return nil, nil, &CheckpointMismatchError{
			Field: "system",
			Got:   fmt.Sprintf("processor=%v kernel=%v", cfg.ProcessorROLoad, cfg.KernelROLoad),
			Want:  fmt.Sprintf("processor=%v kernel=%v", ck.ProcessorROLoad, ck.KernelROLoad),
		}
	}
	if got := ImageDigest(img); got != ck.ImageSHA256 {
		return nil, nil, &CheckpointMismatchError{Field: "image", Got: got, Want: ck.ImageSHA256}
	}
	var ms machineState
	if err := json.Unmarshal(ck.State, &ms); err != nil {
		return nil, nil, fmt.Errorf("kernel: decoding checkpoint: %w", err)
	}
	cfg.MemBytes = ck.MemBytes
	s := NewSystem(cfg)
	if err := s.phys.RestorePages(ms.Pages); err != nil {
		return nil, nil, err
	}
	s.frameNext = ms.FrameNext
	if err := s.cpu.SetState(ms.CPU); err != nil {
		return nil, nil, err
	}
	for _, rec := range ms.Proc.Audit {
		s.audit.Record(rec)
	}
	p := &Process{
		sys:         s,
		mapper:      mmu.ResumeMapper(s.phys, s, ms.Proc.MapperRoot),
		image:       img,
		brk:         ms.Proc.Brk,
		brkStart:    ms.Proc.BrkStart,
		mmapNext:    ms.Proc.MmapNext,
		stackLow:    ms.Proc.StackLow,
		stackHigh:   ms.Proc.StackHigh,
		mappedPages: ms.Proc.MappedPages,
		peakPages:   ms.Proc.PeakPages,
		syscalls:    ms.Proc.Syscalls,
	}
	p.stdout.Write(ms.Proc.Stdout)
	return s, p, nil
}
