// Tests for the batch-execution surface and the artifact store behind
// it: POST /v1/batch (one compile, many runs, per-run bodies
// byte-identical to individual POST /v1/run responses), the
// resource-oriented POST /v1/runs + GET /v1/runs/{id} routes, the
// /v1/images store surface, store-backed checkpoint/resume, and the
// restart contract (-store survives a server death).
package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"roload/internal/schema"
	"roload/internal/telemetry"
)

// postRaw posts JSON with optional headers and returns the raw reply.
func postRaw(t *testing.T, url string, body any, headers map[string]string) (int, http.Header, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

func getRaw(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func openBatch(t *testing.T, data []byte) schema.BatchReport {
	t.Helper()
	var env schema.Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("undecodable batch body %q: %v", data, err)
	}
	var report schema.BatchReport
	if err := env.Open(schema.ServeV1, &report); err != nil {
		t.Fatal(err)
	}
	if err := report.Validate(); err != nil {
		t.Fatal(err)
	}
	return report
}

// TestServeBatchByteIdentity is the batch acceptance test: a cold
// batch compiles exactly once (Compiles == 1), every per-run body is
// byte-for-byte the response the equivalent individual POST /v1/run
// answers, each stored per-run result replays at GET /v1/runs/{id},
// and a second identical batch hits the image cache (Compiles == 0).
func TestServeBatchByteIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, Chaos: true})
	runs := []schema.BatchRunSpec{
		{System: "full"},
		{System: "baseline"},
		{FaultCount: 2, FaultSeed: 7, System: "full"},
	}
	status, _, data := postRaw(t, ts.URL+"/v1/batch", schema.BatchRequest{
		Source: loopProg, Harden: "icall", Runs: runs,
	}, nil)
	if status != http.StatusOK {
		t.Fatalf("batch status = %d: %s", status, data)
	}
	report := openBatch(t, data)
	if report.Compiles != 1 {
		t.Errorf("cold batch Compiles = %d, want 1", report.Compiles)
	}
	if report.ImageDigest == "" {
		t.Error("batch report has no image digest")
	}
	if len(report.Runs) != len(runs) {
		t.Fatalf("report has %d runs, want %d", len(report.Runs), len(runs))
	}
	for i, out := range report.Runs {
		if want := report.BatchID + "." + strconv.Itoa(i+1); out.RunID != want {
			t.Errorf("run %d id = %q, want %q", i, out.RunID, want)
		}
		if out.Status != http.StatusOK {
			t.Errorf("run %d status = %d\n%s", i, out.Status, out.Body)
		}
		// The same spec as one individual request must answer the same
		// bytes (seeded chaos runs are deterministic).
		istatus, _, ibody := postRaw(t, ts.URL+"/v1/run", schema.RunRequest{
			Source: loopProg, Harden: "icall",
			System: runs[i].System, FaultCount: runs[i].FaultCount, FaultSeed: runs[i].FaultSeed,
		}, nil)
		if istatus != out.Status {
			t.Errorf("run %d: individual status %d != batch status %d", i, istatus, out.Status)
		}
		if string(ibody) != out.Body {
			t.Errorf("run %d body diverges from the individual response\nbatch:      %s\nindividual: %s", i, out.Body, ibody)
		}
		// The stored per-run result replays.
		rstatus, rbody := getRaw(t, ts.URL+"/v1/runs/"+out.RunID)
		if rstatus != out.Status || string(rbody) != out.Body {
			t.Errorf("run %d replay: status %d, body match %v", i, rstatus, string(rbody) == out.Body)
		}
	}

	// Second identical batch: the image cache already holds the image.
	status, _, data = postRaw(t, ts.URL+"/v1/batch", schema.BatchRequest{
		Source: loopProg, Harden: "icall", Runs: runs,
	}, nil)
	if status != http.StatusOK {
		t.Fatalf("warm batch status = %d", status)
	}
	if report := openBatch(t, data); report.Compiles != 0 {
		t.Errorf("warm batch Compiles = %d, want 0", report.Compiles)
	}
}

// TestServeBatchValidation pins the batch-specific 422s: an empty run
// list, the server cap, a bad per-run spec (prefixed with its index),
// and image_digest without a store. Every error envelope carries a
// run id and a kind.
func TestServeBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBatchRuns: 2})
	cases := []struct {
		name string
		req  schema.BatchRequest
		msg  string
	}{
		{"empty", schema.BatchRequest{Source: helloProg}, "runs must name at least one run"},
		{"cap", schema.BatchRequest{Source: helloProg, Runs: make([]schema.BatchRunSpec, 3)},
			"batch of 3 runs exceeds the server cap 2"},
		{"bad-run", schema.BatchRequest{Source: helloProg, Runs: []schema.BatchRunSpec{
			{}, {System: "nope"}}}, "run 1: "},
		{"store-less-digest", schema.BatchRequest{
			ImageDigest: "deadbeef", Runs: []schema.BatchRunSpec{{}}},
			"image_digest requires a server started with -store"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, data := postRaw(t, ts.URL+"/v1/batch", tc.req, nil)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d: %s", status, data)
			}
			var env schema.Envelope
			if err := json.Unmarshal(data, &env); err != nil {
				t.Fatal(err)
			}
			e := openError(t, env)
			if !strings.Contains(e.Error, tc.msg) {
				t.Errorf("error %q does not contain %q", e.Error, tc.msg)
			}
			if e.RunID == "" || e.Kind == "" {
				t.Errorf("error envelope lacks run_id/kind: %+v", e)
			}
		})
	}
}

// TestServeBatchEvents subscribes to the batch-scoped event stream and
// checks the per-run lifecycle: every run emits a run-start and a
// run-result stamped with its 1-based index, the run-result payloads
// carry exactly the per-run bodies of the report, and the terminal
// batch result closes the stream with the report envelope itself.
func TestServeBatchEvents(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	batchID := telemetry.NewRunID()

	sreq, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/runs/"+batchID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	sresp, err := http.DefaultClient.Do(sreq)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()

	status, header, data := postRaw(t, ts.URL+"/v1/batch", schema.BatchRequest{
		Source: loopProg,
		Runs:   []schema.BatchRunSpec{{System: "full"}, {System: "baseline"}},
	}, map[string]string{"Roload-Trace": batchID})
	if status != http.StatusOK {
		t.Fatalf("batch status = %d: %s", status, data)
	}
	if got := header.Get("Roload-Trace"); got != batchID {
		t.Errorf("Roload-Trace response header = %q, want %q", got, batchID)
	}
	report := openBatch(t, data)
	if report.BatchID != batchID {
		t.Errorf("report batch id = %q, want %q", report.BatchID, batchID)
	}

	starts := map[int]bool{}
	results := map[int]string{}
	var terminal *schema.RunEvent
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev schema.RunEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("undecodable event %q: %v", line, err)
		}
		switch ev.Kind {
		case schema.EventRunStart:
			starts[ev.Run] = true
		case schema.EventRunResult:
			results[ev.Run] = ev.Result
		case schema.EventResult:
			cp := ev
			terminal = &cp
		}
	}
	for i := 1; i <= 2; i++ {
		if !starts[i] {
			t.Errorf("no run-start event for run %d", i)
		}
		if results[i] != report.Runs[i-1].Body {
			t.Errorf("run %d result event body diverges from the report", i)
		}
	}
	if terminal == nil {
		t.Fatal("no terminal result event")
	}
	if terminal.Run != 0 || terminal.Status != http.StatusOK || terminal.Result != string(data) {
		t.Errorf("terminal event run=%d status=%d, body match %v",
			terminal.Run, terminal.Status, terminal.Result == string(data))
	}
}

// TestServeRunsResource pins the resource-oriented route contract:
// POST /v1/runs answers 201 with a Location header and a body
// byte-identical to the POST /v1/run alias, GET at the Location
// replays the stored result as 200, and a miss is a 404 whose error
// envelope carries the run id and a kind.
func TestServeRunsResource(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := schema.RunRequest{Source: helloProg, Harden: "icall"}

	cstatus, cheader, cbody := postRaw(t, ts.URL+"/v1/runs", req, nil)
	if cstatus != http.StatusCreated {
		t.Fatalf("POST /v1/runs status = %d: %s", cstatus, cbody)
	}
	loc := cheader.Get("Location")
	id := cheader.Get("Roload-Trace")
	if loc != "/v1/runs/"+id {
		t.Errorf("Location = %q, want %q", loc, "/v1/runs/"+id)
	}

	astatus, _, abody := postRaw(t, ts.URL+"/v1/run", req, nil)
	if astatus != http.StatusOK {
		t.Fatalf("POST /v1/run status = %d", astatus)
	}
	if string(abody) != string(cbody) {
		t.Errorf("compatibility alias body diverges\n/v1/runs: %s\n/v1/run:  %s", cbody, abody)
	}

	gstatus, gbody := getRaw(t, ts.URL+loc)
	if gstatus != http.StatusOK {
		t.Errorf("GET %s status = %d, want 200", loc, gstatus)
	}
	if string(gbody) != string(cbody) {
		t.Errorf("replayed body diverges from the created one")
	}

	mstatus, mbody := getRaw(t, ts.URL+"/v1/runs/no-such-run")
	if mstatus != http.StatusNotFound {
		t.Fatalf("miss status = %d", mstatus)
	}
	var env schema.Envelope
	if err := json.Unmarshal(mbody, &env); err != nil {
		t.Fatal(err)
	}
	e := openError(t, env)
	if e.RunID != "no-such-run" || e.Kind == "" {
		t.Errorf("miss envelope run_id=%q kind=%q, want the requested id and a kind", e.RunID, e.Kind)
	}

	if istatus, _ := getRaw(t, ts.URL+"/v1/runs/"+strings.Repeat("x", 65)); istatus != http.StatusBadRequest {
		t.Errorf("invalid id status = %d, want 400", istatus)
	}
}

// TestServeImageStore drives the /v1/images surface: 201 + digest on
// first store, 200 + reused on the second, the bare roload-image/v1
// document at GET, digest-addressed execution (run and batch, zero
// compiles), a clean 404 for an unknown digest, and absent routes on
// a store-less server.
func TestServeImageStore(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, StoreDir: t.TempDir()})

	status, header, data := postRaw(t, ts.URL+"/v1/images", schema.ImageRequest{
		Source: helloProg, Harden: "icall",
	}, nil)
	if status != http.StatusCreated {
		t.Fatalf("first put status = %d: %s", status, data)
	}
	var env schema.Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	var img schema.ImageResponse
	if err := env.Open(schema.ServeV1, &img); err != nil {
		t.Fatal(err)
	}
	if img.Digest == "" || img.Reused {
		t.Fatalf("first put = %+v", img)
	}
	if loc := header.Get("Location"); loc != "/v1/images/"+img.Digest {
		t.Errorf("Location = %q", loc)
	}

	status, _, data = postRaw(t, ts.URL+"/v1/images", schema.ImageRequest{
		Source: helloProg, Harden: "icall",
	}, nil)
	if status != http.StatusOK {
		t.Fatalf("second put status = %d", status)
	}
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	var again schema.ImageResponse
	if err := env.Open(schema.ServeV1, &again); err != nil {
		t.Fatal(err)
	}
	if again.Digest != img.Digest || !again.Reused {
		t.Errorf("second put = %+v", again)
	}

	// The stored artifact is the bare roload-image/v1 document.
	gstatus, gbody := getRaw(t, ts.URL+"/v1/images/"+img.Digest)
	if gstatus != http.StatusOK {
		t.Fatalf("image get status = %d", gstatus)
	}
	id, doc, err := schema.DecodeAny(gbody)
	if err != nil {
		t.Fatal(err)
	}
	idoc, ok := doc.(*schema.ImageDoc)
	if !ok || id != schema.ImageV1 || idoc.Digest != img.Digest {
		t.Fatalf("image document = %s %T", id, doc)
	}

	// Digest-addressed execution answers the same observables as the
	// source-addressed run.
	sstatus, senv, _ := post(t, ts.URL+"/v1/run", schema.RunRequest{Source: helloProg, Harden: "icall"})
	dstatus, denv, _ := post(t, ts.URL+"/v1/run", schema.RunRequest{ImageDigest: img.Digest})
	if sstatus != http.StatusOK || dstatus != http.StatusOK {
		t.Fatalf("source run %d, digest run %d", sstatus, dstatus)
	}
	srun, drun := openRun(t, senv), openRun(t, denv)
	if drun.Stdout != srun.Stdout || drun.ExitStatus != srun.ExitStatus {
		t.Errorf("digest run %+v diverges from source run %+v", drun, srun)
	}

	// A digest-addressed batch compiles nothing at all.
	bstatus, _, bdata := postRaw(t, ts.URL+"/v1/batch", schema.BatchRequest{
		ImageDigest: img.Digest,
		Runs:        []schema.BatchRunSpec{{}, {System: "baseline"}},
	}, nil)
	if bstatus != http.StatusOK {
		t.Fatalf("digest batch status = %d: %s", bstatus, bdata)
	}
	report := openBatch(t, bdata)
	if report.Compiles != 0 {
		t.Errorf("digest batch Compiles = %d, want 0", report.Compiles)
	}
	if report.ImageDigest != img.Digest {
		t.Errorf("digest batch image = %q, want %q", report.ImageDigest, img.Digest)
	}

	// Unknown digest: a 404 that names the digest.
	mstatus, menv, _ := post(t, ts.URL+"/v1/run", schema.RunRequest{ImageDigest: "feedface"})
	if mstatus != http.StatusNotFound {
		t.Fatalf("unknown digest status = %d", mstatus)
	}
	if e := openError(t, menv); !strings.Contains(e.Error, "feedface") || e.Kind == "" {
		t.Errorf("unknown digest error = %+v", e)
	}

	// Without -store the image routes do not exist.
	_, plain := newTestServer(t, Config{Workers: 1})
	pstatus, _, _ := postRaw(t, plain.URL+"/v1/images", schema.ImageRequest{Source: helloProg}, nil)
	if pstatus != http.StatusNotFound {
		t.Errorf("store-less POST /v1/images status = %d, want 404", pstatus)
	}
}

// TestServeStoreCheckpointResume drives the store-backed
// checkpoint/resume loop entirely over HTTP: a step-limited run
// persists checkpoints and reports them in its 422 partial, resuming
// from the last digest completes the program with the uninterrupted
// run's exact observables, and resuming against a different image is
// a 409 mismatch.
func TestServeStoreCheckpointResume(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, StoreDir: t.TempDir()})

	rstatus, renv, _ := post(t, ts.URL+"/v1/run", schema.RunRequest{Source: loopProg})
	if rstatus != http.StatusOK {
		t.Fatalf("reference run status = %d", rstatus)
	}
	ref := openRun(t, renv)

	status, env, _ := post(t, ts.URL+"/v1/run", schema.RunRequest{
		Source: loopProg, MaxSteps: 200_000, CheckpointEvery: 80_000,
	})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("interrupted run status = %d", status)
	}
	e := openError(t, env)
	if e.Kind != "steplimit" {
		t.Fatalf("interrupted run kind = %q", e.Kind)
	}
	if len(e.Checkpoints) == 0 {
		t.Fatal("step-limit partial carries no checkpoints")
	}
	last := e.Checkpoints[len(e.Checkpoints)-1]

	cstatus, cenv, _ := post(t, ts.URL+"/v1/run", schema.RunRequest{
		Source: loopProg, Resume: "store://" + last,
	})
	if cstatus != http.StatusOK {
		raw, _ := json.Marshal(cenv)
		t.Fatalf("resumed run status = %d: %s", cstatus, raw)
	}
	res := openRun(t, cenv)
	if res.Stdout != ref.Stdout || res.ExitStatus != ref.ExitStatus {
		t.Errorf("resumed run diverges: stdout %q vs %q", res.Stdout, ref.Stdout)
	}
	if res.Metrics == nil || ref.Metrics == nil || res.Metrics.Instret != ref.Metrics.Instret {
		t.Errorf("resumed metrics diverge from the uninterrupted run")
	}

	// Resume against a different program: 409 mismatch naming digests.
	mstatus, menv, _ := post(t, ts.URL+"/v1/run", schema.RunRequest{
		Source: helloProg, Resume: "store://" + last,
	})
	if mstatus != http.StatusConflict {
		t.Fatalf("mismatched resume status = %d", mstatus)
	}
	if e := openError(t, menv); e.Kind != "mismatch" {
		t.Errorf("mismatched resume kind = %q", e.Kind)
	}

	// An unknown checkpoint digest is a 404.
	ustatus, _, _ := post(t, ts.URL+"/v1/run", schema.RunRequest{
		Source: loopProg, Resume: "store://" + strings.Repeat("0", 64),
	})
	if ustatus != http.StatusNotFound {
		t.Errorf("unknown checkpoint status = %d", ustatus)
	}

	// checkpoint_every against a store-less server is a clean 422.
	_, plain := newTestServer(t, Config{Workers: 1})
	pstatus, penv, _ := post(t, plain.URL+"/v1/run", schema.RunRequest{
		Source: loopProg, CheckpointEvery: 1000,
	})
	if pstatus != http.StatusBadRequest {
		t.Fatalf("store-less checkpoint status = %d", pstatus)
	}
	if e := openError(t, penv); !strings.Contains(e.Error, "-store") {
		t.Errorf("store-less checkpoint error = %q", e.Error)
	}
}

// TestServeStoreRestart is the persistence acceptance test: images,
// checkpoints and heal reports stored by one server are served by a
// fresh server opened on the same directory — digest-addressed runs
// still execute, the checkpoint still resumes, and the heal report is
// still accounted for in the store metrics.
func TestServeStoreRestart(t *testing.T) {
	dir := t.TempDir()

	srv1, err := NewServer(Config{Workers: 2, Chaos: true, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())

	// Persist an image, checkpoints, and a heal report.
	status, _, data := postRaw(t, ts1.URL+"/v1/images", schema.ImageRequest{Source: helloProg, Harden: "icall"}, nil)
	if status != http.StatusCreated {
		t.Fatalf("image put status = %d: %s", status, data)
	}
	var env schema.Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	var img schema.ImageResponse
	if err := env.Open(schema.ServeV1, &img); err != nil {
		t.Fatal(err)
	}

	status, env, _ = post(t, ts1.URL+"/v1/run", schema.RunRequest{
		Source: loopProg, MaxSteps: 200_000, CheckpointEvery: 80_000,
	})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("interrupted run status = %d", status)
	}
	cks := openError(t, env).Checkpoints
	if len(cks) == 0 {
		t.Fatal("no checkpoints persisted")
	}

	status, env, _ = post(t, ts1.URL+"/v1/run", schema.RunRequest{
		Source: loopProg, Harden: "icall",
		Redundant: 3, Heal: true, SyncEvery: 20_000,
		FaultCount: 2, FaultSeed: 7, FaultReplica: 1,
	})
	if status != http.StatusOK {
		t.Fatalf("heal run status = %d", status)
	}
	if openRun(t, env).Heal == nil {
		t.Fatal("heal run carries no report")
	}

	rstatus, renv, _ := post(t, ts1.URL+"/v1/run", schema.RunRequest{Source: loopProg})
	if rstatus != http.StatusOK {
		t.Fatal("reference run failed")
	}
	ref := openRun(t, renv)

	ts1.Close()
	srv1.Close()

	// A fresh server on the same directory serves all of it.
	srv2, err := NewServer(Config{Workers: 2, StoreDir: dir})
	if err != nil {
		t.Fatalf("reopening the store: %v", err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer func() {
		ts2.Close()
		srv2.Close()
	}()

	dstatus, denv, _ := post(t, ts2.URL+"/v1/run", schema.RunRequest{ImageDigest: img.Digest})
	if dstatus != http.StatusOK {
		raw, _ := json.Marshal(denv)
		t.Fatalf("digest run after restart: status %d: %s", dstatus, raw)
	}
	if run := openRun(t, denv); strings.TrimSpace(run.Stdout) != "42" {
		t.Errorf("digest run stdout = %q", run.Stdout)
	}

	cstatus, cenv, _ := post(t, ts2.URL+"/v1/run", schema.RunRequest{
		Source: loopProg, Resume: "store://" + cks[len(cks)-1],
	})
	if cstatus != http.StatusOK {
		raw, _ := json.Marshal(cenv)
		t.Fatalf("resume after restart: status %d: %s", cstatus, raw)
	}
	if res := openRun(t, cenv); res.Stdout != ref.Stdout || res.ExitStatus != ref.ExitStatus {
		t.Errorf("resumed run after restart diverges from the uninterrupted run")
	}

	mstatus, menv := get(t, ts2.URL+"/metrics")
	if mstatus != http.StatusOK {
		t.Fatalf("metrics status = %d", mstatus)
	}
	var metrics schema.ServeMetrics
	if err := menv.Open(schema.ServeV1, &metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.Store == nil {
		t.Fatal("metrics carry no store section")
	}
	if metrics.Store.Entries[schema.ImageV1] < 1 {
		t.Errorf("store entries after restart = %+v, want the image", metrics.Store.Entries)
	}
	if metrics.Store.Entries[schema.CheckpointV1] < 1 {
		t.Errorf("store entries after restart = %+v, want checkpoints", metrics.Store.Entries)
	}
	if metrics.Store.Entries[schema.HealV1] < 1 {
		t.Errorf("store entries after restart = %+v, want the heal report", metrics.Store.Entries)
	}
}
