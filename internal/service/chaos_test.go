// Resilience tests for the chaos surface: panic recovery, graceful
// drain with a panic in flight, degraded health, and the seeded
// fault-injection run path.
package service

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"testing"
	"time"

	"roload/internal/schema"
)

// quietServer builds a chaos-enabled test server whose logger swallows
// the intentional panic stacks.
func quietServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	cfg.Chaos = true
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	srv, ts := newTestServer(t, cfg)
	return srv, ts.URL
}

func armChaos(t *testing.T, url string, req schema.ChaosRequest) schema.ChaosResponse {
	t.Helper()
	status, env, _ := post(t, url+"/v1/chaos", req)
	if status != http.StatusOK {
		t.Fatalf("arming chaos: status = %d", status)
	}
	var cr schema.ChaosResponse
	if err := env.Open(schema.ServeV1, &cr); err != nil {
		t.Fatal(err)
	}
	return cr
}

// TestServeChaosPanicRecovery: an injected worker panic answers a
// structured 500 of kind "panic", the service keeps serving, the
// worker slot is released, and no goroutines leak.
func TestServeChaosPanicRecovery(t *testing.T) {
	srv, url := quietServer(t, Config{Workers: 1})
	before := runtime.NumGoroutine()

	cr := armChaos(t, url, schema.ChaosRequest{PanicNext: 1})
	if !cr.Armed || cr.PanicNext != 1 {
		t.Fatalf("chaos state = %+v", cr)
	}

	status, env, _ := post(t, url+"/v1/run", schema.RunRequest{Source: helloProg})
	if status != http.StatusInternalServerError {
		t.Fatalf("panicked run status = %d, want 500", status)
	}
	if e := openError(t, env); e.Kind != "panic" {
		t.Fatalf("kind = %q, want panic", e.Kind)
	}

	// The service survives: the very next run succeeds on the same
	// (single) worker, proving the panicked request released its slot.
	status, env, _ = post(t, url+"/v1/run", schema.RunRequest{Source: helloProg})
	if status != http.StatusOK {
		t.Fatalf("post-panic run status = %d, want 200", status)
	}
	var run schema.RunResponse
	if err := env.Open(schema.ServeV1, &run); err != nil {
		t.Fatal(err)
	}
	if !run.Exited || run.ExitStatus != 0 {
		t.Errorf("post-panic run = %+v", run)
	}
	if n := srv.inFlight.Load(); n != 0 {
		t.Errorf("inFlight = %d after panic recovery", n)
	}

	http.DefaultClient.CloseIdleConnections()
	var after int
	for i := 0; i < 100; i++ {
		after = runtime.NumGoroutine()
		if after <= before {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after > before+3 {
		t.Errorf("goroutines grew from %d to %d across a recovered panic", before, after)
	}
}

// TestServeChaosError: an armed error token fails the next run with a
// structured 500 of kind "chaos" without executing anything.
func TestServeChaosError(t *testing.T) {
	_, url := quietServer(t, Config{Workers: 1})
	armChaos(t, url, schema.ChaosRequest{ErrorNext: 1})

	status, env, _ := post(t, url+"/v1/run", schema.RunRequest{Source: helloProg})
	if status != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", status)
	}
	if e := openError(t, env); e.Kind != "chaos" {
		t.Fatalf("kind = %q, want chaos", e.Kind)
	}
	if status, _, _ := post(t, url+"/v1/run", schema.RunRequest{Source: helloProg}); status != http.StatusOK {
		t.Fatalf("post-chaos run status = %d", status)
	}
}

// TestServeChaosGated: without -chaos the arming endpoint is not
// routed and fault-injection requests are rejected up front.
func TestServeChaosGated(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	raw, _ := json.Marshal(schema.ChaosRequest{PanicNext: 1})
	resp, err := http.Post(ts.URL+"/v1/chaos", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("chaos endpoint without -chaos: status = %d, want 404", resp.StatusCode)
	}

	status, env, _ := post(t, ts.URL+"/v1/run", schema.RunRequest{Source: helloProg, FaultCount: 1})
	if status != http.StatusBadRequest {
		t.Fatalf("fault_count without -chaos: status = %d, want 400", status)
	}
	if e := openError(t, env); e.Kind != "validation" {
		t.Errorf("kind = %q, want validation", e.Kind)
	}
}

// TestServeDrainWithPanicInFlight: graceful drain while a
// chaos-injected worker panic is in flight. The in-flight request is
// still answered (structured 500), new work is shed as draining, and
// the goroutine count settles back.
func TestServeDrainWithPanicInFlight(t *testing.T) {
	srv, url := quietServer(t, Config{Workers: 1, Grace: 50 * time.Millisecond})
	before := runtime.NumGoroutine()

	// The armed latency holds the panicking request in the worker long
	// enough for the drain to start while it is in flight.
	armChaos(t, url, schema.ChaosRequest{LatencyMS: 300, PanicNext: 1})

	done := make(chan int, 1)
	go func() {
		status, _, _ := post(t, url+"/v1/run", schema.RunRequest{Source: helloProg, TimeoutMS: 10_000})
		done <- status
	}()
	for i := 0; srv.inFlight.Load() != 1; i++ {
		if i > 1000 {
			t.Fatal("run never became in-flight")
		}
		time.Sleep(2 * time.Millisecond)
	}

	srv.StartDrain()
	if status, _, _ := post(t, url+"/v1/run", schema.RunRequest{Source: helloProg}); status != http.StatusServiceUnavailable {
		t.Errorf("new work during drain: status = %d, want 503", status)
	}

	select {
	case status := <-done:
		if status != http.StatusInternalServerError {
			t.Errorf("in-flight panicked run status = %d, want 500", status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never answered during drain")
	}
	if n := srv.inFlight.Load(); n != 0 {
		t.Errorf("inFlight = %d after drain", n)
	}

	http.DefaultClient.CloseIdleConnections()
	var after int
	for i := 0; i < 100; i++ {
		after = runtime.NumGoroutine()
		if after <= before {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after > before+3 {
		t.Errorf("goroutines grew from %d to %d across drain-with-panic", before, after)
	}
}

// TestServeHealthzDegraded: /healthz flips to 503 "degraded" with a
// Retry-After hint while chaos is armed or within the window after a
// recovered panic, and recovers afterwards.
func TestServeHealthzDegraded(t *testing.T) {
	_, url := quietServer(t, Config{Workers: 1, DegradedWindow: 150 * time.Millisecond})

	healthz := func() (int, string, schema.HealthResponse) {
		resp, err := http.Get(url + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env schema.Envelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		var hr schema.HealthResponse
		if err := env.Open(schema.ServeV1, &hr); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header.Get("Retry-After"), hr
	}

	if status, _, hr := healthz(); status != http.StatusOK || hr.Status != "ok" {
		t.Fatalf("clean healthz = %d %+v", status, hr)
	}

	// Armed chaos degrades health.
	armChaos(t, url, schema.ChaosRequest{PanicNext: 1})
	status, retry, hr := healthz()
	if status != http.StatusServiceUnavailable || hr.Status != "degraded" {
		t.Fatalf("armed healthz = %d %+v", status, hr)
	}
	if retry == "" || hr.RetryAfterSec <= 0 {
		t.Errorf("degraded response lacks retry hint: header=%q body=%d", retry, hr.RetryAfterSec)
	}

	// Spend the panic token; the recovered panic keeps health degraded
	// for the window, then it clears.
	if status, _, _ := post(t, url+"/v1/run", schema.RunRequest{Source: helloProg}); status != http.StatusInternalServerError {
		t.Fatalf("panicked run status = %d", status)
	}
	if status, _, hr := healthz(); status != http.StatusServiceUnavailable || hr.Status != "degraded" {
		t.Fatalf("post-panic healthz = %d %+v", status, hr)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		status, _, hr := healthz()
		if status == http.StatusOK && hr.Status == "ok" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never recovered: %d %+v", status, hr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServeFaultInjectionRun: a chaos run returns the roload-fault/v1
// trace and reproduces byte-for-byte for the same (source, seed,
// count).
func TestServeFaultInjectionRun(t *testing.T) {
	_, url := quietServer(t, Config{Workers: 2})

	req := schema.RunRequest{
		Source: helloProg, System: "full", Harden: "icall",
		FaultCount: 4, FaultSeed: 9,
	}
	one := func() ([]byte, schema.RunResponse) {
		status, env, raw := post(t, url+"/v1/run", req)
		if status != http.StatusOK {
			t.Fatalf("status = %d: %s", status, raw)
		}
		var run schema.RunResponse
		if err := env.Open(schema.ServeV1, &run); err != nil {
			t.Fatal(err)
		}
		return raw, run
	}
	rawA, runA := one()
	rawB, _ := one()

	if runA.FaultTrace == nil || runA.FaultTrace.Schema != schema.FaultV1 {
		t.Fatalf("fault trace = %+v", runA.FaultTrace)
	}
	if runA.FaultTrace.Seed != 9 {
		t.Errorf("trace seed = %d", runA.FaultTrace.Seed)
	}
	if len(runA.FaultTrace.Events) == 0 {
		t.Error("no faults fired inside the run window")
	}
	if runA.Metrics == nil {
		t.Fatal("metrics missing")
	}
	injected := 0
	for _, rec := range runA.Metrics.Audit {
		if rec.Kind == schema.AuditInjected {
			injected++
		}
	}
	if injected != len(runA.FaultTrace.Events) {
		t.Errorf("audit carries %d injected records, trace has %d events", injected, len(runA.FaultTrace.Events))
	}
	if !bytes.Equal(rawA, rawB) {
		t.Error("same-seed chaos runs differ byte-for-byte")
	}
}

// TestServeStepLimitCarriesInjectedAudit: a budget-bound chaos run
// answers 422 whose partial snapshot includes the fault-audit entries
// accumulated before the interruption.
func TestServeStepLimitCarriesInjectedAudit(t *testing.T) {
	_, url := quietServer(t, Config{Workers: 1})

	// Seed 5 is pinned: its frozen-PRNG fault placements (store drops
	// and spurious traps landing inside the spin loop) leave the guest
	// spinning to its step budget. Other seeds may drop a prologue
	// store and crash the guest early, which answers 200 + signal
	// rather than 422 — a legitimate outcome, but not this test's.
	status, env, _ := post(t, url+"/v1/run", schema.RunRequest{
		Source: spinProg, MaxSteps: 50_000,
		FaultCount: 6, FaultSeed: 5, TimeoutMS: 30_000,
	})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", status)
	}
	e := openError(t, env)
	if e.Kind != "steplimit" {
		t.Fatalf("kind = %q, want steplimit", e.Kind)
	}
	if e.Metrics == nil {
		t.Fatal("partial snapshot missing from 422")
	}
	injected := 0
	for _, rec := range e.Metrics.Audit {
		if rec.Kind == schema.AuditInjected {
			injected++
		}
	}
	if injected == 0 {
		t.Errorf("partial snapshot carries no injected-fault audit entries (audit: %+v)", e.Metrics.Audit)
	}
}
