// Tests for the durable-fleet-state surface: the generalized
// GET/PUT /v1/store/{kind}/{digest} API, write-through replication to
// peers named by the Roload-Store-Peers header, peer fetch on a local
// miss (cross-backend checkpoint resume), resumable batches keyed by
// batch id, and the GC policy daemon.
package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"roload/internal/schema"
)

// putRaw PUTs one artifact body and returns status + response bytes.
func putRaw(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	return resp.StatusCode, buf.Bytes()
}

// storeImage compiles helloProg into the server's store and returns
// the image digest.
func storeImage(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	status, _, data := postRaw(t, ts.URL+"/v1/images", schema.ImageRequest{
		Source: helloProg, Harden: "icall",
	}, nil)
	if status != http.StatusCreated && status != http.StatusOK {
		t.Fatalf("image put status = %d: %s", status, data)
	}
	var env schema.Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	var img schema.ImageResponse
	if err := env.Open(schema.ServeV1, &img); err != nil {
		t.Fatal(err)
	}
	return img.Digest
}

// serveMetrics fetches and decodes /metrics.
func serveMetrics(t *testing.T, ts *httptest.Server) schema.ServeMetrics {
	t.Helper()
	status, env := get(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status = %d", status)
	}
	var m schema.ServeMetrics
	if err := env.Open(schema.ServeV1, &m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestServeStoreSurface drives GET/PUT /v1/store/{kind}/{digest}: the
// image alias is byte-identical to /v1/images, a PUT round-trips an
// artifact into a second fleet member (201 then 200 reused), the
// transplanted image is executable by digest, and corrupt or
// misdirected bodies are rejected at the boundary.
func TestServeStoreSurface(t *testing.T) {
	_, tsA := newTestServer(t, Config{Workers: 2, StoreDir: t.TempDir()})
	digest := storeImage(t, tsA)

	// The store surface serves the exact bytes of the images surface.
	istatus, ibody := getRaw(t, tsA.URL+"/v1/images/"+digest)
	sstatus, sbody := getRaw(t, tsA.URL+"/v1/store/roload-image/"+digest)
	if istatus != http.StatusOK || sstatus != http.StatusOK {
		t.Fatalf("image get %d, store get %d", istatus, sstatus)
	}
	if !bytes.Equal(ibody, sbody) {
		t.Fatalf("store surface diverges from the images surface:\n%s\nvs\n%s", sbody, ibody)
	}

	// Unknown kind and unknown digest are clean 404s.
	if status, _ := getRaw(t, tsA.URL+"/v1/store/no-such-kind/"+digest); status != http.StatusNotFound {
		t.Errorf("unknown kind status = %d, want 404", status)
	}
	if status, _ := getRaw(t, tsA.URL+"/v1/store/roload-image/"+strings.Repeat("0", 64)); status != http.StatusNotFound {
		t.Errorf("unknown digest status = %d, want 404", status)
	}

	// PUT transplants the artifact into a second, empty fleet member.
	_, tsB := newTestServer(t, Config{Workers: 2, StoreDir: t.TempDir()})
	status, data := putRaw(t, tsB.URL+"/v1/store/roload-image/"+digest, sbody)
	if status != http.StatusCreated {
		t.Fatalf("first put status = %d: %s", status, data)
	}
	var env schema.Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	var put schema.StorePutResponse
	if err := env.Open(schema.ServeV1, &put); err != nil {
		t.Fatal(err)
	}
	if !put.Added || put.Digest != digest {
		t.Errorf("first put = %+v", put)
	}
	if status, _ = putRaw(t, tsB.URL+"/v1/store/roload-image/"+digest, sbody); status != http.StatusOK {
		t.Errorf("second put status = %d, want 200 (reused)", status)
	}

	// The transplanted image executes by digest, byte-for-byte the same
	// answer as on the origin backend.
	astatus, aenv, _ := post(t, tsA.URL+"/v1/run", schema.RunRequest{ImageDigest: digest})
	bstatus, benv, _ := post(t, tsB.URL+"/v1/run", schema.RunRequest{ImageDigest: digest})
	if astatus != http.StatusOK || bstatus != http.StatusOK {
		t.Fatalf("origin run %d, transplant run %d", astatus, bstatus)
	}
	if a, b := openRun(t, aenv), openRun(t, benv); a.Stdout != b.Stdout || a.ExitStatus != b.ExitStatus {
		t.Errorf("transplanted image diverges: %+v vs %+v", b, a)
	}

	// A body that does not derive its claimed digest is rejected: wrong
	// address first, then corrupted bytes under the right address.
	if status, _ = putRaw(t, tsB.URL+"/v1/store/roload-image/"+strings.Repeat("f", 64), sbody); status != http.StatusBadRequest {
		t.Errorf("misdirected put status = %d, want 400", status)
	}
	corrupt := bytes.Replace(sbody, []byte(`"digest"`), []byte(`"digset"`), 1)
	if status, _ = putRaw(t, tsB.URL+"/v1/store/roload-image/"+digest, corrupt); status != http.StatusBadRequest {
		t.Errorf("corrupt put status = %d, want 400", status)
	}
	if status, _ = putRaw(t, tsB.URL+"/v1/store/no-such-kind/"+digest, sbody); status != http.StatusBadRequest {
		t.Errorf("unknown-kind put status = %d, want 400", status)
	}

	// Without -store the surface does not exist.
	_, plain := newTestServer(t, Config{Workers: 1})
	if status, _ := getRaw(t, plain.URL+"/v1/store/roload-image/"+digest); status != http.StatusNotFound {
		t.Errorf("store-less GET /v1/store status = %d, want 404", status)
	}
}

// TestServePeerFetchResume is the cross-backend resume contract: a
// checkpoint written on backend A resumes on backend B — which never
// saw the run — because B fetches the missing artifacts from the peers
// named in the Roload-Store-Peers header, and the resumed observables
// are identical to the uninterrupted run's.
func TestServePeerFetchResume(t *testing.T) {
	_, tsA := newTestServer(t, Config{Workers: 2, StoreDir: t.TempDir()})
	_, tsB := newTestServer(t, Config{Workers: 2, StoreDir: t.TempDir()})

	rstatus, renv, _ := post(t, tsA.URL+"/v1/run", schema.RunRequest{Source: loopProg})
	if rstatus != http.StatusOK {
		t.Fatalf("reference run status = %d", rstatus)
	}
	ref := openRun(t, renv)

	status, env, _ := post(t, tsA.URL+"/v1/run", schema.RunRequest{
		Source: loopProg, MaxSteps: 200_000, CheckpointEvery: 80_000,
	})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("interrupted run status = %d", status)
	}
	e := openError(t, env)
	if len(e.Checkpoints) == 0 {
		t.Fatal("step-limit partial carries no checkpoints")
	}
	last := e.Checkpoints[len(e.Checkpoints)-1]

	// Resume on B without naming A as a peer: B has never seen the
	// checkpoint, so this is a 404.
	resume := schema.RunRequest{Source: loopProg, Resume: "store://" + last}
	if mstatus, _, _ := postRaw(t, tsB.URL+"/v1/run", resume, nil); mstatus != http.StatusNotFound {
		t.Fatalf("peer-less resume status = %d, want 404", mstatus)
	}

	// With the header, B fetches the checkpoint from A and completes
	// the program with the uninterrupted run's exact observables.
	cstatus, _, cdata := postRaw(t, tsB.URL+"/v1/run", resume,
		map[string]string{"Roload-Store-Peers": tsA.URL})
	if cstatus != http.StatusOK {
		t.Fatalf("cross-backend resume status = %d: %s", cstatus, cdata)
	}
	var cenv schema.Envelope
	if err := json.Unmarshal(cdata, &cenv); err != nil {
		t.Fatal(err)
	}
	res := openRun(t, cenv)
	if res.Stdout != ref.Stdout || res.ExitStatus != ref.ExitStatus {
		t.Errorf("cross-backend resume diverges: stdout %q vs %q", res.Stdout, ref.Stdout)
	}
	if res.Metrics == nil || ref.Metrics == nil || res.Metrics.Instret != ref.Metrics.Instret {
		t.Errorf("cross-backend resume metrics diverge from the uninterrupted run")
	}

	// The fetch is visible in B's replication metrics, and the
	// checkpoint now lives in B's own store (read-through repair): the
	// same resume works with A gone.
	m := serveMetrics(t, tsB)
	if m.Replication == nil || m.Replication.PeerFetchHits == 0 {
		t.Errorf("replication metrics after peer fetch = %+v", m.Replication)
	}
	tsA.Close()
	if rstatus, _, _ := postRaw(t, tsB.URL+"/v1/run", resume, nil); rstatus != http.StatusOK {
		t.Errorf("repaired resume after peer loss status = %d, want 200", rstatus)
	}
}

// TestServeImagePutReplication: a POST /v1/images carrying a
// Roload-Store-Peers header write-through-replicates the image to the
// named peers synchronously — by the time the put answers, the peer
// serves the digest from its own store.
func TestServeImagePutReplication(t *testing.T) {
	_, tsA := newTestServer(t, Config{Workers: 2, StoreDir: t.TempDir()})
	_, tsB := newTestServer(t, Config{Workers: 2, StoreDir: t.TempDir()})

	status, _, data := postRaw(t, tsA.URL+"/v1/images", schema.ImageRequest{
		Source: helloProg, Harden: "icall",
	}, map[string]string{"Roload-Store-Peers": tsB.URL})
	if status != http.StatusCreated {
		t.Fatalf("image put status = %d: %s", status, data)
	}
	var env schema.Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	var img schema.ImageResponse
	if err := env.Open(schema.ServeV1, &img); err != nil {
		t.Fatal(err)
	}

	_, abody := getRaw(t, tsA.URL+"/v1/store/roload-image/"+img.Digest)
	bstatus, bbody := getRaw(t, tsB.URL+"/v1/store/roload-image/"+img.Digest)
	if bstatus != http.StatusOK {
		t.Fatalf("replica get status = %d, want 200", bstatus)
	}
	if !bytes.Equal(abody, bbody) {
		t.Errorf("replica bytes diverge from the original")
	}
	if m := serveMetrics(t, tsA); m.Replication == nil || m.Replication.Pushes == 0 {
		t.Errorf("origin replication metrics = %+v, want pushes > 0", m.Replication)
	}
}

// TestServeResumableBatch: re-POSTing a batch id replays completed runs
// from their stored roload-runresult/v1 artifacts — byte-identical
// bodies, Skipped set per run and summed in the report, zero compiles —
// while failed runs and changed specs re-execute.
func TestServeResumableBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, StoreDir: t.TempDir()})
	hdr := map[string]string{"Roload-Trace": "durable-batch-1"}

	req := schema.BatchRequest{
		Source: loopProg, Harden: "icall",
		Runs: []schema.BatchRunSpec{
			{},
			{System: "baseline"},
			{MaxSteps: 100}, // step-limit 422: never persisted, always re-executes
		},
	}
	status, _, data := postRaw(t, ts.URL+"/v1/batch", req, hdr)
	if status != http.StatusOK {
		t.Fatalf("first batch status = %d: %s", status, data)
	}
	first := openBatch(t, data)
	if first.BatchID != "durable-batch-1" || first.Skipped != 0 || first.Compiles != 1 {
		t.Fatalf("first batch = id %q skipped %d compiles %d", first.BatchID, first.Skipped, first.Compiles)
	}
	if first.Runs[2].Status != http.StatusUnprocessableEntity {
		t.Fatalf("run 3 status = %d, want 422", first.Runs[2].Status)
	}

	// The re-POST replays runs 1-2 and re-executes the failed run 3.
	status, _, data = postRaw(t, ts.URL+"/v1/batch", req, hdr)
	if status != http.StatusOK {
		t.Fatalf("second batch status = %d: %s", status, data)
	}
	second := openBatch(t, data)
	if second.Skipped != 2 || second.Compiles != 0 {
		t.Errorf("second batch skipped %d compiles %d, want 2 and 0", second.Skipped, second.Compiles)
	}
	for i := 0; i < 2; i++ {
		if !second.Runs[i].Skipped {
			t.Errorf("run %d not skipped on re-POST", i+1)
		}
		if second.Runs[i].Body != first.Runs[i].Body {
			t.Errorf("run %d replay diverges:\n%s\nvs\n%s", i+1, second.Runs[i].Body, first.Runs[i].Body)
		}
	}
	if second.Runs[2].Skipped {
		t.Errorf("failed run replayed; errors must re-execute")
	}

	// A changed spec changes the address: only the untouched runs skip.
	req.Runs[1].System = "full"
	status, _, data = postRaw(t, ts.URL+"/v1/batch", req, hdr)
	if status != http.StatusOK {
		t.Fatalf("changed-spec batch status = %d: %s", status, data)
	}
	changed := openBatch(t, data)
	if changed.Skipped != 1 || changed.Runs[1].Skipped {
		t.Errorf("changed-spec batch skipped %d (run 2 skipped=%v), want 1 and false",
			changed.Skipped, changed.Runs[1].Skipped)
	}

	// A different batch id shares nothing.
	status, _, data = postRaw(t, ts.URL+"/v1/batch", req,
		map[string]string{"Roload-Trace": "durable-batch-2"})
	if status != http.StatusOK {
		t.Fatalf("fresh-id batch status = %d: %s", status, data)
	}
	if fresh := openBatch(t, data); fresh.Skipped != 0 {
		t.Errorf("fresh batch id skipped %d runs, want 0", fresh.Skipped)
	}
}

// TestServeResumableBatchCrossBackend: batch results written on A (and
// replicated to B via the peers header) let a re-POST of the same batch
// id on B skip every completed run without A. This is the service-level
// half of the kill -9 story the gateway E2E drives end to end.
func TestServeResumableBatchCrossBackend(t *testing.T) {
	srvA, err := NewServer(Config{Workers: 2, StoreDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA.Handler())
	_, tsB := newTestServer(t, Config{Workers: 2, StoreDir: t.TempDir()})

	req := schema.BatchRequest{
		Source: loopProg, Harden: "icall",
		Runs: []schema.BatchRunSpec{{}, {System: "baseline"}},
	}
	hdrA := map[string]string{"Roload-Trace": "durable-xb-1", "Roload-Store-Peers": tsB.URL}
	status, _, data := postRaw(t, tsA.URL+"/v1/batch", req, hdrA)
	if status != http.StatusOK {
		t.Fatalf("batch on A status = %d: %s", status, data)
	}
	first := openBatch(t, data)

	// A is gone; B replays the whole batch from the replicated results.
	tsA.Close()
	srvA.Close()
	status, _, data = postRaw(t, tsB.URL+"/v1/batch", req,
		map[string]string{"Roload-Trace": "durable-xb-1"})
	if status != http.StatusOK {
		t.Fatalf("batch on B status = %d: %s", status, data)
	}
	second := openBatch(t, data)
	if second.Skipped != len(req.Runs) {
		t.Fatalf("batch on B skipped %d of %d", second.Skipped, len(req.Runs))
	}
	for i := range first.Runs {
		if second.Runs[i].Body != first.Runs[i].Body {
			t.Errorf("run %d replay on B diverges from A's original", i+1)
		}
	}
}

// TestServeGCDaemon: -store-gc-interval with an aggressive age policy
// unpins and compacts in the background, and the work shows up in the
// metrics gc section.
func TestServeGCDaemon(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1, StoreDir: t.TempDir(),
		StoreGCInterval: 10 * time.Millisecond,
		StoreMaxAge:     time.Nanosecond,
	})
	storeImage(t, ts)

	deadline := time.Now().Add(5 * time.Second)
	for {
		m := serveMetrics(t, ts)
		if m.Store != nil && m.Store.GC != nil && m.Store.GC.Runs > 0 && m.Store.GC.Unpinned > 0 {
			if m.Store.Pinned != 0 {
				t.Errorf("pinned = %d after age-out, want 0", m.Store.Pinned)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("GC daemon never reported work: %+v", m.Store)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServeStorePaddedBodyRoundTrips: the store compacts JSON bodies
// on append, so content addresses for extrinsic kinds are defined
// over the canonical (compact) encoding. A whitespace-padded PUT
// addressed by its compact form must land, serve back as the compact
// bytes, and re-verify against its own address — the property that
// keeps peer fetch and read-repair sound for bodies the fleet did not
// mint itself. An address derived from the padded bytes can never
// round-trip and is rejected at the boundary.
func TestServeStorePaddedBodyRoundTrips(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, StoreDir: t.TempDir()})

	padded := []byte("{\"schema\": \"roload-batch/v1\",  \"batch_id\": \"pad\",\n\"runs\": []}")
	canon := schema.CanonicalBytes(padded)
	if bytes.Equal(padded, canon) {
		t.Fatal("test body must not already be compact")
	}
	sum := sha256.Sum256(canon)
	digest := hex.EncodeToString(sum[:])

	status, data := putRaw(t, ts.URL+"/v1/store/roload-batch/"+digest, padded)
	if status != http.StatusCreated {
		t.Fatalf("canonical-addressed put status = %d: %s", status, data)
	}
	gstatus, got := getRaw(t, ts.URL+"/v1/store/roload-batch/"+digest)
	if gstatus != http.StatusOK {
		t.Fatalf("get status = %d", gstatus)
	}
	if !bytes.Equal(got, canon) {
		t.Errorf("served %q, want the canonical bytes %q", got, canon)
	}
	kind, ok := schema.KindByName("roload-batch")
	if !ok {
		t.Fatal("roload-batch kind unregistered")
	}
	if err := schema.VerifyArtifact(kind.ID, digest, got); err != nil {
		t.Errorf("served bytes fail re-verification against their address: %v", err)
	}

	rawSum := sha256.Sum256(padded)
	rawDigest := hex.EncodeToString(rawSum[:])
	if rawDigest != digest {
		if status, _ := putRaw(t, ts.URL+"/v1/store/roload-batch/"+rawDigest, padded); status != http.StatusBadRequest {
			t.Errorf("raw-byte-addressed padded put status = %d, want 400", status)
		}
	}
}
