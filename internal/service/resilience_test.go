// Tests for the resilience surface added with the self-healing
// supervisor: the redundant/heal run options, idempotency keys,
// priority-aware load shedding, and drain behaviour of supervised
// runs.
package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"roload/internal/schema"
)

// loopProg spans several supervisor sync points at the test stride.
const loopProg = `
func main() int {
	var i int = 0;
	var acc int = 0;
	while (i < 30000) {
		acc = acc + i;
		i = i + 1;
	}
	print_int(acc);
	return 0;
}
`

func openRun(t *testing.T, env schema.Envelope) schema.RunResponse {
	t.Helper()
	var resp schema.RunResponse
	if err := env.Open(schema.ServeV1, &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// postKeyed is post with an Idempotency-Key header, also returning the
// response headers.
func postKeyed(t *testing.T, url, key string, body any) (int, schema.Envelope, http.Header) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var env schema.Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("status %d, undecodable body %q: %v", resp.StatusCode, data, err)
	}
	return resp.StatusCode, env, resp.Header
}

// TestServeRedundantRun: a supervised run answers the same document as
// a plain run plus an agreed heal report.
func TestServeRedundantRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	status, env, _ := post(t, ts.URL+"/v1/run", schema.RunRequest{Source: loopProg})
	if status != http.StatusOK {
		t.Fatalf("plain run status = %d", status)
	}
	plain := openRun(t, env)

	status, env, _ = post(t, ts.URL+"/v1/run", schema.RunRequest{
		Source: loopProg, Redundant: 3, SyncEvery: 50_000,
	})
	if status != http.StatusOK {
		t.Fatalf("redundant run status = %d", status)
	}
	sup := openRun(t, env)
	if sup.Heal == nil {
		t.Fatal("redundant run carries no heal report")
	}
	if !sup.Heal.Agreed || sup.Heal.Replicas != 3 || sup.Heal.SyncChecked < 2 {
		raw, _ := json.Marshal(sup.Heal)
		t.Errorf("heal report = %s", raw)
	}
	sup.Heal = nil
	a, _ := json.Marshal(plain)
	b, _ := json.Marshal(sup)
	if string(a) != string(b) {
		t.Errorf("supervised response differs from plain run:\n got %s\nwant %s", b, a)
	}
}

// TestServeRedundantHeal: seeded faults into one replica are masked —
// the response matches the fault-free run and the report records the
// divergence and heal.
func TestServeRedundantHeal(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Chaos: true})
	status, env, _ := post(t, ts.URL+"/v1/run", schema.RunRequest{Source: loopProg, Harden: "icall"})
	if status != http.StatusOK {
		t.Fatalf("fault-free run status = %d", status)
	}
	ref := openRun(t, env)

	status, env, _ = post(t, ts.URL+"/v1/run", schema.RunRequest{
		Source: loopProg, Harden: "icall",
		Redundant: 3, Heal: true, SyncEvery: 20_000,
		FaultCount: 2, FaultSeed: 7, FaultReplica: 1,
	})
	if status != http.StatusOK {
		t.Fatalf("supervised faulted run status = %d", status)
	}
	sup := openRun(t, env)
	if sup.Heal == nil {
		t.Fatal("no heal report")
	}
	if sup.FaultTrace == nil || len(sup.FaultTrace.Events) == 0 {
		t.Fatal("seed 7 fired no faults; the scenario proves nothing")
	}
	if len(sup.Heal.Divergences) == 0 || len(sup.Heal.Heals) == 0 || !sup.Heal.Agreed {
		raw, _ := json.Marshal(sup.Heal)
		t.Errorf("heal report shows no divergence+heal: %s", raw)
	}
	if sup.Stdout != ref.Stdout || sup.ExitStatus != ref.ExitStatus {
		t.Errorf("supervised outcome (%q, %d) != fault-free (%q, %d)",
			sup.Stdout, sup.ExitStatus, ref.Stdout, ref.ExitStatus)
	}
	sup.Heal, sup.FaultTrace = nil, nil
	a, _ := json.Marshal(ref)
	b, _ := json.Marshal(sup)
	if string(a) != string(b) {
		t.Errorf("supervised faulted response differs from fault-free run:\n got %s\nwant %s", b, a)
	}
}

// TestServeRedundantValidation: malformed redundant options are 400s.
func TestServeRedundantValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		req  schema.RunRequest
		want string
	}{
		{"even", schema.RunRequest{Source: helloProg, Redundant: 4}, "odd"},
		{"one", schema.RunRequest{Source: helloProg, Redundant: 1}, "odd"},
		{"over cap", schema.RunRequest{Source: helloProg, Redundant: 9}, "exceeds the server cap"},
		{"fault replica", schema.RunRequest{Source: helloProg, Redundant: 3, FaultReplica: 3}, "out of range"},
		{"heal alone", schema.RunRequest{Source: helloProg, Heal: true}, "require redundant"},
		{"priority", schema.RunRequest{Source: helloProg, Priority: "vip"}, "unknown priority"},
	}
	for _, tc := range cases {
		status, env, _ := post(t, ts.URL+"/v1/run", tc.req)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, status)
			continue
		}
		if e := openError(t, env); e.Kind != "validation" || !bytes.Contains([]byte(e.Error), []byte(tc.want)) {
			t.Errorf("%s: error = %+v, want kind validation mentioning %q", tc.name, e, tc.want)
		}
	}
}

// TestServeIdempotencyReplay: a repeated key replays the stored
// response byte-for-byte without re-executing.
func TestServeIdempotencyReplay(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})
	status, env1, h1 := postKeyed(t, ts.URL+"/v1/run", "key-1", schema.RunRequest{Source: helloProg})
	if status != http.StatusOK {
		t.Fatalf("first run status = %d", status)
	}
	if h1.Get("Idempotency-Replayed") != "" {
		t.Error("first execution marked as replayed")
	}
	status, env2, h2 := postKeyed(t, ts.URL+"/v1/run", "key-1", schema.RunRequest{Source: helloProg})
	if status != http.StatusOK {
		t.Fatalf("replay status = %d", status)
	}
	if h2.Get("Idempotency-Replayed") != "true" {
		t.Error("replay not marked")
	}
	a, _ := json.Marshal(env1)
	b, _ := json.Marshal(env2)
	if string(a) != string(b) {
		t.Errorf("replayed body differs:\n a %s\n b %s", a, b)
	}
	m := srv.idem.metrics()
	if m.Misses != 1 || m.Hits != 1 || m.Entries != 1 {
		t.Errorf("idempotency metrics = %+v, want 1 miss, 1 hit, 1 entry", m)
	}
}

// TestServeIdempotencyConcurrent: concurrent duplicates under one key
// execute the body exactly once; the followers replay.
func TestServeIdempotencyConcurrent(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})
	const dup = 5
	var wg sync.WaitGroup
	bodies := make([]string, dup)
	for i := 0; i < dup; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, env, _ := postKeyed(t, ts.URL+"/v1/run", "key-c", schema.RunRequest{Source: helloProg})
			if status != http.StatusOK {
				t.Errorf("duplicate %d: status %d", i, status)
			}
			raw, _ := json.Marshal(env)
			bodies[i] = string(raw)
		}(i)
	}
	wg.Wait()
	for i := 1; i < dup; i++ {
		if bodies[i] != bodies[0] {
			t.Errorf("duplicate %d answered a different body", i)
		}
	}
	m := srv.idem.metrics()
	if m.Misses != 1 {
		t.Errorf("misses = %d, want exactly one execution", m.Misses)
	}
	if m.Hits != dup-1 {
		t.Errorf("hits = %d, want %d replays", m.Hits, dup-1)
	}
}

// TestServeIdempotencyRetryAfterFailure: a chaos-injected 500 is not
// stored — the client's retry under the same key re-executes and the
// success is what gets pinned.
func TestServeIdempotencyRetryAfterFailure(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2, Chaos: true})
	if status, _, _ := post(t, ts.URL+"/v1/chaos", schema.ChaosRequest{ErrorNext: 1}); status != http.StatusOK {
		t.Fatal("arming chaos failed")
	}
	status, env, _ := postKeyed(t, ts.URL+"/v1/run", "key-r", schema.RunRequest{Source: helloProg})
	if status != http.StatusInternalServerError {
		t.Fatalf("chaos run status = %d, want 500", status)
	}
	if e := openError(t, env); e.Kind != "chaos" {
		t.Fatalf("error kind = %q", e.Kind)
	}
	status, _, h := postKeyed(t, ts.URL+"/v1/run", "key-r", schema.RunRequest{Source: helloProg})
	if status != http.StatusOK {
		t.Fatalf("retry status = %d", status)
	}
	if h.Get("Idempotency-Replayed") != "" {
		t.Error("retry after failure replayed the failure instead of re-executing")
	}
	status, _, h = postKeyed(t, ts.URL+"/v1/run", "key-r", schema.RunRequest{Source: helloProg})
	if status != http.StatusOK || h.Get("Idempotency-Replayed") != "true" {
		t.Errorf("third attempt: status %d, replayed %q; want stored success replay", status, h.Get("Idempotency-Replayed"))
	}
	if m := srv.idem.metrics(); m.Misses != 2 || m.Hits != 1 {
		t.Errorf("idempotency metrics = %+v, want 2 executions + 1 replay", srv.idem.metrics())
	}
}

// TestServeLowPriorityShed: once the queue passes the soft threshold,
// low-priority requests get 429 + Retry-After while default-priority
// requests still queue (and the full queue still answers 503 busy).
func TestServeLowPriorityShed(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, Queue: 2})

	// Occupy the only worker, then park one request in the queue; both
	// expire on their own request timeout.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			post(t, ts.URL+"/v1/run", schema.RunRequest{Source: spinProg, TimeoutMS: 3_000})
		}()
		// Let the request reach its slot/queue position before the next.
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if int(srv.inFlight.Load())+int(srv.queued.Load()) > i {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	defer wg.Wait()

	if got := int(srv.queued.Load()); got < 1 {
		t.Fatalf("queued = %d, want >= 1", got)
	}
	raw, _ := json.Marshal(schema.RunRequest{Source: helloProg, Priority: "low"})
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("low-priority status = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After header")
	}
	var env schema.Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	e := openError(t, env)
	if e.Kind != "overload" || e.RetryAfterSec <= 0 {
		t.Errorf("shed error = %+v, want kind overload with retry_after_sec", e)
	}
	if srv.shed.Load() == 0 {
		t.Error("shed counter did not move")
	}
}

// TestServeDrainCancelsRedundant: draining cancels an in-flight
// supervised run at the grace deadline; the client gets the standard
// 504 with a partial snapshot.
func TestServeDrainCancelsRedundant(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2, Grace: 100 * time.Millisecond})
	done := make(chan struct {
		status int
		env    schema.Envelope
	}, 1)
	go func() {
		status, env, _ := post(t, ts.URL+"/v1/run", schema.RunRequest{
			Source: spinProg, Redundant: 3, Heal: true, TimeoutMS: 30_000,
		})
		done <- struct {
			status int
			env    schema.Envelope
		}{status, env}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.inFlight.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if srv.inFlight.Load() == 0 {
		t.Fatal("redundant run never became in-flight")
	}
	srv.StartDrain()
	select {
	case r := <-done:
		if r.status != http.StatusGatewayTimeout {
			t.Fatalf("drained redundant run status = %d, want 504", r.status)
		}
		e := openError(t, r.env)
		if e.Kind != "timeout" {
			t.Errorf("error kind = %q, want timeout", e.Kind)
		}
		if e.Metrics == nil || e.Metrics.Instret == 0 {
			t.Error("504 carries no partial snapshot of the supervised run")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drained redundant run never answered")
	}
}
