// Live-telemetry surface of the service: run ids, span traces, the
// run-event stream endpoints, and the bounded trace registry.
//
// Every run gets a run id — minted by the server, or supplied by the
// client in the Roload-Trace request header (that is how the client
// subscribes to a run's event stream before posting it). The id is
// echoed in the Roload-Trace response header rather than the body, so
// successful responses stay byte-identical to the CLI tools' output;
// error envelopes, which have no CLI twin, carry it inline. The
// server's spans parent under the client's attempt span when the
// request names one in Roload-Trace-Parent, which is what links the
// two sides' trace documents into one tree after a merge.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"roload/internal/schema"
	"roload/internal/telemetry"
)

// runInfoKey carries the per-request runInfo holder installed by the
// logged middleware.
type runInfoKey struct{}

// runInfo is the mutable per-request telemetry identity: the handler
// fills it in once the run id is known, and the middleware's log lines
// and panic reports read it back.
type runInfo struct {
	mu    sync.Mutex
	runID string
}

func (ri *runInfo) set(id string) {
	if ri == nil {
		return
	}
	ri.mu.Lock()
	ri.runID = id
	ri.mu.Unlock()
}

func (ri *runInfo) get() string {
	if ri == nil {
		return ""
	}
	ri.mu.Lock()
	defer ri.mu.Unlock()
	return ri.runID
}

func runInfoFrom(ctx context.Context) *runInfo {
	ri, _ := ctx.Value(runInfoKey{}).(*runInfo)
	return ri
}

// traceStore retains the span documents of recently completed runs for
// GET /v1/runs/{id}/trace, bounded FIFO like the broker's history
// retention.
type traceStore struct {
	mu    sync.Mutex
	cap   int
	docs  map[string]schema.TraceDoc
	order []string
}

func newTraceStore(cap int) *traceStore {
	if cap <= 0 {
		cap = 256
	}
	return &traceStore{cap: cap, docs: make(map[string]schema.TraceDoc)}
}

func (ts *traceStore) put(runID string, doc schema.TraceDoc) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if _, ok := ts.docs[runID]; !ok {
		ts.order = append(ts.order, runID)
		if len(ts.order) > ts.cap {
			delete(ts.docs, ts.order[0])
			ts.order = ts.order[1:]
		}
	}
	ts.docs[runID] = doc
}

func (ts *traceStore) get(runID string) (schema.TraceDoc, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	doc, ok := ts.docs[runID]
	return doc, ok
}

// storedResult is one completed run's rendered answer: the HTTP status
// and the exact response bytes, so GET /v1/runs/{id} replays what the
// synchronous caller saw, byte for byte.
type storedResult struct {
	status int
	body   []byte
}

// resultStore retains recently completed runs' rendered responses for
// GET /v1/runs/{id}, bounded FIFO like the trace registry.
type resultStore struct {
	mu    sync.Mutex
	cap   int
	res   map[string]storedResult
	order []string
}

func newResultStore(cap int) *resultStore {
	if cap <= 0 {
		cap = 256
	}
	return &resultStore{cap: cap, res: make(map[string]storedResult)}
}

func (rs *resultStore) put(runID string, status int, body []byte) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if _, ok := rs.res[runID]; !ok {
		rs.order = append(rs.order, runID)
		if len(rs.order) > rs.cap {
			delete(rs.res, rs.order[0])
			rs.order = rs.order[1:]
		}
	}
	rs.res[runID] = storedResult{status: status, body: body}
}

func (rs *resultStore) get(runID string) (storedResult, bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	r, ok := rs.res[runID]
	return r, ok
}

// keyCheckCounters tracks per-hardening-mode run and ROLoad-violation
// counts — the live key-check fault-rate gauge of /metrics.
type keyCheckCounters struct {
	runs, violations uint64
}

func (s *Server) noteKeyCheck(mode string, violated bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.keyChecks == nil {
		s.keyChecks = make(map[string]*keyCheckCounters)
	}
	c := s.keyChecks[mode]
	if c == nil {
		c = &keyCheckCounters{}
		s.keyChecks[mode] = c
	}
	c.runs++
	if violated {
		c.violations++
	}
}

// noteEngineRun counts one executed run request against its engine —
// the /metrics gauge of how much traffic each engine carries.
func (s *Server) noteEngineRun(engine string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.engineRuns == nil {
		s.engineRuns = make(map[string]uint64)
	}
	s.engineRuns[engine]++
}

// renderEnvelope marshals a roload-serve/v1 envelope exactly as
// writeEnvelope would stream it, so one rendering can be both written
// to the synchronous response and embedded verbatim in the terminal
// stream event.
func renderEnvelope(payload any) ([]byte, error) {
	env, err := schema.Wrap(schema.ServeV1, payload)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(env); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// writeRendered writes a pre-rendered envelope body.
func writeRendered(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body) //nolint:errcheck // client gone: nothing to report to
}

// handleEvents is GET /v1/runs/{id}/events: a Server-Sent Events
// stream of the run's live events. Subscribing before the run is
// posted is the intended pattern (the client mints the run id); late
// subscribers replay the broker's retained history. The stream ends
// with the terminal result event, on client disconnect, or when the
// server drains.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !telemetry.ValidRunID(id) {
		validationError(fmt.Sprintf("invalid run id %q", id)).write(w)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		internalError(fmt.Errorf("response writer cannot stream")).write(w)
		return
	}
	sub := s.broker.Subscribe(id)
	defer s.broker.Unsubscribe(id, sub)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	for {
		select {
		case ev, open := <-sub.C:
			if !open {
				return
			}
			if err := writeSSE(w, ev); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE writes one run event as an SSE frame: the broker sequence
// number as the event id (consumers spot dropped events by a skip),
// the kind as the event name, and the JSON record as the data line.
func writeSSE(w http.ResponseWriter, ev schema.RunEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data)
	return err
}

// handleTrace is GET /v1/runs/{id}/trace: the server-side
// roload-trace/v1 span document of a completed run. The body is the
// bare document (not a roload-serve/v1 envelope) so it can be merged
// with the client-side document or fed to the Perfetto exporter
// directly.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !telemetry.ValidRunID(id) {
		validationError(fmt.Sprintf("invalid run id %q", id)).write(w)
		return
	}
	doc, ok := s.traces.get(id)
	if !ok {
		notFoundError(fmt.Sprintf("no trace for run %q (traces are retained for the last %d runs)", id, s.traces.cap)).write(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	doc.WriteJSON(w) //nolint:errcheck // client gone: nothing to report to
}

// runLog emits one run-lifecycle log line. Every line carries the run
// id, so a request's accept/queue/start/finish (and shed/panic) lines
// grep together.
func (s *Server) runLog(ctx context.Context, msg, runID string, attrs ...any) {
	args := append([]any{"run_id", runID}, attrs...)
	s.cfg.Logger.InfoContext(ctx, msg, args...)
}
