// Package service is the multi-tenant execution service behind
// cmd/roload-serve: an HTTP JSON API that compiles, hardens, runs and
// attacks guest programs on the simulated ROLoad systems, and serves
// the evaluation experiments on demand.
//
// Every simulation runs under the request's context with a per-request
// deadline; a bounded worker pool caps concurrent simulations and a
// bounded queue sheds load (503) instead of building unbounded
// backlogs. Compiled images are shared across tenants through the
// eval.Runner image cache — concurrent identical requests compile
// once. Responses reuse the exact code paths of the CLI tools
// (core.CompileText, core.RunWith, attack.RenderMatrix,
// eval.Runner.Experiment), which is what makes service responses
// byte-identical to the equivalent roload-run / roload-cc /
// roload-attack invocations.
//
// Shutdown is graceful: draining flips /healthz to 503 and rejects new
// work while in-flight requests get a grace period to finish; when it
// expires the base context is cancelled and every remaining run stops
// at its next cancellation poll (kernel.Config.CancelEvery), answering
// 504 with a partial metrics snapshot. Cancellation never changes the
// simulated observables of runs that complete (DESIGN.md §3).
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"roload/internal/eval"
	"roload/internal/schema"
	"roload/internal/store"
	"roload/internal/telemetry"
)

// Config parameterizes a Server. The zero value is usable: every field
// has a default chosen for a small multi-tenant deployment.
type Config struct {
	// Workers caps concurrent simulations (0 = GOMAXPROCS).
	Workers int
	// Queue caps requests waiting for a worker beyond Workers; when the
	// queue is full new work is answered 503 busy (0 = 4*Workers).
	Queue int
	// MaxBodyBytes caps request bodies; larger bodies get 413
	// (0 = 1 MiB).
	MaxBodyBytes int64
	// MaxSteps is both the per-run default and the cap on the
	// request-supplied instruction budget (0 = 2e9, the bench budget).
	MaxSteps uint64
	// MaxMemBytes caps the request-supplied guest memory size
	// (0 = 256 MiB, the kernel default).
	MaxMemBytes uint64
	// DefaultTimeout bounds runs that do not ask for a deadline
	// (0 = 30s); MaxTimeout caps request-supplied deadlines (0 = 2m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Grace is how long draining waits for in-flight runs before
	// cancelling them (0 = 5s).
	Grace time.Duration
	// Chaos enables the fault-injection surface: the /v1/chaos arming
	// endpoint and RunRequest.FaultCount. Off by default — chaos is a
	// testing facility, not a tenant-facing feature.
	Chaos bool
	// DegradedWindow is how long /healthz reports "degraded" (503 with
	// Retry-After) after a recovered worker panic (0 = 15s).
	DegradedWindow time.Duration
	// Root is the repository root, read by the table1 experiment
	// (0 = ".").
	Root string
	// StoreDir enables the persistent artifact store: compiled images,
	// checkpoints, heal and batch reports survive restarts in this
	// directory, and the store-backed surface (POST /v1/images,
	// RunRequest.ImageDigest/CheckpointEvery/Resume) is routed. Empty =
	// no store.
	StoreDir string
	// MaxBatchRuns caps BatchRequest.Runs (0 = 64).
	MaxBatchRuns int
	// StoreGCInterval > 0 runs the store GC policy daemon on that
	// period: age/size-based unpinning (StoreMaxAge, StoreMaxBytes)
	// followed by a compaction. Requires StoreDir.
	StoreGCInterval time.Duration
	// StoreMaxAge unpins digests whose latest pin is older (0 = no age
	// policy); StoreMaxBytes unpins oldest-first until the compacted
	// log fits (0 = no size policy).
	StoreMaxAge   time.Duration
	StoreMaxBytes int64
	// PeerTimeout bounds one artifact push or fetch against a fleet
	// peer (0 = 2s).
	PeerTimeout time.Duration
	// Logger receives one structured record per request (nil = slog
	// default logger).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Queue <= 0 {
		c.Queue = 4 * c.Workers
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 2_000_000_000
	}
	if c.MaxMemBytes == 0 {
		c.MaxMemBytes = 256 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.Grace <= 0 {
		c.Grace = 5 * time.Second
	}
	if c.DegradedWindow <= 0 {
		c.DegradedWindow = 15 * time.Second
	}
	if c.Root == "" {
		c.Root = "."
	}
	if c.MaxBatchRuns <= 0 {
		c.MaxBatchRuns = 64
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 2 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server implements the roload-serve/v1 API. Create with NewServer and
// mount Handler on an http.Server.
type Server struct {
	cfg    Config
	runner *eval.Runner

	// baseCtx is cancelled when the drain grace period expires; every
	// run's context derives its cancellation from it as well as from
	// the request.
	baseCtx    context.Context
	cancelRuns context.CancelFunc

	// slots is the worker pool (one token per concurrent simulation);
	// queue bounds how many requests may wait for a token.
	slots chan struct{}
	queue chan struct{}

	draining  atomic.Bool
	drainOnce sync.Once
	inFlight  atomic.Int64
	queued    atomic.Int64

	reqSeq atomic.Uint64

	// lastPanic is the UnixNano stamp of the most recent recovered
	// handler panic; /healthz reports degraded until DegradedWindow
	// has passed.
	lastPanic atomic.Int64
	chaos     chaosState

	mu        sync.Mutex
	endpoints map[string]*endpointCounters
	// keyChecks tracks per-hardening-mode run/violation counts (guarded
	// by mu; see noteKeyCheck). engineRuns counts executed run requests
	// per execution engine (also guarded by mu).
	keyChecks  map[string]*keyCheckCounters
	engineRuns map[string]uint64

	experiments expCache

	// idem is the idempotency-key response store of the run endpoint;
	// shed counts low-priority requests answered 429 under load.
	idem *idemCache
	shed atomic.Uint64

	// start stamps process start for the /metrics uptime gauge.
	start time.Time

	// broker fans live run events out to GET /v1/runs/{id}/events
	// subscribers; traces retains completed runs' span documents for
	// GET /v1/runs/{id}/trace. Both close/bound with the server.
	broker *telemetry.Broker
	traces *traceStore

	// results retains the rendered response of recently completed runs
	// for GET /v1/runs/{id}; store is the persistent artifact store
	// (nil without Config.StoreDir).
	results *resultStore
	store   *store.Store

	// peerHTTP carries artifact pushes and fetches between fleet
	// peers; the repl* counters are the store-replication accounting
	// surfaced under /metrics.
	peerHTTP      *http.Client
	replPushes    atomic.Uint64
	replPushFail  atomic.Uint64
	replFetches   atomic.Uint64
	replFetchHits atomic.Uint64

	// gcWG tracks the store GC policy daemon so Close can wait for it.
	gcWG sync.WaitGroup

	// queueWaitUS and runDurationUS are the run endpoint's latency
	// distributions (microseconds); per-endpoint histograms live in
	// endpointCounters.
	queueWaitUS   telemetry.Histogram
	runDurationUS telemetry.Histogram
}

type endpointCounters struct {
	requests, ok, errors4x, errors5x, timeouts atomic.Uint64
	latencyUS                                  telemetry.Histogram
}

// NewServer builds a Server with cfg's defaults applied. With
// Config.StoreDir set it opens (recovering, if the last process died
// mid-append) the persistent artifact store; an unopenable store is
// the only construction failure.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	var st *store.Store
	if cfg.StoreDir != "" {
		var err error
		if st, err = store.Open(cfg.StoreDir); err != nil {
			return nil, fmt.Errorf("opening artifact store: %w", err)
		}
	}
	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		runner:     eval.NewRunner(cfg.Workers),
		baseCtx:    base,
		cancelRuns: cancel,
		slots:      make(chan struct{}, cfg.Workers),
		queue:      make(chan struct{}, cfg.Workers+cfg.Queue),
		endpoints:  make(map[string]*endpointCounters),
		idem:       newIdemCache(),
		start:      time.Now(),
		broker:     telemetry.NewBroker(0, 0),
		traces:     newTraceStore(0),
		results:    newResultStore(0),
		store:      st,
		peerHTTP:   &http.Client{Timeout: cfg.PeerTimeout},
	}
	s.experiments.entries = make(map[expKey]*expEntry)
	// When the drain grace expires (or Close fires) the broker shuts
	// down, ending every event stream — otherwise http.Server.Shutdown
	// would deadlock waiting on SSE handlers that are waiting on events.
	context.AfterFunc(base, s.broker.Close)
	if st != nil && cfg.StoreGCInterval > 0 {
		s.gcWG.Add(1)
		go s.gcLoop()
	}
	return s, nil
}

// gcLoop is the store GC policy daemon: every StoreGCInterval it
// applies the age/size unpinning policy and compacts the log. It stops
// when the base context is cancelled (drain grace expiry or Close).
func (s *Server) gcLoop() {
	defer s.gcWG.Done()
	t := time.NewTicker(s.cfg.StoreGCInterval)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			unpinned, removed, err := s.store.EnforcePolicy(s.cfg.StoreMaxAge, s.cfg.StoreMaxBytes)
			if err != nil {
				s.cfg.Logger.LogAttrs(s.baseCtx, slog.LevelWarn, "store gc",
					slog.String("err", err.Error()))
				continue
			}
			if unpinned > 0 || removed > 0 {
				s.cfg.Logger.LogAttrs(s.baseCtx, slog.LevelInfo, "store gc",
					slog.Int("unpinned", unpinned), slog.Int("removed", removed))
			}
		}
	}
}

// Handler returns the service's routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.logged("run", s.idem.wrap(s.handleRun)))
	mux.HandleFunc("POST /v1/runs", s.logged("runs", s.idem.wrap(s.handleRunCreate)))
	mux.HandleFunc("GET /v1/runs/{id}", s.logged("run-result", s.handleRunGet))
	mux.HandleFunc("POST /v1/batch", s.logged("batch", s.idem.wrap(s.handleBatch)))
	mux.HandleFunc("POST /v1/compile", s.logged("compile", s.handleCompile))
	mux.HandleFunc("POST /v1/attack", s.logged("attack", s.handleAttack))
	mux.HandleFunc("GET /v1/experiments", s.logged("experiments", s.handleExperimentList))
	mux.HandleFunc("POST /v1/experiments/{id}", s.logged("experiment", s.handleExperiment))
	mux.HandleFunc("GET /v1/runs/{id}/events", s.logged("events", s.handleEvents))
	mux.HandleFunc("GET /v1/runs/{id}/trace", s.logged("trace", s.handleTrace))
	mux.HandleFunc("GET /healthz", s.logged("healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.logged("metrics", s.handleMetrics))
	if s.cfg.Chaos {
		mux.HandleFunc("POST /v1/chaos", s.logged("chaos", s.handleChaosSet))
		mux.HandleFunc("GET /v1/chaos", s.logged("chaos", s.handleChaosGet))
	}
	if s.store != nil {
		mux.HandleFunc("POST /v1/images", s.logged("images", s.handleImagePut))
		mux.HandleFunc("GET /v1/images/{digest}", s.logged("image", s.handleImageGet))
		mux.HandleFunc("GET /v1/store/{kind}/{digest}", s.logged("store-get", s.handleStoreGet))
		mux.HandleFunc("PUT /v1/store/{kind}/{digest}", s.logged("store-put", s.handleStorePut))
	}
	return mux
}

// StartDrain begins graceful shutdown: new work is rejected
// immediately (503 draining, /healthz flips to 503) and after the
// grace period every in-flight run is cancelled, answering 504 with a
// partial snapshot. Safe to call more than once.
func (s *Server) StartDrain() {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		timer := time.AfterFunc(s.cfg.Grace, s.cancelRuns)
		// If every in-flight request finishes early the timer only
		// cancels an already-idle context; keep it simple and let it
		// fire. (Close stops it for tests that tear down immediately.)
		_ = timer
	})
}

// Close cancels every in-flight run immediately. Intended for the
// final phase of shutdown (after Drain + http.Server.Shutdown) and for
// tests.
func (s *Server) Close() {
	s.draining.Store(true)
	s.cancelRuns()
	s.gcWG.Wait()
	if s.store != nil {
		s.store.Close() //nolint:errcheck // shutdown path: nowhere to report
	}
}

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// acquire takes a worker slot, queueing up to the configured bound.
// It returns an apiError for shed load (busy, draining) or a context
// error when the caller's deadline expires while queued.
func (s *Server) acquire(ctx context.Context) *apiError {
	if s.draining.Load() {
		return errDraining()
	}
	select {
	case s.queue <- struct{}{}:
	default:
		return errBusy()
	}
	defer func() { <-s.queue }()
	s.queued.Add(1)
	defer s.queued.Add(-1)
	select {
	case s.slots <- struct{}{}:
	case <-ctx.Done():
		return timeoutError(ctx.Err(), nil)
	case <-s.baseCtx.Done():
		return errDraining()
	}
	if s.draining.Load() {
		<-s.slots
		return errDraining()
	}
	s.inFlight.Add(1)
	return nil
}

func (s *Server) release() {
	s.inFlight.Add(-1)
	<-s.slots
}

// runCtx derives the execution context for one request: the request's
// context bounded by the effective timeout, with cancellation also
// propagated from the server's base context so the drain deadline
// stops runs whose clients are still waiting.
func (s *Server) runCtx(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	stop := context.AfterFunc(s.baseCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// counters returns the per-endpoint counter block, creating it on
// first use.
func (s *Server) counters(name string) *endpointCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.endpoints[name]
	if c == nil {
		c = &endpointCounters{}
		s.endpoints[name] = c
	}
	return c
}

// statusWriter captures the response status for logging and counters,
// and whether anything was written yet (so the panic-recovery path
// knows it may still answer with a structured 500).
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so SSE streaming works
// through the logging middleware.
func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// logged wraps a handler with per-request structured logging, endpoint
// counters, and panic recovery: a panicking handler answers a
// structured 500 of kind "panic" (when the response has not started)
// and the service keeps serving; /healthz reports degraded for the
// configured window afterwards.
func (s *Server) logged(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		id := s.reqSeq.Add(1)
		start := time.Now()
		// The runInfo holder lets the handler attach its run id after
		// validation, so the final request line — and a panic report —
		// carries it even though the middleware ran first.
		ri := &runInfo{}
		r = r.WithContext(context.WithValue(r.Context(), runInfoKey{}, ri))
		func() {
			defer func() {
				rec := recover()
				if rec == nil {
					return
				}
				s.lastPanic.Store(time.Now().UnixNano())
				s.cfg.Logger.LogAttrs(r.Context(), slog.LevelError, "panic recovered",
					slog.Uint64("req_id", id),
					slog.String("endpoint", name),
					slog.String("run_id", ri.get()),
					slog.String("panic", fmt.Sprint(rec)),
					slog.String("stack", string(debug.Stack())),
				)
				if !sw.wrote {
					(&apiError{http.StatusInternalServerError, schema.ErrorResponse{
						Error: fmt.Sprintf("handler panic: %v", rec), Kind: "panic",
						RunID: ri.get(),
					}}).write(sw)
				}
			}()
			h(sw, r)
		}()
		elapsed := time.Since(start)
		c := s.counters(name)
		c.requests.Add(1)
		c.latencyUS.Observe(uint64(elapsed.Microseconds()))
		switch {
		case sw.status < 400:
			c.ok.Add(1)
		case sw.status < 500:
			c.errors4x.Add(1)
		default:
			c.errors5x.Add(1)
			if sw.status == http.StatusGatewayTimeout {
				c.timeouts.Add(1)
			}
		}
		s.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.Uint64("req_id", id),
			slog.String("endpoint", name),
			slog.String("run_id", ri.get()),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("remote", r.RemoteAddr),
			slog.Int("status", sw.status),
			slog.Duration("dur", elapsed),
		)
	}
}

// writeEnvelope writes a roload-serve/v1 envelope around payload.
func writeEnvelope(w http.ResponseWriter, status int, payload any) {
	env, err := schema.Wrap(schema.ServeV1, payload)
	if err != nil {
		// A payload the server cannot marshal is a programming error;
		// degrade to a plain 500 rather than recursing.
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(env) //nolint:errcheck // client gone: nothing to report to
}

// apiError pairs an HTTP status with the roload-serve/v1 error
// payload.
type apiError struct {
	status int
	body   schema.ErrorResponse
}

func (e *apiError) write(w http.ResponseWriter) {
	if e.body.RetryAfterSec > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.body.RetryAfterSec))
	}
	writeEnvelope(w, e.status, e.body)
}

func validationError(msg string) *apiError {
	return &apiError{http.StatusBadRequest, schema.ErrorResponse{Error: msg, Kind: "validation"}}
}

func compileError(err error) *apiError {
	return &apiError{http.StatusBadRequest, schema.ErrorResponse{Error: err.Error(), Kind: "compile"}}
}

func notFoundError(msg string) *apiError {
	return &apiError{http.StatusNotFound, schema.ErrorResponse{Error: msg, Kind: "not_found"}}
}

func errBusy() *apiError {
	return &apiError{http.StatusServiceUnavailable, schema.ErrorResponse{
		Error: "worker queue full, retry later", Kind: "busy"}}
}

func errDraining() *apiError {
	return &apiError{http.StatusServiceUnavailable, schema.ErrorResponse{
		Error: "server is draining", Kind: "draining"}}
}

// errOverload is the 429 answered to a low-priority request shed by
// admission control before it enters the queue.
func errOverload(retrySec int) *apiError {
	return &apiError{http.StatusTooManyRequests, schema.ErrorResponse{
		Error: "low-priority request shed under load, retry later",
		Kind:  "overload", RetryAfterSec: retrySec}}
}

// shedLowPriority implements priority-aware admission control: once
// the wait queue passes half its capacity, low-priority requests are
// shed with 429 + Retry-After so interactive traffic keeps the
// remaining headroom. Default-priority requests are never shed here —
// they keep the legacy 503-busy behaviour at a full queue.
func (s *Server) shedLowPriority() *apiError {
	threshold := s.cfg.Queue / 2
	if threshold < 1 {
		threshold = 1
	}
	if int(s.queued.Load()) >= threshold {
		s.shed.Add(1)
		return errOverload(2)
	}
	return nil
}

// timeoutError is a 504 carrying the partial snapshot of the cancelled
// run (nil when cancellation struck before any simulation started).
func timeoutError(err error, partial *schema.Snapshot) *apiError {
	return &apiError{http.StatusGatewayTimeout, schema.ErrorResponse{
		Error: err.Error(), Kind: "timeout", Metrics: partial}}
}

func internalError(err error) *apiError {
	return &apiError{http.StatusInternalServerError, schema.ErrorResponse{
		Error: err.Error(), Kind: "internal"}}
}

// decodeBody reads and decodes one JSON request body under the size
// cap, distinguishing oversized bodies (413) from malformed ones
// (400). Unknown fields are rejected so schema drift fails loudly.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, out any) *apiError {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(out); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &apiError{http.StatusRequestEntityTooLarge, schema.ErrorResponse{
				Error: err.Error(), Kind: "validation"}}
		}
		return validationError("decoding request body: " + err.Error())
	}
	return nil
}

// checkSchema validates the optional request-side schema tag.
func checkSchema(tag string) *apiError {
	if tag != "" && tag != schema.ServeV1 {
		return validationError("request schema " + tag + " is not " + schema.ServeV1)
	}
	return nil
}
