// The chaos surface of roload-serve: an arming endpoint for injectable
// latency, worker panics and synthetic errors, plus the seeded
// fault-injection run path behind RunRequest.FaultCount. Everything
// here is gated behind Config.Chaos — a production server without the
// flag routes none of it and rejects fault-injection requests — and is
// what the resilience tests (panic recovery, graceful drain under
// panic, degraded health) drive.
package service

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"time"

	"roload/internal/asm"
	"roload/internal/core"
	"roload/internal/fault"
	"roload/internal/kernel"
	"roload/internal/schema"
	"roload/internal/telemetry"
)

// chaosState is the armed chaos configuration. POST /v1/chaos replaces
// it wholesale; the run handler consumes panic/error tokens one per
// request.
type chaosState struct {
	mu        sync.Mutex
	latency   time.Duration
	panicNext int
	errorNext int
}

func (c *chaosState) arm(req schema.ChaosRequest) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.latency = time.Duration(req.LatencyMS) * time.Millisecond
	c.panicNext = req.PanicNext
	c.errorNext = req.ErrorNext
}

// takeRun consumes the chaos decision for one run request: the armed
// latency plus at most one panic or error token.
func (c *chaosState) takeRun() (delay time.Duration, doPanic, doError bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delay = c.latency
	if c.panicNext > 0 {
		c.panicNext--
		return delay, true, false
	}
	if c.errorNext > 0 {
		c.errorNext--
		return delay, false, true
	}
	return delay, false, false
}

func (c *chaosState) armed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.latency > 0 || c.panicNext > 0 || c.errorNext > 0
}

func (c *chaosState) snapshot() schema.ChaosResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	return schema.ChaosResponse{
		Armed:     c.latency > 0 || c.panicNext > 0 || c.errorNext > 0,
		LatencyMS: int64(c.latency / time.Millisecond),
		PanicNext: c.panicNext,
		ErrorNext: c.errorNext,
	}
}

func (s *Server) handleChaosSet(w http.ResponseWriter, r *http.Request) {
	var req schema.ChaosRequest
	if apiErr := s.decodeBody(w, r, &req); apiErr != nil {
		apiErr.write(w)
		return
	}
	if apiErr := checkSchema(req.Schema); apiErr != nil {
		apiErr.write(w)
		return
	}
	if req.LatencyMS < 0 || req.PanicNext < 0 || req.ErrorNext < 0 {
		validationError("chaos values must be non-negative").write(w)
		return
	}
	s.chaos.arm(req)
	writeEnvelope(w, http.StatusOK, s.chaos.snapshot())
}

func (s *Server) handleChaosGet(w http.ResponseWriter, r *http.Request) {
	writeEnvelope(w, http.StatusOK, s.chaos.snapshot())
}

// degraded reports whether the service should advertise itself as
// degraded: chaos is armed, or a worker panic was recovered within the
// configured window. The returned retry hint is seconds until the
// degradation is expected to clear (chaos arming has no natural expiry,
// so it advertises the full window).
func (s *Server) degraded() (bool, int) {
	window := s.cfg.DegradedWindow
	if s.cfg.Chaos && s.chaos.armed() {
		return true, int((window + time.Second - 1) / time.Second)
	}
	if last := s.lastPanic.Load(); last != 0 {
		left := window - time.Since(time.Unix(0, last))
		if left > 0 {
			secs := int((left + time.Second - 1) / time.Second)
			return true, secs
		}
	}
	return false, 0
}

// chaosError is the structured 500 answered for an armed error token.
func chaosError() *apiError {
	return &apiError{http.StatusInternalServerError, schema.ErrorResponse{
		Error: "chaos: injected error", Kind: "chaos"}}
}

// runFaulted executes one run with count seeded faults injected. The
// fault window is sized by a clean profiling run (same image, same
// system), so the generated plan — and therefore the whole faulted run
// — is a pure function of (image, system, seed, count) and reproduces
// byte-for-byte. The partial results of interrupted faulted runs carry
// the injected-fault audit entries accumulated so far.
func runFaulted(ctx context.Context, img *asm.Image, sysKind core.SystemKind, engine core.Engine, seed uint64, count, maxSteps, memBytes uint64) (kernel.RunResult, *schema.FaultTrace, error) {
	// The profiling run gets the event sink stripped: its retire counts
	// would interleave out of order with the faulted run's stream. Its
	// spans still record (under the request span) as a "execute" child.
	clean, _, err := core.RunWith(telemetry.WithSink(ctx, nil), img, sysKind, engine.Options(core.RunOptions{
		MaxSteps: maxSteps,
		MemBytes: memBytes,
	}))
	if err != nil {
		// A budget-bound guest still gets its faults: the window is the
		// budget itself, and the interrupted faulted run's 422 partial
		// carries the injected-fault audit entries. Anything else
		// (cancellation, spawn failure) surfaces as-is.
		var limit *kernel.StepLimitError
		if !errors.As(err, &limit) {
			return clean, nil, err
		}
	}
	plan, err := fault.Generate(seed, int(count), fault.TargetsFromImage(img, clean.Instret))
	if err != nil {
		return kernel.RunResult{}, nil, err
	}

	cfg := sysKind.Config()
	cfg.MaxSteps = maxSteps
	cfg.MemBytes = memBytes
	eo := engine.Options(core.RunOptions{})
	cfg.CPU.NoFastPath = eo.NoFastPath
	cfg.CPU.NoBlocks = eo.NoBlocks
	// The faulted run streams live: progress ticks piggyback on the
	// cancellation stride and audit records (injected faults, detected
	// violations) publish as they are logged — all from this goroutine,
	// so the stream stays in retire-count order.
	sink := telemetry.SinkFromContext(ctx)
	if sink != nil {
		cfg.Progress = func(instret, cycles uint64) {
			sink(schema.RunEvent{Kind: schema.EventProgress, Instret: instret, Cycles: cycles})
		}
	}
	_, span := telemetry.StartSpan(ctx, "execute")
	defer span.End()
	span.SetAttr("mode", "faulted")
	machine := kernel.NewSystem(cfg)
	if sink != nil {
		machine.Audit().SetSink(func(rec schema.AuditRecord) {
			sink(schema.RunEvent{Kind: schema.EventAudit, Instret: rec.Instret,
				Cycles: rec.Cycle, Audit: &rec})
		})
	}
	p, err := machine.Spawn(img)
	if err != nil {
		return kernel.RunResult{}, nil, err
	}
	eng, err := fault.Attach(machine, p, plan)
	if err != nil {
		return kernel.RunResult{}, nil, err
	}
	defer eng.Detach()
	res, err := machine.RunContext(ctx, p)
	span.SetAttrUint("instret", res.Instret)
	trace := eng.Trace()
	return res, &trace, err
}
