// Idempotency keys for the run endpoint: a client that retries a
// request (backoff, hedging, reconnect) sends the same Idempotency-Key
// header, and the server guarantees the body is executed at most once.
// The first request under a key is the leader and executes normally;
// concurrent duplicates park until the leader's response is stored and
// then replay it byte-for-byte (marked with an Idempotency-Replayed
// header). Only conclusive responses are stored: a 5xx, a shed 429/503
// or a worker panic aborts the entry so the client's retry re-executes
// instead of replaying the failure forever — that is what makes
// "retry until 2xx" safe against a chaos-injected error or panic.
package service

import (
	"bytes"
	"net/http"
	"sync"
	"sync/atomic"

	"roload/internal/schema"
)

// idemEntry is one key's lifecycle. done is closed exactly once, when
// the leader either stored a conclusive response (stored=true) or
// aborted (stored=false, and the entry has been removed from the map
// so the next attempt leads again).
type idemEntry struct {
	done   chan struct{}
	stored bool
	status int
	body   []byte
	ctype  string
}

// idemCache is the per-server idempotency store. Entries live for the
// server's lifetime: the service is a test/evaluation deployment and
// the bounded body cap keeps entries small; a production deployment
// would add TTL eviction here.
type idemCache struct {
	mu      sync.Mutex
	entries map[string]*idemEntry
	hits    atomic.Uint64
	misses  atomic.Uint64
}

func newIdemCache() *idemCache {
	return &idemCache{entries: make(map[string]*idemEntry)}
}

func (c *idemCache) metrics() schema.CacheMetrics {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return schema.CacheMetrics{
		Entries: uint64(n),
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
	}
}

// idemWriter records the response while streaming it to the client.
type idemWriter struct {
	http.ResponseWriter
	status int
	body   bytes.Buffer
}

func (w *idemWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *idemWriter) Write(b []byte) (int, error) {
	w.body.Write(b)
	return w.ResponseWriter.Write(b)
}

// retryableStatus reports whether a response status is one a resilient
// client retries — exactly the statuses the cache must not pin.
func retryableStatus(status int) bool {
	return status >= 500 || status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// wrap adds idempotency-key handling around a handler. Requests
// without the header pass straight through.
func (c *idemCache) wrap(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		key := r.Header.Get("Idempotency-Key")
		if key == "" {
			h(w, r)
			return
		}
		for {
			c.mu.Lock()
			e := c.entries[key]
			if e == nil {
				// Lead: execute and (maybe) store.
				e = &idemEntry{done: make(chan struct{})}
				c.entries[key] = e
				c.mu.Unlock()
				c.misses.Add(1)
				c.lead(e, key, h, w, r)
				return
			}
			c.mu.Unlock()

			// Follow: wait for the leader's verdict.
			select {
			case <-e.done:
			case <-r.Context().Done():
				timeoutError(r.Context().Err(), nil).write(w)
				return
			}
			if e.stored {
				c.hits.Add(1)
				w.Header().Set("Content-Type", e.ctype)
				w.Header().Set("Idempotency-Replayed", "true")
				w.WriteHeader(e.status)
				w.Write(e.body) //nolint:errcheck // client gone: nothing to report to
				return
			}
			// The leader aborted (5xx, shed, panic): this retry races to
			// lead the next execution.
		}
	}
}

// lead runs the handler as the key's leader. A conclusive response is
// published for replay; a retryable one — or a panic, which propagates
// to the recovery middleware after the abort — unpublishes the key.
func (c *idemCache) lead(e *idemEntry, key string, h http.HandlerFunc, w http.ResponseWriter, r *http.Request) {
	iw := &idemWriter{ResponseWriter: w, status: http.StatusOK}
	finished := false
	defer func() {
		c.mu.Lock()
		if finished && !retryableStatus(iw.status) {
			e.stored = true
			e.status = iw.status
			e.body = append([]byte(nil), iw.body.Bytes()...)
			e.ctype = iw.Header().Get("Content-Type")
		} else {
			delete(c.entries, key)
		}
		c.mu.Unlock()
		close(e.done)
	}()
	h(iw, r)
	finished = true
}
