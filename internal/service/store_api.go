// The generalized artifact-store surface and the fleet-replication
// client side. GET/PUT /v1/store/{kind}/{digest} expose every
// registered artifact kind by family name ("roload-image",
// "roload-checkpoint", ...); GET /v1/store/roload-image/{d} serves the
// exact bytes of GET /v1/images/{d}. The peer side is what makes the
// fleet's state durable: the gateway names the digest's replica set in
// a Roload-Store-Peers header, writes push synchronously to those
// peers, and a miss (a resume landing on a backend that never saw the
// checkpoint) fetches from them — so a checkpoint written before its
// owner was SIGKILLed resumes bit-identically on a survivor. Every
// byte crossing the peer boundary is re-verified against its digest
// before it may enter (or leave for) a store.
package service

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"

	"roload/internal/schema"
)

// storePeersHeader names the replica peers of the request's artifacts:
// a comma-separated list of base URLs the gateway computed from its
// hash ring. Peer-to-peer pushes and fetches never carry it — that is
// what keeps replication from cascading.
const storePeersHeader = "Roload-Store-Peers"

// parsePeers splits the Roload-Store-Peers header into base URLs.
func parsePeers(header string) []string {
	if header == "" {
		return nil
	}
	var peers []string
	for _, p := range strings.Split(header, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, strings.TrimRight(p, "/"))
		}
	}
	return peers
}

// pinIfPrecious pins the kinds whose loss would break a client-held
// handle: images (checkpoints pin their image's digest implicitly),
// checkpoints (a replica must survive GC at least as long as the
// original's pin), and run results (the resumable-batch contract).
// Reports and other content-addressed artifacts stay unpinned.
func (s *Server) pinIfPrecious(kind, digest string) {
	switch kind {
	case schema.ImageV1, schema.CheckpointV1, schema.RunResultV1:
		s.store.Pin(digest) //nolint:errcheck // best effort: an unpinned replica is still present
	}
}

// handleStoreGet is GET /v1/store/{kind}/{digest}: the stored artifact,
// bare. For kind "roload-image" the response is byte-identical to
// GET /v1/images/{digest} — the store surface is a superset, not a
// dialect.
func (s *Server) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	k, ok := schema.KindByName(r.PathValue("kind"))
	if !ok {
		notFoundError(fmt.Sprintf("unknown artifact kind %q", r.PathValue("kind"))).write(w)
		return
	}
	digest := r.PathValue("digest")
	raw, err := s.store.Get(k.ID, digest)
	if err != nil {
		notFoundError(fmt.Sprintf("%s %s is not in the store", schema.KindName(k.ID), digest)).write(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(raw) //nolint:errcheck // client gone: nothing to report to
}

// handleStorePut is PUT /v1/store/{kind}/{digest}: accept one artifact
// body, verify it derives the digest it claims (VerifyArtifact — a
// corrupt or misdirected replica is rejected at the boundary), and
// persist it. 201 on first store, 200 when the store already held the
// key. This is the endpoint replication and read-repair speak.
func (s *Server) handleStorePut(w http.ResponseWriter, r *http.Request) {
	k, ok := schema.KindByName(r.PathValue("kind"))
	if !ok {
		validationError(fmt.Sprintf("unknown artifact kind %q", r.PathValue("kind"))).write(w)
		return
	}
	digest := r.PathValue("digest")
	if digest == "" {
		validationError("artifact digest is required").write(w)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		(&apiError{http.StatusRequestEntityTooLarge, schema.ErrorResponse{
			Error: err.Error(), Kind: "validation"}}).write(w)
		return
	}
	if err := schema.VerifyArtifact(k.ID, digest, body); err != nil {
		validationError(err.Error()).write(w)
		return
	}
	added, err := s.store.Put(k.ID, digest, body)
	if err != nil {
		internalError(err).write(w)
		return
	}
	if added {
		s.pinIfPrecious(k.ID, digest)
	}
	status := http.StatusCreated
	if !added {
		status = http.StatusOK
	}
	writeEnvelope(w, status, schema.StorePutResponse{
		Kind: k.ID, Digest: digest, Added: added,
	})
}

// peerFetch resolves a local store miss against the digest's replica
// peers: try each in order, re-verify the bytes against the digest,
// land them in the local store (read-through repair), and return them.
// The error is the last peer's when every peer misses.
func (s *Server) peerFetch(ctx context.Context, peers []string, kind, digest string) ([]byte, error) {
	name := schema.KindName(kind)
	err := fmt.Errorf("no peers to fetch %s %s from", name, digest)
	for _, peer := range peers {
		s.replFetches.Add(1)
		var raw []byte
		if raw, err = s.peerGet(ctx, peer, name, digest); err != nil {
			continue
		}
		if err = schema.VerifyArtifact(kind, digest, raw); err != nil {
			s.cfg.Logger.LogAttrs(ctx, slog.LevelWarn, "peer artifact rejected",
				slog.String("peer", peer), slog.String("kind", name),
				slog.String("digest", digest), slog.String("err", err.Error()))
			continue
		}
		s.replFetchHits.Add(1)
		if added, perr := s.store.Put(kind, digest, raw); perr == nil && added {
			s.pinIfPrecious(kind, digest)
		}
		return raw, nil
	}
	return nil, fmt.Errorf("fetching %s %s from peers: %w", name, digest, err)
}

func (s *Server) peerGet(ctx context.Context, peer, kindName, digest string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		peer+"/v1/store/"+kindName+"/"+digest, nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.peerHTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer %s answered %d for %s/%s", peer, resp.StatusCode, kindName, digest)
	}
	if int64(len(raw)) > s.cfg.MaxBodyBytes {
		return nil, fmt.Errorf("peer %s artifact %s/%s exceeds the body cap", peer, kindName, digest)
	}
	return raw, nil
}

// replicateToPeers write-through-replicates one artifact to its replica
// peers, synchronously and in parallel: when it returns, every
// reachable peer holds the bytes — which is what lets a resume land on
// any replica after the writer is SIGKILLed. Failures are counted and
// logged, never fatal: the local write (the durability floor) already
// succeeded.
func (s *Server) replicateToPeers(peers []string, kind, digest string, body []byte) {
	if len(peers) == 0 || s.store == nil {
		return
	}
	name := schema.KindName(kind)
	var wg sync.WaitGroup
	for _, peer := range peers {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.PeerTimeout)
			defer cancel()
			if err := s.peerPut(ctx, peer, name, digest, body); err != nil {
				s.replPushFail.Add(1)
				s.cfg.Logger.LogAttrs(ctx, slog.LevelWarn, "artifact push failed",
					slog.String("peer", peer), slog.String("kind", name),
					slog.String("digest", digest), slog.String("err", err.Error()))
				return
			}
			s.replPushes.Add(1)
		}(peer)
	}
	wg.Wait()
}

func (s *Server) peerPut(ctx context.Context, peer, kindName, digest string, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		peer+"/v1/store/"+kindName+"/"+digest, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.peerHTTP.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("peer %s answered %d for %s/%s", peer, resp.StatusCode, kindName, digest)
	}
	return nil
}

// putReplicated is the one write path every fleet-visible artifact
// takes: persist locally, pin if precious, push to the replica peers.
func (s *Server) putReplicated(peers []string, kind, digest string, body []byte) error {
	added, err := s.store.Put(kind, digest, body)
	if err != nil {
		return err
	}
	if added {
		s.pinIfPrecious(kind, digest)
	}
	s.replicateToPeers(peers, kind, digest, body)
	return nil
}

// storeGetOrFetch is the one read path: the local store first, then the
// digest's replica peers.
func (s *Server) storeGetOrFetch(ctx context.Context, peers []string, kind, digest string) ([]byte, error) {
	raw, err := s.store.Get(kind, digest)
	if err == nil {
		return raw, nil
	}
	if len(peers) == 0 {
		return nil, err
	}
	return s.peerFetch(ctx, peers, kind, digest)
}

// replicationMetrics snapshots the peer-traffic counters (nil when no
// peer traffic has happened — the single-backend deployment's metrics
// stay unchanged).
func (s *Server) replicationMetrics() *schema.StoreReplication {
	m := schema.StoreReplication{
		Pushes:        s.replPushes.Load(),
		PushFailures:  s.replPushFail.Load(),
		PeerFetches:   s.replFetches.Load(),
		PeerFetchHits: s.replFetchHits.Load(),
	}
	if m.Pushes == 0 && m.PushFailures == 0 && m.PeerFetches == 0 {
		return nil
	}
	return &m
}
