// Experiment memo: one computation per (experiment id, scale) shared
// across tenants, with the same cancellation discipline as the eval
// Runner's measurement memo — a leader cancelled mid-computation is
// evicted so a later live request recomputes, and waiters bail out on
// their own context without disturbing the leader.
package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"roload/internal/eval"
	"roload/internal/schema"
)

type expKey struct {
	id    string
	scale eval.Scale
}

type expEntry struct {
	done chan struct{}
	data any
	err  error
}

type expCache struct {
	mu      sync.Mutex
	entries map[expKey]*expEntry

	hits, misses atomic.Uint64
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// get returns the memoized result for k, computing it via compute on
// first use. Concurrent callers for the same key share one
// computation.
func (c *expCache) get(ctx context.Context, k expKey, compute func(context.Context) (any, error)) (any, error) {
	for {
		c.mu.Lock()
		e, ok := c.entries[k]
		if !ok {
			e = &expEntry{done: make(chan struct{})}
			c.entries[k] = e
			c.mu.Unlock()
			c.misses.Add(1)
			e.data, e.err = compute(ctx)
			if isCtxErr(e.err) {
				c.mu.Lock()
				if c.entries[k] == e {
					delete(c.entries, k)
				}
				c.mu.Unlock()
			}
			close(e.done)
			return e.data, e.err
		}
		c.mu.Unlock()
		c.hits.Add(1)
		select {
		case <-e.done:
			if isCtxErr(e.err) {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				continue
			}
			return e.data, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func (c *expCache) metrics() schema.CacheMetrics {
	c.mu.Lock()
	entries := len(c.entries)
	c.mu.Unlock()
	return schema.CacheMetrics{
		Entries: uint64(entries),
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
	}
}
