package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"roload/internal/attack"
	"roload/internal/core"
	"roload/internal/eval"
	"roload/internal/schema"
)

const helloProg = `
func main() int {
	print_int(6 * 7);
	return 0;
}
`

// spinProg never terminates: the 504 and drain tests rely on it.
const spinProg = `
func main() int {
	var x int = 1;
	while (x > 0) { x = x + 1; }
	return 0;
}
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// post sends one JSON request and decodes the response envelope.
func post(t *testing.T, url string, body any) (int, schema.Envelope, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var env schema.Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("status %d, undecodable body %q: %v", resp.StatusCode, data, err)
	}
	return resp.StatusCode, env, data
}

func get(t *testing.T, url string) (int, schema.Envelope) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env schema.Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("status %d: %v", resp.StatusCode, err)
	}
	return resp.StatusCode, env
}

func openError(t *testing.T, env schema.Envelope) schema.ErrorResponse {
	t.Helper()
	var e schema.ErrorResponse
	if err := env.Open(schema.ServeV1, &e); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestServeRunSuccess(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	status, env, _ := post(t, ts.URL+"/v1/run", schema.RunRequest{
		Source: helloProg, System: "full", Harden: "icall",
	})
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if env.Schema != schema.ServeV1 {
		t.Errorf("envelope schema = %q", env.Schema)
	}
	var run schema.RunResponse
	if err := env.Open(schema.ServeV1, &run); err != nil {
		t.Fatal(err)
	}
	if !run.Exited || run.ExitCode != 0 || run.ExitStatus != 0 {
		t.Errorf("run = %+v", run)
	}
	if strings.TrimSpace(run.Stdout) != "42" {
		t.Errorf("stdout = %q", run.Stdout)
	}
	if run.Metrics == nil || run.Metrics.Schema != schema.MetricsV1 || run.Metrics.Instret == 0 {
		t.Errorf("metrics = %+v", run.Metrics)
	}
	if run.Metrics.System != core.SysFull.String() {
		t.Errorf("metrics system = %q", run.Metrics.System)
	}
}

func TestServeRunValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 4096, MaxSteps: 1000})
	cases := []struct {
		name   string
		body   any
		status int
		kind   string
		errSub string
	}{
		{"missing source", schema.RunRequest{}, 400, "validation", "source is required"},
		{"unknown system", schema.RunRequest{Source: helloProg, System: "mainframe"}, 400, "validation", "known: baseline, proc, full"},
		{"unknown harden", schema.RunRequest{Source: helloProg, Harden: "aslr"}, 400, "validation", "known: none, vcall, vtint, icall, cfi, retguard, full"},
		{"asm conflict", schema.RunRequest{Source: "_start:\n", Asm: true, Harden: "icall"}, 400, "validation", "cannot be combined"},
		{"steps over cap", schema.RunRequest{Source: helloProg, MaxSteps: 2000}, 400, "validation", "exceeds the server cap"},
		{"mem over cap", schema.RunRequest{Source: helloProg, MemBytes: 1 << 40}, 400, "validation", "exceeds the server cap"},
		{"wrong schema tag", schema.RunRequest{Schema: "bogus/v1", Source: helloProg}, 400, "validation", "is not " + schema.ServeV1},
		{"compile error", schema.RunRequest{Source: "not minic"}, 400, "compile", ""},
		{"unknown field", map[string]any{"source": helloProg, "bogus": 1}, 400, "validation", "unknown field"},
		{"oversized body", schema.RunRequest{Source: strings.Repeat("x", 8192)}, 413, "validation", ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			status, env, _ := post(t, ts.URL+"/v1/run", c.body)
			if status != c.status {
				t.Fatalf("status = %d, want %d", status, c.status)
			}
			e := openError(t, env)
			if e.Kind != c.kind {
				t.Errorf("kind = %q, want %q", e.Kind, c.kind)
			}
			if c.errSub != "" && !strings.Contains(e.Error, c.errSub) {
				t.Errorf("error %q missing %q", e.Error, c.errSub)
			}
		})
	}
}

// TestServeRunEngine covers the run request's engine selector: every
// known engine executes with bit-identical simulated observables, an
// unknown engine is rejected with 422 naming the known values, and
// /metrics counts executed runs per engine.
func TestServeRunEngine(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	runWith := func(engine string) schema.RunResponse {
		t.Helper()
		status, env, _ := post(t, ts.URL+"/v1/run", schema.RunRequest{
			Source: helloProg, System: "full", Harden: "icall", Engine: engine,
		})
		if status != http.StatusOK {
			t.Fatalf("engine %q: status = %d", engine, status)
		}
		var run schema.RunResponse
		if err := env.Open(schema.ServeV1, &run); err != nil {
			t.Fatal(err)
		}
		return run
	}

	base := runWith("") // default: blocks
	for _, engine := range []string{"blocks", "fast", "interp"} {
		run := runWith(engine)
		if run.Stdout != base.Stdout || run.ExitCode != base.ExitCode {
			t.Errorf("engine %q diverges: %+v vs default %+v", engine, run, base)
		}
		if run.Metrics.Cycles != base.Metrics.Cycles || run.Metrics.Instret != base.Metrics.Instret {
			t.Errorf("engine %q cycles/instret %d/%d != default %d/%d", engine,
				run.Metrics.Cycles, run.Metrics.Instret, base.Metrics.Cycles, base.Metrics.Instret)
		}
	}

	// An unknown engine is a semantic error in an otherwise well-formed
	// request: 422, naming the known values.
	status, env, _ := post(t, ts.URL+"/v1/run", schema.RunRequest{
		Source: helloProg, Engine: "turbo",
	})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("unknown engine: status = %d, want 422", status)
	}
	e := openError(t, env)
	if e.Kind != "validation" || !strings.Contains(e.Error, "known: blocks, fast, interp") {
		t.Errorf("unknown engine error = %+v, want validation naming known engines", e)
	}

	// The per-engine run counters: default + explicit blocks = 2, one
	// each for fast and interp; the rejected request counts nowhere.
	mstatus, menv := get(t, ts.URL+"/metrics")
	if mstatus != http.StatusOK {
		t.Fatalf("/metrics status = %d", mstatus)
	}
	var m schema.ServeMetrics
	if err := menv.Open(schema.ServeV1, &m); err != nil {
		t.Fatal(err)
	}
	want := map[string]uint64{"blocks": 2, "fast": 1, "interp": 1}
	for eng, n := range want {
		if m.EngineRuns[eng] != n {
			t.Errorf("engine_runs[%s] = %d, want %d (all: %v)", eng, m.EngineRuns[eng], n, m.EngineRuns)
		}
	}
}

// TestServeRunDeadline: a 100ms request deadline on a non-terminating
// program answers 504 promptly with a partial metrics snapshot.
func TestServeRunDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	start := time.Now()
	status, env, _ := post(t, ts.URL+"/v1/run", schema.RunRequest{
		Source: spinProg, TimeoutMS: 100,
	})
	elapsed := time.Since(start)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", status)
	}
	// ~100ms deadline + a few-ms cancellation stride + response flush.
	if elapsed > 500*time.Millisecond {
		t.Errorf("504 took %v, want ~200ms", elapsed)
	}
	e := openError(t, env)
	if e.Kind != "timeout" {
		t.Errorf("kind = %q", e.Kind)
	}
	if e.Metrics == nil || e.Metrics.Instret == 0 {
		t.Errorf("partial snapshot missing progress: %+v", e.Metrics)
	}
	if e.Metrics != nil && e.Metrics.Exited {
		t.Error("cancelled run claims a clean exit")
	}

	// The 504 shows up in the endpoint counters.
	status, menv := get(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics status = %d", status)
	}
	var m schema.ServeMetrics
	if err := menv.Open(schema.ServeV1, &m); err != nil {
		t.Fatal(err)
	}
	if m.Endpoints["run"].Timeouts == 0 {
		t.Errorf("run endpoint timeouts = %+v", m.Endpoints["run"])
	}
}

// TestServeRunConcurrentSharesImage: 32 concurrent identical runs all
// succeed with identical bodies and compile exactly once through the
// shared image cache.
func TestServeRunConcurrentSharesImage(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	const n = 32
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, _, raw := post(t, ts.URL+"/v1/run", schema.RunRequest{
				Source: helloProg, Harden: "vcall",
			})
			if status != http.StatusOK {
				t.Errorf("status = %d", status)
				return
			}
			bodies[i] = raw
		}()
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("response %d differs from response 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}

	_, menv := get(t, ts.URL+"/metrics")
	var m schema.ServeMetrics
	if err := menv.Open(schema.ServeV1, &m); err != nil {
		t.Fatal(err)
	}
	ic := m.ImageCache
	if ic.Entries != 1 || ic.Misses != 1 || ic.Hits != n-1 {
		t.Errorf("image cache = %+v, want entries=1 misses=1 hits=%d", ic, n-1)
	}
}

func TestServeCompileMatchesCore(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	status, env, _ := post(t, ts.URL+"/v1/compile", schema.CompileRequest{
		Source: helloProg, Harden: "icall",
	})
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	var resp schema.CompileResponse
	if err := env.Open(schema.ServeV1, &resp); err != nil {
		t.Fatal(err)
	}
	want, err := core.CompileText(helloProg, core.CompileOptions{Harden: core.HardenICall})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text != want {
		t.Error("compile response diverged from core.CompileText")
	}

	status, env, _ = post(t, ts.URL+"/v1/compile", schema.CompileRequest{Source: "not minic"})
	if status != http.StatusBadRequest {
		t.Fatalf("bad source status = %d", status)
	}
	if e := openError(t, env); e.Kind != "compile" {
		t.Errorf("kind = %q", e.Kind)
	}
}

func TestServeAttack(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	name := attack.AllScenarios()[0].Name

	status, env, _ := post(t, ts.URL+"/v1/attack", schema.AttackRequest{
		Scenario: name, Harden: "none", Verbose: true,
	})
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	var resp schema.AttackResponse
	if err := env.Open(schema.ServeV1, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Scenario != name || resp.Results[0].Scheme != "none" {
		t.Errorf("results = %+v", resp.Results)
	}
	if !strings.Contains(resp.Text, name) {
		t.Errorf("text missing scenario header: %q", resp.Text)
	}
	if resp.BadDefense {
		t.Error("unhardened victim flagged as a bad defense")
	}

	status, env, _ = post(t, ts.URL+"/v1/attack", schema.AttackRequest{Scenario: "nope"})
	if status != http.StatusNotFound {
		t.Fatalf("unknown scenario status = %d", status)
	}
	e := openError(t, env)
	if e.Kind != "not_found" || !strings.Contains(e.Error, "known:") {
		t.Errorf("error = %+v", e)
	}
}

func TestServeExperiments(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	status, env := get(t, ts.URL+"/v1/experiments")
	if status != http.StatusOK {
		t.Fatalf("list status = %d", status)
	}
	var list schema.ExperimentsResponse
	if err := env.Open(schema.ServeV1, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.IDs) != len(eval.ExperimentIDs) || len(list.Scales) != 2 {
		t.Errorf("list = %+v", list)
	}

	// table2 is instantaneous; run it twice so the second call must be
	// an experiment-cache hit.
	for i := 0; i < 2; i++ {
		status, env, _ := post(t, ts.URL+"/v1/experiments/table2", schema.ExperimentRequest{})
		if status != http.StatusOK {
			t.Fatalf("call %d status = %d", i, status)
		}
		var resp schema.ExperimentResponse
		if err := env.Open(schema.ServeV1, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.ID != "table2" || resp.Scale != "test" || resp.Data == nil {
			t.Errorf("call %d: %+v", i, resp)
		}
	}
	_, menv := get(t, ts.URL+"/metrics")
	var m schema.ServeMetrics
	if err := menv.Open(schema.ServeV1, &m); err != nil {
		t.Fatal(err)
	}
	if m.Experiments.Entries != 1 || m.Experiments.Misses != 1 || m.Experiments.Hits != 1 {
		t.Errorf("experiment cache = %+v", m.Experiments)
	}

	status, env, _ = post(t, ts.URL+"/v1/experiments/fig99", schema.ExperimentRequest{})
	if status != http.StatusNotFound {
		t.Fatalf("unknown experiment status = %d", status)
	}
	e := openError(t, env)
	if e.Kind != "not_found" || !strings.Contains(e.Error, "known:") {
		t.Errorf("error = %+v", e)
	}

	status, env, _ = post(t, ts.URL+"/v1/experiments/table2", schema.ExperimentRequest{Scale: "huge"})
	if status != http.StatusBadRequest {
		t.Fatalf("bad scale status = %d", status)
	}
	if e := openError(t, env); !strings.Contains(e.Error, "known: ref, test") {
		t.Errorf("error = %+v", e)
	}
}

// TestServeDrain: draining flips /healthz to 503 and rejects new work
// with kind "draining"; Close cancels whatever is left.
func TestServeDrain(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, Grace: 50 * time.Millisecond})

	status, env := get(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz = %d", status)
	}
	var hr schema.HealthResponse
	if err := env.Open(schema.ServeV1, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || hr.Workers != 1 {
		t.Errorf("health = %+v", hr)
	}

	// Park one long run, then drain: the run must come back 504 once
	// the grace period cancels it.
	done := make(chan int, 1)
	go func() {
		status, _, _ := post(t, ts.URL+"/v1/run", schema.RunRequest{Source: spinProg, TimeoutMS: 60_000})
		done <- status
	}()
	// Wait for the run to occupy the worker.
	for i := 0; ; i++ {
		_, henv := get(t, ts.URL+"/healthz")
		var h schema.HealthResponse
		if err := henv.Open(schema.ServeV1, &h); err != nil {
			t.Fatal(err)
		}
		if h.InFlight == 1 {
			break
		}
		if i > 200 {
			t.Fatal("run never became in-flight")
		}
		time.Sleep(5 * time.Millisecond)
	}

	srv.StartDrain()
	if !srv.Draining() {
		t.Fatal("Draining() false after StartDrain")
	}
	status, env = get(t, ts.URL+"/healthz")
	if status != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d", status)
	}
	if err := env.Open(schema.ServeV1, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "draining" {
		t.Errorf("health status = %q", hr.Status)
	}

	status, env, _ = post(t, ts.URL+"/v1/run", schema.RunRequest{Source: helloProg})
	if status != http.StatusServiceUnavailable {
		t.Errorf("new work during drain: status = %d", status)
	}
	if e := openError(t, env); e.Kind != "draining" {
		t.Errorf("kind = %q", e.Kind)
	}

	select {
	case status := <-done:
		if status != http.StatusGatewayTimeout {
			t.Errorf("drained run status = %d, want 504", status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight run not cancelled by the drain grace period")
	}
}

// TestServeBusySheds: the queue bounds how many requests may wait for
// a worker (Workers+Queue tokens). With one worker and queue 1, one
// running plus two waiting spins exhaust the tokens, and the next
// request must shed 503 busy instead of queueing.
func TestServeBusySheds(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, Queue: 1})

	results := make(chan int, 3)
	for i := 0; i < 3; i++ {
		go func() {
			status, _, _ := post(t, ts.URL+"/v1/run", schema.RunRequest{Source: spinProg, TimeoutMS: 30_000})
			results <- status
		}()
	}
	// Wait until all three spins are placed — one running, two holding
	// the only waiter tokens — before probing, so the probe cannot race
	// a spin into the queue and block there itself.
	for i := 0; ; i++ {
		_, henv := get(t, ts.URL+"/healthz")
		var h schema.HealthResponse
		if err := henv.Open(schema.ServeV1, &h); err != nil {
			t.Fatal(err)
		}
		if h.InFlight == 1 && h.Queued == 2 {
			break
		}
		if i > 1000 {
			t.Fatalf("queue never filled: %+v", h)
		}
		time.Sleep(5 * time.Millisecond)
	}
	status, env, _ := post(t, ts.URL+"/v1/run", schema.RunRequest{Source: helloProg})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("probe status = %d, want 503", status)
	}
	if e := openError(t, env); e.Kind != "busy" {
		t.Fatalf("kind = %q, want busy", e.Kind)
	}
	// Close cancels the running spin (504) and fails the waiters
	// (503 draining) so the test does not sit out the 30s timeouts.
	srv.Close()
	for i := 0; i < 3; i++ {
		if status := <-results; status != http.StatusGatewayTimeout && status != http.StatusServiceUnavailable {
			t.Errorf("parked request %d finished with %d", i, status)
		}
	}
}

// TestServeNoGoroutineLeaks: a burst of work — including cancelled
// runs — settles back to the baseline goroutine count.
func TestServeNoGoroutineLeaks(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})
	before := runtime.NumGoroutine()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if i%2 == 0 {
				post(t, ts.URL+"/v1/run", schema.RunRequest{Source: helloProg})
			} else {
				post(t, ts.URL+"/v1/run", schema.RunRequest{Source: spinProg, TimeoutMS: 50})
			}
		}()
	}
	wg.Wait()

	// Clients' keep-alive and server conn goroutines settle lazily.
	http.DefaultClient.CloseIdleConnections()
	var after int
	for i := 0; i < 100; i++ {
		after = runtime.NumGoroutine()
		if after <= before {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after > before+3 {
		t.Errorf("goroutines grew from %d to %d", before, after)
	}
	if n := srv.inFlight.Load(); n != 0 {
		t.Errorf("inFlight = %d after all requests finished", n)
	}
}

// TestServeRunMatchesDirectRun: the service response carries exactly
// the observables a direct core.RunWith of the same image reports —
// the byte-identity contract at the package level (tools_test.go
// checks it against the real CLI binaries).
func TestServeRunMatchesDirectRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	status, env, _ := post(t, ts.URL+"/v1/run", schema.RunRequest{
		Source: helloProg, Harden: "icall", System: "full",
	})
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	var run schema.RunResponse
	if err := env.Open(schema.ServeV1, &run); err != nil {
		t.Fatal(err)
	}

	img, _, err := core.Build(helloProg, core.HardenICall)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := core.RunWith(context.Background(), img, core.SysFull, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if run.Stdout != string(res.Stdout) || run.ExitCode != res.Code ||
		run.Metrics.Cycles != res.Cycles || run.Metrics.Instret != res.Instret {
		t.Errorf("service run diverged from direct run:\nservice: %+v\ndirect:  %+v", run, res)
	}

	wantSnap := res.Snapshot(core.SysFull.String())
	wantSnap.Schema = schema.MetricsV1
	gotJSON, _ := json.Marshal(run.Metrics)
	wantJSON, _ := json.Marshal(&wantSnap)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("metrics snapshot diverged:\nservice: %s\ndirect:  %s", gotJSON, wantJSON)
	}
}

// TestServeMethodNotAllowed: the router rejects wrong methods.
func TestServeMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run = %d", resp.StatusCode)
	}
}
