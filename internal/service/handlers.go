// The roload-serve/v1 endpoint handlers. Each handler validates,
// takes a worker slot, executes under the request's deadline-bounded
// context, and answers with an Envelope-wrapped payload. The execution
// paths are exactly the CLI tools' (core.CompileText, core.RunWith,
// attack.RenderMatrix, eval.Runner.Experiment) so responses are
// byte-identical to the equivalent CLI invocations.
package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"roload/internal/asm"
	"roload/internal/attack"
	"roload/internal/cli"
	"roload/internal/core"
	"roload/internal/eval"
	"roload/internal/kernel"
	"roload/internal/redundant"
	"roload/internal/schema"
	"roload/internal/telemetry"
)

// maxReplicas caps RunRequest.Redundant: each replica is a full
// simulated machine, so the cap bounds one request's cost multiplier.
const maxReplicas = 7

// snapshot packages a run result as a schema-tagged metrics document
// (the same document roload-run -metrics writes).
func snapshot(res kernel.RunResult, sys core.SystemKind) *schema.Snapshot {
	snap := res.Snapshot(sys.String())
	snap.Schema = schema.MetricsV1
	return &snap
}

// runError maps an execution error to the API's error vocabulary:
// cancellation → 504 with the partial snapshot, step-budget exhaustion
// → 422 with the partial snapshot, anything else → 500.
func runError(err error, res kernel.RunResult, sys core.SystemKind) *apiError {
	var canceled *kernel.CanceledError
	if errors.As(err, &canceled) {
		return timeoutError(err, snapshot(res, sys))
	}
	var limit *kernel.StepLimitError
	if errors.As(err, &limit) {
		return &apiError{http.StatusUnprocessableEntity, schema.ErrorResponse{
			Error: err.Error(), Kind: "steplimit", Metrics: snapshot(res, sys)}}
	}
	return internalError(err)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	// Run identity comes first — before decoding, so even a malformed
	// request terminates the event stream a client may already be
	// subscribed to. A valid Roload-Trace header names the run (that is
	// how a streaming client subscribes before posting); otherwise the
	// server mints the id. The id travels back in the Roload-Trace
	// response header, never in a success body, so responses stay
	// byte-identical to the CLI tools' output.
	runID := r.Header.Get("Roload-Trace")
	if !telemetry.ValidRunID(runID) {
		runID = telemetry.NewRunID()
	}
	runInfoFrom(r.Context()).set(runID)
	trace := telemetry.NewTrace(runID, "s")
	reqSpan := trace.Start("request", r.Header.Get("Roload-Trace-Parent"))
	reqSpan.SetAttr("endpoint", "run")
	sink := s.broker.Sink(runID)

	// finishRun seals the run's telemetry: the request span ends, the
	// span document lands in the trace registry, and the terminal event
	// — carrying the exact response bytes — closes the event stream.
	finishRun := func(status int, body []byte) {
		reqSpan.SetAttrUint("status", uint64(status))
		reqSpan.End()
		s.traces.put(runID, trace.Doc())
		s.broker.Finish(runID, schema.RunEvent{
			Kind: schema.EventResult, Status: status, Result: string(body)})
		s.runLog(r.Context(), "run finished", runID, "status", status)
	}
	// fail answers an error envelope (stamped with the run id — error
	// bodies have no CLI twin, so inline identity is free) and seals
	// the run.
	fail := func(apiErr *apiError) {
		apiErr.body.RunID = runID
		body, err := renderEnvelope(apiErr.body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			finishRun(http.StatusInternalServerError, nil)
			return
		}
		if apiErr.body.RetryAfterSec > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(apiErr.body.RetryAfterSec))
		}
		w.Header().Set("Roload-Trace", runID)
		writeRendered(w, apiErr.status, body)
		finishRun(apiErr.status, body)
	}

	var req schema.RunRequest
	if apiErr := s.decodeBody(w, r, &req); apiErr != nil {
		fail(apiErr)
		return
	}
	apiErr := checkSchema(req.Schema)
	if apiErr == nil && req.Source == "" {
		apiErr = validationError("source is required")
	}
	sys := core.SysFull
	if apiErr == nil && req.System != "" {
		var err error
		if sys, err = cli.ParseSystem(req.System); err != nil {
			apiErr = validationError(err.Error())
		}
	}
	h := core.HardenNone
	if apiErr == nil && req.Harden != "" {
		var err error
		if h, err = cli.ParseHardening(req.Harden); err != nil {
			apiErr = validationError(err.Error())
		}
	}
	if apiErr == nil && req.Asm && (h != core.HardenNone || req.Optimize) {
		apiErr = validationError("asm input cannot be combined with harden or optimize")
	}
	engine := core.EngineBlocks
	if apiErr == nil && req.Engine != "" {
		var err error
		if engine, err = cli.ParseEngine(req.Engine); err != nil {
			// Engine is pure host-side tuning, so a bad value is a
			// semantic error (422), not a malformed request.
			apiErr = &apiError{http.StatusUnprocessableEntity,
				schema.ErrorResponse{Error: err.Error(), Kind: "validation"}}
		}
	}
	maxSteps := s.cfg.MaxSteps
	if apiErr == nil && req.MaxSteps != 0 {
		if req.MaxSteps > s.cfg.MaxSteps {
			apiErr = validationError(fmt.Sprintf("max_steps %d exceeds the server cap %d", req.MaxSteps, s.cfg.MaxSteps))
		} else {
			maxSteps = req.MaxSteps
		}
	}
	if apiErr == nil && req.MemBytes > s.cfg.MaxMemBytes {
		apiErr = validationError(fmt.Sprintf("mem_bytes %d exceeds the server cap %d", req.MemBytes, s.cfg.MaxMemBytes))
	}
	if apiErr == nil && req.FaultCount < 0 {
		apiErr = validationError("fault_count must be non-negative")
	}
	if apiErr == nil && req.FaultCount > 0 && !s.cfg.Chaos {
		apiErr = validationError("fault injection requires a server started with -chaos")
	}
	if apiErr == nil && req.Priority != "" && req.Priority != "normal" && req.Priority != "low" {
		apiErr = validationError(fmt.Sprintf("unknown priority %q (known: normal, low)", req.Priority))
	}
	if apiErr == nil && req.Redundant != 0 {
		switch {
		case req.Redundant < 3 || req.Redundant%2 == 0:
			apiErr = validationError("redundant must be odd and >= 3")
		case req.Redundant > maxReplicas:
			apiErr = validationError(fmt.Sprintf("redundant %d exceeds the server cap %d", req.Redundant, maxReplicas))
		case req.FaultReplica < 0 || req.FaultReplica >= req.Redundant:
			apiErr = validationError(fmt.Sprintf("fault_replica %d out of range [0,%d)", req.FaultReplica, req.Redundant))
		}
	}
	if apiErr == nil && req.Redundant == 0 && (req.Heal || req.SyncEvery != 0 || req.FaultReplica != 0) {
		apiErr = validationError("heal, sync_every and fault_replica require redundant")
	}
	if apiErr != nil {
		fail(apiErr)
		return
	}
	s.runLog(r.Context(), "run accepted", runID,
		"system", sys.String(), "harden", h.String(), "redundant", req.Redundant)

	if req.Priority == "low" {
		if apiErr := s.shedLowPriority(); apiErr != nil {
			s.runLog(r.Context(), "run shed", runID, "kind", apiErr.body.Kind)
			fail(apiErr)
			return
		}
	}
	s.runLog(r.Context(), "run queued", runID, "queued", s.queued.Load())
	qSpan := reqSpan.Child("queue-wait")
	qStart := time.Now()
	acqErr := s.acquire(r.Context())
	qSpan.End()
	s.queueWaitUS.Observe(uint64(time.Since(qStart).Microseconds()))
	if acqErr != nil {
		s.runLog(r.Context(), "run shed", runID, "kind", acqErr.body.Kind)
		fail(acqErr)
		return
	}
	defer s.release()
	s.runLog(r.Context(), "run started", runID)

	if s.cfg.Chaos {
		delay, doPanic, doError := s.chaos.takeRun()
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
			}
		}
		if doPanic {
			panic("chaos: injected worker panic")
		}
		if doError {
			fail(chaosError())
			return
		}
	}

	cSpan := reqSpan.Child("compile")
	var img *asm.Image
	var err error
	switch {
	case req.Asm:
		img, err = asm.Assemble(req.Source, asm.DefaultOptions())
	case req.Optimize:
		// The optimizer changes the unit in place, so optimized builds
		// bypass the shared cache (which is keyed on source alone).
		var text string
		text, err = core.CompileText(req.Source, core.CompileOptions{Harden: h, Optimize: true})
		if err == nil {
			img, err = asm.Assemble(text, asm.DefaultOptions())
		}
	default:
		// The shared image cache: concurrent identical requests (same
		// source, same scheme) compile once and share the image.
		img, err = s.runner.Image(req.Source, h)
	}
	cSpan.End()
	if err != nil {
		fail(compileError(err))
		return
	}

	ctx, cancel := s.runCtx(r, req.TimeoutMS)
	defer cancel()
	// The execution context carries the trace (execute/checkpoint/vote/
	// heal spans parent under the request span) and the event sink. The
	// fault-plan profiling run gets the sink stripped: its retire counts
	// would interleave out of order with the real run's stream.
	ctx = telemetry.WithTrace(ctx, trace)
	ctx = telemetry.WithSpan(ctx, reqSpan)
	execCtx := telemetry.WithSink(ctx, sink)
	var res kernel.RunResult
	var ftrace *schema.FaultTrace
	var heal *schema.HealReport
	runStart := time.Now()
	s.noteEngineRun(cli.EngineName(engine))
	switch {
	case req.Redundant > 0:
		var plan *schema.FaultPlan
		if req.FaultCount > 0 {
			p, perr := redundant.Plan(ctx, img, sys, req.FaultSeed, req.FaultCount, maxSteps, req.MemBytes)
			if perr != nil {
				fail(runError(perr, res, sys))
				return
			}
			plan = &p
		}
		engines := make([]core.Engine, req.Redundant)
		for i := range engines {
			engines[i] = engine
		}
		var out redundant.Result
		out, err = redundant.Run(execCtx, img, sys, redundant.Options{
			Engines:      engines,
			Replicas:     req.Redundant,
			SyncEvery:    req.SyncEvery,
			Heal:         req.Heal,
			MaxSteps:     maxSteps,
			MemBytes:     req.MemBytes,
			Fault:        plan,
			FaultReplica: req.FaultReplica,
		})
		res, ftrace, heal = out.Run, out.Trace, &out.Report
	case req.FaultCount > 0:
		res, ftrace, err = runFaulted(execCtx, img, sys, engine, req.FaultSeed, uint64(req.FaultCount), maxSteps, req.MemBytes)
	default:
		res, _, err = core.RunWith(execCtx, img, sys, engine.Options(core.RunOptions{
			MaxSteps: maxSteps,
			MemBytes: req.MemBytes,
		}))
	}
	s.runDurationUS.Observe(uint64(time.Since(runStart).Microseconds()))
	if err != nil {
		var split *redundant.DivergedError
		if errors.As(err, &split) {
			fail(&apiError{http.StatusConflict, schema.ErrorResponse{
				Error: err.Error(), Kind: "diverged", Metrics: snapshot(res, sys)}})
			return
		}
		fail(runError(err, res, sys))
		return
	}
	s.noteKeyCheck(h.String(), res.ROLoadViolation)

	resp := schema.RunResponse{
		Stdout:          string(res.Stdout),
		Exited:          res.Exited,
		ExitCode:        res.Code,
		ROLoadViolation: res.ROLoadViolation,
		Metrics:         snapshot(res, sys),
	}
	if res.Exited {
		resp.ExitStatus = res.Code & 0xff
	} else {
		resp.Signal = res.Signal.String()
		resp.ExitStatus = 128 + int(res.Signal)
	}
	for _, rec := range res.Audit {
		resp.AuditText = append(resp.AuditText, rec.String())
	}
	resp.FaultTrace = ftrace
	resp.Heal = heal
	body, rerr := renderEnvelope(resp)
	if rerr != nil {
		http.Error(w, rerr.Error(), http.StatusInternalServerError)
		finishRun(http.StatusInternalServerError, nil)
		return
	}
	w.Header().Set("Roload-Trace", runID)
	writeRendered(w, http.StatusOK, body)
	finishRun(http.StatusOK, body)
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req schema.CompileRequest
	if apiErr := s.decodeBody(w, r, &req); apiErr != nil {
		apiErr.write(w)
		return
	}
	apiErr := checkSchema(req.Schema)
	if apiErr == nil && req.Source == "" {
		apiErr = validationError("source is required")
	}
	h := core.HardenNone
	if apiErr == nil && req.Harden != "" {
		var err error
		if h, err = cli.ParseHardening(req.Harden); err != nil {
			apiErr = validationError(err.Error())
		}
	}
	if apiErr != nil {
		apiErr.write(w)
		return
	}
	if apiErr := s.acquire(r.Context()); apiErr != nil {
		apiErr.write(w)
		return
	}
	defer s.release()
	text, err := core.CompileText(req.Source, core.CompileOptions{
		Harden:   h,
		Optimize: req.Optimize,
		Dump:     req.Dump,
		Compress: req.Compress,
	})
	if err != nil {
		compileError(err).write(w)
		return
	}
	writeEnvelope(w, http.StatusOK, schema.CompileResponse{Text: text})
}

func (s *Server) handleAttack(w http.ResponseWriter, r *http.Request) {
	var req schema.AttackRequest
	if apiErr := s.decodeBody(w, r, &req); apiErr != nil {
		apiErr.write(w)
		return
	}
	if apiErr := checkSchema(req.Schema); apiErr != nil {
		apiErr.write(w)
		return
	}
	scenarios := attack.AllScenarios()
	if req.Scenario != "" {
		var filtered []*attack.Scenario
		names := make([]string, 0, len(scenarios))
		for _, sc := range scenarios {
			names = append(names, sc.Name)
			if sc.Name == req.Scenario {
				filtered = append(filtered, sc)
			}
		}
		if len(filtered) == 0 {
			notFoundError(fmt.Sprintf("unknown scenario %q (known: %s)",
				req.Scenario, strings.Join(names, ", "))).write(w)
			return
		}
		scenarios = filtered
	}
	schemes := attack.MatrixSchemes
	if req.Harden != "" {
		h, err := cli.ParseHardening(req.Harden)
		if err != nil {
			validationError(err.Error()).write(w)
			return
		}
		schemes = []core.Hardening{h}
	}

	if apiErr := s.acquire(r.Context()); apiErr != nil {
		apiErr.write(w)
		return
	}
	defer s.release()
	ctx, cancel := s.runCtx(r, req.TimeoutMS)
	defer cancel()

	var buf bytes.Buffer
	results, bad, err := attack.RenderMatrix(ctx, &buf, scenarios, schemes, req.Verbose)
	if err != nil {
		var canceled *kernel.CanceledError
		if errors.As(err, &canceled) {
			timeoutError(err, nil).write(w)
			return
		}
		internalError(err).write(w)
		return
	}
	writeEnvelope(w, http.StatusOK, schema.AttackResponse{
		Text:       buf.String(),
		BadDefense: bad,
		Results:    attack.Entries(results, true),
	})
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	writeEnvelope(w, http.StatusOK, schema.ExperimentsResponse{
		IDs:    eval.ExperimentIDs,
		Scales: []string{"ref", "test"},
	})
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	known := false
	for _, want := range eval.ExperimentIDs {
		if id == want {
			known = true
			break
		}
	}
	if !known {
		notFoundError(fmt.Sprintf("unknown experiment %q (known: %s)",
			id, strings.Join(eval.ExperimentIDs, ", "))).write(w)
		return
	}
	var req schema.ExperimentRequest
	if apiErr := s.decodeBody(w, r, &req); apiErr != nil {
		apiErr.write(w)
		return
	}
	if apiErr := checkSchema(req.Schema); apiErr != nil {
		apiErr.write(w)
		return
	}
	// The service favours bounded request latency: test scale unless
	// ref is asked for explicitly.
	scale := eval.ScaleTest
	if req.Scale != "" {
		var err error
		if scale, err = eval.ParseScale(req.Scale); err != nil {
			validationError(err.Error()).write(w)
			return
		}
	}

	if apiErr := s.acquire(r.Context()); apiErr != nil {
		apiErr.write(w)
		return
	}
	defer s.release()
	ctx, cancel := s.runCtx(r, req.TimeoutMS)
	defer cancel()

	data, err := s.experiments.get(ctx, expKey{id, scale}, func(ctx2 context.Context) (any, error) {
		return s.runner.Experiment(ctx2, id, scale, s.cfg.Root)
	})
	if err != nil {
		var canceled *kernel.CanceledError
		if errors.As(err, &canceled) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			timeoutError(err, nil).write(w)
			return
		}
		internalError(err).write(w)
		return
	}
	writeEnvelope(w, http.StatusOK, schema.ExperimentResponse{
		ID:    id,
		Scale: cli.ScaleName(scale),
		Data:  data,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := schema.HealthResponse{
		Status:   "ok",
		Workers:  s.cfg.Workers,
		InFlight: int(s.inFlight.Load()),
		Queued:   int(s.queued.Load()),
	}
	status := http.StatusOK
	if bad, retry := s.degraded(); bad {
		resp.Status = "degraded"
		resp.RetryAfterSec = retry
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		status = http.StatusServiceUnavailable
	}
	if s.draining.Load() {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeEnvelope(w, status, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	stats := s.runner.Stats()
	resp := schema.ServeMetrics{
		Workers:   s.cfg.Workers,
		InFlight:  int(s.inFlight.Load()),
		Queued:    int(s.queued.Load()),
		Draining:  s.draining.Load(),
		Endpoints: make(map[string]schema.EndpointMetrics),
		ImageCache: schema.CacheMetrics{
			Entries: uint64(stats.Images),
			Hits:    stats.ImageHits,
			Misses:  stats.ImageMisses,
		},
		Experiments:   s.experiments.metrics(),
		Idempotency:   s.idem.metrics(),
		Shed:          s.shed.Load(),
		UptimeSec:     time.Since(s.start).Seconds(),
		QueueDepth:    int(s.queued.Load()),
		QueueCap:      s.cfg.Workers + s.cfg.Queue,
		QueueWaitUS:   s.queueWaitUS.Snapshot(),
		RunDurationUS: s.runDurationUS.Snapshot(),
		Streams:       s.broker.Metrics(),
	}
	s.mu.Lock()
	for name, c := range s.endpoints {
		resp.Endpoints[name] = schema.EndpointMetrics{
			Requests: c.requests.Load(),
			OK:       c.ok.Load(),
			Errors4x: c.errors4x.Load(),
			Errors5x: c.errors5x.Load(),
			Timeouts: c.timeouts.Load(),
		}
		if c.latencyUS.Count() > 0 {
			if resp.EndpointLatencyUS == nil {
				resp.EndpointLatencyUS = make(map[string]schema.Histogram)
			}
			resp.EndpointLatencyUS[name] = c.latencyUS.Snapshot()
		}
	}
	for eng, n := range s.engineRuns {
		if resp.EngineRuns == nil {
			resp.EngineRuns = make(map[string]uint64)
		}
		resp.EngineRuns[eng] = n
	}
	for mode, c := range s.keyChecks {
		if resp.KeyChecks == nil {
			resp.KeyChecks = make(map[string]schema.KeyCheckStats)
		}
		st := schema.KeyCheckStats{Runs: c.runs, Violations: c.violations}
		if c.runs > 0 {
			st.Rate = float64(c.violations) / float64(c.runs)
		}
		resp.KeyChecks[mode] = st
	}
	s.mu.Unlock()
	writeEnvelope(w, http.StatusOK, resp)
}
