// The roload-serve/v1 endpoint handlers. Each handler validates,
// takes a worker slot, executes under the request's deadline-bounded
// context, and answers with an Envelope-wrapped payload. The execution
// paths are exactly the CLI tools' (core.CompileText, core.RunWith,
// attack.RenderMatrix, eval.Runner.Experiment) so responses are
// byte-identical to the equivalent CLI invocations.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"roload/internal/asm"
	"roload/internal/attack"
	"roload/internal/cli"
	"roload/internal/core"
	"roload/internal/eval"
	"roload/internal/kernel"
	"roload/internal/redundant"
	"roload/internal/schema"
	"roload/internal/store"
	"roload/internal/telemetry"
)

// maxReplicas caps RunRequest.Redundant: each replica is a full
// simulated machine, so the cap bounds one request's cost multiplier.
const maxReplicas = 7

// snapshot packages a run result as a schema-tagged metrics document
// (the same document roload-run -metrics writes).
func snapshot(res kernel.RunResult, sys core.SystemKind) *schema.Snapshot {
	snap := res.Snapshot(sys.String())
	snap.Schema = schema.MetricsV1
	return &snap
}

// runError maps an execution error to the API's error vocabulary:
// cancellation → 504 with the partial snapshot, step-budget exhaustion
// → 422 with the partial snapshot, anything else → 500.
func runError(err error, res kernel.RunResult, sys core.SystemKind) *apiError {
	var canceled *kernel.CanceledError
	if errors.As(err, &canceled) {
		return timeoutError(err, snapshot(res, sys))
	}
	var limit *kernel.StepLimitError
	if errors.As(err, &limit) {
		return &apiError{http.StatusUnprocessableEntity, schema.ErrorResponse{
			Error: err.Error(), Kind: "steplimit", Metrics: snapshot(res, sys)}}
	}
	return internalError(err)
}

// runSpec is one fully validated run: the request, the parsed knobs,
// and (for store-backed resumes) the checkpoint digest. parseRunSpec
// produces it, buildImage compiles (or fetches) its image, and
// executeSpec runs it — POST /v1/run, POST /v1/runs and every run of a
// POST /v1/batch all flow through the same three stages, which is what
// makes their response bodies byte-identical.
type runSpec struct {
	req      schema.RunRequest
	sys      core.SystemKind
	h        core.Hardening
	engine   core.Engine
	maxSteps uint64
	// resume is the stored checkpoint digest of a "store://<digest>"
	// resume ("" = fresh run).
	resume string
	// peers are the replica peers the gateway named for this request
	// (Roload-Store-Peers): where artifact writes push to, and where a
	// local store miss fetches from.
	peers []string
}

// parseRunSpec validates one run request. The checks run in a fixed
// order and the first failure wins, so error messages are stable
// across the single-run and batch surfaces.
func (s *Server) parseRunSpec(req schema.RunRequest) (runSpec, *apiError) {
	spec := runSpec{req: req}
	apiErr := checkSchema(req.Schema)
	if apiErr == nil && req.ImageDigest != "" {
		switch {
		case s.store == nil:
			apiErr = validationError("image_digest requires a server started with -store")
		case req.Source != "" || req.Asm || req.Harden != "" || req.Optimize:
			apiErr = validationError("image_digest cannot be combined with source, asm, harden or optimize")
		}
	}
	if apiErr == nil && req.Source == "" && req.ImageDigest == "" {
		apiErr = validationError("source is required")
	}
	spec.sys = core.SysFull
	if apiErr == nil && req.System != "" {
		var err error
		if spec.sys, err = cli.ParseSystem(req.System); err != nil {
			apiErr = validationError(err.Error())
		}
	}
	spec.h = core.HardenNone
	if apiErr == nil && req.Harden != "" {
		var err error
		if spec.h, err = cli.ParseHardening(req.Harden); err != nil {
			apiErr = validationError(err.Error())
		}
	}
	if apiErr == nil && req.Asm && (spec.h != core.HardenNone || req.Optimize) {
		apiErr = validationError("asm input cannot be combined with harden or optimize")
	}
	spec.engine = core.EngineBlocks
	if apiErr == nil && req.Engine != "" {
		var err error
		if spec.engine, err = cli.ParseEngine(req.Engine); err != nil {
			// Engine is pure host-side tuning, so a bad value is a
			// semantic error (422), not a malformed request.
			apiErr = &apiError{http.StatusUnprocessableEntity,
				schema.ErrorResponse{Error: err.Error(), Kind: "validation"}}
		}
	}
	spec.maxSteps = s.cfg.MaxSteps
	if apiErr == nil && req.MaxSteps != 0 {
		if req.MaxSteps > s.cfg.MaxSteps {
			apiErr = validationError(fmt.Sprintf("max_steps %d exceeds the server cap %d", req.MaxSteps, s.cfg.MaxSteps))
		} else {
			spec.maxSteps = req.MaxSteps
		}
	}
	if apiErr == nil && req.MemBytes > s.cfg.MaxMemBytes {
		apiErr = validationError(fmt.Sprintf("mem_bytes %d exceeds the server cap %d", req.MemBytes, s.cfg.MaxMemBytes))
	}
	if apiErr == nil && req.FaultCount < 0 {
		apiErr = validationError("fault_count must be non-negative")
	}
	if apiErr == nil && req.FaultCount > 0 && !s.cfg.Chaos {
		apiErr = validationError("fault injection requires a server started with -chaos")
	}
	if apiErr == nil && req.Priority != "" && req.Priority != "normal" && req.Priority != "low" {
		apiErr = validationError(fmt.Sprintf("unknown priority %q (known: normal, low)", req.Priority))
	}
	if apiErr == nil && req.Redundant != 0 {
		switch {
		case req.Redundant < 3 || req.Redundant%2 == 0:
			apiErr = validationError("redundant must be odd and >= 3")
		case req.Redundant > maxReplicas:
			apiErr = validationError(fmt.Sprintf("redundant %d exceeds the server cap %d", req.Redundant, maxReplicas))
		case req.FaultReplica < 0 || req.FaultReplica >= req.Redundant:
			apiErr = validationError(fmt.Sprintf("fault_replica %d out of range [0,%d)", req.FaultReplica, req.Redundant))
		}
	}
	if apiErr == nil && req.Redundant == 0 && (req.Heal || req.SyncEvery != 0 || req.FaultReplica != 0) {
		apiErr = validationError("heal, sync_every and fault_replica require redundant")
	}
	if apiErr == nil && req.CheckpointEvery != 0 {
		switch {
		case s.store == nil:
			apiErr = validationError("checkpoint_every requires a server started with -store")
		case req.Redundant != 0:
			apiErr = validationError("checkpoint_every cannot be combined with redundant")
		}
	}
	if apiErr == nil && req.Resume != "" {
		digest, ok := strings.CutPrefix(req.Resume, "store://")
		switch {
		case !ok || digest == "":
			apiErr = validationError(`resume must name a stored checkpoint as "store://<digest>"`)
		case s.store == nil:
			apiErr = validationError("resume requires a server started with -store")
		case req.Redundant != 0 || req.FaultCount != 0:
			apiErr = validationError("resume cannot be combined with redundant or fault_count")
		default:
			spec.resume = digest
		}
	}
	if apiErr != nil {
		return runSpec{}, apiErr
	}
	return spec, nil
}

// buildImage produces the spec's executable image: assembled from
// text, compiled through the optimizer, fetched from the artifact
// store, or taken from the shared image cache. compiled reports
// whether a source compilation actually ran — the count behind the
// batch report's compile-once contract.
func (s *Server) buildImage(spec runSpec) (img *asm.Image, compiled bool, apiErr *apiError) {
	req := spec.req
	switch {
	case req.ImageDigest != "":
		raw, err := s.storeGetOrFetch(s.baseCtx, spec.peers, schema.ImageV1, req.ImageDigest)
		if err != nil {
			return nil, false, notFoundError(fmt.Sprintf("image %s is not in the store", req.ImageDigest))
		}
		var doc schema.ImageDoc
		if err := json.Unmarshal(raw, &doc); err != nil {
			return nil, false, internalError(fmt.Errorf("stored image %s: %w", req.ImageDigest, err))
		}
		if img, err = core.DecodeImage(doc); err != nil {
			return nil, false, internalError(err)
		}
		return img, false, nil
	case req.Asm:
		var err error
		if img, err = asm.Assemble(req.Source, asm.DefaultOptions()); err != nil {
			return nil, false, compileError(err)
		}
		return img, true, nil
	case req.Optimize:
		// The optimizer changes the unit in place, so optimized builds
		// bypass the shared cache (which is keyed on source alone).
		text, err := core.CompileText(req.Source, core.CompileOptions{Harden: spec.h, Optimize: true})
		if err == nil {
			img, err = asm.Assemble(text, asm.DefaultOptions())
		}
		if err != nil {
			return nil, false, compileError(err)
		}
		return img, true, nil
	default:
		// The shared image cache: concurrent identical requests (same
		// source, same scheme) compile once and share the image.
		img, hit, err := s.runner.CachedImage(req.Source, spec.h)
		if err != nil {
			return nil, false, compileError(err)
		}
		return img, !hit, nil
	}
}

// storeRunOptions wires a run's checkpoint/resume knobs to the
// artifact store: a resume fetches its stored checkpoint, and the
// checkpoint callback persists each snapshot under its state digest
// (pinning the newest so GC always keeps the most recent resume point
// of the run), records the digest, and streams a checkpoint event.
func (s *Server) storeRunOptions(ctx context.Context, opts core.RunOptions, spec runSpec, cks *[]string) (core.RunOptions, *apiError) {
	if spec.resume != "" {
		// The local store first, then the gateway-named replica peers: a
		// resume that lands on a backend that never saw the checkpoint
		// (its owner was killed) pulls the bytes — digest-verified — from
		// a surviving replica.
		raw, err := s.storeGetOrFetch(ctx, spec.peers, schema.CheckpointV1, spec.resume)
		if err != nil {
			return opts, notFoundError(fmt.Sprintf("checkpoint %s is not in the store", spec.resume))
		}
		var ck schema.Checkpoint
		if err := json.Unmarshal(raw, &ck); err != nil {
			return opts, internalError(fmt.Errorf("stored checkpoint %s: %w", spec.resume, err))
		}
		opts.Resume = &ck
	}
	if spec.req.CheckpointEvery > 0 {
		opts.CheckpointEvery = spec.req.CheckpointEvery
		sink := telemetry.SinkFromContext(ctx)
		var prev string
		opts.Checkpoint = func(ck schema.Checkpoint) error {
			raw, err := json.Marshal(ck)
			if err != nil {
				return err
			}
			digest := ck.StateDigest()
			if _, err := s.store.Put(schema.CheckpointV1, digest, raw); err != nil {
				return err
			}
			if err := s.store.Pin(digest); err != nil {
				return err
			}
			if prev != "" {
				s.store.Unpin(prev) //nolint:errcheck // best effort: over-pinning is safe
			}
			prev = digest
			*cks = append(*cks, digest)
			// Write-through replication: the checkpoint is only durable
			// against the loss of this backend once the replica peers
			// hold it too.
			s.replicateToPeers(spec.peers, schema.CheckpointV1, digest, raw)
			if sink != nil {
				sink(schema.RunEvent{Kind: schema.EventCheckpoint, Instret: ck.Instret, Digest: digest})
			}
			return nil
		}
	}
	return opts, nil
}

// executeSpec runs one validated spec on img under ctx — which carries
// the trace, the parent span and the event sink — and returns either
// the success payload or the apiError the equivalent individual
// request would answer. It is the single execution path behind POST
// /v1/run, POST /v1/runs and every run of a batch.
func (s *Server) executeSpec(ctx context.Context, img *asm.Image, spec runSpec) (schema.RunResponse, *apiError) {
	req := spec.req
	sys, engine, maxSteps := spec.sys, spec.engine, spec.maxSteps
	var res kernel.RunResult
	var ftrace *schema.FaultTrace
	var heal *schema.HealReport
	var cks []string
	var err error
	runStart := time.Now()
	s.noteEngineRun(cli.EngineName(engine))
	switch {
	case req.Redundant > 0:
		var plan *schema.FaultPlan
		if req.FaultCount > 0 {
			// The fault-plan profiling run gets the sink stripped: its
			// retire counts would interleave out of order with the real
			// run's stream.
			p, perr := redundant.Plan(telemetry.WithSink(ctx, nil), img, sys, req.FaultSeed, req.FaultCount, maxSteps, req.MemBytes)
			if perr != nil {
				return schema.RunResponse{}, runError(perr, res, sys)
			}
			plan = &p
		}
		engines := make([]core.Engine, req.Redundant)
		for i := range engines {
			engines[i] = engine
		}
		var out redundant.Result
		out, err = redundant.Run(ctx, img, sys, redundant.Options{
			Engines:      engines,
			Replicas:     req.Redundant,
			SyncEvery:    req.SyncEvery,
			Heal:         req.Heal,
			MaxSteps:     maxSteps,
			MemBytes:     req.MemBytes,
			Fault:        plan,
			FaultReplica: req.FaultReplica,
		})
		res, ftrace, heal = out.Run, out.Trace, &out.Report
	case req.FaultCount > 0:
		res, ftrace, err = runFaulted(ctx, img, sys, engine, req.FaultSeed, uint64(req.FaultCount), maxSteps, req.MemBytes)
	default:
		opts := core.RunOptions{
			MaxSteps: maxSteps,
			MemBytes: req.MemBytes,
		}
		if req.CheckpointEvery > 0 || spec.resume != "" {
			var apiErr *apiError
			if opts, apiErr = s.storeRunOptions(ctx, opts, spec, &cks); apiErr != nil {
				return schema.RunResponse{}, apiErr
			}
		}
		res, _, err = core.RunWith(ctx, img, sys, engine.Options(opts))
	}
	s.runDurationUS.Observe(uint64(time.Since(runStart).Microseconds()))
	if err != nil {
		var split *redundant.DivergedError
		if errors.As(err, &split) {
			return schema.RunResponse{}, &apiError{http.StatusConflict, schema.ErrorResponse{
				Error: err.Error(), Kind: "diverged", Metrics: snapshot(res, sys)}}
		}
		var mismatch *kernel.CheckpointMismatchError
		if errors.As(err, &mismatch) {
			// The stored checkpoint pins a different image (or schema):
			// a conflict between the named artifacts, not a bad request.
			return schema.RunResponse{}, &apiError{http.StatusConflict, schema.ErrorResponse{
				Error: err.Error(), Kind: "mismatch"}}
		}
		apiErr := runError(err, res, sys)
		// A step-limit partial of a checkpointing run still names the
		// digests stored so far, so the client can resume from the last.
		apiErr.body.Checkpoints = cks
		return schema.RunResponse{}, apiErr
	}
	s.noteKeyCheck(spec.h.String(), res.ROLoadViolation)

	resp := schema.RunResponse{
		Stdout:          string(res.Stdout),
		Exited:          res.Exited,
		ExitCode:        res.Code,
		ROLoadViolation: res.ROLoadViolation,
		Metrics:         snapshot(res, sys),
	}
	if res.Exited {
		resp.ExitStatus = res.Code & 0xff
	} else {
		resp.Signal = res.Signal.String()
		resp.ExitStatus = 128 + int(res.Signal)
	}
	for _, rec := range res.Audit {
		resp.AuditText = append(resp.AuditText, rec.String())
	}
	resp.FaultTrace = ftrace
	resp.Heal = heal
	resp.Checkpoints = cks
	if heal != nil && s.store != nil {
		// Persist the heal report (best effort: the run already
		// succeeded) so it survives a restart, and replicate it so it
		// survives this backend.
		if raw, merr := json.Marshal(heal); merr == nil {
			digest := store.Digest(raw)
			if _, perr := s.store.Put(schema.HealV1, digest, raw); perr == nil {
				s.replicateToPeers(spec.peers, schema.HealV1, digest, raw)
			}
		}
	}
	return resp, nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.serveRun(w, r, "run", false)
}

// handleRunCreate is POST /v1/runs, the resource-oriented twin of POST
// /v1/run: the same request body and the same response envelope, but
// answered 201 with a Location naming the stored result, which GET
// /v1/runs/{id} then replays.
func (s *Server) handleRunCreate(w http.ResponseWriter, r *http.Request) {
	s.serveRun(w, r, "runs", true)
}

// serveRun is the shared single-run request cycle: mint identity,
// validate, queue, compile, execute, render, seal telemetry. The
// compatibility endpoint (/v1/run) and the resource endpoint
// (/v1/runs) differ only in the success status and the Location
// header — the bodies are byte-identical.
func (s *Server) serveRun(w http.ResponseWriter, r *http.Request, endpoint string, created bool) {
	// Run identity comes first — before decoding, so even a malformed
	// request terminates the event stream a client may already be
	// subscribed to. A valid Roload-Trace header names the run (that is
	// how a streaming client subscribes before posting); otherwise the
	// server mints the id. The id travels back in the Roload-Trace
	// response header, never in a success body, so responses stay
	// byte-identical to the CLI tools' output.
	runID := r.Header.Get("Roload-Trace")
	if !telemetry.ValidRunID(runID) {
		runID = telemetry.NewRunID()
	}
	runInfoFrom(r.Context()).set(runID)
	trace := telemetry.NewTrace(runID, "s")
	reqSpan := trace.Start("request", r.Header.Get("Roload-Trace-Parent"))
	reqSpan.SetAttr("endpoint", endpoint)
	sink := s.broker.Sink(runID)

	// finishRun seals the run's telemetry: the request span ends, the
	// span document lands in the trace registry, the rendered answer
	// lands in the result registry (for GET /v1/runs/{id}), and the
	// terminal event — carrying the exact response bytes — closes the
	// event stream.
	finishRun := func(status int, body []byte) {
		reqSpan.SetAttrUint("status", uint64(status))
		reqSpan.End()
		s.traces.put(runID, trace.Doc())
		if body != nil {
			s.results.put(runID, status, body)
		}
		s.broker.Finish(runID, schema.RunEvent{
			Kind: schema.EventResult, Status: status, Result: string(body)})
		s.runLog(r.Context(), "run finished", runID, "status", status)
	}
	// fail answers an error envelope (stamped with the run id — error
	// bodies have no CLI twin, so inline identity is free) and seals
	// the run.
	fail := func(apiErr *apiError) {
		apiErr.body.RunID = runID
		body, err := renderEnvelope(apiErr.body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			finishRun(http.StatusInternalServerError, nil)
			return
		}
		if apiErr.body.RetryAfterSec > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(apiErr.body.RetryAfterSec))
		}
		w.Header().Set("Roload-Trace", runID)
		writeRendered(w, apiErr.status, body)
		finishRun(apiErr.status, body)
	}

	var req schema.RunRequest
	if apiErr := s.decodeBody(w, r, &req); apiErr != nil {
		fail(apiErr)
		return
	}
	spec, apiErr := s.parseRunSpec(req)
	if apiErr != nil {
		fail(apiErr)
		return
	}
	spec.peers = parsePeers(r.Header.Get(storePeersHeader))
	s.runLog(r.Context(), "run accepted", runID,
		"system", spec.sys.String(), "harden", spec.h.String(), "redundant", req.Redundant)

	if req.Priority == "low" {
		if apiErr := s.shedLowPriority(); apiErr != nil {
			s.runLog(r.Context(), "run shed", runID, "kind", apiErr.body.Kind)
			fail(apiErr)
			return
		}
	}
	s.runLog(r.Context(), "run queued", runID, "queued", s.queued.Load())
	qSpan := reqSpan.Child("queue-wait")
	qStart := time.Now()
	acqErr := s.acquire(r.Context())
	qSpan.End()
	s.queueWaitUS.Observe(uint64(time.Since(qStart).Microseconds()))
	if acqErr != nil {
		s.runLog(r.Context(), "run shed", runID, "kind", acqErr.body.Kind)
		fail(acqErr)
		return
	}
	defer s.release()
	s.runLog(r.Context(), "run started", runID)

	if s.cfg.Chaos {
		delay, doPanic, doError := s.chaos.takeRun()
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
			}
		}
		if doPanic {
			panic("chaos: injected worker panic")
		}
		if doError {
			fail(chaosError())
			return
		}
	}

	cSpan := reqSpan.Child("compile")
	img, _, apiErr := s.buildImage(spec)
	cSpan.End()
	if apiErr != nil {
		fail(apiErr)
		return
	}

	ctx, cancel := s.runCtx(r, req.TimeoutMS)
	defer cancel()
	// The execution context carries the trace (execute/checkpoint/vote/
	// heal spans parent under the request span) and the event sink.
	ctx = telemetry.WithTrace(ctx, trace)
	ctx = telemetry.WithSpan(ctx, reqSpan)
	execCtx := telemetry.WithSink(ctx, sink)
	resp, apiErr := s.executeSpec(execCtx, img, spec)
	if apiErr != nil {
		fail(apiErr)
		return
	}
	body, rerr := renderEnvelope(resp)
	if rerr != nil {
		http.Error(w, rerr.Error(), http.StatusInternalServerError)
		finishRun(http.StatusInternalServerError, nil)
		return
	}
	status := http.StatusOK
	if created {
		w.Header().Set("Location", "/v1/runs/"+runID)
		status = http.StatusCreated
	}
	w.Header().Set("Roload-Trace", runID)
	writeRendered(w, status, body)
	finishRun(status, body)
}

// handleRunGet is GET /v1/runs/{id}: the stored rendered result of a
// completed run, byte-identical to the synchronous answer. A 201
// creation replays as a plain 200 representation.
func (s *Server) handleRunGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !telemetry.ValidRunID(id) {
		validationError(fmt.Sprintf("invalid run id %q", id)).write(w)
		return
	}
	runInfoFrom(r.Context()).set(id)
	res, ok := s.results.get(id)
	if !ok {
		apiErr := notFoundError(fmt.Sprintf("no stored result for run %q (results are retained for the last %d runs)", id, s.results.cap))
		apiErr.body.RunID = id
		apiErr.write(w)
		return
	}
	status := res.status
	if status == http.StatusCreated {
		status = http.StatusOK
	}
	w.Header().Set("Roload-Trace", id)
	writeRendered(w, status, res.body)
}

// handleBatch is POST /v1/batch: many run specs against one compile
// group. The image is built exactly once (or fetched from the store,
// or hit in the cache: then zero compiles), the runs are scheduled
// across the worker pool, their lifecycle streams through the
// batch-scoped event channel, and the answer is a roload-batch/v1
// report whose per-run bodies are byte-identical to the equivalent
// individual POST /v1/run answers.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	batchID := r.Header.Get("Roload-Trace")
	if !telemetry.ValidRunID(batchID) {
		batchID = telemetry.NewRunID()
	}
	runInfoFrom(r.Context()).set(batchID)
	trace := telemetry.NewTrace(batchID, "s")
	reqSpan := trace.Start("request", r.Header.Get("Roload-Trace-Parent"))
	reqSpan.SetAttr("endpoint", "batch")
	sink := s.broker.Sink(batchID)

	finishBatch := func(status int, body []byte) {
		reqSpan.SetAttrUint("status", uint64(status))
		reqSpan.End()
		s.traces.put(batchID, trace.Doc())
		if body != nil {
			s.results.put(batchID, status, body)
		}
		s.broker.Finish(batchID, schema.RunEvent{
			Kind: schema.EventResult, Status: status, Result: string(body)})
		s.runLog(r.Context(), "batch finished", batchID, "status", status)
	}
	fail := func(apiErr *apiError) {
		apiErr.body.RunID = batchID
		body, err := renderEnvelope(apiErr.body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			finishBatch(http.StatusInternalServerError, nil)
			return
		}
		if apiErr.body.RetryAfterSec > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(apiErr.body.RetryAfterSec))
		}
		w.Header().Set("Roload-Trace", batchID)
		writeRendered(w, apiErr.status, body)
		finishBatch(apiErr.status, body)
	}

	var req schema.BatchRequest
	if apiErr := s.decodeBody(w, r, &req); apiErr != nil {
		fail(apiErr)
		return
	}
	apiErr := checkSchema(req.Schema)
	if apiErr == nil && len(req.Runs) == 0 {
		apiErr = validationError("runs must name at least one run")
	}
	if apiErr == nil && len(req.Runs) > s.cfg.MaxBatchRuns {
		apiErr = validationError(fmt.Sprintf("batch of %d runs exceeds the server cap %d", len(req.Runs), s.cfg.MaxBatchRuns))
	}
	if apiErr != nil {
		fail(apiErr)
		return
	}
	// The compile group validates once on its own (clean message), then
	// every run spec through the exact single-run validator — same
	// checks, same order, same wording as POST /v1/run.
	if _, apiErr := s.parseRunSpec(schema.RunRequest{
		Source: req.Source, Asm: req.Asm, Harden: req.Harden,
		Optimize: req.Optimize, ImageDigest: req.ImageDigest,
		Priority: req.Priority,
	}); apiErr != nil {
		fail(apiErr)
		return
	}
	specs := make([]runSpec, len(req.Runs))
	for i, rs := range req.Runs {
		spec, apiErr := s.parseRunSpec(schema.RunRequest{
			Source: req.Source, Asm: req.Asm, Harden: req.Harden,
			Optimize: req.Optimize, ImageDigest: req.ImageDigest,
			System: rs.System, Engine: rs.Engine,
			MaxSteps: rs.MaxSteps, MemBytes: rs.MemBytes,
			FaultCount: rs.FaultCount, FaultSeed: rs.FaultSeed,
			Redundant: rs.Redundant, Heal: rs.Heal,
			SyncEvery: rs.SyncEvery, FaultReplica: rs.FaultReplica,
			CheckpointEvery: rs.CheckpointEvery, Resume: rs.Resume,
			TimeoutMS: req.TimeoutMS, Priority: req.Priority,
		})
		if apiErr != nil {
			apiErr.body.Error = fmt.Sprintf("run %d: %s", i, apiErr.body.Error)
			fail(apiErr)
			return
		}
		specs[i] = spec
	}
	peers := parsePeers(r.Header.Get(storePeersHeader))
	for i := range specs {
		specs[i].peers = peers
	}
	s.runLog(r.Context(), "batch accepted", batchID, "runs", len(specs))

	if req.Priority == "low" {
		if apiErr := s.shedLowPriority(); apiErr != nil {
			s.runLog(r.Context(), "batch shed", batchID, "kind", apiErr.body.Kind)
			fail(apiErr)
			return
		}
	}
	s.runLog(r.Context(), "batch queued", batchID, "queued", s.queued.Load())
	qSpan := reqSpan.Child("queue-wait")
	qStart := time.Now()
	acqErr := s.acquire(r.Context())
	qSpan.End()
	s.queueWaitUS.Observe(uint64(time.Since(qStart).Microseconds()))
	if acqErr != nil {
		s.runLog(r.Context(), "batch shed", batchID, "kind", acqErr.body.Kind)
		fail(acqErr)
		return
	}
	defer s.release()
	s.runLog(r.Context(), "batch started", batchID)

	if s.cfg.Chaos {
		delay, doPanic, doError := s.chaos.takeRun()
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
			}
		}
		if doPanic {
			panic("chaos: injected worker panic")
		}
		if doError {
			fail(chaosError())
			return
		}
	}

	// One compile for the whole batch: the compile group is shared, so
	// any spec names the same image.
	cSpan := reqSpan.Child("compile")
	img, compiled, apiErr := s.buildImage(specs[0])
	cSpan.End()
	if apiErr != nil {
		fail(apiErr)
		return
	}
	compiles := 0
	if compiled {
		compiles = 1
	}
	imageDigest := kernel.ImageDigest(img)

	ctx, cancel := s.runCtx(r, req.TimeoutMS)
	defer cancel()
	ctx = telemetry.WithTrace(ctx, trace)

	// Resumable batches: a run's identity (batch id, index, image, spec)
	// addresses its stored roload-runresult/v1 artifact. A prior POST of
	// the same batch id that completed a run left that artifact behind —
	// here and/or on the replica peers — so this POST replays it
	// byte-identically instead of re-executing. The skeletons double as
	// the addresses fresh results are persisted under.
	prior := make([]*schema.RunResultDoc, len(specs))
	skel := make([]*schema.RunResultDoc, len(specs))
	if s.store != nil {
		for i := range specs {
			canon, merr := json.Marshal(req.Runs[i])
			if merr != nil {
				continue
			}
			skel[i] = &schema.RunResultDoc{
				Schema: schema.RunResultV1, BatchID: batchID, Index: i,
				RunID:       fmt.Sprintf("%s.%d", batchID, i+1),
				ImageDigest: imageDigest, Spec: string(canon),
			}
			key := skel[i].KeyDigest()
			raw, gerr := s.storeGetOrFetch(ctx, peers, schema.RunResultV1, key)
			if gerr != nil {
				continue
			}
			var doc schema.RunResultDoc
			if json.Unmarshal(raw, &doc) == nil && doc.Validate() == nil && doc.KeyDigest() == key {
				prior[i] = &doc
			}
		}
	}

	// Fan the runs out across the worker pool. Every run gets its own
	// child span, a batch-scoped run id ("<batch>.<n>"), and a sink
	// that stamps its 1-based index into each event.
	outcomes := make([]schema.BatchRunOutcome, len(specs))
	eval.ForEach(s.cfg.Workers, len(specs), func(i int) error { //nolint:errcheck // fn never errors
		runID := fmt.Sprintf("%s.%d", batchID, i+1)
		runSpan := reqSpan.Child("batch-run")
		runSpan.SetAttrUint("run", uint64(i+1))
		runSink := telemetry.Sink(func(ev schema.RunEvent) {
			ev.Run = i + 1
			sink(ev)
		})
		runSink(schema.RunEvent{Kind: schema.EventRunStart})
		if doc := prior[i]; doc != nil {
			// Replay, don't re-execute: the stored result carries the
			// exact rendered body of the original run, so the outcome —
			// and the event stream's terminal event — is byte-identical.
			runSpan.SetAttr("skipped", "true")
			runSpan.SetAttrUint("status", uint64(doc.Status))
			runSpan.End()
			runSink(schema.RunEvent{Kind: schema.EventRunResult, Status: doc.Status, Result: doc.Body})
			s.results.put(runID, doc.Status, []byte(doc.Body))
			outcomes[i] = schema.BatchRunOutcome{
				Index: i, RunID: runID, Status: doc.Status, Body: doc.Body, Skipped: true}
			return nil
		}
		execCtx := telemetry.WithSink(telemetry.WithSpan(ctx, runSpan), runSink)
		status := http.StatusOK
		var body []byte
		resp, runErr := s.executeSpec(execCtx, img, specs[i])
		if runErr != nil {
			runErr.body.RunID = runID
			status = runErr.status
			body, _ = renderEnvelope(runErr.body)
		} else {
			body, _ = renderEnvelope(resp)
		}
		runSpan.SetAttrUint("status", uint64(status))
		runSpan.End()
		runSink(schema.RunEvent{Kind: schema.EventRunResult, Status: status, Result: string(body)})
		s.results.put(runID, status, body)
		outcomes[i] = schema.BatchRunOutcome{Index: i, RunID: runID, Status: status, Body: string(body)}
		// Persist conclusive successes as roload-runresult/v1 artifacts
		// (and replicate them): the next POST of this batch id skips
		// this run. Errors stay unpersisted — they should re-execute.
		if skel[i] != nil && status < 300 {
			doc := *skel[i]
			doc.Status, doc.Body = status, string(body)
			if raw, merr := json.Marshal(&doc); merr == nil {
				s.putReplicated(specs[i].peers, schema.RunResultV1, doc.KeyDigest(), raw) //nolint:errcheck // best effort: the run already answered
			}
		}
		return nil
	})

	skipped := 0
	for i := range outcomes {
		if outcomes[i].Skipped {
			skipped++
		}
	}
	report := schema.BatchReport{
		Schema:      schema.BatchV1,
		BatchID:     batchID,
		ImageDigest: imageDigest,
		Compiles:    compiles,
		Runs:        outcomes,
		Skipped:     skipped,
	}
	if s.store != nil {
		// Persist the report (best effort: the runs already completed)
		// so it survives a restart, and replicate it across the fleet.
		if raw, merr := json.Marshal(&report); merr == nil {
			s.putReplicated(peers, schema.BatchV1, store.Digest(raw), raw) //nolint:errcheck
		}
	}
	body, rerr := renderEnvelope(report)
	if rerr != nil {
		http.Error(w, rerr.Error(), http.StatusInternalServerError)
		finishBatch(http.StatusInternalServerError, nil)
		return
	}
	w.Header().Set("Roload-Trace", batchID)
	writeRendered(w, http.StatusOK, body)
	finishBatch(http.StatusOK, body)
}

// handleImagePut is POST /v1/images (routed only with -store): compile
// or assemble once, persist the roload-image/v1 document under its
// kernel digest, and pin it — a checkpoint's resumability depends on
// its image surviving GC. Answers 201 on first store, 200 with
// Reused on a digest the store already held.
func (s *Server) handleImagePut(w http.ResponseWriter, r *http.Request) {
	var req schema.ImageRequest
	if apiErr := s.decodeBody(w, r, &req); apiErr != nil {
		apiErr.write(w)
		return
	}
	apiErr := checkSchema(req.Schema)
	if apiErr == nil && req.Source == "" {
		apiErr = validationError("source is required")
	}
	h := core.HardenNone
	if apiErr == nil && req.Harden != "" {
		var err error
		if h, err = cli.ParseHardening(req.Harden); err != nil {
			apiErr = validationError(err.Error())
		}
	}
	if apiErr == nil && req.Asm && (h != core.HardenNone || req.Optimize) {
		apiErr = validationError("asm input cannot be combined with harden or optimize")
	}
	if apiErr != nil {
		apiErr.write(w)
		return
	}
	if apiErr := s.acquire(r.Context()); apiErr != nil {
		apiErr.write(w)
		return
	}
	defer s.release()
	img, _, apiErr := s.buildImage(runSpec{
		req: schema.RunRequest{Source: req.Source, Asm: req.Asm, Optimize: req.Optimize},
		h:   h,
	})
	if apiErr != nil {
		apiErr.write(w)
		return
	}
	doc := core.EncodeImage(img)
	raw, err := json.Marshal(doc)
	if err != nil {
		internalError(err).write(w)
		return
	}
	added, err := s.store.Put(schema.ImageV1, doc.Digest, raw)
	if err != nil {
		internalError(err).write(w)
		return
	}
	if added {
		if err := s.store.Pin(doc.Digest); err != nil {
			internalError(err).write(w)
			return
		}
	}
	s.replicateToPeers(parsePeers(r.Header.Get(storePeersHeader)), schema.ImageV1, doc.Digest, raw)
	w.Header().Set("Location", "/v1/images/"+doc.Digest)
	status := http.StatusCreated
	if !added {
		status = http.StatusOK
	}
	writeEnvelope(w, status, schema.ImageResponse{Digest: doc.Digest, Reused: !added})
}

// handleImageGet is GET /v1/images/{digest} (routed only with -store):
// the stored roload-image/v1 document, bare — it is an artifact, not a
// serve payload, so it round-trips through roload-run -resume and the
// schema registry unchanged.
func (s *Server) handleImageGet(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	raw, err := s.store.Get(schema.ImageV1, digest)
	if err != nil {
		notFoundError(fmt.Sprintf("image %s is not in the store", digest)).write(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(raw) //nolint:errcheck // client gone: nothing to report to
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req schema.CompileRequest
	if apiErr := s.decodeBody(w, r, &req); apiErr != nil {
		apiErr.write(w)
		return
	}
	apiErr := checkSchema(req.Schema)
	if apiErr == nil && req.Source == "" {
		apiErr = validationError("source is required")
	}
	h := core.HardenNone
	if apiErr == nil && req.Harden != "" {
		var err error
		if h, err = cli.ParseHardening(req.Harden); err != nil {
			apiErr = validationError(err.Error())
		}
	}
	if apiErr != nil {
		apiErr.write(w)
		return
	}
	if apiErr := s.acquire(r.Context()); apiErr != nil {
		apiErr.write(w)
		return
	}
	defer s.release()
	text, err := core.CompileText(req.Source, core.CompileOptions{
		Harden:   h,
		Optimize: req.Optimize,
		Dump:     req.Dump,
		Compress: req.Compress,
	})
	if err != nil {
		compileError(err).write(w)
		return
	}
	writeEnvelope(w, http.StatusOK, schema.CompileResponse{Text: text})
}

func (s *Server) handleAttack(w http.ResponseWriter, r *http.Request) {
	var req schema.AttackRequest
	if apiErr := s.decodeBody(w, r, &req); apiErr != nil {
		apiErr.write(w)
		return
	}
	if apiErr := checkSchema(req.Schema); apiErr != nil {
		apiErr.write(w)
		return
	}
	scenarios := attack.AllScenarios()
	if req.Scenario != "" {
		var filtered []*attack.Scenario
		names := make([]string, 0, len(scenarios))
		for _, sc := range scenarios {
			names = append(names, sc.Name)
			if sc.Name == req.Scenario {
				filtered = append(filtered, sc)
			}
		}
		if len(filtered) == 0 {
			notFoundError(fmt.Sprintf("unknown scenario %q (known: %s)",
				req.Scenario, strings.Join(names, ", "))).write(w)
			return
		}
		scenarios = filtered
	}
	schemes := attack.MatrixSchemes
	if req.Harden != "" {
		h, err := cli.ParseHardening(req.Harden)
		if err != nil {
			validationError(err.Error()).write(w)
			return
		}
		schemes = []core.Hardening{h}
	}

	if apiErr := s.acquire(r.Context()); apiErr != nil {
		apiErr.write(w)
		return
	}
	defer s.release()
	ctx, cancel := s.runCtx(r, req.TimeoutMS)
	defer cancel()

	var buf bytes.Buffer
	results, bad, err := attack.RenderMatrix(ctx, &buf, scenarios, schemes, req.Verbose)
	if err != nil {
		var canceled *kernel.CanceledError
		if errors.As(err, &canceled) {
			timeoutError(err, nil).write(w)
			return
		}
		internalError(err).write(w)
		return
	}
	writeEnvelope(w, http.StatusOK, schema.AttackResponse{
		Text:       buf.String(),
		BadDefense: bad,
		Results:    attack.Entries(results, true),
	})
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	writeEnvelope(w, http.StatusOK, schema.ExperimentsResponse{
		IDs:    eval.ExperimentIDs,
		Scales: []string{"ref", "test"},
	})
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	known := false
	for _, want := range eval.ExperimentIDs {
		if id == want {
			known = true
			break
		}
	}
	if !known {
		notFoundError(fmt.Sprintf("unknown experiment %q (known: %s)",
			id, strings.Join(eval.ExperimentIDs, ", "))).write(w)
		return
	}
	var req schema.ExperimentRequest
	if apiErr := s.decodeBody(w, r, &req); apiErr != nil {
		apiErr.write(w)
		return
	}
	if apiErr := checkSchema(req.Schema); apiErr != nil {
		apiErr.write(w)
		return
	}
	// The service favours bounded request latency: test scale unless
	// ref is asked for explicitly.
	scale := eval.ScaleTest
	if req.Scale != "" {
		var err error
		if scale, err = eval.ParseScale(req.Scale); err != nil {
			validationError(err.Error()).write(w)
			return
		}
	}

	if apiErr := s.acquire(r.Context()); apiErr != nil {
		apiErr.write(w)
		return
	}
	defer s.release()
	ctx, cancel := s.runCtx(r, req.TimeoutMS)
	defer cancel()

	data, err := s.experiments.get(ctx, expKey{id, scale}, func(ctx2 context.Context) (any, error) {
		return s.runner.Experiment(ctx2, id, scale, s.cfg.Root)
	})
	if err != nil {
		var canceled *kernel.CanceledError
		if errors.As(err, &canceled) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			timeoutError(err, nil).write(w)
			return
		}
		internalError(err).write(w)
		return
	}
	writeEnvelope(w, http.StatusOK, schema.ExperimentResponse{
		ID:    id,
		Scale: cli.ScaleName(scale),
		Data:  data,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	queued := int(s.queued.Load())
	resp := schema.HealthResponse{
		Status:     "ok",
		Workers:    s.cfg.Workers,
		InFlight:   int(s.inFlight.Load()),
		Queued:     queued,
		QueueDepth: queued,
		QueueCap:   s.cfg.Workers + s.cfg.Queue,
		Store:      "none",
		ChaosArmed: s.cfg.Chaos && s.chaos.armed(),
	}
	if s.store != nil {
		resp.Store = "attached"
		if err := s.store.Err(); err != nil {
			resp.Store = "error: " + err.Error()
		}
	}
	status := http.StatusOK
	if bad, retry := s.degraded(); bad {
		resp.Status = "degraded"
		resp.RetryAfterSec = retry
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		status = http.StatusServiceUnavailable
	}
	if s.draining.Load() {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeEnvelope(w, status, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	stats := s.runner.Stats()
	resp := schema.ServeMetrics{
		Workers:   s.cfg.Workers,
		InFlight:  int(s.inFlight.Load()),
		Queued:    int(s.queued.Load()),
		Draining:  s.draining.Load(),
		Endpoints: make(map[string]schema.EndpointMetrics),
		ImageCache: schema.CacheMetrics{
			Entries: uint64(stats.Images),
			Hits:    stats.ImageHits,
			Misses:  stats.ImageMisses,
		},
		Experiments:   s.experiments.metrics(),
		Idempotency:   s.idem.metrics(),
		Shed:          s.shed.Load(),
		UptimeSec:     time.Since(s.start).Seconds(),
		QueueDepth:    int(s.queued.Load()),
		QueueCap:      s.cfg.Workers + s.cfg.Queue,
		QueueWaitUS:   s.queueWaitUS.Snapshot(),
		RunDurationUS: s.runDurationUS.Snapshot(),
		Streams:       s.broker.Metrics(),
	}
	if s.store != nil {
		m := s.store.Metrics()
		resp.Store = &m
		resp.Replication = s.replicationMetrics()
	}
	s.mu.Lock()
	for name, c := range s.endpoints {
		resp.Endpoints[name] = schema.EndpointMetrics{
			Requests: c.requests.Load(),
			OK:       c.ok.Load(),
			Errors4x: c.errors4x.Load(),
			Errors5x: c.errors5x.Load(),
			Timeouts: c.timeouts.Load(),
		}
		if c.latencyUS.Count() > 0 {
			if resp.EndpointLatencyUS == nil {
				resp.EndpointLatencyUS = make(map[string]schema.Histogram)
			}
			resp.EndpointLatencyUS[name] = c.latencyUS.Snapshot()
		}
	}
	for eng, n := range s.engineRuns {
		if resp.EngineRuns == nil {
			resp.EngineRuns = make(map[string]uint64)
		}
		resp.EngineRuns[eng] = n
	}
	for mode, c := range s.keyChecks {
		if resp.KeyChecks == nil {
			resp.KeyChecks = make(map[string]schema.KeyCheckStats)
		}
		st := schema.KeyCheckStats{Runs: c.runs, Violations: c.violations}
		if c.runs > 0 {
			st.Rate = float64(c.violations) / float64(c.runs)
		}
		resp.KeyChecks[mode] = st
	}
	s.mu.Unlock()
	writeEnvelope(w, http.StatusOK, resp)
}
