// Live-telemetry tests: the SSE run-event stream (mid-run delivery,
// ordering, disconnect/drain/cancellation lifecycles), the trace
// endpoint, and the end-to-end client→server→simulator span tree. The
// byte-identity contract is load-bearing throughout: the terminal
// stream event must carry exactly the bytes the synchronous POST
// answered.
package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"roload/internal/client"
	"roload/internal/schema"
	"roload/internal/telemetry"
)

// telemetryProg retires a few million instructions so the run is long
// enough for progress ticks (every kernel cancellation stride) to
// stream out while the POST is still executing.
const telemetryProg = `
func main() int {
	var i int = 0;
	var acc int = 0;
	while (i < 300000) {
		acc = acc + i;
		i = i + 1;
	}
	print_int(acc);
	return 0;
}
`

type postOutcome struct {
	status int
	header http.Header
	body   []byte
	err    error
}

// postTraced posts one run request under a caller-chosen run id and
// reports the raw response. Safe to call from a goroutine (no t).
func postTraced(url, runID string, req schema.RunRequest) postOutcome {
	raw, err := json.Marshal(req)
	if err != nil {
		return postOutcome{err: err}
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/run", strings.NewReader(string(raw)))
	if err != nil {
		return postOutcome{err: err}
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Roload-Trace", runID)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return postOutcome{err: err}
	}
	defer resp.Body.Close()
	var buf strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		buf.WriteString(sc.Text())
		buf.WriteString("\n")
	}
	return postOutcome{status: resp.StatusCode, header: resp.Header, body: []byte(buf.String())}
}

// collectEvents drains an event channel with a deadline, so a broken
// stream fails the test instead of hanging it.
func collectEvents(t *testing.T, ch <-chan schema.RunEvent, deadline time.Duration, onEvent func(schema.RunEvent)) []schema.RunEvent {
	t.Helper()
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	var events []schema.RunEvent
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return events
			}
			events = append(events, ev)
			if onEvent != nil {
				onEvent(ev)
			}
		case <-timer.C:
			t.Fatalf("event stream did not close within %v (%d events so far)", deadline, len(events))
		}
	}
}

// TestServeEventsMidRunChaos is the streaming acceptance test: on a
// long seeded chaos run, the subscriber receives progress ticks and
// injected-fault audit records while the synchronous POST is still in
// flight, events arrive in publication order with non-decreasing
// retire counts, and the terminal result event carries byte-for-byte
// the body the POST answered — which is itself byte-identical to a
// second synchronous run of the same seed.
func TestServeEventsMidRunChaos(t *testing.T) {
	_, url := quietServer(t, Config{Workers: 2})
	runID := telemetry.NewRunID()
	req := schema.RunRequest{
		Source: telemetryProg, System: "full", Harden: "icall",
		FaultCount: 3, FaultSeed: 7,
	}

	cli := client.New(client.Config{BaseURL: url})
	events, err := cli.Stream(context.Background(), runID)
	if err != nil {
		t.Fatal(err)
	}

	postDone := make(chan struct{})
	outcome := make(chan postOutcome, 1)
	go func() {
		out := postTraced(url, runID, req)
		close(postDone)
		outcome <- out
	}()

	inFlight := func() bool {
		select {
		case <-postDone:
			return false
		default:
			return true
		}
	}
	progressMidRun, auditMidRun := 0, 0
	var lastSeq, lastInstret uint64
	all := collectEvents(t, events, 30*time.Second, func(ev schema.RunEvent) {
		if ev.Seq <= lastSeq {
			t.Errorf("sequence went %d -> %d", lastSeq, ev.Seq)
		}
		lastSeq = ev.Seq
		switch ev.Kind {
		case schema.EventProgress, schema.EventAudit:
			if ev.Instret < lastInstret {
				t.Errorf("%s event went backwards: instret %d after %d", ev.Kind, ev.Instret, lastInstret)
			}
			lastInstret = ev.Instret
			if ev.Kind == schema.EventProgress && inFlight() {
				progressMidRun++
			}
			if ev.Kind == schema.EventAudit && inFlight() {
				auditMidRun++
			}
		}
	})
	out := <-outcome
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.status != http.StatusOK {
		t.Fatalf("run status = %d: %s", out.status, out.body)
	}
	if got := out.header.Get("Roload-Trace"); got != runID {
		t.Errorf("Roload-Trace response header = %q, want %q", got, runID)
	}
	if progressMidRun == 0 {
		t.Error("no progress event arrived while the run was still executing")
	}
	if auditMidRun == 0 {
		t.Error("no audit event arrived while the run was still executing")
	}
	if len(all) == 0 {
		t.Fatal("no events at all")
	}
	final := all[len(all)-1]
	if final.Kind != schema.EventResult || final.Status != http.StatusOK {
		t.Fatalf("terminal event = %+v", final)
	}
	for _, ev := range all[:len(all)-1] {
		if ev.Kind == schema.EventResult {
			t.Error("result event arrived before the end of the stream")
		}
	}
	if final.Result != string(out.body) {
		t.Errorf("terminal event body diverges from the POST response:\nevent: %d bytes\npost:  %d bytes", len(final.Result), len(out.body))
	}

	// Same seed, fresh run id: the synchronous response must be
	// byte-identical (the run id travels in the header, not the body).
	again := postTraced(url, telemetry.NewRunID(), req)
	if again.err != nil || again.status != http.StatusOK {
		t.Fatalf("second run: status %d err %v", again.status, again.err)
	}
	if string(again.body) != final.Result {
		t.Error("same-seed synchronous rerun differs from the streamed result event")
	}
}

// TestServeEventsWireFormat reads the raw SSE bytes: each frame is an
// id line carrying the broker sequence, an event line carrying the
// kind, and a data line carrying the JSON record.
func TestServeEventsWireFormat(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	runID := telemetry.NewRunID()

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/runs/"+runID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}

	if out := postTraced(ts.URL, runID, schema.RunRequest{Source: helloProg}); out.err != nil || out.status != http.StatusOK {
		t.Fatalf("run: status %d err %v", out.status, out.err)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	var idLine, eventLine, dataLine string
	for _, l := range lines {
		switch {
		case strings.HasPrefix(l, "id: "):
			idLine = l
		case strings.HasPrefix(l, "event: "):
			eventLine = l
		case strings.HasPrefix(l, "data: "):
			dataLine = l
		}
	}
	if idLine == "" || eventLine == "" || dataLine == "" {
		t.Fatalf("stream lacks id/event/data lines:\n%s", strings.Join(lines, "\n"))
	}
	if eventLine != "event: result" {
		t.Errorf("terminal frame event line = %q", eventLine)
	}
	var ev schema.RunEvent
	if err := json.Unmarshal([]byte(strings.TrimPrefix(dataLine, "data: ")), &ev); err != nil {
		t.Fatalf("undecodable data line %q: %v", dataLine, err)
	}
	if ev.Kind != schema.EventResult || ev.Status != http.StatusOK {
		t.Errorf("decoded terminal event = %+v", ev)
	}
}

// TestServeEventsClientDisconnect: cancelling the subscriber releases
// the handler and the broker subscription without leaking goroutines.
func TestServeEventsClientDisconnect(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	cli := client.New(client.Config{BaseURL: ts.URL})
	events, err := cli.Stream(ctx, telemetry.NewRunID())
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if n := srv.broker.Metrics().Subscribers; n != 1 {
		t.Fatalf("subscribers = %d, want 1", n)
	}
	cancel()
	collectEvents(t, events, 5*time.Second, nil)

	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if srv.broker.Metrics().Subscribers == 0 && runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("after disconnect: %d subscribers, goroutines %d -> %d",
				srv.broker.Metrics().Subscribers, before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeEventsDrainClosesStreams: shutting the server down closes
// every open event stream instead of leaving drain hanging on them.
func TestServeEventsDrainClosesStreams(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	cli := client.New(client.Config{BaseURL: ts.URL})
	events, err := cli.Stream(context.Background(), telemetry.NewRunID())
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	start := time.Now()
	collectEvents(t, events, 5*time.Second, nil)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("stream took %v to close after server shutdown", elapsed)
	}
}

// TestServeEventsRunCancelled: a run that dies on its deadline still
// terminates its stream, with a result event carrying the 504 error
// envelope — which names the run id inline.
func TestServeEventsRunCancelled(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	runID := telemetry.NewRunID()
	cli := client.New(client.Config{BaseURL: ts.URL})
	events, err := cli.Stream(context.Background(), runID)
	if err != nil {
		t.Fatal(err)
	}
	out := postTraced(ts.URL, runID, schema.RunRequest{Source: spinProg, TimeoutMS: 100})
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", out.status)
	}
	all := collectEvents(t, events, 10*time.Second, nil)
	if len(all) == 0 {
		t.Fatal("no events")
	}
	final := all[len(all)-1]
	if final.Kind != schema.EventResult || final.Status != http.StatusGatewayTimeout {
		t.Fatalf("terminal event = %+v", final)
	}
	if final.Result != string(out.body) {
		t.Error("terminal event body diverges from the 504 response")
	}
	var env schema.Envelope
	if err := json.Unmarshal([]byte(final.Result), &env); err != nil {
		t.Fatal(err)
	}
	e := openError(t, env)
	if e.RunID != runID {
		t.Errorf("error envelope run_id = %q, want %q", e.RunID, runID)
	}
}

// TestServeEventsInvalidRunID: a malformed id is a 400, not a stream.
func TestServeEventsInvalidRunID(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/runs/" + strings.Repeat("x", 65) + "/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

// TestServeTraceEndpoint: a completed run's span document is served,
// validates, and carries the expected request→stage tree parented
// under the caller-supplied client span.
func TestServeTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	runID := telemetry.NewRunID()

	raw, _ := json.Marshal(schema.RunRequest{Source: helloProg})
	hreq, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/run", strings.NewReader(string(raw)))
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Roload-Trace", runID)
	hreq.Header.Set("Roload-Trace-Parent", "c42")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status = %d", resp.StatusCode)
	}

	cli := client.New(client.Config{BaseURL: ts.URL})
	doc, err := cli.FetchTrace(context.Background(), runID)
	if err != nil {
		t.Fatal(err)
	}
	if doc.RunID != runID {
		t.Errorf("trace run id = %q", doc.RunID)
	}
	byName := make(map[string]schema.Span)
	for _, s := range doc.Spans {
		byName[s.Name] = s
	}
	for _, want := range []string{"request", "queue-wait", "compile", "execute"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("trace lacks a %q span (spans: %v)", want, spanNames(doc.Spans))
		}
	}
	if req := byName["request"]; req.Parent != "c42" {
		t.Errorf("request span parent = %q, want the client span id", req.Parent)
	}
	for _, name := range []string{"queue-wait", "compile", "execute"} {
		if s, ok := byName[name]; ok && s.Parent != byName["request"].ID {
			t.Errorf("%s span parent = %q, want request span %q", name, s.Parent, byName["request"].ID)
		}
	}

	if _, err := cli.FetchTrace(context.Background(), telemetry.NewRunID()); err == nil {
		t.Error("unknown run id served a trace")
	}
}

func spanNames(spans []schema.Span) []string {
	names := make([]string, len(spans))
	for i, s := range spans {
		names[i] = s.Name
	}
	return names
}

// TestServeClientE2ETrace is the end-to-end acceptance path: the
// resilient client mints the run id, streams the run's events while it
// executes, and afterwards merges its own span document with the
// server's into one tree — client attempt → server request → execute —
// under a single run id.
func TestServeClientE2ETrace(t *testing.T) {
	_, url := quietServer(t, Config{Workers: 2})
	// The chaos run simulates millions of instructions twice (profiling
	// + faulted); under -race that outlives the default attempt timeout.
	cli := client.New(client.Config{BaseURL: url, AttemptTimeout: 2 * time.Minute})
	runID := client.NewRunID()

	events, err := cli.Stream(context.Background(), runID)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cli.RunWithID(context.Background(), runID, schema.RunRequest{
		Source: telemetryProg, System: "full", Harden: "icall",
		FaultCount: 2, FaultSeed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RunID != runID || res.Trace.RunID != runID {
		t.Fatalf("result run id = %q / trace %q, want %q", res.RunID, res.Trace.RunID, runID)
	}

	var lastInstret uint64
	all := collectEvents(t, events, 30*time.Second, func(ev schema.RunEvent) {
		if ev.Kind == schema.EventProgress || ev.Kind == schema.EventAudit {
			if ev.Instret < lastInstret {
				t.Errorf("event retire counts went backwards: %d after %d", ev.Instret, lastInstret)
			}
			lastInstret = ev.Instret
		}
	})
	if len(all) == 0 || all[len(all)-1].Kind != schema.EventResult {
		t.Fatalf("stream did not end in a result event (%d events)", len(all))
	}

	serverDoc, err := cli.FetchTrace(context.Background(), runID)
	if err != nil {
		t.Fatal(err)
	}
	merged := telemetry.Merge(res.Trace, serverDoc)
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
	if merged.RunID != runID {
		t.Errorf("merged run id = %q", merged.RunID)
	}
	byID := make(map[string]schema.Span)
	var root, attempt, request, execute schema.Span
	for _, s := range merged.Spans {
		byID[s.ID] = s
		switch s.Name {
		case "run":
			root = s
		case "attempt":
			attempt = s
		case "request":
			request = s
		case "execute":
			execute = s
		}
	}
	if root.ID == "" || attempt.ID == "" || request.ID == "" || execute.ID == "" {
		t.Fatalf("merged tree lacks run/attempt/request/execute spans: %v", spanNames(merged.Spans))
	}
	if root.Parent != "" {
		t.Errorf("client run span has parent %q", root.Parent)
	}
	if attempt.Parent != root.ID {
		t.Errorf("attempt parent = %q, want %q", attempt.Parent, root.ID)
	}
	if request.Parent != attempt.ID {
		t.Errorf("request parent = %q, want attempt %q — the cross-wire edge is broken", request.Parent, attempt.ID)
	}
	if execute.Parent != request.ID {
		t.Errorf("execute parent = %q, want request %q", execute.Parent, request.ID)
	}
	// Every non-root span's parent resolves inside the merged document.
	for _, s := range merged.Spans {
		if s.Parent == "" {
			continue
		}
		if _, ok := byID[s.Parent]; !ok {
			t.Errorf("span %s (%s) has dangling parent %q", s.ID, s.Name, s.Parent)
		}
	}

	m := cli.Metrics()
	if m.AttemptLatencyUS.Count == 0 || m.RunLatencyUS.Count == 0 {
		t.Errorf("client histograms empty: %+v", m)
	}
}

// TestServeRedundantTraceSpans: a supervised faulted run's server
// trace records the checkpoint/vote/heal machinery as spans.
func TestServeRedundantTraceSpans(t *testing.T) {
	_, url := quietServer(t, Config{Workers: 2})
	runID := telemetry.NewRunID()
	out := postTraced(url, runID, schema.RunRequest{
		Source: loopProg, Harden: "icall",
		Redundant: 3, Heal: true, SyncEvery: 20_000,
		FaultCount: 2, FaultSeed: 7, FaultReplica: 1,
	})
	if out.err != nil || out.status != http.StatusOK {
		t.Fatalf("run: status %d err %v", out.status, out.err)
	}
	cli := client.New(client.Config{BaseURL: url})
	doc, err := cli.FetchTrace(context.Background(), runID)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for _, s := range doc.Spans {
		counts[s.Name]++
	}
	for _, want := range []string{"execute", "checkpoint", "vote", "heal"} {
		if counts[want] == 0 {
			t.Errorf("redundant trace lacks %q spans (got %v)", want, counts)
		}
	}
}

// TestServeMetricsTelemetry: /metrics carries the new gauges — uptime,
// queue depth, latency histograms, per-mode key-check rates and stream
// counters — and answers with an explicit content type.
func TestServeMetricsTelemetry(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	if out := postTraced(ts.URL, telemetry.NewRunID(), schema.RunRequest{Source: helloProg, Harden: "icall"}); out.status != http.StatusOK {
		t.Fatalf("run status = %d", out.status)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	var env schema.Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	var m schema.ServeMetrics
	if err := env.Open(schema.ServeV1, &m); err != nil {
		t.Fatal(err)
	}
	if m.UptimeSec <= 0 {
		t.Errorf("uptime = %v", m.UptimeSec)
	}
	if m.QueueCap <= 0 {
		t.Errorf("queue cap = %d", m.QueueCap)
	}
	if m.RunDurationUS.Count == 0 || m.QueueWaitUS.Count == 0 {
		t.Errorf("latency histograms empty: run %d queue %d", m.RunDurationUS.Count, m.QueueWaitUS.Count)
	}
	kc, ok := m.KeyChecks["ICall"]
	if !ok || kc.Runs == 0 {
		t.Errorf("key-check counters = %+v", m.KeyChecks)
	}
	if lat, ok := m.EndpointLatencyUS["run"]; !ok || lat.Count == 0 {
		t.Errorf("per-endpoint latency = %+v", m.EndpointLatencyUS)
	}
}
