package isa

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// DisasmLine is one decoded instruction with its location.
type DisasmLine struct {
	Addr uint64
	Inst Inst
}

// String renders "addr: encoding  mnemonic".
func (d DisasmLine) String() string {
	if d.Inst.Size == 2 {
		return fmt.Sprintf("%8x:     %04x  %s", d.Addr, uint16(d.Inst.Raw), d.Inst)
	}
	return fmt.Sprintf("%8x: %08x  %s", d.Addr, d.Inst.Raw, d.Inst)
}

// Disassemble decodes the byte stream starting at base, walking
// variable-length (2/4-byte) encodings. Truncated trailing bytes are
// ignored.
func Disassemble(code []byte, base uint64) []DisasmLine {
	var out []DisasmLine
	off := 0
	for off+2 <= len(code) {
		raw := uint32(binary.LittleEndian.Uint16(code[off:]))
		size := 2
		if raw&3 == 3 {
			if off+4 > len(code) {
				break
			}
			raw = binary.LittleEndian.Uint32(code[off:])
			size = 4
		}
		in := Decode(raw)
		out = append(out, DisasmLine{Addr: base + uint64(off), Inst: in})
		off += size
		_ = size
	}
	return out
}

// DisassembleText renders a code region as one string, annotating
// branch and jump targets with relative arrows.
func DisassembleText(code []byte, base uint64) string {
	lines := Disassemble(code, base)
	var b strings.Builder
	for _, l := range lines {
		b.WriteString(l.String())
		if l.Inst.Op.IsBranch() || l.Inst.Op == JAL {
			fmt.Fprintf(&b, "\t-> %#x", l.Addr+uint64(l.Inst.Imm))
		}
		b.WriteString("\n")
	}
	return b.String()
}
