package isa

import "fmt"

// Major opcodes (bits [6:0] of a 32-bit encoding).
const (
	opcLUI    = 0b0110111
	opcAUIPC  = 0b0010111
	opcJAL    = 0b1101111
	opcJALR   = 0b1100111
	opcBranch = 0b1100011
	opcLoad   = 0b0000011
	opcStore  = 0b0100011
	opcOpImm  = 0b0010011
	opcOp     = 0b0110011
	opcOpImmW = 0b0011011
	opcOpW    = 0b0111011
	opcSystem = 0b1110011
	opcFence  = 0b0001111

	// opcROLoad is the custom-0 opcode reserved for non-standard
	// extensions by the RISC-V ISA; the ROLoad prototype uses it for the
	// ld.ro family, with funct3 selecting the access width exactly as
	// the standard load opcode does.
	opcROLoad = 0b0001011
)

// EncodeError reports an operand that does not fit its encoding field.
type EncodeError struct {
	Op     Op
	Field  string
	Value  int64
	Reason string
}

func (e *EncodeError) Error() string {
	return fmt.Sprintf("isa: cannot encode %s: %s=%d %s", e.Op, e.Field, e.Value, e.Reason)
}

func fitsSigned(v int64, bits uint) bool {
	min := -(int64(1) << (bits - 1))
	max := int64(1)<<(bits-1) - 1
	return v >= min && v <= max
}

func encR(opc, f3, f7 uint32, rd, rs1, rs2 Reg) uint32 {
	return f7<<25 | uint32(rs2)<<20 | uint32(rs1)<<15 | f3<<12 | uint32(rd)<<7 | opc
}

func encI(opc, f3 uint32, rd, rs1 Reg, imm int64) uint32 {
	return uint32(imm&0xfff)<<20 | uint32(rs1)<<15 | f3<<12 | uint32(rd)<<7 | opc
}

func encS(opc, f3 uint32, rs1, rs2 Reg, imm int64) uint32 {
	i := uint32(imm & 0xfff)
	return (i>>5)<<25 | uint32(rs2)<<20 | uint32(rs1)<<15 | f3<<12 | (i&0x1f)<<7 | opc
}

func encB(opc, f3 uint32, rs1, rs2 Reg, imm int64) uint32 {
	i := uint32(imm) & 0x1fff
	return (i>>12&1)<<31 | (i>>5&0x3f)<<25 | uint32(rs2)<<20 | uint32(rs1)<<15 |
		f3<<12 | (i>>1&0xf)<<8 | (i>>11&1)<<7 | opc
}

func encU(opc uint32, rd Reg, imm int64) uint32 {
	return uint32(imm)&0xfffff000 | uint32(rd)<<7 | opc
}

func encJ(opc uint32, rd Reg, imm int64) uint32 {
	i := uint32(imm) & 0x1fffff
	return (i>>20&1)<<31 | (i>>1&0x3ff)<<21 | (i>>11&1)<<20 | (i>>12&0xff)<<12 |
		uint32(rd)<<7 | opc
}

type rSpec struct{ f3, f7 uint32 }

var rOps = map[Op]rSpec{
	ADD: {0, 0x00}, SUB: {0, 0x20}, SLL: {1, 0x00}, SLT: {2, 0x00},
	SLTU: {3, 0x00}, XOR: {4, 0x00}, SRL: {5, 0x00}, SRA: {5, 0x20},
	OR: {6, 0x00}, AND: {7, 0x00},
	MUL: {0, 0x01}, MULH: {1, 0x01}, MULHSU: {2, 0x01}, MULHU: {3, 0x01},
	DIV: {4, 0x01}, DIVU: {5, 0x01}, REM: {6, 0x01}, REMU: {7, 0x01},
}

var rwOps = map[Op]rSpec{
	ADDW: {0, 0x00}, SUBW: {0, 0x20}, SLLW: {1, 0x00},
	SRLW: {5, 0x00}, SRAW: {5, 0x20},
	MULW: {0, 0x01}, DIVW: {4, 0x01}, DIVUW: {5, 0x01},
	REMW: {6, 0x01}, REMUW: {7, 0x01},
}

var loadF3 = map[Op]uint32{
	LB: 0, LH: 1, LW: 2, LD: 3, LBU: 4, LHU: 5, LWU: 6,
}

var roLoadF3 = map[Op]uint32{
	LBRO: 0, LHRO: 1, LWRO: 2, LDRO: 3,
}

var storeF3 = map[Op]uint32{SB: 0, SH: 1, SW: 2, SD: 3}

var branchF3 = map[Op]uint32{
	BEQ: 0, BNE: 1, BLT: 4, BGE: 5, BLTU: 6, BGEU: 7,
}

var immALUF3 = map[Op]uint32{
	ADDI: 0, SLTI: 2, SLTIU: 3, XORI: 4, ORI: 6, ANDI: 7,
}

var csrF3 = map[Op]uint32{CSRRW: 1, CSRRS: 2, CSRRC: 3}

// Encode produces the 32-bit binary encoding of in. Compressed (16-bit)
// encoding is handled separately by EncodeCompressed.
func Encode(in Inst) (uint32, error) {
	op := in.Op
	switch {
	case op == LUI || op == AUIPC:
		if in.Imm&0xfff != 0 {
			return 0, &EncodeError{op, "imm", in.Imm, "low 12 bits must be zero"}
		}
		if !fitsSigned(in.Imm, 32) {
			return 0, &EncodeError{op, "imm", in.Imm, "out of 32-bit range"}
		}
		opc := uint32(opcLUI)
		if op == AUIPC {
			opc = opcAUIPC
		}
		return encU(opc, in.Rd, in.Imm), nil

	case op == JAL:
		if !fitsSigned(in.Imm, 21) || in.Imm&1 != 0 {
			return 0, &EncodeError{op, "imm", in.Imm, "must be even and fit 21 bits"}
		}
		return encJ(opcJAL, in.Rd, in.Imm), nil

	case op == JALR:
		if !fitsSigned(in.Imm, 12) {
			return 0, &EncodeError{op, "imm", in.Imm, "must fit 12 bits"}
		}
		return encI(opcJALR, 0, in.Rd, in.Rs1, in.Imm), nil

	case op.IsBranch():
		if !fitsSigned(in.Imm, 13) || in.Imm&1 != 0 {
			return 0, &EncodeError{op, "imm", in.Imm, "must be even and fit 13 bits"}
		}
		return encB(opcBranch, branchF3[op], in.Rs1, in.Rs2, in.Imm), nil

	case op.IsROLoad():
		if in.Key > MaxKey {
			return 0, &EncodeError{op, "key", int64(in.Key), "exceeds 10-bit key space"}
		}
		return encI(opcROLoad, roLoadF3[op], in.Rd, in.Rs1, int64(in.Key)), nil

	case op.IsLoad():
		if !fitsSigned(in.Imm, 12) {
			return 0, &EncodeError{op, "imm", in.Imm, "must fit 12 bits"}
		}
		return encI(opcLoad, loadF3[op], in.Rd, in.Rs1, in.Imm), nil

	case op.IsStore():
		if !fitsSigned(in.Imm, 12) {
			return 0, &EncodeError{op, "imm", in.Imm, "must fit 12 bits"}
		}
		return encS(opcStore, storeF3[op], in.Rs1, in.Rs2, in.Imm), nil

	case op == SLLI || op == SRLI || op == SRAI:
		if in.Imm < 0 || in.Imm > 63 {
			return 0, &EncodeError{op, "shamt", in.Imm, "must be 0..63"}
		}
		f3, top := uint32(1), uint32(0)
		if op != SLLI {
			f3 = 5
		}
		if op == SRAI {
			top = 0x10 // funct7[5] set, encoded over imm[11:6]
		}
		return encI(opcOpImm, f3, in.Rd, in.Rs1, int64(top<<6)|in.Imm), nil

	case op == SLLIW || op == SRLIW || op == SRAIW:
		if in.Imm < 0 || in.Imm > 31 {
			return 0, &EncodeError{op, "shamt", in.Imm, "must be 0..31"}
		}
		f3, top := uint32(1), uint32(0)
		if op != SLLIW {
			f3 = 5
		}
		if op == SRAIW {
			top = 0x20
		}
		return encI(opcOpImmW, f3, in.Rd, in.Rs1, int64(top<<5)|in.Imm), nil

	case op == ADDIW:
		if !fitsSigned(in.Imm, 12) {
			return 0, &EncodeError{op, "imm", in.Imm, "must fit 12 bits"}
		}
		return encI(opcOpImmW, 0, in.Rd, in.Rs1, in.Imm), nil

	case immALUF3[op] != 0 || op == ADDI:
		if !fitsSigned(in.Imm, 12) {
			return 0, &EncodeError{op, "imm", in.Imm, "must fit 12 bits"}
		}
		return encI(opcOpImm, immALUF3[op], in.Rd, in.Rs1, in.Imm), nil

	case op == ECALL:
		return encI(opcSystem, 0, 0, 0, 0), nil
	case op == EBREAK:
		return encI(opcSystem, 0, 0, 0, 1), nil
	case op == FENCE:
		return encI(opcFence, 0, 0, 0, 0x0ff), nil

	case csrF3[op] != 0:
		if in.Imm < 0 || in.Imm > 0xfff {
			return 0, &EncodeError{op, "csr", in.Imm, "must fit 12 bits unsigned"}
		}
		return encI(opcSystem, csrF3[op], in.Rd, in.Rs1, in.Imm), nil

	default:
		if spec, ok := rOps[op]; ok {
			return encR(opcOp, spec.f3, spec.f7, in.Rd, in.Rs1, in.Rs2), nil
		}
		if spec, ok := rwOps[op]; ok {
			return encR(opcOpW, spec.f3, spec.f7, in.Rd, in.Rs1, in.Rs2), nil
		}
		return 0, &EncodeError{op, "op", int64(op), "unknown opcode"}
	}
}

// MustEncode is Encode for operands known to be in range; it panics on
// encoding failure and is intended for compiler-generated code paths
// whose operands are validated earlier.
func MustEncode(in Inst) uint32 {
	w, err := Encode(in)
	if err != nil {
		panic(err)
	}
	return w
}
