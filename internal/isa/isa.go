// Package isa defines the RV64IM instruction set used by the ROLoad
// prototype, extended with the ROLoad-family instructions (ld.ro, lw.ro,
// lh.ro, lb.ro and the compressed c.ld.ro).
//
// The ROLoad-family instructions behave like their regular load
// counterparts except that the 12-bit immediate field carries a *page
// key* instead of an address offset, and the hardware refuses to
// complete the load unless the accessed page is read-only and tagged
// with exactly that key. This mirrors the encoding choice in the paper
// (Section III-A): "ld.ro-family instructions no longer have any
// address offset encoded in their immediates".
package isa

import "fmt"

// Reg is a RISC-V integer register number (x0..x31).
type Reg uint8

// Canonical register numbers with their ABI mnemonics.
const (
	Zero Reg = iota // x0: hardwired zero
	RA              // x1: return address
	SP              // x2: stack pointer
	GP              // x3: global pointer
	TP              // x4: thread pointer
	T0              // x5
	T1              // x6
	T2              // x7
	S0              // x8 / fp
	S1              // x9
	A0              // x10
	A1              // x11
	A2              // x12
	A3              // x13
	A4              // x14
	A5              // x15
	A6              // x16
	A7              // x17
	S2              // x18
	S3              // x19
	S4              // x20
	S5              // x21
	S6              // x22
	S7              // x23
	S8              // x24
	S9              // x25
	S10             // x26
	S11             // x27
	T3              // x28
	T4              // x29
	T5              // x30
	T6              // x31

	NumRegs = 32
)

var regNames = [NumRegs]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// String returns the ABI name of the register (e.g. "a0").
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("x%d", uint8(r))
}

// RegByName resolves an ABI name ("a0") or numeric name ("x10") to a
// register number.
func RegByName(name string) (Reg, bool) {
	for i, n := range regNames {
		if n == name {
			return Reg(i), true
		}
	}
	if name == "fp" {
		return S0, true
	}
	var n int
	if _, err := fmt.Sscanf(name, "x%d", &n); err == nil && n >= 0 && n < NumRegs {
		return Reg(n), true
	}
	return 0, false
}

// Op enumerates every instruction mnemonic understood by the core.
type Op uint16

const (
	OpInvalid Op = iota

	// RV64I upper-immediate and jumps.
	LUI
	AUIPC
	JAL
	JALR

	// Conditional branches.
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU

	// Loads.
	LB
	LH
	LW
	LD
	LBU
	LHU
	LWU

	// Stores.
	SB
	SH
	SW
	SD

	// Immediate ALU.
	ADDI
	SLTI
	SLTIU
	XORI
	ORI
	ANDI
	SLLI
	SRLI
	SRAI

	// Register ALU.
	ADD
	SUB
	SLL
	SLT
	SLTU
	XOR
	SRL
	SRA
	OR
	AND

	// RV64I word ops.
	ADDIW
	SLLIW
	SRLIW
	SRAIW
	ADDW
	SUBW
	SLLW
	SRLW
	SRAW

	// System.
	ECALL
	EBREAK
	FENCE
	CSRRW
	CSRRS
	CSRRC

	// RV64M.
	MUL
	MULH
	MULHSU
	MULHU
	DIV
	DIVU
	REM
	REMU
	MULW
	DIVW
	DIVUW
	REMW
	REMUW

	// ROLoad family (this paper's ISA extension). The immediate field
	// carries the page key, not an offset.
	LBRO
	LHRO
	LWRO
	LDRO

	numOps
)

var opNames = map[Op]string{
	LUI: "lui", AUIPC: "auipc", JAL: "jal", JALR: "jalr",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", BLTU: "bltu", BGEU: "bgeu",
	LB: "lb", LH: "lh", LW: "lw", LD: "ld", LBU: "lbu", LHU: "lhu", LWU: "lwu",
	SB: "sb", SH: "sh", SW: "sw", SD: "sd",
	ADDI: "addi", SLTI: "slti", SLTIU: "sltiu", XORI: "xori", ORI: "ori", ANDI: "andi",
	SLLI: "slli", SRLI: "srli", SRAI: "srai",
	ADD: "add", SUB: "sub", SLL: "sll", SLT: "slt", SLTU: "sltu",
	XOR: "xor", SRL: "srl", SRA: "sra", OR: "or", AND: "and",
	ADDIW: "addiw", SLLIW: "slliw", SRLIW: "srliw", SRAIW: "sraiw",
	ADDW: "addw", SUBW: "subw", SLLW: "sllw", SRLW: "srlw", SRAW: "sraw",
	ECALL: "ecall", EBREAK: "ebreak", FENCE: "fence",
	CSRRW: "csrrw", CSRRS: "csrrs", CSRRC: "csrrc",
	MUL: "mul", MULH: "mulh", MULHSU: "mulhsu", MULHU: "mulhu",
	DIV: "div", DIVU: "divu", REM: "rem", REMU: "remu",
	MULW: "mulw", DIVW: "divw", DIVUW: "divuw", REMW: "remw", REMUW: "remuw",
	LBRO: "lb.ro", LHRO: "lh.ro", LWRO: "lw.ro", LDRO: "ld.ro",
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, name := range opNames {
		m[name] = op
	}
	return m
}()

// String returns the assembler mnemonic for the opcode.
func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", uint16(o))
}

// OpByName resolves a mnemonic to an opcode.
func OpByName(name string) (Op, bool) {
	op, ok := opByName[name]
	return op, ok
}

// Ops returns every defined opcode (OpInvalid excluded) in declaration
// order, for exhaustive table-driven tests over the instruction set.
func Ops() []Op {
	out := make([]Op, 0, int(numOps)-1)
	for o := OpInvalid + 1; o < numOps; o++ {
		out = append(out, o)
	}
	return out
}

// IsROLoad reports whether the opcode belongs to the ROLoad family.
func (o Op) IsROLoad() bool {
	return o == LBRO || o == LHRO || o == LWRO || o == LDRO
}

// IsLoad reports whether the opcode reads data memory.
func (o Op) IsLoad() bool {
	switch o {
	case LB, LH, LW, LD, LBU, LHU, LWU, LBRO, LHRO, LWRO, LDRO:
		return true
	}
	return false
}

// IsStore reports whether the opcode writes data memory.
func (o Op) IsStore() bool {
	switch o {
	case SB, SH, SW, SD:
		return true
	}
	return false
}

// IsBranch reports whether the opcode is a conditional branch.
func (o Op) IsBranch() bool {
	switch o {
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		return true
	}
	return false
}

// LoadWidth returns the access width in bytes of a load/store opcode
// and whether the loaded value is zero-extended.
func (o Op) LoadWidth() (bytes int, unsigned bool) {
	switch o {
	case LB, LBRO, SB:
		return 1, false
	case LH, LHRO, SH:
		return 2, false
	case LW, LWRO, SW:
		return 4, false
	case LD, LDRO, SD:
		return 8, false
	case LBU:
		return 1, true
	case LHU:
		return 2, true
	case LWU:
		return 4, true
	}
	return 0, false
}

// MaxKey is the largest page key encodable both in a ROLoad instruction
// immediate and in the reserved top bits of an Sv39 PTE (10 bits).
const MaxKey = 1<<10 - 1

// Inst is one decoded instruction.
type Inst struct {
	Op   Op
	Rd   Reg
	Rs1  Reg
	Rs2  Reg
	Imm  int64  // sign-extended immediate (offset, shamt, or CSR number)
	Key  uint16 // page key for ROLoad-family instructions
	Size uint8  // encoded size in bytes: 4, or 2 for compressed forms
	Raw  uint32 // original encoding (lower 16 bits valid when Size==2)
}

// String renders the instruction in assembler syntax.
func (in Inst) String() string {
	switch {
	case in.Op == OpInvalid:
		return fmt.Sprintf(".word 0x%08x", in.Raw)
	case in.Op.IsROLoad():
		return fmt.Sprintf("%s %s, (%s), %d", in.Op, in.Rd, in.Rs1, in.Key)
	case in.Op.IsLoad():
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Rs1)
	case in.Op.IsStore():
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case in.Op.IsBranch():
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rs1, in.Rs2, in.Imm)
	case in.Op == JAL:
		return fmt.Sprintf("jal %s, %d", in.Rd, in.Imm)
	case in.Op == JALR:
		return fmt.Sprintf("jalr %s, %d(%s)", in.Rd, in.Imm, in.Rs1)
	case in.Op == LUI || in.Op == AUIPC:
		return fmt.Sprintf("%s %s, 0x%x", in.Op, in.Rd, uint64(in.Imm)>>12&0xfffff)
	case in.Op == ECALL || in.Op == EBREAK || in.Op == FENCE:
		return in.Op.String()
	case in.Op == CSRRW || in.Op == CSRRS || in.Op == CSRRC:
		return fmt.Sprintf("%s %s, %#x, %s", in.Op, in.Rd, uint64(in.Imm)&0xfff, in.Rs1)
	case isImmALU(in.Op):
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	default:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs1, in.Rs2)
	}
}

func isImmALU(o Op) bool {
	switch o {
	case ADDI, SLTI, SLTIU, XORI, ORI, ANDI, SLLI, SRLI, SRAI,
		ADDIW, SLLIW, SRLIW, SRAIW:
		return true
	}
	return false
}
