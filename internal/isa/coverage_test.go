// Disassembler coverage: every encodable opcode must render to
// non-empty assembler text that the assembler parses back to the same
// encoding. Lives in an external test package so it can use the
// assembler without an import cycle.
package isa_test

import (
	"encoding/binary"
	"strings"
	"testing"

	"roload/internal/asm"
	"roload/internal/isa"
)

// representative builds a valid instance of op with operand values
// inside every encoder constraint (even, in-range immediates).
func representative(op isa.Op) isa.Inst {
	in := isa.Inst{Op: op, Rd: isa.A0, Rs1: isa.A1, Rs2: isa.A2, Size: 4}
	switch {
	case op == isa.LUI || op == isa.AUIPC:
		in.Imm = 0x2000 // low 12 bits zero
	case op == isa.JAL:
		in.Rd, in.Imm = isa.RA, 8
	case op == isa.JALR:
		in.Rd, in.Rs1, in.Imm = isa.RA, isa.A0, 16
	case op.IsBranch():
		in.Imm = 8
	case op.IsROLoad():
		in.Key = 5
	case op.IsLoad():
		in.Imm = 16
	case op.IsStore():
		in.Rs2, in.Imm = isa.A0, 16
	case op == isa.CSRRW || op == isa.CSRRS || op == isa.CSRRC:
		in.Imm = 0x342
	case op == isa.ECALL || op == isa.EBREAK || op == isa.FENCE:
		in.Rd, in.Rs1, in.Rs2 = isa.Zero, isa.Zero, isa.Zero
	case op == isa.SLLI || op == isa.SRLI || op == isa.SRAI ||
		op == isa.SLLIW || op == isa.SRLIW || op == isa.SRAIW:
		in.Imm = 5
	case isImmALUOp(op):
		in.Imm = 5
	}
	return in
}

func isImmALUOp(op isa.Op) bool {
	switch op {
	case isa.ADDI, isa.SLTI, isa.SLTIU, isa.XORI, isa.ORI, isa.ANDI, isa.ADDIW:
		return true
	}
	return false
}

// TestDisasmCoverage walks the full opcode space: encode a
// representative instruction, decode it, render it, and feed the text
// back through the assembler. The re-assembled bytes must reproduce
// the original encoding exactly.
func TestDisasmCoverage(t *testing.T) {
	ops := isa.Ops()
	if len(ops) < 60 {
		t.Fatalf("Ops() returned only %d opcodes", len(ops))
	}
	for _, op := range ops {
		in := representative(op)
		raw, err := isa.Encode(in)
		if err != nil {
			t.Errorf("%v: representative does not encode: %v", op, err)
			continue
		}
		dec := isa.Decode(raw)
		if dec.Op != op {
			t.Errorf("%v: decoded back as %v", op, dec.Op)
			continue
		}
		text := dec.String()
		if text == "" || strings.Contains(text, "op(") || strings.Contains(text, ".word") {
			t.Errorf("%v: disassembles to %q", op, text)
			continue
		}
		img, err := asm.Assemble("_start:\n\t"+text+"\n", asm.DefaultOptions())
		if err != nil {
			t.Errorf("%v: %q does not re-assemble: %v", op, text, err)
			continue
		}
		code := textBytes(t, img)
		if len(code) < 4 {
			t.Errorf("%v: re-assembled image has %d code bytes", op, len(code))
			continue
		}
		if got := binary.LittleEndian.Uint32(code); got != raw {
			t.Errorf("%v: %q re-assembles to %#08x, want %#08x", op, text, got, raw)
		}
	}
}

func textBytes(t *testing.T, img *asm.Image) []byte {
	t.Helper()
	for _, sec := range img.Sections {
		if sec.Perm&asm.PermExec != 0 {
			return sec.Data
		}
	}
	t.Fatal("no executable section")
	return nil
}
