package isa

import (
	"encoding/binary"
	"strings"
	"testing"
)

func TestDisassembleMixedWidths(t *testing.T) {
	var code []byte
	w32 := func(in Inst) {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], MustEncode(in))
		code = append(code, buf[:]...)
	}
	w16 := func(in Inst) {
		raw, ok := TryCompress(in)
		if !ok {
			t.Fatalf("cannot compress %v", in)
		}
		code = append(code, byte(raw), byte(raw>>8))
	}
	w32(Inst{Op: ADDI, Rd: A0, Rs1: Zero, Imm: 5})
	w16(Inst{Op: ADDI, Rd: A0, Rs1: A0, Imm: 1})
	w16(Inst{Op: LDRO, Rd: A1, Rs1: A0, Key: 9})
	w32(Inst{Op: JAL, Rd: Zero, Imm: -12})
	w32(Inst{Op: ECALL})

	lines := Disassemble(code, 0x10000)
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5", len(lines))
	}
	wantAddrs := []uint64{0x10000, 0x10004, 0x10006, 0x10008, 0x1000c}
	wantOps := []Op{ADDI, ADDI, LDRO, JAL, ECALL}
	for i, l := range lines {
		if l.Addr != wantAddrs[i] {
			t.Errorf("line %d addr = %#x, want %#x", i, l.Addr, wantAddrs[i])
		}
		if l.Inst.Op != wantOps[i] {
			t.Errorf("line %d op = %v, want %v", i, l.Inst.Op, wantOps[i])
		}
	}

	text := DisassembleText(code, 0x10000)
	if !strings.Contains(text, "ld.ro a1, (a0), 9") {
		t.Errorf("missing ld.ro rendering:\n%s", text)
	}
	if !strings.Contains(text, "-> 0xfffc") {
		t.Errorf("missing jump target annotation:\n%s", text)
	}
}

func TestDisassembleTruncated(t *testing.T) {
	// A lone byte and a dangling 32-bit prefix must not panic.
	if got := Disassemble([]byte{0x13}, 0); got != nil {
		t.Errorf("single byte decoded: %v", got)
	}
	// 0x..03 marks a 4-byte encoding but only 2 bytes remain.
	if got := Disassemble([]byte{0x03, 0x00}, 0); got != nil {
		t.Errorf("dangling prefix decoded: %v", got)
	}
}

func TestDisassembleInvalid(t *testing.T) {
	lines := Disassemble([]byte{0xff, 0xff, 0xff, 0xff}, 0)
	if len(lines) != 1 || lines[0].Inst.Op != OpInvalid {
		t.Fatalf("lines = %+v", lines)
	}
	if !strings.Contains(lines[0].String(), ".word") {
		t.Errorf("invalid rendering = %q", lines[0].String())
	}
}
