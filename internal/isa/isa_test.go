package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegNames(t *testing.T) {
	cases := []struct {
		r    Reg
		name string
	}{
		{Zero, "zero"}, {RA, "ra"}, {SP, "sp"}, {GP, "gp"},
		{A0, "a0"}, {A7, "a7"}, {S0, "s0"}, {T6, "t6"},
	}
	for _, c := range cases {
		if c.r.String() != c.name {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, c.r.String(), c.name)
		}
		got, ok := RegByName(c.name)
		if !ok || got != c.r {
			t.Errorf("RegByName(%q) = %v,%v, want %v", c.name, got, ok, c.r)
		}
	}
	if r, ok := RegByName("fp"); !ok || r != S0 {
		t.Errorf("RegByName(fp) = %v,%v, want s0", r, ok)
	}
	if r, ok := RegByName("x17"); !ok || r != A7 {
		t.Errorf("RegByName(x17) = %v,%v, want a7", r, ok)
	}
	if _, ok := RegByName("bogus"); ok {
		t.Error("RegByName(bogus) succeeded")
	}
	if _, ok := RegByName("x32"); ok {
		t.Error("RegByName(x32) succeeded")
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	for op, name := range opNames {
		got, ok := OpByName(name)
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v,%v, want %v", name, got, ok, op)
		}
	}
	if _, ok := OpByName("ld.rw"); ok {
		t.Error("OpByName accepted unknown mnemonic")
	}
}

func TestOpPredicates(t *testing.T) {
	if !LDRO.IsROLoad() || !LDRO.IsLoad() {
		t.Error("ld.ro must be both a ROLoad and a load")
	}
	if LD.IsROLoad() {
		t.Error("ld must not be a ROLoad")
	}
	if !SD.IsStore() || SD.IsLoad() {
		t.Error("sd predicate wrong")
	}
	if !BEQ.IsBranch() || JAL.IsBranch() {
		t.Error("branch predicate wrong")
	}
	w, u := LWU.LoadWidth()
	if w != 4 || !u {
		t.Errorf("LWU width = %d,%v, want 4,true", w, u)
	}
	w, u = LDRO.LoadWidth()
	if w != 8 || u {
		t.Errorf("LDRO width = %d,%v, want 8,false", w, u)
	}
}

// fixed sample instructions with independently computed encodings.
func TestEncodeKnownValues(t *testing.T) {
	cases := []struct {
		in   Inst
		want uint32
	}{
		// addi a0, a0, 1 -> imm=1 rs1=10 f3=0 rd=10 opc=0010011
		{Inst{Op: ADDI, Rd: A0, Rs1: A0, Imm: 1}, 0x00150513},
		// add a0, a1, a2
		{Inst{Op: ADD, Rd: A0, Rs1: A1, Rs2: A2}, 0x00c58533},
		// lui a0, 0x11 -> imm 0x11000
		{Inst{Op: LUI, Rd: A0, Imm: 0x11000}, 0x00011537},
		// ld a0, 8(sp)
		{Inst{Op: LD, Rd: A0, Rs1: SP, Imm: 8}, 0x00813503},
		// sd a0, -8(sp)
		{Inst{Op: SD, Rs1: SP, Rs2: A0, Imm: -8}, 0xfea13c23},
		// jalr ra, 0(a0)
		{Inst{Op: JALR, Rd: RA, Rs1: A0, Imm: 0}, 0x000500e7},
		// ecall
		{Inst{Op: ECALL}, 0x00000073},
		// ebreak
		{Inst{Op: EBREAK}, 0x00100073},
	}
	for _, c := range cases {
		got, err := Encode(c.in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("Encode(%v) = %#08x, want %#08x", c.in, got, c.want)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	cases := []Inst{
		{Op: ADDI, Rd: A0, Rs1: A0, Imm: 4096},        // imm too large
		{Op: LUI, Rd: A0, Imm: 0x123},                 // low bits set
		{Op: JAL, Rd: RA, Imm: 3},                     // odd target
		{Op: JAL, Rd: RA, Imm: 1 << 21},               // out of range
		{Op: BEQ, Rs1: A0, Rs2: A1, Imm: 1 << 13},     // out of range
		{Op: SLLI, Rd: A0, Rs1: A0, Imm: 64},          // shamt too large
		{Op: SLLIW, Rd: A0, Rs1: A0, Imm: 32},         // shamt too large
		{Op: LDRO, Rd: A0, Rs1: A0, Key: MaxKey + 1},  // key too large
		{Op: LD, Rd: A0, Rs1: SP, Imm: 1 << 12},       // offset too large
		{Op: SD, Rs1: SP, Rs2: A0, Imm: -(1<<11 + 1)}, // offset too small
		{Op: OpInvalid},
	}
	for _, c := range cases {
		if _, err := Encode(c); err == nil {
			t.Errorf("Encode(%v) succeeded, want error", c)
		}
	}
}

func TestMustEncodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEncode did not panic on bad operand")
		}
	}()
	MustEncode(Inst{Op: ADDI, Rd: A0, Rs1: A0, Imm: 1 << 20})
}

func normalize(in Inst) Inst {
	in.Raw = 0
	in.Size = 0
	return in
}

// TestEncodeDecodeRoundTrip exercises every opcode once with simple
// operands.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: LUI, Rd: A0, Imm: 0x7ffff000},
		{Op: AUIPC, Rd: T0, Imm: -4096},
		{Op: JAL, Rd: RA, Imm: -2048},
		{Op: JALR, Rd: RA, Rs1: A0, Imm: 16},
		{Op: BEQ, Rs1: A0, Rs2: A1, Imm: -8},
		{Op: BNE, Rs1: S0, Rs2: S1, Imm: 4094},
		{Op: BLT, Rs1: T0, Rs2: T1, Imm: 64},
		{Op: BGE, Rs1: A2, Rs2: A3, Imm: -4096},
		{Op: BLTU, Rs1: A4, Rs2: A5, Imm: 2},
		{Op: BGEU, Rs1: A6, Rs2: A7, Imm: 100},
		{Op: LB, Rd: A0, Rs1: SP, Imm: -1},
		{Op: LH, Rd: A1, Rs1: GP, Imm: 2},
		{Op: LW, Rd: A2, Rs1: TP, Imm: 4},
		{Op: LD, Rd: A3, Rs1: S0, Imm: 2040},
		{Op: LBU, Rd: A4, Rs1: S1, Imm: 0},
		{Op: LHU, Rd: A5, Rs1: T3, Imm: -2048},
		{Op: LWU, Rd: A6, Rs1: T4, Imm: 12},
		{Op: SB, Rs1: SP, Rs2: A0, Imm: -4},
		{Op: SH, Rs1: GP, Rs2: A1, Imm: 6},
		{Op: SW, Rs1: S2, Rs2: A2, Imm: 1000},
		{Op: SD, Rs1: S3, Rs2: A3, Imm: -2000},
		{Op: ADDI, Rd: A0, Rs1: A1, Imm: -7},
		{Op: SLTI, Rd: A1, Rs1: A2, Imm: 5},
		{Op: SLTIU, Rd: A2, Rs1: A3, Imm: 9},
		{Op: XORI, Rd: A3, Rs1: A4, Imm: -1},
		{Op: ORI, Rd: A4, Rs1: A5, Imm: 0x55},
		{Op: ANDI, Rd: A5, Rs1: A6, Imm: 0xf},
		{Op: SLLI, Rd: A0, Rs1: A0, Imm: 63},
		{Op: SRLI, Rd: A1, Rs1: A1, Imm: 1},
		{Op: SRAI, Rd: A2, Rs1: A2, Imm: 32},
		{Op: ADD, Rd: A0, Rs1: A1, Rs2: A2},
		{Op: SUB, Rd: A1, Rs1: A2, Rs2: A3},
		{Op: SLL, Rd: A2, Rs1: A3, Rs2: A4},
		{Op: SLT, Rd: A3, Rs1: A4, Rs2: A5},
		{Op: SLTU, Rd: A4, Rs1: A5, Rs2: A6},
		{Op: XOR, Rd: A5, Rs1: A6, Rs2: A7},
		{Op: SRL, Rd: A6, Rs1: A7, Rs2: S2},
		{Op: SRA, Rd: A7, Rs1: S2, Rs2: S3},
		{Op: OR, Rd: S2, Rs1: S3, Rs2: S4},
		{Op: AND, Rd: S3, Rs1: S4, Rs2: S5},
		{Op: ADDIW, Rd: A0, Rs1: A1, Imm: -128},
		{Op: SLLIW, Rd: A1, Rs1: A2, Imm: 31},
		{Op: SRLIW, Rd: A2, Rs1: A3, Imm: 0},
		{Op: SRAIW, Rd: A3, Rs1: A4, Imm: 15},
		{Op: ADDW, Rd: A0, Rs1: A1, Rs2: A2},
		{Op: SUBW, Rd: A1, Rs1: A2, Rs2: A3},
		{Op: SLLW, Rd: A2, Rs1: A3, Rs2: A4},
		{Op: SRLW, Rd: A3, Rs1: A4, Rs2: A5},
		{Op: SRAW, Rd: A4, Rs1: A5, Rs2: A6},
		{Op: ECALL},
		{Op: EBREAK},
		{Op: FENCE},
		{Op: CSRRW, Rd: A0, Rs1: A1, Imm: 0x300},
		{Op: CSRRS, Rd: A1, Rs1: Zero, Imm: 0xc00},
		{Op: CSRRC, Rd: A2, Rs1: A3, Imm: 0x305},
		{Op: MUL, Rd: A0, Rs1: A1, Rs2: A2},
		{Op: MULH, Rd: A1, Rs1: A2, Rs2: A3},
		{Op: MULHSU, Rd: A2, Rs1: A3, Rs2: A4},
		{Op: MULHU, Rd: A3, Rs1: A4, Rs2: A5},
		{Op: DIV, Rd: A4, Rs1: A5, Rs2: A6},
		{Op: DIVU, Rd: A5, Rs1: A6, Rs2: A7},
		{Op: REM, Rd: A6, Rs1: A7, Rs2: S2},
		{Op: REMU, Rd: A7, Rs1: S2, Rs2: S3},
		{Op: MULW, Rd: A0, Rs1: A1, Rs2: A2},
		{Op: DIVW, Rd: A1, Rs1: A2, Rs2: A3},
		{Op: DIVUW, Rd: A2, Rs1: A3, Rs2: A4},
		{Op: REMW, Rd: A3, Rs1: A4, Rs2: A5},
		{Op: REMUW, Rd: A4, Rs1: A5, Rs2: A6},
		{Op: LBRO, Rd: A0, Rs1: A1, Key: 0},
		{Op: LHRO, Rd: A1, Rs1: A2, Key: 7},
		{Op: LWRO, Rd: A2, Rs1: A3, Key: 111},
		{Op: LDRO, Rd: A3, Rs1: A4, Key: MaxKey},
	}
	for _, c := range cases {
		raw, err := Encode(c)
		if err != nil {
			t.Fatalf("Encode(%v): %v", c, err)
		}
		got := Decode(raw)
		if got.Size != 4 {
			t.Errorf("Decode(%v).Size = %d, want 4", c, got.Size)
		}
		// Zero/ALU ops leave unused register fields at zero in both.
		if normalize(got) != normalize(c) {
			t.Errorf("roundtrip %v: got %+v want %+v", c.Op, normalize(got), normalize(c))
		}
	}
}

// Property: any ld.ro with in-range operands survives an
// encode/decode roundtrip with its key intact.
func TestQuickROLoadRoundTrip(t *testing.T) {
	f := func(rd, rs1 uint8, key uint16, which uint8) bool {
		ops := [4]Op{LBRO, LHRO, LWRO, LDRO}
		in := Inst{
			Op:  ops[which%4],
			Rd:  Reg(rd % 32),
			Rs1: Reg(rs1 % 32),
			Key: key & MaxKey,
		}
		raw, err := Encode(in)
		if err != nil {
			return false
		}
		out := Decode(raw)
		return normalize(out) == normalize(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: branch immediates roundtrip through the scattered B-type
// encoding.
func TestQuickBranchImmRoundTrip(t *testing.T) {
	f := func(rs1, rs2 uint8, imm int16) bool {
		off := (int64(imm) % 4096) &^ 1 // force even, within ±4 KiB
		in := Inst{Op: BNE, Rs1: Reg(rs1 % 32), Rs2: Reg(rs2 % 32), Imm: off}
		raw, err := Encode(in)
		if err != nil {
			return false
		}
		return Decode(raw).Imm == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: JAL immediates roundtrip through the scattered J-type
// encoding.
func TestQuickJALImmRoundTrip(t *testing.T) {
	f := func(rd uint8, imm int32) bool {
		off := (int64(imm) % (1 << 20)) &^ 1
		in := Inst{Op: JAL, Rd: Reg(rd % 32), Imm: off}
		raw, err := Encode(in)
		if err != nil {
			return false
		}
		out := Decode(raw)
		return out.Op == JAL && out.Imm == off && out.Rd == in.Rd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: decoding arbitrary 32-bit words never panics and marks
// unknown encodings invalid rather than misdecoding.
func TestQuickDecodeTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		raw := rng.Uint32()
		in := Decode(raw)
		if raw&3 == 3 && in.Size != 4 {
			t.Fatalf("Decode(%#x).Size = %d, want 4", raw, in.Size)
		}
		if raw&3 != 3 && in.Size != 2 {
			t.Fatalf("Decode(%#x).Size = %d, want 2", raw, in.Size)
		}
	}
}

// Exhaustive 16-bit sweep: every possible compressed parcel must
// decode without panicking, and every parcel that decodes to a valid
// instruction must re-encode (via TryCompress of the decoded form)
// back to itself when TryCompress supports that form — a strong
// consistency check between the two RVC tables.
func TestExhaustiveCompressedSweep(t *testing.T) {
	for raw := 0; raw < 1<<16; raw++ {
		if raw&3 == 3 {
			continue // 32-bit space
		}
		in := decodeCompressed(uint16(raw))
		if in.Size != 2 {
			t.Fatalf("%#04x: size = %d", raw, in.Size)
		}
		if in.Op == OpInvalid {
			continue
		}
		re, ok := TryCompress(in)
		if !ok {
			continue // decode-only forms (c.addi4spn, c.lui, ...) are fine
		}
		back := decodeCompressed(re)
		a, b := in, back
		a.Raw, b.Raw = 0, 0
		if a != b {
			t.Fatalf("%#04x: decode %+v -> compress %#04x -> decode %+v", raw, in, re, back)
		}
	}
}

func TestDecodeCompressedKnown(t *testing.T) {
	// c.ld.ro a0, (a1), 21: f3=100, key=10101
	raw, ok := TryCompress(Inst{Op: LDRO, Rd: A0, Rs1: A1, Key: 21})
	if !ok {
		t.Fatal("TryCompress(c.ld.ro) failed")
	}
	in := decodeCompressed(raw)
	if in.Op != LDRO || in.Rd != A0 || in.Rs1 != A1 || in.Key != 21 {
		t.Errorf("c.ld.ro decode = %+v", in)
	}
	if in.Size != 2 {
		t.Errorf("compressed size = %d, want 2", in.Size)
	}
}

func TestTryCompressRejections(t *testing.T) {
	cases := []Inst{
		{Op: LDRO, Rd: A0, Rs1: A1, Key: 32},     // key too large for c.ld.ro
		{Op: LDRO, Rd: T6, Rs1: A1, Key: 1},      // rd not a C register
		{Op: LD, Rd: A0, Rs1: A1, Imm: 7},        // unaligned offset
		{Op: LD, Rd: A0, Rs1: A1, Imm: 256},      // offset too large
		{Op: ADDI, Rd: A0, Rs1: A1, Imm: 1},      // rd != rs1, not c.li
		{Op: SUB, Rd: A0, Rs1: A0, Rs2: A1},      // no c.sub for non-prime regs? a0 is prime; but rd==rs1 handled
		{Op: BEQ, Rs1: A0, Rs2: A1, Imm: 4},      // rs2 != zero
		{Op: JALR, Rd: RA, Rs1: A0, Imm: 8},      // nonzero offset
		{Op: SLLI, Rd: Zero, Rs1: Zero, Imm: 1},  // rd == x0
		{Op: ADD, Rd: Zero, Rs1: Zero, Rs2: A1},  // rd == x0
		{Op: MUL, Rd: A0, Rs1: A1, Rs2: A2},      // no compressed mul
		{Op: LWU, Rd: A0, Rs1: A1, Imm: 0},       // no compressed lwu
		{Op: SD, Rs1: A1, Rs2: A0, Imm: 257},     // unaligned
		{Op: ADDIW, Rd: Zero, Rs1: Zero, Imm: 1}, // rd == x0
		{Op: ADDI, Rd: A0, Rs1: A0, Imm: 100},    // imm too large for c.addi
		{Op: LBRO, Rd: A0, Rs1: A1, Key: 1},      // only ld.ro has a compressed form
	}
	for _, c := range cases {
		if c.Op == SUB {
			continue // documented: SUB on C registers does compress; skip
		}
		if _, ok := TryCompress(c); ok {
			t.Errorf("TryCompress(%+v) succeeded, want rejection", c)
		}
	}
}

// Property: every successful TryCompress decodes back to an equivalent
// instruction.
func TestQuickCompressRoundTrip(t *testing.T) {
	f := func(rd, rs1, rs2 uint8, imm int16, key uint16, sel uint8) bool {
		var in Inst
		switch sel % 6 {
		case 0:
			in = Inst{Op: LDRO, Rd: Reg(rd % 32), Rs1: Reg(rs1 % 32), Key: key % 64}
		case 1:
			in = Inst{Op: LD, Rd: Reg(rd % 32), Rs1: Reg(rs1 % 32), Imm: int64(imm) & 0xff &^ 7}
		case 2:
			in = Inst{Op: SD, Rs1: Reg(rs1 % 32), Rs2: Reg(rs2 % 32), Imm: int64(imm) & 0xff &^ 7}
		case 3:
			in = Inst{Op: ADDI, Rd: Reg(rd % 32), Rs1: Reg(rd % 32), Imm: int64(imm % 32)}
		case 4:
			in = Inst{Op: ADD, Rd: Reg(rd % 32), Rs1: Reg(rd % 32), Rs2: Reg(rs2%31) + 1}
		case 5:
			in = Inst{Op: SLLI, Rd: Reg(rd % 32), Rs1: Reg(rd % 32), Imm: int64(imm%63) + 1}
		}
		raw, ok := TryCompress(in)
		if !ok {
			return true // rejection is always acceptable
		}
		out := decodeCompressed(raw)
		if out.Op != in.Op && !(in.Op == ADD && out.Op == ADD) {
			return false
		}
		// Compare semantics field by field.
		return out.Rd == in.Rd && out.Rs1 == in.Rs1 && out.Rs2 == in.Rs2 &&
			out.Imm == in.Imm && out.Key == in.Key
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: LDRO, Rd: A0, Rs1: A0, Key: 111}, "ld.ro a0, (a0), 111"},
		{Inst{Op: LD, Rd: A0, Rs1: GP, Imm: -1608}, "ld a0, -1608(gp)"},
		{Inst{Op: SD, Rs1: GP, Rs2: A0, Imm: -1608}, "sd a0, -1608(gp)"},
		{Inst{Op: JALR, Rd: Zero, Rs1: A0}, "jalr zero, 0(a0)"},
		{Inst{Op: BEQ, Rs1: A0, Rs2: A1, Imm: 16}, "beq a0, a1, 16"},
		{Inst{Op: LUI, Rd: A0, Imm: 0x11000}, "lui a0, 0x11"},
		{Inst{Op: ADDI, Rd: A0, Rs1: A0, Imm: 604}, "addi a0, a0, 604"},
		{Inst{Op: ADD, Rd: A0, Rs1: A1, Rs2: A2}, "add a0, a1, a2"},
		{Inst{Op: ECALL}, "ecall"},
		{Inst{Op: OpInvalid, Raw: 0xdeadbeef}, ".word 0xdeadbeef"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func BenchmarkDecode32(b *testing.B) {
	raw := MustEncode(Inst{Op: LDRO, Rd: A0, Rs1: A1, Key: 111})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Decode(raw)
	}
}

func BenchmarkDecodeCompressed(b *testing.B) {
	raw, _ := TryCompress(Inst{Op: LDRO, Rd: A0, Rs1: A1, Key: 21})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Decode(uint32(raw))
	}
}
