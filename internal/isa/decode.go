package isa

func signExtend(v uint64, bits uint) int64 {
	shift := 64 - bits
	return int64(v<<shift) >> shift
}

func immI(raw uint32) int64 { return signExtend(uint64(raw)>>20, 12) }

func immS(raw uint32) int64 {
	v := uint64(raw)>>25<<5 | uint64(raw)>>7&0x1f
	return signExtend(v, 12)
}

func immB(raw uint32) int64 {
	v := uint64(raw)>>31&1<<12 |
		uint64(raw)>>7&1<<11 |
		uint64(raw)>>25&0x3f<<5 |
		uint64(raw)>>8&0xf<<1
	return signExtend(v, 13)
}

func immU(raw uint32) int64 { return int64(int32(raw & 0xfffff000)) }

func immJ(raw uint32) int64 {
	v := uint64(raw)>>31&1<<20 |
		uint64(raw)>>12&0xff<<12 |
		uint64(raw)>>20&1<<11 |
		uint64(raw)>>21&0x3ff<<1
	return signExtend(v, 21)
}

var loadOpByF3 = [8]Op{LB, LH, LW, LD, LBU, LHU, LWU, OpInvalid}
var roLoadOpByF3 = [8]Op{LBRO, LHRO, LWRO, LDRO, OpInvalid, OpInvalid, OpInvalid, OpInvalid}
var storeOpByF3 = [8]Op{SB, SH, SW, SD, OpInvalid, OpInvalid, OpInvalid, OpInvalid}
var branchOpByF3 = [8]Op{BEQ, BNE, OpInvalid, OpInvalid, BLT, BGE, BLTU, BGEU}

// rOpByFunct/rwOpByFunct are the decode-side inverses of the rOps and
// rwOps encode tables, indexed by funct3 and a compressed funct7 code
// (0x00 -> 0, 0x20 -> 1, 0x01 -> 2). Precomputing them keeps the
// register-register decode path table-driven instead of scanning a map
// per instruction.
var rOpByFunct, rwOpByFunct [8][3]Op

func f7Code(f7 uint32) int {
	switch f7 {
	case 0x00:
		return 0
	case 0x20:
		return 1
	case 0x01:
		return 2
	}
	return -1
}

func init() {
	for op, spec := range rOps {
		rOpByFunct[spec.f3][f7Code(spec.f7)] = op
	}
	for op, spec := range rwOps {
		rwOpByFunct[spec.f3][f7Code(spec.f7)] = op
	}
}

// Decode decodes one instruction from raw. Only the low 16 bits are
// consulted when the encoding is compressed. The returned Inst has
// Size set to 2 or 4; an unrecognized encoding yields Op == OpInvalid
// with Size 4 (or 2 for a compressed quadrant).
func Decode(raw uint32) Inst {
	if raw&3 != 3 {
		return decodeCompressed(uint16(raw))
	}
	in := Inst{Raw: raw, Size: 4}
	rd := Reg(raw >> 7 & 0x1f)
	rs1 := Reg(raw >> 15 & 0x1f)
	rs2 := Reg(raw >> 20 & 0x1f)
	f3 := raw >> 12 & 7
	f7 := raw >> 25 & 0x7f

	switch raw & 0x7f {
	case opcLUI:
		in.Op, in.Rd, in.Imm = LUI, rd, immU(raw)
	case opcAUIPC:
		in.Op, in.Rd, in.Imm = AUIPC, rd, immU(raw)
	case opcJAL:
		in.Op, in.Rd, in.Imm = JAL, rd, immJ(raw)
	case opcJALR:
		if f3 == 0 {
			in.Op, in.Rd, in.Rs1, in.Imm = JALR, rd, rs1, immI(raw)
		}
	case opcBranch:
		if op := branchOpByF3[f3]; op != OpInvalid {
			in.Op, in.Rs1, in.Rs2, in.Imm = op, rs1, rs2, immB(raw)
		}
	case opcLoad:
		if op := loadOpByF3[f3]; op != OpInvalid {
			in.Op, in.Rd, in.Rs1, in.Imm = op, rd, rs1, immI(raw)
		}
	case opcROLoad:
		if op := roLoadOpByF3[f3]; op != OpInvalid {
			in.Op, in.Rd, in.Rs1 = op, rd, rs1
			in.Key = uint16(raw >> 20 & MaxKey)
		}
	case opcStore:
		if op := storeOpByF3[f3]; op != OpInvalid {
			in.Op, in.Rs1, in.Rs2, in.Imm = op, rs1, rs2, immS(raw)
		}
	case opcOpImm:
		in.Rd, in.Rs1 = rd, rs1
		switch f3 {
		case 0:
			in.Op, in.Imm = ADDI, immI(raw)
		case 1:
			if f7&0x3e == 0 {
				in.Op, in.Imm = SLLI, int64(raw>>20&0x3f)
			}
		case 2:
			in.Op, in.Imm = SLTI, immI(raw)
		case 3:
			in.Op, in.Imm = SLTIU, immI(raw)
		case 4:
			in.Op, in.Imm = XORI, immI(raw)
		case 5:
			switch f7 & 0x3e {
			case 0:
				in.Op, in.Imm = SRLI, int64(raw>>20&0x3f)
			case 0x20:
				in.Op, in.Imm = SRAI, int64(raw>>20&0x3f)
			}
		case 6:
			in.Op, in.Imm = ORI, immI(raw)
		case 7:
			in.Op, in.Imm = ANDI, immI(raw)
		}
	case opcOpImmW:
		in.Rd, in.Rs1 = rd, rs1
		switch f3 {
		case 0:
			in.Op, in.Imm = ADDIW, immI(raw)
		case 1:
			if f7 == 0 {
				in.Op, in.Imm = SLLIW, int64(rs2)
			}
		case 5:
			switch f7 {
			case 0:
				in.Op, in.Imm = SRLIW, int64(rs2)
			case 0x20:
				in.Op, in.Imm = SRAIW, int64(rs2)
			}
		}
	case opcOp:
		if c := f7Code(f7); c >= 0 {
			if op := rOpByFunct[f3][c]; op != OpInvalid {
				in.Op, in.Rd, in.Rs1, in.Rs2 = op, rd, rs1, rs2
			}
		}
	case opcOpW:
		if c := f7Code(f7); c >= 0 {
			if op := rwOpByFunct[f3][c]; op != OpInvalid {
				in.Op, in.Rd, in.Rs1, in.Rs2 = op, rd, rs1, rs2
			}
		}
	case opcSystem:
		switch {
		case f3 == 0 && raw>>20 == 0 && rs1 == 0 && rd == 0:
			in.Op = ECALL
		case f3 == 0 && raw>>20 == 1 && rs1 == 0 && rd == 0:
			in.Op = EBREAK
		case f3 >= 1 && f3 <= 3:
			ops := [4]Op{OpInvalid, CSRRW, CSRRS, CSRRC}
			in.Op, in.Rd, in.Rs1, in.Imm = ops[f3], rd, rs1, int64(raw>>20)
		}
	case opcFence:
		if f3 == 0 {
			in.Op = FENCE
		}
	}
	return in
}
