package isa

// Compressed (RVC) support.
//
// The ROLoad prototype extends the RISC-V C extension with c.ld.ro, the
// compressed form of ld.ro (paper Section III-A). We place it in the
// encoding slot that is reserved in quadrant 0 (funct3 = 100), using a
// CL-type layout in which the five bits that c.ld spends on its scaled
// offset carry the page key instead:
//
//	[15:13]=100 [12:10]=key[4:2] [9:7]=rs1' [6:5]=key[1:0] [4:2]=rd' [1:0]=00
//
// A compressed ROLoad can therefore only name keys 0..31; the compiler
// falls back to the 32-bit ld.ro for larger keys.

// MaxCompressedKey is the largest key encodable in c.ld.ro.
const MaxCompressedKey = 31

func creg(v uint16) Reg { return Reg(v&7) + 8 } // x8..x15

func isCReg(r Reg) bool { return r >= 8 && r <= 15 }

func decodeCompressed(raw uint16) Inst {
	in := Inst{Raw: uint32(raw), Size: 2}
	f3 := raw >> 13 & 7
	switch raw & 3 {
	case 0: // quadrant 0
		rdP := creg(raw >> 2)
		rs1P := creg(raw >> 7)
		switch f3 {
		case 0b000: // c.addi4spn
			imm := int64(raw>>7&0xf)<<6 | int64(raw>>11&3)<<4 |
				int64(raw>>5&1)<<3 | int64(raw>>6&1)<<2
			if imm != 0 {
				in.Op, in.Rd, in.Rs1, in.Imm = ADDI, rdP, SP, imm
			}
		case 0b010: // c.lw
			imm := int64(raw>>10&7)<<3 | int64(raw>>6&1)<<2 | int64(raw>>5&1)<<6
			in.Op, in.Rd, in.Rs1, in.Imm = LW, rdP, rs1P, imm
		case 0b011: // c.ld
			imm := int64(raw>>10&7)<<3 | int64(raw>>5&3)<<6
			in.Op, in.Rd, in.Rs1, in.Imm = LD, rdP, rs1P, imm
		case 0b100: // c.ld.ro (ROLoad extension; reserved slot in base RVC)
			key := uint16(raw>>10&7)<<2 | uint16(raw>>5&3)
			in.Op, in.Rd, in.Rs1, in.Key = LDRO, rdP, rs1P, key
		case 0b110: // c.sw
			imm := int64(raw>>10&7)<<3 | int64(raw>>6&1)<<2 | int64(raw>>5&1)<<6
			in.Op, in.Rs1, in.Rs2, in.Imm = SW, rs1P, rdP, imm
		case 0b111: // c.sd
			imm := int64(raw>>10&7)<<3 | int64(raw>>5&3)<<6
			in.Op, in.Rs1, in.Rs2, in.Imm = SD, rs1P, rdP, imm
		}
	case 1: // quadrant 1
		rd := Reg(raw >> 7 & 0x1f)
		switch f3 {
		case 0b000: // c.nop / c.addi
			in.Op, in.Rd, in.Rs1 = ADDI, rd, rd
			in.Imm = signExtend(uint64(raw>>12&1)<<5|uint64(raw>>2&0x1f), 6)
		case 0b001: // c.addiw
			if rd != 0 {
				in.Op, in.Rd, in.Rs1 = ADDIW, rd, rd
				in.Imm = signExtend(uint64(raw>>12&1)<<5|uint64(raw>>2&0x1f), 6)
			}
		case 0b010: // c.li
			in.Op, in.Rd, in.Rs1 = ADDI, rd, Zero
			in.Imm = signExtend(uint64(raw>>12&1)<<5|uint64(raw>>2&0x1f), 6)
		case 0b011:
			if rd == SP { // c.addi16sp
				v := uint64(raw>>12&1)<<9 | uint64(raw>>3&3)<<7 |
					uint64(raw>>5&1)<<6 | uint64(raw>>2&1)<<5 | uint64(raw>>6&1)<<4
				if v != 0 {
					in.Op, in.Rd, in.Rs1, in.Imm = ADDI, SP, SP, signExtend(v, 10)
				}
			} else if rd != 0 { // c.lui
				v := uint64(raw>>12&1)<<17 | uint64(raw>>2&0x1f)<<12
				if v != 0 {
					in.Op, in.Rd, in.Imm = LUI, rd, signExtend(v, 18)
				}
			}
		case 0b100: // ALU ops on rd'
			rdP := creg(raw >> 7)
			switch raw >> 10 & 3 {
			case 0: // c.srli
				in.Op, in.Rd, in.Rs1 = SRLI, rdP, rdP
				in.Imm = int64(raw>>12&1)<<5 | int64(raw>>2&0x1f)
			case 1: // c.srai
				in.Op, in.Rd, in.Rs1 = SRAI, rdP, rdP
				in.Imm = int64(raw>>12&1)<<5 | int64(raw>>2&0x1f)
			case 2: // c.andi
				in.Op, in.Rd, in.Rs1 = ANDI, rdP, rdP
				in.Imm = signExtend(uint64(raw>>12&1)<<5|uint64(raw>>2&0x1f), 6)
			case 3:
				rs2P := creg(raw >> 2)
				var op Op
				if raw>>12&1 == 0 {
					op = [4]Op{SUB, XOR, OR, AND}[raw>>5&3]
				} else {
					op = [4]Op{SUBW, ADDW, OpInvalid, OpInvalid}[raw>>5&3]
				}
				if op != OpInvalid {
					in.Op, in.Rd, in.Rs1, in.Rs2 = op, rdP, rdP, rs2P
				}
			}
		case 0b101: // c.j
			v := uint64(raw>>12&1)<<11 | uint64(raw>>11&1)<<4 |
				uint64(raw>>9&3)<<8 | uint64(raw>>8&1)<<10 |
				uint64(raw>>7&1)<<6 | uint64(raw>>6&1)<<7 |
				uint64(raw>>3&7)<<1 | uint64(raw>>2&1)<<5
			in.Op, in.Rd, in.Imm = JAL, Zero, signExtend(v, 12)
		case 0b110, 0b111: // c.beqz / c.bnez
			rs1P := creg(raw >> 7)
			v := uint64(raw>>12&1)<<8 | uint64(raw>>10&3)<<3 |
				uint64(raw>>5&3)<<6 | uint64(raw>>3&3)<<1 | uint64(raw>>2&1)<<5
			op := BEQ
			if f3 == 0b111 {
				op = BNE
			}
			in.Op, in.Rs1, in.Rs2, in.Imm = op, rs1P, Zero, signExtend(v, 9)
		}
	case 2: // quadrant 2
		rd := Reg(raw >> 7 & 0x1f)
		switch f3 {
		case 0b000: // c.slli
			if rd != 0 {
				in.Op, in.Rd, in.Rs1 = SLLI, rd, rd
				in.Imm = int64(raw>>12&1)<<5 | int64(raw>>2&0x1f)
			}
		case 0b010: // c.lwsp
			if rd != 0 {
				imm := int64(raw>>12&1)<<5 | int64(raw>>4&7)<<2 | int64(raw>>2&3)<<6
				in.Op, in.Rd, in.Rs1, in.Imm = LW, rd, SP, imm
			}
		case 0b011: // c.ldsp
			if rd != 0 {
				imm := int64(raw>>12&1)<<5 | int64(raw>>5&3)<<3 | int64(raw>>2&7)<<6
				in.Op, in.Rd, in.Rs1, in.Imm = LD, rd, SP, imm
			}
		case 0b100:
			rs2 := Reg(raw >> 2 & 0x1f)
			switch {
			case raw>>12&1 == 0 && rs2 == 0 && rd != 0: // c.jr
				in.Op, in.Rd, in.Rs1 = JALR, Zero, rd
			case raw>>12&1 == 0 && rs2 != 0 && rd != 0: // c.mv
				in.Op, in.Rd, in.Rs1, in.Rs2 = ADD, rd, Zero, rs2
			case raw>>12&1 == 1 && rs2 == 0 && rd == 0: // c.ebreak
				in.Op = EBREAK
			case raw>>12&1 == 1 && rs2 == 0 && rd != 0: // c.jalr
				in.Op, in.Rd, in.Rs1 = JALR, RA, rd
			case raw>>12&1 == 1 && rs2 != 0 && rd != 0: // c.add
				in.Op, in.Rd, in.Rs1, in.Rs2 = ADD, rd, rd, rs2
			}
		case 0b110: // c.swsp
			imm := int64(raw>>9&0xf)<<2 | int64(raw>>7&3)<<6
			in.Op, in.Rs1, in.Rs2, in.Imm = SW, SP, Reg(raw>>2&0x1f), imm
		case 0b111: // c.sdsp
			imm := int64(raw>>10&7)<<3 | int64(raw>>7&7)<<6
			in.Op, in.Rs1, in.Rs2, in.Imm = SD, SP, Reg(raw>>2&0x1f), imm
		}
	}
	return in
}

// TryCompress attempts to find a 16-bit encoding for in. It returns the
// compressed encoding and true on success. Only forms used by the code
// generator's compression pass are implemented; anything else simply
// reports false and keeps its 32-bit form.
func TryCompress(in Inst) (uint16, bool) {
	switch in.Op {
	case LDRO: // c.ld.ro
		if isCReg(in.Rd) && isCReg(in.Rs1) && in.Key <= MaxCompressedKey {
			return uint16(0b100)<<13 |
				uint16(in.Key>>2&7)<<10 | uint16(in.Rs1-8)<<7 |
				uint16(in.Key&3)<<5 | uint16(in.Rd-8)<<2, true
		}
	case LD: // c.ld / c.ldsp
		if isCReg(in.Rd) && isCReg(in.Rs1) && in.Imm >= 0 && in.Imm < 256 && in.Imm&7 == 0 {
			u := uint16(in.Imm)
			return uint16(0b011)<<13 |
				(u>>3&7)<<10 | uint16(in.Rs1-8)<<7 | (u>>6&3)<<5 | uint16(in.Rd-8)<<2, true
		}
		if in.Rd != 0 && in.Rs1 == SP && in.Imm >= 0 && in.Imm < 512 && in.Imm&7 == 0 {
			u := uint16(in.Imm)
			return uint16(0b011)<<13 | (u>>5&1)<<12 | uint16(in.Rd)<<7 |
				(u>>3&3)<<5 | (u>>6&7)<<2 | 2, true
		}
	case SD: // c.sd / c.sdsp
		if isCReg(in.Rs2) && isCReg(in.Rs1) && in.Imm >= 0 && in.Imm < 256 && in.Imm&7 == 0 {
			u := uint16(in.Imm)
			return uint16(0b111)<<13 |
				(u>>3&7)<<10 | uint16(in.Rs1-8)<<7 | (u>>6&3)<<5 | uint16(in.Rs2-8)<<2, true
		}
		if in.Rs1 == SP && in.Imm >= 0 && in.Imm < 512 && in.Imm&7 == 0 {
			u := uint16(in.Imm)
			return uint16(0b111)<<13 | (u>>3&7)<<10 | (u>>6&7)<<7 | uint16(in.Rs2)<<2 | 2, true
		}
	case LW: // c.lw
		if isCReg(in.Rd) && isCReg(in.Rs1) && in.Imm >= 0 && in.Imm < 128 && in.Imm&3 == 0 {
			u := uint16(in.Imm)
			return uint16(0b010)<<13 |
				(u>>3&7)<<10 | uint16(in.Rs1-8)<<7 | (u>>2&1)<<6 | (u>>6&1)<<5 | uint16(in.Rd-8)<<2, true
		}
	case SW: // c.sw
		if isCReg(in.Rs2) && isCReg(in.Rs1) && in.Imm >= 0 && in.Imm < 128 && in.Imm&3 == 0 {
			u := uint16(in.Imm)
			return uint16(0b110)<<13 |
				(u>>3&7)<<10 | uint16(in.Rs1-8)<<7 | (u>>2&1)<<6 | (u>>6&1)<<5 | uint16(in.Rs2-8)<<2, true
		}
	case ADDI:
		switch {
		case in.Rd == in.Rs1 && fitsSigned(in.Imm, 6): // c.addi / c.nop
			u := uint16(in.Imm) & 0x3f
			return uint16(0b000)<<13 | (u>>5&1)<<12 | uint16(in.Rd)<<7 | (u&0x1f)<<2 | 1, true
		case in.Rs1 == Zero && in.Rd != 0 && fitsSigned(in.Imm, 6): // c.li
			u := uint16(in.Imm) & 0x3f
			return uint16(0b010)<<13 | (u>>5&1)<<12 | uint16(in.Rd)<<7 | (u&0x1f)<<2 | 1, true
		}
	case ADDIW:
		if in.Rd == in.Rs1 && in.Rd != 0 && fitsSigned(in.Imm, 6) {
			u := uint16(in.Imm) & 0x3f
			return uint16(0b001)<<13 | (u>>5&1)<<12 | uint16(in.Rd)<<7 | (u&0x1f)<<2 | 1, true
		}
	case ADD:
		switch {
		case in.Rd != 0 && in.Rs1 == Zero && in.Rs2 != 0: // c.mv
			return uint16(0b100)<<13 | uint16(in.Rd)<<7 | uint16(in.Rs2)<<2 | 2, true
		case in.Rd != 0 && in.Rd == in.Rs1 && in.Rs2 != 0: // c.add
			return uint16(0b100)<<13 | 1<<12 | uint16(in.Rd)<<7 | uint16(in.Rs2)<<2 | 2, true
		}
	case SLLI:
		if in.Rd == in.Rs1 && in.Rd != 0 && in.Imm > 0 && in.Imm < 64 {
			u := uint16(in.Imm)
			return uint16(0b000)<<13 | (u>>5&1)<<12 | uint16(in.Rd)<<7 | (u&0x1f)<<2 | 2, true
		}
	case JALR:
		if in.Imm == 0 && in.Rs1 != 0 {
			if in.Rd == Zero { // c.jr
				return uint16(0b100)<<13 | uint16(in.Rs1)<<7 | 2, true
			}
			if in.Rd == RA { // c.jalr
				return uint16(0b100)<<13 | 1<<12 | uint16(in.Rs1)<<7 | 2, true
			}
		}
	}
	return 0, false
}
