package core

import (
	"context"
	"encoding/json"
	"testing"

	"roload/internal/kernel"
	"roload/internal/schema"
)

const imgTestSrc = `
func main() int {
	var i int = 0;
	var acc int = 0;
	while (i < 50) {
		acc = acc + i;
		i = i + 1;
	}
	return acc - 1183;
}
`

// TestImageCodecRoundTrip proves the store's image representation is
// faithful: encode → JSON → decode preserves the kernel digest, and the
// decoded image runs bit-identically to the original.
func TestImageCodecRoundTrip(t *testing.T) {
	img, _, err := Build(imgTestSrc, HardenFull)
	if err != nil {
		t.Fatal(err)
	}
	doc := EncodeImage(img)
	if doc.Digest != kernel.ImageDigest(img) {
		t.Fatalf("encoded digest %s does not match the kernel digest", doc.Digest)
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	// The document round-trips through the registry like any stored
	// artifact.
	id, decoded, err := schema.DecodeAny(raw)
	if err != nil || id != schema.ImageV1 {
		t.Fatalf("DecodeAny: id=%q err=%v", id, err)
	}
	back, err := DecodeImage(*decoded.(*schema.ImageDoc))
	if err != nil {
		t.Fatal(err)
	}
	if got := kernel.ImageDigest(back); got != doc.Digest {
		t.Fatalf("decoded image hashes to %s, want %s", got, doc.Digest)
	}

	want, _, err := RunWith(context.Background(), img, SysFull, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := RunWith(context.Background(), back, SysFull, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Stdout) != string(want.Stdout) || got.Cycles != want.Cycles ||
		got.Instret != want.Instret || got.Exited != want.Exited || got.Code != want.Code {
		t.Fatalf("decoded image diverged: got %+v, want %+v", got, want)
	}
}

// TestDecodeImageRejectsCorruption: a flipped byte in a stored section
// can never execute under the original digest.
func TestDecodeImageRejectsCorruption(t *testing.T) {
	img, _, err := Build(imgTestSrc, HardenNone)
	if err != nil {
		t.Fatal(err)
	}
	doc := EncodeImage(img)
	// Deep-copy the section data before corrupting (EncodeImage aliases
	// the image's slices).
	corrupted := doc
	corrupted.Sections = append([]schema.ImageSection(nil), doc.Sections...)
	for i := range corrupted.Sections {
		if len(corrupted.Sections[i].Data) > 0 {
			d := append([]byte(nil), corrupted.Sections[i].Data...)
			d[len(d)/2] ^= 0x40
			corrupted.Sections[i].Data = d
			break
		}
	}
	if _, err := DecodeImage(corrupted); err == nil {
		t.Fatal("corrupted image decoded under its original digest")
	}
	// Without a digest claim the same bytes decode (the caller opted out
	// of verification).
	corrupted.Digest = ""
	if _, err := DecodeImage(corrupted); err != nil {
		t.Fatalf("digest-free decode failed: %v", err)
	}
}

// TestRunWithCheckpointChunks proves the chunked checkpoint drive and
// resume are observable-identical to an uninterrupted run.
func TestRunWithCheckpointChunks(t *testing.T) {
	img, _, err := Build(imgTestSrc, HardenNone)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := RunWith(context.Background(), img, SysFull, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	var cks []schema.Checkpoint
	got, _, err := RunWith(context.Background(), img, SysFull, RunOptions{
		CheckpointEvery: want.Instret / 5,
		Checkpoint: func(ck schema.Checkpoint) error {
			cks = append(cks, ck)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Stdout) != string(want.Stdout) || got.Cycles != want.Cycles || got.Instret != want.Instret {
		t.Fatalf("chunked run diverged: got %+v, want %+v", got, want)
	}
	if len(cks) < 3 {
		t.Fatalf("only %d checkpoints for a 5-chunk run", len(cks))
	}

	// Resume from a mid-run checkpoint and finish identically.
	resumed, _, err := RunWith(context.Background(), img, SysFull, RunOptions{Resume: &cks[1]})
	if err != nil {
		t.Fatal(err)
	}
	if string(resumed.Stdout) != string(want.Stdout) || resumed.Cycles != want.Cycles ||
		resumed.Instret != want.Instret || resumed.Code != want.Code {
		t.Fatalf("resumed run diverged: got %+v, want %+v", resumed, want)
	}
}
