// Package core is the public façade of the ROLoad reproduction: it
// composes the MiniC compiler, the hardening passes, the assembler,
// and the simulated systems into the build-and-measure pipeline used
// by the examples, the command-line tools, and the benchmark harness.
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"roload/internal/asm"
	"roload/internal/cc"
	"roload/internal/cc/harden"
	"roload/internal/isa"
	"roload/internal/kernel"
	"roload/internal/obs"
	"roload/internal/schema"
	"roload/internal/telemetry"
)

// SystemKind selects one of the paper's three evaluation systems.
type SystemKind int

const (
	// SysBaseline is the unmodified processor + unmodified kernel.
	SysBaseline SystemKind = iota
	// SysProcessorOnly has ld.ro in hardware but a stock kernel.
	SysProcessorOnly
	// SysFull is the processor-and-kernel-modified system.
	SysFull
)

func (k SystemKind) String() string {
	switch k {
	case SysBaseline:
		return "baseline"
	case SysProcessorOnly:
		return "processor-modified"
	case SysFull:
		return "processor+kernel-modified"
	}
	return fmt.Sprintf("system(%d)", int(k))
}

// Config returns the kernel configuration for the system kind.
func (k SystemKind) Config() kernel.Config {
	switch k {
	case SysProcessorOnly:
		return kernel.ProcessorOnlySystem()
	case SysFull:
		return kernel.FullSystem()
	default:
		return kernel.BaselineSystem()
	}
}

// Hardening selects a program-hardening scheme.
type Hardening int

const (
	// HardenNone compiles without instrumentation.
	HardenNone Hardening = iota
	// HardenVCall applies the paper's virtual-call protection.
	HardenVCall
	// HardenVTint applies the VTint software baseline.
	HardenVTint
	// HardenICall applies the paper's type-based forward-edge CFI.
	HardenICall
	// HardenCFI applies the classic label-based CFI baseline.
	HardenCFI
	// HardenRetGuard applies the backward-edge extension sketched in
	// the paper's Section IV-C: return addresses become pointers into
	// keyed read-only return-site tables.
	HardenRetGuard
	// HardenFull applies ICall + VCall-strength vtable keys + RetGuard:
	// both forward and backward edges under pointee integrity.
	HardenFull
)

func (h Hardening) String() string {
	switch h {
	case HardenNone:
		return "none"
	case HardenVCall:
		return "VCall"
	case HardenVTint:
		return "VTint"
	case HardenICall:
		return "ICall"
	case HardenCFI:
		return "CFI"
	case HardenRetGuard:
		return "RetGuard"
	case HardenFull:
		return "Full"
	}
	return fmt.Sprintf("hardening(%d)", int(h))
}

// Passes returns the hardening passes for the scheme.
func (h Hardening) Passes() []harden.Pass {
	switch h {
	case HardenVCall:
		return []harden.Pass{harden.VCall()}
	case HardenVTint:
		return []harden.Pass{harden.VTint()}
	case HardenICall:
		return []harden.Pass{harden.ICall()}
	case HardenCFI:
		return []harden.Pass{harden.ClassicCFI()}
	case HardenRetGuard:
		return []harden.Pass{harden.RetGuard()}
	case HardenFull:
		return []harden.Pass{harden.ICall(), harden.RetGuard()}
	default:
		return nil
	}
}

// NeedsROLoad reports whether binaries hardened this way require the
// fully modified system.
func (h Hardening) NeedsROLoad() bool {
	return h == HardenVCall || h == HardenICall || h == HardenRetGuard || h == HardenFull
}

// Build compiles MiniC source, applies the hardening scheme, and
// assembles the result. The returned Unit is the post-pass machine
// program (useful for inspection); the Image is ready for Spawn.
func Build(src string, h Hardening) (*asm.Image, *cc.Unit, error) {
	unit, err := cc.Compile(src)
	if err != nil {
		return nil, nil, err
	}
	if err := harden.Apply(unit, h.Passes()...); err != nil {
		return nil, nil, err
	}
	img, err := asm.Assemble(unit.Assembly(), asm.DefaultOptions())
	if err != nil {
		return nil, nil, fmt.Errorf("core: assembling hardened program: %w", err)
	}
	return img, unit, nil
}

// Run executes an image on the selected system. maxSteps of 0 means
// effectively unbounded.
//
// Deprecated: Run is the pre-context entry point, kept one PR so
// callers migrate incrementally; use RunWith.
func Run(img *asm.Image, sys SystemKind, maxSteps uint64) (kernel.RunResult, *kernel.Process, error) {
	return RunWith(context.Background(), img, sys, RunOptions{MaxSteps: maxSteps})
}

// RunOptions is the single options path of the execution API,
// parameterizing RunWith and MeasureImage beyond the system kind.
type RunOptions struct {
	// MaxSteps bounds the run (0 = effectively unbounded).
	MaxSteps uint64
	// MemBytes is the guest physical memory size (0 = kernel default,
	// 256 MiB). The HTTP service uses it to enforce per-request memory
	// limits.
	MemBytes uint64
	// CancelEvery is the context-poll stride in retired instructions
	// (0 = kernel.DefaultCancelEvery). Host latency only; simulated
	// observables are identical for any stride.
	CancelEvery uint64
	// Probe, when non-nil, observes the whole machine: instruction
	// retires, traps, TLB/cache/walk activity, ROLoad key checks,
	// syscalls, page faults and signal deliveries. A nil probe costs
	// nothing on the hot path.
	Probe obs.Probe
	// NoFastPath disables the simulator's host-side fast paths
	// (predecode and inline translation caches; implies NoBlocks).
	// Simulated results are bit-identical either way; see
	// cpu.Config.NoFastPath.
	NoFastPath bool
	// NoBlocks disables the block-compiling engine, leaving the
	// per-instruction fast path. Simulated results are bit-identical
	// either way; see cpu.Config.NoBlocks.
	NoBlocks bool
	// CheckpointEvery > 0 slices the run into chunks of that many
	// retired instructions and calls Checkpoint at each boundary —
	// exactly the roload-run -checkpoint-every drive, so the chunked
	// run's simulated observables are bit-identical to an uninterrupted
	// one. MaxSteps is then enforced at chunk granularity.
	CheckpointEvery uint64
	// Checkpoint receives the roload-checkpoint/v1 snapshot at each
	// CheckpointEvery boundary. Returning an error aborts the run.
	Checkpoint func(schema.Checkpoint) error
	// Resume restores the machine from a checkpoint instead of spawning
	// fresh; img must be the exact image the checkpoint was taken from
	// (a mismatch returns *kernel.CheckpointMismatchError naming both
	// digests).
	Resume *schema.Checkpoint
}

// Engine names one of the simulator's execution engines. All three
// produce bit-identical simulated observables; they differ only in
// host speed.
type Engine int

const (
	// EngineBlocks is the block-compiling engine (the default):
	// translated superblocks of pre-bound closures with direct
	// chaining.
	EngineBlocks Engine = iota
	// EngineFast is the per-instruction fast path (predecode and
	// inline translation caches).
	EngineFast
	// EngineInterp is the plain interpreter.
	EngineInterp
)

func (e Engine) String() string {
	switch e {
	case EngineFast:
		return "fast"
	case EngineInterp:
		return "interp"
	case EngineBlocks:
		return "blocks"
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// Options returns a copy of opts with the engine-selection fields set
// for e.
func (e Engine) Options(opts RunOptions) RunOptions {
	opts.NoFastPath = e == EngineInterp
	opts.NoBlocks = e != EngineBlocks
	return opts
}

// RunWith executes an image on the selected system. The context
// carries the run's deadline: when ctx is cancelled mid-run the kernel
// stops within RunOptions.CancelEvery retired instructions and the
// error is a *kernel.CanceledError alongside a partial result; when
// the step budget runs out it is a *kernel.StepLimitError. Completed
// runs are bit-identical whatever the context — cancellation can only
// truncate a run, never change its observables.
//
// The context may also carry live telemetry: with a telemetry.Trace
// the run is wrapped in an "execute" span, and with a telemetry.Sink
// the run streams progress ticks (one per cancellation stride) and
// audit records as they are logged. Both are host-side observers only
// and cost nothing when absent.
func RunWith(ctx context.Context, img *asm.Image, sys SystemKind, opts RunOptions) (kernel.RunResult, *kernel.Process, error) {
	cfg := sys.Config()
	cfg.MaxSteps = opts.MaxSteps
	if opts.CheckpointEvery > 0 {
		// The chunked drive: the kernel stops at every checkpoint
		// boundary and the loop below enforces the real budget.
		cfg.MaxSteps = opts.CheckpointEvery
	}
	cfg.MemBytes = opts.MemBytes
	cfg.CancelEvery = opts.CancelEvery
	cfg.CPU.NoFastPath = opts.NoFastPath
	cfg.CPU.NoBlocks = opts.NoBlocks
	sink := telemetry.SinkFromContext(ctx)
	if sink != nil {
		cfg.Progress = func(instret, cycles uint64) {
			sink(schema.RunEvent{Kind: schema.EventProgress, Instret: instret, Cycles: cycles})
		}
	}
	_, span := telemetry.StartSpan(ctx, "execute")
	defer span.End()
	span.SetAttr("system", sys.String())
	var machine *kernel.System
	var p *kernel.Process
	var err error
	if opts.Resume != nil {
		machine, p, err = kernel.Restore(cfg, img, *opts.Resume)
		if err != nil {
			return kernel.RunResult{}, nil, err
		}
	} else {
		machine = kernel.NewSystem(cfg)
		if p, err = machine.Spawn(img); err != nil {
			return kernel.RunResult{}, nil, err
		}
	}
	if opts.Probe != nil {
		machine.SetProbe(opts.Probe)
	}
	if sink != nil {
		machine.Audit().SetSink(func(rec obs.AuditRecord) {
			sink(schema.RunEvent{Kind: schema.EventAudit, Instret: rec.Instret,
				Cycles: rec.Cycle, Audit: &rec})
		})
	}
	res, err := machine.RunContext(ctx, p)
	// The checkpoint chunk loop, mirroring roload-run's: every
	// StepLimitError at a boundary snapshots and continues, until the
	// guest exits or the real MaxSteps budget (cumulative Instret) is
	// spent — then the StepLimitError surfaces to the caller as usual.
	for err != nil && opts.CheckpointEvery > 0 {
		var limit *kernel.StepLimitError
		if !errors.As(err, &limit) {
			break
		}
		if opts.MaxSteps > 0 && res.Instret >= opts.MaxSteps {
			break
		}
		if opts.Checkpoint != nil {
			ck, snapErr := kernel.Snapshot(machine, p)
			if snapErr != nil {
				return res, p, snapErr
			}
			if cbErr := opts.Checkpoint(ck); cbErr != nil {
				return res, p, cbErr
			}
		}
		res, err = machine.RunContext(ctx, p)
	}
	span.SetAttrUint("instret", res.Instret)
	span.SetAttrUint("cycles", res.Cycles)
	return res, p, err
}

// CodeSymTable builds a symbol table over the image's executable
// sections, the attribution domain of the obs profiler and trace
// exporter (data labels are excluded so they never shadow functions).
func CodeSymTable(img *asm.Image) *obs.SymTable {
	lo, hi := ^uint64(0), uint64(0)
	for _, sec := range img.Sections {
		if sec.Perm&asm.PermExec == 0 {
			continue
		}
		if sec.VA < lo {
			lo = sec.VA
		}
		if end := sec.VA + sec.Size; end > hi {
			hi = end
		}
	}
	if lo >= hi {
		lo, hi = 0, ^uint64(0)
	}
	return obs.NewSymTable(img.Symbols, lo, hi)
}

// Measurement is one build+run observation.
type Measurement struct {
	Hardening Hardening
	System    SystemKind
	Result    kernel.RunResult
	// ImageBytes is the loadable image size (static memory footprint,
	// the basis of the figures' memory-overhead series).
	ImageBytes uint64
	CodeBytes  uint64
}

// Measure builds src with scheme h and runs it on sys.
//
// Deprecated: Measure is the pre-context entry point, kept one PR so
// callers migrate incrementally; use Build + MeasureImage.
func Measure(src string, h Hardening, sys SystemKind, maxSteps uint64) (Measurement, error) {
	img, _, err := Build(src, h)
	if err != nil {
		return Measurement{}, err
	}
	return MeasureImage(context.Background(), img, h, sys, RunOptions{MaxSteps: maxSteps})
}

// MeasureImage runs a prebuilt image on sys and packages the
// measurement. Images are immutable after assembly, so one image may
// back concurrent MeasureImage calls (each run builds its own
// machine); this is what the eval runner's compile-once cache and the
// HTTP service's multi-tenant sharing rely on. The context semantics
// are RunWith's.
func MeasureImage(ctx context.Context, img *asm.Image, h Hardening, sys SystemKind, opts RunOptions) (Measurement, error) {
	res, _, err := RunWith(ctx, img, sys, opts)
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{
		Hardening:  h,
		System:     sys,
		Result:     res,
		ImageBytes: img.TotalSize(),
		CodeBytes:  img.CodeSize(),
	}, nil
}

// CompileOptions parameterizes CompileText.
type CompileOptions struct {
	// Harden selects the hardening scheme applied after compilation.
	Harden Hardening
	// Optimize runs the peephole optimizer before hardening.
	Optimize bool
	// Dump assembles the program and renders a section-by-section
	// disassembly of the linked image instead of assembly text.
	Dump bool
	// Compress applies RVC compression (meaningful with Dump).
	Compress bool
}

// CompileText compiles MiniC source to the textual form roload-cc
// prints: hardened assembly, or (with Dump) a disassembled image. The
// CLI and the HTTP service share this path, which is what makes their
// outputs byte-identical for the same input.
func CompileText(src string, opts CompileOptions) (string, error) {
	unit, err := cc.Compile(src)
	if err != nil {
		return "", err
	}
	if opts.Optimize {
		cc.Optimize(unit)
	}
	if err := harden.Apply(unit, opts.Harden.Passes()...); err != nil {
		return "", err
	}
	text := unit.Assembly()
	if !opts.Dump {
		return text, nil
	}
	aopts := asm.DefaultOptions()
	aopts.Compress = opts.Compress
	img, err := asm.Assemble(text, aopts)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, sec := range img.Sections {
		fmt.Fprintf(&b, "section %s  va=%#x size=%d perm=%v key=%d\n",
			sec.Name, sec.VA, sec.Size, sec.Perm, sec.Key)
		if sec.Perm&asm.PermExec != 0 {
			b.WriteString(isa.DisassembleText(sec.Data, sec.VA))
		}
	}
	return b.String(), nil
}

// Overhead returns (m.value - base.value) / base.value in percent for
// cycles and for peak memory.
func Overhead(base, m Measurement) (runtimePct, memPct float64) {
	runtimePct = 100 * (float64(m.Result.Cycles) - float64(base.Result.Cycles)) / float64(base.Result.Cycles)
	memPct = 100 * (float64(m.Result.MemPeakKiB) - float64(base.Result.MemPeakKiB)) / float64(base.Result.MemPeakKiB)
	return
}
