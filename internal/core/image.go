package core

import (
	"fmt"

	"roload/internal/asm"
	"roload/internal/kernel"
	"roload/internal/schema"
)

// The roload-image/v1 codec: the bridge between the assembler's
// in-memory image and the artifact store's serialized document. It
// lives here (not in internal/schema, which is dependency-free) because
// it needs both the asm types and the kernel's image digest.

// EncodeImage serializes a linked image as a roload-image/v1 document,
// stamped with the kernel image digest — the key the artifact store
// files it under and the digest its checkpoints pin.
func EncodeImage(img *asm.Image) schema.ImageDoc {
	doc := schema.ImageDoc{
		Schema:  schema.ImageV1,
		Digest:  kernel.ImageDigest(img),
		Entry:   img.Entry,
		Symbols: img.Symbols,
	}
	for _, sec := range img.Sections {
		doc.Sections = append(doc.Sections, schema.ImageSection{
			Name: sec.Name,
			VA:   sec.VA,
			Size: sec.Size,
			Perm: uint8(sec.Perm),
			Key:  sec.Key,
			Data: sec.Data,
		})
	}
	return doc
}

// DecodeImage rebuilds a loadable image from a roload-image/v1
// document. It runs the document's structural validation, the asm
// image's loadability validation, and — when the document carries a
// digest — recomputes the kernel image digest and refuses a mismatch,
// so a corrupted or mislabeled store entry can never be executed under
// the wrong name.
func DecodeImage(doc schema.ImageDoc) (*asm.Image, error) {
	if err := doc.Validate(); err != nil {
		return nil, err
	}
	img := &asm.Image{Entry: doc.Entry}
	if len(doc.Symbols) > 0 {
		img.Symbols = make(map[string]uint64, len(doc.Symbols))
		for name, va := range doc.Symbols {
			img.Symbols[name] = va
		}
	}
	for _, sec := range doc.Sections {
		img.Sections = append(img.Sections, asm.Section{
			Name: sec.Name,
			VA:   sec.VA,
			Size: sec.Size,
			Perm: asm.Perm(sec.Perm),
			Key:  sec.Key,
			Data: append([]byte(nil), sec.Data...),
		})
	}
	if err := img.Validate(); err != nil {
		return nil, fmt.Errorf("core: decoded image is not loadable: %w", err)
	}
	if doc.Digest != "" {
		if got := kernel.ImageDigest(img); got != doc.Digest {
			return nil, fmt.Errorf("core: image digest mismatch: document says %s, contents hash to %s",
				doc.Digest, got)
		}
	}
	return img, nil
}
