package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"roload/internal/kernel"
)

const spinProg = `
func main() int {
	var x int = 1;
	while (x > 0) { x = x + 1; }
	return 0;
}
`

// TestRunWithDeadline: a run that cannot finish before its deadline is
// cancelled cooperatively and reports *kernel.CanceledError alongside
// a partial result that has made progress.
func TestRunWithDeadline(t *testing.T) {
	img, _, err := Build(spinProg, HardenNone)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, _, err := RunWith(ctx, img, SysFull, RunOptions{})
	elapsed := time.Since(start)
	var canceled *kernel.CanceledError
	if !errors.As(err, &canceled) {
		t.Fatalf("err = %v, want *kernel.CanceledError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err %v does not unwrap to context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
	if res.Instret == 0 {
		t.Error("partial result shows no progress")
	}
	if res.Exited {
		t.Error("cancelled run reports a clean exit")
	}
}

// TestRunWithStepLimit: an exhausted instruction budget is the typed
// *kernel.StepLimitError (message naming the budget), with a partial
// result.
func TestRunWithStepLimit(t *testing.T) {
	img, _, err := Build(spinProg, HardenNone)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := RunWith(context.Background(), img, SysFull, RunOptions{MaxSteps: 20_000})
	var limit *kernel.StepLimitError
	if !errors.As(err, &limit) {
		t.Fatalf("err = %v, want *kernel.StepLimitError", err)
	}
	if limit.Limit != 20_000 {
		t.Errorf("limit = %d", limit.Limit)
	}
	if res.Instret == 0 {
		t.Error("partial result shows no progress")
	}
}

// TestCancellationPreservesObservables: the context machinery must
// never change the simulated observables of a run that completes —
// whatever the poll stride, and whether or not a (never-fired) ctx is
// attached. This is the DESIGN.md cancellation invariant.
func TestCancellationPreservesObservables(t *testing.T) {
	img, _, err := Build(prog, HardenICall)
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := RunWith(context.Background(), img, SysFull, RunOptions{MaxSteps: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, stride := range []uint64{1, 7, 64, 100_000} {
		res, _, err := RunWith(ctx, img, SysFull, RunOptions{MaxSteps: 10_000_000, CancelEvery: stride})
		if err != nil {
			t.Fatalf("stride %d: %v", stride, err)
		}
		if res.Cycles != base.Cycles || res.Instret != base.Instret ||
			res.MemPeakKiB != base.MemPeakKiB || string(res.Stdout) != string(base.Stdout) ||
			res.Code != base.Code {
			t.Errorf("stride %d changed observables: %+v vs %+v", stride, res, base)
		}
	}
}

// TestCompileTextMatchesBuild: CompileText's assembly (the CLI and
// service compile path) assembles to the same image Build produces.
func TestCompileTextMatchesBuild(t *testing.T) {
	text, err := CompileText(prog, CompileOptions{Harden: HardenICall})
	if err != nil {
		t.Fatal(err)
	}
	if text == "" {
		t.Fatal("empty assembly")
	}
	dump, err := CompileText(prog, CompileOptions{Harden: HardenICall, Dump: true})
	if err != nil {
		t.Fatal(err)
	}
	if dump == text {
		t.Error("dump output identical to assembly output")
	}
	if _, err := CompileText("not minic", CompileOptions{}); err == nil {
		t.Error("bad source accepted")
	}
}
