package core

import (
	"testing"

	"roload/internal/asm"
	"roload/internal/cc"
	"roload/internal/cc/harden"
	"roload/internal/kernel"
)

const prog = `
class A { virtual m() int { return 21; } }
func f(x int) int { return x + 1; }
func main() int {
	var a *A = new A;
	var g func(int) int = f;
	return a.m() + g(20);
}
`

func TestBuildAndRunAllSchemes(t *testing.T) {
	for _, h := range []Hardening{HardenNone, HardenVCall, HardenVTint, HardenICall, HardenCFI} {
		img, unit, err := Build(prog, h)
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if h != HardenNone && len(unit.HardenedBy) == 0 {
			t.Errorf("%v: pass not recorded", h)
		}
		res, _, err := Run(img, SysFull, 10_000_000)
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if !res.Exited || res.Code != 42 {
			t.Errorf("%v: res = %+v", h, res)
		}
	}
}

func TestBuildErrorsPropagate(t *testing.T) {
	if _, _, err := Build("not minic", HardenNone); err == nil {
		t.Error("bad source accepted")
	}
}

func TestSystemKindConfig(t *testing.T) {
	cases := []struct {
		kind       SystemKind
		proc, kern bool
	}{
		{SysBaseline, false, false},
		{SysProcessorOnly, true, false},
		{SysFull, true, true},
	}
	for _, c := range cases {
		cfg := c.kind.Config()
		if cfg.ProcessorROLoad != c.proc || cfg.KernelROLoad != c.kern {
			t.Errorf("%v: cfg = %+v", c.kind, cfg)
		}
		if c.kind.String() == "" {
			t.Errorf("%v: empty name", int(c.kind))
		}
	}
}

func TestHardeningProperties(t *testing.T) {
	if !HardenVCall.NeedsROLoad() || !HardenICall.NeedsROLoad() {
		t.Error("ROLoad-based schemes must need the full system")
	}
	if HardenVTint.NeedsROLoad() || HardenCFI.NeedsROLoad() || HardenNone.NeedsROLoad() {
		t.Error("software schemes must not need ROLoad")
	}
	for _, h := range []Hardening{HardenNone, HardenVCall, HardenVTint, HardenICall, HardenCFI} {
		if h.String() == "" {
			t.Error("empty scheme name")
		}
	}
	if len(HardenNone.Passes()) != 0 {
		t.Error("HardenNone must have no passes")
	}
	if len(HardenVCall.Passes()) != 1 {
		t.Error("HardenVCall must have one pass")
	}
}

func TestMeasureAndOverhead(t *testing.T) {
	base, err := Measure(prog, HardenNone, SysFull, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Measure(prog, HardenVTint, SysFull, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if base.ImageBytes == 0 || base.CodeBytes == 0 {
		t.Error("image sizes not recorded")
	}
	if m.CodeBytes <= base.CodeBytes {
		t.Error("VTint must grow the code section")
	}
	rt, _ := Overhead(base, m)
	if rt < 0 {
		t.Errorf("VTint runtime overhead = %.3f%%, want >= 0", rt)
	}
}

// Compressed (RVC) builds of hardened programs must execute
// identically: the c.ld.ro encoding carries the same key semantics.
func TestCompressedHardenedExecution(t *testing.T) {
	unit, err := cc.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := harden.Apply(unit, harden.ICall()); err != nil {
		t.Fatal(err)
	}
	opts := asm.DefaultOptions()
	opts.Compress = true
	img, err := asm.Assemble(unit.Assembly(), opts)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := asm.Assemble(unit.Assembly(), asm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if img.CodeSize() >= plain.CodeSize() {
		t.Errorf("compressed code %d >= plain %d", img.CodeSize(), plain.CodeSize())
	}
	res, _, err := Run(img, SysFull, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exited || res.Code != 42 {
		t.Fatalf("compressed hardened run: %+v", res)
	}
}

// The software-only schemes must run on completely stock hardware —
// deployability is their one advantage over ROLoad.
func TestSoftwareSchemesRunOnBaseline(t *testing.T) {
	for _, h := range []Hardening{HardenVTint, HardenCFI} {
		img, _, err := Build(prog, h)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := Run(img, SysBaseline, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exited || res.Code != 42 {
			t.Errorf("%v on baseline hardware: %+v", h, res)
		}
	}
}

// ROLoad-hardened binaries must NOT run on stock hardware (the
// incompatibility is inherent to any ISA extension).
func TestROLoadSchemesFailOnBaseline(t *testing.T) {
	for _, h := range []Hardening{HardenVCall, HardenICall} {
		img, _, err := Build(prog, h)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := Run(img, SysBaseline, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Signal != kernel.SIGILL {
			t.Errorf("%v on baseline hardware: %+v, want SIGILL", h, res)
		}
	}
}
