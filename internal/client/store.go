// The batch and artifact-store side of the client: post many run
// specs against one compiled image (Batch), stream a batch's per-run
// lifecycle events (StreamBatch), and persist/fetch compiled images in
// the server's artifact store (PutImage/GetImage). Every method rides
// the same hedging, breaker, backoff and idempotency machinery as Run,
// so a retried batch never executes its runs twice.
package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"roload/internal/schema"
	"roload/internal/telemetry"
)

// BatchResult is one successful logical batch request.
type BatchResult struct {
	// Report is the roload-batch/v1 report: per-run statuses and bodies
	// byte-identical to the equivalent individual Run calls.
	Report schema.BatchReport
	// Replayed is set when the server answered from its idempotency
	// cache rather than executing the batch again.
	Replayed bool
	Attempts int
	Hedged   int
	// BatchID is the batch-scoped run id shared with the server: the
	// handle for StreamBatch and FetchTrace, and the prefix of every
	// per-run id ("<batch id>.<n>").
	BatchID string
	// Trace is the client-side span document of the batch request.
	Trace schema.TraceDoc
}

// Batch executes one batch of runs against a single compiled image
// with retries, hedging and idempotency.
func (c *Client) Batch(ctx context.Context, req schema.BatchRequest) (*BatchResult, error) {
	return c.BatchWithID(ctx, telemetry.NewRunID(), req)
}

// BatchWithID is Batch under a caller-chosen batch id, which lets the
// caller StreamBatch the live events before posting.
func (c *Client) BatchWithID(ctx context.Context, batchID string, req schema.BatchRequest) (*BatchResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding batch request: %w", err)
	}
	reply, attempts, hedged, doc, err := c.execute(ctx, c.nextKey(), batchID, http.MethodPost, "/v1/batch", body)
	if err != nil {
		return nil, err
	}
	if reply.status != http.StatusOK {
		return nil, reply.apiError()
	}
	var report schema.BatchReport
	if err := reply.env.Open(schema.ServeV1, &report); err != nil {
		return nil, fmt.Errorf("client: decoding batch report: %w", err)
	}
	if err := report.Validate(); err != nil {
		return nil, fmt.Errorf("client: invalid batch report: %w", err)
	}
	return &BatchResult{
		Report:   report,
		Replayed: reply.replayed,
		Attempts: attempts,
		Hedged:   hedged,
		BatchID:  batchID,
		Trace:    doc,
	}, nil
}

// StreamBatch subscribes to a batch's live event stream (the same
// wire protocol as Stream, under the batch-scoped id). Each event's
// Run field carries the 1-based index of the run it belongs to — 0 is
// the batch itself, whose terminal "result" event carries the
// roload-batch/v1 report envelope and closes the channel. Per-run
// lifecycles arrive as "run-start"/"run-result" pairs interleaved
// with the usual progress, audit and checkpoint events.
func (c *Client) StreamBatch(ctx context.Context, batchID string) (<-chan schema.RunEvent, error) {
	return c.Stream(ctx, batchID)
}

// ImageResult is one stored image.
type ImageResult struct {
	// Digest is the kernel image digest the artifact is stored under —
	// the value for RunRequest.ImageDigest / BatchRequest.ImageDigest.
	Digest string
	// Reused is set when the store already held the digest.
	Reused   bool
	Attempts int
	Hedged   int
}

// PutImage compiles (or assembles) source server-side exactly once and
// persists the image in the server's artifact store. Requires a server
// started with -store.
func (c *Client) PutImage(ctx context.Context, req schema.ImageRequest) (*ImageResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding image request: %w", err)
	}
	reply, attempts, hedged, _, err := c.execute(ctx, c.nextKey(), telemetry.NewRunID(), http.MethodPost, "/v1/images", body)
	if err != nil {
		return nil, err
	}
	if reply.status != http.StatusOK && reply.status != http.StatusCreated {
		return nil, reply.apiError()
	}
	var resp schema.ImageResponse
	if err := reply.env.Open(schema.ServeV1, &resp); err != nil {
		return nil, fmt.Errorf("client: decoding image response: %w", err)
	}
	return &ImageResult{
		Digest:   resp.Digest,
		Reused:   resp.Reused,
		Attempts: attempts,
		Hedged:   hedged,
	}, nil
}

// GetImage fetches a stored roload-image/v1 document by digest. The
// body is the bare artifact (not a serve envelope), ready for
// core.DecodeImage or roload-run.
func (c *Client) GetImage(ctx context.Context, digest string) (schema.ImageDoc, error) {
	reply, _, _, _, err := c.execute(ctx, c.nextKey(), telemetry.NewRunID(), http.MethodGet, "/v1/images/"+digest, nil)
	if err != nil {
		return schema.ImageDoc{}, err
	}
	if reply.status != http.StatusOK {
		return schema.ImageDoc{}, reply.apiError()
	}
	id, doc, err := schema.DecodeAny(reply.raw)
	if err != nil {
		return schema.ImageDoc{}, fmt.Errorf("client: decoding image document: %w", err)
	}
	img, ok := doc.(*schema.ImageDoc)
	if !ok || id != schema.ImageV1 {
		return schema.ImageDoc{}, fmt.Errorf("client: image endpoint answered a %s document", id)
	}
	return *img, nil
}

// GetArtifact fetches one stored artifact by kind family name
// ("roload-checkpoint") and digest from the generalized store surface
// (GET /v1/store/{kind}/{digest}). The bytes are the bare artifact,
// verified against the digest before they are returned.
func (c *Client) GetArtifact(ctx context.Context, kindName, digest string) ([]byte, error) {
	k, ok := schema.KindByName(kindName)
	if !ok {
		return nil, fmt.Errorf("client: unknown artifact kind %q", kindName)
	}
	reply, _, _, _, err := c.execute(ctx, c.nextKey(), telemetry.NewRunID(),
		http.MethodGet, "/v1/store/"+kindName+"/"+digest, nil)
	if err != nil {
		return nil, err
	}
	if reply.status != http.StatusOK {
		return nil, reply.apiError()
	}
	if err := schema.VerifyArtifact(k.ID, digest, reply.raw); err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	return reply.raw, nil
}

// PutArtifact stores one artifact body under kind family name and
// digest (PUT /v1/store/{kind}/{digest}); the server re-verifies the
// digest before accepting. added reports whether the put wrote
// anything (false: the store already held the key).
func (c *Client) PutArtifact(ctx context.Context, kindName, digest string, body []byte) (added bool, err error) {
	reply, _, _, _, err := c.execute(ctx, c.nextKey(), telemetry.NewRunID(),
		http.MethodPut, "/v1/store/"+kindName+"/"+digest, body)
	if err != nil {
		return false, err
	}
	if reply.status != http.StatusOK && reply.status != http.StatusCreated {
		return false, reply.apiError()
	}
	var resp schema.StorePutResponse
	if err := reply.env.Open(schema.ServeV1, &resp); err != nil {
		return false, fmt.Errorf("client: decoding store put response: %w", err)
	}
	return resp.Added, nil
}
