// Tests for the client's batch and artifact-store surface: Batch
// (byte-identical per-run bodies, idempotent replay through the
// standard retry machinery), StreamBatch (per-run lifecycle events
// under the batch id), and PutImage/GetImage against a store-backed
// service.
package client

import (
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"roload/internal/schema"
	"roload/internal/service"
	"roload/internal/telemetry"
)

// TestClientBatch runs one batch through the client against a real
// service: the report validates, per-run bodies match individual Run
// results byte-for-byte, and replaying the same batch id with an
// idempotent POST answers the cached report without re-executing.
func TestClientBatch(t *testing.T) {
	_, c := newServiceClient(t, service.Config{Workers: 4}, Config{})
	req := schema.BatchRequest{
		Source: helloProg,
		Runs:   []schema.BatchRunSpec{{System: "full"}, {System: "baseline"}},
	}
	res, err := c.Batch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replayed || res.BatchID == "" {
		t.Errorf("batch result = %+v", res)
	}
	if res.Report.Compiles != 1 {
		t.Errorf("cold batch Compiles = %d, want 1", res.Report.Compiles)
	}
	if len(res.Report.Runs) != 2 {
		t.Fatalf("report runs = %d", len(res.Report.Runs))
	}
	for i, out := range res.Report.Runs {
		if out.Status != http.StatusOK {
			t.Fatalf("run %d status = %d:\n%s", i, out.Status, out.Body)
		}
		// The per-run body is a full roload-serve/v1 envelope holding the
		// exact document an individual Run would have answered.
		var env schema.Envelope
		if err := json.Unmarshal([]byte(out.Body), &env); err != nil {
			t.Fatalf("run %d body is not an envelope: %v", i, err)
		}
		var batched schema.RunResponse
		if err := env.Open(schema.ServeV1, &batched); err != nil {
			t.Fatal(err)
		}
		run, rerr := c.Run(context.Background(), schema.RunRequest{
			Source: helloProg, System: req.Runs[i].System,
		})
		if rerr != nil {
			t.Fatal(rerr)
		}
		if !reflect.DeepEqual(batched, run.Response) {
			t.Errorf("run %d batch response diverges from the individual Run response\nbatch:      %+v\nindividual: %+v",
				i, batched, run.Response)
		}
	}

	// A second identical batch hits the warm image cache (zero
	// compiles) and, being deterministic, reproduces every per-run body.
	again, err := c.Batch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if again.Report.Compiles != 0 {
		t.Errorf("warm batch Compiles = %d, want 0", again.Report.Compiles)
	}
	for i := range again.Report.Runs {
		if again.Report.Runs[i].Body != res.Report.Runs[i].Body {
			t.Errorf("warm batch run %d body diverges from the cold batch", i)
		}
	}
}

// TestClientStreamBatch subscribes before posting and checks the
// per-run lifecycle arrives under the batch id: run-start and
// run-result events stamped with each run's 1-based index, then the
// terminal batch result closing the stream.
func TestClientStreamBatch(t *testing.T) {
	_, c := newServiceClient(t, service.Config{Workers: 2}, Config{})
	batchID := telemetry.NewRunID()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	events, err := c.StreamBatch(ctx, batchID)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.BatchWithID(ctx, batchID, schema.BatchRequest{
		Source: helloProg,
		Runs:   []schema.BatchRunSpec{{}, {}},
	})
	if err != nil {
		t.Fatal(err)
	}

	starts, results := map[int]bool{}, map[int]bool{}
	sawTerminal := false
	for ev := range events {
		switch ev.Kind {
		case schema.EventRunStart:
			starts[ev.Run] = true
		case schema.EventRunResult:
			results[ev.Run] = true
		case schema.EventResult:
			sawTerminal = ev.Run == 0 && ev.Status == http.StatusOK
		}
	}
	for i := 1; i <= 2; i++ {
		if !starts[i] || !results[i] {
			t.Errorf("run %d lifecycle incomplete: start=%v result=%v", i, starts[i], results[i])
		}
	}
	if !sawTerminal {
		t.Error("stream did not end with the batch's own result event")
	}
	if res.Report.Compiles != 1 {
		t.Errorf("Compiles = %d", res.Report.Compiles)
	}
}

// TestClientImageStore drives PutImage/GetImage against a store-backed
// service: first put stores, second reuses, GetImage answers the bare
// document, and a digest-addressed batch compiles nothing.
func TestClientImageStore(t *testing.T) {
	_, c := newServiceClient(t, service.Config{Workers: 2, StoreDir: t.TempDir()}, Config{})
	ctx := context.Background()

	img, err := c.PutImage(ctx, schema.ImageRequest{Source: helloProg, Harden: "icall"})
	if err != nil {
		t.Fatal(err)
	}
	if img.Digest == "" || img.Reused {
		t.Fatalf("first put = %+v", img)
	}
	again, err := c.PutImage(ctx, schema.ImageRequest{Source: helloProg, Harden: "icall"})
	if err != nil {
		t.Fatal(err)
	}
	if again.Digest != img.Digest || !again.Reused {
		t.Errorf("second put = %+v", again)
	}

	doc, err := c.GetImage(ctx, img.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != schema.ImageV1 || doc.Digest != img.Digest {
		t.Errorf("image doc schema=%q digest=%q", doc.Schema, doc.Digest)
	}

	res, err := c.Batch(ctx, schema.BatchRequest{
		ImageDigest: img.Digest,
		Runs:        []schema.BatchRunSpec{{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Compiles != 0 || res.Report.ImageDigest != img.Digest {
		t.Errorf("digest batch report = %+v", res.Report)
	}
	if res.Report.Runs[0].Status != http.StatusOK {
		t.Errorf("digest run status = %d", res.Report.Runs[0].Status)
	}

	if _, err := c.GetImage(ctx, strings.Repeat("0", 64)); err == nil {
		t.Error("GetImage of an unknown digest did not fail")
	}
}
