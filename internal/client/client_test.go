package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"roload/internal/schema"
	"roload/internal/service"
)

const helloProg = `
func main() int {
	print_int(6 * 7);
	return 0;
}
`

// fakeClock is an injectable, manually advanced clock for breaker
// tests: no transition ever needs a real sleep.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// noSleep replaces the backoff wait so retry tests don't burn wall
// clock; cancellation is still honored.
func noSleep(ctx context.Context, _ time.Duration) error { return ctx.Err() }

func TestBreakerTransitions(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(BreakerConfig{FailureThreshold: 3, OpenFor: 5 * time.Second}, clk.now)

	if got := b.currentState(); got != "closed" {
		t.Fatalf("initial state = %q, want closed", got)
	}
	// Failures below the threshold keep the circuit closed, and one
	// success resets the streak.
	for i := 0; i < 2; i++ {
		if err := b.allow(); err != nil {
			t.Fatalf("allow #%d: %v", i, err)
		}
		b.report(false)
	}
	b.report(true)
	b.report(false)
	b.report(false)
	if got := b.currentState(); got != "closed" {
		t.Fatalf("state after reset + 2 failures = %q, want closed", got)
	}

	// The third consecutive failure opens the circuit.
	b.report(false)
	if got := b.currentState(); got != "open" {
		t.Fatalf("state after threshold failures = %q, want open", got)
	}
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("allow while open = %v, want ErrCircuitOpen", err)
	}

	// After OpenFor elapses exactly one half-open probe is admitted;
	// concurrent callers are still refused.
	clk.advance(5 * time.Second)
	if err := b.allow(); err != nil {
		t.Fatalf("probe admission: %v", err)
	}
	if got := b.currentState(); got != "half-open" {
		t.Fatalf("state during probe = %q, want half-open", got)
	}
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second caller during probe = %v, want ErrCircuitOpen", err)
	}

	// A failed probe reopens the circuit and restarts the OpenFor clock.
	b.report(false)
	if got := b.currentState(); got != "open" {
		t.Fatalf("state after failed probe = %q, want open", got)
	}
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("allow right after failed probe = %v, want ErrCircuitOpen", err)
	}

	// A successful probe closes the circuit again.
	clk.advance(5 * time.Second)
	if err := b.allow(); err != nil {
		t.Fatalf("second probe admission: %v", err)
	}
	b.report(true)
	if got := b.currentState(); got != "closed" {
		t.Fatalf("state after successful probe = %q, want closed", got)
	}
	if err := b.allow(); err != nil {
		t.Fatalf("allow after recovery: %v", err)
	}
}

func TestBackoffBoundsAndRetryAfter(t *testing.T) {
	c := New(Config{
		BaseURL:     "http://unused",
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  80 * time.Millisecond,
		JitterSeed:  1,
	})
	for attempt := 0; attempt < 6; attempt++ {
		d := c.backoff(attempt, 0)
		limit := c.cfg.BaseBackoff << attempt
		if limit > c.cfg.MaxBackoff {
			limit = c.cfg.MaxBackoff
		}
		if d <= 0 || d > limit {
			t.Fatalf("backoff(%d) = %v, want in (0, %v]", attempt, d, limit)
		}
	}
	// A server Retry-After floors the jittered delay.
	if d := c.backoff(0, 3); d < 3*time.Second {
		t.Fatalf("backoff with Retry-After 3s = %v, want >= 3s", d)
	}
}

// okEnvelope answers a minimal valid roload-serve/v1 run response.
func okEnvelope(w http.ResponseWriter, stdout string) {
	env, err := schema.Wrap(schema.ServeV1, schema.RunResponse{Stdout: stdout, Exited: true})
	if err != nil {
		panic(err)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(env) //nolint:errcheck
}

// TestHedgedRequestWinsAndCancelsStraggler pins the hedging contract:
// when the first leg stalls, the hedge leg launched after HedgeDelay
// answers, the stalled leg is cancelled, and no goroutine is leaked.
func TestHedgedRequestWinsAndCancelsStraggler(t *testing.T) {
	var requests atomic.Int64
	firstCanceled := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if requests.Add(1) == 1 {
			// Stall the first leg until the client abandons it. The body
			// must be drained first: the net/http server only watches for
			// client disconnects (and cancels r.Context()) once the
			// request body has been consumed.
			io.ReadAll(r.Body) //nolint:errcheck
			<-r.Context().Done()
			close(firstCanceled)
			return
		}
		okEnvelope(w, "hedged")
	}))
	defer ts.Close()

	before := runtime.NumGoroutine()
	c := New(Config{
		BaseURL:        ts.URL,
		HedgeDelay:     20 * time.Millisecond,
		AttemptTimeout: 5 * time.Second,
	})
	res, err := c.Run(context.Background(), schema.RunRequest{Schema: schema.ServeV1, Source: helloProg})
	if err != nil {
		t.Fatalf("hedged run: %v", err)
	}
	if res.Response.Stdout != "hedged" {
		t.Fatalf("stdout = %q, want the hedge leg's answer", res.Response.Stdout)
	}
	if res.Attempts != 1 || res.Hedged != 1 {
		t.Fatalf("attempts = %d, hedged = %d, want 1 and 1", res.Attempts, res.Hedged)
	}
	select {
	case <-firstCanceled:
	case <-time.After(5 * time.Second):
		t.Fatal("stalled first leg was never cancelled")
	}
	// The losing leg's goroutine must drain; poll because its exit
	// races with the handler return above. A small tolerance absorbs
	// the HTTP keep-alive goroutines the transport is allowed to keep.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+3 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// --- integration against the real chaos-enabled service ---

func newServiceClient(t *testing.T, svcCfg service.Config, cliCfg Config) (*httptest.Server, *Client) {
	t.Helper()
	srv, err := service.NewServer(svcCfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	cliCfg.BaseURL = ts.URL
	return ts, New(cliCfg)
}

func postJSON(t *testing.T, url string, body any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, data)
	}
}

func serveMetrics(t *testing.T, baseURL string) schema.ServeMetrics {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env schema.Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	var m schema.ServeMetrics
	if err := env.Open(schema.ServeV1, &m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestClientRetriesThroughChaosErrors drives the full loop: two armed
// chaos 500s burn two attempts, the third succeeds, and the server's
// idempotency cache shows each failed attempt re-executed (aborted
// entries are never replayed) while the final success is stored.
func TestClientRetriesThroughChaosErrors(t *testing.T) {
	ts, c := newServiceClient(t,
		service.Config{Chaos: true},
		Config{MaxAttempts: 4, Sleep: noSleep})
	postJSON(t, ts.URL+"/v1/chaos", schema.ChaosRequest{Schema: schema.ServeV1, ErrorNext: 2})

	res, err := c.Run(context.Background(), schema.RunRequest{Schema: schema.ServeV1, Source: helloProg})
	if err != nil {
		t.Fatalf("run through chaos: %v", err)
	}
	if res.Response.Stdout != "42\n" {
		t.Fatalf("stdout = %q, want \"42\\n\"", res.Response.Stdout)
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (two chaos errors, one success)", res.Attempts)
	}
	if res.Replayed {
		t.Fatal("final attempt was a replay; chaos errors must not be cached")
	}
	m := serveMetrics(t, ts.URL)
	if m.Idempotency.Misses != 3 || m.Idempotency.Hits != 0 {
		t.Fatalf("idempotency misses/hits = %d/%d, want 3/0 (every retry re-executed)",
			m.Idempotency.Misses, m.Idempotency.Hits)
	}
	if got := c.BreakerState(); got != "closed" {
		t.Fatalf("breaker = %q after recovery, want closed", got)
	}
}

// TestClientBreakerOpensAndRecovers proves the breaker against the
// real service: consecutive chaos failures trip it (subsequent calls
// fail fast without touching the server), and after OpenFor the
// half-open probe closes it again.
func TestClientBreakerOpensAndRecovers(t *testing.T) {
	clk := &fakeClock{t: time.Unix(2000, 0)}
	ts, c := newServiceClient(t,
		service.Config{Chaos: true},
		Config{
			MaxAttempts: 1,
			Sleep:       noSleep,
			Now:         clk.now,
			Breaker:     BreakerConfig{FailureThreshold: 2, OpenFor: 5 * time.Second},
		})
	postJSON(t, ts.URL+"/v1/chaos", schema.ChaosRequest{Schema: schema.ServeV1, ErrorNext: 2})
	req := schema.RunRequest{Schema: schema.ServeV1, Source: helloProg}

	for i := 0; i < 2; i++ {
		var apiErr *APIError
		if _, err := c.Run(context.Background(), req); !errors.As(err, &apiErr) || apiErr.Status != 500 {
			t.Fatalf("chaos run #%d: %v, want a 500 APIError", i, err)
		}
	}
	if got := c.BreakerState(); got != "open" {
		t.Fatalf("breaker = %q after 2 consecutive failures, want open", got)
	}
	runsBefore := serveMetrics(t, ts.URL).Idempotency.Misses
	if _, err := c.Run(context.Background(), req); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("run while open = %v, want ErrCircuitOpen", err)
	}
	if runsAfter := serveMetrics(t, ts.URL).Idempotency.Misses; runsAfter != runsBefore {
		t.Fatalf("open breaker still reached the server: misses %d -> %d", runsBefore, runsAfter)
	}

	clk.advance(5 * time.Second)
	res, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if res.Response.Stdout != "42\n" {
		t.Fatalf("probe stdout = %q, want \"42\\n\"", res.Response.Stdout)
	}
	if got := c.BreakerState(); got != "closed" {
		t.Fatalf("breaker = %q after successful probe, want closed", got)
	}
}

// TestClientExactlyOnceUnderLatencyAndHedging arms chaos latency above
// the hedge delay so every logical request hedges, then proves the
// server executed each logical request exactly once: idempotency
// misses == logical requests, every duplicate leg deduplicated.
func TestClientExactlyOnceUnderLatencyAndHedging(t *testing.T) {
	const logical = 4
	ts, c := newServiceClient(t,
		service.Config{Chaos: true, Workers: 2},
		Config{
			HedgeDelay:     20 * time.Millisecond,
			AttemptTimeout: 30 * time.Second,
			Sleep:          noSleep,
		})
	postJSON(t, ts.URL+"/v1/chaos", schema.ChaosRequest{Schema: schema.ServeV1, LatencyMS: 150})

	var wg sync.WaitGroup
	results := make([]*RunResult, logical)
	errs := make([]error, logical)
	for i := 0; i < logical; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Run(context.Background(),
				schema.RunRequest{Schema: schema.ServeV1, Source: helloProg})
		}(i)
	}
	wg.Wait()

	hedges := 0
	for i := 0; i < logical; i++ {
		if errs[i] != nil {
			t.Fatalf("logical run %d: %v", i, errs[i])
		}
		if results[i].Response.Stdout != "42\n" {
			t.Fatalf("logical run %d stdout = %q", i, results[i].Response.Stdout)
		}
		hedges += results[i].Hedged
	}
	if hedges == 0 {
		t.Fatal("latency above HedgeDelay launched no hedges; the test proved nothing")
	}
	m := serveMetrics(t, ts.URL)
	if m.Idempotency.Misses != logical {
		t.Fatalf("idempotency misses = %d, want %d (exactly one execution per logical request)",
			m.Idempotency.Misses, logical)
	}
}
