// Package client is the resilient Go client of the roload-serve API:
// exponential backoff with full jitter, per-attempt timeouts, hedged
// requests, a consecutive-failure circuit breaker with half-open
// probing, and automatic idempotency keys so every retry and hedge of
// one logical request is deduplicated server-side — the combination
// that makes "retry until 2xx" safe against injected latency, errors
// and worker panics.
//
// The retry loop treats transport errors and 429/5xx statuses as
// retryable (honouring Retry-After when the server names a backoff)
// and everything else as conclusive. Hedging launches one duplicate
// request after HedgeDelay of silence; whichever answer arrives first
// wins and the straggler is cancelled. Both legs carry the same
// idempotency key, so the server still executes the body exactly once.
package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	mrand "math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"roload/internal/schema"
	"roload/internal/telemetry"
)

// Config parameterizes a Client. The zero value (plus BaseURL) is
// usable.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient is the transport (nil = a dedicated http.Client; the
	// per-attempt timeout comes from AttemptTimeout, not the client).
	HTTPClient *http.Client
	// MaxAttempts bounds the retry loop per logical request (0 = 4).
	MaxAttempts int
	// BaseBackoff and MaxBackoff shape the exponential backoff between
	// attempts: the pre-jitter delay is min(BaseBackoff << attempt,
	// MaxBackoff), and full jitter picks uniformly in (0, delay]
	// (0 = 100ms and 2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// AttemptTimeout caps one attempt's wall clock, hedge included
	// (0 = 10s).
	AttemptTimeout time.Duration
	// HedgeDelay launches a duplicate request when an attempt has been
	// silent this long; first answer wins (0 = hedging off).
	HedgeDelay time.Duration
	// Breaker parameterizes the circuit breaker.
	Breaker BreakerConfig

	// JitterSeed makes the backoff jitter deterministic for tests
	// (0 = seeded from crypto/rand).
	JitterSeed int64
	// Now and Sleep are test seams for the breaker clock and the
	// backoff wait (nil = time.Now and a context-aware timer sleep).
	Now   func() time.Time
	Sleep func(ctx context.Context, d time.Duration) error
}

func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 10 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Sleep == nil {
		c.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	return c
}

// extraHeaderKey carries caller-supplied headers through the context
// into every attempt of an Exchange — the seam a front tier uses for
// per-backend routing hints (e.g. Roload-Store-Peers) that differ
// between failover targets of one logical request.
type extraHeaderKey struct{}

// WithHeaders returns a context under which every request attempt
// also sends the given headers (overriding same-named defaults).
func WithHeaders(ctx context.Context, h http.Header) context.Context {
	return context.WithValue(ctx, extraHeaderKey{}, h)
}

// APIError is a conclusive non-2xx answer from the server, decoded
// from the roload-serve/v1 error payload.
type APIError struct {
	Status        int
	Kind          string
	Message       string
	RetryAfterSec int
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: server answered %d (%s): %s", e.Status, e.Kind, e.Message)
}

// retryable reports whether a status is worth retrying: throttling,
// shedding, and every 5xx (including injected chaos errors and
// recovered panics, which re-execute server-side because the
// idempotency cache never stores them).
func retryable(status int) bool {
	return status >= 500 || status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// RunResult is one successful logical run request.
type RunResult struct {
	Response schema.RunResponse
	// Replayed is set when the server answered from its idempotency
	// cache (an earlier attempt's execution) rather than running again.
	Replayed bool
	// Attempts is the number of attempts made (1 = first try worked);
	// Hedged counts duplicate requests launched by the hedging timer.
	Attempts int
	Hedged   int
	// RunID is the logical run's id, shared with the server (the
	// Roload-Trace header): the handle for Stream and FetchTrace.
	RunID string
	// Trace is the client-side roload-trace/v1 span document of this
	// run — the "run" root span and one "attempt" span per try. Merge
	// it with FetchTrace's server document for the end-to-end tree.
	Trace schema.TraceDoc
}

// Client is a resilient roload-serve API client. Safe for concurrent
// use.
type Client struct {
	cfg     Config
	breaker *breaker

	keyPrefix string
	keySeq    atomic.Uint64

	mu  sync.Mutex
	rng *mrand.Rand

	// attemptUS and runUS are the client-side latency distributions:
	// one observation per HTTP attempt, and one per concluded logical
	// run (retries, backoff and hedging included).
	attemptUS telemetry.Histogram
	runUS     telemetry.Histogram
}

// New builds a Client for the server at cfg.BaseURL.
func New(cfg Config) *Client {
	cfg = cfg.withDefaults()
	seed := cfg.JitterSeed
	var prefix [8]byte
	rand.Read(prefix[:]) //nolint:errcheck // crypto/rand.Read cannot fail
	if seed == 0 {
		var b [8]byte
		rand.Read(b[:]) //nolint:errcheck
		for _, x := range b {
			seed = seed<<8 | int64(x)
		}
	}
	return &Client{
		cfg:       cfg,
		breaker:   newBreaker(cfg.Breaker, cfg.Now),
		keyPrefix: hex.EncodeToString(prefix[:]),
		rng:       mrand.New(mrand.NewSource(seed)),
	}
}

// BreakerState reports the circuit breaker's state ("closed", "open",
// "half-open") for tests and metrics.
func (c *Client) BreakerState() string { return c.breaker.currentState() }

// nextKey mints the idempotency key for one logical request: a
// client-unique prefix plus a sequence number. Every retry and hedge
// of the request reuses it, which is what lets the server deduplicate.
func (c *Client) nextKey() string {
	return fmt.Sprintf("%s-%d", c.keyPrefix, c.keySeq.Add(1))
}

// backoff computes the post-attempt delay: exponential with full
// jitter, floored by the server's Retry-After when one was given.
func (c *Client) backoff(attempt, retryAfterSec int) time.Duration {
	d := c.cfg.BaseBackoff << attempt
	if d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	c.mu.Lock()
	d = time.Duration(c.rng.Int63n(int64(d))) + 1
	c.mu.Unlock()
	if ra := time.Duration(retryAfterSec) * time.Second; ra > d {
		d = ra
	}
	return d
}

// Run executes one logical run request with retries, hedging and
// idempotency. It returns the first conclusive answer: a RunResult for
// 2xx, an *APIError for a non-retryable error status, ErrCircuitOpen
// when the breaker refuses, or the last transport/retryable failure
// when the attempt budget runs out.
func (c *Client) Run(ctx context.Context, req schema.RunRequest) (*RunResult, error) {
	return c.RunWithID(ctx, telemetry.NewRunID(), req)
}

// RunWithID is Run under a caller-chosen run id, which lets the caller
// Stream the run's live events before posting it. Every retry and hedge
// reuses the id (the server deduplicates execution by idempotency key
// and ignores event publication for an already-finished run), so the
// stream sees exactly one run's worth of events.
func (c *Client) RunWithID(ctx context.Context, runID string, req schema.RunRequest) (*RunResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	reply, attempts, hedged, doc, err := c.execute(ctx, c.nextKey(), runID, http.MethodPost, "/v1/run", body)
	if err != nil {
		return nil, err
	}
	res, cerr := c.conclude(reply, attempts, hedged)
	if res != nil {
		res.RunID = runID
		res.Trace = doc
	}
	return res, cerr
}

// execute drives the generic resilient exchange every endpoint method
// shares: the breaker gate, per-attempt spans under a client trace,
// hedging, exponential backoff with full jitter and Retry-After
// floors — all attempts under one idempotency key so the server
// executes the body at most once. It returns the first conclusive
// reply with the attempt/hedge counts and the client-side trace
// document, or the last failure when the attempt budget runs out.
func (c *Client) execute(ctx context.Context, key, runID, method, path string, body []byte) (*httpReply, int, int, schema.TraceDoc, error) {
	tr := telemetry.NewTrace(runID, "c")
	root := tr.Start("run", "")
	defer root.End()
	hedged := 0
	var lastErr error
	runStart := time.Now()
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if err := c.breaker.allow(); err != nil {
			return nil, 0, hedged, schema.TraceDoc{}, err
		}
		aSpan := root.Child("attempt")
		aSpan.SetAttrUint("attempt", uint64(attempt+1))
		aStart := time.Now()
		reply, err := c.attempt(ctx, key, runID, aSpan.ID(), method, path, body, &hedged)
		c.attemptUS.Observe(uint64(time.Since(aStart).Microseconds()))
		if err != nil {
			aSpan.SetAttr("error", err.Error())
		} else {
			aSpan.SetAttrUint("status", uint64(reply.status))
		}
		aSpan.End()
		if err == nil && !retryable(reply.status) {
			c.breaker.report(true)
			c.runUS.Observe(uint64(time.Since(runStart).Microseconds()))
			root.SetAttrUint("attempts", uint64(attempt+1))
			root.End()
			return reply, attempt + 1, hedged, tr.Doc(), nil
		}
		c.breaker.report(false)
		retryAfter := 0
		if err != nil {
			lastErr = err
		} else {
			apiErr := reply.apiError()
			lastErr = apiErr
			retryAfter = apiErr.RetryAfterSec
		}
		if ctx.Err() != nil {
			return nil, 0, hedged, schema.TraceDoc{}, ctx.Err()
		}
		if attempt+1 == c.cfg.MaxAttempts {
			break
		}
		if err := c.cfg.Sleep(ctx, c.backoff(attempt, retryAfter)); err != nil {
			return nil, 0, hedged, schema.TraceDoc{}, err
		}
	}
	return nil, 0, hedged, schema.TraceDoc{}, fmt.Errorf("client: %d attempts exhausted: %w", c.cfg.MaxAttempts, lastErr)
}

// conclude decodes a conclusive reply into the caller's result.
func (c *Client) conclude(reply *httpReply, attempts, hedged int) (*RunResult, error) {
	if reply.status != http.StatusOK {
		return nil, reply.apiError()
	}
	var resp schema.RunResponse
	if err := reply.env.Open(schema.ServeV1, &resp); err != nil {
		return nil, fmt.Errorf("client: decoding run response: %w", err)
	}
	return &RunResult{
		Response: resp,
		Replayed: reply.replayed,
		Attempts: attempts,
		Hedged:   hedged,
	}, nil
}

// Reply is one conclusive raw HTTP exchange: the status, the exact
// body bytes, and the winning attempt's response headers. It is the
// currency of Exchange, the proxy-grade entry point — nothing is
// re-encoded, so a proxy forwarding Body preserves byte-identity with
// the origin's answer.
type Reply struct {
	Status int
	Body   []byte
	Header http.Header
	// Replayed is set when the server answered from its idempotency
	// cache rather than executing again.
	Replayed bool
	// Attempts counts tries made (1 = first try worked); Hedged counts
	// duplicate requests launched by the hedging timer.
	Attempts int
	Hedged   int
}

// Exchange performs one logical request under a caller-supplied
// idempotency key, with the full resilience machinery of this client:
// breaker gate, per-attempt timeouts, hedging, exponential backoff
// with jitter and Retry-After floors. Because the key is the caller's,
// a fleet front tier can pin one key to a whole failover chain — every
// attempt, on every backend tried, names the same key, which is what
// scopes "at most one execution per conclusive response" across
// backend moves.
//
// Any conclusive answer — 2xx or a non-retryable error status — comes
// back as a *Reply with a nil error; retryable statuses (429/5xx) are
// retried here and, when the attempt budget runs out, surface as an
// error (so the caller can fail over). ErrCircuitOpen reports a
// refusing breaker without touching the wire.
func (c *Client) Exchange(ctx context.Context, key, runID, method, path string, body []byte) (*Reply, error) {
	if key == "" {
		key = c.nextKey()
	}
	reply, attempts, hedged, _, err := c.execute(ctx, key, runID, method, path, body)
	if err != nil {
		return nil, err
	}
	return &Reply{
		Status:   reply.status,
		Body:     reply.raw,
		Header:   reply.header,
		Replayed: reply.replayed,
		Attempts: attempts,
		Hedged:   hedged,
	}, nil
}

// httpReply is one attempt's decoded HTTP answer. raw keeps the exact
// body bytes for endpoints whose success answer is a bare artifact
// document rather than a roload-serve/v1 envelope (GET /v1/images).
type httpReply struct {
	status   int
	env      schema.Envelope
	raw      []byte
	header   http.Header
	replayed bool
	retryHdr string
}

func (r *httpReply) apiError() *APIError {
	var e schema.ErrorResponse
	if err := r.env.Open(schema.ServeV1, &e); err != nil {
		e = schema.ErrorResponse{Error: fmt.Sprintf("undecodable %d response", r.status), Kind: "internal"}
	}
	if e.RetryAfterSec == 0 && r.retryHdr != "" {
		if n, err := strconv.Atoi(r.retryHdr); err == nil {
			e.RetryAfterSec = n
		}
	}
	return &APIError{Status: r.status, Kind: e.Kind, Message: e.Error, RetryAfterSec: e.RetryAfterSec}
}

// attempt performs one (possibly hedged) attempt under the per-attempt
// timeout. With hedging enabled, a duplicate request is launched after
// HedgeDelay of silence; the first leg to answer wins and the other is
// cancelled. Both legs carry the same idempotency key.
func (c *Client) attempt(ctx context.Context, key, runID, parentSpan, method, path string, body []byte, hedged *int) (*httpReply, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()
	if c.cfg.HedgeDelay <= 0 {
		return c.do(actx, key, runID, parentSpan, method, path, body)
	}

	type legResult struct {
		reply *httpReply
		err   error
	}
	// Buffered to the maximum number of legs: a losing leg's send never
	// blocks, so no goroutine outlives the attempt.
	results := make(chan legResult, 2)
	launch := func() {
		go func() {
			reply, err := c.do(actx, key, runID, parentSpan, method, path, body)
			results <- legResult{reply, err}
		}()
	}
	launch()
	legs, answered := 1, 0
	hedgeTimer := time.NewTimer(c.cfg.HedgeDelay)
	defer hedgeTimer.Stop()
	var firstErr error
	for {
		select {
		case r := <-results:
			answered++
			if r.err == nil {
				cancel() // the straggler (if any) is abandoned
				return r.reply, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if answered == legs {
				return nil, firstErr
			}
		case <-hedgeTimer.C:
			if legs == 1 {
				legs++
				*hedged++
				launch()
			}
		}
	}
}

// do performs one HTTP exchange. The Roload-Trace header carries the
// logical run's id so the server adopts it instead of minting one, and
// Roload-Trace-Parent names the client's attempt span so the merged
// trace links the server's request span under this attempt.
func (c *Client) do(ctx context.Context, key, runID, parentSpan, method, path string, body []byte) (*httpReply, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.cfg.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", key)
	req.Header.Set("Roload-Trace", runID)
	req.Header.Set("Roload-Trace-Parent", parentSpan)
	if extra, ok := ctx.Value(extraHeaderKey{}).(http.Header); ok {
		for k, vs := range extra {
			req.Header.Del(k)
			for _, v := range vs {
				req.Header.Add(k, v)
			}
		}
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	reply := &httpReply{
		status:   resp.StatusCode,
		raw:      data,
		header:   resp.Header,
		replayed: resp.Header.Get("Idempotency-Replayed") == "true",
		retryHdr: resp.Header.Get("Retry-After"),
	}
	if err := json.Unmarshal(data, &reply.env); err != nil {
		return nil, fmt.Errorf("client: undecodable %d response body: %w", resp.StatusCode, err)
	}
	return reply, nil
}
