package client

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen is returned by Client calls refused locally because
// the circuit breaker is open (or a half-open probe is already in
// flight). Callers back off without touching the server at all.
var ErrCircuitOpen = errors.New("client: circuit breaker open")

// BreakerConfig parameterizes the circuit breaker. The zero value is
// usable.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failures that
	// opens the circuit (0 = 5).
	FailureThreshold int
	// OpenFor is how long the circuit stays open before a half-open
	// probe is allowed through (0 = 5s).
	OpenFor time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 5 * time.Second
	}
	return c
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// breaker is a consecutive-failure circuit breaker with half-open
// probing: closed → (threshold failures) → open → (OpenFor elapses,
// one probe allowed) → half-open → closed on probe success, back to
// open on probe failure. The clock is injected so the transitions are
// unit-testable without sleeping.
type breaker struct {
	mu  sync.Mutex
	cfg BreakerConfig
	now func() time.Time

	state    breakerState
	failures int
	openedAt time.Time
	probing  bool
}

func newBreaker(cfg BreakerConfig, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{cfg: cfg.withDefaults(), now: now}
}

// allow asks whether a request may be sent. In the open state it
// transitions to half-open once OpenFor has elapsed and admits exactly
// one probe; everything else is refused with ErrCircuitOpen.
func (b *breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.OpenFor {
			return ErrCircuitOpen
		}
		b.state = breakerHalfOpen
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			return ErrCircuitOpen
		}
		b.probing = true
		return nil
	}
}

// report feeds the outcome of an admitted request back. Conclusive
// responses (any response the client will not retry) count as success;
// transport errors and retryable statuses count as failure.
func (b *breaker) report(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.probing = false
		if success {
			b.state = breakerClosed
			b.failures = 0
		} else {
			b.state = breakerOpen
			b.openedAt = b.now()
		}
	default:
		if success {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.state = breakerOpen
			b.openedAt = b.now()
		}
	}
}

// currentState reports the state name (for tests and metrics).
func (b *breaker) currentState() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}
