// The telemetry side of the client: the live run-event stream reader
// (Server-Sent Events from GET /v1/runs/{id}/events), the server trace
// fetcher, and the client-side latency metrics snapshot. Together with
// RunWithID this is the subscribe-then-post pattern: mint a run id,
// open the stream, post the run under the same id, and watch progress
// ticks, audit records and checkpoints arrive while it executes.
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"roload/internal/schema"
	"roload/internal/telemetry"
)

// NewRunID mints a run id suitable for RunWithID/Stream.
func NewRunID() string { return telemetry.NewRunID() }

// Metrics is a point-in-time snapshot of the client's own latency
// distributions (microseconds).
type Metrics struct {
	// AttemptLatencyUS has one observation per HTTP attempt (hedged
	// legs count as one attempt: the observation is first-answer time).
	AttemptLatencyUS schema.Histogram `json:"attempt_latency_us"`
	// RunLatencyUS has one observation per concluded logical run,
	// retries and backoff sleeps included.
	RunLatencyUS schema.Histogram `json:"run_latency_us"`
}

// Metrics snapshots the client-side latency histograms.
func (c *Client) Metrics() Metrics {
	return Metrics{
		AttemptLatencyUS: c.attemptUS.Snapshot(),
		RunLatencyUS:     c.runUS.Snapshot(),
	}
}

// Stream subscribes to a run's live event stream. It returns a channel
// that delivers events in publication order and closes when the stream
// ends — normally with a terminal "result" event, or early on server
// drain or context cancellation. Cancel ctx to disconnect; the reader
// goroutine exits and the channel closes.
//
// Subscribing before the run is posted (RunWithID with the same id)
// guarantees no events are missed; subscribing mid-run replays the
// broker's bounded history first.
func (c *Client) Stream(ctx context.Context, runID string) (<-chan schema.RunEvent, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.cfg.BaseURL+"/v1/runs/"+runID+"/events", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		var env schema.Envelope
		if jerr := json.Unmarshal(data, &env); jerr == nil {
			reply := &httpReply{status: resp.StatusCode, env: env}
			return nil, reply.apiError()
		}
		return nil, fmt.Errorf("client: event stream for %s answered %d", runID, resp.StatusCode)
	}
	ch := make(chan schema.RunEvent, 64)
	go func() {
		defer close(ch)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		var data strings.Builder
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if data.Len() == 0 {
					continue
				}
				var ev schema.RunEvent
				if err := json.Unmarshal([]byte(data.String()), &ev); err == nil {
					select {
					case ch <- ev:
					case <-ctx.Done():
						return
					}
				}
				data.Reset()
			case strings.HasPrefix(line, "data: "):
				data.WriteString(strings.TrimPrefix(line, "data: "))
			}
			// "id:" and "event:" lines carry nothing the decoded
			// RunEvent (Seq, Kind) does not already repeat.
		}
	}()
	return ch, nil
}

// FetchTrace retrieves the server-side roload-trace/v1 span document
// of a finished run, ready to merge with RunResult.Trace via
// telemetry.Merge.
func (c *Client) FetchTrace(ctx context.Context, runID string) (schema.TraceDoc, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.cfg.BaseURL+"/v1/runs/"+runID+"/trace", nil)
	if err != nil {
		return schema.TraceDoc{}, err
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return schema.TraceDoc{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return schema.TraceDoc{}, err
	}
	if resp.StatusCode != http.StatusOK {
		var env schema.Envelope
		if jerr := json.Unmarshal(data, &env); jerr == nil {
			reply := &httpReply{status: resp.StatusCode, env: env}
			return schema.TraceDoc{}, reply.apiError()
		}
		return schema.TraceDoc{}, fmt.Errorf("client: trace for %s answered %d", runID, resp.StatusCode)
	}
	var doc schema.TraceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return schema.TraceDoc{}, fmt.Errorf("client: decoding trace document: %w", err)
	}
	if err := doc.Validate(); err != nil {
		return schema.TraceDoc{}, fmt.Errorf("client: invalid trace document: %w", err)
	}
	return doc, nil
}
