package spec

import (
	"testing"

	"roload/internal/core"
)

// Golden outputs for every workload at test scale, pinned so that any
// accidental change to a workload kernel, the compiler, the runtime,
// or the simulator's architectural behaviour is caught immediately.
// (Cycle counts are deliberately NOT pinned: the cost model may be
// tuned; architectural results may not drift.)
var goldens = []struct {
	name   string
	stdout string
	code   int
}{
	{"401.bzip2", "10979\n", 186},
	{"403.gcc", "557034\n150\n", 65},
	{"429.mcf", "403\n2\n", 152},
	{"445.gobmk", "66\n0\n", 66},
	{"456.hmmer", "245\n", 245},
	{"458.sjeng", "36\n684\n", 218},
	{"462.libquantum", "57600\n", 121},
	{"464.h264ref", "10157\n1093\n", 206},
	{"471.omnetpp", "781\n300\n", 28},
	{"473.astar", "133\n", 133},
	{"483.xalancbmk", "11271993\n1532\n", 85},
}

func TestGoldenOutputs(t *testing.T) {
	for _, g := range goldens {
		g := g
		t.Run(g.name, func(t *testing.T) {
			t.Parallel()
			w, ok := ByName(g.name)
			if !ok {
				t.Fatal("workload missing")
			}
			m, err := core.Measure(w.TestSource(), core.HardenNone, core.SysFull, 500_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if !m.Result.Exited {
				t.Fatalf("killed by %v", m.Result.Signal)
			}
			if got := string(m.Result.Stdout); got != g.stdout {
				t.Errorf("stdout = %q, want %q", got, g.stdout)
			}
			if m.Result.Code != g.code {
				t.Errorf("exit = %d, want %d", m.Result.Code, g.code)
			}
		})
	}
}
