package spec

// The three C++-style workloads. These carry the virtual-call load of
// Figure 3: every hot loop dispatches through vtables, mirroring
// 471.omnetpp, 473.astar and 483.xalancbmk, the three C++ benchmarks
// of SPEC CINT2006.

// 471.omnetpp — discrete-event network simulation: heterogeneous
// modules (source, queue, sink, router) exchange messages through a
// priority event queue; each delivery is a virtual handle() dispatch.
var omnetpp = Workload{
	Name: "471.omnetpp", Lang: "C++", RefScale: 5200, TestScale: 300,
	source: prng + `
class Module {
	id int;
	outPeer int;
	stat int;
	virtual handle(payload int, now int) int { return 0 - 1; }
	virtual collect() int { return this.stat; }
}
class Source extends Module {
	virtual handle(payload int, now int) int {
		this.stat++;
		return this.outPeer; // forward a fresh packet
	}
}
class Queue extends Module {
	depth int;
	virtual handle(payload int, now int) int {
		this.depth++;
		this.stat += this.depth;
		if (this.depth > 8) { this.depth = 0; return 0 - 1; } // drop
		return this.outPeer;
	}
}
class Router extends Module {
	virtual handle(payload int, now int) int {
		this.stat++;
		// route by payload hash
		return (this.outPeer + payload % 3) % 16;
	}
}
class Sink extends Module {
	virtual handle(payload int, now int) int {
		this.stat += payload & 7;
		return 0 - 1; // absorbed
	}
}

// binary-heap event queue: (time, module, payload) triples
var heapT *int;
var heapM *int;
var heapP *int;
var heapN int = 0;

func heapPush(t int, m int, p int) {
	var i int = heapN;
	heapT[i] = t; heapM[i] = m; heapP[i] = p;
	heapN++;
	while (i > 0) {
		var parent int = (i - 1) / 2;
		if (heapT[parent] <= heapT[i]) { return; }
		var tt int = heapT[parent]; heapT[parent] = heapT[i]; heapT[i] = tt;
		tt = heapM[parent]; heapM[parent] = heapM[i]; heapM[i] = tt;
		tt = heapP[parent]; heapP[parent] = heapP[i]; heapP[i] = tt;
		i = parent;
	}
}
func heapPop() {
	heapN--;
	heapT[0] = heapT[heapN]; heapM[0] = heapM[heapN]; heapP[0] = heapP[heapN];
	var i int = 0;
	while (1) {
		var l int = 2 * i + 1; var r int = l + 1; var small int = i;
		if (l < heapN && heapT[l] < heapT[small]) { small = l; }
		if (r < heapN && heapT[r] < heapT[small]) { small = r; }
		if (small == i) { return; }
		var tt int = heapT[small]; heapT[small] = heapT[i]; heapT[i] = tt;
		tt = heapM[small]; heapM[small] = heapM[i]; heapM[i] = tt;
		tt = heapP[small]; heapP[small] = heapP[i]; heapP[i] = tt;
		i = small;
	}
}

func main() int {
	var events int = __SCALE__;
	heapT = new int[events + 64];
	heapM = new int[events + 64];
	heapP = new int[events + 64];
	var mods *int = new int[16];
	var net **Module = mods;
	for (var i int = 0; i < 16; i++) {
		var kind int = i % 4;
		var m *Module = null;
		if (kind == 0) { var s *Source = new Source; m = s; }
		if (kind == 1) { var q *Queue = new Queue; m = q; }
		if (kind == 2) { var r *Router = new Router; m = r; }
		if (kind == 3) { var k *Sink = new Sink; m = k; }
		m.id = i;
		m.outPeer = (i + 1) % 16;
		net[i] = m;
	}
	// seed initial events
	for (var i int = 0; i < 8; i++) { heapPush(rnd() % 50, i % 16, rnd() % 97); }
	var processed int = 0;
	var now int = 0;
	while (heapN > 0 && processed < events) {
		now = heapT[0];
		var mi int = heapM[0];
		var pay int = heapP[0];
		heapPop();
		processed++;
		var m *Module = net[mi];
		var nxt int = m.handle(pay, now);        // virtual dispatch
		if (nxt >= 0) {
			heapPush(now + 1 + pay % 7, nxt, (pay * 13 + 5) % 997);
		}
		if (heapN == 0) { heapPush(now + 1, processed % 16, rnd() % 97); }
	}
	var sum int = 0;
	for (var i int = 0; i < 16; i++) {
		sum += net[i].collect();                  // virtual dispatch
	}
	print_int(sum);
	print_int(processed);
	return sum % 251;
}
`,
}

// 473.astar — A* pathfinding over a grid with obstacle terrain; the
// terrain cost and heuristic are virtual methods of interchangeable
// "way" classes, matching astar's regionway/way2 class dispatch.
var astar = Workload{
	Name: "473.astar", Lang: "C++", RefScale: 30, TestScale: 10,
	source: prng + `
class Way {
	goalX int; goalY int;
	virtual cost(cell int) int { return 1 + cell % 3; }
	virtual heur(x int, y int) int {
		var dx int = this.goalX - x; if (dx < 0) { dx = 0 - dx; }
		var dy int = this.goalY - y; if (dy < 0) { dy = 0 - dy; }
		return dx + dy;
	}
}
class RoadWay extends Way {
	virtual cost(cell int) int { if (cell % 4 == 0) { return 1; } return 5; }
}
class HillWay extends Way {
	virtual cost(cell int) int { return 1 + cell % 9; }
	virtual heur(x int, y int) int {
		var dx int = this.goalX - x; if (dx < 0) { dx = 0 - dx; }
		var dy int = this.goalY - y; if (dy < 0) { dy = 0 - dy; }
		if (dx > dy) { return dx; }
		return dy;
	}
}

var N int = __SCALE__;
var grid *int;
var dist *int;
var closed *int;

func search(w *Way) int {
	for (var i int = 0; i < N * N; i++) { dist[i] = 1000000000; closed[i] = 0; }
	dist[0] = 0;
	var expanded int = 0;
	while (1) {
		// pick open node with least f = g + h (linear scan "open list")
		var best int = 0 - 1;
		var bestF int = 1000000000;
		for (var i int = 0; i < N * N; i++) {
			if (closed[i] == 0 && dist[i] < 1000000000) {
				var f int = dist[i] + w.heur(i % N, i / N);   // vcall
				if (f < bestF) { bestF = f; best = i; }
			}
		}
		if (best < 0) { return 0 - 1; }
		if (best == N * N - 1) { return dist[best]; }
		closed[best] = 1;
		expanded++;
		var bx int = best % N; var by int = best / N;
		for (var d int = 0; d < 4; d++) {
			var nx int = bx; var ny int = by;
			if (d == 0) { nx = bx + 1; }
			if (d == 1) { nx = bx - 1; }
			if (d == 2) { ny = by + 1; }
			if (d == 3) { ny = by - 1; }
			if (nx >= 0 && nx < N && ny >= 0 && ny < N) {
				var ni int = ny * N + nx;
				if (closed[ni] == 0) {
					var nd int = dist[best] + w.cost(grid[ni]);  // vcall
					if (nd < dist[ni]) { dist[ni] = nd; }
				}
			}
		}
	}
	return 0 - 1;
}

func main() int {
	grid = new int[N * N];
	dist = new int[N * N];
	closed = new int[N * N];
	for (var i int = 0; i < N * N; i++) { grid[i] = rnd() % 16; }
	var ways *int = new int[3];
	var ws **Way = ways;
	var plain *Way = new Way;
	var road *RoadWay = new RoadWay;
	var hill *HillWay = new HillWay;
	ws[0] = plain; ws[1] = road; ws[2] = hill;
	var total int = 0;
	for (var k int = 0; k < 3; k++) {
		var w *Way = ws[k];
		w.goalX = N - 1; w.goalY = N - 1;
		total += search(w);
	}
	print_int(total);
	return total % 251;
}
`,
}

// 483.xalancbmk — XSLT-style transformation: build a DOM of element /
// text / comment nodes (virtual serialize + transform methods), apply
// a template rewrite, and serialize with a rolling checksum.
var xalancbmk = Workload{
	Name: "483.xalancbmk", Lang: "C++", RefScale: 110, TestScale: 14,
	source: prng + `
class XNode {
	tag int;
	nchild int;
	kids *int;             // array of *XNode, stored as ints
	virtual serialize() int { return 0; }
	virtual transform() int { return 0; }
}
class Element extends XNode {
	virtual serialize() int {
		var sum int = this.tag * 31;
		var ks **XNode = this.kids;
		for (var i int = 0; i < this.nchild; i++) {
			sum = (sum * 33 + ks[i].serialize()) & 0xffffff;  // vcall
		}
		return sum;
	}
	virtual transform() int {
		var n int = 1;
		var ks **XNode = this.kids;
		for (var i int = 0; i < this.nchild; i++) {
			n += ks[i].transform();                            // vcall
		}
		// template: renumber even tags
		if (this.tag % 2 == 0) { this.tag = this.tag + 1000; }
		return n;
	}
}
class Text extends XNode {
	virtual serialize() int { return this.tag & 0xffff; }
	virtual transform() int { return 1; }
}
class Comment extends XNode {
	virtual serialize() int { return 7; }
	virtual transform() int { return 0; }
}

var built int = 0;
func build(depth int, fanout int) *XNode {
	built++;
	if (depth == 0) {
		if (built % 7 == 0) {
			var c *Comment = new Comment;
			c.tag = rnd() % 100;
			return c;
		}
		var t *Text = new Text;
		t.tag = rnd() % 65536;
		return t;
	}
	var e *Element = new Element;
	e.tag = rnd() % 100;
	e.nchild = fanout;
	e.kids = new int[fanout];
	var ks **XNode = e.kids;
	for (var i int = 0; i < fanout; i++) {
		ks[i] = build(depth - 1, fanout);
	}
	return e;
}

func main() int {
	var docs int = __SCALE__;
	var check int = 0;
	var nodes int = 0;
	for (var d int = 0; d < docs; d++) {
		var root *XNode = build(4, 3);
		nodes += root.transform();     // vcall tree walk
		check = (check * 37 + root.serialize()) & 0xffffff;  // vcall tree walk
	}
	print_int(check);
	print_int(nodes);
	return check % 251;
}
`,
}
