package spec

import (
	"strings"
	"testing"

	"roload/internal/core"
)

func TestWorkloadRegistry(t *testing.T) {
	all := Workloads()
	if len(all) != 11 {
		t.Fatalf("workloads = %d, want 11 (SPEC CINT2006 minus perlbench)", len(all))
	}
	cxx := 0
	seen := map[string]bool{}
	for _, w := range all {
		if seen[w.Name] {
			t.Errorf("duplicate workload %s", w.Name)
		}
		seen[w.Name] = true
		if w.Lang == "C++" {
			cxx++
		}
		if w.RefScale <= w.TestScale {
			t.Errorf("%s: RefScale %d must exceed TestScale %d", w.Name, w.RefScale, w.TestScale)
		}
	}
	if cxx != 3 {
		t.Errorf("C++ workloads = %d, want 3", cxx)
	}
	if len(CXX()) != 3 {
		t.Errorf("CXX() = %d entries", len(CXX()))
	}
	if _, ok := ByName("429.mcf"); !ok {
		t.Error("ByName failed")
	}
	if _, ok := ByName("400.perlbench"); ok {
		t.Error("perlbench must be excluded (paper Section V-B)")
	}
}

func TestSourceForSubstitutesScale(t *testing.T) {
	w, _ := ByName("401.bzip2")
	src := w.SourceFor(77)
	if !strings.Contains(src, "= 77;") {
		t.Error("scale not substituted")
	}
	if strings.Contains(src, "__SCALE__") {
		t.Error("placeholder left in source")
	}
}

// Every workload must compile, run to completion on the full system,
// print output, and produce identical results under every hardening
// scheme — the backward-compatibility and correctness prerequisite for
// all of the paper's measurements.
func TestWorkloadsCorrectUnderAllHardenings(t *testing.T) {
	schemes := []core.Hardening{
		core.HardenNone, core.HardenVCall, core.HardenVTint,
		core.HardenICall, core.HardenCFI,
	}
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			src := w.TestSource()
			var wantOut string
			var wantCode int
			for i, h := range schemes {
				m, err := core.Measure(src, h, core.SysFull, 200_000_000)
				if err != nil {
					t.Fatalf("%v: %v", h, err)
				}
				if !m.Result.Exited {
					t.Fatalf("%v: killed by %v (roload=%v va=%#x)",
						h, m.Result.Signal, m.Result.ROLoadViolation, m.Result.FaultVA)
				}
				if len(m.Result.Stdout) == 0 {
					t.Fatalf("%v: no output", h)
				}
				if i == 0 {
					wantOut = string(m.Result.Stdout)
					wantCode = m.Result.Code
					continue
				}
				if got := string(m.Result.Stdout); got != wantOut {
					t.Errorf("%v: output %q differs from baseline %q", h, got, wantOut)
				}
				if m.Result.Code != wantCode {
					t.Errorf("%v: exit %d differs from baseline %d", h, m.Result.Code, wantCode)
				}
			}
		})
	}
}

// The C++ workloads must actually exercise virtual dispatch, and at
// least some C workloads must exercise indirect calls — otherwise the
// figures would measure nothing.
func TestWorkloadCallProfiles(t *testing.T) {
	for _, w := range CXX() {
		m, err := core.Measure(w.TestSource(), core.HardenVCall, core.SysFull, 200_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if m.Result.CPUStats.ROLoads == 0 {
			t.Errorf("%s: no protected vtable loads executed", w.Name)
		}
	}
	gccW, _ := ByName("403.gcc")
	m, err := core.Measure(gccW.TestSource(), core.HardenICall, core.SysFull, 200_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Result.CPUStats.ROLoads == 0 {
		t.Error("403.gcc: no protected indirect-call loads executed")
	}
}

// Reference-scale runs must be big enough to be meaningful.
func TestRefScaleInstructionCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("reference runs are slow")
	}
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			m, err := core.Measure(w.RefSource(), core.HardenNone, core.SysFull, 500_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if !m.Result.Exited {
				t.Fatalf("killed: %+v", m.Result.Signal)
			}
			if m.Result.Instret < 200_000 {
				t.Errorf("reference run retires only %d instructions; too small to measure", m.Result.Instret)
			}
		})
	}
}
