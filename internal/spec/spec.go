// Package spec provides the evaluation workloads: eleven synthetic
// benchmarks mirroring the SPEC CINT2006 suite the paper measures
// (400.perlbench is excluded there for compilation failure; we keep
// the same set of eleven).
//
// Each workload is a MiniC program reproducing the characteristic
// kernel of its SPEC counterpart — compression, compilation with
// dispatch tables, network-flow optimization, game-tree search,
// profile-HMM dynamic programming, chess search, quantum-register
// simulation, video-block encoding, and the three C++-style,
// vtable-heavy codes (discrete-event simulation, A*, XML transform).
// What the figures measure is *relative* overhead per benchmark, which
// depends on each program's density of virtual and indirect calls and
// on its memory behaviour; those are the properties the synthetic
// kernels reproduce.
//
// Every workload finishes by returning a checksum (mod 251) so that
// all hardened variants can be cross-checked for identical behaviour.
package spec

import "strings"

// Workload is one benchmark program.
type Workload struct {
	// Name follows SPEC numbering, e.g. "401.bzip2".
	Name string
	// Lang is "C" or "C++" (the C++ ones carry the vcall workloads of
	// Figure 3).
	Lang string
	// source is the MiniC text with a __SCALE__ placeholder.
	source string
	// RefScale is the scale used for "reference" (benchmark) runs;
	// TestScale is a fast size for unit tests.
	RefScale, TestScale int
}

// SourceFor instantiates the workload at a scale.
func (w Workload) SourceFor(scale int) string {
	return strings.ReplaceAll(w.source, "__SCALE__", itoa(scale))
}

// RefSource returns the reference-size program.
func (w Workload) RefSource() string { return w.SourceFor(w.RefScale) }

// TestSource returns the test-size program.
func (w Workload) TestSource() string { return w.SourceFor(w.TestScale) }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [24]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// Workloads returns all eleven benchmarks in SPEC order.
func Workloads() []Workload {
	return []Workload{
		bzip2, gcc, mcf, gobmk, hmmer, sjeng, libquantum, h264ref,
		omnetpp, astar, xalancbmk,
	}
}

// CXX returns the three C++-style benchmarks used for the virtual-call
// experiments (Figure 3).
func CXX() []Workload {
	return []Workload{omnetpp, astar, xalancbmk}
}

// ByName returns a workload by its SPEC name.
func ByName(name string) (Workload, bool) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// prng is the shared linear congruential generator prelude.
const prng = `
var seed int = 123456789;
func rnd() int {
	seed = (seed * 6364136223846793005 + 1442695040888963407) & 0x7fffffffffffffff;
	return (seed >> 16) & 0x7fffffff;
}
`
