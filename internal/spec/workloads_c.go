package spec

// The eight C-style workloads. Scales are tuned so a reference run
// retires on the order of a million instructions on the simulator.

// 401.bzip2 — block compression: run-length encoding followed by
// move-to-front recoding over a pseudo-random buffer with skewed
// symbol distribution, then a frequency-table checksum.
var bzip2 = Workload{
	Name: "401.bzip2", Lang: "C", RefScale: 24000, TestScale: 1200,
	source: prng + `
var n int = __SCALE__;
func main() int {
	var buf *int = new int[n];
	// skewed source: long runs of few symbols
	var i int = 0;
	while (i < n) {
		var sym int = rnd() % 16;
		var run int = 1 + rnd() % 12;
		var j int = 0;
		while (j < run && i < n) {
			buf[i] = sym;
			i++; j++;
		}
	}
	// RLE encode
	var enc *int = new int[n * 2];
	var m int = 0;
	i = 0;
	while (i < n) {
		var sym int = buf[i];
		var run int = 0;
		while (i < n && buf[i] == sym) { run++; i++; }
		enc[m] = sym; enc[m + 1] = run;
		m += 2;
	}
	// move-to-front over the RLE symbols
	var mtf [16]int;
	for (var k int = 0; k < 16; k++) { mtf[k] = k; }
	var freq [16]int;
	for (var k int = 0; k < m; k += 2) {
		var sym int = enc[k];
		var pos int = 0;
		while (mtf[pos] != sym) { pos++; }
		for (var q int = pos; q > 0; q--) { mtf[q] = mtf[q - 1]; }
		mtf[0] = sym;
		freq[pos] += enc[k + 1];
	}
	var sum int = 0;
	for (var k int = 0; k < 16; k++) { sum += freq[k] * (k + 1); }
	print_int(sum);
	return sum % 251;
}
`,
}

// 403.gcc — a toy compiler pipeline: generate random expression
// trees, constant-fold them, then "emit code" through a per-node-kind
// function-pointer dispatch table (the indirect-call-heavy pattern of
// real compiler back-ends).
var gcc = Workload{
	Name: "403.gcc", Lang: "C", RefScale: 2600, TestScale: 150,
	source: prng + `
struct Node { kind int; val int; left *Node; right *Node; }
var emitted int = 0;
var emitters [4]func(*Node) int;

func emitConst(n *Node) int { emitted += 1; return n.val; }
func emitAdd(n *Node) int {
	emitted += 2;
	return emitters[n.left.kind](n.left) + emitters[n.right.kind](n.right);
}
func emitMul(n *Node) int {
	emitted += 3;
	return emitters[n.left.kind](n.left) * emitters[n.right.kind](n.right);
}
func emitNeg(n *Node) int {
	emitted += 1;
	return 0 - emitters[n.left.kind](n.left);
}

func build(depth int) *Node {
	var n *Node = new Node;
	if (depth <= 0) {
		n.kind = 0;
		n.val = rnd() % 100;
		return n;
	}
	n.kind = 1 + rnd() % 3;
	n.left = build(depth - 1);
	if (n.kind != 3) {
		n.right = build(depth - 1);
	}
	return n;
}

// constant folding: collapse subtrees of constants
func fold(n *Node) *Node {
	if (n.kind == 0) { return n; }
	n.left = fold(n.left);
	if (n.kind == 3) {
		if (n.left.kind == 0) {
			n.kind = 0;
			n.val = 0 - n.left.val;
		}
		return n;
	}
	n.right = fold(n.right);
	if (n.left.kind == 0 && n.right.kind == 0) {
		if (n.kind == 1) { n.val = n.left.val + n.right.val; }
		if (n.kind == 2) { n.val = (n.left.val * n.right.val) % 65536; }
		n.kind = 0;
	}
	return n;
}

func main() int {
	emitters[0] = emitConst;
	emitters[1] = emitAdd;
	emitters[2] = emitMul;
	emitters[3] = emitNeg;
	var funcs int = __SCALE__;
	var sum int = 0;
	for (var f int = 0; f < funcs; f++) {
		var tree *Node = build(2 + rnd() % 3);
		tree = fold(tree);
		sum = (sum + emitters[tree.kind](tree)) & 0xffffff;
	}
	print_int(sum);
	print_int(emitted);
	return sum % 251;
}
`,
}

// 429.mcf — vehicle scheduling as min-cost flow: Bellman-Ford
// relaxation over a layered network with arc costs, the memory-bound
// pointer-chasing pattern of the original.
var mcf = Workload{
	Name: "429.mcf", Lang: "C", RefScale: 46, TestScale: 8,
	source: prng + `
var width int = __SCALE__;
var layers int = 24;
func main() int {
	var n int = width * layers;
	var dist *int = new int[n];
	var cost *int = new int[n * 3];   // 3 forward arcs per node
	var dest *int = new int[n * 3];
	for (var i int = 0; i < n; i++) { dist[i] = 1000000000; }
	for (var i int = 0; i < n * 3; i++) {
		cost[i] = 1 + rnd() % 97;
		var layer int = (i / 3) / width;
		if (layer < layers - 1) {
			dest[i] = (layer + 1) * width + rnd() % width;
		} else {
			dest[i] = 0 - 1;
		}
	}
	for (var s int = 0; s < width; s++) { dist[s] = 0; }
	// Bellman-Ford sweeps
	var changed int = 1;
	var sweeps int = 0;
	while (changed == 1 && sweeps < layers + 2) {
		changed = 0;
		sweeps++;
		for (var u int = 0; u < n; u++) {
			if (dist[u] < 1000000000) {
				for (var e int = 0; e < 3; e++) {
					var v int = dest[u * 3 + e];
					if (v >= 0) {
						var nd int = dist[u] + cost[u * 3 + e];
						if (nd < dist[v]) { dist[v] = nd; changed = 1; }
					}
				}
			}
		}
	}
	var best int = 1000000000;
	for (var t int = n - width; t < n; t++) {
		if (dist[t] < best) { best = dist[t]; }
	}
	print_int(best);
	print_int(sweeps);
	return best % 251;
}
`,
}

// 445.gobmk — Go position evaluation: repeated random stone
// placement on a 19x19 board with flood-fill liberty counting and
// capture detection (the branchy board-scanning kernel of gobmk).
var gobmk = Workload{
	Name: "445.gobmk", Lang: "C", RefScale: 260, TestScale: 20,
	source: prng + `
var board *int;
var mark *int;
var libs int = 0;

func flood(pos int, color int) {
	if (pos < 0) { return; }
	if (mark[pos] != 0) { return; }
	var x int = pos % 19;
	var y int = pos / 19;
	if (board[pos] == 0) { mark[pos] = 2; libs++; return; }
	if (board[pos] != color) { return; }
	mark[pos] = 1;
	if (x > 0)  { flood(pos - 1, color); }
	if (x < 18) { flood(pos + 1, color); }
	if (y > 0)  { flood(pos - 19, color); }
	if (y < 18) { flood(pos + 19, color); }
}

func main() int {
	board = new int[361];
	mark = new int[361];
	var moves int = __SCALE__;
	var captures int = 0;
	var total int = 0;
	for (var m int = 0; m < moves; m++) {
		var pos int = rnd() % 361;
		if (board[pos] == 0) {
			board[pos] = 1 + (m & 1);
			// liberties of the new group
			for (var i int = 0; i < 361; i++) { mark[i] = 0; }
			libs = 0;
			flood(pos, board[pos]);
			if (libs == 0) {
				// suicide: remove the group
				for (var i int = 0; i < 361; i++) {
					if (mark[i] == 1) { board[i] = 0; captures++; }
				}
			}
			total += libs;
		}
	}
	print_int(total);
	print_int(captures);
	return (total + captures) % 251;
}
`,
}

// 456.hmmer — profile HMM search: Viterbi dynamic programming with
// match/insert/delete states over random sequences, the tight
// max-plus inner loop of hmmer.
var hmmer = Workload{
	Name: "456.hmmer", Lang: "C", RefScale: 150, TestScale: 16,
	source: prng + `
var M int = __SCALE__;      // model length
var L int = 120;            // sequence length
func max2(a int, b int) int { if (a > b) { return a; } return b; }
func main() int {
	var matchS *int = new int[M + 1];
	var insS   *int = new int[M + 1];
	var delS   *int = new int[M + 1];
	var prevM  *int = new int[M + 1];
	var prevI  *int = new int[M + 1];
	var prevD  *int = new int[M + 1];
	var emit   *int = new int[(M + 1) * 4];
	for (var k int = 0; k < (M + 1) * 4; k++) { emit[k] = rnd() % 32; }
	var seq *int = new int[L];
	for (var i int = 0; i < L; i++) { seq[i] = rnd() % 4; }
	var neg int = 0 - 100000000;
	for (var k int = 0; k <= M; k++) { prevM[k] = neg; prevI[k] = neg; prevD[k] = neg; }
	prevM[0] = 0;
	for (var i int = 0; i < L; i++) {
		matchS[0] = neg; insS[0] = prevM[0] - 2; delS[0] = neg;
		for (var k int = 1; k <= M; k++) {
			var e int = emit[k * 4 + seq[i]];
			var m int = max2(prevM[k-1], max2(prevI[k-1], prevD[k-1])) + e;
			matchS[k] = m;
			insS[k] = max2(prevM[k] - 3, prevI[k] - 1);
			delS[k] = max2(matchS[k-1] - 4, delS[k-1] - 1);
		}
		for (var k int = 0; k <= M; k++) {
			prevM[k] = matchS[k]; prevI[k] = insS[k]; prevD[k] = delS[k];
		}
	}
	var best int = neg;
	for (var k int = 1; k <= M; k++) { best = max2(best, prevM[k]); }
	print_int(best);
	return best % 251;
}
`,
}

// 458.sjeng — game-tree search: alpha-beta over a simplified 8x8
// capture game with material evaluation and move ordering, the deep
// recursive branching kernel of a chess engine.
var sjeng = Workload{
	Name: "458.sjeng", Lang: "C", RefScale: 5, TestScale: 3,
	source: prng + `
var board [64]int;
var nodes int = 0;

func eval() int {
	var s int = 0;
	for (var i int = 0; i < 64; i++) { s += board[i]; }
	return s;
}

func search(depth int, alpha int, beta int, side int) int {
	nodes++;
	if (depth == 0) { return side * eval(); }
	var best int = 0 - 10000000;
	var tried int = 0;
	for (var from int = 0; from < 64 && tried < 8; from++) {
		if (board[from] * side > 0) {
			var to int = (from + 7 + (nodes % 11)) % 64;
			var captured int = board[to];
			if (captured * side <= 0) {
				tried++;
				var moved int = board[from];
				board[to] = moved; board[from] = 0;
				var v int = 0 - search(depth - 1, 0 - beta, 0 - alpha, 0 - side);
				board[from] = moved; board[to] = captured;
				if (v > best) { best = v; }
				if (best > alpha) { alpha = best; }
				if (alpha >= beta) { from = 64; }
			}
		}
	}
	if (tried == 0) { return side * eval(); }
	return best;
}

func main() int {
	for (var i int = 0; i < 16; i++) { board[i] = 1 + i % 3; }
	for (var i int = 48; i < 64; i++) { board[i] = 0 - (1 + i % 3); }
	var depth int = __SCALE__;
	var total int = 0;
	for (var g int = 0; g < 6; g++) {
		board[16 + g] = 2;
		total += search(depth, 0 - 10000000, 10000000, 1);
	}
	print_int(total);
	print_int(nodes);
	return ((total % 251) + 251 + nodes) % 251;
}
`,
}

// 462.libquantum — quantum register simulation: controlled-NOT and
// phase-flip gates applied across a state vector, plus the amplitude
// summation of a measurement, in fixed-point arithmetic.
var libquantum = Workload{
	Name: "462.libquantum", Lang: "C", RefScale: 13, TestScale: 8,
	source: prng + `
var qubits int = __SCALE__;
func main() int {
	var size int = 1 << qubits;
	var re *int = new int[size];
	var im *int = new int[size];
	re[0] = 65536; // |0...0> with unit amplitude (16.16 fixed point)
	// layered circuit: for each pair of qubits apply CNOT + phase
	for (var ctrl int = 0; ctrl < qubits; ctrl++) {
		var target int = (ctrl + 1) % qubits;
		var cbit int = 1 << ctrl;
		var tbit int = 1 << target;
		// "half-Hadamard" on ctrl in fixed point: mix amplitudes
		for (var i int = 0; i < size; i++) {
			if ((i & cbit) == 0) {
				var j int = i | cbit;
				var a int = re[i]; var b int = re[j];
				re[i] = (a + b) * 46341 / 65536;
				re[j] = (a - b) * 46341 / 65536;
				a = im[i]; b = im[j];
				im[i] = (a + b) * 46341 / 65536;
				im[j] = (a - b) * 46341 / 65536;
			}
		}
		// CNOT ctrl->target
		for (var i int = 0; i < size; i++) {
			if ((i & cbit) != 0 && (i & tbit) == 0) {
				var j int = i | tbit;
				var t int = re[i]; re[i] = re[j]; re[j] = t;
				t = im[i]; im[i] = im[j]; im[j] = t;
			}
		}
		// conditional phase flip
		for (var i int = 0; i < size; i++) {
			if ((i & cbit) != 0 && (i & tbit) != 0) {
				im[i] = 0 - im[i];
			}
		}
	}
	var prob int = 0;
	for (var i int = 0; i < size; i++) {
		prob += (re[i] / 256) * (re[i] / 256) + (im[i] / 256) * (im[i] / 256);
	}
	print_int(prob);
	return prob % 251;
}
`,
}

// 464.h264ref — video encoding: sum-of-absolute-differences motion
// search over synthetic frames plus an integer 4x4 transform of the
// best-match residual, h264ref's two hottest kernels.
var h264ref = Workload{
	Name: "464.h264ref", Lang: "C", RefScale: 4, TestScale: 1,
	source: prng + `
var W int = 48;
var H int = 32;
func absdiff(a int, b int) int { if (a > b) { return a - b; } return b - a; }
func main() int {
	var frames int = __SCALE__;
	var cur *int = new int[W * H];
	var ref *int = new int[W * H];
	for (var i int = 0; i < W * H; i++) { ref[i] = rnd() % 256; }
	var totalSad int = 0;
	var coeffSum int = 0;
	for (var f int = 0; f < frames; f++) {
		for (var i int = 0; i < W * H; i++) {
			cur[i] = (ref[i] + rnd() % 8) % 256;
		}
		// 4x4 block motion search, +-2 pixel window
		for (var by int = 0; by + 4 <= H; by += 4) {
			for (var bx int = 0; bx + 4 <= W; bx += 4) {
				var bestSad int = 100000000;
				var bestDx int = 0; var bestDy int = 0;
				for (var dy int = 0 - 2; dy <= 2; dy++) {
					for (var dx int = 0 - 2; dx <= 2; dx++) {
						var sad int = 0;
						for (var y int = 0; y < 4; y++) {
							for (var x int = 0; x < 4; x++) {
								var cy int = by + y; var cx int = bx + x;
								var ry int = cy + dy; var rx int = cx + dx;
								if (ry < 0) { ry = 0; }
								if (ry >= H) { ry = H - 1; }
								if (rx < 0) { rx = 0; }
								if (rx >= W) { rx = W - 1; }
								sad += absdiff(cur[cy * W + cx], ref[ry * W + rx]);
							}
						}
						if (sad < bestSad) { bestSad = sad; bestDx = dx; bestDy = dy; }
					}
				}
				totalSad += bestSad + bestDx * 0 + bestDy * 0;
			}
		}
		// integer transform of one residual block per frame
		var blk [16]int;
		for (var i int = 0; i < 16; i++) {
			blk[i] = cur[i] - ref[i];
		}
		for (var r int = 0; r < 4; r++) {
			var a int = blk[r*4+0]; var b int = blk[r*4+1];
			var c int = blk[r*4+2]; var d int = blk[r*4+3];
			blk[r*4+0] = a + b + c + d;
			blk[r*4+1] = 2*a + b - c - 2*d;
			blk[r*4+2] = a - b - c + d;
			blk[r*4+3] = a - 2*b + 2*c - d;
		}
		for (var i int = 0; i < 16; i++) { coeffSum += blk[i] & 0xff; }
		// swap frames
		var t *int = ref; ref = cur; cur = t;
	}
	print_int(totalSad);
	print_int(coeffSum);
	return (totalSad + coeffSum) % 251;
}
`,
}
