package cpu

// The block engine: guest basic blocks are translated once
// (internal/block) and emitted as chains of pre-bound closures, so
// straight-line code runs with no per-instruction fetch, decode or
// dispatch. Like every fast path in this simulator it may change host
// time only — cycles, statistics, TLB/cache state, memory, traps and
// checkpoints are bit-identical to the interpreter. The accounting
// partition that preserves that invariant:
//
//   - Folded at translate time, applied in one update when a block
//     fully retires: base cycles, multiply/divide/jump extras, retire
//     counts and the static instruction-mix statistics.
//   - Charged inline by each closure, in the interpreter's exact
//     order: D-side translation walks and cache misses (dataAccess),
//     I-side line accounting (one guaranteed TLB hit plus the real
//     I-cache access per instruction), and the taken-branch penalty.
//   - Replayed on a side exit (fault or self-modifying store): the
//     folded accounting of the instructions that did retire, plus the
//     faulting instruction's pre-fault charges.
//
// Block entry performs a real I-side translation (so exec-permission
// revocation and rekeys are enforced per entry) and revalidates the
// backing physical page's write generation — the predecode cache's
// invalidation key — plus a physical-address match, so a stale
// translation can never run after the page is rewritten or remapped.
//
// The engine is bypassed entirely (per slice) when a probe, tracer or
// fault injector is attached: those observe or perturb individual
// instructions, which is what the interpreter is for.

import (
	"roload/internal/block"
	"roload/internal/isa"
	"roload/internal/mem"
	"roload/internal/mmu"
)

// blockStatus is the result of one block-op closure.
type blockStatus uint8

const (
	blkOK blockStatus = iota
	// blkTrap: the op did not retire; c.blkTrap holds the trap and
	// blockExit replays the prefix accounting.
	blkTrap
	// blkSelfMod: the op (a store) retired but invalidated its own
	// block's code page; execution side-exits after it so stale
	// translations never run.
	blkSelfMod
)

type blockOp func(c *CPU) blockStatus

// compiledBlock is one emitted superblock plus its cache metadata.
type compiledBlock struct {
	src *block.Block
	ops []blockOp
	n   uint64
	// statCycles is the folded static cycle total of a full
	// retirement: n×Base plus multiply/divide/jump extras.
	statCycles uint64
	fallVA     uint64 // fall-through successor (not-taken for branches)
	takenVA    uint64 // taken-branch or jal target
	hasTaken   bool
	// fall/taken are direct-chain links: successor blocks cached by
	// the dispatcher so a taken loop edge skips the map lookup. They
	// are hints only — every use revalidates VA, write generation and
	// the entry translation like any other entry.
	fall, taken *compiledBlock
}

// dropBlocks discards every translated block (address-space switch or
// checkpoint restore); translations rebuild lazily.
func (c *CPU) dropBlocks() {
	if c.useBlocks {
		c.blocks = make(map[uint64]*compiledBlock)
	}
}

// runSlice executes until Instret reaches bound or a trap surfaces,
// through the block engine when it is enabled and unobserved, and
// otherwise one Step at a time. bound is exact in either mode: the
// caller's poll strides and sync points land on identical machine
// states whatever the engine.
func (c *CPU) runSlice(bound uint64) *Trap {
	if c.useBlocks && c.Tracer == nil && c.probe == nil && c.inject == nil {
		return c.runBlocks(bound)
	}
	for c.Instret < bound {
		if trap := c.Step(); trap != nil {
			return trap
		}
	}
	return nil
}

// runBlocks is the block-engine dispatcher loop.
func (c *CPU) runBlocks(bound uint64) *Trap {
	var hint *compiledBlock  // chained successor from the last block
	var fill **compiledBlock // link slot to fill with the next block
	for c.Instret < bound {
		pc := c.PC
		var b *compiledBlock
		if hint != nil && hint.src.VA == pc {
			b = hint
		} else {
			b = c.blocks[pc]
		}
		hint = nil
		if b != nil && !b.src.Ref.Valid() {
			delete(c.blocks, pc)
			b = nil
		}
		if fill != nil {
			if b != nil {
				*fill = b
			}
			fill = nil
		}
		if b != nil && (b.src.Kind != block.KindBlock || c.Instret+b.n > bound) {
			// Known interpreter-only start, or a block longer than the
			// remaining budget: single-step (full interpreter
			// accounting, nothing charged yet).
			if trap := c.Step(); trap != nil {
				return trap
			}
			continue
		}
		// Fetch of the first instruction: the real, accounting I-side
		// translation, identical to the interpreter's fetch prefix.
		// This is the per-entry security check — exec-permission
		// revocation and remaps are caught here.
		if pc&1 != 0 {
			return c.blockFetchTrap(&Trap{Kind: TrapMisaligned, PC: pc})
		}
		pa, tlbMiss, fault := c.imem.Translate(pc, mmu.Exec, 0)
		if fault != nil {
			return c.blockFetchTrap(&Trap{Kind: TrapPageFault, PC: pc, Fault: fault})
		}
		if tlbMiss {
			c.Cycles += c.cfg.Cost.TLBWalkPerMem * 3
		}
		if b == nil || b.src.PA != pa {
			b = c.compileBlock(pc, pa)
		}
		switch b.src.Kind {
		case block.KindSlowFetch:
			// Finish this one fetch the interpreter's way; the
			// page-straddling refetch replays its own translation
			// accounting inside fetchDecodeSlow.
			if !c.icache.Access(pa) {
				c.Cycles += c.cfg.Cost.CacheMiss
			}
			in, _, trap := c.fetchDecodeSlow(pc, pa)
			if trap != nil {
				return c.blockFetchTrap(trap)
			}
			if trap := c.execFetched(pc, in, 0); trap != nil {
				return trap
			}
			continue
		case block.KindUnblockable:
			if !c.icache.Access(pa) {
				c.Cycles += c.cfg.Cost.CacheMiss
			}
			if trap := c.execFetched(pc, b.src.First, 0); trap != nil {
				return trap
			}
			continue
		}
		if c.Instret+b.n > bound {
			// Freshly translated block outruns the budget: finish one
			// instruction on the already-accounted fetch.
			if !c.icache.Access(pa) {
				c.Cycles += c.cfg.Cost.CacheMiss
			}
			if trap := c.execFetched(pc, b.src.Insts[0].In, 0); trap != nil {
				return trap
			}
			continue
		}
		if !c.icache.Access(pa) {
			c.Cycles += c.cfg.Cost.CacheMiss
		}
		if trap := c.execBlock(b); trap != nil {
			return trap
		}
		// Direct chaining: cache (or reuse) the successor block for
		// the edge just taken.
		switch np := c.PC; {
		case np == b.fallVA:
			if b.fall != nil && b.fall.src.VA == np {
				hint = b.fall
			} else {
				fill = &b.fall
			}
		case b.hasTaken && np == b.takenVA:
			if b.taken != nil && b.taken.src.VA == np {
				hint = b.taken
			} else {
				fill = &b.taken
			}
		}
	}
	return nil
}

// blockFetchTrap applies the interpreter's fetch-trap accounting (the
// probe is nil by construction whenever the block engine runs).
func (c *CPU) blockFetchTrap(trap *Trap) *Trap {
	c.stats.Traps++
	c.Cycles += c.cfg.Cost.Trap
	return trap
}

// compileBlock translates and emits the block starting at va/pa and
// caches it (possibly as an interpreter-only marker).
func (c *CPU) compileBlock(va, pa uint64) *compiledBlock {
	src := block.Translate(c.phys, va, pa, c.cfg.ICache.LineBytes, c.cfg.ROLoadEnabled)
	b := c.emitBlock(src)
	c.blocks[va] = b
	return b
}

// execBlock runs an entered block. The first instruction's fetch
// accounting has been performed by the dispatcher; every later
// closure charges its own. On full retirement the folded static
// accounting is applied in one update.
func (c *CPU) execBlock(b *compiledBlock) *Trap {
	c.blkNext = b.fallVA
	for i, op := range b.ops {
		if st := op(c); st != blkOK {
			return c.blockExit(b, i, st)
		}
	}
	c.Cycles += b.statCycles
	c.Instret += b.n
	cnt := &b.src.Counts
	c.stats.Instructions += b.n
	c.stats.Loads += cnt.Loads
	c.stats.Stores += cnt.Stores
	c.stats.ROLoads += cnt.ROLoads
	c.stats.MulDiv += cnt.MulDiv
	c.stats.Branches += cnt.Branches
	c.stats.Jumps += cnt.Jumps
	c.PC = c.blkNext
	return nil
}

// blockExit settles a side exit at instruction i: the folded static
// accounting of the instructions that did retire, then — for a trap —
// the faulting instruction's pre-fault charges and the trap charge,
// exactly as the interpreter orders them.
func (c *CPU) blockExit(b *compiledBlock, i int, st blockStatus) *Trap {
	cost := &c.cfg.Cost
	retired := i
	if st == blkSelfMod {
		retired = i + 1
	}
	for j := 0; j < retired; j++ {
		c.applyStatic(b.src.Insts[j].Class, cost)
	}
	c.Instret += uint64(retired)
	c.stats.Instructions += uint64(retired)
	if st == blkSelfMod {
		c.PC = b.src.VA + uint64(b.offAfter(i))
		return nil
	}
	// Trap at instruction i: base cycles and the memory-op statistic
	// are charged before the access faults; the instruction does not
	// retire.
	c.Cycles += cost.Base
	switch b.src.Insts[i].Class {
	case block.ClassLoad:
		c.stats.Loads++
	case block.ClassROLoad:
		c.stats.ROLoads++
		c.stats.Loads++
	case block.ClassStore:
		c.stats.Stores++
	}
	c.stats.Traps++
	c.Cycles += cost.Trap
	c.PC = b.src.VA + uint64(b.src.Insts[i].Off)
	trap := c.blkTrap
	c.blkTrap = nil
	return trap
}

// offAfter returns the byte offset just past instruction i.
func (b *compiledBlock) offAfter(i int) uint16 {
	if i+1 < len(b.src.Insts) {
		return b.src.Insts[i+1].Off
	}
	return b.src.EndOff
}

// applyStatic replays one retired instruction's folded accounting.
func (c *CPU) applyStatic(cl block.Class, cost *CostModel) {
	c.Cycles += cost.Base
	switch cl {
	case block.ClassMul:
		c.Cycles += cost.Mul
		c.stats.MulDiv++
	case block.ClassDiv:
		c.Cycles += cost.Div
		c.stats.MulDiv++
	case block.ClassLoad:
		c.stats.Loads++
	case block.ClassROLoad:
		c.stats.Loads++
		c.stats.ROLoads++
	case block.ClassStore:
		c.stats.Stores++
	case block.ClassBranch:
		c.stats.Branches++
	case block.ClassJAL, block.ClassJALR:
		c.stats.Jumps++
		c.Cycles += cost.Jump
	}
}

// blockFetch is the folded fetch accounting of one in-block
// instruction past the first: the I-side translation is a guaranteed
// TLB hit (same page, nothing between two instructions of a block can
// touch the I-TLB or the page tables), and the I-cache access is the
// real one, charging the refill penalty on a line-leader miss.
func (c *CPU) blockFetch(pa uint64) {
	c.imem.BumpTLBHits(1)
	if !c.icache.Access(pa) {
		c.Cycles += c.cfg.Cost.CacheMiss
	}
}

// emitBlock lowers translated IR to the closure chain.
func (c *CPU) emitBlock(src *block.Block) *compiledBlock {
	b := &compiledBlock{src: src}
	if src.Kind != block.KindBlock {
		return b
	}
	n := len(src.Insts)
	b.n = uint64(n)
	b.fallVA = src.VA + uint64(src.EndOff)
	cost := c.cfg.Cost
	b.statCycles = uint64(n)*cost.Base +
		src.Counts.Muls*cost.Mul + src.Counts.Divs*cost.Div +
		src.Counts.Jumps*cost.Jump
	if t, ok := src.Terminator(); ok {
		switch t.Class {
		case block.ClassBranch, block.ClassJAL:
			b.takenVA = src.VA + uint64(t.Off) + uint64(t.In.Imm)
			b.hasTaken = true
		}
	}
	b.ops = make([]blockOp, n)
	for i, bi := range src.Insts {
		body := c.emitOp(b, bi)
		if i == 0 {
			// The dispatcher performs the first instruction's fetch
			// accounting at block entry.
			b.ops[i] = body
			continue
		}
		ipa := src.PA + uint64(bi.Off)
		b.ops[i] = func(c *CPU) blockStatus {
			c.blockFetch(ipa)
			return body(c)
		}
	}
	return b
}

// emitOp emits the body closure of one instruction, operands resolved
// at translate time (x0 destinations discarded, immediates
// pre-extended, PC-relative values precomputed).
func (c *CPU) emitOp(b *compiledBlock, bi block.Inst) blockOp {
	in := bi.In
	pcI := b.src.VA + uint64(bi.Off)
	switch bi.Class {
	case block.ClassALU, block.ClassMul, block.ClassDiv:
		return emitALU(in, pcI)
	case block.ClassFence:
		return func(c *CPU) blockStatus { return blkOK }
	case block.ClassLoad, block.ClassROLoad:
		return emitLoad(in, bi.Class, pcI)
	case block.ClassStore:
		return emitStore(b, in, pcI)
	case block.ClassBranch:
		return emitBranch(in, pcI, c.cfg.Cost.TakenBranch)
	case block.ClassJAL:
		rd := in.Rd
		link := pcI + uint64(in.Size)
		target := pcI + uint64(in.Imm)
		return func(c *CPU) blockStatus {
			if rd != isa.Zero {
				c.Regs[rd] = link
			}
			c.blkNext = target
			return blkOK
		}
	default: // block.ClassJALR
		rd, rs1 := in.Rd, in.Rs1
		imm := uint64(in.Imm)
		link := pcI + uint64(in.Size)
		return func(c *CPU) blockStatus {
			t := (c.Regs[rs1] + imm) &^ 1
			if rd != isa.Zero {
				c.Regs[rd] = link
			}
			c.blkNext = t
			return blkOK
		}
	}
}

// emitALU specializes the hottest ALU forms and falls back to the
// shared pure compute function; multiply/divide charges are folded
// statically, so bodies only produce the value.
func emitALU(in isa.Inst, pcI uint64) blockOp {
	rd, rs1, rs2 := in.Rd, in.Rs1, in.Rs2
	imm := uint64(in.Imm)
	if rd == isa.Zero {
		// The destination is discarded and ALU ops have no other
		// architectural effect; accounting is folded.
		return func(c *CPU) blockStatus { return blkOK }
	}
	switch in.Op {
	case isa.LUI:
		v := uint64(in.Imm)
		return func(c *CPU) blockStatus { c.Regs[rd] = v; return blkOK }
	case isa.AUIPC:
		v := pcI + uint64(in.Imm)
		return func(c *CPU) blockStatus { c.Regs[rd] = v; return blkOK }
	case isa.ADDI:
		return func(c *CPU) blockStatus { c.Regs[rd] = c.Regs[rs1] + imm; return blkOK }
	case isa.ANDI:
		return func(c *CPU) blockStatus { c.Regs[rd] = c.Regs[rs1] & imm; return blkOK }
	case isa.ORI:
		return func(c *CPU) blockStatus { c.Regs[rd] = c.Regs[rs1] | imm; return blkOK }
	case isa.XORI:
		return func(c *CPU) blockStatus { c.Regs[rd] = c.Regs[rs1] ^ imm; return blkOK }
	case isa.SLLI:
		sh := imm & 63
		return func(c *CPU) blockStatus { c.Regs[rd] = c.Regs[rs1] << sh; return blkOK }
	case isa.SRLI:
		sh := imm & 63
		return func(c *CPU) blockStatus { c.Regs[rd] = c.Regs[rs1] >> sh; return blkOK }
	case isa.SRAI:
		sh := imm & 63
		return func(c *CPU) blockStatus {
			c.Regs[rd] = uint64(int64(c.Regs[rs1]) >> sh)
			return blkOK
		}
	case isa.ADD:
		return func(c *CPU) blockStatus { c.Regs[rd] = c.Regs[rs1] + c.Regs[rs2]; return blkOK }
	case isa.SUB:
		return func(c *CPU) blockStatus { c.Regs[rd] = c.Regs[rs1] - c.Regs[rs2]; return blkOK }
	case isa.AND:
		return func(c *CPU) blockStatus { c.Regs[rd] = c.Regs[rs1] & c.Regs[rs2]; return blkOK }
	case isa.OR:
		return func(c *CPU) blockStatus { c.Regs[rd] = c.Regs[rs1] | c.Regs[rs2]; return blkOK }
	case isa.XOR:
		return func(c *CPU) blockStatus { c.Regs[rd] = c.Regs[rs1] ^ c.Regs[rs2]; return blkOK }
	case isa.ADDIW:
		return func(c *CPU) blockStatus { c.Regs[rd] = sext32(c.Regs[rs1] + imm); return blkOK }
	case isa.ADDW:
		return func(c *CPU) blockStatus {
			c.Regs[rd] = sext32(c.Regs[rs1] + c.Regs[rs2])
			return blkOK
		}
	case isa.SLTU:
		return func(c *CPU) blockStatus {
			var v uint64
			if c.Regs[rs1] < c.Regs[rs2] {
				v = 1
			}
			c.Regs[rd] = v
			return blkOK
		}
	default:
		op := in.Op
		return func(c *CPU) blockStatus {
			c.Regs[rd] = aluCompute(op, c.Regs[rs1], c.Regs[rs2], imm)
			return blkOK
		}
	}
}

// emitLoad emits regular and ROLoad loads. The D-side access is the
// full dataAccess/loadVirt pair — translation, key check, cache and
// walk accounting — so a revoked key faults here exactly as it would
// in the interpreter, however stale the enclosing block.
func emitLoad(in isa.Inst, cl block.Class, pcI uint64) blockOp {
	n, unsigned := in.Op.LoadWidth()
	at := mmu.Read
	key := uint16(0)
	imm := uint64(in.Imm)
	if cl == block.ClassROLoad {
		at = mmu.ROLoadRead
		key = in.Key
		imm = 0 // the immediate is the key, not an offset
	}
	rd, rs1 := in.Rd, in.Rs1
	shift := uint(64 - 8*n)
	return func(c *CPU) blockStatus {
		va := c.Regs[rs1] + imm
		pa, trap := c.dataAccess(va, n, at, key, pcI, in)
		if trap != nil {
			c.blkTrap = trap
			return blkTrap
		}
		v, err := c.loadVirt(va, pa, n, at, key)
		if err != nil {
			t := &Trap{Kind: TrapPageFault, PC: pcI, Inst: in,
				Fault: &mmu.Fault{Cause: mmu.FaultLoadPage, VA: va}}
			if f, ok := err.(*mmu.Fault); ok {
				t.Fault = f
			}
			c.blkTrap = t
			return blkTrap
		}
		if !unsigned {
			v = uint64(int64(v<<shift) >> shift)
		}
		if rd != isa.Zero {
			c.Regs[rd] = v
		}
		return blkOK
	}
}

// emitStore emits a store; after the write it revalidates the
// enclosing block's own page so a store into the running code
// side-exits before any stale instruction executes.
func emitStore(b *compiledBlock, in isa.Inst, pcI uint64) blockOp {
	n, _ := in.Op.LoadWidth()
	rs1, rs2 := in.Rs1, in.Rs2
	imm := uint64(in.Imm)
	return func(c *CPU) blockStatus {
		va := c.Regs[rs1] + imm
		pa, trap := c.dataAccess(va, n, mmu.Write, 0, pcI, in)
		if trap != nil {
			c.blkTrap = trap
			return blkTrap
		}
		if err := c.storeVirt(va, pa, c.Regs[rs2], n); err != nil {
			t := &Trap{Kind: TrapPageFault, PC: pcI, Inst: in,
				Fault: &mmu.Fault{Cause: mmu.FaultStorePage, VA: va}}
			if f, ok := err.(*mmu.Fault); ok {
				t.Fault = f
			}
			c.blkTrap = t
			return blkTrap
		}
		if !b.src.Ref.Valid() {
			return blkSelfMod
		}
		return blkOK
	}
}

// emitBranch emits the conditional-branch terminator; the Branches
// statistic is folded, the taken penalty charged dynamically.
func emitBranch(in isa.Inst, pcI uint64, takenCost uint64) blockOp {
	op := in.Op
	rs1, rs2 := in.Rs1, in.Rs2
	takenVA := pcI + uint64(in.Imm)
	return func(c *CPU) blockStatus {
		a, b := c.Regs[rs1], c.Regs[rs2]
		var taken bool
		switch op {
		case isa.BEQ:
			taken = a == b
		case isa.BNE:
			taken = a != b
		case isa.BLT:
			taken = int64(a) < int64(b)
		case isa.BGE:
			taken = int64(a) >= int64(b)
		case isa.BLTU:
			taken = a < b
		case isa.BGEU:
			taken = a >= b
		}
		if taken {
			c.Cycles += takenCost
			c.stats.TakenBranch++
			c.blkNext = takenVA
		}
		return blkOK
	}
}

var _ = mem.PageSize // keep the import while the engine evolves
