// Package cpu implements the in-order RV64IM(+C subset) processor core
// of the prototype system, including the ROLoad-family instructions.
//
// The core is a functional simulator with a cycle-approximate cost
// model calibrated to a small in-order pipeline like the Rocket core:
// one instruction per cycle plus penalties for taken branches, cache
// misses, TLB walks, multiplies, divides and traps. The evaluation in
// the paper reports *relative* execution-time overheads between
// instrumentation schemes on identical hardware, which this level of
// modelling preserves.
//
// ROLoad semantics: a decoded ld.ro-family instruction issues a memory
// operation of the new ROLoadRead type carrying the 10-bit key from its
// immediate field. The D-side MMU performs the read-only and key checks
// in parallel with the normal permission check (see internal/mmu);
// failures surface as load page faults whose auxiliary fault state
// identifies them as ROLoad faults.
package cpu

import (
	"fmt"

	"roload/internal/cache"
	"roload/internal/isa"
	"roload/internal/mem"
	"roload/internal/mmu"
	"roload/internal/obs"
)

// TrapKind enumerates the events that suspend user execution and hand
// control to the kernel.
type TrapKind int

const (
	TrapNone TrapKind = iota
	TrapECall
	TrapEBreak
	TrapPageFault
	TrapIllegalInst
	TrapMisaligned
	// TrapSpurious is an asynchronous trap raised by the
	// fault-injection hook before an instruction executes (a
	// timer-interrupt-like event with no architectural cause). The
	// kernel services and dismisses it; the interrupted instruction
	// has not executed and runs when control returns.
	TrapSpurious
)

func (k TrapKind) String() string {
	switch k {
	case TrapNone:
		return "none"
	case TrapECall:
		return "ecall"
	case TrapEBreak:
		return "ebreak"
	case TrapPageFault:
		return "page fault"
	case TrapIllegalInst:
		return "illegal instruction"
	case TrapMisaligned:
		return "misaligned access"
	case TrapSpurious:
		return "spurious trap"
	}
	return fmt.Sprintf("trap(%d)", int(k))
}

// Trap describes why execution stopped.
type Trap struct {
	Kind  TrapKind
	PC    uint64
	Inst  isa.Inst
	Fault *mmu.Fault // non-nil for TrapPageFault
}

func (t *Trap) Error() string {
	if t.Fault != nil {
		return fmt.Sprintf("cpu: %s at pc=%#x (%s): %v", t.Kind, t.PC, t.Inst, t.Fault)
	}
	return fmt.Sprintf("cpu: %s at pc=%#x (%s)", t.Kind, t.PC, t.Inst)
}

// CostModel holds the cycle costs charged by the core.
type CostModel struct {
	Base          uint64 // every instruction
	LoadStore     uint64 // extra cycles for a D-side access that hits
	TakenBranch   uint64 // extra cycles for a taken branch (flush)
	Jump          uint64 // extra cycles for jal/jalr
	Mul           uint64 // extra cycles for multiply
	Div           uint64 // extra cycles for divide/remainder
	CacheMiss     uint64 // refill penalty per L1 miss (to DDR3)
	TLBWalkPerMem uint64 // penalty per page-walk memory access
	Trap          uint64 // kernel entry/exit overhead per trap
}

// DefaultCostModel approximates the Rocket core at 125 MHz with DDR3.
func DefaultCostModel() CostModel {
	return CostModel{
		Base:          1,
		LoadStore:     1,
		TakenBranch:   2,
		Jump:          2,
		Mul:           3,
		Div:           32,
		CacheMiss:     30,
		TLBWalkPerMem: 12,
		Trap:          120,
	}
}

// Config parameterizes the core. ROLoadEnabled distinguishes the
// paper's processor-modified system from the stock baseline: when
// false, the ld.ro encodings raise illegal-instruction traps exactly
// as they would on unmodified hardware.
type Config struct {
	ROLoadEnabled bool

	// NoFastPath disables the host-side fast paths (the predecode
	// cache here and the MMUs' inline translation caches). Simulated
	// behaviour — cycles, stats, traps, memory contents — is
	// bit-identical either way; the flag exists so tests can prove
	// that and so anomalies can be bisected to a fast path.
	// NoFastPath also implies NoBlocks: the block engine builds on the
	// same host-only machinery.
	NoFastPath bool

	// NoBlocks disables the block-compiling execution engine while
	// keeping the per-instruction fast paths (the "fast" engine
	// ablation). Like NoFastPath it changes host time only; every
	// simulated observable is bit-identical. The three engine settings
	// are: NoFastPath=true → interp, NoBlocks=true → fast,
	// both false → blocks.
	NoBlocks bool

	ITLBEntries int
	DTLBEntries int
	ICache      cache.Config
	DCache      cache.Config
	Cost        CostModel
}

// DefaultConfig mirrors Table II of the paper.
func DefaultConfig() Config {
	return Config{
		ROLoadEnabled: true,
		ITLBEntries:   32,
		DTLBEntries:   32,
		ICache:        cache.DefaultL1(),
		DCache:        cache.DefaultL1(),
		Cost:          DefaultCostModel(),
	}
}

// Stats counts dynamic instruction mix and memory behaviour.
type Stats struct {
	Instructions uint64
	Loads        uint64
	Stores       uint64
	ROLoads      uint64
	Branches     uint64
	TakenBranch  uint64
	Jumps        uint64
	MulDiv       uint64
	Traps        uint64
}

// CPU is one hart plus its L1 caches and TLBs.
type CPU struct {
	Regs [isa.NumRegs]uint64
	PC   uint64

	Cycles  uint64
	Instret uint64

	cfg    Config
	phys   *mem.Physical
	imem   *mmu.MMU
	dmem   *mmu.MMU
	icache *cache.Cache
	dcache *cache.Cache
	stats  Stats

	// Predecode cache: per-physical-page arrays of decoded
	// instructions, so the hot fetch path skips the physical reads and
	// isa.Decode once a parcel has been seen. Keyed by physical page
	// number (decode is VA-independent) and revalidated against the
	// page's write generation via mem.PageRef, which covers stores,
	// loader writes and ZeroPage without a notification protocol.
	// Cleared on SetPageTableRoot as a belt-and-braces measure.
	// Straddling parcels (4-byte instruction beginning at the last
	// halfword of a page) stay on the slow path forever: their refetch
	// performs a second I-side Translate whose TLB accounting must be
	// replayed each time.
	useFast    bool
	predecode  map[uint64]*pageCode
	lastCodePN uint64
	lastCode   *pageCode

	// Block engine state (see blocks.go): translated-superblock cache
	// keyed by virtual start address, each entry revalidated against
	// the backing physical page's write generation (mem.PageRef) and
	// against a fresh I-side translation on every entry, exactly like
	// the predecode cache plus a physical-address match. Dropped on
	// SetPageTableRoot and SetState (checkpoint restore); rebuilt
	// lazily. blkNext/blkTrap are per-block-execution scratch.
	useBlocks bool
	blocks    map[uint64]*compiledBlock
	blkNext   uint64
	blkTrap   *Trap

	// Tracer, when non-nil, observes every fetched-and-decoded
	// instruction before it executes (so instructions that subsequently
	// trap are still seen, exactly once). Used by tests and the attack
	// harness; nil in benchmark runs. The typed-event Probe (SetProbe)
	// is the richer interface; Tracer remains for lightweight opcode
	// spies.
	Tracer func(pc uint64, in isa.Inst)

	// probe, when non-nil, receives typed obs events: instruction
	// retires with per-instruction cycle cost, and traps. The MMUs and
	// caches share the same probe (wired by SetProbe). nil costs one
	// predicted branch per site and nothing else.
	probe obs.Probe

	// inject, when non-nil, is the deterministic fault-injection hook
	// (internal/fault): consulted before every instruction (PreStep,
	// which may mutate machine state and request a spurious trap) and
	// on every store (FilterStore, which may drop it). nil costs one
	// nil check per site, like Tracer and probe.
	inject Injector
}

// Injector is the fault-injection interface wired by SetInjector. Both
// methods must be deterministic functions of the machine state and the
// injector's own plan: the engine replays identically for identical
// seeds, which is the reproducibility contract of roload-fault/v1.
type Injector interface {
	// PreStep runs before the instruction at the current PC executes,
	// with the current retire count. It may corrupt memory, TLB, or
	// cache state through the published hooks; returning true raises a
	// spurious trap instead of executing the instruction (the PC does
	// not advance).
	PreStep(instret uint64) (spurious bool)
	// FilterStore is consulted once per executed store instruction
	// with its virtual and physical address and width; returning false
	// drops the store (cycles and statistics are still charged — the
	// write simply never reaches memory).
	FilterStore(va, pa uint64, n int) bool
}

// New builds a core over phys.
func New(phys *mem.Physical, cfg Config) *CPU {
	if cfg.ITLBEntries <= 0 {
		cfg.ITLBEntries = 32
	}
	if cfg.DTLBEntries <= 0 {
		cfg.DTLBEntries = 32
	}
	if cfg.ICache.SizeBytes == 0 {
		cfg.ICache = cache.DefaultL1()
	}
	if cfg.DCache.SizeBytes == 0 {
		cfg.DCache = cache.DefaultL1()
	}
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCostModel()
	}
	c := &CPU{
		cfg:     cfg,
		phys:    phys,
		imem:    mmu.New(phys, mmu.Config{TLBEntries: cfg.ITLBEntries, ROLoadEnabled: cfg.ROLoadEnabled, NoFastPath: cfg.NoFastPath}),
		dmem:    mmu.New(phys, mmu.Config{TLBEntries: cfg.DTLBEntries, ROLoadEnabled: cfg.ROLoadEnabled, NoFastPath: cfg.NoFastPath}),
		icache:  cache.New(cfg.ICache),
		dcache:  cache.New(cfg.DCache),
		useFast: !cfg.NoFastPath,
	}
	c.useBlocks = c.useFast && !cfg.NoBlocks
	if c.useFast {
		c.predecode = make(map[uint64]*pageCode)
	}
	if c.useBlocks {
		c.blocks = make(map[uint64]*compiledBlock)
	}
	return c
}

// Config returns the core configuration.
func (c *CPU) Config() Config { return c.cfg }

// SetPageTableRoot installs the address-space root in both MMUs and
// flushes the TLBs and caches (context switch / exec).
func (c *CPU) SetPageTableRoot(root uint64) {
	c.imem.SetRoot(root)
	c.dmem.SetRoot(root)
	c.icache.Flush()
	c.dcache.Flush()
	// The predecode cache is keyed by physical page, so it would stay
	// correct across an address-space switch; drop it anyway so a new
	// image never sees stale host state. The block cache is keyed by
	// virtual address, so it must go.
	if c.useFast {
		c.predecode = make(map[uint64]*pageCode)
		c.lastCode = nil
	}
	c.dropBlocks()
}

// FlushTLBPage invalidates both TLBs' entries for va (sfence.vma addr).
func (c *CPU) FlushTLBPage(va uint64) {
	c.imem.FlushPage(va)
	c.dmem.FlushPage(va)
}

// FlushTLB invalidates both TLBs entirely.
func (c *CPU) FlushTLB() {
	c.imem.Flush()
	c.dmem.Flush()
}

// Stats returns the dynamic statistics.
func (c *CPU) Stats() Stats { return c.stats }

// MMUStats returns (I-side, D-side) MMU statistics.
func (c *CPU) MMUStats() (mmu.Stats, mmu.Stats) { return c.imem.Stats(), c.dmem.Stats() }

// CacheStats returns (I-cache, D-cache) statistics.
func (c *CPU) CacheStats() (cache.Stats, cache.Stats) { return c.icache.Stats(), c.dcache.Stats() }

// ResetCounters zeroes cycles and statistics (not architectural state).
func (c *CPU) ResetCounters() {
	c.Cycles = 0
	c.Instret = 0
	c.stats = Stats{}
	c.imem.ResetStats()
	c.dmem.ResetStats()
	c.icache.ResetStats()
	c.dcache.ResetStats()
}

// DataMMU exposes the D-side MMU for kernel fault handling tests.
func (c *CPU) DataMMU() *mmu.MMU { return c.dmem }

// InstMMU exposes the I-side MMU (checkpointing and fault injection).
func (c *CPU) InstMMU() *mmu.MMU { return c.imem }

// DataCache exposes the D-cache (fault injection: dirty-line loss).
func (c *CPU) DataCache() *cache.Cache { return c.dcache }

// InstCache exposes the I-cache.
func (c *CPU) InstCache() *cache.Cache { return c.icache }

// SetInjector attaches (or with nil detaches) the fault-injection
// hook.
func (c *CPU) SetInjector(ij Injector) { c.inject = ij }

// State is the complete checkpointable core state: architectural
// registers and counters, statistics, and the exact TLB and cache
// contents of the memory hierarchy. Host-side fast-path caches
// (predecode, L0, last-line) are absent by design: they change host
// time only, so rebuilding them lazily after a restore is bit-identical
// (the PR 2 fast-path invariant).
type State struct {
	Regs    [isa.NumRegs]uint64 `json:"regs"`
	PC      uint64              `json:"pc"`
	Cycles  uint64              `json:"cycles"`
	Instret uint64              `json:"instret"`
	Stats   Stats               `json:"stats"`
	IMMU    mmu.State           `json:"immu"`
	DMMU    mmu.State           `json:"dmmu"`
	ICache  cache.State         `json:"icache"`
	DCache  cache.State         `json:"dcache"`
}

// State captures the core for a checkpoint.
func (c *CPU) State() State {
	return State{
		Regs:    c.Regs,
		PC:      c.PC,
		Cycles:  c.Cycles,
		Instret: c.Instret,
		Stats:   c.stats,
		IMMU:    c.imem.State(),
		DMMU:    c.dmem.State(),
		ICache:  c.icache.State(),
		DCache:  c.dcache.State(),
	}
}

// SetState restores a checkpointed core state. The TLBs and caches are
// restored exactly (no flush), so the instruction, miss and cycle
// streams after a resume replay bit-identically against an
// uninterrupted run. The predecode cache is dropped; it repopulates
// lazily.
func (c *CPU) SetState(s State) error {
	if err := c.imem.SetState(s.IMMU); err != nil {
		return err
	}
	if err := c.dmem.SetState(s.DMMU); err != nil {
		return err
	}
	if err := c.icache.SetState(s.ICache); err != nil {
		return err
	}
	if err := c.dcache.SetState(s.DCache); err != nil {
		return err
	}
	c.Regs = s.Regs
	c.PC = s.PC
	c.Cycles = s.Cycles
	c.Instret = s.Instret
	c.stats = s.Stats
	if c.useFast {
		c.predecode = make(map[uint64]*pageCode)
		c.lastCode = nil
	}
	c.dropBlocks()
	return nil
}

// SetProbe attaches p to the core and its whole memory hierarchy: the
// CPU emits retire and trap events, the two MMUs emit TLB, walk and
// ROLoad-check events, and the two caches emit access events, all
// timestamped with this core's cycle counter. Passing nil detaches
// everything; the hot path then costs one nil check per site.
func (c *CPU) SetProbe(p obs.Probe) {
	c.probe = p
	c.imem.SetProbe(p, obs.SideI, &c.Cycles)
	c.dmem.SetProbe(p, obs.SideD, &c.Cycles)
	c.icache.SetProbe(p, obs.SideI, &c.Cycles)
	c.dcache.SetProbe(p, obs.SideD, &c.Cycles)
}

// Probe returns the currently attached probe (nil when disabled).
func (c *CPU) Probe() obs.Probe { return c.probe }

// retireFlags classifies a control transfer for stack-reconstructing
// probes: FlagCall for linking jumps, FlagRet for returns.
func retireFlags(in isa.Inst) uint8 {
	var f uint8
	if (in.Op == isa.JAL || in.Op == isa.JALR) && in.Rd == isa.RA {
		f |= obs.FlagCall
	}
	if in.Op == isa.JALR && in.Rd == isa.Zero && in.Rs1 == isa.RA {
		f |= obs.FlagRet
	}
	return f
}

// emitTrap reports a trap event (cold path).
func (c *CPU) emitTrap(t *Trap) {
	e := obs.Event{Kind: obs.KindTrap, PC: t.PC, Op: t.Inst.Op,
		Num: uint64(t.Kind), Cycle: c.Cycles}
	if t.Fault != nil {
		e.VA = t.Fault.VA
	}
	c.probe.Event(e)
}

func (c *CPU) reg(r isa.Reg) uint64 { return c.Regs[r] }

func (c *CPU) setReg(r isa.Reg, v uint64) {
	if r != isa.Zero {
		c.Regs[r] = v
	}
}

// Predecode slot states. Each slot covers one halfword of a physical
// page (the minimum parcel size).
const (
	slotUnknown uint8 = iota // never decoded through this slot
	slotDecoded              // insts[slot] holds the decoded parcel
	slotSlow                 // parcel straddles the page; never cache
)

const pageSlots = mem.PageSize / 2

// pageCode is the predecoded view of one physical page. ref pins the
// page's write generation: once the page is written (or zeroed) the
// whole view is discarded and rebuilt lazily.
type pageCode struct {
	ref   mem.PageRef
	class [pageSlots]uint8
	insts [pageSlots]isa.Inst
}

// codePage returns the (possibly fresh) predecode view of the page
// containing physical address pa, or nil if the address is outside
// installed memory.
func (c *CPU) codePage(pa uint64) *pageCode {
	pn := pa >> mem.PageShift
	if pg := c.lastCode; pg != nil && c.lastCodePN == pn {
		if pg.ref.Valid() {
			return pg
		}
		c.lastCode = nil
	}
	pg, ok := c.predecode[pn]
	if ok && !pg.ref.Valid() {
		ok = false
	}
	if !ok {
		ref, err := c.phys.Ref(pa)
		if err != nil {
			return nil
		}
		pg = &pageCode{ref: ref}
		c.predecode[pn] = pg
	}
	c.lastCodePN, c.lastCode = pn, pg
	return pg
}

// fetchInst translates pc, charges the I-side TLB and cache costs, and
// returns the decoded instruction at pc. With fast paths enabled the
// decode is served from the predecode cache when possible; the
// translation, TLB/cache statistics and cycle charges are identical on
// both paths (physical instruction reads carry no stats, so skipping
// them is unobservable in simulated state).
func (c *CPU) fetchInst(pc uint64) (isa.Inst, *Trap) {
	if pc&1 != 0 {
		return isa.Inst{}, &Trap{Kind: TrapMisaligned, PC: pc}
	}
	pa, tlbMiss, fault := c.imem.Translate(pc, mmu.Exec, 0)
	if fault != nil {
		return isa.Inst{}, &Trap{Kind: TrapPageFault, PC: pc, Fault: fault}
	}
	if tlbMiss {
		c.Cycles += c.cfg.Cost.TLBWalkPerMem * 3
	}
	if !c.icache.Access(pa) {
		c.Cycles += c.cfg.Cost.CacheMiss
	}
	if c.useFast {
		if pg := c.codePage(pa); pg != nil {
			slot := (pa & (mem.PageSize - 1)) >> 1
			switch pg.class[slot] {
			case slotDecoded:
				return pg.insts[slot], nil
			case slotUnknown:
				in, straddles, trap := c.fetchDecodeSlow(pc, pa)
				if trap != nil {
					return isa.Inst{}, trap
				}
				if straddles {
					// The refetch's second Translate must replay its
					// TLB accounting every time; keep it slow.
					pg.class[slot] = slotSlow
				} else if pg.ref.Valid() {
					pg.insts[slot] = in
					pg.class[slot] = slotDecoded
				}
				return in, nil
			default: // slotSlow
				in, _, trap := c.fetchDecodeSlow(pc, pa)
				return in, trap
			}
		}
	}
	in, _, trap := c.fetchDecodeSlow(pc, pa)
	return in, trap
}

// fetchDecodeSlow reads and decodes the parcel at pc/pa the
// interpreter's way: low halfword first, then — only for a 4-byte
// encoding whose second halfword crosses the page — a second I-side
// translation for the high halfword. The bool result reports that
// page-straddling case.
func (c *CPU) fetchDecodeSlow(pc, pa uint64) (isa.Inst, bool, *Trap) {
	low, err := c.phys.ReadUint(pa, 2)
	if err != nil {
		return isa.Inst{}, false, &Trap{Kind: TrapPageFault, PC: pc, Fault: &mmu.Fault{Cause: mmu.FaultInstPage, VA: pc}}
	}
	if low&3 != 3 {
		return isa.Decode(uint32(low)), false, nil
	}
	hiPC := pc + 2
	hiPA := pa + 2
	straddles := false
	if hiPC&(mem.PageSize-1) == 0 {
		straddles = true
		var fault *mmu.Fault
		hiPA, _, fault = c.imem.Translate(hiPC, mmu.Exec, 0)
		if fault != nil {
			return isa.Inst{}, true, &Trap{Kind: TrapPageFault, PC: hiPC, Fault: fault}
		}
	}
	high, err := c.phys.ReadUint(hiPA, 2)
	if err != nil {
		return isa.Inst{}, straddles, &Trap{Kind: TrapPageFault, PC: hiPC, Fault: &mmu.Fault{Cause: mmu.FaultInstPage, VA: hiPC}}
	}
	return isa.Decode(uint32(high)<<16 | uint32(low)), straddles, nil
}

// dataAccess translates va for a load/store of n bytes and charges the
// memory-hierarchy costs. Accesses crossing a page boundary translate
// both pages (both must pass all checks, including the ROLoad check).
func (c *CPU) dataAccess(va uint64, n int, at mmu.Access, key uint16, pc uint64, in isa.Inst) (uint64, *Trap) {
	pa, tlbMiss, fault := c.dmem.Translate(va, at, key)
	if fault != nil {
		return 0, &Trap{Kind: TrapPageFault, PC: pc, Inst: in, Fault: fault}
	}
	if tlbMiss {
		c.Cycles += c.cfg.Cost.TLBWalkPerMem * 3
	}
	if va>>mem.PageShift != (va+uint64(n)-1)>>mem.PageShift {
		_, tlbMiss2, fault2 := c.dmem.Translate(va+uint64(n)-1, at, key)
		if fault2 != nil {
			return 0, &Trap{Kind: TrapPageFault, PC: pc, Inst: in, Fault: fault2}
		}
		if tlbMiss2 {
			c.Cycles += c.cfg.Cost.TLBWalkPerMem * 3
		}
	}
	c.Cycles += c.cfg.Cost.LoadStore
	if !c.dcache.Access(pa) {
		c.Cycles += c.cfg.Cost.CacheMiss
	}
	return pa, nil
}

// loadPhys reads an n-byte value whose first byte lives at physical pa
// and whose virtual address is va; page-straddling bytes are read via a
// second translation (already validated by dataAccess).
func (c *CPU) loadVirt(va, pa uint64, n int, at mmu.Access, key uint16) (uint64, error) {
	if va>>mem.PageShift == (va+uint64(n)-1)>>mem.PageShift {
		return c.phys.ReadUint(pa, n)
	}
	var v uint64
	for i := 0; i < n; i++ {
		bpa := pa + uint64(i)
		if (va+uint64(i))&(mem.PageSize-1) == 0 {
			var fault *mmu.Fault
			bpa, _, fault = c.dmem.Translate(va+uint64(i), at, key)
			if fault != nil {
				return 0, fault
			}
			pa = bpa - uint64(i)
		}
		b, err := c.phys.ReadUint(bpa, 1)
		if err != nil {
			return 0, err
		}
		v |= b << (8 * uint(i))
	}
	return v, nil
}

func (c *CPU) storeVirt(va, pa uint64, v uint64, n int) error {
	if c.inject != nil && !c.inject.FilterStore(va, pa, n) {
		return nil // dropped store: permission checks and costs already done
	}
	if va>>mem.PageShift == (va+uint64(n)-1)>>mem.PageShift {
		return c.phys.WriteUint(pa, v, n)
	}
	for i := 0; i < n; i++ {
		bpa := pa + uint64(i)
		if (va+uint64(i))&(mem.PageSize-1) == 0 {
			var fault *mmu.Fault
			bpa, _, fault = c.dmem.Translate(va+uint64(i), mmu.Write, 0)
			if fault != nil {
				return fault
			}
			pa = bpa - uint64(i)
		}
		if err := c.phys.WriteUint(bpa, v>>(8*uint(i))&0xff, 1); err != nil {
			return err
		}
	}
	return nil
}

// Step executes one instruction. It returns nil on normal retirement
// or a Trap describing why control must pass to the kernel. The PC is
// left at the faulting instruction for traps, and advanced past it for
// ECALL/EBREAK (sepc handling is the kernel's concern; this interface
// mirrors what the kernel needs).
func (c *CPU) Step() *Trap {
	if c.inject != nil {
		if c.inject.PreStep(c.Instret) {
			c.stats.Traps++
			c.Cycles += c.cfg.Cost.Trap
			trap := &Trap{Kind: TrapSpurious, PC: c.PC}
			if c.probe != nil {
				c.emitTrap(trap)
			}
			return trap
		}
	}
	var cyc0 uint64
	if c.probe != nil {
		cyc0 = c.Cycles
	}
	pc := c.PC
	in, trap := c.fetchInst(pc)
	if trap != nil {
		c.stats.Traps++
		c.Cycles += c.cfg.Cost.Trap
		if c.probe != nil {
			c.emitTrap(trap)
		}
		return trap
	}
	return c.execFetched(pc, in, cyc0)
}

// execFetched is the back half of Step: decode-complete execution of
// one instruction whose fetch (translation, I-cache access and their
// cycle charges) has already happened. Split out so the block engine
// can finish a single instruction after its entry translation when the
// instruction turns out not to be block-compilable.
func (c *CPU) execFetched(pc uint64, in isa.Inst, cyc0 uint64) *Trap {
	if in.Op == isa.OpInvalid || (in.Op.IsROLoad() && !c.cfg.ROLoadEnabled) {
		c.stats.Traps++
		c.Cycles += c.cfg.Cost.Trap
		trap := &Trap{Kind: TrapIllegalInst, PC: pc, Inst: in}
		if c.probe != nil {
			c.emitTrap(trap)
		}
		return trap
	}
	if c.Tracer != nil {
		c.Tracer(pc, in)
	}
	c.Cycles += c.cfg.Cost.Base
	next := pc + uint64(in.Size)

	switch {
	case in.Op == isa.LUI:
		c.setReg(in.Rd, uint64(in.Imm))
	case in.Op == isa.AUIPC:
		c.setReg(in.Rd, pc+uint64(in.Imm))
	case in.Op == isa.JAL:
		c.setReg(in.Rd, next)
		next = pc + uint64(in.Imm)
		c.Cycles += c.cfg.Cost.Jump
		c.stats.Jumps++
	case in.Op == isa.JALR:
		t := (c.reg(in.Rs1) + uint64(in.Imm)) &^ 1
		c.setReg(in.Rd, next)
		next = t
		c.Cycles += c.cfg.Cost.Jump
		c.stats.Jumps++
	case in.Op.IsBranch():
		c.stats.Branches++
		if c.evalBranch(in) {
			next = pc + uint64(in.Imm)
			c.Cycles += c.cfg.Cost.TakenBranch
			c.stats.TakenBranch++
		}
	case in.Op.IsLoad():
		n, unsigned := in.Op.LoadWidth()
		at := mmu.Read
		key := uint16(0)
		va := c.reg(in.Rs1) + uint64(in.Imm)
		if in.Op.IsROLoad() {
			at = mmu.ROLoadRead
			key = in.Key
			va = c.reg(in.Rs1) // no offset: the immediate is the key
			c.stats.ROLoads++
		}
		c.stats.Loads++
		pa, trap := c.dataAccess(va, n, at, key, pc, in)
		if trap != nil {
			c.stats.Traps++
			c.Cycles += c.cfg.Cost.Trap
			if c.probe != nil {
				c.emitTrap(trap)
			}
			return trap
		}
		v, err := c.loadVirt(va, pa, n, at, key)
		if err != nil {
			c.stats.Traps++
			c.Cycles += c.cfg.Cost.Trap
			trap := &Trap{Kind: TrapPageFault, PC: pc, Inst: in,
				Fault: &mmu.Fault{Cause: mmu.FaultLoadPage, VA: va}}
			if f, ok := err.(*mmu.Fault); ok {
				trap.Fault = f
			}
			if c.probe != nil {
				c.emitTrap(trap)
			}
			return trap
		}
		if !unsigned {
			shift := uint(64 - 8*n)
			v = uint64(int64(v<<shift) >> shift)
		}
		c.setReg(in.Rd, v)
	case in.Op.IsStore():
		n, _ := in.Op.LoadWidth()
		va := c.reg(in.Rs1) + uint64(in.Imm)
		c.stats.Stores++
		pa, trap := c.dataAccess(va, n, mmu.Write, 0, pc, in)
		if trap != nil {
			c.stats.Traps++
			c.Cycles += c.cfg.Cost.Trap
			if c.probe != nil {
				c.emitTrap(trap)
			}
			return trap
		}
		if err := c.storeVirt(va, pa, c.reg(in.Rs2), n); err != nil {
			c.stats.Traps++
			c.Cycles += c.cfg.Cost.Trap
			trap := &Trap{Kind: TrapPageFault, PC: pc, Inst: in,
				Fault: &mmu.Fault{Cause: mmu.FaultStorePage, VA: va}}
			if f, ok := err.(*mmu.Fault); ok {
				trap.Fault = f
			}
			if c.probe != nil {
				c.emitTrap(trap)
			}
			return trap
		}
	case in.Op == isa.ECALL:
		c.Instret++
		c.stats.Instructions++
		c.stats.Traps++
		c.Cycles += c.cfg.Cost.Trap
		c.PC = next
		trap := &Trap{Kind: TrapECall, PC: pc, Inst: in}
		if c.probe != nil {
			c.emitRetire(pc, in, cyc0)
			c.emitTrap(trap)
		}
		return trap
	case in.Op == isa.EBREAK:
		c.Instret++
		c.stats.Instructions++
		c.stats.Traps++
		c.Cycles += c.cfg.Cost.Trap
		c.PC = next
		trap := &Trap{Kind: TrapEBreak, PC: pc, Inst: in}
		if c.probe != nil {
			c.emitRetire(pc, in, cyc0)
			c.emitTrap(trap)
		}
		return trap
	case in.Op == isa.FENCE:
		// No-op in a single-hart system.
	case in.Op == isa.CSRRW || in.Op == isa.CSRRS || in.Op == isa.CSRRC:
		c.execCSR(in)
	default:
		c.execALU(in)
	}

	c.Instret++
	c.stats.Instructions++
	c.PC = next
	if c.probe != nil {
		c.emitRetire(pc, in, cyc0)
	}
	return nil
}

// emitRetire reports one retired instruction with the cycles it was
// charged (cold path; only reached with a probe attached).
func (c *CPU) emitRetire(pc uint64, in isa.Inst, cyc0 uint64) {
	c.probe.Event(obs.Event{
		Kind: obs.KindRetire, PC: pc, Op: in.Op, Size: in.Size,
		Flags: retireFlags(in), Cost: c.Cycles - cyc0, Cycle: c.Cycles,
	})
}

// Run executes until a trap or until maxInstructions retire; it
// returns the trap (nil means the budget was exhausted).
func (c *CPU) Run(maxInstructions uint64) *Trap {
	return c.RunInterruptible(maxInstructions, 0, nil)
}

// RunInterruptible is Run with a cooperative stop: when pollEvery > 0
// and stop is non-nil, stop() is consulted every pollEvery retired
// instructions and a true return ends execution early with a nil trap
// (the caller distinguishes an early stop from an exhausted budget by
// re-checking its own condition). The poll changes host behaviour
// only: the instruction stream, cycle accounting and statistics of the
// instructions that did retire are identical to an uninterrupted run.
func (c *CPU) RunInterruptible(maxInstructions, pollEvery uint64, stop func() bool) *Trap {
	end := c.Instret + maxInstructions
	for c.Instret < end {
		next := end
		if pollEvery > 0 && stop != nil {
			if n := c.Instret + pollEvery; n < end {
				next = n
			}
		}
		if trap := c.runSlice(next); trap != nil {
			return trap
		}
		if stop != nil && c.Instret < end && stop() {
			return nil
		}
	}
	return nil
}

func (c *CPU) evalBranch(in isa.Inst) bool {
	a, b := c.reg(in.Rs1), c.reg(in.Rs2)
	switch in.Op {
	case isa.BEQ:
		return a == b
	case isa.BNE:
		return a != b
	case isa.BLT:
		return int64(a) < int64(b)
	case isa.BGE:
		return int64(a) >= int64(b)
	case isa.BLTU:
		return a < b
	case isa.BGEU:
		return a >= b
	}
	return false
}

// CSR numbers implemented by the core (user-level counters).
const (
	CSRCycle   = 0xC00
	CSRTime    = 0xC01
	CSRInstret = 0xC02
)

func (c *CPU) execCSR(in isa.Inst) {
	var v uint64
	switch in.Imm {
	case CSRCycle, CSRTime:
		v = c.Cycles
	case CSRInstret:
		v = c.Instret
	}
	// The user-level counters are read-only; writes are ignored, reads
	// (csrrs rd, csr, x0) return the counter.
	c.setReg(in.Rd, v)
}
