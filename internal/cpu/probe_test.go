package cpu

import (
	"testing"

	"roload/internal/isa"
	"roload/internal/mmu"
	"roload/internal/obs"
)

// eventLog is a probe that records every event in order.
type eventLog struct{ events []obs.Event }

func (l *eventLog) Event(e obs.Event) { l.events = append(l.events, e) }

func (l *eventLog) ofKind(k obs.Kind) []obs.Event {
	var out []obs.Event
	for _, e := range l.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// TestProbeRetireOrdering checks the typed event stream: retires come
// in program order with per-instruction cycle costs that sum to the
// core's cycle counter, and timestamps never move backwards.
func TestProbeRetireOrdering(t *testing.T) {
	m := newMachine(t, DefaultConfig())
	m.emit(li(isa.A0, 6)...)
	m.emit(li(isa.A1, 7)...)
	m.emit(
		isa.Inst{Op: isa.MUL, Rd: isa.A0, Rs1: isa.A0, Rs2: isa.A1},
		isa.Inst{Op: isa.ECALL},
	)
	log := &eventLog{}
	m.cpu.SetProbe(log)
	trap := m.run(10)
	if trap.Kind != TrapECall {
		t.Fatalf("trap = %v", trap)
	}

	retires := log.ofKind(obs.KindRetire)
	wantOps := []isa.Op{isa.ADDI, isa.ADDI, isa.MUL, isa.ECALL}
	if len(retires) != len(wantOps) {
		t.Fatalf("retires = %d, want %d", len(retires), len(wantOps))
	}
	var costSum uint64
	for i, e := range retires {
		if e.Op != wantOps[i] {
			t.Errorf("retire %d: op %v, want %v", i, e.Op, wantOps[i])
		}
		if e.PC != m.textVA+uint64(4*i) {
			t.Errorf("retire %d: pc %#x", i, e.PC)
		}
		if e.Cost == 0 {
			t.Errorf("retire %d: zero cycle cost", i)
		}
		costSum += e.Cost
	}
	if costSum != m.cpu.Cycles {
		t.Errorf("retire costs sum to %d, cycles = %d", costSum, m.cpu.Cycles)
	}
	// Timestamps are monotone over the whole stream.
	var last uint64
	for i, e := range log.events {
		if e.Cycle < last {
			t.Fatalf("event %d (%v) at cycle %d after cycle %d", i, e.Kind, e.Cycle, last)
		}
		last = e.Cycle
	}
	// The ECALL both retires and traps, in that order.
	traps := log.ofKind(obs.KindTrap)
	if len(traps) != 1 || traps[0].Op != isa.ECALL || traps[0].Num != uint64(TrapECall) {
		t.Fatalf("traps = %+v", traps)
	}
	if lastEvent := log.events[len(log.events)-1]; lastEvent.Kind != obs.KindTrap {
		t.Errorf("final event is %v, want the trap", lastEvent.Kind)
	}
}

// TestProbeTrappingLoad: a load that page-faults produces its D-side
// translation events and a trap, but no retire — the instruction never
// completed.
func TestProbeTrappingLoad(t *testing.T) {
	m := newMachine(t, DefaultConfig())
	m.emit(li(isa.A1, 0x100)...) // unmapped
	m.emit(isa.Inst{Op: isa.LD, Rd: isa.A0, Rs1: isa.A1, Imm: 0})
	log := &eventLog{}
	m.cpu.SetProbe(log)
	trap := m.run(5)
	if trap.Kind != TrapPageFault {
		t.Fatalf("trap = %v", trap)
	}
	for _, e := range log.ofKind(obs.KindRetire) {
		if e.Op == isa.LD {
			t.Error("faulting load must not retire")
		}
	}
	var sawDTLB, sawDWalk bool
	for _, e := range log.events {
		if e.Side != obs.SideD {
			continue
		}
		switch e.Kind {
		case obs.KindTLB:
			sawDTLB = true
			if e.Hit {
				t.Error("unmapped VA reported as D-TLB hit")
			}
		case obs.KindWalk:
			sawDWalk = true
			if e.Hit {
				t.Error("failed walk reported as success")
			}
		}
	}
	if !sawDTLB || !sawDWalk {
		t.Errorf("missing D-side translation events (tlb=%v walk=%v)", sawDTLB, sawDWalk)
	}
	traps := log.ofKind(obs.KindTrap)
	if len(traps) != 1 || traps[0].VA != 0x100 {
		t.Fatalf("traps = %+v", traps)
	}
}

// TestProbeROLoadCheckEvents: key-check pass and fail both emit
// KindROLoadCheck with the want/got keys.
func TestProbeROLoadCheckEvents(t *testing.T) {
	m := newMachine(t, DefaultConfig())
	m.map1(0x30000, 0x700000, mmu.PTERead, 111)
	m.emit(li(isa.A1, 0x30000)...)
	m.emit(
		isa.Inst{Op: isa.LDRO, Rd: isa.A0, Rs1: isa.A1, Key: 111},
		isa.Inst{Op: isa.LDRO, Rd: isa.A0, Rs1: isa.A1, Key: 222},
	)
	log := &eventLog{}
	m.cpu.SetProbe(log)
	trap := m.run(10)
	if trap.Kind != TrapPageFault {
		t.Fatalf("trap = %v", trap)
	}
	checks := log.ofKind(obs.KindROLoadCheck)
	if len(checks) != 2 {
		t.Fatalf("key checks = %d, want 2", len(checks))
	}
	if !checks[0].Hit || checks[0].WantKey != 111 || checks[0].GotKey != 111 {
		t.Errorf("pass check = %+v", checks[0])
	}
	if checks[1].Hit || checks[1].WantKey != 222 || checks[1].GotKey != 111 {
		t.Errorf("fail check = %+v", checks[1])
	}
}

func fixtureProgram(m *machine) {
	// A loop with loads, stores, branches and a multiply: exercises
	// every probe site class.
	m.emit(li(isa.A0, 0)...)       // sum
	m.emit(li(isa.A1, 1)...)       // i
	m.emit(li(isa.A2, 20)...)      // limit
	m.emit(li(isa.A3, 0x7f000)...) // data page
	loop := int64(m.cursor)
	m.emit(
		isa.Inst{Op: isa.MUL, Rd: isa.A4, Rs1: isa.A1, Rs2: isa.A1},
		isa.Inst{Op: isa.SD, Rs1: isa.A3, Rs2: isa.A4, Imm: 0},
		isa.Inst{Op: isa.LD, Rd: isa.A5, Rs1: isa.A3, Imm: 0},
		isa.Inst{Op: isa.ADD, Rd: isa.A0, Rs1: isa.A0, Rs2: isa.A5},
		isa.Inst{Op: isa.ADDI, Rd: isa.A1, Rs1: isa.A1, Imm: 1},
	)
	off := loop - int64(m.cursor)
	m.emit(
		isa.Inst{Op: isa.BGE, Rs1: isa.A2, Rs2: isa.A1, Imm: off},
		isa.Inst{Op: isa.ECALL},
	)
}

// TestProbeCycleParity proves the observability layer never perturbs
// the simulation: the same program runs to the same cycle, instret and
// architectural state with and without a probe attached.
func TestProbeCycleParity(t *testing.T) {
	plain := newMachine(t, DefaultConfig())
	fixtureProgram(plain)
	plain.run(500)

	probed := newMachine(t, DefaultConfig())
	fixtureProgram(probed)
	var counters obs.Counters
	probed.cpu.SetProbe(&counters)
	probed.run(500)

	if plain.cpu.Cycles != probed.cpu.Cycles {
		t.Errorf("cycles diverge: plain %d, probed %d", plain.cpu.Cycles, probed.cpu.Cycles)
	}
	if plain.cpu.Instret != probed.cpu.Instret {
		t.Errorf("instret diverge: plain %d, probed %d", plain.cpu.Instret, probed.cpu.Instret)
	}
	if plain.cpu.Regs != probed.cpu.Regs {
		t.Error("register files diverge")
	}
	if counters.Total() == 0 || counters.ByKind[obs.KindRetire] != probed.cpu.Instret {
		t.Errorf("counters = %+v", counters)
	}
}

// TestNilProbeZeroAlloc is the zero-cost-when-disabled guarantee: with
// no probe attached, the hot Step path performs no allocations.
func TestNilProbeZeroAlloc(t *testing.T) {
	m := newMachine(t, DefaultConfig())
	// Infinite loop with a load: jal zero back over it.
	m.emit(li(isa.A3, 0x7f000)...)
	loop := int64(m.cursor)
	m.emit(isa.Inst{Op: isa.LD, Rd: isa.A5, Rs1: isa.A3, Imm: 0})
	m.emit(isa.Inst{Op: isa.JAL, Rd: isa.Zero, Imm: loop - int64(m.cursor)})
	// Warm the TLBs and caches so steady state is measured.
	for i := 0; i < 64; i++ {
		if trap := m.cpu.Step(); trap != nil {
			t.Fatalf("trap = %v", trap)
		}
	}
	if avg := testing.AllocsPerRun(200, func() {
		if trap := m.cpu.Step(); trap != nil {
			t.Fatalf("trap = %v", trap)
		}
	}); avg != 0 {
		t.Errorf("nil-probe Step allocates %.2f objects/op, want 0", avg)
	}
}

func benchLoop(b *testing.B, probe obs.Probe) {
	m := newMachine(b, DefaultConfig())
	m.emit(li(isa.A3, 0x7f000)...)
	loop := int64(m.cursor)
	m.emit(isa.Inst{Op: isa.LD, Rd: isa.A5, Rs1: isa.A3, Imm: 0})
	m.emit(isa.Inst{Op: isa.JAL, Rd: isa.Zero, Imm: loop - int64(m.cursor)})
	if probe != nil {
		m.cpu.SetProbe(probe)
	}
	for i := 0; i < 64; i++ {
		m.cpu.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if trap := m.cpu.Step(); trap != nil {
			b.Fatalf("trap = %v", trap)
		}
	}
}

// BenchmarkStepNilProbe is the zero-cost baseline; compare against
// BenchmarkStepCounters to see the cost of enabling observation.
func BenchmarkStepNilProbe(b *testing.B) { benchLoop(b, nil) }
func BenchmarkStepCounters(b *testing.B) { benchLoop(b, &obs.Counters{}) }
