package cpu

import (
	"testing"
	"testing/quick"

	"roload/internal/isa"
	"roload/internal/mem"
	"roload/internal/mmu"
)

type bumpAlloc struct{ next uint64 }

func (b *bumpAlloc) AllocFrame() (uint64, error) {
	pa := b.next
	b.next += mem.PageSize
	return pa, nil
}

// machine is a test fixture: identity-ish mapped core with helper
// methods to lay out code and data.
type machine struct {
	t      testing.TB
	phys   *mem.Physical
	mapper *mmu.Mapper
	cpu    *CPU
	// virtual layout
	textVA uint64
	textPA uint64
	cursor uint64 // bytes of code emitted
}

func newMachine(t testing.TB, cfg Config) *machine {
	t.Helper()
	phys := mem.NewPhysical(64 << 20)
	alloc := &bumpAlloc{next: 0x100000}
	mapper, err := mmu.NewMapper(phys, alloc)
	if err != nil {
		t.Fatal(err)
	}
	c := New(phys, cfg)
	m := &machine{t: t, phys: phys, mapper: mapper, cpu: c, textVA: 0x10000, textPA: 0x400000}
	// Map 4 text pages and a stack page.
	for i := uint64(0); i < 4; i++ {
		m.map1(m.textVA+i*mem.PageSize, m.textPA+i*mem.PageSize, mmu.PTERead|mmu.PTEExec, 0)
	}
	m.map1(0x7f000, 0x600000, mmu.PTERead|mmu.PTEWrite, 0)
	c.SetPageTableRoot(mapper.Root())
	c.PC = m.textVA
	c.Regs[isa.SP] = 0x7f000 + mem.PageSize
	return m
}

func (m *machine) map1(va, pa uint64, perms uint64, key uint16) {
	m.t.Helper()
	if err := m.mapper.Map(va, pa, perms, key); err != nil {
		m.t.Fatal(err)
	}
}

func (m *machine) emit(ins ...isa.Inst) {
	m.t.Helper()
	for _, in := range ins {
		raw, err := isa.Encode(in)
		if err != nil {
			m.t.Fatal(err)
		}
		if err := m.phys.WriteUint(m.textPA+m.cursor, uint64(raw), 4); err != nil {
			m.t.Fatal(err)
		}
		m.cursor += 4
	}
}

func (m *machine) emitRaw16(raw uint16) {
	m.t.Helper()
	if err := m.phys.WriteUint(m.textPA+m.cursor, uint64(raw), 2); err != nil {
		m.t.Fatal(err)
	}
	m.cursor += 2
}

// run steps until ECALL or failure; returns the trap.
func (m *machine) run(max int) *Trap {
	m.t.Helper()
	for i := 0; i < max; i++ {
		if trap := m.cpu.Step(); trap != nil {
			return trap
		}
	}
	m.t.Fatal("program did not trap within budget")
	return nil
}

func li(rd isa.Reg, v int64) []isa.Inst {
	if v >= -2048 && v < 2048 {
		return []isa.Inst{{Op: isa.ADDI, Rd: rd, Rs1: isa.Zero, Imm: v}}
	}
	upper := (v + 0x800) &^ 0xfff
	low := v - upper
	return []isa.Inst{
		{Op: isa.LUI, Rd: rd, Imm: upper},
		{Op: isa.ADDI, Rd: rd, Rs1: rd, Imm: low},
	}
}

func TestBasicALUProgram(t *testing.T) {
	m := newMachine(t, DefaultConfig())
	// a0 = 6 * 7; ecall
	m.emit(li(isa.A0, 6)...)
	m.emit(li(isa.A1, 7)...)
	m.emit(
		isa.Inst{Op: isa.MUL, Rd: isa.A0, Rs1: isa.A0, Rs2: isa.A1},
		isa.Inst{Op: isa.ECALL},
	)
	trap := m.run(10)
	if trap.Kind != TrapECall {
		t.Fatalf("trap = %v", trap)
	}
	if m.cpu.Regs[isa.A0] != 42 {
		t.Errorf("a0 = %d, want 42", m.cpu.Regs[isa.A0])
	}
	if m.cpu.Instret != 4 {
		t.Errorf("instret = %d, want 4", m.cpu.Instret)
	}
}

func TestX0IsHardwiredZero(t *testing.T) {
	m := newMachine(t, DefaultConfig())
	m.emit(
		isa.Inst{Op: isa.ADDI, Rd: isa.Zero, Rs1: isa.Zero, Imm: 123},
		isa.Inst{Op: isa.ADD, Rd: isa.A0, Rs1: isa.Zero, Rs2: isa.Zero},
		isa.Inst{Op: isa.ECALL},
	)
	m.run(5)
	if m.cpu.Regs[isa.Zero] != 0 || m.cpu.Regs[isa.A0] != 0 {
		t.Errorf("x0 = %d, a0 = %d", m.cpu.Regs[isa.Zero], m.cpu.Regs[isa.A0])
	}
}

func TestLoadStore(t *testing.T) {
	m := newMachine(t, DefaultConfig())
	m.emit(li(isa.A1, 0x7f000)...)
	m.emit(li(isa.A2, -559038737)...) // 0xdeadbeef sign-extended as 32-bit
	m.emit(
		isa.Inst{Op: isa.SW, Rs1: isa.A1, Rs2: isa.A2, Imm: 16},
		isa.Inst{Op: isa.LW, Rd: isa.A3, Rs1: isa.A1, Imm: 16},
		isa.Inst{Op: isa.LWU, Rd: isa.A4, Rs1: isa.A1, Imm: 16},
		isa.Inst{Op: isa.LBU, Rd: isa.A5, Rs1: isa.A1, Imm: 16},
		isa.Inst{Op: isa.ECALL},
	)
	m.run(16)
	if got := m.cpu.Regs[isa.A3]; got != 0xffffffffdeadbeef {
		t.Errorf("lw = %#x", got)
	}
	if got := m.cpu.Regs[isa.A4]; got != 0xdeadbeef {
		t.Errorf("lwu = %#x", got)
	}
	if got := m.cpu.Regs[isa.A5]; got != 0xef {
		t.Errorf("lbu = %#x", got)
	}
	st := m.cpu.Stats()
	if st.Loads != 3 || st.Stores != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBranchesAndLoop(t *testing.T) {
	m := newMachine(t, DefaultConfig())
	// sum 1..10 via loop
	m.emit(li(isa.A0, 0)...) // sum
	m.emit(li(isa.A1, 1)...) // i
	m.emit(li(isa.A2, 10)...)
	loop := int64(m.cursor)
	m.emit(
		isa.Inst{Op: isa.ADD, Rd: isa.A0, Rs1: isa.A0, Rs2: isa.A1},
		isa.Inst{Op: isa.ADDI, Rd: isa.A1, Rs1: isa.A1, Imm: 1},
	)
	// bge a2, a1, loop  (while i <= 10)
	off := loop - int64(m.cursor)
	m.emit(
		isa.Inst{Op: isa.BGE, Rs1: isa.A2, Rs2: isa.A1, Imm: off},
		isa.Inst{Op: isa.ECALL},
	)
	m.run(100)
	if m.cpu.Regs[isa.A0] != 55 {
		t.Errorf("sum = %d, want 55", m.cpu.Regs[isa.A0])
	}
	if m.cpu.Stats().TakenBranch != 9 {
		t.Errorf("taken branches = %d, want 9", m.cpu.Stats().TakenBranch)
	}
}

func TestJALAndJALR(t *testing.T) {
	m := newMachine(t, DefaultConfig())
	// call a function at +16 that sets a0=5 and returns
	m.emit(
		isa.Inst{Op: isa.JAL, Rd: isa.RA, Imm: 12}, // skip 2 insts
		isa.Inst{Op: isa.ECALL},
		isa.Inst{Op: isa.ADDI, Rd: isa.Zero, Rs1: isa.Zero}, // padding
		// function:
		isa.Inst{Op: isa.ADDI, Rd: isa.A0, Rs1: isa.Zero, Imm: 5},
		isa.Inst{Op: isa.JALR, Rd: isa.Zero, Rs1: isa.RA},
	)
	trap := m.run(10)
	if trap.Kind != TrapECall {
		t.Fatalf("trap = %v", trap)
	}
	if m.cpu.Regs[isa.A0] != 5 {
		t.Errorf("a0 = %d, want 5", m.cpu.Regs[isa.A0])
	}
}

// The headline feature: ld.ro succeeds on a read-only page with a
// matching key and faults otherwise, with the fault marked as ROLoad.
func TestROLoadSemantics(t *testing.T) {
	m := newMachine(t, DefaultConfig())
	// Read-only page with key 111 holding a function pointer table.
	m.map1(0x30000, 0x700000, mmu.PTERead, 111)
	if err := m.phys.WriteUint(0x700000, 0xabcd, 8); err != nil {
		t.Fatal(err)
	}
	m.emit(li(isa.A1, 0x30000)...)
	m.emit(
		isa.Inst{Op: isa.LDRO, Rd: isa.A0, Rs1: isa.A1, Key: 111},
		isa.Inst{Op: isa.ECALL},
	)
	trap := m.run(10)
	if trap.Kind != TrapECall {
		t.Fatalf("trap = %v", trap)
	}
	if m.cpu.Regs[isa.A0] != 0xabcd {
		t.Errorf("ld.ro value = %#x", m.cpu.Regs[isa.A0])
	}
	if m.cpu.Stats().ROLoads != 1 {
		t.Errorf("roloads = %d", m.cpu.Stats().ROLoads)
	}
}

func TestROLoadWrongKeyFaults(t *testing.T) {
	m := newMachine(t, DefaultConfig())
	m.map1(0x30000, 0x700000, mmu.PTERead, 111)
	m.emit(li(isa.A1, 0x30000)...)
	m.emit(isa.Inst{Op: isa.LDRO, Rd: isa.A0, Rs1: isa.A1, Key: 222})
	trap := m.run(10)
	if trap.Kind != TrapPageFault {
		t.Fatalf("trap = %v, want page fault", trap)
	}
	if !trap.Fault.ROLoad || trap.Fault.WantKey != 222 || trap.Fault.GotKey != 111 {
		t.Errorf("fault = %+v", trap.Fault)
	}
}

func TestROLoadWritablePageFaults(t *testing.T) {
	m := newMachine(t, DefaultConfig())
	m.map1(0x30000, 0x700000, mmu.PTERead|mmu.PTEWrite, 111)
	m.emit(li(isa.A1, 0x30000)...)
	m.emit(isa.Inst{Op: isa.LDRO, Rd: isa.A0, Rs1: isa.A1, Key: 111})
	trap := m.run(10)
	if trap.Kind != TrapPageFault || !trap.Fault.ROLoad || !trap.Fault.NotReadOnly {
		t.Fatalf("trap = %v fault=%+v", trap, trap.Fault)
	}
}

// On the baseline (unmodified) processor, ld.ro encodings are illegal
// instructions — this is what makes hardened binaries incompatible
// with stock hardware, as on the real prototype.
func TestROLoadIllegalOnBaseline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ROLoadEnabled = false
	m := newMachine(t, cfg)
	m.map1(0x30000, 0x700000, mmu.PTERead, 111)
	m.emit(li(isa.A1, 0x30000)...)
	m.emit(isa.Inst{Op: isa.LDRO, Rd: isa.A0, Rs1: isa.A1, Key: 111})
	trap := m.run(10)
	if trap.Kind != TrapIllegalInst {
		t.Fatalf("trap = %v, want illegal instruction", trap)
	}
}

func TestCompressedExecution(t *testing.T) {
	m := newMachine(t, DefaultConfig())
	// c.li a0, 9 ; c.addi a0, 1 ; ecall
	raw1, ok1 := isa.TryCompress(isa.Inst{Op: isa.ADDI, Rd: isa.A0, Rs1: isa.Zero, Imm: 9})
	raw2, ok2 := isa.TryCompress(isa.Inst{Op: isa.ADDI, Rd: isa.A0, Rs1: isa.A0, Imm: 1})
	if !ok1 || !ok2 {
		t.Fatal("compression failed")
	}
	m.emitRaw16(raw1)
	m.emitRaw16(raw2)
	m.emit(isa.Inst{Op: isa.ECALL})
	trap := m.run(5)
	if trap.Kind != TrapECall {
		t.Fatalf("trap = %v", trap)
	}
	if m.cpu.Regs[isa.A0] != 10 {
		t.Errorf("a0 = %d, want 10", m.cpu.Regs[isa.A0])
	}
}

func TestCompressedROLoad(t *testing.T) {
	m := newMachine(t, DefaultConfig())
	m.map1(0x30000, 0x700000, mmu.PTERead, 21)
	if err := m.phys.WriteUint(0x700000, 77, 8); err != nil {
		t.Fatal(err)
	}
	m.emit(li(isa.A1, 0x30000)...)
	raw, ok := isa.TryCompress(isa.Inst{Op: isa.LDRO, Rd: isa.A0, Rs1: isa.A1, Key: 21})
	if !ok {
		t.Fatal("c.ld.ro compression failed")
	}
	m.emitRaw16(raw)
	m.emitRaw16(0) // padding parcel; never executed
	m.emit(isa.Inst{Op: isa.ECALL})
	// c.ld.ro occupies 2 bytes; next fetch lands on the zero padding,
	// so place ecall right after by re-emitting: easier to just step.
	for i := 0; i < 3; i++ {
		if trap := m.cpu.Step(); trap != nil {
			if trap.Kind == TrapIllegalInst && m.cpu.Regs[isa.A0] == 77 {
				return // loaded fine; padding was illegal, as expected
			}
			if trap.Kind == TrapECall {
				break
			}
			t.Fatalf("trap = %v", trap)
		}
	}
	if m.cpu.Regs[isa.A0] != 77 {
		t.Errorf("a0 = %d, want 77", m.cpu.Regs[isa.A0])
	}
}

func TestStoreToReadOnlyFaults(t *testing.T) {
	m := newMachine(t, DefaultConfig())
	m.map1(0x30000, 0x700000, mmu.PTERead, 0)
	m.emit(li(isa.A1, 0x30000)...)
	m.emit(isa.Inst{Op: isa.SD, Rs1: isa.A1, Rs2: isa.Zero, Imm: 0})
	trap := m.run(10)
	if trap.Kind != TrapPageFault || trap.Fault.Cause != mmu.FaultStorePage {
		t.Fatalf("trap = %v", trap)
	}
	if trap.Fault.ROLoad {
		t.Error("regular store fault must not be flagged ROLoad")
	}
}

func TestExecFromDataFaults(t *testing.T) {
	m := newMachine(t, DefaultConfig())
	m.cpu.PC = 0x7f000 // stack page: RW, not X
	trap := m.cpu.Step()
	if trap == nil || trap.Kind != TrapPageFault || trap.Fault.Cause != mmu.FaultInstPage {
		t.Fatalf("trap = %v", trap)
	}
}

func TestUnmappedLoadFaults(t *testing.T) {
	m := newMachine(t, DefaultConfig())
	m.emit(li(isa.A1, 0x5000000)...)
	m.emit(isa.Inst{Op: isa.LD, Rd: isa.A0, Rs1: isa.A1, Imm: 0})
	trap := m.run(10)
	if trap.Kind != TrapPageFault || !trap.Fault.Unmapped {
		t.Fatalf("trap = %v", trap)
	}
}

func TestCSRCounters(t *testing.T) {
	m := newMachine(t, DefaultConfig())
	m.emit(
		isa.Inst{Op: isa.ADD, Rd: isa.A1, Rs1: isa.Zero, Rs2: isa.Zero},
		isa.Inst{Op: isa.CSRRS, Rd: isa.A0, Rs1: isa.Zero, Imm: CSRInstret},
		isa.Inst{Op: isa.CSRRS, Rd: isa.A2, Rs1: isa.Zero, Imm: CSRCycle},
		isa.Inst{Op: isa.ECALL},
	)
	m.run(5)
	if m.cpu.Regs[isa.A0] != 1 {
		t.Errorf("instret csr = %d, want 1", m.cpu.Regs[isa.A0])
	}
	if m.cpu.Regs[isa.A2] == 0 {
		t.Error("cycle csr = 0")
	}
}

func TestCycleCostsCharged(t *testing.T) {
	m := newMachine(t, DefaultConfig())
	m.emit(
		isa.Inst{Op: isa.ADD, Rd: isa.A0, Rs1: isa.Zero, Rs2: isa.Zero},
		isa.Inst{Op: isa.ECALL},
	)
	m.run(3)
	// First fetch: ITLB miss (3 walk mem ops) + icache miss.
	cost := m.cpu.Config().Cost
	min := cost.Base + 3*cost.TLBWalkPerMem + cost.CacheMiss
	if m.cpu.Cycles < min {
		t.Errorf("cycles = %d, want >= %d", m.cpu.Cycles, min)
	}
}

func TestDivByZeroSemantics(t *testing.T) {
	m := newMachine(t, DefaultConfig())
	m.emit(li(isa.A1, 42)...)
	m.emit(
		isa.Inst{Op: isa.DIV, Rd: isa.A0, Rs1: isa.A1, Rs2: isa.Zero},
		isa.Inst{Op: isa.REM, Rd: isa.A2, Rs1: isa.A1, Rs2: isa.Zero},
		isa.Inst{Op: isa.ECALL},
	)
	m.run(5)
	if m.cpu.Regs[isa.A0] != ^uint64(0) {
		t.Errorf("div/0 = %#x, want all ones", m.cpu.Regs[isa.A0])
	}
	if m.cpu.Regs[isa.A2] != 42 {
		t.Errorf("rem/0 = %d, want dividend", m.cpu.Regs[isa.A2])
	}
}

func TestRunBudget(t *testing.T) {
	m := newMachine(t, DefaultConfig())
	// Infinite loop: jal zero, 0
	m.emit(isa.Inst{Op: isa.JAL, Rd: isa.Zero, Imm: 0})
	if trap := m.cpu.Run(1000); trap != nil {
		t.Fatalf("trap = %v", trap)
	}
	if m.cpu.Instret != 1000 {
		t.Errorf("instret = %d", m.cpu.Instret)
	}
}

func TestTracer(t *testing.T) {
	m := newMachine(t, DefaultConfig())
	m.emit(li(isa.A0, 1)...)
	m.emit(isa.Inst{Op: isa.ECALL})
	var seen []isa.Op
	var pcs []uint64
	m.cpu.Tracer = func(pc uint64, in isa.Inst) {
		seen = append(seen, in.Op)
		pcs = append(pcs, pc)
	}
	trap := m.run(5)
	if trap.Kind != TrapECall {
		t.Fatalf("trap = %v", trap)
	}
	if len(seen) != 2 || seen[0] != isa.ADDI || seen[1] != isa.ECALL {
		t.Fatalf("trace = %v", seen)
	}
	// The trace order must match program order: the trapping ECALL is
	// observed after the instruction before it, at the right pc.
	if pcs[0] != m.textVA || pcs[1] != m.textVA+4 {
		t.Errorf("trace pcs = %#x", pcs)
	}
	// The trapping instruction was observed exactly once even though
	// it suspended execution.
	if n := countOp(seen, isa.ECALL); n != 1 {
		t.Errorf("ECALL traced %d times, want 1", n)
	}
}

// TestTracerTrappingLoadSeenOnce drives an instruction that traps
// mid-execution (a load from an unmapped page): the tracer fires for
// it pre-execution, exactly once, in program order, and nothing after
// it is traced.
func TestTracerTrappingLoadSeenOnce(t *testing.T) {
	m := newMachine(t, DefaultConfig())
	m.emit(li(isa.A1, 0x100)...) // 0x100 is unmapped
	m.emit(
		isa.Inst{Op: isa.LD, Rd: isa.A0, Rs1: isa.A1, Imm: 0},
		isa.Inst{Op: isa.ECALL}, // must NOT be reached or traced
	)
	var seen []isa.Op
	m.cpu.Tracer = func(pc uint64, in isa.Inst) { seen = append(seen, in.Op) }
	trap := m.run(5)
	if trap.Kind != TrapPageFault {
		t.Fatalf("trap = %v, want page fault", trap)
	}
	want := []isa.Op{isa.ADDI, isa.LD}
	if len(seen) != len(want) {
		t.Fatalf("trace = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("trace[%d] = %v, want %v", i, seen[i], want[i])
		}
	}
	if n := countOp(seen, isa.LD); n != 1 {
		t.Errorf("trapping LD traced %d times, want 1", n)
	}
}

func countOp(ops []isa.Op, op isa.Op) int {
	n := 0
	for _, o := range ops {
		if o == op {
			n++
		}
	}
	return n
}

// Property: 64-bit ALU reference check against Go's arithmetic for a
// random mix of operations.
func TestQuickALUMatchesReference(t *testing.T) {
	f := func(a, b uint64, sel uint8) bool {
		phys := mem.NewPhysical(1 << 20)
		c := New(phys, DefaultConfig())
		c.Regs[isa.A1] = a
		c.Regs[isa.A2] = b
		var op isa.Op
		var want uint64
		switch sel % 8 {
		case 0:
			op, want = isa.ADD, a+b
		case 1:
			op, want = isa.SUB, a-b
		case 2:
			op, want = isa.XOR, a^b
		case 3:
			op, want = isa.AND, a&b
		case 4:
			op, want = isa.OR, a|b
		case 5:
			op, want = isa.SLL, a<<(b&63)
		case 6:
			op, want = isa.SRL, a>>(b&63)
		case 7:
			op, want = isa.MUL, a*b
		}
		c.execALU(isa.Inst{Op: op, Rd: isa.A0, Rs1: isa.A1, Rs2: isa.A2})
		return c.Regs[isa.A0] == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mulhu agrees with the schoolbook 128-bit product for
// random operands (cross-checked via math/bits-free reference built
// from 32-bit limbs).
func TestQuickMulhu(t *testing.T) {
	ref := func(a, b uint64) uint64 {
		a0, a1 := a&0xffffffff, a>>32
		b0, b1 := b&0xffffffff, b>>32
		lo := a0 * b0
		mid1 := a1 * b0
		mid2 := a0 * b1
		carry := (lo>>32 + mid1&0xffffffff + mid2&0xffffffff) >> 32
		return a1*b1 + mid1>>32 + mid2>>32 + carry
	}
	f := func(a, b uint64) bool { return mulhu(a, b) == ref(a, b) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: signed mulh via negation identity: mulh(a,b) for negative
// operands agrees with computing on magnitudes.
func TestQuickMulhSign(t *testing.T) {
	f := func(a, b int64) bool {
		got := mulh(a, b)
		// Reference via four-limb signed arithmetic using big products
		// of halves is overkill; verify with the identity
		// (a*b) as 128-bit == hi<<64 | lo, checking sign consistency.
		lo := uint64(a) * uint64(b)
		// Reconstruct the sign of the true product.
		negative := (a < 0) != (b < 0) && a != 0 && b != 0
		if negative {
			// hi must have the top bit set unless the product is exactly
			// -2^63 <= p < 0 with hi == ^0.
			if int64(got) > 0 {
				return false
			}
		} else if a != 0 && b != 0 {
			if int64(got) < 0 {
				return false
			}
		}
		_ = lo
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkStepALU(b *testing.B) {
	phys := mem.NewPhysical(64 << 20)
	alloc := &bumpAlloc{next: 0x100000}
	mapper, _ := mmu.NewMapper(phys, alloc)
	_ = mapper.Map(0x10000, 0x400000, mmu.PTERead|mmu.PTEExec, 0)
	c := New(phys, DefaultConfig())
	c.SetPageTableRoot(mapper.Root())
	// loop: addi a0, a0, 1 ; jal zero, -4
	w1 := isa.MustEncode(isa.Inst{Op: isa.ADDI, Rd: isa.A0, Rs1: isa.A0, Imm: 1})
	w2 := isa.MustEncode(isa.Inst{Op: isa.JAL, Rd: isa.Zero, Imm: -4})
	_ = phys.WriteUint(0x400000, uint64(w1), 4)
	_ = phys.WriteUint(0x400004, uint64(w2), 4)
	c.PC = 0x10000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}
