package cpu

import (
	"math/rand"
	"testing"

	"roload/internal/isa"
	"roload/internal/mem"
	"roload/internal/mmu"
)

// TestFuzzRandomCode executes pages of random bytes as code: every
// outcome must be either a clean retirement or a well-formed trap —
// never a panic, never a cycle-counter regression, never execution
// escaping the mapped address space.
func TestFuzzRandomCode(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	phys := mem.NewPhysical(16 << 20)
	alloc := &bumpAlloc{next: 0x100000}
	mapper, err := mmu.NewMapper(phys, alloc)
	if err != nil {
		t.Fatal(err)
	}
	const textVA, textPA = 0x10000, 0x400000
	const dataVA, dataPA = 0x20000, 0x500000
	const roVA, roPA = 0x30000, 0x600000
	if err := mapper.Map(textVA, textPA, mmu.PTERead|mmu.PTEExec, 0); err != nil {
		t.Fatal(err)
	}
	if err := mapper.Map(dataVA, dataPA, mmu.PTERead|mmu.PTEWrite, 0); err != nil {
		t.Fatal(err)
	}
	if err := mapper.Map(roVA, roPA, mmu.PTERead, 7); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 200; round++ {
		code := make([]byte, mem.PageSize)
		rng.Read(code)
		if err := phys.Write(textPA, code); err != nil {
			t.Fatal(err)
		}
		c := New(phys, DefaultConfig())
		c.SetPageTableRoot(mapper.Root())
		c.PC = textVA
		// Point likely base registers at mapped memory so some memory
		// ops succeed.
		c.Regs[isa.SP] = dataVA + 2048
		c.Regs[isa.A0] = roVA
		c.Regs[isa.A1] = dataVA

		prevCycles := uint64(0)
		for step := 0; step < 500; step++ {
			trap := c.Step()
			if c.Cycles < prevCycles {
				t.Fatalf("round %d: cycle counter went backwards", round)
			}
			prevCycles = c.Cycles
			if trap != nil {
				switch trap.Kind {
				case TrapECall, TrapEBreak, TrapIllegalInst, TrapPageFault, TrapMisaligned:
					// well-formed; stop this round
				default:
					t.Fatalf("round %d: malformed trap %+v", round, trap)
				}
				break
			}
			if c.PC < 0x1000 || c.PC > 1<<39 {
				// Jumps to wild addresses must fault on the next step,
				// not run forever; just continue and let the fetch trap.
				continue
			}
		}
	}
}

// TestFuzzRandomALUSequences builds random but *valid* ALU instruction
// sequences and checks the register file invariants: x0 stays zero and
// instret advances exactly once per retired instruction.
func TestFuzzRandomALUSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ops := []isa.Op{
		isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SLL, isa.SRL,
		isa.SRA, isa.SLT, isa.SLTU, isa.MUL, isa.DIV, isa.REM,
		isa.ADDW, isa.SUBW, isa.MULW, isa.DIVW, isa.REMW,
	}
	phys := mem.NewPhysical(16 << 20)
	alloc := &bumpAlloc{next: 0x100000}
	mapper, _ := mmu.NewMapper(phys, alloc)
	_ = mapper.Map(0x10000, 0x400000, mmu.PTERead|mmu.PTEExec, 0)

	for round := 0; round < 100; round++ {
		n := 50
		addr := uint64(0x400000)
		for i := 0; i < n; i++ {
			in := isa.Inst{
				Op:  ops[rng.Intn(len(ops))],
				Rd:  isa.Reg(rng.Intn(32)),
				Rs1: isa.Reg(rng.Intn(32)),
				Rs2: isa.Reg(rng.Intn(32)),
			}
			if err := phys.WriteUint(addr, uint64(isa.MustEncode(in)), 4); err != nil {
				t.Fatal(err)
			}
			addr += 4
		}
		if err := phys.WriteUint(addr, uint64(isa.MustEncode(isa.Inst{Op: isa.ECALL})), 4); err != nil {
			t.Fatal(err)
		}
		c := New(phys, DefaultConfig())
		c.SetPageTableRoot(mapper.Root())
		c.PC = 0x10000
		for i := range c.Regs {
			c.Regs[i] = rng.Uint64()
		}
		c.Regs[0] = 0
		trap := c.Run(uint64(n + 1))
		if trap == nil || trap.Kind != TrapECall {
			t.Fatalf("round %d: trap = %+v", round, trap)
		}
		if c.Regs[isa.Zero] != 0 {
			t.Fatalf("round %d: x0 = %#x", round, c.Regs[isa.Zero])
		}
		if c.Instret != uint64(n+1) {
			t.Fatalf("round %d: instret = %d, want %d", round, c.Instret, n+1)
		}
	}
}

// TestStatsConsistency: the per-kind counters must sum consistently
// with instret on a mixed program.
func TestStatsConsistency(t *testing.T) {
	m := newMachine(t, DefaultConfig())
	m.map1(0x30000, 0x700000, mmu.PTERead, 3)
	m.emit(li(isa.A1, 0x30000)...)
	m.emit(li(isa.A2, 0x7f000)...)
	m.emit(
		isa.Inst{Op: isa.LDRO, Rd: isa.A0, Rs1: isa.A1, Key: 3},
		isa.Inst{Op: isa.SD, Rs1: isa.A2, Rs2: isa.A0, Imm: 0},
		isa.Inst{Op: isa.LD, Rd: isa.A3, Rs1: isa.A2, Imm: 0},
		isa.Inst{Op: isa.MUL, Rd: isa.A4, Rs1: isa.A3, Rs2: isa.A3},
		isa.Inst{Op: isa.BEQ, Rs1: isa.Zero, Rs2: isa.Zero, Imm: 8},
		isa.Inst{Op: isa.EBREAK}, // skipped by branch
		isa.Inst{Op: isa.ECALL},
	)
	trap := m.run(20)
	if trap.Kind != TrapECall {
		t.Fatalf("trap = %v", trap)
	}
	st := m.cpu.Stats()
	if st.Loads != 2 || st.ROLoads != 1 || st.Stores != 1 {
		t.Errorf("memory stats = %+v", st)
	}
	if st.Branches != 1 || st.TakenBranch != 1 {
		t.Errorf("branch stats = %+v", st)
	}
	if st.MulDiv != 1 {
		t.Errorf("muldiv = %d", st.MulDiv)
	}
	if st.Instructions != m.cpu.Instret {
		t.Errorf("instr count mismatch: %d vs %d", st.Instructions, m.cpu.Instret)
	}
}
