package cpu

import "roload/internal/isa"

func sext32(v uint64) uint64 { return uint64(int64(int32(uint32(v)))) }

func (c *CPU) execALU(in isa.Inst) {
	v := aluCompute(in.Op, c.reg(in.Rs1), c.reg(in.Rs2), uint64(in.Imm))
	switch in.Op {
	case isa.MUL, isa.MULH, isa.MULHU, isa.MULHSU, isa.MULW:
		c.Cycles += c.cfg.Cost.Mul
		c.stats.MulDiv++
	case isa.DIV, isa.DIVU, isa.REM, isa.REMU, isa.DIVW, isa.DIVUW, isa.REMW, isa.REMUW:
		c.Cycles += c.cfg.Cost.Div
		c.stats.MulDiv++
	}
	c.setReg(in.Rd, v)
}

// aluCompute is the pure value function of every ALU opcode, shared
// between the interpreter (execALU, which adds the multiply/divide
// charges) and the block engine (which folds those charges statically).
func aluCompute(op isa.Op, a, b, imm uint64) uint64 {
	var v uint64
	switch op {
	case isa.ADDI:
		v = a + imm
	case isa.SLTI:
		if int64(a) < int64(imm) {
			v = 1
		}
	case isa.SLTIU:
		if a < imm {
			v = 1
		}
	case isa.XORI:
		v = a ^ imm
	case isa.ORI:
		v = a | imm
	case isa.ANDI:
		v = a & imm
	case isa.SLLI:
		v = a << (imm & 63)
	case isa.SRLI:
		v = a >> (imm & 63)
	case isa.SRAI:
		v = uint64(int64(a) >> (imm & 63))
	case isa.ADD:
		v = a + b
	case isa.SUB:
		v = a - b
	case isa.SLL:
		v = a << (b & 63)
	case isa.SLT:
		if int64(a) < int64(b) {
			v = 1
		}
	case isa.SLTU:
		if a < b {
			v = 1
		}
	case isa.XOR:
		v = a ^ b
	case isa.SRL:
		v = a >> (b & 63)
	case isa.SRA:
		v = uint64(int64(a) >> (b & 63))
	case isa.OR:
		v = a | b
	case isa.AND:
		v = a & b

	case isa.ADDIW:
		v = sext32(a + imm)
	case isa.SLLIW:
		v = sext32(a << (imm & 31))
	case isa.SRLIW:
		v = sext32(uint64(uint32(a) >> (imm & 31)))
	case isa.SRAIW:
		v = uint64(int64(int32(uint32(a)) >> (imm & 31)))
	case isa.ADDW:
		v = sext32(a + b)
	case isa.SUBW:
		v = sext32(a - b)
	case isa.SLLW:
		v = sext32(a << (b & 31))
	case isa.SRLW:
		v = sext32(uint64(uint32(a) >> (b & 31)))
	case isa.SRAW:
		v = uint64(int64(int32(uint32(a)) >> (b & 31)))

	case isa.MUL:
		v = a * b
	case isa.MULH:
		v = mulh(int64(a), int64(b))
	case isa.MULHU:
		v = mulhu(a, b)
	case isa.MULHSU:
		v = mulhsu(int64(a), b)
	case isa.DIV:
		v = div(int64(a), int64(b))
	case isa.DIVU:
		v = divu(a, b)
	case isa.REM:
		v = rem(int64(a), int64(b))
	case isa.REMU:
		v = remu(a, b)
	case isa.MULW:
		v = sext32(uint64(uint32(a) * uint32(b)))
	case isa.DIVW:
		v = sext32(uint64(uint32(divw(int32(uint32(a)), int32(uint32(b))))))
	case isa.DIVUW:
		v = sext32(uint64(divuw(uint32(a), uint32(b))))
	case isa.REMW:
		v = sext32(uint64(uint32(remw(int32(uint32(a)), int32(uint32(b))))))
	case isa.REMUW:
		v = sext32(uint64(remuw(uint32(a), uint32(b))))
	}
	return v
}

// mulh returns the high 64 bits of the signed 128-bit product.
func mulh(a, b int64) uint64 {
	neg := (a < 0) != (b < 0)
	ua, ub := uint64(a), uint64(b)
	if a < 0 {
		ua = uint64(-a)
	}
	if b < 0 {
		ub = uint64(-b)
	}
	hi := mulhu(ua, ub)
	lo := ua * ub
	if neg {
		// two's complement negation of the 128-bit value
		hi = ^hi
		if lo == 0 {
			hi++
		}
	}
	return hi
}

// mulhu returns the high 64 bits of the unsigned 128-bit product.
func mulhu(a, b uint64) uint64 {
	aLo, aHi := a&0xffffffff, a>>32
	bLo, bHi := b&0xffffffff, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & 0xffffffff
	w2 := t >> 32
	w1 += aHi * bLo
	return aHi*bHi + w2 + w1>>32
}

// mulhsu returns the high 64 bits of signed a times unsigned b.
func mulhsu(a int64, b uint64) uint64 {
	if a >= 0 {
		return mulhu(uint64(a), b)
	}
	hi := mulhu(uint64(-a), b)
	lo := uint64(-a) * b
	hi = ^hi
	if lo == 0 {
		hi++
	}
	return hi
}

// RISC-V division semantics: divide by zero yields all-ones quotient
// (or the dividend as remainder); signed overflow yields the dividend.
func div(a, b int64) uint64 {
	switch {
	case b == 0:
		return ^uint64(0)
	case a == -1<<63 && b == -1:
		return uint64(a)
	default:
		return uint64(a / b)
	}
}

func divu(a, b uint64) uint64 {
	if b == 0 {
		return ^uint64(0)
	}
	return a / b
}

func rem(a, b int64) uint64 {
	switch {
	case b == 0:
		return uint64(a)
	case a == -1<<63 && b == -1:
		return 0
	default:
		return uint64(a % b)
	}
}

func remu(a, b uint64) uint64 {
	if b == 0 {
		return a
	}
	return a % b
}

func divw(a, b int32) int32 {
	switch {
	case b == 0:
		return -1
	case a == -1<<31 && b == -1:
		return a
	default:
		return a / b
	}
}

func divuw(a, b uint32) uint32 {
	if b == 0 {
		return ^uint32(0)
	}
	return a / b
}

func remw(a, b int32) int32 {
	switch {
	case b == 0:
		return a
	case a == -1<<31 && b == -1:
		return 0
	default:
		return a % b
	}
}

func remuw(a, b uint32) uint32 {
	if b == 0 {
		return a
	}
	return a % b
}
