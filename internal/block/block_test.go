package block

import (
	"testing"

	"roload/internal/isa"
	"roload/internal/mem"
)

// encode assembles one instruction word via the isa encoder.
func encode(t *testing.T, in isa.Inst) uint32 {
	t.Helper()
	raw, err := isa.Encode(in)
	if err != nil {
		t.Fatalf("encode %v: %v", in, err)
	}
	return raw
}

// plant writes 4-byte instruction words contiguously at pa.
func plant(t *testing.T, phys *mem.Physical, pa uint64, words ...uint32) {
	t.Helper()
	for i, w := range words {
		if err := phys.WriteUint(pa+uint64(4*i), uint64(w), 4); err != nil {
			t.Fatalf("write word %d: %v", i, err)
		}
	}
}

func addi(t *testing.T) uint32 {
	return encode(t, isa.Inst{Op: isa.ADDI, Rd: isa.A0, Rs1: isa.Zero, Imm: 1})
}

func TestTranslateTerminator(t *testing.T) {
	phys := mem.NewPhysical(1 << 20)
	const pa = 0x1000
	plant(t, phys, pa,
		addi(t),
		addi(t),
		encode(t, isa.Inst{Op: isa.BEQ, Rs1: isa.A0, Rs2: isa.Zero, Imm: 8}),
	)
	b := Translate(phys, pa, pa, 64, true)
	if b.Kind != KindBlock {
		t.Fatalf("kind = %v, want KindBlock", b.Kind)
	}
	if len(b.Insts) != 3 {
		t.Fatalf("got %d insts, want 3 (block must stop at the branch)", len(b.Insts))
	}
	term, ok := b.Terminator()
	if !ok || term.Class != ClassBranch {
		t.Errorf("terminator = %+v ok=%v, want a ClassBranch terminator", term, ok)
	}
	if b.EndOff != 12 {
		t.Errorf("EndOff = %d, want 12", b.EndOff)
	}
	if b.Counts.Branches != 1 {
		t.Errorf("Branches = %d, want 1", b.Counts.Branches)
	}
	if !b.Ref.Valid() {
		t.Error("fresh block's Ref must be valid")
	}
}

func TestTranslateUnblockableStarts(t *testing.T) {
	ldro := func(t *testing.T) uint32 {
		return encode(t, isa.Inst{Op: isa.LDRO, Rd: isa.A0, Rs1: isa.A1, Key: 7})
	}
	cases := []struct {
		name      string
		raw       uint32
		roload    bool
		wantOp    isa.Op
		wantFirst bool
	}{
		{"ecall", encode(t, isa.Inst{Op: isa.ECALL}), true, isa.ECALL, true},
		{"invalid", 0xFFFFFFFF, true, isa.OpInvalid, true},
		{"roload-disabled", ldro(t), false, isa.OpInvalid, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			phys := mem.NewPhysical(1 << 20)
			const pa = 0x2000
			plant(t, phys, pa, c.raw)
			b := Translate(phys, pa, pa, 64, c.roload)
			if b.Kind != KindUnblockable {
				t.Fatalf("kind = %v, want KindUnblockable", b.Kind)
			}
			if c.wantFirst && b.First.Op != c.wantOp {
				t.Errorf("First.Op = %v, want %v", b.First.Op, c.wantOp)
			}
		})
	}
	// With the extension enabled the same ld.ro is a perfectly good
	// block instruction.
	phys := mem.NewPhysical(1 << 20)
	plant(t, phys, 0x2000, ldro(t))
	b := Translate(phys, 0x2000, 0x2000, 64, true)
	if b.Kind != KindBlock || len(b.Insts) != 1 || b.Insts[0].Class != ClassROLoad {
		t.Errorf("enabled ld.ro: %+v, want one ClassROLoad inst", b)
	}
}

func TestTranslateStopsBeforeUnblockable(t *testing.T) {
	phys := mem.NewPhysical(1 << 20)
	const pa = 0x3000
	plant(t, phys, pa, addi(t), encode(t, isa.Inst{Op: isa.ECALL}))
	b := Translate(phys, pa, pa, 64, true)
	if b.Kind != KindBlock || len(b.Insts) != 1 || b.EndOff != 4 {
		t.Fatalf("block = %+v, want 1 inst ending at off 4 (ecall excluded)", b)
	}
	if _, ok := b.Terminator(); ok {
		t.Error("a block cut before an unblockable has no terminator")
	}
}

func TestTranslatePageBoundaryCut(t *testing.T) {
	phys := mem.NewPhysical(1 << 20)
	pa := uint64(0x2000) - 8 // room for exactly two 4-byte insts
	plant(t, phys, pa, addi(t), addi(t), addi(t), addi(t))
	b := Translate(phys, pa, pa, 64, true)
	if b.Kind != KindBlock || len(b.Insts) != 2 {
		t.Fatalf("block = %+v, want exactly 2 insts (cut at the page edge)", b)
	}
	if pa+uint64(b.EndOff) != 0x2000 {
		t.Errorf("fall-through = %#x, want the next page start %#x", pa+uint64(b.EndOff), 0x2000)
	}
}

func TestTranslateStraddle(t *testing.T) {
	phys := mem.NewPhysical(1 << 20)
	pa := uint64(0x2000) - 2 // a 4-byte parcel straddling the page end
	plant(t, phys, pa, addi(t))
	b := Translate(phys, pa, pa, 64, true)
	if b.Kind != KindSlowFetch {
		t.Fatalf("kind = %v, want KindSlowFetch for a straddling start", b.Kind)
	}

	// Straddle later in the block: the block simply ends before it.
	pa = uint64(0x2000) - 6
	plant(t, phys, pa, addi(t), addi(t))
	b = Translate(phys, pa, pa, 64, true)
	if b.Kind != KindBlock || len(b.Insts) != 1 || b.EndOff != 4 {
		t.Errorf("block = %+v, want 1 inst ending before the straddler", b)
	}
}

func TestTranslateMaxInsts(t *testing.T) {
	phys := mem.NewPhysical(1 << 20)
	const pa = 0x4000 // page-aligned: room for 1024 4-byte insts
	words := make([]uint32, MaxInsts+32)
	for i := range words {
		words[i] = addi(t)
	}
	plant(t, phys, pa, words...)
	b := Translate(phys, pa, pa, 64, true)
	if len(b.Insts) != MaxInsts {
		t.Errorf("got %d insts, want the %d cap", len(b.Insts), MaxInsts)
	}
	if _, ok := b.Terminator(); ok {
		t.Error("a capped block has no terminator")
	}
}

func TestTranslateCounts(t *testing.T) {
	phys := mem.NewPhysical(1 << 20)
	const pa = 0x5000
	plant(t, phys, pa,
		encode(t, isa.Inst{Op: isa.LD, Rd: isa.A0, Rs1: isa.A1}),
		encode(t, isa.Inst{Op: isa.LDRO, Rd: isa.A0, Rs1: isa.A1, Key: 3}),
		encode(t, isa.Inst{Op: isa.SD, Rs2: isa.A0, Rs1: isa.A1}),
		encode(t, isa.Inst{Op: isa.MUL, Rd: isa.A0, Rs1: isa.A0, Rs2: isa.A1}),
		encode(t, isa.Inst{Op: isa.DIV, Rd: isa.A0, Rs1: isa.A0, Rs2: isa.A1}),
		encode(t, isa.Inst{Op: isa.JAL, Rd: isa.Zero, Imm: 8}),
	)
	b := Translate(phys, pa, pa, 64, true)
	want := Counts{Loads: 2, Stores: 1, ROLoads: 1, MulDiv: 2, Muls: 1, Divs: 1, Jumps: 1}
	if b.Counts != want {
		t.Errorf("Counts = %+v, want %+v", b.Counts, want)
	}
	if len(b.Insts) != 6 {
		t.Errorf("got %d insts, want 6", len(b.Insts))
	}
}

func TestLineLeaderMarking(t *testing.T) {
	phys := mem.NewPhysical(1 << 20)
	const pa = 0x6000 // aligned to any line size
	plant(t, phys, pa, addi(t), addi(t), addi(t), addi(t))
	b := Translate(phys, pa, pa, 8, true) // 8-byte lines: two insts per line
	wantLeaders := []bool{true, false, true, false}
	for i, in := range b.Insts {
		if in.LineLeader != wantLeaders[i] {
			t.Errorf("inst %d LineLeader = %v, want %v", i, in.LineLeader, wantLeaders[i])
		}
	}
}

func TestTranslateOffsetsMixedWidth(t *testing.T) {
	phys := mem.NewPhysical(1 << 20)
	const pa = 0x7000
	// c.nop (2 bytes) then a 4-byte addi: offsets 0 and 2.
	if err := phys.WriteUint(pa, 0x0001, 2); err != nil {
		t.Fatal(err)
	}
	if err := phys.WriteUint(pa+2, uint64(addi(t)), 4); err != nil {
		t.Fatal(err)
	}
	b := Translate(phys, pa, pa, 64, true)
	if len(b.Insts) < 2 {
		t.Fatalf("got %d insts, want at least 2", len(b.Insts))
	}
	if b.Insts[0].Off != 0 || b.Insts[1].Off != 2 {
		t.Errorf("offsets = %d,%d, want 0,2", b.Insts[0].Off, b.Insts[1].Off)
	}
}

func TestRefInvalidatedByWrite(t *testing.T) {
	phys := mem.NewPhysical(1 << 20)
	const pa = 0x8000
	plant(t, phys, pa, addi(t), addi(t))
	b := Translate(phys, pa, pa, 64, true)
	if !b.Ref.Valid() {
		t.Fatal("fresh Ref invalid")
	}
	// Any write to the backing page revokes the translation — even one
	// beyond the block's own bytes (page granularity, like predecode).
	if err := phys.WriteUint(pa+512, 0xAB, 1); err != nil {
		t.Fatal(err)
	}
	if b.Ref.Valid() {
		t.Error("Ref still valid after a write to the backing page")
	}
}
