// Package block is the translation half of the block-compiling
// execution engine: it decodes one guest basic block — a straight-line
// run of instructions ending at a control transfer or at an engine
// boundary — into an opcode-classified IR that the emitter in
// internal/cpu lowers to a chain of pre-bound closures.
//
// The split mirrors an assembler's encoder/builder separation:
// translation here is a pure function of the physical code bytes (no
// machine state, no accounting), so a different backend — generated Go,
// or a real JIT — could consume the same IR. Everything the emitter
// needs to fold per-block accounting statically (instruction classes,
// cycle-relevant counts, line-group leaders for I-cache accounting) is
// precomputed during translation.
//
// A block never crosses a page: the engine revalidates exactly one
// physical page (via mem.PageRef write generations plus a fresh I-side
// translation) per block entry, the same invalidation key as the
// predecode cache.
package block

import (
	"roload/internal/isa"
	"roload/internal/mem"
)

// Class is the emitter-facing classification of one instruction. It
// determines both the closure shape and the static cost/stat folding.
type Class uint8

const (
	// ClassALU covers every ALU opcode with base cost only (LUI and
	// AUIPC included).
	ClassALU Class = iota
	// ClassMul and ClassDiv are ALU opcodes with the extra multiply or
	// divide cycle charge (and a MulDiv stat each).
	ClassMul
	ClassDiv
	// ClassLoad is a regular load, ClassROLoad an ld.ro-family load,
	// ClassStore a store.
	ClassLoad
	ClassROLoad
	ClassStore
	// ClassFence is a no-op retaining only fetch and base accounting.
	ClassFence
	// ClassBranch, ClassJAL and ClassJALR are terminators: always the
	// final instruction of a Body block.
	ClassBranch
	ClassJAL
	ClassJALR
)

// Kind describes what a translated entry represents.
type Kind uint8

const (
	// KindBlock is a runnable block of at least one instruction.
	KindBlock Kind = iota
	// KindUnblockable marks a start instruction the engine must
	// execute via the interpreter (ECALL, EBREAK, CSR reads — which
	// need live counters mid-stream — illegal encodings, and
	// ROLoad-family opcodes when the processor lacks the extension).
	// First holds the decoded instruction so the fallback skips
	// re-decoding.
	KindUnblockable
	// KindSlowFetch marks a start instruction whose 4-byte encoding
	// straddles the page: its fetch performs a second I-side
	// translation whose accounting must replay on every execution, so
	// the address stays on the interpreter permanently.
	KindSlowFetch
)

// Inst is one translated instruction.
type Inst struct {
	In    isa.Inst
	Class Class
	// Off is the byte offset of the instruction from the block start.
	Off uint16
	// LineLeader marks the first instruction fetched from each I-cache
	// line within the block: the emitter performs a real (possibly
	// missing) cache access for leaders and a guaranteed-hit access for
	// followers.
	LineLeader bool
}

// Counts are the statically known stat deltas of a fully retired
// block (the dynamic TakenBranch counter is charged at run time).
type Counts struct {
	Loads    uint64
	Stores   uint64
	ROLoads  uint64
	MulDiv   uint64
	Branches uint64
	Jumps    uint64
	Muls     uint64 // subset of MulDiv paying the multiply charge
	Divs     uint64 // subset of MulDiv paying the divide charge
}

// Block is one translated superblock.
type Block struct {
	Kind Kind
	// VA and PA locate the block start; Ref pins the backing physical
	// page's write generation (Ref.Valid() false ⇒ retranslate).
	VA  uint64
	PA  uint64
	Ref mem.PageRef

	Insts  []Inst
	Counts Counts
	// EndOff is the byte offset one past the last instruction: the
	// fall-through PC is VA+EndOff (for branch terminators, the
	// not-taken successor).
	EndOff uint16
	// First is the decoded start instruction for KindUnblockable.
	First isa.Inst
}

// Terminator returns the final instruction if the block ends in a
// control transfer, and ok=false for blocks cut at a page boundary,
// the length cap, or an unblockable successor.
func (b *Block) Terminator() (Inst, bool) {
	if len(b.Insts) == 0 {
		return Inst{}, false
	}
	last := b.Insts[len(b.Insts)-1]
	switch last.Class {
	case ClassBranch, ClassJAL, ClassJALR:
		return last, true
	}
	return Inst{}, false
}

// MaxInsts caps block length. Long straight-line runs split into
// chained blocks; the cap bounds the budget-fit check's granularity
// (the engine enters a block only when the whole block fits the
// remaining instruction budget, single-stepping otherwise).
const MaxInsts = 128

// classify maps an opcode to its class and whether it may start or
// continue a block.
func classify(op isa.Op, roloadEnabled bool) (Class, bool) {
	switch {
	case op == isa.OpInvalid, op == isa.ECALL, op == isa.EBREAK,
		op == isa.CSRRW, op == isa.CSRRS, op == isa.CSRRC:
		return 0, false
	case op.IsROLoad():
		if !roloadEnabled {
			return 0, false // illegal instruction on this processor
		}
		return ClassROLoad, true
	case op.IsBranch():
		return ClassBranch, true
	case op == isa.JAL:
		return ClassJAL, true
	case op == isa.JALR:
		return ClassJALR, true
	case op.IsLoad():
		return ClassLoad, true
	case op.IsStore():
		return ClassStore, true
	case op == isa.FENCE:
		return ClassFence, true
	case op == isa.MUL, op == isa.MULH, op == isa.MULHU, op == isa.MULHSU, op == isa.MULW:
		return ClassMul, true
	case op == isa.DIV, op == isa.DIVU, op == isa.REM, op == isa.REMU,
		op == isa.DIVW, op == isa.DIVUW, op == isa.REMW, op == isa.REMUW:
		return ClassDiv, true
	default:
		return ClassALU, true
	}
}

// Translate decodes the basic block starting at va (physical address
// pa) from phys. It is a pure read: no statistics, no cycle charges,
// no TLB or cache activity — the engine performs all simulated
// accounting at run time. lineBytes is the I-cache line size (for
// LineLeader marking); roloadEnabled mirrors the processor
// configuration, under which ld.ro decodes are illegal.
//
// The returned block's Ref already pins the page's write generation;
// callers must check Ref.Valid() (and re-translate on mismatch) before
// every entry. Translate never fails: undecodable or unblockable
// starts yield KindUnblockable/KindSlowFetch entries that route the
// address to the interpreter.
func Translate(phys *mem.Physical, va, pa uint64, lineBytes int, roloadEnabled bool) *Block {
	b := &Block{VA: va, PA: pa}
	if ref, err := phys.Ref(pa); err == nil {
		b.Ref = ref
	} else {
		// Unreachable in practice: the caller just translated va to pa.
		b.Kind = KindSlowFetch
		return b
	}
	if lineBytes <= 0 {
		lineBytes = 64
	}

	off := uint64(0)
	lastLine := ^uint64(0)
	for len(b.Insts) < MaxInsts {
		iva, ipa := va+off, pa+off
		if iva>>mem.PageShift != va>>mem.PageShift {
			break // next instruction starts on a new page
		}
		low, err := phys.ReadUint(ipa, 2)
		if err != nil {
			break
		}
		size := uint64(2)
		raw := uint32(low)
		if low&3 == 3 {
			if (iva+2)>>mem.PageShift != va>>mem.PageShift {
				// 4-byte parcel straddling the page: permanent slow path.
				if off == 0 {
					b.Kind = KindSlowFetch
					return b
				}
				break
			}
			high, err := phys.ReadUint(ipa+2, 2)
			if err != nil {
				break
			}
			raw |= uint32(high) << 16
			size = 4
		}
		in := isa.Decode(raw)
		class, ok := classify(in.Op, roloadEnabled)
		if !ok {
			if off == 0 {
				b.Kind = KindUnblockable
				b.First = in
				return b
			}
			break
		}
		line := ipa / uint64(lineBytes)
		b.Insts = append(b.Insts, Inst{
			In: in, Class: class, Off: uint16(off), LineLeader: line != lastLine,
		})
		lastLine = line
		off += size
		b.note(class)
		if class == ClassBranch || class == ClassJAL || class == ClassJALR {
			break // terminator: block complete
		}
	}
	b.EndOff = uint16(off)
	if len(b.Insts) == 0 {
		// First parcel unreadable (hole in physical memory): slow path.
		b.Kind = KindSlowFetch
	}
	return b
}

func (b *Block) note(class Class) {
	switch class {
	case ClassLoad:
		b.Counts.Loads++
	case ClassROLoad:
		b.Counts.Loads++
		b.Counts.ROLoads++
	case ClassStore:
		b.Counts.Stores++
	case ClassMul:
		b.Counts.MulDiv++
		b.Counts.Muls++
	case ClassDiv:
		b.Counts.MulDiv++
		b.Counts.Divs++
	case ClassBranch:
		b.Counts.Branches++
	case ClassJAL, ClassJALR:
		b.Counts.Jumps++
	}
}
