package schema

// The roload-serve HTTP API (`roload-serve/v1`). Requests are posted
// as bare JSON payloads (a "schema" field is optional in requests and,
// when present, must equal ServeV1); responses are wrapped in the
// shared Envelope so every response self-describes as
// {schema: "roload-serve/v1", version: 1, payload: {...}}.

// RunRequest is the body of POST /v1/run: compile (or assemble) a
// guest program, optionally harden it, and execute it on one of the
// paper's three systems.
type RunRequest struct {
	Schema string `json:"schema,omitempty"`
	// Source is MiniC source, or assembly when Asm is set.
	Source string `json:"source"`
	Asm    bool   `json:"asm,omitempty"`
	// System is baseline, proc or full (default full).
	System string `json:"system,omitempty"`
	// Harden is none, vcall, vtint, icall, cfi, retguard or full
	// (default none; rejected together with Asm).
	Harden string `json:"harden,omitempty"`
	// Optimize runs the peephole optimizer before hardening.
	Optimize bool `json:"optimize,omitempty"`
	// Engine selects the execution engine: blocks (default), fast or
	// interp. All engines produce bit-identical simulated results —
	// the choice trades server-side wall clock only. Unknown values
	// are rejected with 422 naming the known ones.
	Engine string `json:"engine,omitempty"`
	// MaxSteps bounds the run (0 = the server's per-run default; values
	// above the server's cap are rejected).
	MaxSteps uint64 `json:"max_steps,omitempty"`
	// MemBytes is the guest physical memory size (0 = server default;
	// values above the server's cap are rejected).
	MemBytes uint64 `json:"mem_bytes,omitempty"`
	// TimeoutMS caps the request's wall-clock budget in milliseconds
	// (0 = the server default; capped by the server maximum). A run
	// that exceeds it is cancelled and answered with 504 and a partial
	// metrics snapshot.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// FaultCount > 0 injects that many seeded faults (roload-fault/v1,
	// generated from FaultSeed against the image's keyed and writable
	// sections) into the run and returns the fault trace. Only honoured
	// when the server runs with -chaos; rejected otherwise.
	FaultCount int    `json:"fault_count,omitempty"`
	FaultSeed  uint64 `json:"fault_seed,omitempty"`
	// Redundant > 1 executes the run on that many replicas under the
	// self-healing supervisor (odd, >= 3) and answers only with the
	// majority-agreed outcome; the response carries the roload-heal/v1
	// report. When faults are injected (FaultCount > 0) they go into
	// replica FaultReplica only, so the supervisor masks them.
	Redundant int `json:"redundant,omitempty"`
	// Heal enables rollback-replay of outvoted replicas (default with
	// Redundant: quarantine only).
	Heal bool `json:"heal,omitempty"`
	// SyncEvery is the cross-check stride in retired instructions
	// (0 = the supervisor default).
	SyncEvery uint64 `json:"sync_every,omitempty"`
	// FaultReplica selects the replica seeded faults are injected into
	// (0-based; must be < Redundant).
	FaultReplica int `json:"fault_replica,omitempty"`
	// Priority is "" / "normal" (default) or "low". Low-priority
	// requests are shed with 429 + Retry-After once the queue passes
	// the server's soft threshold, so interactive traffic keeps its
	// headroom.
	Priority string `json:"priority,omitempty"`
	// ImageDigest executes a precompiled image from the server's
	// artifact store (POST /v1/images) instead of compiling Source.
	// Requires -store; mutually exclusive with Source/Asm/Harden/
	// Optimize.
	ImageDigest string `json:"image_digest,omitempty"`
	// CheckpointEvery > 0 snapshots the run into the artifact store
	// every that many retired instructions (roload-checkpoint/v1, keyed
	// by state digest); the digests come back in RunResponse.Checkpoints
	// (or ErrorResponse.Checkpoints on a 422 step-limit partial).
	// Requires -store; rejected together with Redundant.
	CheckpointEvery uint64 `json:"checkpoint_every,omitempty"`
	// Resume restarts the run from a stored checkpoint, named as
	// "store://<digest>". Requires -store; rejected together with
	// Redundant and FaultCount. An image mismatch answers 409 kind
	// "mismatch" naming both digests.
	Resume string `json:"resume,omitempty"`
}

// RunResponse is the payload of a successful POST /v1/run. Stdout,
// ExitStatus and Metrics are byte-identical to what the equivalent
// roload-run CLI invocation prints, exits with, and writes via
// -metrics respectively.
type RunResponse struct {
	// Stdout is the guest's output, verbatim.
	Stdout string `json:"stdout"`
	Exited bool   `json:"exited"`
	// ExitCode is the guest's exit code when Exited.
	ExitCode int    `json:"exit_code"`
	Signal   string `json:"signal,omitempty"`
	// ExitStatus mirrors the roload-run process exit status: the exit
	// code (masked to a byte), or 128 + signal number for killed runs.
	ExitStatus      int  `json:"exit_status"`
	ROLoadViolation bool `json:"roload_violation"`
	// AuditText carries the rendered ROLoad fault audit lines exactly
	// as roload-run prints them on a blocked attack.
	AuditText []string `json:"audit_text,omitempty"`
	// Metrics is the unified roload-metrics/v1 snapshot of the run.
	Metrics *Snapshot `json:"metrics"`
	// FaultTrace is the roload-fault/v1 trace of every injected fault,
	// present only for chaos runs (RunRequest.FaultCount > 0).
	FaultTrace *FaultTrace `json:"fault_trace,omitempty"`
	// Heal is the roload-heal/v1 report of a supervised redundant run
	// (RunRequest.Redundant > 1).
	Heal *HealReport `json:"heal,omitempty"`
	// Checkpoints lists the store digests of the checkpoints taken
	// during the run (RunRequest.CheckpointEvery > 0), in retire order;
	// each is resumable as "store://<digest>".
	Checkpoints []string `json:"checkpoints,omitempty"`
}

// CompileRequest is the body of POST /v1/compile: MiniC in, hardened
// assembly (or a disassembled image dump) out.
type CompileRequest struct {
	Schema   string `json:"schema,omitempty"`
	Source   string `json:"source"`
	Harden   string `json:"harden,omitempty"`
	Optimize bool   `json:"optimize,omitempty"`
	// Dump disassembles the linked image instead of printing assembly;
	// Compress applies RVC compression first (with Dump).
	Dump     bool `json:"dump,omitempty"`
	Compress bool `json:"compress,omitempty"`
}

// CompileResponse carries the compiler output, byte-identical to
// roload-cc's stdout for the same input and flags.
type CompileResponse struct {
	Text string `json:"text"`
}

// AttackRequest is the body of POST /v1/attack: mount the security
// matrix (or one scenario, or one hardening column) and report the
// outcomes.
type AttackRequest struct {
	Schema string `json:"schema,omitempty"`
	// Scenario restricts the run to one scenario by name ("" = all).
	Scenario string `json:"scenario,omitempty"`
	// Harden restricts the run to one hardening scheme ("" = the full
	// matrix column set).
	Harden string `json:"harden,omitempty"`
	// Verbose includes per-run detail lines in Text.
	Verbose   bool  `json:"verbose,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// AttackResponse reports the mounted attacks. Text is byte-identical
// to roload-attack's stdout for the same selection; Results carries
// the same outcomes structurally (reusing the bench report's security
// entry type, with Detail populated).
type AttackResponse struct {
	Text string `json:"text"`
	// BadDefense is set when a ROLoad-hardened victim was hijacked —
	// the condition under which the CLI exits 1.
	BadDefense bool          `json:"bad_defense"`
	Results    []AttackEntry `json:"results"`
}

// ExperimentsResponse is the payload of GET /v1/experiments.
type ExperimentsResponse struct {
	IDs    []string `json:"ids"`
	Scales []string `json:"scales"`
}

// ExperimentRequest is the body of POST /v1/experiments/{id}.
type ExperimentRequest struct {
	Schema string `json:"schema,omitempty"`
	// Scale is ref or test (default test: the service favours bounded
	// request latency; ask for ref explicitly).
	Scale     string `json:"scale,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// ExperimentResponse carries one experiment's data, exactly the value
// the roload-bench/v1 report stores under the same id.
type ExperimentResponse struct {
	ID    string `json:"id"`
	Scale string `json:"scale"`
	Data  any    `json:"data"`
}

// ChaosRequest is the body of POST /v1/chaos (only routed when the
// server runs with -chaos). The posted values replace the armed state
// wholesale, so posting the zero body disarms everything.
type ChaosRequest struct {
	Schema string `json:"schema,omitempty"`
	// LatencyMS delays every subsequent run by this much (0 = none).
	LatencyMS int64 `json:"latency_ms,omitempty"`
	// PanicNext makes the next N run requests panic inside the worker;
	// the recovery middleware answers each with a structured 500.
	PanicNext int `json:"panic_next,omitempty"`
	// ErrorNext makes the next N run requests fail with a structured
	// 500 of kind "chaos" without running anything.
	ErrorNext int `json:"error_next,omitempty"`
}

// ChaosResponse reports the armed chaos state (POST and GET /v1/chaos).
type ChaosResponse struct {
	Armed     bool  `json:"armed"`
	LatencyMS int64 `json:"latency_ms"`
	PanicNext int   `json:"panic_next"`
	ErrorNext int   `json:"error_next"`
}

// ErrorResponse is the payload of every non-2xx serve response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Kind classifies the failure: "validation", "compile", "timeout",
	// "steplimit", "busy", "draining", "internal", "not_found", "panic"
	// (a worker panic caught by the recovery middleware), "chaos" (an
	// armed chaos error), "overload" (a low-priority request shed with
	// 429 + Retry-After), "diverged" (a redundant run that ended
	// without a digest quorum) or "mismatch" (a resume whose stored
	// checkpoint pins a different image digest, answered 409 naming
	// both digests).
	Kind string `json:"kind"`
	// Metrics carries the partial snapshot of a run that was cancelled
	// mid-flight (504) or exhausted its instruction budget, including
	// the fault-audit entries accumulated up to the interruption.
	Metrics *Snapshot `json:"metrics,omitempty"`
	// RetryAfterSec mirrors the Retry-After header on 429/503 answers.
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
	// RunID echoes the run id of a failed run request (minted by the
	// server or supplied via the Roload-Trace header), so a client can
	// correlate a 5xx with the server's structured logs and trace.
	RunID string `json:"run_id,omitempty"`
	// Checkpoints lists the checkpoint digests stored before the run
	// was interrupted (422 step-limit partials of a CheckpointEvery
	// run), so the client can resume from the last one.
	Checkpoints []string `json:"checkpoints,omitempty"`
}

// ImageRequest is the body of POST /v1/images: compile (or assemble)
// once and persist the image in the artifact store; the response names
// the digest that RunRequest.ImageDigest and BatchRequest.ImageDigest
// then execute without recompiling. Only routed when the server runs
// with -store.
type ImageRequest struct {
	Schema   string `json:"schema,omitempty"`
	Source   string `json:"source"`
	Asm      bool   `json:"asm,omitempty"`
	Harden   string `json:"harden,omitempty"`
	Optimize bool   `json:"optimize,omitempty"`
}

// ImageResponse answers POST /v1/images.
type ImageResponse struct {
	// Digest is the kernel image digest the roload-image/v1 document is
	// stored (and pinned) under.
	Digest string `json:"digest"`
	// Reused reports that the store already held the digest — nothing
	// was written.
	Reused bool `json:"reused"`
}

// HealthResponse is the payload of GET /healthz. The status code
// keeps the bare liveness contract (200 ok, 503 degraded/draining);
// the body adds the load and attachment detail a fleet front tier
// needs to tell "alive but loaded" from "alive and idle" — the
// roload-gateway degrades a backend on QueueDepth vs QueueCap, not
// just on the status code.
type HealthResponse struct {
	Status   string `json:"status"` // "ok", "degraded" or "draining"
	Workers  int    `json:"workers"`
	InFlight int    `json:"in_flight"`
	Queued   int    `json:"queued"`
	// QueueDepth repeats Queued under its gauge name; QueueCap is the
	// configured bound — depth at cap means the next request sheds.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// Store is the artifact-store attachment state: "none" (started
	// without -store), "attached", or "error: <detail>" when the store
	// has failed to persist an append.
	Store string `json:"store"`
	// ChaosArmed reports an armed chaos configuration (latency, panic
	// or error injection) on a -chaos server.
	ChaosArmed bool `json:"chaos_armed,omitempty"`
	// RetryAfterSec mirrors the Retry-After header of a degraded
	// response: how long clients should back off before retrying.
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
}

// EndpointMetrics counts one endpoint's requests by outcome.
type EndpointMetrics struct {
	Requests uint64 `json:"requests"`
	OK       uint64 `json:"ok"`
	Errors4x uint64 `json:"errors_4xx"`
	Errors5x uint64 `json:"errors_5xx"`
	Timeouts uint64 `json:"timeouts"` // 504s (a subset of errors_5xx)
}

// ServeMetrics is the payload of GET /metrics: service-level counters
// (per-request simulation counters live in each run's Snapshot).
type ServeMetrics struct {
	Workers     int                        `json:"workers"`
	InFlight    int                        `json:"in_flight"`
	Queued      int                        `json:"queued"`
	Draining    bool                       `json:"draining"`
	Endpoints   map[string]EndpointMetrics `json:"endpoints"`
	ImageCache  CacheMetrics               `json:"image_cache"`
	Experiments CacheMetrics               `json:"experiment_cache"`
	// Idempotency counts the idempotency-key response cache: Hits are
	// replayed responses (the request body was NOT re-executed), Misses
	// are first executions under a key.
	Idempotency CacheMetrics `json:"idempotency_cache"`
	// Shed counts low-priority requests answered 429 under load.
	Shed uint64 `json:"shed"`
	// UptimeSec and QueueDepth are point-in-time gauges: seconds since
	// the server was built, and requests currently waiting for a worker
	// slot (QueueCap is the configured bound).
	UptimeSec  float64 `json:"uptime_sec"`
	QueueDepth int     `json:"queue_depth"`
	QueueCap   int     `json:"queue_cap"`
	// QueueWaitUS and RunDurationUS are log-bucketed latency histograms
	// (microseconds): time spent waiting for a worker slot, and the
	// wall clock of the execution phase of run requests.
	QueueWaitUS   Histogram `json:"queue_wait_us"`
	RunDurationUS Histogram `json:"run_duration_us"`
	// EndpointLatencyUS histograms whole-request latency per endpoint.
	EndpointLatencyUS map[string]Histogram `json:"endpoint_latency_us,omitempty"`
	// KeyChecks aggregates run outcomes per hardening mode: how many
	// runs executed under each scheme and how many ended in a ROLoad
	// key-check violation.
	KeyChecks map[string]KeyCheckStats `json:"key_checks,omitempty"`
	// EngineRuns counts executed run requests per execution engine
	// (flag spellings: blocks, fast, interp).
	EngineRuns map[string]uint64 `json:"engine_runs,omitempty"`
	// Streams counts the live-event broker's activity.
	Streams StreamMetrics `json:"streams"`
	// Store describes the artifact store, present only when the server
	// runs with -store.
	Store *StoreMetrics `json:"store,omitempty"`
	// Replication counts the backend's part in fleet-wide artifact
	// replication (peer pushes and fetches), present once any occurred.
	Replication *StoreReplication `json:"replication,omitempty"`
}

// StoreReplication counts one backend's artifact replication traffic:
// pushes of locally written artifacts to the peer set the gateway
// forwarded (Roload-Store-Peers), and fetches of artifacts this
// backend was asked about but did not hold.
type StoreReplication struct {
	// Pushes counts artifacts successfully replicated to a peer;
	// PushFailures counts per-peer push attempts that failed (the
	// local write already succeeded — replication is best-effort).
	Pushes       uint64 `json:"pushes"`
	PushFailures uint64 `json:"push_failures,omitempty"`
	// PeerFetches counts lookups sent to peers on a local store miss;
	// PeerFetchHits counts the ones that recovered the artifact.
	PeerFetches   uint64 `json:"peer_fetches,omitempty"`
	PeerFetchHits uint64 `json:"peer_fetch_hits,omitempty"`
}

// StoreMetrics describes the artifact store (-store): entry and pin
// counts by document kind plus log-level counters.
type StoreMetrics struct {
	// Entries counts live (non-deleted) records per schema kind.
	Entries map[string]int `json:"entries,omitempty"`
	// Pinned counts digests with a positive refcount.
	Pinned int `json:"pinned"`
	// Puts/Gets count store operations since boot; Recovered counts
	// torn-tail bytes truncated by the last reopen scan.
	Puts      uint64 `json:"puts"`
	Gets      uint64 `json:"gets"`
	Recovered int64  `json:"recovered_bytes,omitempty"`
	// LogBytes is the current size of the append log.
	LogBytes int64 `json:"log_bytes"`
	// GC reports the periodic GC policy daemon (-store-gc-interval),
	// present once it has run at least once.
	GC *StoreGCMetrics `json:"gc,omitempty"`
}

// StoreGCMetrics is the `gc` section of StoreMetrics: the cumulative
// work of the age/size policy daemon.
type StoreGCMetrics struct {
	// Runs counts policy passes; Unpinned and Removed the digests aged
	// or sized out and the artifacts compacted away across all passes.
	Runs     uint64 `json:"runs"`
	Unpinned uint64 `json:"unpinned"`
	Removed  uint64 `json:"removed"`
	// LastUnix stamps the most recent pass; LastError carries its
	// failure, "" for a clean pass.
	LastUnix  int64  `json:"last_unix,omitempty"`
	LastError string `json:"last_error,omitempty"`
}

// KeyCheckStats is the per-hardening-mode key-check fault rate: Rate
// is Violations/Runs (0 when no runs).
type KeyCheckStats struct {
	Runs       uint64  `json:"runs"`
	Violations uint64  `json:"violations"`
	Rate       float64 `json:"rate"`
}

// StreamMetrics counts the live run-event broker's activity.
type StreamMetrics struct {
	// Subscribers is the number of currently attached event streams.
	Subscribers int `json:"subscribers"`
	// Published counts events fanned out since boot; Dropped counts
	// events discarded because a subscriber was too slow.
	Published uint64 `json:"published"`
	Dropped   uint64 `json:"dropped"`
}

// HistogramBucket is one log-spaced bucket: Count observations with
// value <= LE (upper bounds are successive powers of two).
type HistogramBucket struct {
	LE    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// Histogram is a log-bucketed distribution snapshot. Only non-empty
// buckets are carried.
type Histogram struct {
	Count   uint64            `json:"count"`
	Sum     uint64            `json:"sum"`
	Min     uint64            `json:"min,omitempty"`
	Max     uint64            `json:"max,omitempty"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Quantile estimates the q-quantile (0 < q <= 1) of a log-bucketed
// histogram: the upper bound of the first bucket whose cumulative
// count reaches q·Count, clamped into [Min, Max] so the power-of-two
// bucket bound never overstates an observed maximum. An empty
// histogram estimates 0.
func (h Histogram) Quantile(q float64) uint64 {
	if h.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.Count))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	est := h.Max
	for _, b := range h.Buckets {
		cum += b.Count
		if cum >= rank {
			est = b.LE
			break
		}
	}
	if h.Max > 0 && est > h.Max {
		est = h.Max
	}
	if est < h.Min {
		est = h.Min
	}
	return est
}

// CacheMetrics describes one memoizing cache's effectiveness.
type CacheMetrics struct {
	Entries uint64 `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
}
