package schema

import "fmt"

// The batch-execution documents (`roload-batch/v1`): the request body
// of POST /v1/batch — many run specs against one compiled image — and
// the report it answers with. The contract that makes batching safe to
// adopt incrementally: every per-run body in the report is
// byte-identical to the response of the equivalent individual POST
// /v1/run call, because the service executes and renders both through
// the same path. The batch amortizes exactly two things — one compile
// (or one store fetch) shared by every run, and one HTTP round trip.

// BatchRequest is the body of POST /v1/batch. The compile group
// (Source/Asm/Harden/Optimize, or ImageDigest for a stored image) is
// shared by every run; Runs carries the per-run execution options.
type BatchRequest struct {
	Schema string `json:"schema,omitempty"`
	// Source is MiniC source (or assembly when Asm is set), compiled
	// once for the whole batch. Mutually exclusive with ImageDigest.
	Source   string `json:"source,omitempty"`
	Asm      bool   `json:"asm,omitempty"`
	Harden   string `json:"harden,omitempty"`
	Optimize bool   `json:"optimize,omitempty"`
	// ImageDigest names a precompiled image in the server's artifact
	// store (see POST /v1/images) instead of source; the batch then
	// compiles nothing at all.
	ImageDigest string `json:"image_digest,omitempty"`
	// Runs are the per-run specs, executed across the server's worker
	// pool. At least one; the server caps the count.
	Runs []BatchRunSpec `json:"runs"`
	// TimeoutMS bounds the whole batch's wall clock (0 = the server
	// default); runs still executing at the deadline answer their usual
	// 504 partial bodies inside the report.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Priority is the admission-control class of the whole batch
	// ("" / "normal" / "low", the POST /v1/run semantics).
	Priority string `json:"priority,omitempty"`
}

// BatchRunSpec is one run of a batch: exactly the execution options of
// RunRequest, minus the compile group (shared) and the wall-clock
// budget (the batch owns one deadline).
type BatchRunSpec struct {
	System       string `json:"system,omitempty"`
	Engine       string `json:"engine,omitempty"`
	MaxSteps     uint64 `json:"max_steps,omitempty"`
	MemBytes     uint64 `json:"mem_bytes,omitempty"`
	FaultCount   int    `json:"fault_count,omitempty"`
	FaultSeed    uint64 `json:"fault_seed,omitempty"`
	Redundant    int    `json:"redundant,omitempty"`
	Heal         bool   `json:"heal,omitempty"`
	SyncEvery    uint64 `json:"sync_every,omitempty"`
	FaultReplica int    `json:"fault_replica,omitempty"`
	// CheckpointEvery and Resume are the store-backed knobs of
	// RunRequest: periodic checkpoints, and resuming from a stored
	// checkpoint ("store://<digest>"). Both require a server with
	// -store.
	CheckpointEvery uint64 `json:"checkpoint_every,omitempty"`
	Resume          string `json:"resume,omitempty"`
}

// BatchRunOutcome is one run's result inside a batch report. Body is
// the exact rendered roload-serve/v1 envelope the equivalent
// individual POST /v1/run would have answered (success or error), and
// Status its HTTP status. It is a string, not a json.RawMessage,
// deliberately: Marshal compacts a RawMessage, which would destroy the
// byte-for-byte identity with the individual response (the same rule
// RunEvent.Result follows).
type BatchRunOutcome struct {
	Index int `json:"index"`
	// RunID is the per-run id ("<batch id>.<index+1>"); the stored
	// result is fetchable at GET /v1/runs/{run_id} and the run's events
	// carry it as RunEvent.Run.
	RunID  string `json:"run_id"`
	Status int    `json:"status"`
	Body   string `json:"body"`
	// Skipped reports that the run was not re-executed: a stored
	// roload-runresult/v1 artifact from an earlier POST of the same
	// batch id already held this exact run's outcome, and Status/Body
	// replay it byte-identically.
	Skipped bool `json:"skipped,omitempty"`
}

// BatchReport is the roload-batch/v1 document answered by POST
// /v1/batch (wrapped, like every serve response, in the roload-serve/v1
// envelope) and persisted in the artifact store when one is configured.
type BatchReport struct {
	Schema string `json:"schema"` // BatchV1
	// BatchID is the batch-scoped run id (minted, or the Roload-Trace
	// request header): the handle for the live event stream.
	BatchID string `json:"batch_id"`
	// ImageDigest fingerprints the one image every run executed.
	ImageDigest string `json:"image_digest"`
	// Compiles counts source compilations the batch performed: 1 for a
	// cold source batch, 0 when the image cache or the artifact store
	// already held the image. Never more — that is the amortization
	// contract.
	Compiles int               `json:"compiles"`
	Runs     []BatchRunOutcome `json:"runs"`
	// Skipped counts the runs replayed from stored results instead of
	// re-executed (the resumable-batch contract: re-POSTing a batch id
	// never re-executes a run whose result the store already holds).
	Skipped int `json:"skipped,omitempty"`
}

// Validate checks the report's schema tag and per-run integrity.
func (r *BatchReport) Validate() error {
	if r.Schema != BatchV1 {
		return fmt.Errorf("schema: batch report carries %q, want %q", r.Schema, BatchV1)
	}
	if r.BatchID == "" {
		return fmt.Errorf("schema: batch report has no batch id")
	}
	for i, run := range r.Runs {
		if run.Index != i {
			return fmt.Errorf("schema: batch run %d carries index %d", i, run.Index)
		}
		if run.RunID == "" {
			return fmt.Errorf("schema: batch run %d has no run id", i)
		}
		if run.Status == 0 {
			return fmt.Errorf("schema: batch run %d has no status", i)
		}
	}
	return nil
}
