package schema

import "fmt"

// The compiled-image document (`roload-image/v1`): the serialized form
// of one linked, loadable guest image, the unit the content-addressed
// artifact store keys by digest and the POST /v1/images endpoint
// persists. The digest is the kernel's image fingerprint (the same one
// roload-checkpoint/v1 pins in ImageSHA256), so a stored image, the
// checkpoints taken from it, and a resume request all name the same
// artifact.
//
// The document is a faithful mirror of the assembler's in-memory image
// (internal/asm): sections with their layout, permissions, ROLoad page
// keys and initialized contents, the entry point, and the symbol
// table. Conversion to and from the asm type lives in internal/core
// (EncodeImage / DecodeImage) so this package stays dependency-free.

// ImageSection is one loadable region of a stored image. Data carries
// the initialized prefix (base64 on the wire); Size includes the zero
// fill, so len(Data) <= Size.
type ImageSection struct {
	Name string `json:"name"`
	VA   uint64 `json:"va"`
	Size uint64 `json:"size"`
	// Perm is the section permission bit set (read=1, write=2, exec=4,
	// matching internal/asm.Perm).
	Perm uint8 `json:"perm"`
	// Key is the ROLoad page key (0 = untyped).
	Key  uint16 `json:"key,omitempty"`
	Data []byte `json:"data,omitempty"`
}

// ImageDoc is the roload-image/v1 document.
type ImageDoc struct {
	Schema string `json:"schema"` // ImageV1
	// Digest is the kernel image digest the document was stored under
	// (advisory: loaders recompute it from the decoded image and refuse
	// a mismatch).
	Digest   string            `json:"digest,omitempty"`
	Entry    uint64            `json:"entry"`
	Sections []ImageSection    `json:"sections"`
	Symbols  map[string]uint64 `json:"symbols,omitempty"`
}

// Validate checks the document's schema tag and structural sanity. The
// full loadability invariants (page alignment, no W+X, keys only on
// read-only pages) are the asm image's own Validate, run after
// decoding; this guards the wire frame.
func (d *ImageDoc) Validate() error {
	if d.Schema != ImageV1 {
		return fmt.Errorf("schema: image document carries %q, want %q", d.Schema, ImageV1)
	}
	if len(d.Sections) == 0 {
		return fmt.Errorf("schema: image document has no sections")
	}
	for i, sec := range d.Sections {
		if sec.Name == "" {
			return fmt.Errorf("schema: image section %d has no name", i)
		}
		if uint64(len(sec.Data)) > sec.Size {
			return fmt.Errorf("schema: image section %q carries %d data bytes but declares size %d",
				sec.Name, len(sec.Data), sec.Size)
		}
	}
	return nil
}
