package schema

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRegistryCoversEveryID checks the registry against the id const
// block: every declared schema id is registered, and every registered
// kind's Seed decodes cleanly through DecodeAny to its own id. This is
// the test that fails when someone adds a "roload-*/v1" id without
// registering it.
func TestRegistryCoversEveryID(t *testing.T) {
	ids := []string{
		BenchV1, MetricsV1, HostBenchV1, HostBenchHistoryV1, ServeV1,
		FaultV1, CheckpointV1, HealV1, TraceV1, ImageV1, BatchV1,
		LoadgenV1, RunResultV1,
	}
	for _, id := range ids {
		if _, ok := Lookup(id); !ok {
			t.Errorf("schema id %q is declared but not registered", id)
		}
	}
	if got, want := len(Kinds()), len(ids); got != want {
		t.Errorf("registry holds %d kinds, the id block declares %d", got, want)
	}
	for _, k := range Kinds() {
		id, doc, err := DecodeAny([]byte(k.Seed))
		if err != nil {
			t.Errorf("seed of %s does not decode: %v", k.ID, err)
			continue
		}
		if id != k.ID {
			t.Errorf("seed of %s decoded as %s", k.ID, id)
		}
		if doc == nil {
			t.Errorf("seed of %s decoded to nil", k.ID)
		}
	}
}

// TestDecodeAnyDispatch exercises both wire forms and the error
// paths: flat documents, enveloped documents, validation failures,
// unknown and missing ids.
func TestDecodeAnyDispatch(t *testing.T) {
	// Flat form: the trace seed carries its id in the schema field.
	id, doc, err := DecodeAny([]byte(`{"schema":"roload-trace/v1","run_id":"r","spans":[]}`))
	if err != nil || id != TraceV1 {
		t.Fatalf("flat trace: id=%q err=%v", id, err)
	}
	if _, ok := doc.(*TraceDoc); !ok {
		t.Fatalf("flat trace decoded to %T, want *TraceDoc", doc)
	}

	// Envelope form: the same document wrapped.
	env, err := Wrap(TraceV1, &TraceDoc{Schema: TraceV1, RunID: "r"})
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(env)
	id, doc, err = DecodeAny(raw)
	if err != nil || id != TraceV1 {
		t.Fatalf("enveloped trace: id=%q err=%v", id, err)
	}
	if td := doc.(*TraceDoc); td.RunID != "r" {
		t.Fatalf("enveloped trace lost its run id: %+v", td)
	}

	// A kind with a Validate method rejects invalid documents even when
	// the JSON itself is well-formed.
	if _, _, err := DecodeAny([]byte(`{"schema":"roload-trace/v1","run_id":"","spans":[]}`)); err == nil {
		t.Fatal("invalid trace document decoded without error")
	}
	if _, _, err := DecodeAny([]byte(`{"schema":"roload-batch/v1","batch_id":"b","runs":[{"index":1,"run_id":"x","status":200}]}`)); err == nil {
		t.Fatal("batch report with misnumbered runs decoded without error")
	}

	// Unknown and missing ids error with the id named.
	if _, _, err := DecodeAny([]byte(`{"schema":"roload-nope/v1"}`)); err == nil || !strings.Contains(err.Error(), "roload-nope/v1") {
		t.Fatalf("unregistered kind: err=%v", err)
	}
	if _, _, err := DecodeAny([]byte(`{"x":1}`)); err == nil {
		t.Fatal("document without a schema id decoded")
	}
	if _, _, err := DecodeAny([]byte(`not json`)); err == nil {
		t.Fatal("non-JSON decoded")
	}
}

// TestRegisterPanics checks the programmer-error guards.
func TestRegisterPanics(t *testing.T) {
	cases := []struct {
		name string
		kind Kind
	}{
		{"malformed id", Kind{ID: "no-version", New: func() any { return new(struct{}) }}},
		{"nil factory", Kind{ID: "x/v1"}},
		{"duplicate", Kind{ID: TraceV1, New: func() any { return new(TraceDoc) }}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("Register(%s) did not panic", tc.name)
				}
			}()
			Register(tc.kind)
		})
	}
}
