package schema

// The roload-gateway observability payloads. Both are served inside
// the shared roload-serve/v1 envelope (the gateway speaks the same
// wire dialect as the backends it fronts): GET /healthz answers a
// GatewayHealth, GET /metrics a GatewayMetrics.

// GatewayHealth is the gateway's /healthz payload: 200 while at least
// one backend is admitted (healthy or degraded) and the gateway is
// not draining, 503 otherwise.
type GatewayHealth struct {
	Status string `json:"status"` // "ok", "degraded" or "draining"
	// Backends maps each configured backend URL to its probe state:
	// "healthy", "degraded", "ejected" or "half-open".
	Backends map[string]string `json:"backends"`
	// Admitted counts backends currently taking traffic.
	Admitted int `json:"admitted"`
	// Canary is the mirror target's probe state ("" without a canary).
	Canary string `json:"canary,omitempty"`
}

// GatewayBackend is one backend's /metrics row.
type GatewayBackend struct {
	// State is the probe state machine's current state.
	State string `json:"state"`
	// Probes counts health probes sent; ProbeFailures those that
	// failed (transport error or a non-healthz answer).
	Probes        uint64 `json:"probes"`
	ProbeFailures uint64 `json:"probe_failures"`
	// Ejections counts healthy→ejected transitions; Readmissions the
	// half-open→healthy ones.
	Ejections    uint64 `json:"ejections"`
	Readmissions uint64 `json:"readmissions"`
	// Proxied counts conclusive replies this backend served; Failures
	// counts proxy attempts that errored (transport loss or retry
	// exhaustion) and moved on to the next backend.
	Proxied  uint64 `json:"proxied"`
	Failures uint64 `json:"failures"`
	// Breaker is the per-backend client circuit breaker's state.
	Breaker string `json:"breaker"`
	// QueueDepth/QueueCap echo the backend's last healthz body, the
	// load signal behind a degraded mark.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
}

// GatewayMirror counts the shadow-traffic surface.
type GatewayMirror struct {
	// Mirrored counts requests copied to the canary; Diffs those whose
	// canary answer differed from the served answer; Errors canary
	// exchanges that failed outright.
	Mirrored uint64 `json:"mirrored"`
	Diffs    uint64 `json:"diffs"`
	Errors   uint64 `json:"errors"`
	// LastDiff describes the most recent divergence (endpoint plus
	// first differing byte offset), "" when none.
	LastDiff string `json:"last_diff,omitempty"`
}

// GatewayReplication counts the gateway's artifact-replication
// machinery: every artifact put is write-through-replicated to the
// ring owner plus R−1 successors, and a read served by a non-owner
// repairs the copies that answered 404.
type GatewayReplication struct {
	// Replicas is the configured copy count R.
	Replicas int `json:"replicas"`
	// Enqueued counts replication jobs accepted; Replicated counts
	// per-peer copies that landed; Failed counts per-peer copies that
	// did not (the local/primary write already succeeded); Dropped
	// counts jobs discarded because the queue was full.
	Enqueued   uint64 `json:"enqueued"`
	Replicated uint64 `json:"replicated"`
	Failed     uint64 `json:"failed,omitempty"`
	Dropped    uint64 `json:"dropped,omitempty"`
	// ReadRepairs counts read-repair jobs: a store GET that had to
	// fall through past a 404 before finding the digest, repairing the
	// missing copies from the reply.
	ReadRepairs uint64 `json:"read_repairs,omitempty"`
	// QueueDepth is the replication backlog right now — the lag gauge:
	// jobs accepted but not yet pushed to their peers.
	QueueDepth int `json:"queue_depth"`
}

// GatewayMetrics is the gateway's /metrics payload.
type GatewayMetrics struct {
	// Backends maps backend URL (canary included) to its counters.
	Backends map[string]GatewayBackend `json:"backends"`
	// Endpoints counts gateway requests by outcome, per endpoint.
	Endpoints map[string]EndpointMetrics `json:"endpoints"`
	// Retries counts backend attempts beyond a request's first;
	// Failovers counts moves to a different backend after a failed
	// one; NoBackend counts requests answered 503 because no admitted
	// backend remained.
	Retries   uint64 `json:"retries"`
	Failovers uint64 `json:"failovers"`
	NoBackend uint64 `json:"no_backend"`
	// Idempotency counts the gateway-level replay cache: Hits are
	// requests answered from a pinned conclusive response without
	// touching any backend.
	Idempotency CacheMetrics `json:"idempotency_cache"`
	// Mirror is the shadow-traffic accounting (zero without a canary).
	Mirror GatewayMirror `json:"mirror"`
	// Replication is the artifact-replication accounting: the
	// write-through fan-out and read-repair machinery behind
	// /v1/store.
	Replication GatewayReplication `json:"replication"`
	// ProxyLatencyUS distributes whole-proxy latency (all backends
	// tried, microseconds).
	ProxyLatencyUS Histogram `json:"proxy_latency_us"`
	// UptimeSec is seconds since the gateway was built; Draining
	// reports an in-progress drain.
	UptimeSec float64 `json:"uptime_sec"`
	Draining  bool    `json:"draining"`
}
