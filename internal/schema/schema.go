// Package schema is the single home of every versioned JSON document
// this repository speaks: the benchmark report (`roload-bench/v1`),
// the unified metrics snapshot (`roload-metrics/v1`), the host
// throughput document (`roload-hostbench/v1`), the request and
// response types of the roload-serve HTTP API (`roload-serve/v1`),
// the fault-injection plan and trace (`roload-fault/v1`), and the
// checkpoint frame written by roload-run (`roload-checkpoint/v1`).
//
// Each document family is identified by a "name/vN" schema id. The
// legacy documents (bench, metrics, hostbench) are flat — they carry
// the id in a top-level "schema" field and their payload fields beside
// it, a wire format that predates this package and is kept stable for
// existing consumers. The serve API wraps its payloads in the shared
// Envelope ({schema, version, payload}) so new document kinds never
// have to reserve field names again.
//
// The package is dependency-free (standard library only) so every
// layer — the dependency-free obs probes, the kernel, the evaluation
// harness, the HTTP service — can produce and consume documents
// without import cycles.
package schema

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Schema ids of every document family, in "name/vN" form. Every id
// listed here is also registered in the kind registry (registry.go),
// which is what gives new families envelope validation and fuzz
// coverage without hand-listed switch cases.
const (
	BenchV1            = "roload-bench/v1"
	MetricsV1          = "roload-metrics/v1"
	HostBenchV1        = "roload-hostbench/v1"
	HostBenchHistoryV1 = "roload-hostbench-history/v1"
	ServeV1            = "roload-serve/v1"
	FaultV1            = "roload-fault/v1"
	CheckpointV1       = "roload-checkpoint/v1"
	HealV1             = "roload-heal/v1"
	TraceV1            = "roload-trace/v1"
	ImageV1            = "roload-image/v1"
	BatchV1            = "roload-batch/v1"
	LoadgenV1          = "roload-loadgen/v1"
	RunResultV1        = "roload-runresult/v1"
)

// ParseID splits a schema id of the form "name/vN" into its family
// name and major version.
func ParseID(id string) (name string, version int, err error) {
	slash := strings.LastIndexByte(id, '/')
	if slash <= 0 || slash == len(id)-1 || id[slash+1] != 'v' {
		return "", 0, fmt.Errorf("schema: malformed id %q (want \"name/vN\")", id)
	}
	v, err := strconv.Atoi(id[slash+2:])
	if err != nil || v < 1 {
		return "", 0, fmt.Errorf("schema: malformed version in id %q (want \"name/vN\")", id)
	}
	return id[:slash], v, nil
}

// ID formats a family name and version as a schema id.
func ID(name string, version int) string {
	return fmt.Sprintf("%s/v%d", name, version)
}

// Envelope is the shared {schema, version, payload} frame used by the
// roload-serve API (and any future document family): Schema is the
// full id ("roload-serve/v1"), Version repeats the major version for
// consumers that match on the number, and Payload is the typed
// document.
type Envelope struct {
	Schema  string          `json:"schema"`
	Version int             `json:"version"`
	Payload json.RawMessage `json:"payload"`
}

// Wrap builds an envelope carrying payload under the given schema id.
func Wrap(id string, payload any) (Envelope, error) {
	_, version, err := ParseID(id)
	if err != nil {
		return Envelope{}, err
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return Envelope{}, fmt.Errorf("schema: encoding %s payload: %w", id, err)
	}
	return Envelope{Schema: id, Version: version, Payload: raw}, nil
}

// Open validates the envelope against the expected schema id and
// decodes the payload into out.
func (e Envelope) Open(id string, out any) error {
	if e.Schema != id {
		return fmt.Errorf("schema: envelope carries %q, want %q", e.Schema, id)
	}
	_, version, err := ParseID(id)
	if err != nil {
		return err
	}
	if e.Version != 0 && e.Version != version {
		return fmt.Errorf("schema: envelope version %d does not match id %q", e.Version, id)
	}
	dec := json.NewDecoder(bytes.NewReader(e.Payload))
	if err := dec.Decode(out); err != nil {
		return fmt.Errorf("schema: decoding %s payload: %w", id, err)
	}
	return nil
}
