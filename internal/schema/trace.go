package schema

import (
	"encoding/json"
	"fmt"
	"io"
)

// The span-trace document (`roload-trace/v1`): the end-to-end timing
// tree of one logical run, linking the client's retry attempts to the
// server's request handling and on down to the simulator phases
// (queue-wait, compile, execute, checkpoint, vote, heal). Spans from
// different processes — the client trace and the server trace — merge
// into one document under the shared run id; internal/telemetry
// produces, merges and exports these documents.

// Span is one timed operation in a trace. IDs are unique within one
// producer (the producer's prefix keeps client and server spans from
// colliding after a merge); Parent links the tree, and a parent id may
// refer to a span produced by the other side (the server's request
// span is parented under the client's attempt span).
type Span struct {
	ID     string `json:"id"`
	Parent string `json:"parent,omitempty"`
	Name   string `json:"name"`
	// StartUS is the span's wall-clock start in microseconds since the
	// Unix epoch; DurUS is its duration in microseconds.
	StartUS int64 `json:"start_us"`
	DurUS   int64 `json:"dur_us"`
	// Attrs carries span-scoped key/value detail (instret counts,
	// replica indices, HTTP statuses).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// TraceDoc is the whole document: every span recorded for one run id.
type TraceDoc struct {
	Schema string `json:"schema"`
	RunID  string `json:"run_id"`
	Spans  []Span `json:"spans"`
}

// Validate checks the document's schema tag and span-tree integrity:
// ids must be present and unique, and every parent reference must
// either resolve within the document or be explicitly dangling (a
// cross-process parent, allowed only before a merge).
func (d *TraceDoc) Validate() error {
	if d.Schema != TraceV1 {
		return fmt.Errorf("schema: trace document carries %q, want %q", d.Schema, TraceV1)
	}
	if d.RunID == "" {
		return fmt.Errorf("schema: trace document has no run id")
	}
	seen := make(map[string]bool, len(d.Spans))
	for i, s := range d.Spans {
		if s.ID == "" {
			return fmt.Errorf("schema: span %d has no id", i)
		}
		if seen[s.ID] {
			return fmt.Errorf("schema: duplicate span id %q", s.ID)
		}
		seen[s.ID] = true
		if s.Name == "" {
			return fmt.Errorf("schema: span %q has no name", s.ID)
		}
		if s.DurUS < 0 {
			return fmt.Errorf("schema: span %q has negative duration", s.ID)
		}
	}
	return nil
}

// WriteJSON writes the document as indented JSON.
func (d *TraceDoc) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Run-event kinds streamed by GET /v1/runs/{id}/events. Every event
// carries the retire count it is anchored to, so a consumer can order
// a stream by simulated time regardless of host scheduling.
const (
	// EventProgress is a liveness tick: the run has retired Instret
	// instructions so far.
	EventProgress = "progress"
	// EventAudit carries one ROLoad fault-audit record (an injected
	// fault or a detected key-check violation) as it is logged.
	EventAudit = "audit"
	// EventCheckpoint marks a redundant-run sync point: every live
	// replica reached Instret and the agreed digest was captured.
	EventCheckpoint = "checkpoint"
	// EventVote reports a divergence vote: the majority digest and the
	// outvoted replicas at a sync point.
	EventVote = "vote"
	// EventHeal reports one rollback-replay of an outvoted replica.
	EventHeal = "heal"
	// EventResult is the terminal event: Result carries the exact
	// response envelope of the synchronous POST /v1/run answer.
	EventResult = "result"
	// EventRunStart marks one run of a batch starting (Run carries its
	// 1-based index); streamed under the batch-scoped run id.
	EventRunStart = "run-start"
	// EventRunResult is one batch run's terminal event: Result and
	// Status carry exactly what EventResult would for the equivalent
	// individual run, plus the Run index. The batch itself still ends
	// with a single EventResult carrying the roload-batch/v1 report
	// envelope.
	EventRunResult = "run-result"
)

// RunEvent is one streamed event of a live run. Seq is the broker's
// per-run sequence number (monotone from 1); consumers detect gaps —
// events dropped on a slow subscriber — by watching it skip.
type RunEvent struct {
	Seq     uint64 `json:"seq"`
	Kind    string `json:"kind"`
	Instret uint64 `json:"instret"`
	Cycles  uint64 `json:"cycles,omitempty"`
	// Replica is the replica index an audit/heal event belongs to
	// (redundant runs; -1 when not applicable).
	Replica int `json:"replica,omitempty"`
	// Audit is the fault-audit record of an EventAudit.
	Audit *AuditRecord `json:"audit,omitempty"`
	// Digest is the agreed (checkpoint) or majority (vote) digest.
	Digest string `json:"digest,omitempty"`
	// Losers lists the outvoted replicas of an EventVote.
	Losers []int `json:"losers,omitempty"`
	// Recovered reports whether an EventHeal's replay rejoined the
	// majority.
	Recovered bool `json:"recovered,omitempty"`
	// Result is the verbatim response envelope of an EventResult,
	// byte-identical to the synchronous HTTP response body. It is a
	// string, not a json.RawMessage, deliberately: Marshal compacts a
	// RawMessage, which would destroy the byte-for-byte identity with
	// the indented synchronous answer.
	Result string `json:"result,omitempty"`
	// Status is the HTTP status the synchronous answer carried
	// (EventResult only).
	Status int `json:"status,omitempty"`
	// Run is the 1-based batch run index the event belongs to (events
	// streamed under a batch-scoped id; 0 = the batch itself).
	Run int `json:"run,omitempty"`
}
